package mpa

import (
	"fmt"
	"sort"
	"strings"

	"mpa/internal/dataset"
	"mpa/internal/practices"
	"mpa/internal/report"
	"mpa/internal/stats"
)

// NetworkReport renders a management-plane report card for one network:
// each practice metric's mean value over the study window, its percentile
// within the organization, and the network's monthly health history —
// the per-network view operators use to act on MPA's findings (§5.2.6:
// understanding these relationships aids SLO and staffing decisions).
func (f *Framework) NetworkReport(network string) (string, error) {
	env := f.environment() // one snapshot for the whole report
	mas, ok := env.Analysis[network]
	if !ok {
		return "", fmt.Errorf("mpa: unknown network %q", network)
	}

	// Mean metric values over the window, per network.
	orgMeans := map[string][]float64{}
	netMean := map[string]float64{}
	for name, all := range env.Analysis {
		for _, metric := range practices.MetricNames {
			var sum float64
			for _, ma := range all {
				sum += ma.Metrics[metric]
			}
			mean := sum / float64(len(all))
			orgMeans[metric] = append(orgMeans[metric], mean)
			if name == network {
				netMean[metric] = mean
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Management-plane report card: %s\n", network)
	fmt.Fprintf(&b, "(percentiles are within the organization's %d networks)\n\n", len(env.Analysis))

	tb := report.NewTable("Practice", "Cat", "Mean value", "Org percentile")
	type row struct {
		metric string
		pct    float64
	}
	var rows []row
	for _, metric := range practices.MetricNames {
		rows = append(rows, row{metric, 100 * stats.CDFAt(orgMeans[metric], netMean[metric])})
	}
	// Highest-percentile practices first: the outliers operators should
	// look at.
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].pct > rows[j].pct })
	for _, r := range rows {
		cat := "D"
		if practices.Category(r.metric) == "operational" {
			cat = "O"
		}
		tb.AddRow(practices.DisplayName(r.metric), cat,
			report.F(netMean[r.metric]), fmt.Sprintf("p%.0f", r.pct))
	}
	b.WriteString(tb.String())

	// Health history.
	b.WriteString("\nMonthly health (tickets, class):\n")
	for _, ma := range mas {
		tickets := env.OSP.Tickets.HealthCount(network, ma.Month)
		cls := FiveClass.ClassNames()[dataset.Class5(tickets)]
		fmt.Fprintf(&b, "  %s  %3d tickets  %s\n", ma.Month, tickets, cls)
	}
	return b.String(), nil
}
