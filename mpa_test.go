package mpa

import (
	"strings"
	"testing"
	"time"

	"mpa/internal/ticketing"
)

// testFramework is built once for the package's tests.
var testFramework = mustFramework()

func mustFramework() *Framework {
	cfg := SmallConfig(3)
	cfg.Networks = 80
	f, err := NewSynthetic(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

func TestNewSyntheticDeterministic(t *testing.T) {
	cfg := SmallConfig(8)
	cfg.Networks = 10
	a, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dataset().String() != b.Dataset().String() {
		t.Fatal("datasets differ across identical configs")
	}
	ra := a.RankPractices()
	rb := b.RankPractices()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("rankings differ across identical configs")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	// A zero-ish config gets sane defaults instead of panicking.
	f, err := NewSynthetic(Config{Seed: 1, Networks: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Window()) != 17 {
		t.Errorf("default window = %d months, want the 17-month study", len(f.Window()))
	}
}

func TestDefaultConfigPaperScale(t *testing.T) {
	cfg := DefaultConfig(1)
	if cfg.Networks != 850 {
		t.Errorf("networks = %d, want 850", cfg.Networks)
	}
	start, end := StudyWindow()
	if cfg.Start != start || cfg.End != end {
		t.Error("default window is not the study window")
	}
}

func TestRankPracticesComplete(t *testing.T) {
	ranked := testFramework.RankPractices()
	if len(ranked) != len(MetricNames) {
		t.Fatalf("ranked %d practices, want %d", len(ranked), len(MetricNames))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].MI > ranked[i-1].MI {
			t.Fatal("ranking not sorted by MI")
		}
	}
	for _, e := range ranked {
		if e.MI < 0 {
			t.Errorf("%s has negative MI %v", e.Metric, e.MI)
		}
	}
}

func TestAnalyzeCausalAPI(t *testing.T) {
	res, err := testFramework.AnalyzeCausal("no_change_events")
	if err != nil {
		t.Fatal(err)
	}
	if res.Treatment != "no_change_events" || len(res.Points) != 4 {
		t.Fatalf("result = %+v", res)
	}
}

func TestTrainHealthModel(t *testing.T) {
	for _, g := range []Granularity{TwoClass, FiveClass} {
		model, err := testFramework.TrainHealthModel(g)
		if err != nil {
			t.Fatal(err)
		}
		q := model.Quality()
		if q.Accuracy <= 0 || q.Accuracy > 1 {
			t.Errorf("%d-class accuracy = %v", int(g), q.Accuracy)
		}
		if len(q.Precision) != int(g) || len(q.Recall) != int(g) {
			t.Errorf("%d-class precision/recall lengths wrong", int(g))
		}
		// Predictions are valid class indexes.
		for _, c := range testFramework.Dataset().Cases[:20] {
			p := model.Predict(c.Metrics)
			if p < 0 || p >= int(g) {
				t.Fatalf("prediction %d out of range", p)
			}
			if model.PredictClassName(c.Metrics) == "" {
				t.Fatal("empty class name")
			}
		}
	}
}

func TestTwoClassBeatsBaseline(t *testing.T) {
	model, err := testFramework.TrainHealthModel(TwoClass)
	if err != nil {
		t.Fatal(err)
	}
	q := model.Quality()
	if q.Accuracy <= q.MajorityAccuracy {
		t.Errorf("model %.3f <= majority %.3f", q.Accuracy, q.MajorityAccuracy)
	}
}

func TestTrainHealthModelErrors(t *testing.T) {
	if _, err := testFramework.TrainHealthModelOn(&Dataset{}, TwoClass, ModelOptions{}); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := testFramework.TrainHealthModelOn(testFramework.Dataset(), Granularity(3), ModelOptions{}); err == nil {
		t.Error("bad granularity should error")
	}
}

func TestPredictOnline(t *testing.T) {
	preds, err := testFramework.PredictOnline(TwoClass, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(testFramework.Window())-2 {
		t.Fatalf("predictions for %d months", len(preds))
	}
	for _, p := range preds {
		if p.Accuracy < 0 || p.Accuracy > 1 || p.Cases <= 0 {
			t.Errorf("bad prediction %+v", p)
		}
	}
	if _, err := testFramework.PredictOnline(TwoClass, 0); err == nil {
		t.Error("zero history should error")
	}
}

func TestExperimentAPI(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments", len(ids))
	}
	r, ok := testFramework.Experiment("figure9")
	if !ok || r.Text == "" {
		t.Fatal("figure9 experiment failed")
	}
	if _, ok := testFramework.Experiment("bogus"); ok {
		t.Error("bogus experiment resolved")
	}
}

func TestNewFromOwnData(t *testing.T) {
	// An organization plugging in its own (here: borrowed synthetic)
	// data sources.
	src := testFramework
	start, end := src.Window()[0], src.Window()[len(src.Window())-1]
	f, err := New(src.Inventory(), src.environment().OSP.Archive, src.Tickets(), start, end)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dataset().Len() != src.Dataset().Len() {
		t.Errorf("case counts differ: %d vs %d", f.Dataset().Len(), src.Dataset().Len())
	}
	// Same data => same ranking.
	if f.RankPractices()[0] != src.RankPractices()[0] {
		t.Error("top practice differs on identical data")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil, Month{}, Month{}); err == nil {
		t.Error("nil sources should error")
	}
	inv := &Inventory{}
	arch := testFramework.environment().OSP.Archive
	log := ticketing.NewLog()
	end := Month{Year: 2014, Mon: time.January}
	start := Month{Year: 2014, Mon: time.March}
	if _, err := New(inv, arch, log, start, end); err == nil {
		t.Error("inverted window should error")
	}
}

func TestGranularityClassNames(t *testing.T) {
	if len(TwoClass.ClassNames()) != 2 || len(FiveClass.ClassNames()) != 5 {
		t.Error("class name lengths wrong")
	}
}

func TestMetricHelpers(t *testing.T) {
	if len(MetricNames) != 28 {
		t.Fatalf("MetricNames = %d", len(MetricNames))
	}
	if DisplayName("no_devices") != "No. of devices" {
		t.Error("DisplayName wrong")
	}
	if MetricCategory("no_devices") != "design" || MetricCategory("no_change_events") != "operational" {
		t.Error("MetricCategory wrong")
	}
}

func TestMonthOf(t *testing.T) {
	m := MonthOf(time.Date(2014, 3, 15, 10, 0, 0, 0, time.UTC))
	if m != (Month{Year: 2014, Mon: time.March}) {
		t.Errorf("MonthOf = %v", m)
	}
}

func TestSaveAndLoadOrganization(t *testing.T) {
	cfg := SmallConfig(13)
	cfg.Networks = 6
	f, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := f.Save(dir); err != nil {
		t.Fatal(err)
	}
	start, end := f.Window()[0], f.Window()[len(f.Window())-1]
	loaded, err := LoadOrganization(dir, nil, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dataset().Len() != f.Dataset().Len() {
		t.Fatalf("case counts differ: %d vs %d", loaded.Dataset().Len(), f.Dataset().Len())
	}
	// Ticket-derived labels must be identical; metrics nearly so (the
	// on-disk format truncates snapshot times to whole seconds).
	for i := range f.Dataset().Cases {
		if loaded.Dataset().Cases[i].Tickets != f.Dataset().Cases[i].Tickets {
			t.Fatalf("case %d ticket count differs", i)
		}
	}
}

func TestLoadOrganizationMissingDir(t *testing.T) {
	start, end := StudyWindow()
	if _, err := LoadOrganization("/no/such/dir", nil, start, end); err == nil {
		t.Error("expected error")
	}
}

func TestWhatIf(t *testing.T) {
	model, err := testFramework.TrainHealthModel(TwoClass)
	if err != nil {
		t.Fatal(err)
	}
	c := testFramework.Dataset().Cases[0]
	// No adjustment: baseline == adjusted.
	same := model.WhatIf(c.Metrics, nil)
	if same.Baseline != same.Adjusted {
		t.Errorf("no-op adjustment changed prediction: %+v", same)
	}
	if same.Improved() {
		t.Error("no-op adjustment reported as improvement")
	}
	// The original metrics must not be mutated by the adjustment.
	before := c.Metrics["no_change_events"]
	model.WhatIf(c.Metrics, Metrics{"no_change_events": before * 10})
	if c.Metrics["no_change_events"] != before {
		t.Error("WhatIf mutated the input metrics")
	}
	// Class names line up with labels.
	r := model.WhatIf(c.Metrics, Metrics{"no_change_events": 1e9})
	if r.AdjustedName != TwoClass.ClassNames()[r.Adjusted] {
		t.Errorf("class name mismatch: %+v", r)
	}
}

func TestNetworkReport(t *testing.T) {
	name := testFramework.Dataset().Networks()[0]
	out, err := testFramework.NetworkReport(name)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, name) || !strings.Contains(out, "Org percentile") {
		t.Errorf("report missing content:\n%s", out)
	}
	if !strings.Contains(out, "tickets") {
		t.Error("report missing health history")
	}
	if _, err := testFramework.NetworkReport("nope"); err == nil {
		t.Error("unknown network should error")
	}
}
