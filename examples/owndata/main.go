// Own-data workflow: how an organization runs MPA on its own records.
// This example exports a synthetic organization to the open on-disk
// layout (inventory.json, tickets.csv, a RANCID-style snapshots/ tree),
// then loads it back the way a real deployment would load its archives,
// and analyzes the loaded data.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mpa"
)

func main() {
	dir, err := os.MkdirTemp("", "mpa-owndata-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Stand-in for a real organization: generate and export one.
	cfg := mpa.SmallConfig(7)
	cfg.Networks = 30
	src, err := mpa.NewSynthetic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := src.Save(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Println("exported organization to", dir)
	for _, name := range []string{"inventory.json", "tickets.csv", "snapshots"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s %v\n", name, info.Mode())
	}

	// A real deployment starts here: point MPA at the directory.
	window := src.Window()
	f, err := mpa.LoadOrganization(dir, mpa.DefaultAutomationAccounts,
		window[0], window[len(window)-1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nloaded:", f.Dataset())

	fmt.Println("\nTop practices by dependence with health:")
	for i, e := range f.RankPractices()[:3] {
		fmt.Printf("  %d. %-30s MI=%.3f\n", i+1, mpa.DisplayName(e.Metric), e.MI)
	}

	// Per-network report card for the busiest network.
	var worst string
	worstTickets := -1
	for _, name := range f.Dataset().Networks() {
		total := 0
		for _, c := range f.Dataset().Cases {
			if c.Network == name {
				total += c.Tickets
			}
		}
		if total > worstTickets {
			worst, worstTickets = name, total
		}
	}
	card, err := f.NetworkReport(worst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreport card for the unhealthiest network (%d tickets total):\n\n%s", worstTickets, card)
}
