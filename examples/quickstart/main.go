// Quickstart: generate a small synthetic organization, discover which
// management practices relate to network health, and train a health
// predictor — the end-to-end MPA workflow in ~40 lines.
package main

import (
	"fmt"
	"log"

	"mpa"
)

func main() {
	// A small organization: 60 networks over six months. The same seed
	// always produces the same organization.
	f, err := mpa.NewSynthetic(mpa.SmallConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset:", f.Dataset())

	// 1. Which practices have the strongest statistical dependence with
	// network health (monthly trouble-ticket counts)?
	fmt.Println("\nTop practices by mutual information with health:")
	for i, e := range f.RankPractices()[:5] {
		fmt.Printf("  %d. %-34s MI=%.3f bits (%s practice)\n",
			i+1, mpa.DisplayName(e.Metric), e.MI, mpa.MetricCategory(e.Metric))
	}

	// 2. Does the top practice *cause* health problems, or is it merely
	// correlated? Run the matched-design quasi-experiment.
	top := f.RankPractices()[0].Metric
	causal, err := f.AnalyzeCausal(top)
	if err != nil {
		log.Fatal(err)
	}
	p := causal.Points[0] // the 1:2 comparison (low vs slightly-higher)
	fmt.Printf("\nCausal analysis of %s at %s: %d matched pairs, p=%.3g",
		mpa.DisplayName(top), p.Comparison, p.Pairs, p.PValue)
	if p.Causal {
		fmt.Println(" — causal impact on health")
	} else {
		fmt.Println(" — no causal conclusion")
	}

	// 3. Train a coarse-grained (healthy vs unhealthy) health model and
	// check its cross-validated quality against the majority baseline.
	model, err := f.TrainHealthModel(mpa.TwoClass)
	if err != nil {
		log.Fatal(err)
	}
	q := model.Quality()
	fmt.Printf("\n2-class health model: accuracy %.1f%% (majority baseline %.1f%%)\n",
		100*q.Accuracy, 100*q.MajorityAccuracy)

	// 4. Use the model: predict health for one network-month.
	c := f.Dataset().Cases[0]
	fmt.Printf("network %s in %s: predicted %s, actually %d tickets\n",
		c.Network, c.Month, model.PredictClassName(c.Metrics), c.Tickets)
}
