// Health prediction walkthrough: the paper's §6 pipeline — train 2-class
// and 5-class health models, compare the skew remedies (boosting and
// oversampling), and run online month-ahead prediction (Table 9).
package main

import (
	"fmt"
	"log"

	"mpa"
)

func main() {
	cfg := mpa.SmallConfig(99)
	cfg.Networks = 150
	start, _ := mpa.StudyWindow()
	cfg.Start = start
	cfg.End = start.Add(11)
	f, err := mpa.NewSynthetic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset:", f.Dataset())

	// Coarse model: healthy (<=1 ticket/month) vs unhealthy.
	two, err := f.TrainHealthModel(mpa.TwoClass)
	if err != nil {
		log.Fatal(err)
	}
	q := two.Quality()
	fmt.Printf("\n2-class model (pruned decision tree, 5-fold CV):\n")
	fmt.Printf("  accuracy %.1f%%  — majority baseline %.1f%%\n", 100*q.Accuracy, 100*q.MajorityAccuracy)
	for c, name := range mpa.TwoClass.ClassNames() {
		fmt.Printf("  %-10s precision %.2f, recall %.2f\n", name, q.Precision[c], q.Recall[c])
	}

	// Fine-grained model: skew makes plain trees overfit the majority
	// class; compare plain vs the paper's oversampling+boosting remedy.
	plain, err := f.TrainHealthModelOn(f.Dataset(), mpa.FiveClass, mpa.ModelOptions{Folds: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	best, err := f.TrainHealthModel(mpa.FiveClass)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n5-class recall by class (plain tree vs oversampled+boosted):\n")
	for c, name := range mpa.FiveClass.ClassNames() {
		fmt.Printf("  %-10s %.2f -> %.2f\n", name,
			plain.Quality().Recall[c], best.Quality().Recall[c])
	}

	// Online prediction: each month, train on the prior M months and
	// predict the coming month's health per network (paper Table 9).
	fmt.Printf("\nOnline month-ahead accuracy:\n")
	for _, m := range []int{1, 3, 6} {
		preds, err := f.PredictOnline(mpa.TwoClass, m)
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		for _, p := range preds {
			sum += p.Accuracy
		}
		fmt.Printf("  M=%d months of history: %.1f%% over %d test months\n",
			m, 100*sum/float64(len(preds)), len(preds))
	}

	// What-if analysis: take a real unhealthy case and ask what the
	// model predicts if the network halved its change events.
	var sample *mpa.Case
	for i := range f.Dataset().Cases {
		c := &f.Dataset().Cases[i]
		if c.Tickets >= 6 {
			sample = c
			break
		}
	}
	if sample != nil {
		fmt.Printf("\nWhat-if for %s (%s, %d tickets): predicted %q\n",
			sample.Network, sample.Month, sample.Tickets, two.PredictClassName(sample.Metrics))
		adjusted := mpa.Metrics{}
		for k, v := range sample.Metrics {
			adjusted[k] = v
		}
		adjusted["no_change_events"] /= 2
		adjusted["no_config_changes"] /= 2
		fmt.Printf("  with half the change events: predicted %q\n",
			two.PredictClassName(adjusted))
	}
}
