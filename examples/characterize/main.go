// Characterization walkthrough: the Appendix-A study of how management
// practices vary across an organization's networks — design structure
// (Figure 11), change behaviour (Figure 12), and change events (Figure
// 13), plus the grouping-threshold sensitivity sweep (Figure 3).
package main

import (
	"fmt"
	"log"
	"strings"

	"mpa"
)

func main() {
	cfg := mpa.SmallConfig(5)
	cfg.Networks = 200
	start, _ := mpa.StudyWindow()
	cfg.Start = start
	cfg.End = start.Add(7)
	f, err := mpa.NewSynthetic(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, id := range []string{"table2", "figure3", "figure11", "figure12", "figure13"} {
		r, ok := f.Experiment(id)
		if !ok {
			log.Fatalf("unknown experiment %s", id)
		}
		fmt.Println(r.Title)
		fmt.Println(strings.Repeat("=", len(r.Title)))
		fmt.Println(r.Text)
	}

	// The characterization's punchline (paper §3.2): practices vary
	// enormously even inside one organization with shared guidelines.
	rank := f.RankPractices()
	fmt.Println("Diversity summary: MI spread across the 28 practices:")
	fmt.Printf("  strongest dependence: %s (%.3f bits)\n",
		mpa.DisplayName(rank[0].Metric), rank[0].MI)
	fmt.Printf("  weakest dependence:   %s (%.3f bits)\n",
		mpa.DisplayName(rank[len(rank)-1].Metric), rank[len(rank)-1].MI)
}
