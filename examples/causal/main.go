// Causal analysis walkthrough: the paper's §5.2 pipeline applied to the
// "number of change events" practice, with full diagnostics — matching
// statistics, balance verification, and sign-test outcomes — mirroring
// Tables 5 and 6.
package main

import (
	"fmt"
	"log"
	"math"

	"mpa"
)

func main() {
	cfg := mpa.SmallConfig(7)
	cfg.Networks = 240
	start, _ := mpa.StudyWindow()
	cfg.Start = start
	cfg.End = start.Add(9)
	f, err := mpa.NewSynthetic(cfg)
	if err != nil {
		log.Fatal(err)
	}

	const treatment = "no_change_events"
	fmt.Printf("Matched-design quasi-experiment: does %q causally impact health?\n",
		mpa.DisplayName(treatment))
	fmt.Printf("Controlling for the other %d practice metrics via propensity scores.\n\n",
		len(mpa.MetricNames)-1)

	res, err := f.AnalyzeCausal(treatment)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Points {
		fmt.Printf("Comparison point %s (treatment bin vs next bin):\n", p.Comparison)
		if p.Skipped {
			fmt.Println("  skipped: too few cases in a group")
			continue
		}
		fmt.Printf("  groups: %d untreated vs %d treated cases\n", p.UntreatedCases, p.TreatedCases)
		fmt.Printf("  matching: %d pairs (k=1 nearest propensity, with replacement);\n", p.Pairs)
		fmt.Printf("            %d distinct untreated cases used\n", p.UntreatedUsed)
		fmt.Printf("  propensity balance: |std diff| %.4f (<0.25), var ratio %.3f (0.5..2)\n",
			math.Abs(p.PropensityBalance.StdMeanDiff), p.PropensityBalance.VarRatio)
		fmt.Printf("  confounders out of balance: %d of %d",
			len(p.Imbalanced), len(p.ConfounderBalance))
		if len(p.Imbalanced) > 0 {
			fmt.Printf(" (%v)", p.Imbalanced)
		}
		fmt.Println()
		fmt.Printf("  outcomes: %d pairs with more tickets under treatment, %d fewer, %d ties\n",
			p.MoreTickets, p.FewerTickets, p.NoEffect)
		fmt.Printf("  sign test p-value: %.4g\n", p.PValue)
		switch {
		case !p.Balanced:
			fmt.Println("  verdict: matching imbalanced — no causal conclusion (paper Table 8's 'Imbal.')")
		case p.Causal:
			fmt.Println("  verdict: causal relationship (p < 0.001)")
		default:
			fmt.Println("  verdict: not statistically significant at alpha = 0.001")
		}
		fmt.Println()
	}

	// The contrast the paper highlights: intra-device complexity has high
	// statistical dependence but no direct causal effect — it rides on
	// confounders like VLAN count.
	fmt.Println("Contrast: intra_device_complexity (high MI, confounded):")
	res2, err := f.AnalyzeCausal("intra_device_complexity")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res2.Points {
		verdict := "no causal conclusion"
		if p.Causal {
			verdict = "causal"
		}
		fmt.Printf("  %s: p=%.3g, balanced=%v — %s\n", p.Comparison, p.PValue, p.Balanced, verdict)
	}
}
