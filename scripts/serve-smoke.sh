#!/usr/bin/env bash
# serve-smoke.sh — end-to-end smoke test for `mpa serve`: build the
# binary, start a daemon over a small generated archive, query it,
# exercise the flight recorder (request-ID round-trip, /debug/requests,
# a per-request Chrome trace), stream one month of new data through the
# ingest path (SSE subscriber + `mpa nextmonth` + POST /v1/ingest), and
# assert a clean graceful shutdown on SIGINT. A second phase starts a
# 2-org sharded daemon (`serve -orgs`) and checks tenant routing by
# path and header, cross-tenant 404s, fleet aggregates, and per-tenant
# metric series.
#
# Usage: scripts/serve-smoke.sh [port] (the sharded phase uses port+1)
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18080}"
BIN="$(mktemp -d)/mpa"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/mpa

"$BIN" -networks 12 -months 3 -addr "127.0.0.1:$PORT" serve &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

# Wait for the daemon to load and listen (generation + inference).
for i in $(seq 1 120); do
    if curl -fsS "http://127.0.0.1:$PORT/healthz" >/tmp/healthz.json 2>/dev/null; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "serve-smoke: daemon exited before listening" >&2
        exit 1
    fi
    sleep 0.5
done

grep -q '"status": "ok"' /tmp/healthz.json || {
    echo "serve-smoke: /healthz did not report ok:" >&2
    cat /tmp/healthz.json >&2
    exit 1
}
echo "serve-smoke: /healthz ok"

# Fetch to a file first: `curl | grep -q` races SIGPIPE when grep
# matches inside the first chunk of a multi-chunk body.
curl -fsS "http://127.0.0.1:$PORT/v1/rank" >/tmp/rank.json
grep -q '"metric"' /tmp/rank.json || {
    echo "serve-smoke: /v1/rank missing ranked metrics" >&2
    exit 1
}
echo "serve-smoke: /v1/rank ok"

# Per-endpoint observability: the rank request above must show up in
# its own latency histogram and status-class counter on /metrics, and
# /debug/slo must summarize it with percentiles.
curl -fsS "http://127.0.0.1:$PORT/metrics" >/tmp/metrics.txt
for series in \
    'mpa_serve_latency_ns_rank_bucket{le=' \
    'mpa_serve_latency_ns_rank_count ' \
    'mpa_serve_status_rank_2xx_total ' \
    'mpa_serve_streams_open '; do
    grep -qF "$series" /tmp/metrics.txt || {
        echo "serve-smoke: /metrics missing $series" >&2
        exit 1
    }
done
curl -fsS "http://127.0.0.1:$PORT/debug/slo" >/tmp/slo.json
grep -q '"rank"' /tmp/slo.json && grep -q '"p99"' /tmp/slo.json || {
    echo "serve-smoke: /debug/slo missing rank percentiles:" >&2
    cat /tmp/slo.json >&2
    exit 1
}
echo "serve-smoke: per-endpoint metrics and /debug/slo ok"

# Flight recorder: a client-supplied X-Request-ID must round-trip back.
REQ_ID="smoke-$$"
GOT_ID="$(curl -fsS -D - -o /dev/null -H "X-Request-ID: $REQ_ID" \
    "http://127.0.0.1:$PORT/v1/causal?practice=no_change_events" \
    | tr -d '\r' | awk -F': ' 'tolower($1) == "x-request-id" {print $2}')"
if [ "$GOT_ID" != "$REQ_ID" ]; then
    echo "serve-smoke: X-Request-ID did not round-trip (sent $REQ_ID, got '$GOT_ID')" >&2
    exit 1
fi
echo "serve-smoke: X-Request-ID round-trip ok"

# The request must be findable in the recorder's ring by that ID.
curl -fsS "http://127.0.0.1:$PORT/debug/requests" >/tmp/debug-requests.json
grep -q "\"$REQ_ID\"" /tmp/debug-requests.json || {
    echo "serve-smoke: request $REQ_ID missing from /debug/requests:" >&2
    cat /tmp/debug-requests.json >&2
    exit 1
}
echo "serve-smoke: /debug/requests ok"

# And its per-request Chrome trace must be a well-formed trace file
# (traces of the slowest requests are always retained, and the first few
# requests trivially rank among the slowest).
curl -fsS "http://127.0.0.1:$PORT/debug/requests/$REQ_ID/trace" >/tmp/request-trace.json
grep -q '"traceEvents"' /tmp/request-trace.json && grep -q '"serve:causal"' /tmp/request-trace.json || {
    echo "serve-smoke: per-request trace malformed:" >&2
    cat /tmp/request-trace.json >&2
    exit 1
}
echo "serve-smoke: per-request trace ok"

# Streaming ingest: subscribe to the SSE feed, generate the next month
# with `mpa nextmonth` (prefix-stable, so it matches the daemon's
# organization), POST it, and assert the update both streamed out and
# became queryable in place.
curl -sN --max-time 30 "http://127.0.0.1:$PORT/v1/stream" >/tmp/stream.log &
CURL_PID=$!
for i in $(seq 1 40); do
    grep -q 'mpa ingest stream' /tmp/stream.log 2>/dev/null && break
    sleep 0.25
done
grep -q 'mpa ingest stream' /tmp/stream.log || {
    echo "serve-smoke: SSE stream never opened" >&2
    exit 1
}

"$BIN" -networks 12 -months 3 nextmonth >/tmp/update.json
curl -fsS -X POST --data-binary @/tmp/update.json \
    "http://127.0.0.1:$PORT/v1/ingest" >/tmp/ingest.json
grep -q '"new_month": true' /tmp/ingest.json || {
    echo "serve-smoke: ingest did not extend the window:" >&2
    cat /tmp/ingest.json >&2
    exit 1
}
NEW_MONTH="$(sed -n 's/.*"month": "\([0-9-]*\)".*/\1/p' /tmp/ingest.json | head -1)"
echo "serve-smoke: /v1/ingest applied $NEW_MONTH"

# The SSE subscriber must receive the per-network deltas and the
# refreshed ranking for that month.
for i in $(seq 1 40); do
    grep -q '^event: rank' /tmp/stream.log 2>/dev/null && break
    sleep 0.25
done
grep -q '^event: delta' /tmp/stream.log || {
    echo "serve-smoke: no delta events on /v1/stream:" >&2
    cat /tmp/stream.log >&2
    exit 1
}
grep -q '^event: rank' /tmp/stream.log || {
    echo "serve-smoke: no rank event on /v1/stream:" >&2
    cat /tmp/stream.log >&2
    exit 1
}
kill "$CURL_PID" 2>/dev/null || true
echo "serve-smoke: /v1/stream deltas ok ($(grep -c '^event: delta' /tmp/stream.log) networks)"

# The daemon must answer for the new month without restarting.
curl -fsS "http://127.0.0.1:$PORT/healthz" >/tmp/healthz2.json
grep -q "\"window_end\": \"$NEW_MONTH\"" /tmp/healthz2.json || {
    echo "serve-smoke: window did not advance to $NEW_MONTH:" >&2
    cat /tmp/healthz2.json >&2
    exit 1
}
curl -fsS "http://127.0.0.1:$PORT/v1/rank" >/tmp/rank2.json
grep -q '"metric"' /tmp/rank2.json || {
    echo "serve-smoke: /v1/rank broken after ingest" >&2
    exit 1
}
echo "serve-smoke: post-ingest queries ok (window_end=$NEW_MONTH)"

# Graceful shutdown: SIGINT must drain and exit 0.
kill -INT "$PID"
if wait "$PID"; then
    echo "serve-smoke: clean shutdown"
else
    echo "serve-smoke: daemon exited non-zero on SIGINT" >&2
    exit 1
fi

# ---- Phase 2: multi-tenant sharded serve ----------------------------
# Two orgs of different sizes so the fleet totals are distinguishable
# from either org alone: acme has 6 networks, globex 5, both 2 months.
PORT2=$((PORT + 1))
"$BIN" -addr "127.0.0.1:$PORT2" -orgs "acme=1:6:2,globex=2:5:2" serve &
PID2=$!
trap 'kill "$PID2" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

for i in $(seq 1 120); do
    if curl -fsS "http://127.0.0.1:$PORT2/healthz" >/tmp/fleet-healthz.json 2>/dev/null; then
        break
    fi
    if ! kill -0 "$PID2" 2>/dev/null; then
        echo "serve-smoke: sharded daemon exited before listening" >&2
        exit 1
    fi
    sleep 0.5
done
grep -q '"status": "ok"' /tmp/fleet-healthz.json && grep -q '"acme"' /tmp/fleet-healthz.json || {
    echo "serve-smoke: fleet /healthz did not report ok with orgs:" >&2
    cat /tmp/fleet-healthz.json >&2
    exit 1
}
echo "serve-smoke: sharded daemon up (2 orgs)"

# Path-segment routing: each org answers under /v1/orgs/<name>/.
curl -fsS "http://127.0.0.1:$PORT2/v1/orgs/acme/healthz" >/tmp/acme-healthz.json
grep -q '"org": "acme"' /tmp/acme-healthz.json && grep -q '"networks": 6' /tmp/acme-healthz.json || {
    echo "serve-smoke: /v1/orgs/acme/healthz wrong:" >&2
    cat /tmp/acme-healthz.json >&2
    exit 1
}
curl -fsS "http://127.0.0.1:$PORT2/v1/orgs/acme/rank" >/tmp/acme-rank.json
grep -q '"metric"' /tmp/acme-rank.json || {
    echo "serve-smoke: /v1/orgs/acme/rank missing ranked metrics" >&2
    exit 1
}
echo "serve-smoke: path-segment routing ok"

# Header routing: X-MPA-Org selects the shard on the bare /v1 routes
# and must agree byte-for-byte with the path form.
curl -fsS -H 'X-MPA-Org: globex' "http://127.0.0.1:$PORT2/v1/rank" >/tmp/globex-rank-hdr.json
curl -fsS "http://127.0.0.1:$PORT2/v1/orgs/globex/rank" >/tmp/globex-rank-path.json
cmp -s /tmp/globex-rank-hdr.json /tmp/globex-rank-path.json || {
    echo "serve-smoke: header- and path-routed /v1/rank differ for globex" >&2
    exit 1
}
echo "serve-smoke: X-MPA-Org header routing ok"

# Tenant boundaries: unknown orgs are 404s, and a bare query against a
# multi-org daemon is a 400 naming the choices.
CODE="$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT2/v1/orgs/nope/rank")"
[ "$CODE" = 404 ] || {
    echo "serve-smoke: /v1/orgs/nope/rank returned $CODE, want 404" >&2
    exit 1
}
CODE="$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT2/v1/rank")"
[ "$CODE" = 400 ] || {
    echo "serve-smoke: org-less /v1/rank returned $CODE, want 400" >&2
    exit 1
}
echo "serve-smoke: cross-tenant 404 and org-less 400 ok"

# Fleet aggregates: totals must span both orgs (6+5 networks) and the
# merged ranking must cover all 28 practice metrics.
curl -fsS "http://127.0.0.1:$PORT2/v1/fleet/health" >/tmp/fleet-health.json
grep -q '"orgs": 2' /tmp/fleet-health.json && grep -q '"networks": 11' /tmp/fleet-health.json || {
    echo "serve-smoke: /v1/fleet/health totals wrong:" >&2
    cat /tmp/fleet-health.json >&2
    exit 1
}
curl -fsS "http://127.0.0.1:$PORT2/v1/fleet/rank" >/tmp/fleet-rank.json
RANKED="$(grep -c '"metric"' /tmp/fleet-rank.json)"
[ "$RANKED" = 28 ] || {
    echo "serve-smoke: /v1/fleet/rank has $RANKED metric rows, want 28" >&2
    exit 1
}
echo "serve-smoke: fleet aggregates ok (11 networks, 28 metrics)"

# Per-tenant observability: the acme queries above must appear in
# tenant-prefixed series next to the fleet-wide ones, and /debug/slo
# must break endpoints down per org.
curl -fsS "http://127.0.0.1:$PORT2/metrics" >/tmp/fleet-metrics.txt
for series in \
    'mpa_serve_latency_ns_rank_count ' \
    'mpa_serve_tenant_acme_latency_ns_rank_count ' \
    'mpa_serve_tenant_globex_status_rank_2xx_total '; do
    grep -qF "$series" /tmp/fleet-metrics.txt || {
        echo "serve-smoke: /metrics missing $series" >&2
        exit 1
    }
done
curl -fsS "http://127.0.0.1:$PORT2/debug/slo" >/tmp/fleet-slo.json
grep -q '"tenants"' /tmp/fleet-slo.json && grep -q '"acme"' /tmp/fleet-slo.json || {
    echo "serve-smoke: /debug/slo missing per-tenant breakdown:" >&2
    cat /tmp/fleet-slo.json >&2
    exit 1
}
echo "serve-smoke: per-tenant metrics and /debug/slo ok"

kill -INT "$PID2"
if wait "$PID2"; then
    echo "serve-smoke: sharded clean shutdown"
else
    echo "serve-smoke: sharded daemon exited non-zero on SIGINT" >&2
    exit 1
fi
