#!/usr/bin/env bash
# serve-smoke.sh — end-to-end smoke test for `mpa serve`: build the
# binary, start a daemon over a small generated archive, query it,
# exercise the flight recorder (request-ID round-trip, /debug/requests,
# a per-request Chrome trace), stream one month of new data through the
# ingest path (SSE subscriber + `mpa nextmonth` + POST /v1/ingest), and
# assert a clean graceful shutdown on SIGINT.
#
# Usage: scripts/serve-smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18080}"
BIN="$(mktemp -d)/mpa"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/mpa

"$BIN" -networks 12 -months 3 -addr "127.0.0.1:$PORT" serve &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

# Wait for the daemon to load and listen (generation + inference).
for i in $(seq 1 120); do
    if curl -fsS "http://127.0.0.1:$PORT/healthz" >/tmp/healthz.json 2>/dev/null; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "serve-smoke: daemon exited before listening" >&2
        exit 1
    fi
    sleep 0.5
done

grep -q '"status": "ok"' /tmp/healthz.json || {
    echo "serve-smoke: /healthz did not report ok:" >&2
    cat /tmp/healthz.json >&2
    exit 1
}
echo "serve-smoke: /healthz ok"

# Fetch to a file first: `curl | grep -q` races SIGPIPE when grep
# matches inside the first chunk of a multi-chunk body.
curl -fsS "http://127.0.0.1:$PORT/v1/rank" >/tmp/rank.json
grep -q '"metric"' /tmp/rank.json || {
    echo "serve-smoke: /v1/rank missing ranked metrics" >&2
    exit 1
}
echo "serve-smoke: /v1/rank ok"

# Per-endpoint observability: the rank request above must show up in
# its own latency histogram and status-class counter on /metrics, and
# /debug/slo must summarize it with percentiles.
curl -fsS "http://127.0.0.1:$PORT/metrics" >/tmp/metrics.txt
for series in \
    'mpa_serve_latency_ns_rank_bucket{le=' \
    'mpa_serve_latency_ns_rank_count ' \
    'mpa_serve_status_rank_2xx_total ' \
    'mpa_serve_streams_open '; do
    grep -qF "$series" /tmp/metrics.txt || {
        echo "serve-smoke: /metrics missing $series" >&2
        exit 1
    }
done
curl -fsS "http://127.0.0.1:$PORT/debug/slo" >/tmp/slo.json
grep -q '"rank"' /tmp/slo.json && grep -q '"p99"' /tmp/slo.json || {
    echo "serve-smoke: /debug/slo missing rank percentiles:" >&2
    cat /tmp/slo.json >&2
    exit 1
}
echo "serve-smoke: per-endpoint metrics and /debug/slo ok"

# Flight recorder: a client-supplied X-Request-ID must round-trip back.
REQ_ID="smoke-$$"
GOT_ID="$(curl -fsS -D - -o /dev/null -H "X-Request-ID: $REQ_ID" \
    "http://127.0.0.1:$PORT/v1/causal?practice=no_change_events" \
    | tr -d '\r' | awk -F': ' 'tolower($1) == "x-request-id" {print $2}')"
if [ "$GOT_ID" != "$REQ_ID" ]; then
    echo "serve-smoke: X-Request-ID did not round-trip (sent $REQ_ID, got '$GOT_ID')" >&2
    exit 1
fi
echo "serve-smoke: X-Request-ID round-trip ok"

# The request must be findable in the recorder's ring by that ID.
curl -fsS "http://127.0.0.1:$PORT/debug/requests" >/tmp/debug-requests.json
grep -q "\"$REQ_ID\"" /tmp/debug-requests.json || {
    echo "serve-smoke: request $REQ_ID missing from /debug/requests:" >&2
    cat /tmp/debug-requests.json >&2
    exit 1
}
echo "serve-smoke: /debug/requests ok"

# And its per-request Chrome trace must be a well-formed trace file
# (traces of the slowest requests are always retained, and the first few
# requests trivially rank among the slowest).
curl -fsS "http://127.0.0.1:$PORT/debug/requests/$REQ_ID/trace" >/tmp/request-trace.json
grep -q '"traceEvents"' /tmp/request-trace.json && grep -q '"serve:causal"' /tmp/request-trace.json || {
    echo "serve-smoke: per-request trace malformed:" >&2
    cat /tmp/request-trace.json >&2
    exit 1
}
echo "serve-smoke: per-request trace ok"

# Streaming ingest: subscribe to the SSE feed, generate the next month
# with `mpa nextmonth` (prefix-stable, so it matches the daemon's
# organization), POST it, and assert the update both streamed out and
# became queryable in place.
curl -sN --max-time 30 "http://127.0.0.1:$PORT/v1/stream" >/tmp/stream.log &
CURL_PID=$!
for i in $(seq 1 40); do
    grep -q 'mpa ingest stream' /tmp/stream.log 2>/dev/null && break
    sleep 0.25
done
grep -q 'mpa ingest stream' /tmp/stream.log || {
    echo "serve-smoke: SSE stream never opened" >&2
    exit 1
}

"$BIN" -networks 12 -months 3 nextmonth >/tmp/update.json
curl -fsS -X POST --data-binary @/tmp/update.json \
    "http://127.0.0.1:$PORT/v1/ingest" >/tmp/ingest.json
grep -q '"new_month": true' /tmp/ingest.json || {
    echo "serve-smoke: ingest did not extend the window:" >&2
    cat /tmp/ingest.json >&2
    exit 1
}
NEW_MONTH="$(sed -n 's/.*"month": "\([0-9-]*\)".*/\1/p' /tmp/ingest.json | head -1)"
echo "serve-smoke: /v1/ingest applied $NEW_MONTH"

# The SSE subscriber must receive the per-network deltas and the
# refreshed ranking for that month.
for i in $(seq 1 40); do
    grep -q '^event: rank' /tmp/stream.log 2>/dev/null && break
    sleep 0.25
done
grep -q '^event: delta' /tmp/stream.log || {
    echo "serve-smoke: no delta events on /v1/stream:" >&2
    cat /tmp/stream.log >&2
    exit 1
}
grep -q '^event: rank' /tmp/stream.log || {
    echo "serve-smoke: no rank event on /v1/stream:" >&2
    cat /tmp/stream.log >&2
    exit 1
}
kill "$CURL_PID" 2>/dev/null || true
echo "serve-smoke: /v1/stream deltas ok ($(grep -c '^event: delta' /tmp/stream.log) networks)"

# The daemon must answer for the new month without restarting.
curl -fsS "http://127.0.0.1:$PORT/healthz" >/tmp/healthz2.json
grep -q "\"window_end\": \"$NEW_MONTH\"" /tmp/healthz2.json || {
    echo "serve-smoke: window did not advance to $NEW_MONTH:" >&2
    cat /tmp/healthz2.json >&2
    exit 1
}
curl -fsS "http://127.0.0.1:$PORT/v1/rank" >/tmp/rank2.json
grep -q '"metric"' /tmp/rank2.json || {
    echo "serve-smoke: /v1/rank broken after ingest" >&2
    exit 1
}
echo "serve-smoke: post-ingest queries ok (window_end=$NEW_MONTH)"

# Graceful shutdown: SIGINT must drain and exit 0.
kill -INT "$PID"
if wait "$PID"; then
    echo "serve-smoke: clean shutdown"
else
    echo "serve-smoke: daemon exited non-zero on SIGINT" >&2
    exit 1
fi
