#!/usr/bin/env bash
# serve-smoke.sh — end-to-end smoke test for `mpa serve`: build the
# binary, start a daemon over a small generated archive, query it, and
# assert a clean graceful shutdown on SIGINT.
#
# Usage: scripts/serve-smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18080}"
BIN="$(mktemp -d)/mpa"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/mpa

"$BIN" -networks 12 -months 3 -addr "127.0.0.1:$PORT" serve &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

# Wait for the daemon to load and listen (generation + inference).
for i in $(seq 1 120); do
    if curl -fsS "http://127.0.0.1:$PORT/healthz" >/tmp/healthz.json 2>/dev/null; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "serve-smoke: daemon exited before listening" >&2
        exit 1
    fi
    sleep 0.5
done

grep -q '"status": "ok"' /tmp/healthz.json || {
    echo "serve-smoke: /healthz did not report ok:" >&2
    cat /tmp/healthz.json >&2
    exit 1
}
echo "serve-smoke: /healthz ok"

curl -fsS "http://127.0.0.1:$PORT/v1/rank" | grep -q '"metric"' || {
    echo "serve-smoke: /v1/rank missing ranked metrics" >&2
    exit 1
}
echo "serve-smoke: /v1/rank ok"

# Graceful shutdown: SIGINT must drain and exit 0.
kill -INT "$PID"
if wait "$PID"; then
    echo "serve-smoke: clean shutdown"
else
    echo "serve-smoke: daemon exited non-zero on SIGINT" >&2
    exit 1
fi
