#!/usr/bin/env bash
# serve-smoke.sh — end-to-end smoke test for `mpa serve`: build the
# binary, start a daemon over a small generated archive, query it,
# exercise the flight recorder (request-ID round-trip, /debug/requests,
# a per-request Chrome trace), and assert a clean graceful shutdown on
# SIGINT.
#
# Usage: scripts/serve-smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18080}"
BIN="$(mktemp -d)/mpa"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/mpa

"$BIN" -networks 12 -months 3 -addr "127.0.0.1:$PORT" serve &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

# Wait for the daemon to load and listen (generation + inference).
for i in $(seq 1 120); do
    if curl -fsS "http://127.0.0.1:$PORT/healthz" >/tmp/healthz.json 2>/dev/null; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "serve-smoke: daemon exited before listening" >&2
        exit 1
    fi
    sleep 0.5
done

grep -q '"status": "ok"' /tmp/healthz.json || {
    echo "serve-smoke: /healthz did not report ok:" >&2
    cat /tmp/healthz.json >&2
    exit 1
}
echo "serve-smoke: /healthz ok"

curl -fsS "http://127.0.0.1:$PORT/v1/rank" | grep -q '"metric"' || {
    echo "serve-smoke: /v1/rank missing ranked metrics" >&2
    exit 1
}
echo "serve-smoke: /v1/rank ok"

# Flight recorder: a client-supplied X-Request-ID must round-trip back.
REQ_ID="smoke-$$"
GOT_ID="$(curl -fsS -D - -o /dev/null -H "X-Request-ID: $REQ_ID" \
    "http://127.0.0.1:$PORT/v1/causal?practice=no_change_events" \
    | tr -d '\r' | awk -F': ' 'tolower($1) == "x-request-id" {print $2}')"
if [ "$GOT_ID" != "$REQ_ID" ]; then
    echo "serve-smoke: X-Request-ID did not round-trip (sent $REQ_ID, got '$GOT_ID')" >&2
    exit 1
fi
echo "serve-smoke: X-Request-ID round-trip ok"

# The request must be findable in the recorder's ring by that ID.
curl -fsS "http://127.0.0.1:$PORT/debug/requests" >/tmp/debug-requests.json
grep -q "\"$REQ_ID\"" /tmp/debug-requests.json || {
    echo "serve-smoke: request $REQ_ID missing from /debug/requests:" >&2
    cat /tmp/debug-requests.json >&2
    exit 1
}
echo "serve-smoke: /debug/requests ok"

# And its per-request Chrome trace must be a well-formed trace file
# (traces of the slowest requests are always retained, and the first few
# requests trivially rank among the slowest).
curl -fsS "http://127.0.0.1:$PORT/debug/requests/$REQ_ID/trace" >/tmp/request-trace.json
grep -q '"traceEvents"' /tmp/request-trace.json && grep -q '"serve:causal"' /tmp/request-trace.json || {
    echo "serve-smoke: per-request trace malformed:" >&2
    cat /tmp/request-trace.json >&2
    exit 1
}
echo "serve-smoke: per-request trace ok"

# Graceful shutdown: SIGINT must drain and exit 0.
kill -INT "$PID"
if wait "$PID"; then
    echo "serve-smoke: clean shutdown"
else
    echo "serve-smoke: daemon exited non-zero on SIGINT" >&2
    exit 1
fi
