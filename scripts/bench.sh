#!/usr/bin/env bash
# bench.sh — run the pipeline stage benchmarks and record a JSON baseline.
#
# Usage:
#
#   scripts/bench.sh [count]
#
# Runs BenchmarkGenerate, BenchmarkInference, BenchmarkInferenceWarmCache,
# BenchmarkIngestMonth (the streaming-ingest cost of one new month),
# the per-dialect parse/diff stage benchmarks (BenchmarkParseSnapshot*,
# BenchmarkDiffPair*), BenchmarkTable3, and BenchmarkSection61 with
# -count (default 10) repetitions each and writes
# BENCH_<YYYY-MM-DD>.json in the repo root: one object per benchmark run
# with ns/op, B/op, and allocs/op, plus the host's CPU count and the
# GOMAXPROCS/worker setting in effect. Compare two baselines with e.g.
#
#   jq -s 'group_by(.name) | map({name: .[0].name, median_ns: (map(.ns_per_op) | sort | .[length/2 | floor])})' BENCH_*.json
#
# Benchmarks run at the process-default worker count (all CPUs). Set
# MPA_BENCH_ARGS to pass extra go-test flags, e.g.
# MPA_BENCH_ARGS='-cpuprofile cpu.out'. Set MPA_BENCH_OUT to override
# the output path (CI writes to a scratch file and gates it against
# testdata/bench-baseline.json with cmd/mpa-benchdiff).
set -euo pipefail

cd "$(dirname "$0")/.."

count="${1:-10}"
pattern='^(BenchmarkGenerate|BenchmarkInference|BenchmarkInferenceWarmCache|BenchmarkIngestMonth|BenchmarkParseSnapshotCisco|BenchmarkParseSnapshotJunos|BenchmarkDiffPairCisco|BenchmarkDiffPairJunos|BenchmarkTable3|BenchmarkSection61)$'
out="${MPA_BENCH_OUT:-BENCH_$(date +%F).json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running stage benchmarks (count=$count) ..." >&2
# shellcheck disable=SC2086  # MPA_BENCH_ARGS is intentionally word-split
go test -run '^$' -bench "$pattern" -benchmem -count="$count" \
    ${MPA_BENCH_ARGS:-} . | tee "$raw" >&2

awk -v date="$(date -u +%FT%TZ)" '
  /^Benchmark/ {
      # The -N suffix go test appends to benchmark names is GOMAXPROCS.
      name = $1
      ncpu = 1
      if (match(name, /-[0-9]+$/)) {
          ncpu = substr(name, RSTART + 1)
          name = substr(name, 1, RSTART - 1)
      }
      printf "{\"date\":\"%s\",\"gomaxprocs\":%s,\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}\n",
          date, ncpu, name, $2, $3, $5, $7
  }
' "$raw" > "$out"

n="$(wc -l < "$out")"
if [ "$n" -eq 0 ]; then
    echo "bench.sh: no benchmark lines parsed" >&2
    exit 1
fi
echo "wrote $n benchmark records to $out" >&2
