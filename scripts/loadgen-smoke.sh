#!/usr/bin/env bash
# loadgen-smoke.sh — end-to-end smoke test for the latency-SLO
# tooling: build `mpa`, `mpa-loadgen`, and `mpa-slogate`, start a
# daemon over a small generated archive, drive a short deterministic
# open-loop load run, and gate the resulting load-manifest against the
# checked-in SLO baseline (testdata/slo.json).
#
# Usage: scripts/loadgen-smoke.sh [port] [out-manifest]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18081}"
OUT="${2:-load-manifest.json}"
BINDIR="$(mktemp -d)"
trap 'rm -rf "$BINDIR"' EXIT

go build -o "$BINDIR/mpa" ./cmd/mpa
go build -o "$BINDIR/mpa-loadgen" ./cmd/mpa-loadgen
go build -o "$BINDIR/mpa-slogate" ./cmd/mpa-slogate

"$BINDIR/mpa" -networks 12 -months 3 -addr "127.0.0.1:$PORT" serve &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$BINDIR"' EXIT

for i in $(seq 1 120); do
    if curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "loadgen-smoke: daemon exited before listening" >&2
        exit 1
    fi
    sleep 0.5
done
echo "loadgen-smoke: daemon up"

# A short but real run: ~200 requests across the default read mix. The
# fixed seed makes the request schedule reproducible; only the measured
# latencies vary run to run.
"$BINDIR/mpa-loadgen" -addr "http://127.0.0.1:$PORT" \
    -rate 40 -duration 5s -conns 4 -seed 1 -out "$OUT"
echo "loadgen-smoke: load run complete"

# Gate the manifest against the checked-in baseline. Exit 2 here means
# a genuine SLO violation and fails the script (and CI) loudly.
"$BINDIR/mpa-slogate" testdata/slo.json "$OUT"
echo "loadgen-smoke: SLO gate passed"

# The daemon's own view must agree: per-endpoint series on /metrics and
# a populated /debug/slo summary.
curl -fsS "http://127.0.0.1:$PORT/metrics" >/tmp/loadgen-metrics.txt
for series in \
    'mpa_serve_latency_ns_rank_bucket{le=' \
    'mpa_serve_latency_ns_rank_count ' \
    'mpa_serve_status_rank_2xx_total ' \
    'mpa_serve_streams_open '; do
    grep -qF "$series" /tmp/loadgen-metrics.txt || {
        echo "loadgen-smoke: /metrics missing $series" >&2
        exit 1
    }
done
curl -fsS "http://127.0.0.1:$PORT/debug/slo" >/tmp/loadgen-slo.json
grep -q '"p99"' /tmp/loadgen-slo.json && grep -q '"rank"' /tmp/loadgen-slo.json || {
    echo "loadgen-smoke: /debug/slo missing per-endpoint percentiles:" >&2
    cat /tmp/loadgen-slo.json >&2
    exit 1
}
echo "loadgen-smoke: daemon-side series ok"

kill -INT "$PID"
if wait "$PID"; then
    echo "loadgen-smoke: clean shutdown"
else
    echo "loadgen-smoke: daemon exited non-zero on SIGINT" >&2
    exit 1
fi
