#!/usr/bin/env bash
# loadgen-smoke.sh — end-to-end smoke test for the latency-SLO
# tooling: build `mpa`, `mpa-loadgen`, and `mpa-slogate`, start a
# daemon over a small generated archive, drive a short deterministic
# open-loop load run, and gate the resulting load-manifest against the
# checked-in SLO baseline (testdata/slo.json). A second phase repeats
# the run against a 2-org sharded daemon with a tenant-aware mix
# (-orgs) and gates it against the same baseline.
#
# Usage: scripts/loadgen-smoke.sh [port] [out-manifest]
#        (the sharded phase uses port+1 and <out-manifest>.orgs)
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18081}"
OUT="${2:-load-manifest.json}"
BINDIR="$(mktemp -d)"
trap 'rm -rf "$BINDIR"' EXIT

go build -o "$BINDIR/mpa" ./cmd/mpa
go build -o "$BINDIR/mpa-loadgen" ./cmd/mpa-loadgen
go build -o "$BINDIR/mpa-slogate" ./cmd/mpa-slogate

"$BINDIR/mpa" -networks 12 -months 3 -addr "127.0.0.1:$PORT" serve &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$BINDIR"' EXIT

for i in $(seq 1 120); do
    if curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "loadgen-smoke: daemon exited before listening" >&2
        exit 1
    fi
    sleep 0.5
done
echo "loadgen-smoke: daemon up"

# A short but real run: ~200 requests across the default read mix. The
# fixed seed makes the request schedule reproducible; only the measured
# latencies vary run to run.
"$BINDIR/mpa-loadgen" -addr "http://127.0.0.1:$PORT" \
    -rate 40 -duration 5s -conns 4 -seed 1 -out "$OUT"
echo "loadgen-smoke: load run complete"

# Gate the manifest against the checked-in baseline. Exit 2 here means
# a genuine SLO violation and fails the script (and CI) loudly.
"$BINDIR/mpa-slogate" testdata/slo.json "$OUT"
echo "loadgen-smoke: SLO gate passed"

# The daemon's own view must agree: per-endpoint series on /metrics and
# a populated /debug/slo summary.
curl -fsS "http://127.0.0.1:$PORT/metrics" >/tmp/loadgen-metrics.txt
for series in \
    'mpa_serve_latency_ns_rank_bucket{le=' \
    'mpa_serve_latency_ns_rank_count ' \
    'mpa_serve_status_rank_2xx_total ' \
    'mpa_serve_streams_open '; do
    grep -qF "$series" /tmp/loadgen-metrics.txt || {
        echo "loadgen-smoke: /metrics missing $series" >&2
        exit 1
    }
done
curl -fsS "http://127.0.0.1:$PORT/debug/slo" >/tmp/loadgen-slo.json
grep -q '"p99"' /tmp/loadgen-slo.json && grep -q '"rank"' /tmp/loadgen-slo.json || {
    echo "loadgen-smoke: /debug/slo missing per-endpoint percentiles:" >&2
    cat /tmp/loadgen-slo.json >&2
    exit 1
}
echo "loadgen-smoke: daemon-side series ok"

kill -INT "$PID"
if wait "$PID"; then
    echo "loadgen-smoke: clean shutdown"
else
    echo "loadgen-smoke: daemon exited non-zero on SIGINT" >&2
    exit 1
fi

# ---- Phase 2: tenant-aware load against a sharded daemon ------------
PORT2=$((PORT + 1))
"$BINDIR/mpa" -addr "127.0.0.1:$PORT2" -orgs "acme=1:6:2,globex=2:5:2" serve &
PID2=$!
trap 'kill "$PID2" 2>/dev/null || true; rm -rf "$BINDIR"' EXIT

for i in $(seq 1 120); do
    if curl -fsS "http://127.0.0.1:$PORT2/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$PID2" 2>/dev/null; then
        echo "loadgen-smoke: sharded daemon exited before listening" >&2
        exit 1
    fi
    sleep 0.5
done
echo "loadgen-smoke: sharded daemon up (2 orgs)"

# The same plan shape, now drawing a tenant per request. Endpoint
# accounting spans tenants, so the single-tenant SLO baseline gates the
# sharded run unchanged.
"$BINDIR/mpa-loadgen" -addr "http://127.0.0.1:$PORT2" -orgs "acme,globex" \
    -rate 40 -duration 5s -conns 4 -seed 1 -out "$OUT.orgs"
echo "loadgen-smoke: tenant-aware load run complete"

"$BINDIR/mpa-slogate" testdata/slo.json "$OUT.orgs"
echo "loadgen-smoke: sharded SLO gate passed"

# Tenant traffic must land in per-org series alongside the fleet-wide
# ones, and /debug/slo must carry the per-tenant breakdown.
curl -fsS "http://127.0.0.1:$PORT2/metrics" >/tmp/loadgen-fleet-metrics.txt
for series in \
    'mpa_serve_latency_ns_rank_count ' \
    'mpa_serve_tenant_acme_latency_ns_rank_count ' \
    'mpa_serve_tenant_globex_latency_ns_rank_count '; do
    grep -qF "$series" /tmp/loadgen-fleet-metrics.txt || {
        echo "loadgen-smoke: /metrics missing $series" >&2
        exit 1
    }
done
curl -fsS "http://127.0.0.1:$PORT2/debug/slo" >/tmp/loadgen-fleet-slo.json
grep -q '"tenants"' /tmp/loadgen-fleet-slo.json || {
    echo "loadgen-smoke: /debug/slo missing per-tenant breakdown:" >&2
    cat /tmp/loadgen-fleet-slo.json >&2
    exit 1
}
echo "loadgen-smoke: per-tenant series ok"

kill -INT "$PID2"
if wait "$PID2"; then
    echo "loadgen-smoke: sharded clean shutdown"
else
    echo "loadgen-smoke: sharded daemon exited non-zero on SIGINT" >&2
    exit 1
fi
