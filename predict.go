package mpa

import (
	"fmt"

	"mpa/internal/dataset"
	"mpa/internal/ml"
	"mpa/internal/obs"
	"mpa/internal/practices"
	"mpa/internal/rng"
	"mpa/internal/stats"
)

// Granularity selects the health-class scheme (paper §6.1).
type Granularity int

const (
	// TwoClass distinguishes healthy (<=1 ticket/month) from unhealthy.
	TwoClass Granularity = 2
	// FiveClass distinguishes excellent, good, moderate, poor, and very
	// poor health.
	FiveClass Granularity = 5
)

// ClassNames returns the class labels for the granularity.
func (g Granularity) ClassNames() []string {
	if g == TwoClass {
		return dataset.Class2Names
	}
	return dataset.Class5Names
}

// ModelOptions configures health-model training.
type ModelOptions struct {
	// Boost enables AdaBoost (15 rounds, paper §6.1).
	Boost bool
	// Oversample enables the paper's minority-class oversampling.
	Oversample bool
	// Folds is the cross-validation fold count (default 5).
	Folds int
	// Seed drives fold assignment (default: dataset-independent 1).
	Seed uint64
}

// BestOptions returns the paper's best configuration for the granularity:
// a plain pruned tree for 2 classes, boosting + oversampling for 5.
func BestOptions(g Granularity) ModelOptions {
	if g == TwoClass {
		return ModelOptions{Folds: 5, Seed: 1}
	}
	return ModelOptions{Boost: true, Oversample: true, Folds: 5, Seed: 1}
}

// ModelQuality reports cross-validated model quality (paper §6.1).
type ModelQuality struct {
	Accuracy  float64
	Precision []float64 // per class
	Recall    []float64 // per class
	// MajorityAccuracy is the majority-class baseline on the same folds.
	MajorityAccuracy float64
}

// HealthModel is a trained health predictor bound to the training-time
// binning, so it can be applied to future months (paper §6.2).
type HealthModel struct {
	granularity Granularity
	classifier  ml.Classifier
	binners     map[string]*stats.Binner
	quality     ModelQuality
}

// Granularity returns the model's class scheme.
func (m *HealthModel) Granularity() Granularity { return m.granularity }

// Quality returns the cross-validated training quality.
func (m *HealthModel) Quality() ModelQuality { return m.quality }

// Predict returns the predicted health class for a network-month's
// practice metrics.
func (m *HealthModel) Predict(metrics Metrics) int {
	row := make([]int, len(practices.MetricNames))
	for j, name := range practices.MetricNames {
		row[j] = m.binners[name].Bin(metrics[name])
	}
	return m.classifier.Predict(row)
}

// PredictClassName returns the predicted class label.
func (m *HealthModel) PredictClassName(metrics Metrics) string {
	return m.granularity.ClassNames()[m.Predict(metrics)]
}

// TrainHealthModel trains a health model on the framework's full dataset
// with the paper's best options for the granularity.
func (f *Framework) TrainHealthModel(g Granularity) (*HealthModel, error) {
	return f.TrainHealthModelOn(f.environment().Data, g, BestOptions(g))
}

// TrainHealthModelOn trains a health model on an explicit dataset slice
// (e.g. a FilterMonths window for online prediction) with the given
// options.
func (f *Framework) TrainHealthModelOn(d *Dataset, g Granularity, opts ModelOptions) (*HealthModel, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("mpa: empty training dataset")
	}
	if g != TwoClass && g != FiveClass {
		return nil, fmt.Errorf("mpa: unsupported granularity %d", g)
	}
	if opts.Folds <= 1 {
		opts.Folds = 5
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	sp := f.environment().Obs.Start("train_model")
	defer sp.End()
	sp.Count("cases", float64(d.Len()))
	sp.Count("cv_folds", float64(opts.Folds))
	binned := d.Bin(5)
	X := binned.FeatureMatrix()
	y := d.Labels2()
	if g == FiveClass {
		y = d.Labels5()
	}
	classes := int(g)

	trainer := func(tx [][]int, ty []int) ml.Classifier {
		if opts.Oversample {
			if g == TwoClass {
				tx, ty = ml.Oversample2Class(tx, ty)
			} else {
				tx, ty = ml.Oversample5Class(tx, ty)
			}
		}
		if opts.Boost {
			bcfg := ml.DefaultBoostConfig()
			bcfg.Obs = sp
			return ml.TrainAdaBoost(tx, ty, classes, bcfg)
		}
		t := ml.TrainTree(tx, ty, nil, classes, ml.DefaultTreeConfig())
		sp.Count("tree_nodes", float64(t.NodeCount()))
		return t
	}

	ev := ml.CrossValidate(X, y, classes, opts.Folds, trainer, rng.New(opts.Seed))
	maj := ml.CrossValidate(X, y, classes, opts.Folds, func(_ [][]int, ty []int) ml.Classifier {
		return ml.TrainMajority(ty, classes)
	}, rng.New(opts.Seed))
	obs.Logger().Debug("health model trained",
		"classes", classes, "cases", d.Len(), "accuracy", ev.Accuracy)

	return &HealthModel{
		granularity: g,
		classifier:  trainer(X, y),
		binners:     binned.Binners,
		quality: ModelQuality{
			Accuracy:         ev.Accuracy,
			Precision:        ev.Precision,
			Recall:           ev.Recall,
			MajorityAccuracy: maj.Accuracy,
		},
	}, nil
}

// OnlinePrediction is one month's out-of-sample prediction result.
type OnlinePrediction struct {
	Month    Month
	Accuracy float64
	Cases    int
}

// PredictOnline reproduces the paper's online protocol (§6.2, Table 9):
// for each month t with at least history prior months available, train on
// months t-history..t-1 and predict month t. It returns per-month
// accuracies.
func (f *Framework) PredictOnline(g Granularity, history int) ([]OnlinePrediction, error) {
	if history < 1 {
		return nil, fmt.Errorf("mpa: history must be >= 1")
	}
	env := f.environment() // one snapshot for the whole protocol
	window := env.Window()
	var out []OnlinePrediction
	for ti := history; ti < len(window); ti++ {
		train := env.Data.FilterMonths(window[ti-history], window[ti-1])
		test := env.Data.FilterMonths(window[ti], window[ti])
		if train.Len() == 0 || test.Len() == 0 {
			continue
		}
		model, err := f.TrainHealthModelOn(train, g, BestOptions(g))
		if err != nil {
			return nil, err
		}
		correct := 0
		for _, c := range test.Cases {
			want := dataset.Class2(c.Tickets)
			if g == FiveClass {
				want = dataset.Class5(c.Tickets)
			}
			if model.Predict(c.Metrics) == want {
				correct++
			}
		}
		out = append(out, OnlinePrediction{
			Month:    window[ti],
			Accuracy: float64(correct) / float64(test.Len()),
			Cases:    test.Len(),
		})
	}
	return out, nil
}

// WhatIfResult reports how an adjusted set of practices changes a health
// prediction (the paper's §6.2 use case: "will combining configuration
// changes into fewer, larger changes improve network health?").
type WhatIfResult struct {
	Baseline     int
	BaselineName string
	Adjusted     int
	AdjustedName string
}

// Improved reports whether the adjustment moves the prediction to a
// healthier class (lower label).
func (r WhatIfResult) Improved() bool { return r.Adjusted < r.Baseline }

// WhatIf predicts health for the given practices and for a copy with the
// adjustments applied (absolute values keyed by metric name), returning
// both predictions.
func (m *HealthModel) WhatIf(metrics Metrics, adjustments Metrics) WhatIfResult {
	adjusted := Metrics{}
	for k, v := range metrics {
		adjusted[k] = v
	}
	for k, v := range adjustments {
		adjusted[k] = v
	}
	names := m.granularity.ClassNames()
	base := m.Predict(metrics)
	adj := m.Predict(adjusted)
	return WhatIfResult{
		Baseline: base, BaselineName: names[base],
		Adjusted: adj, AdjustedName: names[adj],
	}
}
