module mpa

go 1.22
