// Package routing extracts routing instances from device configurations
// (paper §2.2, D5, following Benson et al.'s configuration models): a
// routing instance is a collection of routing processes of the same type
// on different devices that are in the transitive closure of the
// "adjacent-to" relationship. A network's routing instances collectively
// implement its control plane.
//
// Adjacency rules per protocol:
//
//   - BGP: device A is adjacent to device B when A has a neighbor
//     statement whose address is B's management IP (or vice versa);
//   - OSPF: devices are adjacent when their OSPF processes share an area;
//   - MSTP: devices are adjacent when their spanning-tree configuration
//     names the same MST region.
package routing

import (
	"sort"

	"mpa/internal/confmodel"
)

// Protocol identifies a routing (or spanning-tree) protocol whose
// instances are extracted.
type Protocol int

// Extractable protocols.
const (
	BGP Protocol = iota
	OSPF
	MSTP
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case BGP:
		return "bgp"
	case OSPF:
		return "ospf"
	case MSTP:
		return "mstp"
	default:
		return "unknown"
	}
}

// Instance is one routing instance: the set of devices whose processes
// form a connected component under the adjacency relationship.
type Instance struct {
	Protocol Protocol
	Devices  []string // sorted hostnames
}

// Size returns the number of devices in the instance.
func (i *Instance) Size() int { return len(i.Devices) }

// unionFind is a simple disjoint-set structure over device indexes.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) { u.parent[u.find(a)] = u.find(b) }

// Extract returns the routing instances of the given protocol across the
// configurations of one network's devices. mgmtIPOwner maps management IPs
// to hostnames (needed for BGP adjacency); it may be nil for OSPF/MSTP.
func Extract(configs []*confmodel.Config, mgmtIPOwner map[string]string, proto Protocol) []Instance {
	// Collect participating devices and their adjacency keys.
	type participant struct {
		idx  int
		cfg  *confmodel.Config
		keys []string // adjacency keys: shared key => adjacent
	}
	hostIdx := map[string]int{}
	var parts []participant
	for _, c := range configs {
		var keys []string
		switch proto {
		case BGP:
			if len(c.OfType(confmodel.TypeBGP)) == 0 {
				continue
			}
		case OSPF:
			for _, s := range c.OfType(confmodel.TypeOSPF) {
				if area := s.Get("area"); area != "" {
					keys = append(keys, "area:"+area)
				}
				for _, area := range s.OptionsWithPrefix("network:") {
					keys = append(keys, "area:"+area)
				}
			}
			if len(keys) == 0 {
				continue
			}
		case MSTP:
			for _, s := range c.OfType(confmodel.TypeSTP) {
				mode := s.Get("mode")
				if mode != "mst" && mode != "mstp" {
					continue
				}
				if region := s.Get("region"); region != "" {
					keys = append(keys, "region:"+region)
				}
			}
			if len(keys) == 0 {
				continue
			}
		}
		hostIdx[c.Hostname] = len(parts)
		parts = append(parts, participant{idx: len(parts), cfg: c, keys: keys})
	}
	if len(parts) == 0 {
		return nil
	}

	uf := newUnionFind(len(parts))
	switch proto {
	case BGP:
		// Adjacency via neighbor statements resolving to peer devices.
		for _, p := range parts {
			for _, s := range p.cfg.OfType(confmodel.TypeBGP) {
				for ip := range s.OptionsWithPrefix("neighbor:") {
					owner, ok := mgmtIPOwner[ip]
					if !ok {
						continue
					}
					if oi, ok := hostIdx[owner]; ok && oi != p.idx {
						uf.union(p.idx, oi)
					}
				}
			}
		}
	case OSPF, MSTP:
		// Adjacency via shared keys.
		byKey := map[string][]int{}
		for _, p := range parts {
			for _, k := range p.keys {
				byKey[k] = append(byKey[k], p.idx)
			}
		}
		for _, idxs := range byKey {
			for _, i := range idxs[1:] {
				uf.union(idxs[0], i)
			}
		}
	}

	// Gather components.
	byRoot := map[int][]string{}
	for _, p := range parts {
		root := uf.find(p.idx)
		byRoot[root] = append(byRoot[root], p.cfg.Hostname)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([]Instance, 0, len(roots))
	for _, r := range roots {
		devs := byRoot[r]
		sort.Strings(devs)
		out = append(out, Instance{Protocol: proto, Devices: devs})
	}
	// Deterministic order by first device name.
	sort.Slice(out, func(i, j int) bool { return out[i].Devices[0] < out[j].Devices[0] })
	return out
}

// Summary holds the D5 metrics for one protocol in one network.
type Summary struct {
	Count   int
	AvgSize float64
}

// Summarize returns instance count and average size for the protocol.
func Summarize(configs []*confmodel.Config, mgmtIPOwner map[string]string, proto Protocol) Summary {
	instances := Extract(configs, mgmtIPOwner, proto)
	if len(instances) == 0 {
		return Summary{}
	}
	total := 0
	for _, in := range instances {
		total += in.Size()
	}
	return Summary{Count: len(instances), AvgSize: float64(total) / float64(len(instances))}
}
