package routing

import (
	"testing"

	"mpa/internal/confmodel"
)

func bgpDev(host, ip string, neighbors ...string) *confmodel.Config {
	c := confmodel.NewConfig(host)
	s := confmodel.NewStanza(confmodel.TypeBGP, "65000")
	s.Set("local-as", "65000")
	for _, n := range neighbors {
		s.Set("neighbor:"+n, "65000")
	}
	c.Upsert(s)
	return c
}

func ospfDev(host, area string) *confmodel.Config {
	c := confmodel.NewConfig(host)
	c.Upsert(confmodel.NewStanza(confmodel.TypeOSPF, "1").Set("area", area))
	return c
}

func mstpDev(host, mode, region string) *confmodel.Config {
	c := confmodel.NewConfig(host)
	c.Upsert(confmodel.NewStanza(confmodel.TypeSTP, "global").
		Set("mode", mode).Set("region", region))
	return c
}

func TestBGPInstanceViaNeighbors(t *testing.T) {
	// a <-> b peered; c speaks BGP but peers with nobody known.
	owner := map[string]string{"10.0.0.1": "a", "10.0.0.2": "b", "10.0.0.3": "c"}
	configs := []*confmodel.Config{
		bgpDev("a", "10.0.0.1", "10.0.0.2"),
		bgpDev("b", "10.0.0.2", "10.0.0.1"),
		bgpDev("c", "10.0.0.3", "192.168.1.1"), // external neighbor
	}
	instances := Extract(configs, owner, BGP)
	if len(instances) != 2 {
		t.Fatalf("instances = %v", instances)
	}
	sizes := map[int]int{}
	for _, in := range instances {
		sizes[in.Size()]++
	}
	if sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("instance sizes = %v", sizes)
	}
}

func TestBGPOneDirectionalNeighborStillJoins(t *testing.T) {
	owner := map[string]string{"10.0.0.1": "a", "10.0.0.2": "b"}
	configs := []*confmodel.Config{
		bgpDev("a", "10.0.0.1", "10.0.0.2"),
		bgpDev("b", "10.0.0.2"), // b does not point back
	}
	instances := Extract(configs, owner, BGP)
	if len(instances) != 1 || instances[0].Size() != 2 {
		t.Errorf("instances = %v", instances)
	}
}

func TestOSPFInstancesByArea(t *testing.T) {
	configs := []*confmodel.Config{
		ospfDev("a", "0"), ospfDev("b", "0"), ospfDev("c", "1"),
		confmodel.NewConfig("d"), // no OSPF at all
	}
	instances := Extract(configs, nil, OSPF)
	if len(instances) != 2 {
		t.Fatalf("instances = %v", instances)
	}
	if instances[0].Size()+instances[1].Size() != 3 {
		t.Errorf("total participants = %d, want 3", instances[0].Size()+instances[1].Size())
	}
}

func TestOSPFAreaFromNetworkStatements(t *testing.T) {
	a := confmodel.NewConfig("a")
	a.Upsert(confmodel.NewStanza(confmodel.TypeOSPF, "1").Set("network:10.0.0.0/16", "7"))
	b := confmodel.NewConfig("b")
	b.Upsert(confmodel.NewStanza(confmodel.TypeOSPF, "1").Set("area", "7"))
	instances := Extract([]*confmodel.Config{a, b}, nil, OSPF)
	if len(instances) != 1 || instances[0].Size() != 2 {
		t.Errorf("network-statement area join failed: %v", instances)
	}
}

func TestMSTPInstancesByRegion(t *testing.T) {
	configs := []*confmodel.Config{
		mstpDev("a", "mst", "R1"), mstpDev("b", "mstp", "R1"),
		mstpDev("c", "mst", "R2"),
		mstpDev("d", "rapid-pvst", "R1"), // not MST mode: excluded
	}
	instances := Extract(configs, nil, MSTP)
	if len(instances) != 2 {
		t.Fatalf("instances = %v", instances)
	}
}

func TestExtractEmpty(t *testing.T) {
	if got := Extract(nil, nil, BGP); got != nil {
		t.Errorf("Extract(nil) = %v", got)
	}
	if got := Extract([]*confmodel.Config{confmodel.NewConfig("x")}, nil, OSPF); got != nil {
		t.Errorf("Extract(no-ospf) = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	configs := []*confmodel.Config{
		ospfDev("a", "0"), ospfDev("b", "0"), ospfDev("c", "1"),
	}
	s := Summarize(configs, nil, OSPF)
	if s.Count != 2 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.AvgSize != 1.5 {
		t.Errorf("AvgSize = %v", s.AvgSize)
	}
	empty := Summarize(nil, nil, BGP)
	if empty.Count != 0 || empty.AvgSize != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestDeterministicOrder(t *testing.T) {
	configs := []*confmodel.Config{
		ospfDev("z", "1"), ospfDev("a", "0"), ospfDev("m", "2"),
	}
	first := Extract(configs, nil, OSPF)
	second := Extract(configs, nil, OSPF)
	for i := range first {
		if first[i].Devices[0] != second[i].Devices[0] {
			t.Fatal("instance order not deterministic")
		}
	}
	if first[0].Devices[0] != "a" {
		t.Errorf("instances not sorted: %v", first)
	}
}

func TestProtocolString(t *testing.T) {
	if BGP.String() != "bgp" || OSPF.String() != "ospf" || MSTP.String() != "mstp" {
		t.Error("protocol names wrong")
	}
	if Protocol(9).String() != "unknown" {
		t.Error("unknown protocol name wrong")
	}
}
