// Package netmodel defines the inventory records MPA consumes (paper
// §2.1, data source 1): the networks an organization manages, the devices
// in each network with their vendor, model, role, and firmware, and the
// workloads (services) each network hosts.
//
// A network is a collection of devices that either connects compute
// equipment hosting specific workloads, or connects other networks to each
// other or the external world. Inventory data is the ground truth for the
// design-practice metrics D1–D3.
package netmodel

import "fmt"

// Role is the function a device plays in a network. Per the paper's OSP
// characterization (Appendix A.1), no single device has more than one role.
type Role int

// Device roles observed in the OSP's networks.
const (
	RoleSwitch Role = iota
	RoleRouter
	RoleFirewall
	RoleLoadBalancer
	RoleADC // application delivery controller
	numRoles
)

// NumRoles is the number of distinct device roles.
const NumRoles = int(numRoles)

// String returns the lower-case role name.
func (r Role) String() string {
	switch r {
	case RoleSwitch:
		return "switch"
	case RoleRouter:
		return "router"
	case RoleFirewall:
		return "firewall"
	case RoleLoadBalancer:
		return "loadbalancer"
	case RoleADC:
		return "adc"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// IsMiddlebox reports whether the role is a middlebox (firewall, ADC, or
// load balancer), the paper's middlebox definition (Appendix A.1).
func (r Role) IsMiddlebox() bool {
	return r == RoleFirewall || r == RoleLoadBalancer || r == RoleADC
}

// Vendor identifies a device vendor, which determines the configuration
// dialect the device speaks.
type Vendor int

// Vendors. The reproduction implements two dialects, mirroring the paper's
// Cisco IOS / Juniper JunOS examples (§2.2).
const (
	VendorCisco Vendor = iota
	VendorJuniper
	numVendors
)

// NumVendors is the number of distinct vendors.
const NumVendors = int(numVendors)

// String returns the vendor name.
func (v Vendor) String() string {
	switch v {
	case VendorCisco:
		return "cisco"
	case VendorJuniper:
		return "juniper"
	default:
		return fmt.Sprintf("vendor(%d)", int(v))
	}
}

// Device is one inventory record: a managed network element.
type Device struct {
	Name     string // unique within the organization, e.g. "net042-sw-03"
	Network  string // name of the owning network
	Vendor   Vendor
	Model    string // vendor-qualified hardware model, e.g. "cisco-m3"
	Role     Role
	Firmware string // firmware/OS version string
	// MgmtIP is the device's loopback/management address; inter-device
	// references (e.g. BGP neighbor statements) point at these.
	MgmtIP string
}

// Network is one managed network and its purpose.
type Network struct {
	Name string
	// Services lists the workloads the network hosts. Interconnect
	// networks host none (paper: a handful of networks host no workloads
	// and only connect networks to each other or the external world).
	Services []string
	// Interconnect marks networks whose purpose is connecting other
	// networks rather than hosting workloads.
	Interconnect bool
	Devices      []*Device
}

// MiddleboxCount returns the number of middlebox devices in the network.
func (n *Network) MiddleboxCount() int {
	count := 0
	for _, d := range n.Devices {
		if d.Role.IsMiddlebox() {
			count++
		}
	}
	return count
}

// Models returns the set of distinct hardware models in the network.
func (n *Network) Models() map[string]int {
	m := map[string]int{}
	for _, d := range n.Devices {
		m[d.Model]++
	}
	return m
}

// Vendors returns the set of distinct vendors in the network.
func (n *Network) Vendors() map[Vendor]int {
	m := map[Vendor]int{}
	for _, d := range n.Devices {
		m[d.Vendor]++
	}
	return m
}

// Roles returns the set of distinct roles in the network.
func (n *Network) Roles() map[Role]int {
	m := map[Role]int{}
	for _, d := range n.Devices {
		m[d.Role]++
	}
	return m
}

// Firmwares returns the set of distinct firmware versions in the network.
func (n *Network) Firmwares() map[string]int {
	m := map[string]int{}
	for _, d := range n.Devices {
		m[d.Firmware]++
	}
	return m
}

// Inventory is an organization's full inventory: the root data source.
type Inventory struct {
	Networks []*Network
}

// Network returns the named network, or nil.
func (inv *Inventory) Network(name string) *Network {
	for _, n := range inv.Networks {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// DeviceCount returns the total number of devices across all networks.
func (inv *Inventory) DeviceCount() int {
	total := 0
	for _, n := range inv.Networks {
		total += len(n.Devices)
	}
	return total
}

// ServiceCount returns the total number of distinct services hosted.
func (inv *Inventory) ServiceCount() int {
	seen := map[string]bool{}
	for _, n := range inv.Networks {
		for _, s := range n.Services {
			seen[s] = true
		}
	}
	return len(seen)
}
