package netmodel

import "testing"

func sampleNetwork() *Network {
	return &Network{
		Name:     "net01",
		Services: []string{"search", "mail"},
		Devices: []*Device{
			{Name: "sw1", Network: "net01", Vendor: VendorCisco, Model: "c-3850", Role: RoleSwitch, Firmware: "16.9", MgmtIP: "10.0.0.1"},
			{Name: "sw2", Network: "net01", Vendor: VendorCisco, Model: "c-3850", Role: RoleSwitch, Firmware: "16.12", MgmtIP: "10.0.0.2"},
			{Name: "r1", Network: "net01", Vendor: VendorJuniper, Model: "j-mx240", Role: RoleRouter, Firmware: "18.4", MgmtIP: "10.0.0.3"},
			{Name: "fw1", Network: "net01", Vendor: VendorJuniper, Model: "j-srx", Role: RoleFirewall, Firmware: "18.4", MgmtIP: "10.0.0.4"},
			{Name: "lb1", Network: "net01", Vendor: VendorCisco, Model: "c-lb", Role: RoleLoadBalancer, Firmware: "9.1", MgmtIP: "10.0.0.5"},
		},
	}
}

func TestRoleStrings(t *testing.T) {
	names := map[Role]string{
		RoleSwitch: "switch", RoleRouter: "router", RoleFirewall: "firewall",
		RoleLoadBalancer: "loadbalancer", RoleADC: "adc",
	}
	for r, want := range names {
		if got := r.String(); got != want {
			t.Errorf("Role(%d).String() = %q, want %q", r, got, want)
		}
	}
	if Role(99).String() == "" {
		t.Error("unknown role should have a descriptive name")
	}
}

func TestIsMiddlebox(t *testing.T) {
	for _, r := range []Role{RoleFirewall, RoleLoadBalancer, RoleADC} {
		if !r.IsMiddlebox() {
			t.Errorf("%v should be a middlebox", r)
		}
	}
	for _, r := range []Role{RoleSwitch, RoleRouter} {
		if r.IsMiddlebox() {
			t.Errorf("%v should not be a middlebox", r)
		}
	}
}

func TestVendorString(t *testing.T) {
	if VendorCisco.String() != "cisco" || VendorJuniper.String() != "juniper" {
		t.Error("vendor names wrong")
	}
}

func TestNetworkAggregates(t *testing.T) {
	n := sampleNetwork()
	if got := n.MiddleboxCount(); got != 2 {
		t.Errorf("MiddleboxCount = %d, want 2", got)
	}
	if got := n.Models(); len(got) != 4 || got["c-3850"] != 2 {
		t.Errorf("Models = %v", got)
	}
	if got := n.Vendors(); len(got) != 2 || got[VendorCisco] != 3 {
		t.Errorf("Vendors = %v", got)
	}
	if got := n.Roles(); len(got) != 4 || got[RoleSwitch] != 2 {
		t.Errorf("Roles = %v", got)
	}
	if got := n.Firmwares(); len(got) != 4 || got["18.4"] != 2 {
		t.Errorf("Firmwares = %v", got)
	}
}

func TestInventory(t *testing.T) {
	inv := &Inventory{Networks: []*Network{
		sampleNetwork(),
		{Name: "net02", Services: []string{"mail"}, Devices: []*Device{
			{Name: "x1", Network: "net02"},
		}},
	}}
	if got := inv.DeviceCount(); got != 6 {
		t.Errorf("DeviceCount = %d, want 6", got)
	}
	// "mail" is shared; distinct services are search + mail = 2.
	if got := inv.ServiceCount(); got != 2 {
		t.Errorf("ServiceCount = %d, want 2", got)
	}
	if inv.Network("net02") == nil || inv.Network("nope") != nil {
		t.Error("Network lookup wrong")
	}
}
