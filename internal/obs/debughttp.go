package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// RegisterRecorderDebug installs the flight-recorder endpoints on mux:
//
//	GET /debug/requests              the recent-entry ring, newest first
//	GET /debug/requests/{id}         one entry: summary + retained span tree
//	GET /debug/requests/{id}/trace   downloadable Chrome trace JSON for one entry
//	GET /debug/logs                  recent Warn/Error log records
//
// `mpa serve` mounts these over its own recorder; the shared DebugMux
// (batch -debug-addr) serves the process-wide DefaultRecorder. Like
// RegisterDebug, call it at most once per mux.
func RegisterRecorderDebug(mux *http.ServeMux, rec *Recorder) {
	mux.HandleFunc("GET /debug/requests", func(w http.ResponseWriter, r *http.Request) {
		sums := rec.Summaries()
		if n, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && n >= 0 && n < len(sums) {
			sums = sums[:n]
		}
		debugJSON(w, http.StatusOK, struct {
			Count    int              `json:"count"`
			Requests []RequestSummary `json:"requests"`
		}{Count: rec.Count(), Requests: sums})
	})
	mux.HandleFunc("GET /debug/requests/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		sum, ok := rec.Get(id)
		if !ok {
			debugError(w, http.StatusNotFound, "no recorded request %q (the ring holds the most recent %d entries)", id, len(rec.Summaries()))
			return
		}
		detail := struct {
			Summary RequestSummary `json:"summary"`
			Tree    *SpanNode      `json:"tree,omitempty"`
		}{Summary: sum}
		if sp := rec.Tree(id); sp != nil {
			node := TreeOf(sp)
			detail.Tree = &node
		}
		debugJSON(w, http.StatusOK, detail)
	})
	mux.HandleFunc("GET /debug/requests/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		sp := rec.Tree(id)
		if sp == nil {
			if _, ok := rec.Get(id); ok {
				debugError(w, http.StatusNotFound, "request %q is recorded but its span tree was not retained (only the slowest and recent errored requests keep full traces)", id)
			} else {
				debugError(w, http.StatusNotFound, "no recorded request %q", id)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", "trace-"+id+".json"))
		if err := WriteChromeTrace(w, sp); err != nil {
			Logger().Error("debug: trace export failed", "request_id", id, "err", err)
		}
	})
	mux.HandleFunc("GET /debug/logs", func(w http.ResponseWriter, r *http.Request) {
		debugJSON(w, http.StatusOK, struct {
			Logs []LogRecord `json:"logs"`
		}{Logs: rec.Logs()})
	})
}

func debugJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func debugError(w http.ResponseWriter, code int, format string, args ...any) {
	debugJSON(w, code, struct {
		Error string `json:"error"`
	}{Error: fmt.Sprintf(format, args...)})
}
