package obs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestStopTraceWriteAtomic pins the regression where a failing trace
// export left a truncated -trace file behind: the write goes through a
// temp file, so on failure the destination must not exist and no temp
// files may linger.
func TestStopTraceWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	boom := errors.New("exporter failed midway")

	p := &Flags{TracePath: path}
	err := p.Stop(func(w io.Writer) error {
		// Partial output before the failure — exactly the shape that used
		// to leave a truncated file.
		fmt.Fprint(w, `{"traceEvents":[`)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Stop error = %v, want wrapped %v", err, boom)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Errorf("failed trace write left %s behind", path)
	}
	assertNoLeftovers(t, dir)

	// Success path: the file appears with the full content.
	p = &Flags{TracePath: path}
	if err := p.Stop(func(w io.Writer) error {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"traceEvents":[]}` {
		t.Errorf("trace content = %q", data)
	}
	assertNoLeftovers(t, dir, "trace.json")
}

// TestStopMemProfileAtomic covers the same invariant for -memprofile:
// an unwritable destination directory errors without leaving anything.
func TestStopMemProfileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mem.pprof")
	p := &Flags{MemProfile: path}
	if err := p.Stop(nil); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("heap profile is empty")
	}
	assertNoLeftovers(t, dir, "mem.pprof")

	p = &Flags{MemProfile: filepath.Join(dir, "no-such-subdir", "mem.pprof")}
	if err := p.Stop(nil); err == nil {
		t.Error("Stop succeeded writing into a missing directory")
	}
}

// assertNoLeftovers fails if dir contains anything beyond the allowed
// names — in particular no ".<name>-*" temp files from writeFileAtomic.
func assertNoLeftovers(t *testing.T, dir string, allowed ...string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		ok := false
		for _, a := range allowed {
			if e.Name() == a {
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected leftover file %q (temp file not cleaned up?)", e.Name())
		}
	}
}

// TestWriteFileAtomicRenameTarget sanity-checks the helper directly:
// content lands at the destination byte-for-byte.
func TestWriteFileAtomicRenameTarget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := writeFileAtomic(path, "test", func(w io.Writer) error {
		_, err := io.WriteString(w, strings.Repeat("x", 1000))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 1000 {
		t.Errorf("wrote %d bytes, want 1000", len(data))
	}
}
