package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedSpan builds an ended span with fully determined fields, bypassing
// the clock so the exporter's output is byte-stable.
func fixedSpan(name string, startMicro, durMicro int64, alloc uint64, counters map[string]float64, children ...*Span) *Span {
	return &Span{
		name:     name,
		start:    time.UnixMicro(startMicro).UTC(),
		dur:      time.Duration(durMicro) * time.Microsecond,
		alloc:    alloc,
		ended:    true,
		counters: counters,
		children: children,
	}
}

func goldenTree() *Span {
	return fixedSpan("pipeline", 1_000_000, 500_000, 2048, map[string]float64{"networks": 2},
		fixedSpan("generate", 1_000_100, 200_000, 1024, map[string]float64{"snapshots": 12},
			fixedSpan("net-0", 1_000_200, 100_000, 0, nil),
		),
		fixedSpan("inference", 1_300_000, 150_000, 0, map[string]float64{"changes": 3}),
	)
}

// TestWriteChromeTraceGolden locks the exporter's exact output. The
// format is consumed by external viewers (about:tracing, Perfetto), so
// accidental shape changes must be loud. Regenerate with -update.
func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTree()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace output diverged from golden.\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}

// TestWriteChromeTraceShape validates the structural contract the viewers
// rely on: a traceEvents array of complete events with the required keys
// and child events nested inside their parents' time ranges.
func TestWriteChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTree()); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Ts    *int64         `json:"ts"`
			Dur   *int64         `json:"dur"`
			Pid   *int           `json:"pid"`
			Tid   *int           `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(tf.TraceEvents))
	}
	var root, child *int64
	for _, ev := range tf.TraceEvents {
		if ev.Phase != "X" {
			t.Fatalf("event %q phase %q, want X", ev.Name, ev.Phase)
		}
		if ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %q missing required keys", ev.Name)
		}
		switch ev.Name {
		case "pipeline":
			root = ev.Dur
		case "net-0":
			child = ev.Ts
		}
	}
	if root == nil || child == nil {
		t.Fatal("expected spans missing from trace")
	}
	if *child >= *root {
		t.Fatalf("child ts %d outside root duration %d", *child, *root)
	}
}

func TestWriteChromeTraceNoSpans(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err == nil {
		t.Fatal("expected error for empty trace")
	}
}

// TestWriteChromeTraceOpenSpanClamped: exporting a tree with still-open
// spans (a live request, the pipeline root) must render the
// elapsed-so-far duration, not zero — a zero-width root makes the whole
// trace invisible in viewers.
func TestWriteChromeTraceOpenSpanClamped(t *testing.T) {
	root := NewRoot("live")
	done := root.Start("done-stage")
	done.End()
	open := root.Start("open-stage")
	time.Sleep(2 * time.Millisecond)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, root); err != nil {
		t.Fatal(err)
	}
	open.End()
	root.End()

	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	durs := map[string]int64{}
	for _, ev := range tf.TraceEvents {
		durs[ev.Name] = ev.Dur
	}
	for _, name := range []string{"live", "open-stage"} {
		if durs[name] < 2000 { // dur is microseconds; we slept 2ms
			t.Errorf("open span %q exported dur=%dµs, want elapsed-so-far >= 2000", name, durs[name])
		}
	}
	if _, ok := durs["done-stage"]; !ok {
		t.Error("ended child missing from trace")
	}
}
