package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mpa/internal/rng"
)

func TestLogHistogramEmpty(t *testing.T) {
	h := NewLogHistogram()
	snap := h.Snapshot()
	if snap.Count != 0 || snap.Sum != 0 || snap.Min != 0 || snap.Max != 0 {
		t.Errorf("empty snapshot = %+v, want zeros", snap)
	}
	if len(snap.Buckets) != 0 {
		t.Errorf("empty snapshot has %d buckets", len(snap.Buckets))
	}
	if q := snap.Quantile(0.5); q != 0 {
		t.Errorf("empty Quantile(0.5) = %v, want 0", q)
	}
}

func TestLogHistogramNilReceiver(t *testing.T) {
	var h *LogHistogram
	h.Observe(42) // must not panic
	if h.Count() != 0 {
		t.Error("nil Count != 0")
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("nil Quantile = %v", q)
	}
}

func TestLogHistogramIgnoresNonFinite(t *testing.T) {
	h := NewLogHistogram()
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	if h.Count() != 0 {
		t.Fatalf("non-finite observations counted: %d", h.Count())
	}
	h.Observe(10)
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Sum != 10 || snap.Min != 10 || snap.Max != 10 {
		t.Errorf("snapshot after NaN/Inf + one real value = %+v", snap)
	}
}

func TestLogHistogramMinMaxSumCount(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []float64{3, 1500, 7, 42} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 4 {
		t.Errorf("count = %d, want 4", snap.Count)
	}
	if snap.Min != 3 || snap.Max != 1500 {
		t.Errorf("min/max = %v/%v, want 3/1500", snap.Min, snap.Max)
	}
	if snap.Sum != 1552 {
		t.Errorf("sum = %v, want 1552", snap.Sum)
	}
	if got := snap.Mean(); got != 388 {
		t.Errorf("mean = %v, want 388", got)
	}
}

// TestLogHistogramUnderOverflow pins the out-of-range semantics: ranks
// landing in the underflow or overflow bucket are answered with the
// exact min/max, never a bucket midpoint.
func TestLogHistogramUnderOverflow(t *testing.T) {
	h := NewLogHistogram()
	h.Observe(0.25)  // underflow (< 1)
	h.Observe(7e300) // overflow (clamped into the last slot, not dropped)
	snap := h.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("count = %d, want 2", snap.Count)
	}
	if q := snap.Quantile(0.5); q != 0.25 {
		t.Errorf("Quantile(0.5) = %v, want exact min 0.25", q)
	}
	if q := snap.Quantile(0.99); q != 7e300 {
		t.Errorf("Quantile(0.99) = %v, want exact max", q)
	}
}

func TestLogHistogramQuantileEdges(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []float64{10, 20, 30} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if q := snap.Quantile(0); q != 10 {
		t.Errorf("Quantile(0) = %v, want min", q)
	}
	if q := snap.Quantile(1); q != 30 {
		t.Errorf("Quantile(1) = %v, want max", q)
	}
}

// TestLogHistogramQuantileRelativeError is the property test pinning the
// documented bound: on randomized workloads drawn from several latency-
// shaped distributions, every estimated quantile is within
// LogHistMaxRelError (5%) relative of the exact sorted-order quantile
// sorted[⌈p·n⌉−1].
func TestLogHistogramQuantileRelativeError(t *testing.T) {
	quantiles := []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999}
	r := rng.New(7)
	for trial := 0; trial < 40; trial++ {
		n := 10 + r.Intn(3000)
		values := make([]float64, n)
		h := NewLogHistogram()
		for i := range values {
			var v float64
			switch trial % 4 {
			case 0: // log-normal: the classic latency shape
				v = r.LogNormal(12, 2.5)
			case 1: // exponential, scaled into the µs–ms range
				v = 1 + r.Exponential(5e6)
			case 2: // uniform across nine decades
				v = math.Pow(10, 9*r.Float64())
			default: // heavy-tailed mixture with a distinct slow mode
				v = 1 + r.Exponential(1e4)
				if r.Bool(0.05) {
					v *= 1e5
				}
			}
			// Keep values inside the bucketed range [1, growth^285): the
			// bound is documented only there (outside it the estimate is
			// exact min/max anyway, tested separately).
			v = math.Min(math.Max(v, 1), 1e11)
			values[i] = v
			h.Observe(v)
		}
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)
		snap := h.Snapshot()
		for _, p := range quantiles {
			rank := int(math.Ceil(p * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := sorted[rank-1]
			got := snap.Quantile(p)
			relErr := math.Abs(got-exact) / exact
			if relErr > LogHistMaxRelError+1e-12 {
				t.Fatalf("trial %d n=%d p=%v: estimate %v vs exact %v, rel err %.4f > %v",
					trial, n, p, got, exact, relErr, LogHistMaxRelError)
			}
		}
	}
}

func TestLogHistogramConcurrency(t *testing.T) {
	h := NewLogHistogram()
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(1 + (g*perG+i)%1000))
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", snap.Count, goroutines*perG)
	}
	var bucketTotal int64
	for _, b := range snap.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != snap.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, snap.Count)
	}
	if snap.Min != 1 || snap.Max != 1000 {
		t.Errorf("min/max = %v/%v, want 1/1000", snap.Min, snap.Max)
	}
}

func TestGetLogHistogramRegistry(t *testing.T) {
	a := GetLogHistogram("loghisttest.latency_ns")
	b := GetLogHistogram("loghisttest.latency_ns")
	if a != b {
		t.Fatal("GetLogHistogram did not return the same instance")
	}
	a.Observe(12345)
	snap := SnapshotMetrics()
	ls, ok := snap.LogHistograms["loghisttest.latency_ns"]
	if !ok {
		t.Fatal("registered log histogram missing from SnapshotMetrics")
	}
	if ls.Count < 1 {
		t.Errorf("snapshot count = %d, want ≥ 1", ls.Count)
	}
}

// TestPromLogHistogramExposition checks the sparse cumulative rendering:
// monotone bucket counts ending at the total, and sum/count series.
func TestPromLogHistogramExposition(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []float64{0.5, 2, 2, 50, 1e6, 9e300} {
		h.Observe(v)
	}
	var b strings.Builder
	writePromLogHistogram(&b, "mpa_t_latency_ns", h.Snapshot())
	out := b.String()
	if !strings.Contains(out, "# TYPE mpa_t_latency_ns histogram\n") {
		t.Errorf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `mpa_t_latency_ns_bucket{le="+Inf"} 6`) {
		t.Errorf("missing +Inf bucket at total count:\n%s", out)
	}
	if !strings.Contains(out, "mpa_t_latency_ns_count 6\n") {
		t.Errorf("missing count series:\n%s", out)
	}
	// The overflow observation must appear only in +Inf, not as a
	// finite-boundary bucket line.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "le=\"+Inf\"") || !strings.Contains(line, "_bucket") {
			continue
		}
		fields := strings.Fields(line)
		cum, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if cum > 5 {
			t.Errorf("finite bucket %q includes the overflow observation", line)
		}
	}
}
