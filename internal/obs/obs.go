// Package obs is MPA's observability substrate: hierarchical spans with
// wall-time and allocation deltas, named counters/gauges/histograms
// published through expvar, and a structured logger built on log/slog.
//
// The package is stdlib-only and always on: instrumentation sites record
// unconditionally, but every primitive is engineered to cost a few
// atomic operations (or nothing at all — all Span methods are no-ops on a
// nil receiver), so the pipeline's hot paths pay effectively zero when no
// span tree is wired in.
//
// Three consumers sit on top:
//
//   - mpa.Framework.PipelineStats renders the span tree as a per-stage
//     table (duration, allocation delta, stage counters);
//   - WriteChromeTrace exports the tree as Chrome trace-event JSON for
//     about:tracing / Perfetto;
//   - expvar exposes the process-wide counter registry under the "mpa"
//     variable for `-debug-addr` long-run monitoring.
package obs

import (
	"log/slog"
	"os"
	"sync/atomic"
)

// level gates the default logger; the zero configuration is quiet
// (warnings and errors only).
var level = func() *slog.LevelVar {
	v := new(slog.LevelVar)
	v.Set(slog.LevelWarn)
	return v
}()

var defaultLogger atomic.Pointer[slog.Logger]

func init() {
	// The default logger tees Warn/Error records into the flight
	// recorder's log ring on the way to stderr, so recent problems stay
	// inspectable (/debug/requests, run manifests) after they scroll by.
	text := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	defaultLogger.Store(slog.New(DefaultRecorder().LogHandler(text)))
}

// Logger returns the package-level structured logger. Pipeline stages log
// through it so verbosity is controlled in one place (`-v` / `-vv` on the
// command lines).
func Logger() *slog.Logger { return defaultLogger.Load() }

// SetLogger replaces the package-level logger (tests, or embedders that
// already have a slog setup). The verbosity gate of SetVerbosity only
// applies to the default logger, and a replacement logger feeds the
// flight recorder's log ring only if its handler wraps
// Recorder.LogHandler.
func SetLogger(l *slog.Logger) {
	if l != nil {
		defaultLogger.Store(l)
	}
}

// SetVerbosity maps a command-line verbosity count onto the default
// logger's level: 0 = warnings only (quiet), 1 = info (`-v`),
// 2+ = debug (`-vv`).
func SetVerbosity(v int) {
	switch {
	case v <= 0:
		level.Set(slog.LevelWarn)
	case v == 1:
		level.Set(slog.LevelInfo)
	default:
		level.Set(slog.LevelDebug)
	}
}
