package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestDebugMuxRoutes(t *testing.T) {
	mux := DebugMux()
	for _, path := range []string{
		"/metrics",
		"/debug/vars",
		"/debug/pprof/",
		"/debug/pprof/cmdline",
	} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
}

func TestDebugMuxIdempotent(t *testing.T) {
	// Regression: the handler set used to register on the process-global
	// http.DefaultServeMux, so building it twice (two Flags.Start calls,
	// or an embedder that also registers /metrics) panicked. DebugMux must
	// hand out one shared mux, and RegisterDebug must work on any number
	// of distinct muxes.
	if DebugMux() != DebugMux() {
		t.Fatal("DebugMux returned distinct muxes")
	}
	RegisterDebug(http.NewServeMux())
	RegisterDebug(http.NewServeMux())
}

func TestFlagsStartTwiceServesBoth(t *testing.T) {
	// Regression: a second Flags.Start in one process must not panic and
	// must serve the same debug handler set; the error path of
	// http.Serve is logged rather than silently discarded (not assertable
	// here, but the serve goroutine no longer ignores it).
	var a, b Flags
	a.DebugAddr = "127.0.0.1:0"
	b.DebugAddr = "127.0.0.1:0"
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []*Flags{&a, &b} {
		addr := f.BoundDebugAddr()
		if addr == "" {
			t.Fatal("BoundDebugAddr empty after Start")
		}
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
		if err != nil {
			t.Fatalf("scrape %s: %v", addr, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics on %s = %d, want 200", addr, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("empty /metrics body from %s", addr)
		}
	}
}
