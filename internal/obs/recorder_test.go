package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// recSpan builds an ended root span with a fixed duration, bypassing
// the clock.
func recSpan(name string, durMicro int64, children ...*Span) *Span {
	return fixedSpan(name, 1_000_000, durMicro, 0, nil, children...)
}

func TestRecorderRingBoundedNewestFirst(t *testing.T) {
	r := NewRecorder(RecorderConfig{Ring: 4})
	for i := 0; i < 7; i++ {
		r.Record(recSpan("q", 100), RequestMeta{ID: fmt.Sprintf("id-%d", i)})
	}
	if r.Count() != 7 {
		t.Errorf("Count = %d, want 7", r.Count())
	}
	sums := r.Summaries()
	if len(sums) != 4 {
		t.Fatalf("ring holds %d, want 4", len(sums))
	}
	for i, want := range []string{"id-6", "id-5", "id-4", "id-3"} {
		if sums[i].ID != want {
			t.Errorf("summary %d = %s, want %s (newest first)", i, sums[i].ID, want)
		}
	}
	if _, ok := r.Get("id-0"); ok {
		t.Error("evicted ring entry still retrievable")
	}
	if s, ok := r.Get("id-6"); !ok || s.Name != "q" {
		t.Errorf("Get(id-6) = %+v, %v", s, ok)
	}
}

func TestRecorderRetainsSlowest(t *testing.T) {
	r := NewRecorder(RecorderConfig{Ring: 64, KeepSlowest: 2, KeepErrors: 1})
	durs := []int64{100, 900, 300, 50, 700}
	for i, d := range durs {
		r.Record(recSpan("q", d), RequestMeta{ID: fmt.Sprintf("id-%d", i)})
	}
	// The two slowest are id-1 (900µs) and id-4 (700µs).
	for _, id := range []string{"id-1", "id-4"} {
		if r.Tree(id) == nil {
			t.Errorf("tree for %s (among the 2 slowest) not retained", id)
		}
	}
	for _, id := range []string{"id-0", "id-2", "id-3"} {
		if r.Tree(id) != nil {
			t.Errorf("tree for %s retained, want evicted", id)
		}
	}
	// TraceRetained must reflect retention at read time.
	for _, s := range r.Summaries() {
		want := s.ID == "id-1" || s.ID == "id-4"
		if s.TraceRetained != want {
			t.Errorf("%s TraceRetained = %v, want %v", s.ID, s.TraceRetained, want)
		}
	}
}

func TestRecorderRetainsRecentErrors(t *testing.T) {
	r := NewRecorder(RecorderConfig{Ring: 64, KeepSlowest: 1, KeepErrors: 2})
	// A fast errored request must be retained even though it would never
	// make the slowest set.
	r.Record(recSpan("big", 10_000), RequestMeta{ID: "slowest"})
	r.Record(recSpan("e", 1), RequestMeta{ID: "err-0", Status: 500, Err: true})
	r.Record(recSpan("e", 1), RequestMeta{ID: "err-1", Status: 500, Err: true})
	if r.Tree("err-0") == nil || r.Tree("err-1") == nil {
		t.Fatal("errored trees not retained")
	}
	// A third error evicts the oldest (FIFO), not the slowest.
	r.Record(recSpan("e", 1), RequestMeta{ID: "err-2", Status: 404, Err: true})
	if r.Tree("err-0") != nil {
		t.Error("oldest error tree not evicted at KeepErrors=2")
	}
	if r.Tree("err-1") == nil || r.Tree("err-2") == nil {
		t.Error("recent error trees evicted prematurely")
	}
	if r.Tree("slowest") == nil {
		t.Error("slowest tree evicted by error retention")
	}
}

func TestRecorderStageBreakdownMergedSorted(t *testing.T) {
	root := recSpan("req", 1000,
		fixedSpan("parse", 1_000_010, 50, 10, nil),
		fixedSpan("analyze", 1_000_100, 600, 20, nil),
		fixedSpan("parse", 1_000_800, 70, 5, nil),
	)
	r := NewRecorder(RecorderConfig{})
	sum := r.Record(root, RequestMeta{ID: "x"})
	if len(sum.Stages) != 2 {
		t.Fatalf("stages = %+v, want parse+analyze merged", sum.Stages)
	}
	if sum.Stages[0].Name != "analyze" || sum.Stages[0].Calls != 1 {
		t.Errorf("stage 0 = %+v, want analyze first (longest)", sum.Stages[0])
	}
	if sum.Stages[1].Name != "parse" || sum.Stages[1].Calls != 2 ||
		sum.Stages[1].DurationNS != 120*int64(time.Microsecond) ||
		sum.Stages[1].AllocBytes != 15 {
		t.Errorf("parse rows not merged: %+v", sum.Stages[1])
	}
}

func TestRecorderSlowestOrder(t *testing.T) {
	r := NewRecorder(RecorderConfig{})
	r.Record(recSpan("a", 100), RequestMeta{ID: "a"})
	r.Record(recSpan("b", 500), RequestMeta{ID: "b"})
	r.Record(recSpan("c", 300), RequestMeta{ID: "c"})
	top := r.Slowest(2)
	if len(top) != 2 || top[0].ID != "b" || top[1].ID != "c" {
		t.Errorf("Slowest(2) = %+v, want b then c", top)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(recSpan("x", 1), RequestMeta{})
	if r.Summaries() != nil || r.Tree("x") != nil || r.Count() != 0 || r.Logs() != nil {
		t.Error("nil recorder not inert")
	}
	live := NewRecorder(RecorderConfig{})
	if got := live.Record(nil, RequestMeta{ID: "n"}); got.ID != "" || live.Count() != 0 {
		t.Error("nil span recorded")
	}
}

func TestLogHandlerTee(t *testing.T) {
	r := NewRecorder(RecorderConfig{LogRing: 2})
	var sink strings.Builder
	// The inner handler only passes Error, proving Warn is captured by
	// the tee even when the destination drops it.
	inner := slog.NewTextHandler(&sink, &slog.HandlerOptions{Level: slog.LevelError})
	lg := slog.New(r.LogHandler(inner)).With("component", "test")
	lg.Info("quiet", "k", "v")
	lg.Warn("first warn", "req", "abc")
	lg.Error("boom", "err", io.ErrUnexpectedEOF)
	lg.Warn("second warn")

	logs := r.Logs()
	if len(logs) != 2 {
		t.Fatalf("log ring holds %d, want 2 (bounded, Warn+ only)", len(logs))
	}
	if logs[0].Msg != "second warn" || logs[1].Msg != "boom" {
		t.Errorf("logs = %+v, want newest first", logs)
	}
	if logs[1].Level != "ERROR" || logs[1].Attrs["err"] != io.ErrUnexpectedEOF.Error() {
		t.Errorf("error record = %+v", logs[1])
	}
	if logs[0].Attrs["component"] != "test" {
		t.Errorf("pre-bound attrs lost: %+v", logs[0].Attrs)
	}
	if !strings.Contains(sink.String(), "boom") || strings.Contains(sink.String(), "first warn") {
		t.Errorf("inner handler gating not respected: %q", sink.String())
	}
}

func TestDefaultLoggerFeedsDefaultRecorder(t *testing.T) {
	before := len(DefaultRecorder().Logs())
	Logger().Warn("recorder_test: default tee", "marker", "xyzzy")
	logs := DefaultRecorder().Logs()
	if len(logs) <= before {
		t.Fatal("default logger Warn did not reach the default recorder")
	}
	if logs[0].Attrs["marker"] != "xyzzy" {
		t.Errorf("captured record = %+v", logs[0])
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Error("request IDs not unique")
	}
	if len(a) != 16 {
		t.Errorf("id %q, want 16 hex chars", a)
	}
}

func TestRequestIDFrom(t *testing.T) {
	tp := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if got := RequestIDFrom(tp, "client-42"); got != "client-42" {
		t.Errorf("explicit X-Request-ID lost: %q", got)
	}
	if got := RequestIDFrom(tp, ""); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("traceparent trace-id = %q", got)
	}
	// Header injection characters are stripped, not echoed.
	if got := RequestIDFrom("", "abc\r\nSet-Cookie: x"); got != "abcSet-Cookiex" {
		t.Errorf("sanitized id = %q", got)
	}
	if got := RequestIDFrom("garbage", "\r\n"); len(got) != 16 {
		t.Errorf("fallback id = %q, want generated", got)
	}
	for _, bad := range []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace-id
		"00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // not hex
	} {
		if id, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent(%q) accepted → %q", bad, id)
		}
	}
}

func TestTreeOfMarksOpenSpans(t *testing.T) {
	root := NewRoot("req")
	child := root.Start("stage")
	child.End()
	open := root.Start("still-going")
	time.Sleep(time.Millisecond)
	node := TreeOf(root)
	if !node.Open {
		t.Error("unended root not marked open")
	}
	if len(node.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(node.Children))
	}
	for _, c := range node.Children {
		switch c.Name {
		case "stage":
			if c.Open {
				t.Error("ended child marked open")
			}
		case "still-going":
			if !c.Open || c.DurationNS <= 0 {
				t.Errorf("open child = %+v, want open with elapsed duration", c)
			}
		}
	}
	open.End()
}

func TestRecorderDebugEndpoints(t *testing.T) {
	r := NewRecorder(RecorderConfig{})
	mux := http.NewServeMux()
	RegisterRecorderDebug(mux, r)

	root := NewRoot("serve:rank")
	c := root.Start("rank_practices")
	c.End()
	root.End()
	r.Record(root, RequestMeta{ID: "req-1", Status: 200, Slow: true})
	slog.New(r.LogHandler(slog.NewTextHandler(io.Discard, nil))).Warn("slow request", "request_id", "req-1")

	get := func(path string) (*httptest.ResponseRecorder, []byte) {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec, rec.Body.Bytes()
	}

	rec, body := get("/debug/requests")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/requests = %d", rec.Code)
	}
	var list struct {
		Count    int              `json:"count"`
		Requests []RequestSummary `json:"requests"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 1 || len(list.Requests) != 1 || list.Requests[0].ID != "req-1" || !list.Requests[0].Slow {
		t.Errorf("list = %+v", list)
	}

	rec, body = get("/debug/requests/req-1")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/requests/req-1 = %d (%s)", rec.Code, body)
	}
	var detail struct {
		Summary RequestSummary `json:"summary"`
		Tree    *SpanNode      `json:"tree"`
	}
	if err := json.Unmarshal(body, &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Tree == nil || detail.Tree.Name != "serve:rank" ||
		len(detail.Tree.Children) != 1 || detail.Tree.Children[0].Name != "rank_practices" {
		t.Errorf("detail tree = %+v", detail.Tree)
	}

	rec, body = get("/debug/requests/req-1/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("trace = %d", rec.Code)
	}
	if cd := rec.Header().Get("Content-Disposition"); !strings.Contains(cd, "trace-req-1.json") {
		t.Errorf("Content-Disposition = %q", cd)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &tf); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) != 2 {
		t.Errorf("trace events = %d, want 2", len(tf.TraceEvents))
	}

	rec, _ = get("/debug/requests/no-such-id")
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown id = %d, want 404", rec.Code)
	}
	rec, _ = get("/debug/requests/no-such-id/trace")
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", rec.Code)
	}

	rec, body = get("/debug/logs")
	if rec.Code != http.StatusOK || !strings.Contains(string(body), "slow request") {
		t.Errorf("/debug/logs = %d %s", rec.Code, body)
	}
}

func TestRecorderSnapshot(t *testing.T) {
	r := NewRecorder(RecorderConfig{KeepSlowest: 1})
	r.Record(recSpan("fast", 10), RequestMeta{ID: "fast"})
	r.Record(recSpan("slow", 100), RequestMeta{ID: "slow"})
	slog.New(r.LogHandler(slog.NewTextHandler(io.Discard, nil))).Warn("note")
	snap := r.Snapshot()
	if len(snap.Requests) != 2 || snap.Requests[0].ID != "slow" {
		t.Errorf("snapshot requests = %+v", snap.Requests)
	}
	if len(snap.RetainedTraces) != 1 || snap.RetainedTraces[0] != "slow" {
		t.Errorf("retained traces = %v, want [slow]", snap.RetainedTraces)
	}
	if len(snap.Logs) != 1 || snap.Logs[0].Msg != "note" {
		t.Errorf("snapshot logs = %+v", snap.Logs)
	}
}
