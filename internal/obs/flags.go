package obs

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// Flags is the shared observability CLI surface: verbosity, live
// progress, CPU and heap profiles, Chrome trace output, the run-manifest
// path, and a debug HTTP server exposing net/http/pprof, expvar, and
// Prometheus /metrics. Commands embed it, Register it on their FlagSet,
// call Start after parsing, and Stop on the way out. Keeping the wiring
// here is what guarantees cmd/mpa and cmd/mpa-experiments stay
// flag-compatible.
type Flags struct {
	// Verbose raises logging to info; VeryVerbose to debug.
	Verbose     bool
	VeryVerbose bool
	// Progress enables the live stderr progress line.
	Progress bool
	// CPUProfile and MemProfile name runtime/pprof output files.
	CPUProfile string
	MemProfile string
	// TracePath names the Chrome trace-event JSON output file.
	TracePath string
	// ManifestPath names the run-manifest JSON output file; the command
	// writes it on the way out (internal/runinfo holds the schema).
	ManifestPath string
	// DebugAddr, when non-empty, serves /debug/pprof, /debug/vars, and
	// /metrics.
	DebugAddr string

	cpuFile   *os.File
	boundAddr string
}

// Register installs the flags on fs.
func (p *Flags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&p.Verbose, "v", false, "log pipeline stages to stderr (info level)")
	fs.BoolVar(&p.VeryVerbose, "vv", false, "log per-network/per-month detail to stderr (debug level)")
	fs.BoolVar(&p.Progress, "progress", false, "render live stage progress on stderr")
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to `file` on exit")
	fs.StringVar(&p.TracePath, "trace", "", "write Chrome trace-event JSON to `file` on exit")
	fs.StringVar(&p.ManifestPath, "manifest", "", "write a run-manifest JSON (build info, config, stage rollups, report digests) to `file` on exit")
	fs.StringVar(&p.DebugAddr, "debug-addr", "", "serve /debug/pprof, /debug/vars, and /metrics on `addr` (e.g. localhost:6060)")
}

// Start applies the verbosity, begins CPU profiling, and launches the
// debug server on the shared DebugMux (never the default mux, so
// embedders and repeated Starts cannot hit a duplicate-registration
// panic). It returns an error when a profile file cannot be created or
// the debug address cannot be bound.
func (p *Flags) Start() error {
	switch {
	case p.VeryVerbose:
		SetVerbosity(2)
	case p.Verbose:
		SetVerbosity(1)
	}
	if p.Progress {
		EnableProgress()
	}
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			return fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	if p.DebugAddr != "" {
		ln, err := net.Listen("tcp", p.DebugAddr)
		if err != nil {
			return fmt.Errorf("obs: debug-addr: %w", err)
		}
		p.boundAddr = ln.Addr().String()
		Logger().Info("debug server listening", "addr", p.boundAddr)
		go func() {
			if err := http.Serve(ln, DebugMux()); err != nil {
				Logger().Error("debug server exited", "addr", ln.Addr().String(), "err", err)
			}
		}()
	}
	return nil
}

// BoundDebugAddr returns the debug server's bound address ("host:port",
// useful when DebugAddr asked for port 0), or "" before Start or when no
// debug server was requested.
func (p *Flags) BoundDebugAddr() string { return p.boundAddr }

// Stop finishes CPU profiling and writes the heap profile and the span
// trace, when requested. writeTrace renders the program's span tree (e.g.
// Framework.WriteTrace) and may be nil when no tree exists. Both outputs
// are written atomically (temp file + rename): a failed write leaves no
// truncated file behind.
func (p *Flags) Stop(writeTrace func(io.Writer) error) error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(p.cpuFile.Close())
		p.cpuFile = nil
	}
	if p.MemProfile != "" {
		keep(writeFileAtomic(p.MemProfile, "memprofile", func(w io.Writer) error {
			runtime.GC() // capture the retained heap, not transient garbage
			return pprof.WriteHeapProfile(w)
		}))
	}
	if p.TracePath != "" && writeTrace != nil {
		keep(writeFileAtomic(p.TracePath, "trace", writeTrace))
	}
	return firstErr
}

// writeFileAtomic writes through a temp file in the destination
// directory and renames into place — the same pattern as
// runinfo.Manifest.Write — so a write that fails midway (full disk,
// exporter error) never leaves a truncated profile or trace behind.
func writeFileAtomic(path, what string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("obs: %s: %w", what, err)
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("obs: %s: %w", what, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("obs: %s: %w", what, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("obs: %s: %w", what, err)
	}
	return nil
}
