package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one Chrome trace-event ("X" = complete event). Times are
// microseconds relative to the trace origin, per the trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object form of a trace, which both
// chrome://tracing and Perfetto load.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the span trees as Chrome trace-event JSON.
// Every span becomes a complete ("X") event; nesting is conveyed by time
// containment, which the viewers render as stacked slices. Span counters
// and the allocation delta appear in the event's args (visible when a
// slice is selected).
func WriteChromeTrace(w io.Writer, roots ...*Span) error {
	var origin int64
	seen := false
	for _, r := range roots {
		if r == nil {
			continue
		}
		if t := r.StartTime().UnixMicro(); !seen || t < origin {
			origin, seen = t, true
		}
	}
	if !seen {
		return fmt.Errorf("obs: no spans to trace")
	}
	tf := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for _, r := range roots {
		appendEvents(&tf.TraceEvents, r, origin)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// appendEvents adds the span and its subtree depth-first in start order.
func appendEvents(out *[]traceEvent, s *Span, origin int64) {
	if s == nil {
		return
	}
	ev := traceEvent{
		Name:  s.Name(),
		Phase: "X",
		Ts:    s.StartTime().UnixMicro() - origin,
		Dur:   s.Duration().Microseconds(),
		Pid:   1,
		Tid:   1,
	}
	counters := s.Counters()
	if alloc := s.AllocBytes(); alloc > 0 || len(counters) > 0 {
		args := make(map[string]any, len(counters)+1)
		for k, v := range counters {
			args[k] = v
		}
		args["alloc_bytes"] = alloc
		ev.Args = args
	}
	*out = append(*out, ev)
	for _, c := range s.Children() {
		appendEvents(out, c, origin)
	}
}
