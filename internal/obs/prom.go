package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"runtime/metrics"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for the metric registry,
// served as /metrics on the -debug-addr server. Stdlib-only: the format
// is simple enough that a renderer is smaller than a client library.
//
// Naming follows Prometheus conventions: every series carries the "mpa_"
// namespace, registry dots become underscores, counters gain a "_total"
// suffix, and histograms render as cumulative _bucket/_sum/_count series.
// A handful of runtime/metrics values are appended under "go_" so a
// scrape captures process health alongside pipeline metrics.

// PromHandler serves the registry (plus selected runtime metrics) in
// Prometheus text exposition format.
func PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, SnapshotMetrics())
		writeRuntimeProm(w)
	})
}

// WritePrometheus renders one registry snapshot in text exposition
// format. Series are emitted in sorted name order so the output is
// deterministic for a fixed snapshot (the exposition golden test).
func WritePrometheus(w io.Writer, snap MetricsSnapshot) {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n", pn)
		fmt.Fprintf(w, "%s %d\n", pn, snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(w, "%s %s\n", pn, promFloat(snap.Gauges[name]))
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writePromHistogram(w, promName(name), snap.Histograms[name])
	}

	names = names[:0]
	for name := range snap.LogHistograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writePromLogHistogram(w, promName(name), snap.LogHistograms[name])
	}
}

// writePromHistogram renders one histogram as cumulative buckets plus the
// _sum and _count series. The registry stores per-bucket counts with the
// overflow bucket last; Prometheus wants cumulative counts per upper
// bound ending in le="+Inf".
func writePromHistogram(w io.Writer, pn string, h HistogramSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
	var cum int64
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(bound), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
	fmt.Fprintf(w, "%s_sum %s\n", pn, promFloat(h.Sum))
	fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
}

// writePromLogHistogram renders one log-spaced histogram. Only the
// boundaries of non-empty buckets are emitted (the layout has ~285
// buckets; a dense rendering would dwarf the rest of the scrape), which
// is valid exposition: cumulative counts at any subset of bounds plus
// le="+Inf" describe the same distribution.
func writePromLogHistogram(w io.Writer, pn string, h LogHistogramSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if b.Index > logHistBuckets {
			break // overflow: covered by the +Inf line
		}
		upper := math.Pow(h.Growth, float64(b.Index))
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(upper), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
	fmt.Fprintf(w, "%s_sum %s\n", pn, promFloat(h.Sum))
	fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
}

// promName maps a registry name ("cache.inference.mem_hits") onto a
// namespaced Prometheus metric name ("mpa_cache_inference_mem_hits").
// Any character outside [a-zA-Z0-9_] becomes an underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("mpa_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects: shortest exact
// decimal, with +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// runtimeSamples are the runtime/metrics series exposed on /metrics,
// mapped onto conventional go_* names.
var runtimeSamples = []struct {
	runtime string
	prom    string
	typ     string
}{
	{"/gc/heap/allocs:bytes", "go_gc_heap_allocs_bytes_total", "counter"},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "counter"},
	{"/memory/classes/heap/objects:bytes", "go_memstats_heap_objects_bytes", "gauge"},
	{"/memory/classes/total:bytes", "go_memstats_total_bytes", "gauge"},
	{"/sched/goroutines:goroutines", "go_goroutines", "gauge"},
}

// writeRuntimeProm appends the selected runtime/metrics series plus
// GOMAXPROCS. Unsupported kinds (runtime version drift) are skipped.
func writeRuntimeProm(w io.Writer) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.runtime
	}
	metrics.Read(samples)
	for i, rs := range runtimeSamples {
		var v float64
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			v = float64(samples[i].Value.Uint64())
		case metrics.KindFloat64:
			v = samples[i].Value.Float64()
		default:
			continue
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", rs.prom, rs.typ)
		fmt.Fprintf(w, "%s %s\n", rs.prom, promFloat(v))
	}
	fmt.Fprintf(w, "# TYPE go_gomaxprocs gauge\ngo_gomaxprocs %d\n", runtime.GOMAXPROCS(0))
}
