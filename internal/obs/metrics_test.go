package obs

import (
	"encoding/json"
	"expvar"
	"math"
	"sync"
	"testing"
)

// TestCounterConcurrency hammers one registry counter from many
// goroutines; run with -race.
func TestCounterConcurrency(t *testing.T) {
	c := GetCounter("test.concurrent")
	before := c.Value() // registry metrics are process-global
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value() - before; got != workers*perWorker {
		t.Fatalf("counter delta = %d, want %d", got, workers*perWorker)
	}
	if GetCounter("test.concurrent") != c {
		t.Fatal("registry returned a different counter for the same name")
	}
}

func TestNilMetricReceivers(t *testing.T) {
	var c *Counter
	c.Add(1)
	if c.Value() != 0 {
		t.Fatal("nil counter non-zero")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge non-zero")
	}
	var h *Histogram
	h.Observe(1)
	if h.Snapshot().Count != 0 {
		t.Fatal("nil histogram non-zero")
	}
}

func TestGauge(t *testing.T) {
	g := GetGauge("test.gauge")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

// TestGaugeAdd pins the atomic up/down semantics: concurrent deltas must
// all land (a Set-after-read loop would lose updates under contention).
func TestGaugeAdd(t *testing.T) {
	g := GetGauge("test.gauge_add")
	g.Set(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Add(1)
				g.Add(-1)
			}
			g.Add(2)
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 16 {
		t.Fatalf("gauge = %v, want 16 after 8×(+2) net", got)
	}
	var nilG *Gauge
	nilG.Add(1) // must not panic
}

// TestHistogramIgnoresNonFinite is the regression test for the poisoned
// sum: one NaN (or ±Inf) observation used to corrupt sum — and with it
// the Prometheus _sum series — forever.
func TestHistogramIgnoresNonFinite(t *testing.T) {
	h := NewHistogram(1, 10)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(5)
	snap := h.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("count = %d, want 1 (non-finite values must be dropped)", snap.Count)
	}
	if snap.Sum != 5 || math.IsNaN(snap.Sum) {
		t.Fatalf("sum = %v, want 5", snap.Sum)
	}
}

// TestHistogramBucketEdges pins the bucket rule: a value lands in the
// first bucket whose upper bound is >= the value; values above every
// bound land in the overflow bucket.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	cases := []struct {
		v    float64
		want int // bucket index
	}{
		{0, 0},    // below the first bound
		{1, 0},    // exactly on a bound belongs to that bucket
		{1.01, 1}, // just above a bound spills to the next
		{10, 1},
		{99.999, 2},
		{100, 2},
		{100.5, 3}, // overflow
		{1e9, 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	snap := h.Snapshot()
	wantCounts := []int64{2, 2, 2, 2}
	for i, want := range wantCounts {
		if snap.Counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], want, snap.Counts)
		}
	}
	if snap.Count != 8 {
		t.Fatalf("count = %d, want 8", snap.Count)
	}
	wantSum := 0.0
	for _, c := range cases {
		wantSum += c.v
	}
	if snap.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", snap.Sum, wantSum)
	}
	if len(snap.Bounds) != 3 || snap.Bounds[2] != 100 {
		t.Fatalf("bounds = %v", snap.Bounds)
	}
}

func TestHistogramConcurrency(t *testing.T) {
	h := GetHistogram("test.hist", 1, 2, 3)
	before := h.Snapshot().Count
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(i % 5))
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count - before; got != 4000 {
		t.Fatalf("count delta = %d, want 4000", got)
	}
}

// TestExpvarExport checks the registry is visible through expvar as JSON.
func TestExpvarExport(t *testing.T) {
	before := GetCounter("test.export").Value()
	GetCounter("test.export").Add(7)
	v := expvar.Get("mpa")
	if v == nil {
		t.Fatal("expvar \"mpa\" not published")
	}
	var parsed struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(v.String()), &parsed); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	if got := parsed.Counters["test.export"] - before; got != 7 {
		t.Fatalf("exported counter delta = %d, want 7", got)
	}
}
