package obs

import (
	"context"
	"runtime/metrics"
	"sort"
	"sync"
	"time"
)

// Span is one timed region of the pipeline. Spans form a tree: a stage
// span ("inference") holds per-network children, which may hold per-month
// children. Each span records its wall-clock duration, the bytes
// allocated while it was open, and a set of named counters.
//
// Every method is safe on a nil receiver and does nothing, so
// instrumented code never guards call sites: un-wired pipelines (library
// use, benchmarks) pass nil spans and pay only the nil check.
//
// Spans are safe for concurrent use: children may be started and counters
// added from multiple goroutines.
type Span struct {
	name string

	mu         sync.Mutex
	start      time.Time
	startAlloc uint64
	dur        time.Duration
	alloc      uint64
	ended      bool
	counters   map[string]float64
	children   []*Span
}

// NewRoot starts a root span. The root is the handle the rest of the tree
// grows from; it is usually left open for the lifetime of a Framework.
func NewRoot(name string) *Span {
	return &Span{
		name:       name,
		start:      time.Now(),
		startAlloc: heapAllocBytes(),
	}
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start opens a child span. On a nil receiver it returns nil, which keeps
// the whole downstream instrumentation free.
//
// The start timestamp is taken under the parent's lock, so a span's
// children are ordered by start time even when they are started from
// concurrent goroutines — trace exports rely on this monotonicity.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{
		name:       name,
		startAlloc: heapAllocBytes(),
	}
	s.mu.Lock()
	child.start = time.Now()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// End closes the span, fixing its duration and allocation delta. Ending
// twice keeps the first measurement.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	if a := heapAllocBytes(); a > s.startAlloc {
		s.alloc = a - s.startAlloc
	}
}

// Duration returns the span's wall-clock duration; for a still-open span
// it is the time elapsed so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// AllocBytes returns the bytes allocated while the span was open (0 until
// End for open spans — allocation deltas are sampled once, at End, to
// keep open-span reads cheap).
func (s *Span) AllocBytes() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alloc
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Count adds delta to the span's named counter, creating it at zero.
func (s *Span) Count(name string, delta float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]float64, 4)
	}
	s.counters[name] += delta
	s.mu.Unlock()
}

// Counter returns the current value of one named counter.
func (s *Span) Counter(name string) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Counters returns a copy of the span's counters.
func (s *Span) Counters() map[string]float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.counters) == 0 {
		return nil
	}
	out := make(map[string]float64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// CounterNames returns the span's counter names in sorted order.
func (s *Span) CounterNames() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	s.mu.Unlock()
	sort.Strings(names)
	return names
}

// Children returns a copy of the span's direct children, in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// StartTime returns when the span was opened.
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// spanCtxKey keys the request span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s, for handler chains that pass
// a request-scoped span down to the code doing the work.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the span carried by ctx, or nil — and since every
// Span method is nil-safe, callers never need to check.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// heapAllocBytes reads the runtime's cumulative heap-allocation total.
// runtime/metrics reads do not stop the world, so sampling at span
// boundaries stays cheap enough for per-network and per-month spans.
func heapAllocBytes() uint64 {
	sample := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}
