package obs

import (
	"math"
	"sync/atomic"
)

// LogHistogram is a log-spaced-bucket distribution for latency-style
// values: bucket boundaries grow geometrically by LogHistGrowth, so any
// quantile estimate carries at most ~5% relative error across the whole
// range — nanoseconds through minutes when observing nanoseconds —
// using a fixed, small amount of memory. Observations are lock-free
// (one atomic add plus CAS loops for sum/min/max), which is what the
// per-endpoint serve latency series need on the hot path.
//
// Values below 1.0 land in a single underflow bucket and values past the
// top boundary (~6.3e11, about 10.5 minutes in nanoseconds) in a single
// overflow bucket; quantiles falling there are answered with the exact
// tracked min/max instead of a bucket midpoint. NaN and ±Inf
// observations are ignored — one bad value must not poison sum or the
// Prometheus exposition.
type LogHistogram struct {
	counts [logHistSlots]atomic.Int64
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits, updated by CAS
	min    atomic.Uint64 // float64 bits; +Inf when empty
	max    atomic.Uint64 // float64 bits; -Inf when empty
}

const (
	// LogHistGrowth is the geometric ratio between consecutive bucket
	// boundaries. Estimating a quantile at the geometric midpoint of its
	// bucket then errs by at most √growth−1 ≈ 4.9% relative — the
	// documented LogHistMaxRelError bound.
	LogHistGrowth = 1.1

	// LogHistMaxRelError is the guaranteed relative-error bound of
	// Quantile for values inside the bucketed range, pinned by the
	// property test in loghist_test.go.
	LogHistMaxRelError = 0.05

	// logHistBuckets log-spaced buckets span [1, growth^logHistBuckets):
	// with growth 1.1 the top boundary is ≈6.3e11, i.e. ~10.5 minutes
	// when observing nanoseconds.
	logHistBuckets = 285

	// logHistSlots = underflow + bucketed range + overflow.
	logHistSlots = logHistBuckets + 2

	logHistOverflowIndex = logHistBuckets + 1
)

var invLnLogHistGrowth = 1 / math.Log(LogHistGrowth)

// NewLogHistogram builds an unregistered log histogram; most callers
// want GetLogHistogram instead. Client-side recorders (cmd/mpa-loadgen)
// use unregistered instances so per-run state never leaks into the
// process-wide registry.
func NewLogHistogram() *LogHistogram {
	h := &LogHistogram{}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// logHistIndex maps a finite value onto its bucket slot: 0 for v < 1
// (underflow), 1..logHistBuckets for the geometric range, and the
// overflow slot past the top boundary.
func logHistIndex(v float64) int {
	if v < 1 {
		return 0
	}
	idx := 1 + int(math.Log(v)*invLnLogHistGrowth)
	if idx > logHistOverflowIndex {
		idx = logHistOverflowIndex
	}
	return idx
}

// logHistLower returns the inclusive lower boundary of bucket i ≥ 1.
func logHistLower(i int) float64 {
	return math.Pow(LogHistGrowth, float64(i-1))
}

// Observe records one value. NaN and ±Inf are ignored.
func (h *LogHistogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.counts[logHistIndex(v)].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *LogHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Quantile snapshots the histogram and estimates the p-quantile; see
// LogHistogramSnapshot.Quantile for the estimate's semantics and error
// bound.
func (h *LogHistogram) Quantile(p float64) float64 {
	return h.Snapshot().Quantile(p)
}

// LogBucket is one non-empty bucket of a LogHistogram snapshot. Index 0
// is the underflow bucket (v < 1); index i ≥ 1 covers
// [growth^(i-1), growth^i); the final index is the overflow bucket.
type LogBucket struct {
	Index int   `json:"index"`
	Count int64 `json:"count"`
}

// LogHistogramSnapshot is a point-in-time copy of a LogHistogram,
// sparse: only non-empty buckets are kept, in ascending index order, so
// a mostly-idle endpoint costs a few bytes in manifests and /debug/slo
// rather than hundreds of zeros. Min and Max are 0 when Count is 0.
type LogHistogramSnapshot struct {
	Growth  float64     `json:"growth"`
	Buckets []LogBucket `json:"buckets,omitempty"`
	Count   int64       `json:"count"`
	Sum     float64     `json:"sum"`
	Min     float64     `json:"min"`
	Max     float64     `json:"max"`
}

// Snapshot copies the histogram's current state.
func (h *LogHistogram) Snapshot() LogHistogramSnapshot {
	snap := LogHistogramSnapshot{Growth: LogHistGrowth}
	if h == nil {
		return snap
	}
	snap.Count = h.total.Load()
	snap.Sum = math.Float64frombits(h.sum.Load())
	if snap.Count > 0 {
		snap.Min = math.Float64frombits(h.min.Load())
		snap.Max = math.Float64frombits(h.max.Load())
	}
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			snap.Buckets = append(snap.Buckets, LogBucket{Index: i, Count: c})
		}
	}
	return snap
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s LogHistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the p-quantile: the value at rank ⌈p·count⌉ of the
// sorted observations (so p=0.5 on 10 samples is the 5th smallest,
// matching sorted[⌈p·n⌉−1]). The estimate is the geometric midpoint of
// the bucket holding that rank, clamped to the exact tracked [min, max],
// and is within LogHistMaxRelError (5%) relative of the true value for
// observations in the bucketed range [1, growth^285). Ranks landing in
// the underflow or overflow bucket return the exact min or max. p ≤ 0
// returns min, p ≥ 1 returns max; an empty histogram returns 0.
func (s LogHistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p <= 0 {
		return s.Min
	}
	if p >= 1 {
		return s.Max
	}
	rank := int64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum < rank {
			continue
		}
		switch b.Index {
		case 0:
			return s.Min
		case logHistOverflowIndex:
			return s.Max
		}
		lo := logHistLower(b.Index)
		est := lo * math.Sqrt(LogHistGrowth) // geometric midpoint of [lo, lo·growth)
		return math.Min(math.Max(est, s.Min), s.Max)
	}
	return s.Max
}
