package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// The debug handler set — Prometheus /metrics, expvar /debug/vars, and
// net/http/pprof under /debug/pprof — used to live on
// http.DefaultServeMux, which is process-global state: any embedder that
// also registered one of those paths panicked, and the handlers leaked
// onto every other server sharing the default mux. The set now installs
// onto explicit muxes: Flags.Start serves DebugMux(), and `mpa serve`
// mounts the same set on its own mux via RegisterDebug.

// RegisterDebug installs the debug handler set on mux:
//
//	/metrics              Prometheus text exposition (PromHandler)
//	/debug/vars           expvar JSON (the registry under the "mpa" key)
//	/debug/pprof/...      net/http/pprof index, cmdline, profile, symbol, trace
//
// Call it at most once per mux — http.ServeMux panics on duplicate
// patterns. For the shared process-wide mux, use DebugMux, which is
// idempotent.
func RegisterDebug(mux *http.ServeMux) {
	mux.Handle("/metrics", PromHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

var debugMux = sync.OnceValue(func() *http.ServeMux {
	mux := http.NewServeMux()
	RegisterDebug(mux)
	// The shared mux also serves the process-wide flight recorder, so a
	// batch run with -debug-addr can be asked which stages were slow.
	RegisterRecorderDebug(mux, DefaultRecorder())
	return mux
})

// DebugMux returns the process-wide debug mux, built on first call.
// Registration is idempotent: every call returns the same mux, so any
// number of Flags.Start calls (tests, embedders) can serve it without a
// duplicate-registration panic.
func DebugMux() *http.ServeMux { return debugMux() }
