package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// installSink installs a test sink and restores the disabled default
// when the test ends.
func installSink(t *testing.T, s *ProgressSink) {
	t.Helper()
	SetProgressSink(s)
	t.Cleanup(func() { SetProgressSink(nil) })
}

// TestProgressDisabled: with no sink installed every call is a no-op on
// a nil task.
func TestProgressDisabled(t *testing.T) {
	SetProgressSink(nil)
	pt := StartProgress("stage", 10)
	if pt != nil {
		t.Fatalf("StartProgress with no sink = %v, want nil", pt)
	}
	pt.Add(5) // must not panic
	pt.Done()
	if v := pt.Value(); v != 0 {
		t.Errorf("nil task Value = %d, want 0", v)
	}
}

// TestProgressConcurrent hammers one task from many goroutines (the
// -race configuration CI runs makes this a data-race probe as well as a
// correctness check).
func TestProgressConcurrent(t *testing.T) {
	var buf bytes.Buffer
	installSink(t, NewProgressSink(&buf, false, 0))

	const goroutines, per = 8, 1000
	pt := StartProgress("inference", goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				pt.Add(1)
			}
		}()
	}
	wg.Wait()
	pt.Done()

	if v := pt.Value(); v != goroutines*per {
		t.Errorf("Value = %d, want %d", v, goroutines*per)
	}
	out := buf.String()
	if !strings.Contains(out, "inference 8000/8000 (100%)") {
		t.Errorf("final render missing from output; tail: %q", tail(out, 200))
	}
}

// TestProgressConcurrentTasks runs several tasks at once; the sink must
// serialize their renders without interleaving bytes within one line.
func TestProgressConcurrentTasks(t *testing.T) {
	var buf bytes.Buffer
	installSink(t, NewProgressSink(&buf, false, 0))

	stages := []string{"generate", "inference", "cv", "experiments"}
	var wg sync.WaitGroup
	for _, stage := range stages {
		wg.Add(1)
		go func(stage string) {
			defer wg.Done()
			pt := StartProgress(stage, 50)
			for i := 0; i < 50; i++ {
				pt.Add(1)
			}
			pt.Done()
		}(stage)
	}
	wg.Wait()

	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "progress: ") {
			t.Fatalf("interleaved or malformed line %q", line)
		}
	}
	for _, stage := range stages {
		if !strings.Contains(buf.String(), stage+" 50/50 (100%)") {
			t.Errorf("stage %s final render missing", stage)
		}
	}
}

// TestProgressRateLimit: within the rate-limit window only the first
// update renders, but Done always does.
func TestProgressRateLimit(t *testing.T) {
	var buf bytes.Buffer
	s := NewProgressSink(&buf, false, time.Second)
	clock := time.Unix(1000, 0)
	s.now = func() time.Time { return clock }
	installSink(t, s)

	pt := StartProgress("stage", 100)
	for i := 0; i < 99; i++ {
		pt.Add(1)
	}
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Errorf("rendered %d lines inside rate-limit window, want 1", got)
	}
	pt.Add(1)
	pt.Done()
	if !strings.Contains(buf.String(), "stage 100/100 (100%)") {
		t.Errorf("Done did not force a final render: %q", buf.String())
	}
}

// TestProgressTTY: in-place rewriting with carriage returns, padding
// over longer previous lines, and a terminating newline on Done.
func TestProgressTTY(t *testing.T) {
	var buf bytes.Buffer
	installSink(t, NewProgressSink(&buf, true, 0))

	pt := StartProgress("generate", 5)
	pt.Add(3)
	pt.Done()
	out := buf.String()
	if !strings.HasPrefix(out, "\rgenerate 3/5 (60%)") {
		t.Errorf("first render not in-place: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("Done did not terminate the status line: %q", out)
	}
	if strings.Contains(out, "progress:") {
		t.Errorf("TTY mode rendered plain-mode lines: %q", out)
	}
}

// TestProgressUnknownTotal renders a bare running count for total <= 0.
func TestProgressUnknownTotal(t *testing.T) {
	var buf bytes.Buffer
	installSink(t, NewProgressSink(&buf, false, 0))
	pt := StartProgress("scan", 0)
	pt.Add(7)
	pt.Done()
	if !strings.Contains(buf.String(), "progress: scan 7\n") {
		t.Errorf("unknown-total render wrong: %q", buf.String())
	}
}

// tail returns the last n bytes of s for error messages.
func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}
