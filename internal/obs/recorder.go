package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder is the flight recorder: an always-on, bounded record of the
// process's completed root spans — one summary per serve request or
// pipeline stage — plus full span trees retained for the K slowest
// entries and the K most recent errors, and a small ring of recent
// Warn/Error log records captured through an slog.Handler tee
// (LogHandler). It exists so an operator seeing a latency spike in
// /metrics can ask "which request, and where did it spend its time?"
// after the fact: /debug/requests serves the ring, /debug/requests/{id}
// the retained tree, and /debug/requests/{id}/trace a Chrome trace of
// that one request. Run manifests snapshot the same state (Snapshot).
//
// Every mutation takes one short mutex-protected critical section over
// fixed-size state, so recording stays cheap enough to run on every
// request. All methods are safe for concurrent use and on a nil
// receiver (no-ops / zero values), matching the rest of the package.
type Recorder struct {
	mu       sync.Mutex
	cfg      RecorderConfig
	ring     []RequestSummary // circular; next is the write cursor
	next     int
	count    int // total ever recorded
	trees    map[string]*retainedTree
	slowIDs  []string    // ids retained as slowest; unordered, bounded by KeepSlowest
	errIDs   []string    // ids retained as recent errors; FIFO, bounded by KeepErrors
	logs     []LogRecord // circular
	logNext  int
	logCount int
}

// RecorderConfig bounds a Recorder. Zero fields take the defaults.
type RecorderConfig struct {
	// Ring is how many completed-entry summaries are kept (default 256).
	Ring int
	// KeepSlowest is how many full span trees are retained for the
	// slowest entries seen so far (default 8).
	KeepSlowest int
	// KeepErrors is how many full span trees are retained for the most
	// recent errored entries (default 8).
	KeepErrors int
	// LogRing is how many recent Warn/Error log records are kept
	// (default 64).
	LogRing int
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.Ring <= 0 {
		c.Ring = 256
	}
	if c.KeepSlowest <= 0 {
		c.KeepSlowest = 8
	}
	if c.KeepErrors <= 0 {
		c.KeepErrors = 8
	}
	if c.LogRing <= 0 {
		c.LogRing = 64
	}
	return c
}

// retainedTree is one span tree held beyond its summary, kept while it
// is referenced as a slowest entry, a recent error, or both.
type retainedTree struct {
	span  *Span
	durNS int64
	slow  bool // referenced from slowIDs
	err   bool // referenced from errIDs
}

// NewRecorder builds a recorder with the given bounds.
func NewRecorder(cfg RecorderConfig) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:   cfg,
		ring:  make([]RequestSummary, cfg.Ring),
		trees: map[string]*retainedTree{},
		logs:  make([]LogRecord, cfg.LogRing),
	}
}

var defaultRecorder = NewRecorder(RecorderConfig{})

// DefaultRecorder returns the process-wide flight recorder: the one the
// shared debug mux serves, run manifests snapshot, and the default
// logger tees Warn/Error records into.
func DefaultRecorder() *Recorder { return defaultRecorder }

// RequestMeta carries the per-entry facts the span itself doesn't know.
type RequestMeta struct {
	// ID identifies the entry; empty generates one (NewRequestID).
	ID string
	// Status is the HTTP status for serve requests (0 for batch stages).
	Status int
	// Err marks the entry as failed; its tree joins the recent-error set.
	Err bool
	// Slow marks the entry as over the caller's slow threshold.
	Slow bool
	// Tenant is the organization the request resolved to (multi-tenant
	// serve); empty for batch stages and single-tenant daemons.
	Tenant string
}

// StageBreakdown is one row of an entry's per-stage time split: the
// span's direct children merged by name.
type StageBreakdown struct {
	Name       string `json:"name"`
	Calls      int    `json:"calls"`
	DurationNS int64  `json:"duration_ns"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
}

// RequestSummary is one completed entry as kept in the recorder ring.
type RequestSummary struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	AllocBytes uint64    `json:"alloc_bytes,omitempty"`
	Status     int       `json:"status,omitempty"`
	Err        bool      `json:"error,omitempty"`
	Slow       bool      `json:"slow,omitempty"`
	Tenant     string    `json:"tenant,omitempty"`
	// TraceRetained reports whether the full span tree is still held
	// (slowest / recent-error sets); filled at read time, since retention
	// changes as later entries arrive.
	TraceRetained bool             `json:"trace_retained"`
	Stages        []StageBreakdown `json:"stages,omitempty"`
}

// maxStageRows caps the per-entry breakdown: the top rows by duration.
const maxStageRows = 8

// Record captures one completed root span: a compact summary enters the
// ring, and the full tree is retained while the entry ranks among the
// KeepSlowest slowest or the KeepErrors most recent errors. It returns
// the stored summary (with the assigned ID). Recording a nil span or on
// a nil recorder is a no-op.
func (r *Recorder) Record(sp *Span, meta RequestMeta) RequestSummary {
	if r == nil || sp == nil {
		return RequestSummary{}
	}
	if meta.ID == "" {
		meta.ID = NewRequestID()
	}
	sum := RequestSummary{
		ID:         meta.ID,
		Name:       sp.Name(),
		Start:      sp.StartTime(),
		DurationNS: sp.Duration().Nanoseconds(),
		AllocBytes: sp.AllocBytes(),
		Status:     meta.Status,
		Err:        meta.Err,
		Slow:       meta.Slow,
		Tenant:     meta.Tenant,
		Stages:     stageBreakdown(sp),
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring[r.next] = sum
	r.next = (r.next + 1) % len(r.ring)
	r.count++
	if meta.Err {
		r.retainError(meta.ID, sp, sum.DurationNS)
	}
	r.retainSlow(meta.ID, sp, sum.DurationNS)
	sum.TraceRetained = r.trees[meta.ID] != nil
	return sum
}

// retainError adds id to the recent-error set, evicting the oldest
// error beyond KeepErrors. Caller holds r.mu.
func (r *Recorder) retainError(id string, sp *Span, durNS int64) {
	t := r.ensureTree(id, sp, durNS)
	if t.err {
		return // same id re-recorded; already in the FIFO
	}
	t.err = true
	r.errIDs = append(r.errIDs, id)
	if len(r.errIDs) > r.cfg.KeepErrors {
		old := r.errIDs[0]
		r.errIDs = r.errIDs[1:]
		if ot := r.trees[old]; ot != nil {
			ot.err = false
			r.dropUnreferenced(old, ot)
		}
	}
}

// retainSlow keeps id's tree if it ranks among the KeepSlowest slowest
// entries seen so far, evicting the fastest member when full. Caller
// holds r.mu.
func (r *Recorder) retainSlow(id string, sp *Span, durNS int64) {
	if t := r.trees[id]; t != nil && t.slow {
		if durNS > t.durNS {
			t.durNS = durNS
			t.span = sp
		}
		return
	}
	if len(r.slowIDs) < r.cfg.KeepSlowest {
		r.ensureTree(id, sp, durNS).slow = true
		r.slowIDs = append(r.slowIDs, id)
		return
	}
	// Full: find the fastest retained entry and replace it if beaten.
	minIdx, minDur := -1, int64(0)
	for i, sid := range r.slowIDs {
		if t := r.trees[sid]; t != nil && (minIdx < 0 || t.durNS < minDur) {
			minIdx, minDur = i, t.durNS
		}
	}
	if minIdx < 0 || durNS <= minDur {
		return
	}
	old := r.slowIDs[minIdx]
	if ot := r.trees[old]; ot != nil {
		ot.slow = false
		r.dropUnreferenced(old, ot)
	}
	r.ensureTree(id, sp, durNS).slow = true
	r.slowIDs[minIdx] = id
}

func (r *Recorder) ensureTree(id string, sp *Span, durNS int64) *retainedTree {
	t := r.trees[id]
	if t == nil {
		t = &retainedTree{span: sp, durNS: durNS}
		r.trees[id] = t
	}
	return t
}

func (r *Recorder) dropUnreferenced(id string, t *retainedTree) {
	if !t.slow && !t.err {
		delete(r.trees, id)
	}
}

// stageBreakdown merges a span's direct children by name and returns
// the top rows by total duration.
func stageBreakdown(sp *Span) []StageBreakdown {
	children := sp.Children()
	if len(children) == 0 {
		return nil
	}
	index := map[string]int{}
	rows := make([]StageBreakdown, 0, len(children))
	for _, c := range children {
		i, ok := index[c.Name()]
		if !ok {
			i = len(rows)
			index[c.Name()] = i
			rows = append(rows, StageBreakdown{Name: c.Name()})
		}
		rows[i].Calls++
		rows[i].DurationNS += c.Duration().Nanoseconds()
		rows[i].AllocBytes += c.AllocBytes()
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].DurationNS > rows[j].DurationNS })
	if len(rows) > maxStageRows {
		rows = rows[:maxStageRows]
	}
	return rows
}

// Summaries returns the recorded entries, newest first, with
// TraceRetained reflecting current retention.
func (r *Recorder) Summaries() []RequestSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.count
	if n > len(r.ring) {
		n = len(r.ring)
	}
	out := make([]RequestSummary, 0, n)
	for i := 1; i <= n; i++ {
		s := r.ring[(r.next-i+len(r.ring))%len(r.ring)]
		s.TraceRetained = r.trees[s.ID] != nil
		out = append(out, s)
	}
	return out
}

// Slowest returns up to n recorded entries ordered by descending
// duration — `mpa stats` prints these as the slowest stages of the run.
func (r *Recorder) Slowest(n int) []RequestSummary {
	all := r.Summaries()
	sort.SliceStable(all, func(i, j int) bool { return all[i].DurationNS > all[j].DurationNS })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Get returns the most recent summary recorded under id, with
// TraceRetained set; ok is false when id is not in the ring.
func (r *Recorder) Get(id string) (RequestSummary, bool) {
	for _, s := range r.Summaries() {
		if s.ID == id {
			return s, true
		}
	}
	return RequestSummary{}, false
}

// Tree returns the retained span tree for id, or nil when the tree was
// never retained or has been evicted.
func (r *Recorder) Tree(id string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.trees[id]; t != nil {
		return t.span
	}
	return nil
}

// Count returns how many entries have ever been recorded (the ring
// keeps the most recent Ring of them).
func (r *Recorder) Count() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// RecorderSnapshot is a point-in-time copy of a recorder's state, as
// embedded in run manifests ("recorder" section).
type RecorderSnapshot struct {
	// Requests lists the ring's summaries, newest first.
	Requests []RequestSummary `json:"requests,omitempty"`
	// RetainedTraces lists the IDs whose full span trees are held.
	RetainedTraces []string `json:"retained_traces,omitempty"`
	// Logs lists the recent Warn/Error records, newest first.
	Logs []LogRecord `json:"logs,omitempty"`
}

// Snapshot copies the recorder's current state.
func (r *Recorder) Snapshot() RecorderSnapshot {
	if r == nil {
		return RecorderSnapshot{}
	}
	snap := RecorderSnapshot{Requests: r.Summaries(), Logs: r.Logs()}
	r.mu.Lock()
	ids := make([]string, 0, len(r.trees))
	for id := range r.trees {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Strings(ids)
	if len(ids) > 0 {
		snap.RetainedTraces = ids
	}
	return snap
}

// LogRecord is one captured Warn/Error log line.
type LogRecord struct {
	Time  time.Time         `json:"time"`
	Level string            `json:"level"`
	Msg   string            `json:"msg"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Logs returns the captured Warn/Error records, newest first.
func (r *Recorder) Logs() []LogRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.logCount
	if n > len(r.logs) {
		n = len(r.logs)
	}
	out := make([]LogRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.logs[(r.logNext-i+len(r.logs))%len(r.logs)])
	}
	return out
}

func (r *Recorder) addLog(rec LogRecord) {
	r.mu.Lock()
	r.logs[r.logNext] = rec
	r.logNext = (r.logNext + 1) % len(r.logs)
	r.logCount++
	r.mu.Unlock()
}

// teeHandler forwards every record to next and captures Warn/Error
// records into the recorder's log ring on the way through. Group names
// are applied to next but flattened out of the captured attrs.
type teeHandler struct {
	rec   *Recorder
	next  slog.Handler
	attrs []slog.Attr // pre-bound via WithAttrs, resolved at Handle time
}

// LogHandler wraps next so Warn/Error records land in the recorder's
// log ring regardless of next's level gate; everything still flows to
// next under its own gating. The default obs logger is built with this
// tee over the default recorder, which is what makes the recorder's log
// ring always-on.
func (r *Recorder) LogHandler(next slog.Handler) slog.Handler {
	return &teeHandler{rec: r, next: next}
}

func (h *teeHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return level >= slog.LevelWarn || h.next.Enabled(ctx, level)
}

func (h *teeHandler) Handle(ctx context.Context, rec slog.Record) error {
	if h.rec != nil && rec.Level >= slog.LevelWarn {
		attrs := map[string]string{}
		for _, a := range h.attrs {
			attrs[a.Key] = a.Value.Resolve().String()
		}
		rec.Attrs(func(a slog.Attr) bool {
			attrs[a.Key] = a.Value.Resolve().String()
			return true
		})
		if len(attrs) == 0 {
			attrs = nil
		}
		h.rec.addLog(LogRecord{
			Time:  rec.Time,
			Level: rec.Level.String(),
			Msg:   rec.Message,
			Attrs: attrs,
		})
	}
	if h.next.Enabled(ctx, rec.Level) {
		return h.next.Handle(ctx, rec)
	}
	return nil
}

func (h *teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &teeHandler{rec: h.rec, next: h.next.WithAttrs(attrs), attrs: merged}
}

func (h *teeHandler) WithGroup(name string) slog.Handler {
	return &teeHandler{rec: h.rec, next: h.next.WithGroup(name), attrs: h.attrs}
}

// reqSeq backs the fallback request-ID generator.
var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		return hex.EncodeToString(b[:])
	}
	return fmt.Sprintf("%016x", uint64(time.Now().UnixNano())^reqSeq.Add(1)<<48)
}

// RequestIDFrom derives the request ID for an incoming request:
// an explicit X-Request-ID header wins (sanitized), then the trace-id
// of a well-formed W3C traceparent, then a freshly generated ID.
func RequestIDFrom(traceparent, xRequestID string) string {
	if id := sanitizeRequestID(xRequestID); id != "" {
		return id
	}
	if id, ok := ParseTraceParent(traceparent); ok {
		return id
	}
	return NewRequestID()
}

// sanitizeRequestID keeps the characters safe to echo in headers, URLs,
// and log lines ([A-Za-z0-9._-]), capped at 128; anything else drops.
func sanitizeRequestID(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 128 {
		s = s[:128]
	}
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteRune(c)
		}
	}
	return b.String()
}

// ParseTraceParent extracts the trace-id from a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"). ok is
// false for malformed values, the forbidden version ff, and the all-zero
// trace-id the spec declares invalid.
func ParseTraceParent(s string) (traceID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", false
	}
	if strings.EqualFold(parts[0], "ff") {
		return "", false
	}
	zero := true
	for _, p := range parts[:3] {
		if _, err := hex.DecodeString(strings.ToLower(p)); err != nil {
			return "", false
		}
	}
	for _, c := range parts[1] {
		if c != '0' {
			zero = false
			break
		}
	}
	if zero {
		return "", false
	}
	return strings.ToLower(parts[1]), true
}

// SpanNode is the JSON form of one span (and, recursively, its
// subtree), served by /debug/requests/{id}. Open spans carry their
// elapsed-so-far duration.
type SpanNode struct {
	Name       string             `json:"name"`
	Start      time.Time          `json:"start"`
	DurationNS int64              `json:"duration_ns"`
	AllocBytes uint64             `json:"alloc_bytes,omitempty"`
	Open       bool               `json:"open,omitempty"`
	Counters   map[string]float64 `json:"counters,omitempty"`
	Children   []SpanNode         `json:"children,omitempty"`
}

// TreeOf renders a span tree as nested SpanNodes.
func TreeOf(s *Span) SpanNode {
	node := SpanNode{
		Name:       s.Name(),
		Start:      s.StartTime(),
		DurationNS: s.Duration().Nanoseconds(),
		AllocBytes: s.AllocBytes(),
		Open:       !s.Ended(),
		Counters:   s.Counters(),
	}
	for _, c := range s.Children() {
		node.Children = append(node.Children, TreeOf(c))
	}
	return node
}
