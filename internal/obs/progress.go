package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Live progress: long pipeline stages (generation, inference, CV folds,
// experiment fan-out) report completion counts through a process-wide
// sink so multi-minute runs are not silent. Like the rest of the
// package, reporting sites call unconditionally — with no sink installed
// (the default) StartProgress returns nil and every method is a no-op,
// so the hot paths pay one atomic load.

// ProgressSink renders progress updates onto one writer. On a TTY it
// rewrites a single status line in place; otherwise it prints plain
// lines. Rendering is rate-limited (stage completions always render), so
// per-item Add calls from tight worker loops stay cheap.
type ProgressSink struct {
	w   io.Writer
	tty bool
	min time.Duration
	now func() time.Time // injectable for tests

	mu      sync.Mutex
	last    time.Time
	lineLen int
}

// NewProgressSink builds a sink writing to w, rewriting in place when
// tty is set, rendering at most once per min (0 = every update).
func NewProgressSink(w io.Writer, tty bool, min time.Duration) *ProgressSink {
	return &ProgressSink{w: w, tty: tty, min: min, now: time.Now}
}

// progressSink is the installed process-wide sink (nil = disabled).
var progressSink atomic.Pointer[ProgressSink]

// SetProgressSink installs s as the process-wide progress sink; nil
// disables progress reporting.
func SetProgressSink(s *ProgressSink) {
	if s == nil {
		progressSink.Store((*ProgressSink)(nil))
		return
	}
	progressSink.Store(s)
}

// EnableProgress installs a stderr sink, TTY-aware and rate-limited to
// ten renders a second (the -progress flag).
func EnableProgress() {
	SetProgressSink(NewProgressSink(os.Stderr, isTerminal(os.Stderr), 100*time.Millisecond))
}

// isTerminal reports whether f is a character device (a terminal rather
// than a pipe or file).
func isTerminal(f *os.File) bool {
	info, err := f.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}

// ProgressTask tracks one stage's completion count. Add may be called
// from any number of goroutines; Done renders the final state. All
// methods are no-ops on a nil receiver, which StartProgress returns when
// no sink is installed.
type ProgressTask struct {
	sink  *ProgressSink
	stage string
	total int64
	done  atomic.Int64
}

// StartProgress opens a progress task for one stage. total <= 0 means
// the total is unknown and only the running count renders.
func StartProgress(stage string, total int64) *ProgressTask {
	s := progressSink.Load()
	if s == nil {
		return nil
	}
	return &ProgressTask{sink: s, stage: stage, total: total}
}

// Add records n more completed items and maybe renders.
func (t *ProgressTask) Add(n int64) {
	if t == nil {
		return
	}
	done := t.done.Add(n)
	t.sink.render(t.stage, done, t.total, false)
}

// Done renders the task's final state; on a TTY it also terminates the
// in-place status line.
func (t *ProgressTask) Done() {
	if t == nil {
		return
	}
	t.sink.render(t.stage, t.done.Load(), t.total, true)
}

// Value returns the completed count so far.
func (t *ProgressTask) Value() int64 {
	if t == nil {
		return 0
	}
	return t.done.Load()
}

// render writes one status line, dropping updates inside the rate-limit
// window unless final forces the write.
func (s *ProgressSink) render(stage string, done, total int64, final bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	if !final && s.min > 0 && now.Sub(s.last) < s.min {
		return
	}
	s.last = now

	var line string
	if total > 0 {
		line = fmt.Sprintf("%s %d/%d (%d%%)", stage, done, total, done*100/total)
	} else {
		line = fmt.Sprintf("%s %d", stage, done)
	}
	if s.tty {
		// Rewrite in place, blanking any longer previous line.
		pad := ""
		if n := s.lineLen - len(line); n > 0 {
			pad = strings.Repeat(" ", n)
		}
		s.lineLen = len(line)
		fmt.Fprintf(s.w, "\r%s%s", line, pad)
		if final {
			fmt.Fprintln(s.w)
			s.lineLen = 0
		}
		return
	}
	fmt.Fprintf(s.w, "progress: %s\n", line)
}
