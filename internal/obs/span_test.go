package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndOrdering(t *testing.T) {
	root := NewRoot("pipeline")
	gen := root.Start("generate")
	gen.Count("networks", 2)
	gen.End()
	inf := root.Start("inference")
	n1 := inf.Start("net-1")
	n1.End()
	n2 := inf.Start("net-2")
	n2.End()
	inf.End()
	root.End()

	kids := root.Children()
	if len(kids) != 2 {
		t.Fatalf("root children = %d, want 2", len(kids))
	}
	if kids[0].Name() != "generate" || kids[1].Name() != "inference" {
		t.Fatalf("child order = %q, %q; want generate, inference", kids[0].Name(), kids[1].Name())
	}
	grand := kids[1].Children()
	if len(grand) != 2 || grand[0].Name() != "net-1" || grand[1].Name() != "net-2" {
		t.Fatalf("inference children wrong: %+v", grand)
	}
	if len(grand[0].Children()) != 0 {
		t.Fatalf("leaf span has children")
	}
	if got := kids[0].Counter("networks"); got != 2 {
		t.Fatalf("generate.networks = %v, want 2", got)
	}
	if !root.Ended() || root.Duration() <= 0 {
		t.Fatalf("root not properly ended: ended=%v dur=%v", root.Ended(), root.Duration())
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	s := NewRoot("x")
	time.Sleep(time.Millisecond)
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Fatalf("second End changed duration: %v -> %v", d, s.Duration())
	}
}

func TestSpanAllocDelta(t *testing.T) {
	s := NewRoot("alloc")
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	s.End()
	if len(sink) != 64 {
		t.Fatal("sink lost")
	}
	// runtime/metrics allocation totals are flushed lazily from per-P
	// caches, so the delta can trail the true figure slightly; half the
	// allocated volume is a safe lower bound.
	if s.AllocBytes() < 32*4096 {
		t.Fatalf("alloc delta = %d, want >= %d", s.AllocBytes(), 32*4096)
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	child := s.Start("child")
	if child != nil {
		t.Fatalf("nil.Start returned non-nil")
	}
	s.Count("x", 1)
	s.End()
	if s.Duration() != 0 || s.AllocBytes() != 0 || s.Counter("x") != 0 {
		t.Fatal("nil span reported non-zero state")
	}
	if s.Children() != nil || s.Counters() != nil || s.CounterNames() != nil {
		t.Fatal("nil span reported non-nil collections")
	}
	if s.Name() != "" || s.Ended() {
		t.Fatal("nil span reported identity")
	}
}

// TestSpanConcurrentChildren mirrors the parallel pipeline's span usage:
// worker goroutines each open a per-item child under a shared stage span,
// nest grandchildren, and bump counters, while other goroutines
// concurrently read every accessor. The assertions are secondary — the
// point is that -race stays silent.
func TestSpanConcurrentChildren(t *testing.T) {
	root := NewRoot("stage")
	const writers = 8
	const perWriter = 50
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, c := range root.Children() {
					_ = c.Name()
					_ = c.Duration()
					_ = c.Ended()
					_ = c.Counters()
					_ = c.CounterNames()
					_ = c.Counter("months")
					_ = c.AllocBytes()
					_ = c.Children()
				}
				_ = root.Duration()
			}
		}()
	}
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				net := root.Start("network")
				for m := 0; m < 3; m++ {
					mo := net.Start("month")
					mo.Count("events", 1)
					mo.End()
				}
				net.Count("months", 3)
				net.End()
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()
	root.End()

	kids := root.Children()
	if len(kids) != writers*perWriter {
		t.Fatalf("children = %d, want %d", len(kids), writers*perWriter)
	}
	for _, c := range kids {
		if !c.Ended() || c.Counter("months") != 3 || len(c.Children()) != 3 {
			t.Fatalf("child %q incomplete: ended=%v months=%v grandchildren=%d",
				c.Name(), c.Ended(), c.Counter("months"), len(c.Children()))
		}
	}
}

// TestSpanConcurrency exercises concurrent child starts and counter adds;
// run with -race.
func TestSpanConcurrency(t *testing.T) {
	root := NewRoot("concurrent")
	const workers = 8
	const perWorker = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c := root.Start("child")
				c.Count("n", 1)
				c.End()
				root.Count("total", 1)
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != workers*perWorker {
		t.Fatalf("children = %d, want %d", got, workers*perWorker)
	}
	if got := root.Counter("total"); got != workers*perWorker {
		t.Fatalf("total = %v, want %d", got, workers*perWorker)
	}
}
