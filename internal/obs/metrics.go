package obs

import (
	"expvar"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically named event count. It is safe for concurrent
// use and costs one atomic add per Add.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a named instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta, atomically with respect to concurrent
// Add calls — the shape up/down tallies want (e.g. serve.streams_open),
// where concurrent Set-after-read would lose updates.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. A value v lands in the first
// bucket whose upper bound satisfies v <= bound; values above the last
// bound land in the overflow bucket. Observations are lock-free.
type Histogram struct {
	bounds []float64      // ascending upper bounds; len(counts) = len(bounds)+1
	counts []atomic.Int64 // per-bucket counts, overflow last
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// NewHistogram builds a histogram with the given ascending upper bounds.
// It is unregistered; most callers want GetHistogram instead.
func NewHistogram(bounds ...float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		bounds: bs,
		counts: make([]atomic.Int64, len(bs)+1),
	}
}

// Observe records one value. NaN and ±Inf are ignored: a single
// non-finite observation would otherwise poison sum forever and corrupt
// the Prometheus _sum exposition.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	// SearchFloat64s finds the first bound >= v, which is the first bucket
	// with v <= bound — except an exact hit needs no adjustment and v
	// above every bound falls through to the overflow bucket at len.
	h.counts[idx].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; overflow last
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.total.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		snap.Counts[i] = h.counts[i].Load()
	}
	return snap
}

// registry is the process-wide named-metric store, published once through
// expvar under the "mpa" variable.
var registry = struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	loghists map[string]*LogHistogram
}{
	counters: map[string]*Counter{},
	gauges:   map[string]*Gauge{},
	hists:    map[string]*Histogram{},
	loghists: map[string]*LogHistogram{},
}

func init() {
	expvar.Publish("mpa", expvar.Func(exportAll))
}

// GetCounter returns the process-wide counter with the given name,
// creating it on first use. Names are conventionally "stage.event",
// e.g. "inference.snapshots_parsed".
func GetCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	c, ok := registry.counters[name]
	if !ok {
		c = &Counter{}
		registry.counters[name] = c
	}
	return c
}

// GetGauge returns the process-wide gauge with the given name, creating
// it on first use.
func GetGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	g, ok := registry.gauges[name]
	if !ok {
		g = &Gauge{}
		registry.gauges[name] = g
	}
	return g
}

// GetHistogram returns the process-wide histogram with the given name,
// creating it with the given bucket bounds on first use (later calls
// reuse the existing buckets and ignore bounds).
func GetHistogram(name string, bounds ...float64) *Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	h, ok := registry.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		registry.hists[name] = h
	}
	return h
}

// GetLogHistogram returns the process-wide log-spaced histogram with
// the given name, creating it on first use. Unlike GetHistogram there
// are no bounds to choose: every LogHistogram shares the fixed
// geometric bucket layout (see LogHistGrowth).
func GetLogHistogram(name string) *LogHistogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	h, ok := registry.loghists[name]
	if !ok {
		h = NewLogHistogram()
		registry.loghists[name] = h
	}
	return h
}

// MetricsSnapshot is a point-in-time copy of the whole metric registry,
// consumed by the expvar export, the Prometheus exposition handler, and
// run manifests (internal/runinfo).
type MetricsSnapshot struct {
	Counters      map[string]int64                `json:"counters"`
	Gauges        map[string]float64              `json:"gauges"`
	Histograms    map[string]HistogramSnapshot    `json:"histograms"`
	LogHistograms map[string]LogHistogramSnapshot `json:"log_histograms,omitempty"`
}

// SnapshotMetrics copies every registered counter, gauge, and histogram.
func SnapshotMetrics() MetricsSnapshot {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	snap := MetricsSnapshot{
		Counters:   make(map[string]int64, len(registry.counters)),
		Gauges:     make(map[string]float64, len(registry.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(registry.hists)),
	}
	for name, c := range registry.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range registry.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range registry.hists {
		snap.Histograms[name] = h.Snapshot()
	}
	if len(registry.loghists) > 0 {
		snap.LogHistograms = make(map[string]LogHistogramSnapshot, len(registry.loghists))
		for name, h := range registry.loghists {
			snap.LogHistograms[name] = h.Snapshot()
		}
	}
	return snap
}

// exportAll renders the registry for expvar (`/debug/vars` → "mpa").
func exportAll() any { return SnapshotMetrics() }
