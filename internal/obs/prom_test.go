package obs

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the text exposition format byte-for-byte on
// a fixed snapshot: counter/gauge/histogram type lines, sorted series
// order, cumulative buckets, and float rendering.
func TestPrometheusGolden(t *testing.T) {
	snap := MetricsSnapshot{
		Counters: map[string]int64{
			"inference.snapshots_parsed": 42,
			"cache.inference.mem_hits":   7,
		},
		Gauges: map[string]float64{
			"pipeline.networks":   120,
			"dataset.build_ratio": 0.25,
		},
		Histograms: map[string]HistogramSnapshot{
			"inference.month_ms": {
				Bounds: []float64{1, 5, 25},
				Counts: []int64{3, 2, 1, 4},
				Count:  10,
				Sum:    123.5,
			},
		},
	}
	var b strings.Builder
	WritePrometheus(&b, snap)
	got := b.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// expositionLine matches one sample line of the text format:
// name{labels} value. Comment lines are handled separately.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]*"\})? ([0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

// TestPromHandlerLive scrapes the live handler and checks that (i) every
// registered counter and histogram appears, and (ii) every line is
// well-formed exposition text.
func TestPromHandlerLive(t *testing.T) {
	GetCounter("promtest.events").Add(3)
	GetGauge("promtest.level").Set(1.5)
	GetHistogram("promtest.latency_ms", 1, 10, 100).Observe(12)

	rec := httptest.NewRecorder()
	PromHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()

	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content-type = %q, want text/plain exposition", ct)
	}

	snap := SnapshotMetrics()
	for name := range snap.Counters {
		if !strings.Contains(body, promName(name)+"_total ") {
			t.Errorf("counter %q missing from /metrics", name)
		}
	}
	for name := range snap.Gauges {
		if !strings.Contains(body, promName(name)+" ") {
			t.Errorf("gauge %q missing from /metrics", name)
		}
	}
	for name := range snap.Histograms {
		pn := promName(name)
		for _, suffix := range []string{`_bucket{le="+Inf"} `, "_sum ", "_count "} {
			if !strings.Contains(body, pn+suffix) {
				t.Errorf("histogram %q missing %s series from /metrics", name, suffix)
			}
		}
	}

	for i, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("line %d: malformed TYPE comment %q", i+1, line)
			}
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("line %d: not valid exposition text: %q", i+1, line)
		}
	}
}

// TestPromHistogramCumulative checks the bucket math: registry buckets
// are per-bucket counts, exposition buckets must be cumulative and end
// at the total count.
func TestPromHistogramCumulative(t *testing.T) {
	var b strings.Builder
	writePromHistogram(&b, "mpa_x", HistogramSnapshot{
		Bounds: []float64{1, 2},
		Counts: []int64{5, 3, 2},
		Count:  10,
		Sum:    9,
	})
	want := "# TYPE mpa_x histogram\n" +
		"mpa_x_bucket{le=\"1\"} 5\n" +
		"mpa_x_bucket{le=\"2\"} 8\n" +
		"mpa_x_bucket{le=\"+Inf\"} 10\n" +
		"mpa_x_sum 9\n" +
		"mpa_x_count 10\n"
	if b.String() != want {
		t.Errorf("got:\n%s\nwant:\n%s", b.String(), want)
	}
}
