// Per-endpoint latency-SLO instrumentation: every query-wrapped /v1
// endpoint records into a log-spaced latency histogram (~5% relative
// quantile error, see obs.LogHistogram) and per-status-class counters,
// alongside — not replacing — the coarse global serve.latency_ms series
// that predates it. GET /debug/slo summarizes the same state as JSON
// (p50/p90/p99/p99.9, min/max/mean, error rates) so the SLO gate, a
// dashboard, or a human can read the daemon's latency posture without a
// Prometheus stack; /metrics carries the full series for one.
package serve

import (
	"net/http"
	"sort"
	"time"

	"mpa/internal/obs"
)

// statusClasses are the response-status families tallied per endpoint,
// as "serve.status.<endpoint>.<class>" counters.
var statusClasses = [4]string{"2xx", "3xx", "4xx", "5xx"}

// endpointMetrics is one endpoint's latency-SLO instrumentation. The
// prefix scopes the series: "serve." for the global (fleet-wide)
// aggregates, "serve.tenant.<org>." for one tenant's view of the same
// endpoint.
type endpointMetrics struct {
	name    string
	latency *obs.LogHistogram // <prefix>latency_ns.<name>: nanoseconds
	status  [len(statusClasses)]*obs.Counter
}

func newEndpointMetrics(prefix, name string) *endpointMetrics {
	m := &endpointMetrics{
		name:    name,
		latency: obs.GetLogHistogram(prefix + "latency_ns." + name),
	}
	for i, class := range statusClasses {
		m.status[i] = obs.GetCounter(prefix + "status." + name + "." + class)
	}
	return m
}

// observe records one completed request.
func (m *endpointMetrics) observe(dur time.Duration, status int) {
	m.latency.Observe(float64(dur.Nanoseconds()))
	idx := status/100 - 2
	if idx < 0 {
		idx = 0
	}
	if idx >= len(statusClasses) {
		idx = len(statusClasses) - 1
	}
	m.status[idx].Add(1)
}

// endpointSLO is one endpoint's row in the /debug/slo summary.
type endpointSLO struct {
	Requests      int64            `json:"requests"`
	Errors        int64            `json:"errors"`
	ErrorRate     float64          `json:"error_rate"`
	StatusClasses map[string]int64 `json:"status_classes"`
	// LatencyMS is absent until the endpoint has served a request.
	LatencyMS *latencySummaryMS `json:"latency_ms,omitempty"`
}

// latencySummaryMS summarizes one latency distribution in milliseconds.
// Percentiles come from the endpoint's log histogram and inherit its
// ~5% relative-error bound; min/max/mean are exact.
type latencySummaryMS struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// latencyMS converts a nanosecond log-histogram snapshot into the
// millisecond summary, nil while empty.
func latencyMS(snap obs.LogHistogramSnapshot) *latencySummaryMS {
	if snap.Count == 0 {
		return nil
	}
	const ns = 1e6
	return &latencySummaryMS{
		P50:  snap.Quantile(0.50) / ns,
		P90:  snap.Quantile(0.90) / ns,
		P99:  snap.Quantile(0.99) / ns,
		P999: snap.Quantile(0.999) / ns,
		Min:  snap.Min / ns,
		Max:  snap.Max / ns,
		Mean: snap.Mean() / ns,
	}
}

// sloResponse is the GET /debug/slo body. Endpoints carries the global
// (fleet-wide) aggregates; Tenants, present only when tenants are
// named, breaks the same endpoints down per organization.
type sloResponse struct {
	UptimeSeconds float64                           `json:"uptime_seconds"`
	StreamsOpen   int64                             `json:"streams_open"`
	Endpoints     map[string]endpointSLO            `json:"endpoints"`
	Tenants       map[string]map[string]endpointSLO `json:"tenants,omitempty"`
}

// sloRow snapshots one endpoint's instrumentation into a summary row.
func sloRow(m *endpointMetrics) endpointSLO {
	snap := m.latency.Snapshot()
	row := endpointSLO{
		Requests:      snap.Count,
		StatusClasses: make(map[string]int64, len(statusClasses)),
		LatencyMS:     latencyMS(snap),
	}
	for i, class := range statusClasses {
		v := m.status[i].Value()
		row.StatusClasses[class] = v
		if class == "4xx" || class == "5xx" {
			row.Errors += v
		}
	}
	if row.Requests > 0 {
		row.ErrorRate = float64(row.Errors) / float64(row.Requests)
	}
	return row
}

// handleSLO summarizes every instrumented endpoint, globally and per
// tenant. Long-lived SSE streams are deliberately not an endpoint row
// (they are connections, not requests); their population shows up as
// streams_open.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	out := sloResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		StreamsOpen:   int64(s.streamsOpen.Value()),
		Endpoints:     make(map[string]endpointSLO, len(s.ep)),
	}
	names := make([]string, 0, len(s.ep))
	for name := range s.ep {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.Endpoints[name] = sloRow(s.ep[name])
	}
	for name, sh := range s.shards {
		if sh.ep == nil {
			continue
		}
		rows := make(map[string]endpointSLO, len(sh.ep))
		for ep, m := range sh.ep {
			rows[ep] = sloRow(m)
		}
		if out.Tenants == nil {
			out.Tenants = make(map[string]map[string]endpointSLO, len(s.shards))
		}
		out.Tenants[name] = rows
	}
	writeJSON(w, http.StatusOK, out)
}
