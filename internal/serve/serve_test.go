package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mpa"
	"mpa/internal/obs"
	"mpa/internal/serve"
)

// The package shares one warm framework: building it runs inference once,
// which is exactly the serve-mode lifecycle under test.
var (
	frameworkOnce sync.Once
	framework     *mpa.Framework
)

func testFramework(t *testing.T) *mpa.Framework {
	t.Helper()
	frameworkOnce.Do(func() {
		cfg := mpa.SmallConfig(5)
		cfg.Networks = 24
		f, err := mpa.NewSynthetic(cfg)
		if err != nil {
			panic(err)
		}
		framework = f
	})
	return framework
}

func testServer(t *testing.T) *serve.Server {
	t.Helper()
	return serve.New(testFramework(t), serve.Config{})
}

// get performs one request against the server's handler and decodes the
// JSON body into out (skipped when out is nil).
func get(t *testing.T, s *serve.Server, path string, out any) *http.Response {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	res := rec.Result()
	if out != nil && res.StatusCode == http.StatusOK {
		if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s: Content-Type = %q", path, ct)
		}
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
	return res
}

func wantStatus(t *testing.T, res *http.Response, path string, want int) {
	t.Helper()
	if res.StatusCode != want {
		body, _ := io.ReadAll(res.Body)
		t.Fatalf("%s: status = %d, want %d (body %s)", path, res.StatusCode, want, body)
	}
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	var body struct {
		Status      string `json:"status"`
		Networks    int    `json:"networks"`
		WindowStart string `json:"window_start"`
		Months      int    `json:"months"`
		Experiments int    `json:"experiments"`
	}
	res := get(t, s, "/healthz", &body)
	wantStatus(t, res, "/healthz", http.StatusOK)
	if body.Status != "ok" {
		t.Errorf("status = %q, want ok", body.Status)
	}
	if body.Networks != 24 {
		t.Errorf("networks = %d, want 24", body.Networks)
	}
	if body.WindowStart != "2014-01" || body.Months != 6 {
		t.Errorf("window = %s × %d months, want 2014-01 × 6", body.WindowStart, body.Months)
	}
	if body.Experiments != len(mpa.ExperimentIDs()) {
		t.Errorf("experiments = %d, want %d", body.Experiments, len(mpa.ExperimentIDs()))
	}
}

func TestRank(t *testing.T) {
	s := testServer(t)
	var body []struct {
		Rank        int     `json:"rank"`
		Metric      string  `json:"metric"`
		DisplayName string  `json:"display_name"`
		Category    string  `json:"category"`
		MI          float64 `json:"mi_bits"`
	}
	res := get(t, s, "/v1/rank", &body)
	wantStatus(t, res, "/v1/rank", http.StatusOK)
	if len(body) != 28 {
		t.Fatalf("ranked %d metrics, want the paper's 28", len(body))
	}
	for i, e := range body {
		if e.Rank != i+1 {
			t.Errorf("entry %d has rank %d", i, e.Rank)
		}
		if e.Metric == "" || e.DisplayName == "" || e.Category == "" {
			t.Errorf("entry %d incomplete: %+v", i, e)
		}
		if i > 0 && e.MI > body[i-1].MI {
			t.Errorf("ranking not descending at %d: %v > %v", i, e.MI, body[i-1].MI)
		}
	}
}

func TestCausal(t *testing.T) {
	s := testServer(t)
	var body struct {
		Treatment string `json:"treatment"`
		Points    []struct {
			Comparison string  `json:"comparison"`
			Pairs      int     `json:"pairs"`
			PValue     float64 `json:"p_value"`
		} `json:"points"`
	}
	res := get(t, s, "/v1/causal?practice=no_change_events", &body)
	wantStatus(t, res, "/v1/causal", http.StatusOK)
	if body.Treatment != "no_change_events" || len(body.Points) == 0 {
		t.Errorf("causal body = %+v", body)
	}

	res = get(t, s, "/v1/causal", nil)
	wantStatus(t, res, "/v1/causal (no practice)", http.StatusBadRequest)

	res = get(t, s, "/v1/causal?practice=no_such_metric", nil)
	wantStatus(t, res, "/v1/causal (unknown)", http.StatusNotFound)
}

func TestPredict(t *testing.T) {
	s := testServer(t)
	network := testFramework(t).Dataset().Networks()[0]
	var body struct {
		Network        string `json:"network"`
		Month          string `json:"month"`
		Predicted2Name string `json:"predicted_class2_name"`
		Predicted5Name string `json:"predicted_class5_name"`
	}
	path := "/v1/predict?network=" + network + "&month=2014-01"
	res := get(t, s, path, &body)
	wantStatus(t, res, path, http.StatusOK)
	if body.Network != network || body.Month != "2014-01" {
		t.Errorf("predict body = %+v", body)
	}
	if body.Predicted2Name == "" || body.Predicted5Name == "" {
		t.Errorf("missing class names: %+v", body)
	}

	// Default month is the last window month.
	res = get(t, s, "/v1/predict?network="+network, &body)
	wantStatus(t, res, "/v1/predict (default month)", http.StatusOK)
	if body.Month != "2014-06" {
		t.Errorf("default month = %s, want 2014-06", body.Month)
	}

	res = get(t, s, "/v1/predict", nil)
	wantStatus(t, res, "/v1/predict (no network)", http.StatusBadRequest)

	res = get(t, s, "/v1/predict?network=no-such-network", nil)
	wantStatus(t, res, "/v1/predict (unknown network)", http.StatusNotFound)

	res = get(t, s, "/v1/predict?network="+network+"&month=January", nil)
	wantStatus(t, res, "/v1/predict (bad month)", http.StatusBadRequest)

	res = get(t, s, "/v1/predict?network="+network+"&month=2019-12", nil)
	wantStatus(t, res, "/v1/predict (month out of window)", http.StatusNotFound)
}

func TestReport(t *testing.T) {
	s := testServer(t)
	var body struct {
		ID      string             `json:"id"`
		Title   string             `json:"title"`
		Text    string             `json:"text"`
		Numbers map[string]float64 `json:"numbers"`
		Digest  string             `json:"digest"`
	}
	res := get(t, s, "/v1/report/table2", &body)
	wantStatus(t, res, "/v1/report/table2", http.StatusOK)
	if body.ID != "table2" || body.Title == "" || body.Text == "" {
		t.Errorf("report body = %+v", body)
	}
	if len(body.Digest) != 64 {
		t.Errorf("digest = %q, want 64 hex chars", body.Digest)
	}

	res = get(t, s, "/v1/report/no_such_report", nil)
	wantStatus(t, res, "/v1/report (unknown)", http.StatusNotFound)
}

func TestManifest(t *testing.T) {
	s := testServer(t)
	var body struct {
		Schema string `json:"schema"`
	}
	res := get(t, s, "/v1/manifest", &body)
	wantStatus(t, res, "/v1/manifest", http.StatusOK)
	if body.Schema != "mpa.run-manifest/v1" {
		t.Errorf("schema = %q", body.Schema)
	}
}

// TestWarmQueriesSkipRecomputation is the acceptance test for serve
// mode's core promise: a second identical query is answered from the
// warm query cache without re-running any pipeline stage — no new
// inference, ranking, or training spans — while the cache-hit counters
// rise, observably in /metrics.
func TestWarmQueriesSkipRecomputation(t *testing.T) {
	s := testServer(t)
	f := testFramework(t)
	network := f.Dataset().Networks()[1]

	// Prime the caches.
	wantStatus(t, get(t, s, "/v1/rank", nil), "/v1/rank", http.StatusOK)
	predict := "/v1/predict?network=" + network + "&month=2014-02"
	wantStatus(t, get(t, s, predict, nil), predict, http.StatusOK)

	stages := []string{"inference", "mi_ranking", "train_model"}
	before := make(map[string]int, len(stages))
	for _, st := range stages {
		before[st] = f.StageCalls(st)
	}
	hitsBefore := obs.GetCounter("cache.query.mem_hits").Value()

	// Warm repeats: same queries again, several times.
	for i := 0; i < 3; i++ {
		wantStatus(t, get(t, s, "/v1/rank", nil), "/v1/rank", http.StatusOK)
		wantStatus(t, get(t, s, predict, nil), predict, http.StatusOK)
	}

	for _, st := range stages {
		if got := f.StageCalls(st); got != before[st] {
			t.Errorf("stage %q ran %d more times on warm queries", st, got-before[st])
		}
	}
	if hits := obs.GetCounter("cache.query.mem_hits").Value() - hitsBefore; hits <= 0 {
		t.Errorf("cache.query.mem_hits did not rise on warm queries")
	}

	// The same evidence must be scrapeable from the server's own /metrics.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	wantStatus(t, rec.Result(), "/metrics", http.StatusOK)
	scrape := rec.Body.String()
	if !strings.Contains(scrape, "mpa_cache_query_mem_hits_total") {
		t.Errorf("/metrics scrape missing mpa_cache_query_mem_hits_total")
	}
	for _, line := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(line, "mpa_cache_query_mem_hits_total ") {
			var v float64
			if _, err := fmt.Sscanf(line, "mpa_cache_query_mem_hits_total %g", &v); err != nil || v <= 0 {
				t.Errorf("scraped %q, want a positive value", line)
			}
		}
	}
}

// TestConcurrentMixedQueries exercises every endpoint from concurrent
// goroutines; run with -race it pins the warm query layer's locking.
func TestConcurrentMixedQueries(t *testing.T) {
	s := testServer(t)
	networks := testFramework(t).Dataset().Networks()
	paths := []string{
		"/healthz",
		"/v1/rank",
		"/v1/causal?practice=no_change_events",
		"/v1/predict?network=" + networks[0] + "&month=2014-03",
		"/v1/predict?network=" + networks[2],
		"/v1/report/table2",
		"/v1/manifest",
		"/metrics",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				path := paths[(g+i)%len(paths)]
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("%s: status %d", path, rec.Code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestFlightRecorderEndToEnd is the acceptance test for the flight
// recorder loop: issue a query slower than the slow threshold, see its
// X-Request-ID round-trip, find it in /debug/requests marked slow,
// fetch its retained span tree, and download a well-formed Chrome
// trace for it containing the query's stage spans.
func TestFlightRecorderEndToEnd(t *testing.T) {
	// A dedicated recorder keeps other tests' requests out, and a 1ns
	// threshold classifies every real request as slow.
	rec := obs.NewRecorder(obs.RecorderConfig{})
	s := serve.New(testFramework(t), serve.Config{
		SlowThreshold: time.Nanosecond,
		Recorder:      rec,
	})

	// The slow query, with a client-chosen request ID.
	req := httptest.NewRequest(http.MethodGet, "/v1/causal?practice=no_change_events", nil)
	req.Header.Set("X-Request-ID", "e2e-slow-causal")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/causal: status %d (%s)", w.Code, w.Body.Bytes())
	}
	if got := w.Header().Get("X-Request-ID"); got != "e2e-slow-causal" {
		t.Fatalf("X-Request-ID = %q, want the client-supplied id echoed back", got)
	}

	// Found in /debug/requests by its request ID, marked slow.
	var list struct {
		Count    int `json:"count"`
		Requests []struct {
			ID            string `json:"id"`
			Name          string `json:"name"`
			Slow          bool   `json:"slow"`
			TraceRetained bool   `json:"trace_retained"`
			Stages        []struct {
				Name string `json:"name"`
			} `json:"stages"`
		} `json:"requests"`
	}
	res := get(t, s, "/debug/requests", &list)
	wantStatus(t, res, "/debug/requests", http.StatusOK)
	idx := -1
	for i, r := range list.Requests {
		if r.ID == "e2e-slow-causal" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("request e2e-slow-causal not in /debug/requests (%d entries)", len(list.Requests))
	}
	entry := list.Requests[idx]
	if entry.Name != "serve:causal" || !entry.Slow || !entry.TraceRetained {
		t.Errorf("entry = %+v, want serve:causal, slow, trace retained", entry)
	}
	stageNames := map[string]bool{}
	for _, st := range entry.Stages {
		stageNames[st.Name] = true
	}
	if !stageNames["causal_analysis"] || !stageNames["encode"] {
		t.Errorf("stage breakdown %v missing causal_analysis/encode", entry.Stages)
	}

	// The detail endpoint serves the retained span tree.
	var detail struct {
		Tree *struct {
			Name     string `json:"name"`
			Children []struct {
				Name       string `json:"name"`
				DurationNS int64  `json:"duration_ns"`
			} `json:"children"`
		} `json:"tree"`
	}
	res = get(t, s, "/debug/requests/e2e-slow-causal", &detail)
	wantStatus(t, res, "/debug/requests/{id}", http.StatusOK)
	if detail.Tree == nil || detail.Tree.Name != "serve:causal" {
		t.Fatalf("detail tree = %+v, want serve:causal root", detail.Tree)
	}
	childNames := map[string]bool{}
	for _, c := range detail.Tree.Children {
		childNames[c.Name] = true
		if c.DurationNS < 0 {
			t.Errorf("child %s has negative duration", c.Name)
		}
	}
	if !childNames["causal_analysis"] {
		t.Errorf("tree children %v missing causal_analysis stage span", childNames)
	}

	// The per-request Chrome trace: well-formed complete events including
	// the request root and its stage spans.
	tr := httptest.NewRecorder()
	s.Handler().ServeHTTP(tr, httptest.NewRequest(http.MethodGet, "/debug/requests/e2e-slow-causal/trace", nil))
	wantStatus(t, tr.Result(), "trace", http.StatusOK)
	if cd := tr.Header().Get("Content-Disposition"); !strings.Contains(cd, "trace-e2e-slow-causal.json") {
		t.Errorf("Content-Disposition = %q", cd)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   *int64 `json:"ts"`
			Dur  *int64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr.Body.Bytes(), &tf); err != nil {
		t.Fatalf("per-request trace is not valid JSON: %v", err)
	}
	events := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		events[ev.Name] = true
		if ev.Ph != "X" || ev.Ts == nil || ev.Dur == nil {
			t.Errorf("event %+v not a well-formed complete event", ev)
		}
	}
	for _, want := range []string{"serve:causal", "causal_analysis", "encode"} {
		if !events[want] {
			t.Errorf("trace missing span %q (has %v)", want, events)
		}
	}

	// The slow-request Warn line landed in the process recorder's log
	// ring (serve logs through obs.Logger(), whose handler tees Warn and
	// above into obs.DefaultRecorder — the ring `mpa serve` exposes at
	// /debug/logs in its production configuration).
	found := false
	for _, l := range obs.DefaultRecorder().Logs() {
		if l.Msg == "serve: slow request" && l.Attrs["request_id"] == "e2e-slow-causal" {
			found = true
			if l.Level != "WARN" {
				t.Errorf("slow-request log level = %s, want WARN", l.Level)
			}
		}
	}
	if !found {
		t.Error("slow-request Warn record not captured in the default recorder's log ring")
	}

	// Unknown IDs are clean 404s.
	wantStatus(t, get(t, s, "/debug/requests/nope", nil), "unknown id", http.StatusNotFound)
	wantStatus(t, get(t, s, "/debug/requests/nope/trace", nil), "unknown trace", http.StatusNotFound)
}

// TestGracefulShutdownDrains starts a real listener, fires a request
// that is still in flight when the serve context is canceled, and
// asserts the request completes successfully and Serve returns nil
// (clean drain).
func TestGracefulShutdownDrains(t *testing.T) {
	s := serve.New(testFramework(t), serve.Config{
		Addr:         "127.0.0.1:0",
		DrainTimeout: 10 * time.Second,
	})
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx) }()

	// An uncached causal analysis is the slowest query the server offers;
	// no_vlans is not analyzed by any other test, so this computes live.
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		res, err := http.Get("http://" + addr.String() + "/v1/causal?practice=no_vlans")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer res.Body.Close()
		_, _ = io.Copy(io.Discard, res.Body)
		done <- result{status: res.StatusCode}
	}()

	// Cancel as soon as the request is observably in flight. If it
	// finishes before we see it, shutdown-while-idle is still exercised.
	inflight := obs.GetGauge("serve.inflight")
	for i := 0; i < 1000 && inflight.Value() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200", r.status)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Serve did not return after context cancel")
	}
}
