package serve_test

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mpa/internal/obs"
	"mpa/internal/serve"
)

// sloBody mirrors the GET /debug/slo response shape.
type sloBody struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	StreamsOpen   int64   `json:"streams_open"`
	Endpoints     map[string]struct {
		Requests      int64            `json:"requests"`
		Errors        int64            `json:"errors"`
		ErrorRate     float64          `json:"error_rate"`
		StatusClasses map[string]int64 `json:"status_classes"`
		LatencyMS     *struct {
			P50  float64 `json:"p50"`
			P90  float64 `json:"p90"`
			P99  float64 `json:"p99"`
			P999 float64 `json:"p999"`
			Min  float64 `json:"min"`
			Max  float64 `json:"max"`
			Mean float64 `json:"mean"`
		} `json:"latency_ms"`
	} `json:"endpoints"`
}

// TestSLOSummaryEndToEnd is the acceptance test for the per-endpoint
// latency layer: issue successful and failing queries, then read the
// percentile summary and status-class tallies back from /debug/slo and
// the per-endpoint series from /metrics.
func TestSLOSummaryEndToEnd(t *testing.T) {
	s := testServer(t)

	// Baseline: the registry is process-global, so other tests' requests
	// may already be tallied. Deltas are what this test owns.
	var before sloBody
	wantStatus(t, get(t, s, "/debug/slo", &before), "/debug/slo", http.StatusOK)
	rankBefore := before.Endpoints["rank"].Requests
	causalErrBefore := before.Endpoints["causal"].Errors

	for i := 0; i < 3; i++ {
		wantStatus(t, get(t, s, "/v1/rank", nil), "/v1/rank", http.StatusOK)
	}
	// A 404: unknown practice must land in causal's 4xx class.
	wantStatus(t, get(t, s, "/v1/causal?practice=no_such_metric", nil),
		"/v1/causal (unknown)", http.StatusNotFound)

	var body sloBody
	wantStatus(t, get(t, s, "/debug/slo", &body), "/debug/slo", http.StatusOK)

	for _, name := range []string{"rank", "causal", "predict", "network", "report", "manifest", "ingest"} {
		if _, ok := body.Endpoints[name]; !ok {
			t.Errorf("/debug/slo missing endpoint %q", name)
		}
	}

	rank := body.Endpoints["rank"]
	if got := rank.Requests - rankBefore; got != 3 {
		t.Errorf("rank requests delta = %d, want 3", got)
	}
	if rank.LatencyMS == nil {
		t.Fatal("rank latency summary absent after requests")
	}
	l := rank.LatencyMS
	if l.Min <= 0 || l.Max < l.Min || l.P50 < l.Min || l.P999 > l.Max*1.0001 {
		t.Errorf("rank latency summary not ordered: %+v", l)
	}
	if l.P50 > l.P90+1e-9 || l.P90 > l.P99+1e-9 || l.P99 > l.P999+1e-9 {
		t.Errorf("rank percentiles not monotone: %+v", l)
	}

	causal := body.Endpoints["causal"]
	if got := causal.Errors - causalErrBefore; got != 1 {
		t.Errorf("causal errors delta = %d, want 1 (the 404)", got)
	}
	if causal.StatusClasses["4xx"] < 1 {
		t.Errorf("causal 4xx class = %d, want ≥ 1", causal.StatusClasses["4xx"])
	}
	if causal.Requests > 0 && causal.ErrorRate <= 0 {
		t.Errorf("causal error rate = %v, want > 0 after a 404", causal.ErrorRate)
	}

	// The same series must be scrapeable from /metrics.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	wantStatus(t, rec.Result(), "/metrics", http.StatusOK)
	scrape := rec.Body.String()
	for _, series := range []string{
		"mpa_serve_latency_ns_rank_bucket{le=",
		"mpa_serve_latency_ns_rank_count ",
		"mpa_serve_latency_ns_causal_sum ",
		"mpa_serve_status_rank_2xx_total ",
		"mpa_serve_status_causal_4xx_total ",
		"mpa_serve_streams_open ",
	} {
		if !strings.Contains(scrape, series) {
			t.Errorf("/metrics scrape missing %q", series)
		}
	}
}

// TestStreamsExcludedFromLatency pins the SSE exclusion: an open
// /v1/stream connection raises serve.streams_open but never appears in
// any request-latency histogram, no matter how long it stays attached.
func TestStreamsExcludedFromLatency(t *testing.T) {
	s := serve.New(testFramework(t), serve.Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	latencyCount := func() int64 {
		var total int64
		for _, name := range []string{"rank", "causal", "predict", "network", "report", "manifest", "ingest"} {
			total += obs.GetLogHistogram("serve.latency_ns." + name).Count()
		}
		return total + obs.GetHistogram("serve.latency_ms").Snapshot().Count
	}
	gauge := obs.GetGauge("serve.streams_open")
	openBefore := gauge.Value()
	countBefore := latencyCount()

	res, err := http.Get(srv.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() { // the opening comment line means the handler is live
		if strings.HasPrefix(sc.Text(), ":") {
			break
		}
	}
	if got := gauge.Value() - openBefore; got != 1 {
		t.Errorf("streams_open delta with live stream = %v, want 1", got)
	}

	res.Body.Close() // client disconnect must decrement the gauge
	deadline := time.Now().Add(5 * time.Second)
	for gauge.Value() != openBefore && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := gauge.Value(); got != openBefore {
		t.Errorf("streams_open = %v after disconnect, want %v", got, openBefore)
	}
	if got := latencyCount(); got != countBefore {
		t.Errorf("stream connection leaked into latency histograms (%d → %d observations)",
			countBefore, got)
	}
}
