package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mpa"
	"mpa/internal/ingest"
	"mpa/internal/osp"
	"mpa/internal/serve"
)

// ingestFixture builds a fresh framework over the first two months of a
// three-month organization plus the wire update carrying the third —
// fresh per test because ingest mutates the framework, unlike the
// package's shared read-only one.
func ingestFixture(t *testing.T) (*mpa.Framework, *ingest.Update, *osp.OSP) {
	t.Helper()
	p := osp.Small(6)
	p.Networks = 10
	p.End = p.Start.Add(2)
	o := osp.Generate(p)
	cut := p.Start.Add(1)
	arch, log := ingest.Truncate(o.Archive, o.Tickets, cut)
	f, err := mpa.NewCached(o.Inventory, arch, log, p.Start, cut, mpa.CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return f, ingest.SliceMonth(o.Archive, o.Tickets, p.End), o
}

// ingestResponse mirrors the POST /v1/ingest body.
type ingestResponse struct {
	Month     string   `json:"month"`
	NewMonth  bool     `json:"new_month"`
	WindowEnd string   `json:"window_end"`
	Networks  []string `json:"networks"`
	Snapshots int      `json:"snapshots"`
	Tickets   int      `json:"tickets"`
}

func postIngest(t *testing.T, s *serve.Server, body []byte) *http.Response {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Result()
}

func TestIngestEndpoint(t *testing.T) {
	f, u, o := ingestFixture(t)
	s := serve.New(f, serve.Config{})
	newMonth := o.Params.End

	var before struct {
		Months    int    `json:"months"`
		WindowEnd string `json:"window_end"`
	}
	get(t, s, "/healthz", &before)
	if before.Months != 2 {
		t.Fatalf("fixture window = %d months, want 2", before.Months)
	}

	body, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	res := postIngest(t, s, body)
	wantStatus(t, res, "/v1/ingest", http.StatusOK)
	var ir ingestResponse
	if err := json.NewDecoder(res.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if !ir.NewMonth || ir.Month != newMonth.String() || ir.WindowEnd != newMonth.String() {
		t.Fatalf("ingest response %+v, want window extension to %s", ir, newMonth)
	}
	if ir.Snapshots != len(u.Snapshots) || ir.Tickets != len(u.Tickets) {
		t.Fatalf("ingest response counts %d/%d, want %d/%d",
			ir.Snapshots, ir.Tickets, len(u.Snapshots), len(u.Tickets))
	}

	// The new month is immediately queryable, no restart.
	var after struct {
		Months    int    `json:"months"`
		WindowEnd string `json:"window_end"`
	}
	get(t, s, "/healthz", &after)
	if after.Months != 3 || after.WindowEnd != newMonth.String() {
		t.Fatalf("healthz after ingest: %+v, want 3 months ending %s", after, newMonth)
	}
	if len(ir.Networks) == 0 {
		t.Fatal("ingest touched no networks")
	}
	var nh struct {
		Network string `json:"network"`
		Month   string `json:"month"`
	}
	path := fmt.Sprintf("/v1/network?network=%s&month=%s", ir.Networks[0], newMonth)
	wantStatus(t, get(t, s, path, &nh), path, http.StatusOK)
	if nh.Month != newMonth.String() || nh.Network != ir.Networks[0] {
		t.Fatalf("network query after ingest: %+v", nh)
	}
	rres := get(t, s, "/v1/rank", nil)
	wantStatus(t, rres, "/v1/rank", http.StatusOK)
}

func TestIngestEndpointRejects(t *testing.T) {
	f, u, o := ingestFixture(t)
	s := serve.New(f, serve.Config{})

	bad := [][]byte{
		[]byte(`{nope`), // malformed JSON
		[]byte(`{"month":"2014-03","snapshotz":[]}`), // unknown field
	}
	if b, err := json.Marshal(ingest.Update{Month: o.Params.End.Add(2).String(),
		Snapshots: u.Snapshots[:0], Tickets: nil}); err == nil {
		bad = append(bad, b) // empty update for a month past the window
	}
	for i, body := range bad {
		res := postIngest(t, s, body)
		if res.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad body %d: status %d, want 400", i, res.StatusCode)
		}
	}
	// Nothing was applied.
	var h struct {
		Months int `json:"months"`
	}
	get(t, s, "/healthz", &h)
	if h.Months != 2 {
		t.Fatalf("window grew to %d months after rejected updates", h.Months)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	Type string
	Data string
}

// readSSE consumes the stream until n events arrive (comments and
// heartbeats skipped), or the deadline passes.
func readSSE(t *testing.T, body *bufio.Scanner, n int, deadline time.Time) []sseEvent {
	t.Helper()
	var evs []sseEvent
	cur := sseEvent{}
	for len(evs) < n && time.Now().Before(deadline) {
		if !body.Scan() {
			t.Fatalf("stream closed after %d events (want %d): %v", len(evs), n, body.Err())
		}
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.Type != "":
			evs = append(evs, cur)
			cur = sseEvent{}
		}
	}
	return evs
}

// TestIngestStream subscribes over real HTTP, applies an update, and
// asserts the exact event sequence: one delta per touched network, in
// the response's (sorted) network order, then one rank event.
func TestIngestStream(t *testing.T) {
	f, u, _ := ingestFixture(t)
	s := serve.New(f, serve.Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	res, err := http.Get(srv.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	// The server opens with a comment line; seeing it means the
	// subscription is registered and events cannot be missed.
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), ":") {
			break
		}
	}

	body, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	post, err := http.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ir ingestResponse
	if err := json.NewDecoder(post.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", post.StatusCode)
	}

	evs := readSSE(t, sc, len(ir.Networks)+1, time.Now().Add(30*time.Second))
	if len(evs) != len(ir.Networks)+1 {
		t.Fatalf("got %d events, want %d deltas + 1 rank", len(evs), len(ir.Networks))
	}
	for i, want := range ir.Networks {
		ev := evs[i]
		if ev.Type != "delta" {
			t.Fatalf("event %d: type %q, want delta", i, ev.Type)
		}
		var nh struct {
			Network string `json:"network"`
			Month   string `json:"month"`
			Tickets int    `json:"tickets"`
		}
		if err := json.Unmarshal([]byte(ev.Data), &nh); err != nil {
			t.Fatalf("event %d: bad JSON %q: %v", i, ev.Data, err)
		}
		if nh.Network != want || nh.Month != ir.Month {
			t.Fatalf("event %d: delta for %s/%s, want %s/%s", i, nh.Network, nh.Month, want, ir.Month)
		}
		// Deltas carry the post-ingest truth.
		if got := f.Tickets().HealthCount(nh.Network, f.Window()[len(f.Window())-1]); got != nh.Tickets {
			t.Fatalf("event %d: delta tickets %d, want %d", i, nh.Tickets, got)
		}
	}
	last := evs[len(evs)-1]
	if last.Type != "rank" {
		t.Fatalf("final event type %q, want rank", last.Type)
	}
	var rank struct {
		Month string            `json:"month"`
		Rank  []json.RawMessage `json:"rank"`
	}
	if err := json.Unmarshal([]byte(last.Data), &rank); err != nil {
		t.Fatalf("rank event: %v", err)
	}
	if rank.Month != ir.Month || len(rank.Rank) == 0 {
		t.Fatalf("rank event %q: month %s with %d entries", last.Data[:min(len(last.Data), 80)], rank.Month, len(rank.Rank))
	}
}

// TestIngestMidQueryConsistency hammers read endpoints while an ingest
// applies: every response must be complete and valid — served from
// either the old or the new environment, never a torn mix. Run under
// -race this also proves the swap is data-race-free.
func TestIngestMidQueryConsistency(t *testing.T) {
	f, u, o := ingestFixture(t)
	s := serve.New(f, serve.Config{})
	oldEnd := o.Params.Start.Add(1).String()
	newEnd := o.Params.End.String()

	body, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 25; i++ {
				req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req)
				var h struct {
					WindowEnd string `json:"window_end"`
				}
				if err := json.NewDecoder(rec.Result().Body).Decode(&h); err != nil {
					errs <- fmt.Errorf("healthz decode: %w", err)
					return
				}
				if h.WindowEnd != oldEnd && h.WindowEnd != newEnd {
					errs <- fmt.Errorf("healthz window_end %q, want %q or %q", h.WindowEnd, oldEnd, newEnd)
					return
				}
				req = httptest.NewRequest(http.MethodGet, "/v1/rank", nil)
				rec = httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req)
				if code := rec.Result().StatusCode; code != http.StatusOK {
					errs <- fmt.Errorf("rank status %d mid-ingest", code)
					return
				}
			}
		}()
	}
	close(start)
	res := postIngest(t, s, body)
	wantStatus(t, res, "/v1/ingest", http.StatusOK)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the dust settles every reader sees the new window.
	var h struct {
		WindowEnd string `json:"window_end"`
	}
	get(t, s, "/healthz", &h)
	if h.WindowEnd != newEnd {
		t.Fatalf("window_end %q after ingest, want %q", h.WindowEnd, newEnd)
	}
}
