package serve

import (
	"context"
	"testing"
	"time"
)

// TestServeListenerErrorClosesClosing pins the regression where Serve's
// listener-error exit path returned without closing s.closing, leaving
// attached SSE streams waiting on a channel nobody would ever close.
func TestServeListenerErrorClosesClosing(t *testing.T) {
	s := New(nil, Config{Addr: "127.0.0.1:0"})
	if _, err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	// Yank the listener out from under Serve: hs.Serve fails before the
	// context is ever canceled.
	if err := s.ln.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(context.Background()); err == nil {
		t.Fatal("Serve returned nil after the listener died")
	}
	select {
	case <-s.closing:
	case <-time.After(time.Second):
		t.Error("closing channel never closed on the listener-error exit path")
	}
}
