package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mpa/internal/obs"
)

// TestQueryPanicRecovered pins the regression where a panicking handler
// skipped sp.End() and every counter: the wrapper must recover, return a
// 500 JSON error, bump serve.panics and serve.errors, still observe
// latency, and record the request in the flight recorder as errored.
// New and query never touch the framework, so a nil one keeps the test
// from paying a full pipeline build.
func TestQueryPanicRecovered(t *testing.T) {
	rec := obs.NewRecorder(obs.RecorderConfig{})
	s := New(nil, Config{Recorder: rec})

	panicsBefore := s.panics.Value()
	errorsBefore := s.errors.Value()
	requestsBefore := s.requests.Value()

	h := s.query("boom", func(*shard, http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	})
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/boom", nil))

	if w.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", w.Code)
	}
	id := w.Header().Get("X-Request-ID")
	if id == "" {
		t.Error("panic response lost the X-Request-ID header")
	}
	var body errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("panic response body is not JSON: %v (%s)", err, w.Body.Bytes())
	}
	if !strings.Contains(body.Error, id) {
		t.Errorf("error body %q does not reference request id %s", body.Error, id)
	}

	if got := s.panics.Value() - panicsBefore; got != 1 {
		t.Errorf("serve.panics grew by %d, want 1", got)
	}
	if got := s.errors.Value() - errorsBefore; got != 1 {
		t.Errorf("serve.errors grew by %d, want 1", got)
	}
	if got := s.requests.Value() - requestsBefore; got != 1 {
		t.Errorf("serve.requests grew by %d, want 1", got)
	}

	sum, ok := rec.Get(id)
	if !ok {
		t.Fatal("panicked request missing from the flight recorder")
	}
	if !sum.Err || sum.Status != http.StatusInternalServerError {
		t.Errorf("recorder entry = %+v, want Err with status 500", sum)
	}
	if rec.Tree(id) == nil {
		t.Error("errored request's span tree not retained")
	}
}

// TestQueryPanicAfterWrite: when the handler panics after the response
// has started, headers cannot be rewritten — the wrapper must not write
// a second body, but the failure must still be counted and recorded as
// a 500 internally.
func TestQueryPanicAfterWrite(t *testing.T) {
	rec := obs.NewRecorder(obs.RecorderConfig{})
	s := New(nil, Config{Recorder: rec})

	h := s.query("halfway", func(_ *shard, w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write([]byte(`{"partial":`)); err != nil {
			t.Errorf("write: %v", err)
		}
		panic("mid-body failure")
	})
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/halfway", nil))

	if w.Code != http.StatusOK {
		t.Errorf("status = %d; headers were already sent, must stay 200", w.Code)
	}
	if got := w.Body.String(); got != `{"partial":` {
		t.Errorf("body = %q, want only the pre-panic bytes", got)
	}
	id := w.Header().Get("X-Request-ID")
	sum, ok := rec.Get(id)
	if !ok {
		t.Fatal("request missing from recorder")
	}
	if !sum.Err || sum.Status != http.StatusInternalServerError {
		t.Errorf("recorder entry = %+v, want internal status 500 despite 200 on the wire", sum)
	}
}

// TestQueryRequestIDPropagation: a client-supplied X-Request-ID echoes
// back and keys the recorder entry; a traceparent supplies the trace-id.
func TestQueryRequestIDPropagation(t *testing.T) {
	rec := obs.NewRecorder(obs.RecorderConfig{})
	s := New(nil, Config{Recorder: rec})
	h := s.query("ok", func(_ *shard, w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"ok": "true"})
	})

	req := httptest.NewRequest("GET", "/v1/ok", nil)
	req.Header.Set("X-Request-ID", "client-chosen-7")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if got := w.Header().Get("X-Request-ID"); got != "client-chosen-7" {
		t.Errorf("X-Request-ID = %q, want round-tripped client id", got)
	}
	if _, ok := rec.Get("client-chosen-7"); !ok {
		t.Error("recorder entry not keyed by client id")
	}

	req = httptest.NewRequest("GET", "/v1/ok", nil)
	req.Header.Set("traceparent", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if got := w.Header().Get("X-Request-ID"); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("X-Request-ID = %q, want the traceparent trace-id", got)
	}
}
