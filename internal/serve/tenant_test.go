package serve_test

// Multi-tenant serve: shard routing (path segment and X-MPA-Org
// header), cross-org fleet aggregates pinned byte-identical to the
// offline merge of per-org results, tenant isolation across ingest
// (exact warm-cache hit/miss deltas), the tenant-labeled flight
// recorder and /debug/slo, and the 413 regression for oversized ingest
// bodies.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mpa"
	"mpa/internal/obs"
	"mpa/internal/serve"
	"mpa/internal/tenant"
)

// The routing/fleet tests share one 2-org sharded server; tests that
// mutate org state (ingest) build their own registries.
var (
	shardedOnce sync.Once
	shardedReg  *tenant.Registry
	shardedSrv  *serve.Server
	shardedRec  *obs.Recorder
)

func loadShardedRegistry(t *testing.T, spec string, baseSeed uint64) *tenant.Registry {
	t.Helper()
	specs, err := tenant.ParseOrgs(spec)
	if err != nil {
		t.Fatal(err)
	}
	base := mpa.SmallConfig(baseSeed)
	reg, err := tenant.Load(specs, base)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func shardedServer(t *testing.T) (*serve.Server, *tenant.Registry) {
	t.Helper()
	shardedOnce.Do(func() {
		shardedReg = loadShardedRegistry(t, "acme=11:8:2,globex=12:6:2", 1)
		shardedRec = obs.NewRecorder(obs.RecorderConfig{})
		shardedSrv = serve.NewSharded(shardedReg, serve.Config{Recorder: shardedRec})
	})
	return shardedSrv, shardedReg
}

// raw performs one request and returns status and body bytes.
func raw(t *testing.T, s *serve.Server, method, path string, header map[string]string, body io.Reader) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(method, path, body)
	for k, v := range header {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	res := rec.Result()
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, b
}

func TestShardRoutingByPath(t *testing.T) {
	s, reg := shardedServer(t)

	for _, org := range reg.Names() {
		var hz struct {
			Status   string `json:"status"`
			Org      string `json:"org"`
			Networks int    `json:"networks"`
		}
		path := "/v1/orgs/" + org + "/healthz"
		code, body := raw(t, s, http.MethodGet, path, nil, nil)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", path, code, body)
		}
		if err := json.Unmarshal(body, &hz); err != nil {
			t.Fatal(err)
		}
		o, _ := reg.Get(org)
		if hz.Status != "ok" || hz.Org != org {
			t.Errorf("%s: got %+v, want ok for org %s", path, hz, org)
		}
		if want := len(o.F.Dataset().Networks()); hz.Networks != want {
			t.Errorf("%s: networks = %d, want %d", path, hz.Networks, want)
		}

		var rank []struct {
			Metric string `json:"metric"`
		}
		code, body = raw(t, s, http.MethodGet, "/v1/orgs/"+org+"/rank", nil, nil)
		if code != http.StatusOK {
			t.Fatalf("rank for %s: status %d", org, code)
		}
		if err := json.Unmarshal(body, &rank); err != nil {
			t.Fatal(err)
		}
		if len(rank) != 28 {
			t.Errorf("org %s ranked %d metrics, want 28", org, len(rank))
		}
	}
}

func TestShardRoutingByHeader(t *testing.T) {
	s, _ := shardedServer(t)

	// Header routing must serve the same bytes as the path form.
	codeH, bodyH := raw(t, s, http.MethodGet, "/v1/rank", map[string]string{serve.OrgHeader: "globex"}, nil)
	codeP, bodyP := raw(t, s, http.MethodGet, "/v1/orgs/globex/rank", nil, nil)
	if codeH != http.StatusOK || codeP != http.StatusOK {
		t.Fatalf("statuses %d (header) / %d (path), want 200/200", codeH, codeP)
	}
	if !bytes.Equal(bodyH, bodyP) {
		t.Error("header-routed /v1/rank differs from /v1/orgs/globex/rank")
	}

	// No org on a multi-org server: 400 naming the choices.
	code, body := raw(t, s, http.MethodGet, "/v1/rank", nil, nil)
	if code != http.StatusBadRequest {
		t.Errorf("bare /v1/rank: status %d, want 400", code)
	}
	if !bytes.Contains(body, []byte("acme")) || !bytes.Contains(body, []byte("globex")) {
		t.Errorf("400 body %s does not list the registered orgs", body)
	}

	// Unknown orgs are 404s on both routes.
	if code, _ := raw(t, s, http.MethodGet, "/v1/orgs/nope/rank", nil, nil); code != http.StatusNotFound {
		t.Errorf("/v1/orgs/nope/rank: status %d, want 404", code)
	}
	if code, _ := raw(t, s, http.MethodGet, "/v1/rank", map[string]string{serve.OrgHeader: "nope"}, nil); code != http.StatusNotFound {
		t.Errorf("X-MPA-Org: nope: status %d, want 404", code)
	}
}

// TestFleetRankByteIdentity is the tentpole's correctness bar: the
// fleet ranking must be byte-identical to merging the per-org /v1/rank
// responses offline.
func TestFleetRankByteIdentity(t *testing.T) {
	s, reg := shardedServer(t)

	var parts []tenant.RankPartial
	for _, org := range reg.Names() {
		var rank []struct {
			Metric string  `json:"metric"`
			MI     float64 `json:"mi_bits"`
		}
		code, body := raw(t, s, http.MethodGet, "/v1/orgs/"+org+"/rank", nil, nil)
		if code != http.StatusOK {
			t.Fatalf("rank for %s: %d", org, code)
		}
		if err := json.Unmarshal(body, &rank); err != nil {
			t.Fatal(err)
		}
		var hz struct {
			Cases int `json:"cases"`
		}
		code, body = raw(t, s, http.MethodGet, "/v1/orgs/"+org+"/healthz", nil, nil)
		if code != http.StatusOK {
			t.Fatalf("healthz for %s: %d", org, code)
		}
		if err := json.Unmarshal(body, &hz); err != nil {
			t.Fatal(err)
		}
		p := tenant.RankPartial{Org: org, Cases: hz.Cases}
		for _, e := range rank {
			p.Rank = append(p.Rank, mpa.PracticeDependence{Metric: e.Metric, MI: e.MI})
		}
		parts = append(parts, p)
	}

	merged, err := tenant.MergeRank(parts)
	if err != nil {
		t.Fatal(err)
	}
	// writeJSON's exact encoding: two-space indent, trailing newline.
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetIndent("", "  ")
	if err := enc.Encode(merged); err != nil {
		t.Fatal(err)
	}

	code, got := raw(t, s, http.MethodGet, "/v1/fleet/rank", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/v1/fleet/rank: status %d (%s)", code, got)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("fleet rank differs from offline merge of per-org responses:\ngot  %s\nwant %s", got, want.Bytes())
	}
	if merged.Entries[0].Rank != 1 || len(merged.Entries) != 28 {
		t.Errorf("merged ranking malformed: %d entries", len(merged.Entries))
	}
}

func TestFleetHealthConsistency(t *testing.T) {
	s, reg := shardedServer(t)

	var fleet struct {
		Status string `json:"status"`
		Totals struct {
			Orgs     int `json:"orgs"`
			Networks int `json:"networks"`
			Cases    int `json:"cases"`
		} `json:"totals"`
		Orgs []struct {
			Org      string `json:"org"`
			Networks int    `json:"networks"`
		} `json:"orgs"`
	}
	code, body := raw(t, s, http.MethodGet, "/v1/fleet/health", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/v1/fleet/health: %d", code)
	}
	if err := json.Unmarshal(body, &fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.Status != "ok" || fleet.Totals.Orgs != reg.Len() {
		t.Errorf("fleet health %+v, want ok over %d orgs", fleet, reg.Len())
	}
	wantNetworks, wantCases := 0, 0
	for _, o := range reg.Orgs() {
		wantNetworks += len(o.F.Dataset().Networks())
		wantCases += o.F.Dataset().Len()
	}
	if fleet.Totals.Networks != wantNetworks || fleet.Totals.Cases != wantCases {
		t.Errorf("totals = %+v, want %d networks / %d cases", fleet.Totals, wantNetworks, wantCases)
	}
	if len(fleet.Orgs) != reg.Len() || fleet.Orgs[0].Org != reg.Names()[0] {
		t.Errorf("org rows %+v not in name order", fleet.Orgs)
	}

	// The bare healthz of a multi-org server answers for the fleet.
	var hz struct {
		Status string   `json:"status"`
		Orgs   []string `json:"orgs"`
	}
	code, body = raw(t, s, http.MethodGet, "/healthz", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || strings.Join(hz.Orgs, ",") != strings.Join(reg.Names(), ",") {
		t.Errorf("fleet healthz %+v, want ok with orgs %v", hz, reg.Names())
	}
}

// TestTenantRecorderAndSLO pins the tenancy threading through
// observability: the flight recorder carries the tenant column and
// /debug/slo breaks endpoints down per org.
func TestTenantRecorderAndSLO(t *testing.T) {
	s, _ := shardedServer(t)

	code, _ := raw(t, s, http.MethodGet, "/v1/orgs/acme/rank",
		map[string]string{"X-Request-ID": "tenant-rec-1"}, nil)
	if code != http.StatusOK {
		t.Fatalf("rank: %d", code)
	}
	sum, ok := shardedRec.Get("tenant-rec-1")
	if !ok {
		t.Fatal("request missing from recorder")
	}
	if sum.Tenant != "acme" {
		t.Errorf("recorder tenant = %q, want acme", sum.Tenant)
	}

	var slo struct {
		Endpoints map[string]json.RawMessage            `json:"endpoints"`
		Tenants   map[string]map[string]json.RawMessage `json:"tenants"`
	}
	code, body := raw(t, s, http.MethodGet, "/debug/slo", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/slo: %d", code)
	}
	if err := json.Unmarshal(body, &slo); err != nil {
		t.Fatal(err)
	}
	if _, ok := slo.Endpoints["rank"]; !ok {
		t.Error("/debug/slo lost the global rank endpoint row")
	}
	for _, org := range []string{"acme", "globex"} {
		if _, ok := slo.Tenants[org]; !ok {
			t.Errorf("/debug/slo has no tenant breakdown for %s", org)
		}
	}
	var acmeRank struct {
		Requests int64 `json:"requests"`
	}
	if err := json.Unmarshal(slo.Tenants["acme"]["rank"], &acmeRank); err != nil {
		t.Fatal(err)
	}
	if acmeRank.Requests < 1 {
		t.Error("acme's rank requests not counted in the tenant SLO row")
	}
}

// TestTenantIsolationOnIngest mirrors TestIngestCacheInvalidationPrecision
// across orgs: an ingest into org alpha must leave org beta's warm
// query-cache entries untouched — beta's re-queries are all hits, zero
// misses.
func TestTenantIsolationOnIngest(t *testing.T) {
	reg := loadShardedRegistry(t, "alpha=21:5:2,beta=22:4:2", 2)
	s := serve.NewSharded(reg, serve.Config{})
	alpha, _ := reg.Get("alpha")
	beta, _ := reg.Get("beta")

	lastMonth := beta.F.Window()[len(beta.F.Window())-1].String()
	betaNets := beta.F.Dataset().Networks()
	warmBeta := func() {
		for _, n := range betaNets {
			path := "/v1/orgs/beta/network?network=" + n + "&month=" + lastMonth
			if code, body := raw(t, s, http.MethodGet, path, nil, nil); code != http.StatusOK {
				t.Fatalf("%s: %d (%s)", path, code, body)
			}
		}
		if code, _ := raw(t, s, http.MethodGet, "/v1/orgs/beta/rank", nil, nil); code != http.StatusOK {
			t.Fatal("beta rank failed")
		}
	}
	warmBeta()

	// Warm re-queries before the ingest: all hits, establishing the bar.
	pre := beta.F.QueryCacheStats()
	warmBeta()
	mid := beta.F.QueryCacheStats()
	wantHits := int64(len(betaNets) + 1)
	if d := mid.MemHits - pre.MemHits; d != wantHits {
		t.Fatalf("warm beta pass: %d hits, want %d", d, wantHits)
	}
	if d := mid.MemMisses - pre.MemMisses; d != 0 {
		t.Fatalf("warm beta pass: %d misses, want 0", d)
	}

	// Ingest one new month into alpha through the shard router.
	ups, err := mpa.NextMonths(alpha.Cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := json.Marshal(ups[0])
	if err != nil {
		t.Fatal(err)
	}
	code, body := raw(t, s, http.MethodPost, "/v1/orgs/alpha/ingest", nil, bytes.NewReader(ub))
	if code != http.StatusOK {
		t.Fatalf("alpha ingest: %d (%s)", code, body)
	}
	var res struct {
		NewMonth bool `json:"new_month"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.NewMonth {
		t.Fatal("alpha ingest did not extend the window")
	}

	// Beta's warm state must be exactly as warm as before: the same
	// all-hit/no-miss profile, pinning that alpha's invalidation never
	// crossed the shard boundary.
	pre = beta.F.QueryCacheStats()
	warmBeta()
	post := beta.F.QueryCacheStats()
	if d := post.MemHits - pre.MemHits; d != wantHits {
		t.Errorf("beta after alpha ingest: %d hits, want %d (cross-tenant invalidation leaked)", d, wantHits)
	}
	if d := post.MemMisses - pre.MemMisses; d != 0 {
		t.Errorf("beta after alpha ingest: %d misses, want 0 (cross-tenant invalidation leaked)", d)
	}

	// Sanity: alpha itself did invalidate — its window grew, so its
	// healthz reports one more month than beta's.
	var hz struct {
		Months int `json:"months"`
	}
	code, body = raw(t, s, http.MethodGet, "/v1/orgs/alpha/healthz", nil, nil)
	if code != http.StatusOK {
		t.Fatal("alpha healthz failed")
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Months != 3 {
		t.Errorf("alpha months = %d, want 3 after the extension", hz.Months)
	}
}

// TestConcurrentCrossTenantQueries drives both orgs concurrently while
// one ingests — the -race backstop for the shard router and per-tenant
// metrics.
func TestConcurrentCrossTenantQueries(t *testing.T) {
	reg := loadShardedRegistry(t, "left=31:4:2,right=32:4:2", 3)
	s := serve.NewSharded(reg, serve.Config{})
	left, _ := reg.Get("left")

	ups, err := mpa.NextMonths(left.Cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := json.Marshal(ups[0])
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		org := []string{"left", "right"}[w%2]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				path := fmt.Sprintf("/v1/orgs/%s/network?network=net%03d", org, i%4)
				if code, body := raw(t, s, http.MethodGet, path, nil, nil); code != http.StatusOK {
					t.Errorf("%s: %d (%s)", path, code, body)
					return
				}
				if code, _ := raw(t, s, http.MethodGet, "/v1/orgs/"+org+"/rank", nil, nil); code != http.StatusOK {
					t.Errorf("%s rank failed", org)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if code, body := raw(t, s, http.MethodPost, "/v1/orgs/left/ingest", nil, bytes.NewReader(ub)); code != http.StatusOK {
			t.Errorf("left ingest: %d (%s)", code, body)
		}
	}()
	wg.Wait()

	if code, _ := raw(t, s, http.MethodGet, "/v1/fleet/rank", nil, nil); code != http.StatusOK {
		t.Error("fleet rank after concurrent load failed")
	}
}

// TestIngestOversizedBodyIs413 pins the MaxBytesReader regression: an
// update body over the limit must be a 413, not a 400, while malformed
// small bodies stay 400s.
func TestIngestOversizedBodyIs413(t *testing.T) {
	s := serve.New(testFramework(t), serve.Config{MaxIngestBytes: 1 << 10})

	big := `{"month":"2014-07","snapshots":[{"device":"d","text":"` +
		strings.Repeat("x", 4<<10) + `"}]}`
	code, body := raw(t, s, http.MethodPost, "/v1/ingest", nil, strings.NewReader(big))
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized ingest body: status %d, want 413 (body %s)", code, body)
	}

	code, _ = raw(t, s, http.MethodPost, "/v1/ingest", nil, strings.NewReader("{not json"))
	if code != http.StatusBadRequest {
		t.Errorf("malformed ingest body: status %d, want 400", code)
	}
}
