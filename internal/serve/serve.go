// Package serve implements the long-lived `mpa serve` daemon: the
// paper's monthly monitoring loop turned into a resident process. The
// organization's data is loaded and inferred exactly once; the warm
// Framework — its analysis, dataset, and the content-addressed caches —
// stays in memory, and analysis queries are answered over HTTP. Repeated
// queries never re-run inference or any other pipeline stage: results
// are served from the framework's query cache ("cache.query.*" in
// /metrics), which is the daemon's heavy-traffic path.
//
// Endpoints:
//
//	GET /healthz                       liveness + loaded-state summary
//	GET /v1/rank                       practice↔health MI ranking
//	GET /v1/causal?practice=NAME       matched-design causal analysis
//	GET /v1/predict?network=N&month=M  health prediction for one network-month
//	GET /v1/network?network=N&month=M  per-network-month health summary (warm per-network memo)
//	GET /v1/report/{name}              one of the 24 experiment reports, digest-stamped
//	GET /v1/manifest                   run manifest for the loaded state
//	POST /v1/ingest                    apply one month of new snapshots/tickets in place
//	GET /v1/stream                     SSE feed of per-network deltas + refreshed rankings
//	GET /debug/slo                     per-endpoint latency percentiles + error rates (slo.go)
//	GET /metrics, /debug/pprof, /debug/vars  (the shared obs debug set)
//	GET /debug/requests[/{id}[/trace]], /debug/logs  (the flight recorder)
//
// Every /v1 query runs under a concurrency limit and a request-scoped
// obs span; totals, per-endpoint counts, errors, panics, in-flight
// depth, and latency histograms are registered under "serve.*" — the
// legacy coarse serve.latency_ms series plus one log-spaced
// serve.latency_ns.<endpoint> histogram (p50…p99.9 at ~5% relative
// error) and serve.status.<endpoint>.<class> counters per endpoint,
// summarized at /debug/slo and gated in CI by cmd/mpa-slogate. Each
// request gets an ID — honoring an incoming X-Request-ID or W3C
// traceparent, echoed back as X-Request-ID — and is recorded in the
// flight recorder (obs.Recorder) on completion: the recent ring is
// served at /debug/requests, and full span trees of the slowest and
// errored requests can be fetched as per-request Chrome traces.
// Requests slower than Config.SlowThreshold are logged at Warn with a
// per-stage breakdown. Shutdown is graceful: canceling the Serve
// context stops accepting connections and drains in-flight requests
// before returning.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"mpa"
	"mpa/internal/ingest"
	"mpa/internal/obs"
)

// Config parameterizes the server.
type Config struct {
	// Addr is the listen address, e.g. "localhost:8080"; port 0 picks a
	// free port (see Server.Listen).
	Addr string
	// MaxInFlight bounds concurrently executing /v1 queries; excess
	// requests queue. Zero means 2×GOMAXPROCS.
	MaxInFlight int
	// DrainTimeout bounds graceful shutdown: how long Serve waits for
	// in-flight requests after its context is canceled. Zero means 30s.
	DrainTimeout time.Duration
	// SlowThreshold classifies queries at least this slow as slow: they
	// are logged at Warn with a per-stage breakdown and pinned in the
	// flight recorder (the `mpa serve -slow-ms` flag). Zero disables
	// slow classification.
	SlowThreshold time.Duration
	// Recorder receives every completed query. Nil uses the process-wide
	// obs.DefaultRecorder.
	Recorder *obs.Recorder
}

// Server answers analysis queries over one warm Framework.
type Server struct {
	f     *mpa.Framework
	cfg   Config
	sem   chan struct{}
	start time.Time
	mux   *http.ServeMux
	ln    net.Listener

	// closing is closed when graceful shutdown begins, so long-lived
	// stream handlers return and their connections can drain — an SSE
	// connection never goes idle on its own, and Shutdown waits for
	// active connections.
	closing   chan struct{}
	closeOnce sync.Once

	rec *obs.Recorder

	requests *obs.Counter
	errors   *obs.Counter
	panics   *obs.Counter
	inflight *obs.Gauge
	latency  *obs.Histogram

	// ep holds the per-endpoint latency-SLO instrumentation (log-spaced
	// latency histograms + status-class counters; see slo.go) keyed by
	// endpoint name; streamsOpen counts live SSE subscribers, which are
	// deliberately excluded from every latency series.
	ep          map[string]*endpointMetrics
	streamsOpen *obs.Gauge
}

// New builds a server over an already-constructed (and therefore
// already-inferred) framework.
func New(f *mpa.Framework, cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.Recorder == nil {
		cfg.Recorder = obs.DefaultRecorder()
	}
	s := &Server{
		f:        f,
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		start:    time.Now(),
		mux:      http.NewServeMux(),
		closing:  make(chan struct{}),
		rec:      cfg.Recorder,
		requests: obs.GetCounter("serve.requests"),
		errors:   obs.GetCounter("serve.errors"),
		panics:   obs.GetCounter("serve.panics"),
		inflight: obs.GetGauge("serve.inflight"),
		latency: obs.GetHistogram("serve.latency_ms",
			0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000, 5000),
		ep:          map[string]*endpointMetrics{},
		streamsOpen: obs.GetGauge("serve.streams_open"),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /v1/rank", s.query("rank", s.handleRank))
	s.mux.Handle("GET /v1/causal", s.query("causal", s.handleCausal))
	s.mux.Handle("GET /v1/predict", s.query("predict", s.handlePredict))
	s.mux.Handle("GET /v1/network", s.query("network", s.handleNetwork))
	s.mux.Handle("GET /v1/report/{name}", s.query("report", s.handleReport))
	s.mux.Handle("GET /v1/manifest", s.query("manifest", s.handleManifest))
	s.mux.Handle("POST /v1/ingest", s.query("ingest", s.handleIngest))
	// The stream endpoint is mounted outside the query wrapper: SSE
	// connections are long-lived by design and must not occupy slots in
	// the bounded query semaphore (a handful of subscribers would starve
	// every analysis query).
	s.mux.HandleFunc("GET /v1/stream", s.handleStream)
	s.mux.HandleFunc("GET /debug/slo", s.handleSLO)
	obs.RegisterDebug(s.mux)
	obs.RegisterRecorderDebug(s.mux, s.rec)
	return s
}

// Handler returns the server's full route set, for embedding or tests.
func (s *Server) Handler() http.Handler { return s.mux }

// Listen binds the configured address and returns the bound address
// (resolving port 0). Serve calls it implicitly when needed.
func (s *Server) Listen() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	return ln.Addr(), nil
}

// Serve accepts connections until ctx is canceled, then shuts down
// gracefully: the listener closes, in-flight requests drain (bounded by
// DrainTimeout), and only then does Serve return. A clean drain returns
// nil.
func (s *Server) Serve(ctx context.Context) error {
	if s.ln == nil {
		if _, err := s.Listen(); err != nil {
			return err
		}
	}
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(s.ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	obs.Logger().Info("serve: draining in-flight requests", "timeout", s.cfg.DrainTimeout)
	s.closeOnce.Do(func() { close(s.closing) })
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	<-errc // hs.Serve has returned http.ErrServerClosed
	return nil
}

// Run is Listen + Serve.
func (s *Server) Run(ctx context.Context) error {
	if s.ln == nil {
		if _, err := s.Listen(); err != nil {
			return err
		}
	}
	return s.Serve(ctx)
}

// statusWriter captures the response status for the error counter and
// whether anything was written, so the panic path knows if a 500 body
// can still be sent.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// query wraps a /v1 handler with the shared request plumbing: the
// concurrency limit, total/per-endpoint/error/panic counters, the
// in-flight gauge, the latency histogram, a request-scoped span (passed
// down via the request context for handlers to hang stage spans on),
// the request ID (honoring X-Request-ID / traceparent, echoed back as
// X-Request-ID), and the flight-recorder entry. A handler panic is
// recovered into a 500 JSON error — latency, counters, and the recorder
// entry are still recorded. Request spans are deliberately roots, not
// children of the framework's pipeline span: attaching them to a
// long-lived parent would grow its child list without bound under
// sustained traffic.
func (s *Server) query(name string, h http.HandlerFunc) http.Handler {
	perEndpoint := obs.GetCounter("serve.requests." + name)
	em := newEndpointMetrics(name)
	s.ep[name] = em
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.sem <- struct{}{}
		s.inflight.Set(float64(len(s.sem)))
		defer func() {
			<-s.sem
			s.inflight.Set(float64(len(s.sem)))
		}()
		id := obs.RequestIDFrom(r.Header.Get("traceparent"), r.Header.Get("X-Request-ID"))
		w.Header().Set("X-Request-ID", id)
		sp := obs.NewRoot("serve:" + name)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			panicked := recover()
			if panicked != nil {
				s.panics.Add(1)
				obs.Logger().Error("serve: panic in handler",
					"endpoint", name, "request_id", id, "panic", panicked)
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError,
						"internal error (request %s)", id)
				} else {
					// Headers are gone; the client sees a broken body. Record
					// the failure honestly anyway.
					sw.status = http.StatusInternalServerError
				}
			}
			sp.End()
			dur := sp.Duration()
			slow := s.cfg.SlowThreshold > 0 && dur >= s.cfg.SlowThreshold
			s.requests.Add(1)
			perEndpoint.Add(1)
			if sw.status >= 400 {
				s.errors.Add(1)
			}
			s.latency.Observe(float64(dur.Nanoseconds()) / 1e6)
			em.observe(dur, sw.status)
			sum := s.rec.Record(sp, obs.RequestMeta{
				ID:     id,
				Status: sw.status,
				Err:    panicked != nil || sw.status >= 400,
				Slow:   slow,
			})
			if slow {
				obs.Logger().Warn("serve: slow request",
					"endpoint", name, "request_id", id, "status", sw.status,
					"elapsed", dur, "stages", stageString(sum.Stages))
			} else {
				obs.Logger().Debug("serve: request",
					"endpoint", name, "request_id", id, "status", sw.status, "elapsed", dur)
			}
		}()
		h(sw, r.WithContext(obs.ContextWithSpan(r.Context(), sp)))
	})
}

// stageString renders a recorder stage breakdown for the slow-request
// log line, e.g. "causal_analysis=41ms encode=210µs".
func stageString(stages []obs.StageBreakdown) string {
	if len(stages) == 0 {
		return "-"
	}
	parts := make([]string, len(stages))
	for i, st := range stages {
		parts[i] = fmt.Sprintf("%s=%s", st.Name, time.Duration(st.DurationNS))
	}
	return strings.Join(parts, " ")
}

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// healthzResponse summarizes the loaded state.
type healthzResponse struct {
	Status        string  `json:"status"`
	Networks      int     `json:"networks"`
	WindowStart   string  `json:"window_start"`
	WindowEnd     string  `json:"window_end"`
	Months        int     `json:"months"`
	Cases         int     `json:"cases"`
	Experiments   int     `json:"experiments"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	window := s.f.Window()
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:        "ok",
		Networks:      len(s.f.Dataset().Networks()),
		WindowStart:   window[0].String(),
		WindowEnd:     window[len(window)-1].String(),
		Months:        len(window),
		Cases:         s.f.Dataset().Len(),
		Experiments:   len(mpa.ExperimentIDs()),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// rankEntry is one row of the /v1/rank response.
type rankEntry struct {
	Rank        int     `json:"rank"`
	Metric      string  `json:"metric"`
	DisplayName string  `json:"display_name"`
	Category    string  `json:"category"`
	MI          float64 `json:"mi_bits"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("rank_practices")
	ranked := s.f.RankPracticesCached()
	c.End()
	out := make([]rankEntry, len(ranked))
	for i, e := range ranked {
		out[i] = rankEntry{
			Rank:        i + 1,
			Metric:      e.Metric,
			DisplayName: mpa.DisplayName(e.Metric),
			Category:    mpa.MetricCategory(e.Metric),
			MI:          e.MI,
		}
	}
	enc := sp.Start("encode")
	writeJSON(w, http.StatusOK, out)
	enc.End()
}

// causalPoint is one comparison point of the /v1/causal response.
type causalPoint struct {
	Comparison       string  `json:"comparison"`
	Pairs            int     `json:"pairs"`
	FewerTickets     int     `json:"fewer_tickets"`
	NoEffect         int     `json:"no_effect"`
	MoreTickets      int     `json:"more_tickets"`
	PValue           float64 `json:"p_value"`
	Causal           bool    `json:"causal"`
	Balanced         bool    `json:"balanced"`
	Skipped          bool    `json:"skipped"`
	SensitivityGamma float64 `json:"sensitivity_gamma"`
}

type causalResponse struct {
	Treatment   string        `json:"treatment"`
	DisplayName string        `json:"display_name"`
	Points      []causalPoint `json:"points"`
}

func (s *Server) handleCausal(w http.ResponseWriter, r *http.Request) {
	metric := r.URL.Query().Get("practice")
	if metric == "" {
		writeError(w, http.StatusBadRequest, "missing required query parameter 'practice'")
		return
	}
	if !mpa.KnownMetric(metric) {
		writeError(w, http.StatusNotFound, "unknown practice metric %q", metric)
		return
	}
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("causal_analysis")
	res, err := s.f.AnalyzeCausalCached(metric)
	c.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "causal analysis failed: %v", err)
		return
	}
	out := causalResponse{
		Treatment:   res.Treatment,
		DisplayName: mpa.DisplayName(res.Treatment),
		Points:      make([]causalPoint, len(res.Points)),
	}
	for i, p := range res.Points {
		out.Points[i] = causalPoint{
			Comparison:       p.Comparison,
			Pairs:            p.Pairs,
			FewerTickets:     p.FewerTickets,
			NoEffect:         p.NoEffect,
			MoreTickets:      p.MoreTickets,
			PValue:           p.PValue,
			Causal:           p.Causal,
			Balanced:         p.Balanced,
			Skipped:          p.Skipped,
			SensitivityGamma: p.SensitivityGamma,
		}
	}
	enc := sp.Start("encode")
	writeJSON(w, http.StatusOK, out)
	enc.End()
}

// predictResponse is the /v1/predict body.
type predictResponse struct {
	Network        string  `json:"network"`
	Month          string  `json:"month"`
	Tickets        int     `json:"tickets"`
	Predicted2     int     `json:"predicted_class2"`
	Predicted2Name string  `json:"predicted_class2_name"`
	Predicted5     int     `json:"predicted_class5"`
	Predicted5Name string  `json:"predicted_class5_name"`
	Actual2        int     `json:"actual_class2"`
	Actual5        int     `json:"actual_class5"`
	Accuracy2      float64 `json:"model2_cv_accuracy"`
	Accuracy5      float64 `json:"model5_cv_accuracy"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	network := r.URL.Query().Get("network")
	if network == "" {
		writeError(w, http.StatusBadRequest, "missing required query parameter 'network'")
		return
	}
	window := s.f.Window()
	month := window[len(window)-1]
	if ms := r.URL.Query().Get("month"); ms != "" {
		t, err := time.Parse("2006-01", ms)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad month %q, want YYYY-MM", ms)
			return
		}
		month = mpa.MonthOf(t)
	}
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("predict")
	pred, err := s.f.PredictNetworkMonth(network, month)
	if err != nil {
		c.End()
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	m2, err := s.f.HealthModelCached(mpa.TwoClass)
	if err != nil {
		c.End()
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	m5, err := s.f.HealthModelCached(mpa.FiveClass)
	c.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	enc := sp.Start("encode")
	defer enc.End()
	writeJSON(w, http.StatusOK, predictResponse{
		Network:        pred.Network,
		Month:          pred.Month.String(),
		Tickets:        pred.Tickets,
		Predicted2:     pred.Predicted2,
		Predicted2Name: pred.Predicted2Name,
		Predicted5:     pred.Predicted5,
		Predicted5Name: pred.Predicted5Name,
		Actual2:        pred.Actual2,
		Actual5:        pred.Actual5,
		Accuracy2:      m2.Quality().Accuracy,
		Accuracy5:      m5.Quality().Accuracy,
	})
}

// reportResponse is the /v1/report/{name} body, digest-stamped so two
// deployments can verify they serve identical results.
type reportResponse struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Text    string             `json:"text"`
	Numbers map[string]float64 `json:"numbers"`
	Digest  string             `json:"digest"`
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("experiment")
	rep, ok := s.f.ExperimentCached(name)
	c.End()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q (GET /v1/manifest lists the known ids after they run; see mpa.ExperimentIDs)", name)
		return
	}
	enc := sp.Start("encode")
	defer enc.End()
	writeJSON(w, http.StatusOK, reportResponse{
		ID:      rep.ID,
		Title:   rep.Title,
		Text:    rep.Text,
		Numbers: rep.Numbers,
		Digest:  rep.Digest(),
	})
}

// handleNetwork serves the per-network-month health summary, memoized
// under the network's own cache generation (see mpa.NetworkHealthCached):
// the heavy-traffic per-network dashboard path that stays warm across
// ingests touching other networks.
func (s *Server) handleNetwork(w http.ResponseWriter, r *http.Request) {
	network := r.URL.Query().Get("network")
	if network == "" {
		writeError(w, http.StatusBadRequest, "missing required query parameter 'network'")
		return
	}
	window := s.f.Window()
	month := window[len(window)-1]
	if ms := r.URL.Query().Get("month"); ms != "" {
		t, err := time.Parse("2006-01", ms)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad month %q, want YYYY-MM", ms)
			return
		}
		month = mpa.MonthOf(t)
	}
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("network_health")
	nh, err := s.f.NetworkHealthCached(network, month)
	c.End()
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	enc := sp.Start("encode")
	defer enc.End()
	writeJSON(w, http.StatusOK, nh)
}

// maxIngestBytes bounds an update body: a month of snapshots for a large
// organization is tens of megabytes; anything past this is a client bug.
const maxIngestBytes = 256 << 20

// handleIngest applies one month of new data to the warm framework (see
// mpa.Framework.Ingest). Malformed or non-appendable updates are 400s
// and change nothing; a 200 response means the update is fully applied
// and visible to every subsequent query.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("decode")
	u, err := ingest.Decode(http.MaxBytesReader(w, r.Body, maxIngestBytes))
	c.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c = sp.Start("ingest")
	res, err := s.f.Ingest(u)
	c.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	enc := sp.Start("encode")
	defer enc.End()
	writeJSON(w, http.StatusOK, res)
}

// handleStream is the SSE feed: after every applied ingest, subscribers
// receive one "delta" event per touched network (sorted) and one "rank"
// event with the refreshed practice ranking. Events are pre-encoded
// JSON; a subscriber too slow to drain its buffer loses events rather
// than stalling ingestion (ingest.stream_dropped counts them).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	obs.GetCounter("serve.requests.stream").Add(1)
	// Streams are connections, not requests: a subscriber that stays
	// attached for an hour must not register as an hour-long "request"
	// in any latency histogram (one would bury every real p99). The
	// serve.streams_open gauge carries the live population instead.
	s.streamsOpen.Add(1)
	defer s.streamsOpen.Add(-1)
	ch, cancel := s.f.Subscribe()
	defer cancel()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// An immediate comment line flushes the response headers so clients
	// (and the smoke test's curl) see the stream is live before the
	// first event.
	fmt.Fprint(w, ": mpa ingest stream\n\n")
	fl.Flush()
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.closing:
			// Graceful shutdown: end the stream so the connection can
			// drain instead of pinning Shutdown to its timeout.
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev, open := <-ch:
			if !open {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("manifest")
	m := s.f.Manifest()
	c.End()
	enc := sp.Start("encode")
	defer enc.End()
	writeJSON(w, http.StatusOK, m)
}
