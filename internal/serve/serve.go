// Package serve implements the long-lived `mpa serve` daemon: the
// paper's monthly monitoring loop turned into a resident process. The
// organization's data is loaded and inferred exactly once; the warm
// Framework — its analysis, dataset, and the content-addressed caches —
// stays in memory, and analysis queries are answered over HTTP. Repeated
// queries never re-run inference or any other pipeline stage: results
// are served from the framework's query cache ("cache.query.*" in
// /metrics), which is the daemon's heavy-traffic path.
//
// The daemon runs one warm Framework per organization. A single-tenant
// server (New) has exactly one; a sharded server (NewSharded) fronts an
// org registry (internal/tenant) and routes every /v1 query to the
// tenant's shard, resolved from the /v1/orgs/{org}/... path segment or
// the X-MPA-Org header. Shards share no mutable state — each org owns
// its engines, caches, and query generations — so cross-tenant
// isolation is structural, not locked. Fleet-wide aggregates
// (/v1/fleet/*) fan per-shard partial results out over internal/par and
// merge them map-reduce style (tenant.MergeRank / tenant.MergeHealth);
// merging the per-org responses offline reproduces the fleet response
// byte-for-byte.
//
// Endpoints (each /v1 query also mounts at /v1/orgs/{org}/...):
//
//	GET /healthz                       liveness + loaded-state summary (fleet summary when sharded)
//	GET /v1/rank                       practice↔health MI ranking
//	GET /v1/causal?practice=NAME       matched-design causal analysis
//	GET /v1/predict?network=N&month=M  health prediction for one network-month
//	GET /v1/network?network=N&month=M  per-network-month health summary (warm per-network memo)
//	GET /v1/report/{name}              one of the 24 experiment reports, digest-stamped
//	GET /v1/manifest                   run manifest for the loaded state
//	POST /v1/ingest                    apply one month of new snapshots/tickets in place
//	GET /v1/stream                     SSE feed of per-network deltas + refreshed rankings
//	GET /v1/fleet/rank                 cross-org merged practice ranking (sharded only)
//	GET /v1/fleet/health               cross-org loaded-state rollup (sharded only)
//	GET /debug/slo                     per-endpoint latency percentiles + error rates (slo.go)
//	GET /metrics, /debug/pprof, /debug/vars  (the shared obs debug set)
//	GET /debug/requests[/{id}[/trace]], /debug/logs  (the flight recorder)
//
// Every /v1 query runs under a concurrency limit and a request-scoped
// obs span; totals, per-endpoint counts, errors, panics, in-flight
// depth, and latency histograms are registered under "serve.*" — the
// legacy coarse serve.latency_ms series plus one log-spaced
// serve.latency_ns.<endpoint> histogram (p50…p99.9 at ~5% relative
// error) and serve.status.<endpoint>.<class> counters per endpoint,
// summarized at /debug/slo and gated in CI by cmd/mpa-slogate. Sharded
// servers additionally record each request under its tenant's own
// serve.tenant.<org>.latency_ns.<endpoint> / status series — the global
// series stay fleet-wide aggregates, so the single-tenant SLO baseline
// remains comparable. Each request gets an ID — honoring an incoming
// X-Request-ID or W3C traceparent, echoed back as X-Request-ID — and is
// recorded in the flight recorder (obs.Recorder) on completion with its
// tenant column: the recent ring is served at /debug/requests, and full
// span trees of the slowest and errored requests can be fetched as
// per-request Chrome traces. Requests slower than Config.SlowThreshold
// are logged at Warn with a per-stage breakdown. Shutdown is graceful:
// canceling the Serve context stops accepting connections and drains
// in-flight requests before returning.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"mpa"
	"mpa/internal/ingest"
	"mpa/internal/obs"
	"mpa/internal/par"
	"mpa/internal/tenant"
)

// OrgHeader is the request header naming the tenant when the path does
// not (/v1/rank with X-MPA-Org: acme ≡ /v1/orgs/acme/rank).
const OrgHeader = "X-MPA-Org"

// Config parameterizes the server.
type Config struct {
	// Addr is the listen address, e.g. "localhost:8080"; port 0 picks a
	// free port (see Server.Listen).
	Addr string
	// MaxInFlight bounds concurrently executing /v1 queries; excess
	// requests queue. Zero means 2×GOMAXPROCS.
	MaxInFlight int
	// DrainTimeout bounds graceful shutdown: how long Serve waits for
	// in-flight requests after its context is canceled. Zero means 30s.
	DrainTimeout time.Duration
	// SlowThreshold classifies queries at least this slow as slow: they
	// are logged at Warn with a per-stage breakdown and pinned in the
	// flight recorder (the `mpa serve -slow-ms` flag). Zero disables
	// slow classification.
	SlowThreshold time.Duration
	// MaxIngestBytes bounds a POST /v1/ingest body; an oversized body is
	// a 413. Zero means 256 MiB.
	MaxIngestBytes int64
	// Tenant optionally names the organization of a single-tenant server
	// (New); it labels the flight recorder and adds the per-tenant
	// metric series. Empty leaves the server anonymous, as before
	// multi-tenancy existed. NewSharded ignores it.
	Tenant string
	// Recorder receives every completed query. Nil uses the process-wide
	// obs.DefaultRecorder.
	Recorder *obs.Recorder
}

// shard is one organization's slice of the server: its warm framework
// plus the tenant-scoped SLO instrumentation. The shared request
// plumbing (semaphore, global counters, recorder) lives on the Server;
// everything query-answering is per-shard.
type shard struct {
	name string
	f    *mpa.Framework
	// ep holds the per-tenant endpoint metrics
	// (serve.tenant.<org>.latency_ns.<endpoint> and status counters),
	// nil for an anonymous single-tenant server.
	ep map[string]*endpointMetrics
}

// queryEndpoints are the query-wrapped endpoint names, fixed at build
// time so every shard registers the same per-tenant series.
var queryEndpoints = []string{
	"rank", "causal", "predict", "network", "report", "manifest", "ingest",
}

func newShard(name string, f *mpa.Framework) *shard {
	sh := &shard{name: name, f: f}
	if name != "" {
		sh.ep = make(map[string]*endpointMetrics, len(queryEndpoints))
		for _, ep := range queryEndpoints {
			sh.ep[ep] = newEndpointMetrics("serve.tenant."+name+".", ep)
		}
	}
	return sh
}

// Server answers analysis queries over one or more warm Frameworks.
type Server struct {
	cfg   Config
	sem   chan struct{}
	start time.Time
	mux   *http.ServeMux
	ln    net.Listener

	// def is the shard a request with no org resolves to: the only
	// shard of a single-tenant (or single-org sharded) server, nil when
	// several orgs are registered and the request must name one.
	def    *shard
	shards map[string]*shard
	names  []string         // registered org names, sorted
	reg    *tenant.Registry // nil for single-tenant servers

	// closing is closed when graceful shutdown begins, so long-lived
	// stream handlers return and their connections can drain — an SSE
	// connection never goes idle on its own, and Shutdown waits for
	// active connections.
	closing   chan struct{}
	closeOnce sync.Once

	rec *obs.Recorder

	requests *obs.Counter
	errors   *obs.Counter
	panics   *obs.Counter
	inflight *obs.Gauge
	latency  *obs.Histogram

	// ep holds the global per-endpoint latency-SLO instrumentation
	// (log-spaced latency histograms + status-class counters; see
	// slo.go) keyed by endpoint name — fleet-wide aggregates when
	// sharded; streamsOpen counts live SSE subscribers, which are
	// deliberately excluded from every latency series.
	ep          map[string]*endpointMetrics
	streamsOpen *obs.Gauge
}

func newServer(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.MaxIngestBytes <= 0 {
		cfg.MaxIngestBytes = maxIngestBytes
	}
	if cfg.Recorder == nil {
		cfg.Recorder = obs.DefaultRecorder()
	}
	return &Server{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		start:    time.Now(),
		mux:      http.NewServeMux(),
		shards:   map[string]*shard{},
		closing:  make(chan struct{}),
		rec:      cfg.Recorder,
		requests: obs.GetCounter("serve.requests"),
		errors:   obs.GetCounter("serve.errors"),
		panics:   obs.GetCounter("serve.panics"),
		inflight: obs.GetGauge("serve.inflight"),
		latency: obs.GetHistogram("serve.latency_ms",
			0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000, 5000),
		ep:          map[string]*endpointMetrics{},
		streamsOpen: obs.GetGauge("serve.streams_open"),
	}
}

// New builds a single-tenant server over an already-constructed (and
// therefore already-inferred) framework. Config.Tenant optionally names
// the organization.
func New(f *mpa.Framework, cfg Config) *Server {
	s := newServer(cfg)
	sh := newShard(cfg.Tenant, f)
	s.def = sh
	if sh.name != "" {
		s.shards[sh.name] = sh
		s.names = []string{sh.name}
	}
	s.routes()
	return s
}

// NewSharded builds a multi-tenant server over an org registry: one
// shard per org, the /v1/orgs/{org} router in front, and the
// /v1/fleet/* aggregate endpoints. With exactly one org registered,
// requests that name no org resolve to it; with several, they must pick
// one (path segment or X-MPA-Org header).
func NewSharded(reg *tenant.Registry, cfg Config) *Server {
	s := newServer(cfg)
	s.reg = reg
	s.names = reg.Names()
	for _, o := range reg.Orgs() {
		s.shards[o.Name] = newShard(o.Name, o.F)
	}
	if len(s.names) == 1 {
		s.def = s.shards[s.names[0]]
	}
	s.routes()
	return s
}

// routes mounts the full route set. Every query endpoint is reachable
// both bare (tenant from header or default) and under /v1/orgs/{org};
// the fleet aggregates exist only on sharded servers.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/orgs/{org}/healthz", s.handleHealthz)
	s.route("GET", "rank", "rank", s.handleRank)
	s.route("GET", "causal", "causal", s.handleCausal)
	s.route("GET", "predict", "predict", s.handlePredict)
	s.route("GET", "network", "network", s.handleNetwork)
	s.route("GET", "report/{name}", "report", s.handleReport)
	s.route("GET", "manifest", "manifest", s.handleManifest)
	s.route("POST", "ingest", "ingest", s.handleIngest)
	// The stream endpoint is mounted outside the query wrapper: SSE
	// connections are long-lived by design and must not occupy slots in
	// the bounded query semaphore (a handful of subscribers would starve
	// every analysis query).
	s.mux.HandleFunc("GET /v1/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/orgs/{org}/stream", s.handleStream)
	if s.reg != nil {
		s.mux.Handle("GET /v1/fleet/rank", s.fleet("fleet_rank", s.handleFleetRank))
		s.mux.Handle("GET /v1/fleet/health", s.fleet("fleet_health", s.handleFleetHealth))
	}
	s.mux.HandleFunc("GET /debug/slo", s.handleSLO)
	obs.RegisterDebug(s.mux)
	obs.RegisterRecorderDebug(s.mux, s.rec)
}

// route mounts one query endpoint under both its bare and org-scoped
// paths — the same wrapped handler, so the two forms share counters.
func (s *Server) route(method, path, name string, h func(*shard, http.ResponseWriter, *http.Request)) {
	qh := s.query(name, h)
	s.mux.Handle(method+" /v1/"+path, qh)
	s.mux.Handle(method+" /v1/orgs/{org}/"+path, qh)
}

// Handler returns the server's full route set, for embedding or tests.
func (s *Server) Handler() http.Handler { return s.mux }

// Listen binds the configured address and returns the bound address
// (resolving port 0). Serve calls it implicitly when needed.
func (s *Server) Listen() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	return ln.Addr(), nil
}

// Serve accepts connections until ctx is canceled, then shuts down
// gracefully: the listener closes, in-flight requests drain (bounded by
// DrainTimeout), and only then does Serve return. A clean drain returns
// nil. Every exit path closes the server's closing channel, so attached
// SSE streams learn the server is gone even when hs.Serve fails before
// the context is canceled (e.g. the listener is yanked).
func (s *Server) Serve(ctx context.Context) error {
	if s.ln == nil {
		if _, err := s.Listen(); err != nil {
			return err
		}
	}
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(s.ln) }()
	select {
	case err := <-errc:
		s.closeOnce.Do(func() { close(s.closing) })
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	obs.Logger().Info("serve: draining in-flight requests", "timeout", s.cfg.DrainTimeout)
	s.closeOnce.Do(func() { close(s.closing) })
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	<-errc // hs.Serve has returned http.ErrServerClosed
	return nil
}

// Run is Listen + Serve.
func (s *Server) Run(ctx context.Context) error {
	if s.ln == nil {
		if _, err := s.Listen(); err != nil {
			return err
		}
	}
	return s.Serve(ctx)
}

// statusWriter captures the response status for the error counter and
// whether anything was written, so the panic path knows if a 500 body
// can still be sent.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// resolveShard picks the request's tenant: the {org} path segment, then
// the X-MPA-Org header, then the default shard. An unknown org is a
// 404; naming no org on a multi-org server is a 400 listing the
// registered names. On failure the error response is already written.
func (s *Server) resolveShard(w http.ResponseWriter, r *http.Request) (*shard, bool) {
	name := r.PathValue("org")
	if name == "" {
		name = r.Header.Get(OrgHeader)
	}
	if name == "" {
		if s.def != nil {
			return s.def, true
		}
		writeError(w, http.StatusBadRequest,
			"multi-tenant server: name an org via /v1/orgs/{org}/... or the %s header (orgs: %s)",
			OrgHeader, strings.Join(s.names, ", "))
		return nil, false
	}
	sh, ok := s.shards[name]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown org %q", name)
		return nil, false
	}
	return sh, true
}

// instrumented is the inner handler shape under instrument: it runs the
// request and reports which tenant it resolved to ("" for none) plus
// that tenant's per-endpoint metrics row (nil for none), both observed
// by the deferred accounting.
type instrumented func(w http.ResponseWriter, r *http.Request) (tenantName string, tem *endpointMetrics)

// instrument wraps a handler with the shared request plumbing: the
// concurrency limit, total/per-endpoint/error/panic counters, the
// in-flight gauge, the latency histograms (global and, when the request
// resolved to a named tenant, that tenant's), a request-scoped span
// (passed down via the request context for handlers to hang stage spans
// on), the request ID (honoring X-Request-ID / traceparent, echoed back
// as X-Request-ID), and the tenant-labeled flight-recorder entry. A
// handler panic is recovered into a 500 JSON error — latency, counters,
// and the recorder entry are still recorded. Request spans are
// deliberately roots, not children of the framework's pipeline span:
// attaching them to a long-lived parent would grow its child list
// without bound under sustained traffic.
func (s *Server) instrument(name string, h instrumented) http.Handler {
	perEndpoint := obs.GetCounter("serve.requests." + name)
	em := newEndpointMetrics("serve.", name)
	s.ep[name] = em
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.sem <- struct{}{}
		s.inflight.Add(1)
		defer func() {
			<-s.sem
			s.inflight.Add(-1)
		}()
		id := obs.RequestIDFrom(r.Header.Get("traceparent"), r.Header.Get("X-Request-ID"))
		w.Header().Set("X-Request-ID", id)
		sp := obs.NewRoot("serve:" + name)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		var tenantName string
		var tem *endpointMetrics
		defer func() {
			panicked := recover()
			if panicked != nil {
				s.panics.Add(1)
				obs.Logger().Error("serve: panic in handler",
					"endpoint", name, "request_id", id, "panic", panicked)
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError,
						"internal error (request %s)", id)
				} else {
					// Headers are gone; the client sees a broken body. Record
					// the failure honestly anyway.
					sw.status = http.StatusInternalServerError
				}
			}
			sp.End()
			dur := sp.Duration()
			slow := s.cfg.SlowThreshold > 0 && dur >= s.cfg.SlowThreshold
			s.requests.Add(1)
			perEndpoint.Add(1)
			if sw.status >= 400 {
				s.errors.Add(1)
			}
			s.latency.Observe(float64(dur.Nanoseconds()) / 1e6)
			em.observe(dur, sw.status)
			if tem != nil {
				tem.observe(dur, sw.status)
			}
			sum := s.rec.Record(sp, obs.RequestMeta{
				ID:     id,
				Status: sw.status,
				Err:    panicked != nil || sw.status >= 400,
				Slow:   slow,
				Tenant: tenantName,
			})
			if slow {
				obs.Logger().Warn("serve: slow request",
					"endpoint", name, "request_id", id, "tenant", tenantName,
					"status", sw.status, "elapsed", dur, "stages", stageString(sum.Stages))
			} else {
				obs.Logger().Debug("serve: request",
					"endpoint", name, "request_id", id, "tenant", tenantName,
					"status", sw.status, "elapsed", dur)
			}
		}()
		tenantName, tem = h(sw, r.WithContext(obs.ContextWithSpan(r.Context(), sp)))
	})
}

// query wraps a tenant-scoped /v1 handler: shard resolution first (a
// failed resolution is still a fully accounted request), then the
// handler against the resolved shard's framework.
func (s *Server) query(name string, h func(*shard, http.ResponseWriter, *http.Request)) http.Handler {
	return s.instrument(name, func(w http.ResponseWriter, r *http.Request) (string, *endpointMetrics) {
		sh, ok := s.resolveShard(w, r)
		if !ok {
			return "", nil
		}
		h(sh, w, r)
		return sh.name, sh.ep[name]
	})
}

// fleet wraps a cross-org aggregate handler: same plumbing, no shard
// resolution; entries are recorded under the reserved "fleet" tenant.
func (s *Server) fleet(name string, h http.HandlerFunc) http.Handler {
	return s.instrument(name, func(w http.ResponseWriter, r *http.Request) (string, *endpointMetrics) {
		h(w, r)
		return "fleet", nil
	})
}

// stageString renders a recorder stage breakdown for the slow-request
// log line, e.g. "causal_analysis=41ms encode=210µs".
func stageString(stages []obs.StageBreakdown) string {
	if len(stages) == 0 {
		return "-"
	}
	parts := make([]string, len(stages))
	for i, st := range stages {
		parts[i] = fmt.Sprintf("%s=%s", st.Name, time.Duration(st.DurationNS))
	}
	return strings.Join(parts, " ")
}

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// healthzResponse summarizes one org's loaded state.
type healthzResponse struct {
	Status        string  `json:"status"`
	Org           string  `json:"org,omitempty"`
	Networks      int     `json:"networks"`
	WindowStart   string  `json:"window_start"`
	WindowEnd     string  `json:"window_end"`
	Months        int     `json:"months"`
	Cases         int     `json:"cases"`
	Experiments   int     `json:"experiments"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// fleetHealthzResponse is the bare /healthz body of a multi-org server:
// liveness plus the fleet rollup, so probes need no org.
type fleetHealthzResponse struct {
	Status        string             `json:"status"`
	Orgs          []string           `json:"orgs"`
	Totals        tenant.FleetTotals `json:"totals"`
	UptimeSeconds float64            `json:"uptime_seconds"`
}

// handleHealthz resolves like a query endpoint but degrades instead of
// erroring: a multi-org server probed with no org answers for the whole
// fleet.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("org")
	if name == "" {
		name = r.Header.Get(OrgHeader)
	}
	if name == "" && s.def == nil {
		parts := make([]tenant.HealthPartial, 0, s.reg.Len())
		for _, o := range s.reg.Orgs() {
			parts = append(parts, tenant.HealthPartialOf(o))
		}
		merged, err := tenant.MergeHealth(parts)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, fleetHealthzResponse{
			Status:        merged.Status,
			Orgs:          s.names,
			Totals:        merged.Totals,
			UptimeSeconds: time.Since(s.start).Seconds(),
		})
		return
	}
	sh, ok := s.resolveShard(w, r)
	if !ok {
		return
	}
	window := sh.f.Window()
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:        "ok",
		Org:           sh.name,
		Networks:      len(sh.f.Dataset().Networks()),
		WindowStart:   window[0].String(),
		WindowEnd:     window[len(window)-1].String(),
		Months:        len(window),
		Cases:         sh.f.Dataset().Len(),
		Experiments:   len(mpa.ExperimentIDs()),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// rankEntry is one row of the /v1/rank response.
type rankEntry struct {
	Rank        int     `json:"rank"`
	Metric      string  `json:"metric"`
	DisplayName string  `json:"display_name"`
	Category    string  `json:"category"`
	MI          float64 `json:"mi_bits"`
}

func (s *Server) handleRank(sh *shard, w http.ResponseWriter, r *http.Request) {
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("rank_practices")
	ranked := sh.f.RankPracticesCached()
	c.End()
	out := make([]rankEntry, len(ranked))
	for i, e := range ranked {
		out[i] = rankEntry{
			Rank:        i + 1,
			Metric:      e.Metric,
			DisplayName: mpa.DisplayName(e.Metric),
			Category:    mpa.MetricCategory(e.Metric),
			MI:          e.MI,
		}
	}
	enc := sp.Start("encode")
	writeJSON(w, http.StatusOK, out)
	enc.End()
}

// causalPoint is one comparison point of the /v1/causal response.
type causalPoint struct {
	Comparison       string  `json:"comparison"`
	Pairs            int     `json:"pairs"`
	FewerTickets     int     `json:"fewer_tickets"`
	NoEffect         int     `json:"no_effect"`
	MoreTickets      int     `json:"more_tickets"`
	PValue           float64 `json:"p_value"`
	Causal           bool    `json:"causal"`
	Balanced         bool    `json:"balanced"`
	Skipped          bool    `json:"skipped"`
	SensitivityGamma float64 `json:"sensitivity_gamma"`
}

type causalResponse struct {
	Treatment   string        `json:"treatment"`
	DisplayName string        `json:"display_name"`
	Points      []causalPoint `json:"points"`
}

func (s *Server) handleCausal(sh *shard, w http.ResponseWriter, r *http.Request) {
	metric := r.URL.Query().Get("practice")
	if metric == "" {
		writeError(w, http.StatusBadRequest, "missing required query parameter 'practice'")
		return
	}
	if !mpa.KnownMetric(metric) {
		writeError(w, http.StatusNotFound, "unknown practice metric %q", metric)
		return
	}
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("causal_analysis")
	res, err := sh.f.AnalyzeCausalCached(metric)
	c.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "causal analysis failed: %v", err)
		return
	}
	out := causalResponse{
		Treatment:   res.Treatment,
		DisplayName: mpa.DisplayName(res.Treatment),
		Points:      make([]causalPoint, len(res.Points)),
	}
	for i, p := range res.Points {
		out.Points[i] = causalPoint{
			Comparison:       p.Comparison,
			Pairs:            p.Pairs,
			FewerTickets:     p.FewerTickets,
			NoEffect:         p.NoEffect,
			MoreTickets:      p.MoreTickets,
			PValue:           p.PValue,
			Causal:           p.Causal,
			Balanced:         p.Balanced,
			Skipped:          p.Skipped,
			SensitivityGamma: p.SensitivityGamma,
		}
	}
	enc := sp.Start("encode")
	writeJSON(w, http.StatusOK, out)
	enc.End()
}

// predictResponse is the /v1/predict body.
type predictResponse struct {
	Network        string  `json:"network"`
	Month          string  `json:"month"`
	Tickets        int     `json:"tickets"`
	Predicted2     int     `json:"predicted_class2"`
	Predicted2Name string  `json:"predicted_class2_name"`
	Predicted5     int     `json:"predicted_class5"`
	Predicted5Name string  `json:"predicted_class5_name"`
	Actual2        int     `json:"actual_class2"`
	Actual5        int     `json:"actual_class5"`
	Accuracy2      float64 `json:"model2_cv_accuracy"`
	Accuracy5      float64 `json:"model5_cv_accuracy"`
}

func (s *Server) handlePredict(sh *shard, w http.ResponseWriter, r *http.Request) {
	network := r.URL.Query().Get("network")
	if network == "" {
		writeError(w, http.StatusBadRequest, "missing required query parameter 'network'")
		return
	}
	window := sh.f.Window()
	month := window[len(window)-1]
	if ms := r.URL.Query().Get("month"); ms != "" {
		t, err := time.Parse("2006-01", ms)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad month %q, want YYYY-MM", ms)
			return
		}
		month = mpa.MonthOf(t)
	}
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("predict")
	pred, err := sh.f.PredictNetworkMonth(network, month)
	if err != nil {
		c.End()
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	m2, err := sh.f.HealthModelCached(mpa.TwoClass)
	if err != nil {
		c.End()
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	m5, err := sh.f.HealthModelCached(mpa.FiveClass)
	c.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	enc := sp.Start("encode")
	defer enc.End()
	writeJSON(w, http.StatusOK, predictResponse{
		Network:        pred.Network,
		Month:          pred.Month.String(),
		Tickets:        pred.Tickets,
		Predicted2:     pred.Predicted2,
		Predicted2Name: pred.Predicted2Name,
		Predicted5:     pred.Predicted5,
		Predicted5Name: pred.Predicted5Name,
		Actual2:        pred.Actual2,
		Actual5:        pred.Actual5,
		Accuracy2:      m2.Quality().Accuracy,
		Accuracy5:      m5.Quality().Accuracy,
	})
}

// reportResponse is the /v1/report/{name} body, digest-stamped so two
// deployments can verify they serve identical results.
type reportResponse struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Text    string             `json:"text"`
	Numbers map[string]float64 `json:"numbers"`
	Digest  string             `json:"digest"`
}

func (s *Server) handleReport(sh *shard, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("experiment")
	rep, ok := sh.f.ExperimentCached(name)
	c.End()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q (GET /v1/manifest lists the known ids after they run; see mpa.ExperimentIDs)", name)
		return
	}
	enc := sp.Start("encode")
	defer enc.End()
	writeJSON(w, http.StatusOK, reportResponse{
		ID:      rep.ID,
		Title:   rep.Title,
		Text:    rep.Text,
		Numbers: rep.Numbers,
		Digest:  rep.Digest(),
	})
}

// handleNetwork serves the per-network-month health summary, memoized
// under the network's own cache generation (see mpa.NetworkHealthCached):
// the heavy-traffic per-network dashboard path that stays warm across
// ingests touching other networks — or, under sharding, other orgs.
func (s *Server) handleNetwork(sh *shard, w http.ResponseWriter, r *http.Request) {
	network := r.URL.Query().Get("network")
	if network == "" {
		writeError(w, http.StatusBadRequest, "missing required query parameter 'network'")
		return
	}
	window := sh.f.Window()
	month := window[len(window)-1]
	if ms := r.URL.Query().Get("month"); ms != "" {
		t, err := time.Parse("2006-01", ms)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad month %q, want YYYY-MM", ms)
			return
		}
		month = mpa.MonthOf(t)
	}
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("network_health")
	nh, err := sh.f.NetworkHealthCached(network, month)
	c.End()
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	enc := sp.Start("encode")
	defer enc.End()
	writeJSON(w, http.StatusOK, nh)
}

// maxIngestBytes is the default update-body bound: a month of snapshots
// for a large organization is tens of megabytes; anything past this is
// a client bug.
const maxIngestBytes = 256 << 20

// handleIngest applies one month of new data to the resolved shard's
// warm framework (see mpa.Framework.Ingest) — other shards' state and
// warm caches are untouched by construction. Malformed or
// non-appendable updates are 400s and change nothing; an oversized body
// is a 413; a 200 response means the update is fully applied and
// visible to every subsequent query against this org.
func (s *Server) handleIngest(sh *shard, w http.ResponseWriter, r *http.Request) {
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("decode")
	u, err := ingest.Decode(http.MaxBytesReader(w, r.Body, s.cfg.MaxIngestBytes))
	c.End()
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"update body exceeds %d bytes", s.cfg.MaxIngestBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c = sp.Start("ingest")
	res, err := sh.f.Ingest(u)
	c.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	enc := sp.Start("encode")
	defer enc.End()
	writeJSON(w, http.StatusOK, res)
}

// handleStream is the SSE feed: after every applied ingest into the
// resolved org, subscribers receive one "delta" event per touched
// network (sorted) and one "rank" event with the refreshed practice
// ranking. Events are pre-encoded JSON; a subscriber too slow to drain
// its buffer loses events rather than stalling ingestion
// (ingest.stream_dropped counts them).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	sh, ok := s.resolveShard(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	obs.GetCounter("serve.requests.stream").Add(1)
	// Streams are connections, not requests: a subscriber that stays
	// attached for an hour must not register as an hour-long "request"
	// in any latency histogram (one would bury every real p99). The
	// serve.streams_open gauge carries the live population instead.
	s.streamsOpen.Add(1)
	defer s.streamsOpen.Add(-1)
	ch, cancel := sh.f.Subscribe()
	defer cancel()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// An immediate comment line flushes the response headers so clients
	// (and the smoke test's curl) see the stream is live before the
	// first event.
	fmt.Fprint(w, ": mpa ingest stream\n\n")
	fl.Flush()
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.closing:
			// Graceful shutdown: end the stream so the connection can
			// drain instead of pinning Shutdown to its timeout.
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev, open := <-ch:
			if !open {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleManifest(sh *shard, w http.ResponseWriter, r *http.Request) {
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("manifest")
	m := sh.f.Manifest()
	c.End()
	enc := sp.Start("encode")
	defer enc.End()
	writeJSON(w, http.StatusOK, m)
}

// handleFleetRank is the cross-org practice ranking: every shard's
// partial (its warm memoized ranking plus its case-count weight) fanned
// out over the worker pool, then reduced with tenant.MergeRank. The
// response is a pure function of the per-org partials — merging the
// orgs' /v1/rank responses offline reproduces it byte-for-byte.
func (s *Server) handleFleetRank(w http.ResponseWriter, r *http.Request) {
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("fleet_rank")
	parts, err := par.Map(0, s.reg.Orgs(), func(_ int, o *tenant.Org) (tenant.RankPartial, error) {
		return tenant.RankPartialOf(o), nil
	})
	c.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	merged, err := tenant.MergeRank(parts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	enc := sp.Start("encode")
	defer enc.End()
	writeJSON(w, http.StatusOK, merged)
}

// handleFleetHealth is the cross-org loaded-state rollup: per-org
// summaries fanned out over the worker pool and reduced with
// tenant.MergeHealth (rows name-sorted, totals summed, window spanned).
func (s *Server) handleFleetHealth(w http.ResponseWriter, r *http.Request) {
	sp := obs.SpanFrom(r.Context())
	c := sp.Start("fleet_health")
	parts, err := par.Map(0, s.reg.Orgs(), func(_ int, o *tenant.Org) (tenant.HealthPartial, error) {
		return tenant.HealthPartialOf(o), nil
	})
	c.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	merged, err := tenant.MergeHealth(parts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	enc := sp.Start("encode")
	defer enc.End()
	writeJSON(w, http.StatusOK, merged)
}
