// Package conftest provides randomized configuration builders for
// property-based tests of the dialect packages: any configuration this
// package can produce must survive a render/parse round trip bit-exactly
// in both dialects.
package conftest

import (
	"fmt"

	"mpa/internal/confmodel"
	"mpa/internal/rng"
)

// Style selects vendor-appropriate option placement.
type Style int

// Styles.
const (
	StyleCisco Style = iota
	StyleJuniper
)

// RandomConfig builds a random but well-formed configuration: stanza names
// are unique per type, option values are drawn from the vocabularies the
// dialects understand, and vendor quirks (VLAN membership placement) follow
// the style.
func RandomConfig(r *rng.RNG, style Style) *confmodel.Config {
	c := confmodel.NewConfig(fmt.Sprintf("dev-%04x", r.Uint64()&0xffff))

	ifName := func(i int) string {
		if style == StyleCisco {
			return fmt.Sprintf("TenGigabitEthernet0/%d", i)
		}
		return fmt.Sprintf("xe-0/0/%d", i)
	}

	// Interfaces.
	nIf := 1 + r.Intn(6)
	var ifaces []string
	for i := 0; i < nIf; i++ {
		name := ifName(i)
		ifaces = append(ifaces, name)
		s := confmodel.NewStanza(confmodel.TypeInterface, name)
		if r.Bool(0.7) {
			s.Set("description", fmt.Sprintf("port %d of rack %d", i, r.Intn(40)))
		}
		if r.Bool(0.3) {
			s.Set("mtu", []string{"1500", "9000", "9216"}[r.Intn(3)])
		}
		if r.Bool(0.2) {
			s.Set("address", fmt.Sprintf("10.%d.%d.%d/31", r.Intn(250), r.Intn(250), r.Intn(250)))
		}
		if r.Bool(0.2) {
			s.Set("lag-group", fmt.Sprintf("%d", 1+r.Intn(8)))
		}
		if r.Bool(0.15) {
			s.Set("shutdown", "true")
		}
		c.Upsert(s)
	}

	// VLANs with the vendor quirk.
	nVLAN := r.Intn(5)
	for i := 0; i < nVLAN; i++ {
		id := fmt.Sprintf("%d", 100+i)
		var s *confmodel.Stanza
		if style == StyleCisco {
			s = confmodel.NewStanza(confmodel.TypeVLAN, id)
			s.Set("vlan-id", id)
			if r.Bool(0.6) {
				if is := c.Get(confmodel.TypeInterface, ifaces[r.Intn(len(ifaces))]); is != nil {
					is.Set("access-vlan", id)
				}
			}
		} else {
			s = confmodel.NewStanza(confmodel.TypeVLAN, "v"+id)
			s.Set("vlan-id", id)
			if r.Bool(0.6) {
				s.Set("member:"+ifaces[r.Intn(len(ifaces))], "true")
			}
		}
		if r.Bool(0.5) {
			s.Set("description", "seg-"+id)
		}
		c.Upsert(s)
	}

	// ACLs, possibly attached to interfaces.
	for i := 0; i < r.Intn(3); i++ {
		name := fmt.Sprintf("ACL-%d", i)
		s := confmodel.NewStanza(confmodel.TypeACL, name)
		for k := 0; k < 1+r.Intn(4); k++ {
			s.Set(fmt.Sprintf("rule:%d", (k+1)*10),
				fmt.Sprintf("%s tcp any any eq %d",
					[]string{"permit", "deny"}[r.Intn(2)], 1+r.Intn(9999)))
		}
		c.Upsert(s)
		if r.Bool(0.5) {
			if is := c.Get(confmodel.TypeInterface, ifaces[r.Intn(len(ifaces))]); is != nil {
				is.Set("acl-in", name)
			}
		}
	}

	// Routing.
	if r.Bool(0.5) {
		asn := fmt.Sprintf("%d", 64512+r.Intn(500))
		s := confmodel.NewStanza(confmodel.TypeBGP, asn).Set("local-as", asn)
		for k := 0; k < r.Intn(3); k++ {
			s.Set(fmt.Sprintf("neighbor:10.0.%d.%d", r.Intn(250), 1+r.Intn(250)),
				fmt.Sprintf("%d", 64512+r.Intn(500)))
		}
		if r.Bool(0.3) {
			s.Set("network:10.10.0.0/16", "true")
		}
		c.Upsert(s)
	}
	if r.Bool(0.3) {
		s := confmodel.NewStanza(confmodel.TypeOSPF, fmt.Sprintf("%d", 1+r.Intn(10)))
		s.Set("area", fmt.Sprintf("%d", r.Intn(3)))
		if r.Bool(0.5) {
			s.Set(fmt.Sprintf("network:10.%d.0.0/16", r.Intn(200)), s.Get("area"))
		}
		c.Upsert(s)
	}

	// Pools, users, globals.
	if r.Bool(0.3) {
		s := confmodel.NewStanza(confmodel.TypePool, fmt.Sprintf("POOL-%d", r.Intn(20)))
		for k := 0; k < 1+r.Intn(3); k++ {
			s.Set(fmt.Sprintf("member:10.200.%d.%d:443", r.Intn(8), 1+r.Intn(250)),
				fmt.Sprintf("%d", 1+r.Intn(9)))
		}
		if r.Bool(0.5) {
			s.Set("monitor", "tcp-443")
		}
		c.Upsert(s)
	}
	for i := 0; i < r.Intn(3); i++ {
		c.Upsert(confmodel.NewStanza(confmodel.TypeUser, fmt.Sprintf("user%d", i)).
			Set("role", fmt.Sprintf("%d", 1+r.Intn(15))).
			Set("hash", fmt.Sprintf("$1$%08x", r.Uint64()&0xffffffff)))
	}
	if r.Bool(0.6) {
		c.Upsert(confmodel.NewStanza(confmodel.TypeSNMP, "global").
			Set("community", fmt.Sprintf("comm%d", r.Intn(100))).
			Set(fmt.Sprintf("host:10.250.0.%d", 1+r.Intn(200)), "true"))
	}
	if r.Bool(0.5) {
		c.Upsert(confmodel.NewStanza(confmodel.TypeNTP, "global").
			Set(fmt.Sprintf("server:10.250.1.%d", 1+r.Intn(200)), "true"))
	}
	if r.Bool(0.4) {
		c.Upsert(confmodel.NewStanza(confmodel.TypeLogging, "global").
			Set("level", []string{"informational", "warnings", "debugging"}[r.Intn(3)]).
			Set(fmt.Sprintf("host:10.250.2.%d", 1+r.Intn(200)), "true"))
	}
	if r.Bool(0.3) {
		c.Upsert(confmodel.NewStanza(confmodel.TypeSTP, "global").
			Set("mode", "mst").
			Set("priority", fmt.Sprintf("%d", 4096*(1+r.Intn(8)))).
			Set("region", fmt.Sprintf("R%d", r.Intn(6))))
	}
	if r.Bool(0.2) {
		c.Upsert(confmodel.NewStanza(confmodel.TypeUDLD, "global").Set("enable", "true"))
	}
	if r.Bool(0.25) {
		c.Upsert(confmodel.NewStanza(confmodel.TypeSflow, "global").
			Set("collector", fmt.Sprintf("10.250.3.%d", 1+r.Intn(200))).
			Set("rate", fmt.Sprintf("%d", 1024*(1+r.Intn(8)))))
	}
	if r.Bool(0.25) {
		c.Upsert(confmodel.NewStanza(confmodel.TypeQoS, fmt.Sprintf("PM-%d", r.Intn(5))).
			Set(fmt.Sprintf("class:c%d", r.Intn(4)), fmt.Sprintf("%d", 10+10*r.Intn(6))))
	}
	if r.Bool(0.25) {
		id := fmt.Sprintf("%d", 100+r.Intn(50))
		c.Upsert(confmodel.NewStanza(confmodel.TypeDHCPRelay, "VLAN"+id).
			Set("vlan", id).
			Set(fmt.Sprintf("server:10.250.4.%d", 1+r.Intn(200)), "true"))
	}
	if r.Bool(0.3) {
		s := confmodel.NewStanza(confmodel.TypePrefixList, fmt.Sprintf("PL-%d", r.Intn(10)))
		for k := 0; k < 1+r.Intn(3); k++ {
			s.Set(fmt.Sprintf("rule:%d", (k+1)*5),
				fmt.Sprintf("permit 10.%d.0.0/16", r.Intn(200)))
		}
		c.Upsert(s)
	}
	if r.Bool(0.25) {
		c.Upsert(confmodel.NewStanza(confmodel.TypeRouteMap, fmt.Sprintf("RM-%d", r.Intn(10))).
			Set("entry:10", fmt.Sprintf("permit match:PL-%d", r.Intn(10))))
	}
	return c
}
