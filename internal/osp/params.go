// Package osp synthesizes an online service provider's management-plane
// data: inventory records, a configuration-snapshot archive with login
// metadata, and a trouble-ticket log.
//
// The paper's datasets (850+ networks, 17 months, O(100K) config
// snapshots, O(10K) tickets — Table 2) are proprietary; this generator is
// the repository's documented substitution (DESIGN.md §2). It draws
// network compositions and operational behaviour from the long-tailed
// distributions the paper characterizes in Appendix A, renders every
// device's configuration to real vendor text through the dialect packages,
// and emits tickets from a ground-truth health model whose causal
// structure mirrors the paper's findings — so the analytics pipeline faces
// the same skew, confounding, and vendor quirks the authors describe, and
// its causal conclusions can be checked against a known truth.
package osp

import (
	"time"

	"mpa/internal/months"
)

// Params configures a synthetic OSP.
type Params struct {
	// Seed drives every random draw; the same seed reproduces the entire
	// OSP byte-for-byte.
	Seed uint64
	// Networks is the number of networks to generate (paper: 850+).
	Networks int
	// Start and End bound the study window, inclusive (paper: Aug 2013 -
	// Dec 2014).
	Start, End months.Month
	// Health is the ground-truth ticket model.
	Health HealthWeights
	// MeanEventsPerMonth scales the log-normal monthly change-event rate
	// (median of the per-network rate distribution).
	MeanEventsPerMonth float64
	// Workers bounds the goroutines used for per-network generation (and,
	// via experiments.NewEnv, per-network inference). Zero or negative
	// uses the process default (par.SetDefaultWorkers, initially all
	// CPUs). Output is byte-identical at every worker count.
	Workers int
}

// Default returns the paper-scale parameters: 850 networks over the
// 17-month study window.
func Default(seed uint64) Params {
	return Params{
		Seed:               seed,
		Networks:           850,
		Start:              months.StudyStart,
		End:                months.StudyEnd,
		Health:             DefaultHealthWeights(),
		MeanEventsPerMonth: 6,
	}
}

// Small returns reduced-scale parameters for unit tests and examples:
// enough networks and months for every metric and model to be exercised,
// at a fraction of the cost.
func Small(seed uint64) Params {
	return Params{
		Seed:               seed,
		Networks:           60,
		Start:              months.Month{Year: 2014, Mon: time.January},
		End:                months.Month{Year: 2014, Mon: time.June},
		Health:             DefaultHealthWeights(),
		MeanEventsPerMonth: 6,
	}
}

// Months returns the study window.
func (p Params) Months() []months.Month { return months.Range(p.Start, p.End) }

// Automation account logins: changes by these logins are classified as
// automated by the NMS (paper §2.2, O2).
var specialAccounts = []string{"svc-netauto", "rancid-bot", "svc-lbsync"}

// operatorPool is the set of human operator logins.
var operatorPool = []string{
	"op-chen", "op-patel", "op-garcia", "op-kim", "op-nguyen",
	"op-smith", "op-tanaka", "op-mueller", "op-okafor", "op-rossi",
}
