package osp

import "mpa/internal/rng"

// newTestRNG gives tests a deterministic generator.
func newTestRNG() *rng.RNG { return rng.New(1234) }
