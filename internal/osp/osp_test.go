package osp

import (
	"mpa/internal/confmodel"
	"strings"
	"testing"
	"time"

	"mpa/internal/months"
	"mpa/internal/netmodel"
	"mpa/internal/ticketing"
)

// smallOSP is generated once and shared across tests (read-only).
var smallOSP = Generate(Small(7))

func TestGenerateDeterministic(t *testing.T) {
	p := Small(3)
	p.Networks = 5
	a := Generate(p)
	b := Generate(p)
	if a.Inventory.DeviceCount() != b.Inventory.DeviceCount() {
		t.Fatal("device counts differ across identical seeds")
	}
	if a.Archive.SnapshotCount() != b.Archive.SnapshotCount() {
		t.Fatal("snapshot counts differ across identical seeds")
	}
	if a.Tickets.Len() != b.Tickets.Len() {
		t.Fatal("ticket counts differ across identical seeds")
	}
	// Spot-check one device's snapshot stream byte-for-byte.
	dev := a.Inventory.Networks[0].Devices[0].Name
	sa, sb := a.Archive.Snapshots(dev), b.Archive.Snapshots(dev)
	if len(sa) != len(sb) {
		t.Fatalf("snapshot streams differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].Text != sb[i].Text || !sa[i].Time.Equal(sb[i].Time) {
			t.Fatalf("snapshot %d differs", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	p1, p2 := Small(1), Small(2)
	p1.Networks, p2.Networks = 5, 5
	a, b := Generate(p1), Generate(p2)
	if a.Archive.SnapshotCount() == b.Archive.SnapshotCount() && a.Tickets.Len() == b.Tickets.Len() {
		t.Error("different seeds produced identical scale — suspicious")
	}
}

func TestInventoryShape(t *testing.T) {
	o := smallOSP
	if got := len(o.Inventory.Networks); got != o.Params.Networks {
		t.Fatalf("networks = %d", got)
	}
	multiVendor, multiRole, withMbox, interconnect := 0, 0, 0, 0
	for _, nw := range o.Inventory.Networks {
		if len(nw.Devices) < 2 {
			t.Errorf("network %s has %d devices", nw.Name, len(nw.Devices))
		}
		if len(nw.Vendors()) > 1 {
			multiVendor++
		}
		if len(nw.Roles()) > 1 {
			multiRole++
		}
		if nw.MiddleboxCount() > 0 {
			withMbox++
		}
		if nw.Interconnect {
			interconnect++
			if len(nw.Services) != 0 {
				t.Errorf("interconnect %s hosts services", nw.Name)
			}
		} else if len(nw.Services) == 0 {
			t.Errorf("non-interconnect %s hosts no services", nw.Name)
		}
	}
	n := len(o.Inventory.Networks)
	// Appendix-A shape checks, with slack for the small sample.
	if frac := float64(multiVendor) / float64(n); frac < 0.6 || frac > 0.95 {
		t.Errorf("multi-vendor fraction = %.2f, want ~0.81", frac)
	}
	if frac := float64(withMbox) / float64(n); frac < 0.5 || frac > 0.9 {
		t.Errorf("middlebox fraction = %.2f, want ~0.71", frac)
	}
	if multiRole == 0 {
		t.Error("no multi-role networks")
	}
}

func TestDeviceNamingAndIPs(t *testing.T) {
	seenIP := map[string]bool{}
	for _, nw := range smallOSP.Inventory.Networks {
		for _, d := range nw.Devices {
			if !strings.HasPrefix(d.Name, nw.Name+"-") {
				t.Fatalf("device %s not prefixed with network %s", d.Name, nw.Name)
			}
			if seenIP[d.MgmtIP] {
				t.Fatalf("duplicate management IP %s", d.MgmtIP)
			}
			seenIP[d.MgmtIP] = true
		}
	}
}

func TestSnapshotsParseable(t *testing.T) {
	// Every archived snapshot must be parseable by the device's dialect.
	o := smallOSP
	checked := 0
	for _, nw := range o.Inventory.Networks[:10] {
		for _, d := range nw.Devices {
			for _, s := range o.Archive.Snapshots(d.Name) {
				cfg, err := dialectFor(d.Vendor).Parse(s.Text)
				if err != nil {
					t.Fatalf("unparseable snapshot for %s: %v", d.Name, err)
				}
				if cfg.Hostname != d.Name {
					t.Fatalf("hostname %q != device %q", cfg.Hostname, d.Name)
				}
				if cfg.Fingerprint() != s.Fingerprint {
					t.Fatalf("fingerprint mismatch for %s", d.Name)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no snapshots checked")
	}
}

func TestEveryDeviceHasBaselineSnapshot(t *testing.T) {
	o := smallOSP
	for _, nw := range o.Inventory.Networks {
		for _, d := range nw.Devices {
			hist := o.Archive.Snapshots(d.Name)
			if len(hist) == 0 {
				t.Fatalf("device %s has no snapshots", d.Name)
			}
			if hist[0].Login != "initial-import" {
				t.Errorf("device %s first snapshot login = %q", d.Name, hist[0].Login)
			}
			if got := months.Of(hist[0].Time); got != o.Params.Start {
				t.Errorf("device %s baseline in %v", d.Name, got)
			}
		}
	}
}

func TestSnapshotTimesMonotonicPerDevice(t *testing.T) {
	o := smallOSP
	for _, dev := range o.Archive.Devices() {
		hist := o.Archive.Snapshots(dev)
		for i := 1; i < len(hist); i++ {
			if hist[i].Time.Before(hist[i-1].Time) {
				t.Fatalf("device %s snapshots out of order", dev)
			}
		}
	}
}

func TestTruthMatchesArchiveChangeCounts(t *testing.T) {
	// The ground-truth DeviceChanges per month must equal the number of
	// changes the NMS infers (differing successive fingerprints).
	o := smallOSP
	for _, nw := range o.Inventory.Networks[:15] {
		for _, m := range o.Params.Months() {
			want := o.Truth[nw.Name][m].DeviceChanges
			got := 0
			for _, d := range nw.Devices {
				got += len(o.Archive.ChangesInMonth(d.Name, m))
			}
			if got != want {
				t.Errorf("network %s month %v: archive changes %d != truth %d",
					nw.Name, m, got, want)
			}
		}
	}
}

func TestTicketsRespectStudyWindow(t *testing.T) {
	o := smallOSP
	for _, tk := range o.Tickets.All() {
		m := months.Of(tk.Opened)
		if m.Before(o.Params.Start) || o.Params.End.Before(m) {
			t.Fatalf("ticket outside window: %v", tk.Opened)
		}
	}
}

func TestTicketSkewMatchesPaper(t *testing.T) {
	// Figure 9's skew: the majority of network-months must be healthy
	// (<=1 ticket), and unhealthy months must still exist.
	o := smallOSP
	healthy, total := 0, 0
	veryPoor := 0
	for _, nw := range o.Inventory.Networks {
		for _, m := range o.Params.Months() {
			n := o.Tickets.HealthCount(nw.Name, m)
			total++
			if n <= 1 {
				healthy++
			}
			if n >= 12 {
				veryPoor++
			}
		}
	}
	frac := float64(healthy) / float64(total)
	if frac < 0.55 || frac > 0.8 {
		t.Errorf("healthy fraction = %.2f, want ~0.65", frac)
	}
	if veryPoor == 0 {
		t.Error("no very-poor network-months: tail too thin")
	}
}

func TestMaintenanceTicketsPresent(t *testing.T) {
	o := smallOSP
	maint := 0
	for _, tk := range o.Tickets.All() {
		if tk.Origin == ticketing.OriginMaintenance {
			maint++
		}
	}
	if maint == 0 {
		t.Error("no maintenance tickets generated")
	}
}

func TestAutomationAccountsRegistered(t *testing.T) {
	o := smallOSP
	for _, acct := range specialAccounts {
		if !o.Archive.IsAutomated(acct) {
			t.Errorf("special account %s not registered", acct)
		}
	}
	if o.Archive.IsAutomated("op-chen") {
		t.Error("operator login classified automated")
	}
}

func TestVendorQuirkInGeneratedConfigs(t *testing.T) {
	// Cisco devices must carry VLAN membership on interfaces; Juniper
	// devices must carry it on vlan stanzas.
	o := smallOSP
	var sawCiscoQuirk, sawJuniperQuirk bool
	for _, nw := range o.Inventory.Networks {
		for _, d := range nw.Devices {
			hist := o.Archive.Snapshots(d.Name)
			text := hist[len(hist)-1].Text
			if d.Vendor == netmodel.VendorCisco && strings.Contains(text, "switchport access vlan") {
				sawCiscoQuirk = true
			}
			if d.Vendor == netmodel.VendorJuniper && strings.Contains(text, "vlans v") {
				sawJuniperQuirk = true
			}
		}
	}
	if !sawCiscoQuirk {
		t.Error("no Cisco device has interface-side VLAN membership")
	}
	if !sawJuniperQuirk {
		t.Error("no Juniper device has vlan-side membership")
	}
}

func TestTraitsExported(t *testing.T) {
	o := smallOSP
	if len(o.Traits) != o.Params.Networks {
		t.Fatalf("traits for %d networks", len(o.Traits))
	}
	for name, tr := range o.Traits {
		if tr.EventRate <= 0 {
			t.Errorf("network %s event rate %v", name, tr.EventRate)
		}
		if tr.AutomationProp < 0 || tr.AutomationProp > 1 {
			t.Errorf("network %s automation %v", name, tr.AutomationProp)
		}
	}
}

func TestEventChainsWithinGroupingWindow(t *testing.T) {
	// Device changes within one generated event must be chainable with
	// the 5-minute heuristic: consecutive gaps < 5 minutes.
	o := smallOSP
	for _, nw := range o.Inventory.Networks[:10] {
		var times []time.Time
		for _, d := range nw.Devices {
			for _, c := range o.Archive.Changes(d.Name) {
				times = append(times, c.Time)
			}
		}
		_ = times // chaining is validated end-to-end in the practices tests
	}
}

func TestHealthLambdaResponds(t *testing.T) {
	w := DefaultHealthWeights()
	w.Noise = 0
	quiet := MonthTruth{Events: 2, ChangeTypes: 1, DevicesPerEvent: 1}
	busy := MonthTruth{Events: 60, ChangeTypes: 8, DevicesPerEvent: 3, FracACLEvents: 0.5}
	r := newTestRNG()
	lQuiet := w.Lambda(5, 5, 2, 2, quiet, r)
	lBusy := w.Lambda(300, 200, 15, 5, busy, r)
	if lBusy <= lQuiet {
		t.Errorf("lambda not increasing: busy %v <= quiet %v", lBusy, lQuiet)
	}
}

func TestHealthHumpShape(t *testing.T) {
	if hump(0.5) != 1 {
		t.Errorf("hump(0.5) = %v", hump(0.5))
	}
	if hump(0) != 0 || hump(1) != 0 {
		t.Error("hump endpoints not zero")
	}
	if !(hump(0.25) > 0 && hump(0.25) < 1) {
		t.Errorf("hump(0.25) = %v", hump(0.25))
	}
}

func TestScaleRoughlyPaper(t *testing.T) {
	// Small params: sanity scale only. Snapshot count should be O(100)
	// per network-month pair at most and tickets O(10K) at full scale —
	// here just require non-trivial volume.
	o := smallOSP
	if o.Archive.SnapshotCount() < o.Inventory.DeviceCount() {
		t.Error("fewer snapshots than devices (missing baselines?)")
	}
	if o.Tickets.Len() == 0 {
		t.Error("no tickets at all")
	}
}

func TestInitialConfigsValidateClean(t *testing.T) {
	// The generator's initial configurations must be internally
	// consistent: every reference resolves. (Later in the simulation,
	// removal events may legitimately leave dangling references — e.g. an
	// interface still pointing at a deleted VLAN — just as real operators
	// do.)
	o := smallOSP
	for _, nw := range o.Inventory.Networks[:20] {
		for _, d := range nw.Devices {
			first := o.Archive.Snapshots(d.Name)[0]
			cfg, err := dialectFor(d.Vendor).Parse(first.Text)
			if err != nil {
				t.Fatal(err)
			}
			if issues := confmodel.Validate(cfg); len(issues) != 0 {
				t.Fatalf("device %s initial config has issues: %v", d.Name, issues)
			}
		}
	}
}

func TestMultiEditSessions(t *testing.T) {
	// Commit granularity: the per-device change count must exceed the
	// event-device count overall (each event device session produces one
	// or more snapshots), and the ratio must vary across networks (the
	// editRate latent that decouples O1 from O4).
	o := smallOSP
	var ratios []float64
	for _, nw := range o.Inventory.Networks {
		var changes, eventDevices float64
		for _, mt := range o.Truth[nw.Name] {
			changes += float64(mt.DeviceChanges)
			eventDevices += mt.DevicesPerEvent * float64(mt.Events)
		}
		if eventDevices > 0 {
			ratios = append(ratios, changes/eventDevices)
		}
	}
	if len(ratios) < 10 {
		t.Fatal("too few networks with events")
	}
	lo, hi := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < 1-1e-9 {
			t.Fatalf("changes below event-device count: ratio %v", r)
		}
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi/lo < 1.5 {
		t.Errorf("edit-rate spread too narrow: %v .. %v", lo, hi)
	}
}

func TestFleetProcurementConcentration(t *testing.T) {
	// Most larger networks should be dominated by per-role fleets: the
	// most common model covers a large share of devices.
	o := smallOSP
	checked := 0
	dominated := 0
	for _, nw := range o.Inventory.Networks {
		if len(nw.Devices) < 10 {
			continue
		}
		checked++
		max := 0
		for _, count := range nw.Models() {
			if count > max {
				max = count
			}
		}
		if float64(max) >= 0.4*float64(len(nw.Devices)) {
			dominated++
		}
	}
	if checked == 0 {
		t.Skip("no large networks in sample")
	}
	if frac := float64(dominated) / float64(checked); frac < 0.5 {
		t.Errorf("only %.2f of large networks are fleet-dominated", frac)
	}
}

func TestHealthSaturation(t *testing.T) {
	// The saturating response: beyond the cap, more events add nothing.
	w := DefaultHealthWeights()
	w.Noise = 0
	r := newTestRNG()
	mid := MonthTruth{Events: 20}
	high := MonthTruth{Events: 200}
	if w.Lambda(10, 10, 3, 2, mid, r) != w.Lambda(10, 10, 3, 2, high, r) {
		t.Error("event response not saturating beyond the cap")
	}
	low := MonthTruth{Events: 2}
	if w.Lambda(10, 10, 3, 2, low, r) >= w.Lambda(10, 10, 3, 2, mid, r) {
		t.Error("event response not increasing below the cap")
	}
}
