package osp

import (
	"sort"

	"fmt"

	"mpa/internal/confmodel"
	"mpa/internal/netmodel"
)

// mutation is the result of applying one event template to one device.
type mutation struct {
	device *netmodel.Device
	types  []confmodel.Type // stanza types touched
}

// eligibleDevices returns the devices an event kind can apply to.
func (st *netState) eligibleDevices(kind changeKind) []*netmodel.Device {
	var out []*netmodel.Device
	for _, d := range st.devices {
		switch kind {
		case ckPoolUpdate:
			if d.Role == netmodel.RoleLoadBalancer || d.Role == netmodel.RoleADC {
				out = append(out, d)
			}
		case ckRouterChange, ckPolicyChange:
			if d.Role == netmodel.RoleRouter {
				out = append(out, d)
			}
		default:
			out = append(out, d)
		}
	}
	return out
}

// applyEvent mutates the configuration of count devices according to the
// event kind and returns the mutations performed. It falls back to an
// interface edit when the kind has no eligible device.
func (st *netState) applyEvent(kind changeKind, count int) []mutation {
	pool := st.eligibleDevices(kind)
	if len(pool) == 0 {
		kind = ckInterfaceEdit
		pool = st.devices
	}
	if count > len(pool) {
		count = len(pool)
	}
	perm := st.r.Perm(len(pool))
	var muts []mutation
	// For VLAN additions all devices share the new VLAN id.
	var newVLAN int
	if kind == ckVLANAdd {
		newVLAN = st.nextVLANID
		st.nextVLANID++
		st.vlanIDs = append(st.vlanIDs, newVLAN)
	}
	for i := 0; i < count; i++ {
		dev := pool[perm[i]]
		types := st.mutateDevice(dev, kind, newVLAN)
		if len(types) > 0 {
			muts = append(muts, mutation{device: dev, types: types})
		}
	}
	return muts
}

// mutateDevice applies the event kind to one device's configuration and
// returns the stanza types it touched.
func (st *netState) mutateDevice(dev *netmodel.Device, kind changeKind, newVLAN int) []confmodel.Type {
	r := st.r
	c := st.configs[dev.Name]
	switch kind {
	case ckInterfaceEdit:
		ifaces := c.OfType(confmodel.TypeInterface)
		if len(ifaces) == 0 {
			return nil
		}
		s := ifaces[r.Intn(len(ifaces))]
		switch r.Intn(3) {
		case 0:
			s.Set("description", fmt.Sprintf("edited r%04x", r.Uint64()&0xffff))
		case 1:
			s.Set("mtu", []string{"1500", "9000", "9216"}[r.Intn(3)])
		default:
			if s.Get("shutdown") == "true" {
				s.Delete("shutdown")
			} else {
				s.Set("shutdown", "true")
			}
		}
		return []confmodel.Type{confmodel.TypeInterface}

	case ckVLANAdd:
		ifaces := c.OfType(confmodel.TypeInterface)
		if len(ifaces) == 0 {
			return nil
		}
		iface := ifaces[r.Intn(len(ifaces))].Name
		st.attachVLAN(c, dev.Vendor, newVLAN, iface)
		// The cross-vendor typing quirk (paper §2.2): on Cisco the
		// membership edit touches the interface stanza too; on Juniper
		// only the vlan stanza changes.
		if dev.Vendor == netmodel.VendorCisco {
			return []confmodel.Type{confmodel.TypeVLAN, confmodel.TypeInterface}
		}
		return []confmodel.Type{confmodel.TypeVLAN}

	case ckVLANEdit:
		vlans := c.OfType(confmodel.TypeVLAN)
		if len(vlans) == 0 {
			return nil
		}
		s := vlans[r.Intn(len(vlans))]
		if r.Bool(0.12) && len(vlans) > 1 {
			c.Remove(confmodel.TypeVLAN, s.Name)
		} else {
			s.Set("description", fmt.Sprintf("seg-r%04x", r.Uint64()&0xffff))
		}
		return []confmodel.Type{confmodel.TypeVLAN}

	case ckACLEdit:
		acls := c.OfType(confmodel.TypeACL)
		if len(acls) == 0 {
			ifaces := c.OfType(confmodel.TypeInterface)
			if len(ifaces) == 0 {
				return nil
			}
			st.addACL(c, ifaces[r.Intn(len(ifaces))].Name)
			return []confmodel.Type{confmodel.TypeACL, confmodel.TypeInterface}
		}
		s := acls[r.Intn(len(acls))]
		seq := (1 + r.Intn(9)) * 10
		s.Set(fmt.Sprintf("rule:%d", seq), st.randomACLRule())
		return []confmodel.Type{confmodel.TypeACL}

	case ckPoolUpdate:
		pools := c.OfType(confmodel.TypePool)
		if len(pools) == 0 {
			st.addPool(c)
			return []confmodel.Type{confmodel.TypePool}
		}
		s := pools[r.Intn(len(pools))]
		members := sortedKeys(s.OptionsWithPrefix("member:"))
		if len(members) > 0 && r.Bool(0.7) {
			// Adjust an existing member's weight: the paper's observation
			// that most middlebox changes are simple pool adjustments.
			m := members[r.Intn(len(members))]
			s.Set("member:"+m, fmt.Sprintf("%d", 1+r.Intn(9)))
		} else {
			s.Set(fmt.Sprintf("member:10.200.%d.%d:443", r.Intn(8), 1+r.Intn(250)),
				fmt.Sprintf("%d", 1+r.Intn(9)))
		}
		return []confmodel.Type{confmodel.TypePool}

	case ckUserChange:
		users := c.OfType(confmodel.TypeUser)
		if len(users) > 1 && r.Bool(0.4) {
			c.Remove(confmodel.TypeUser, users[r.Intn(len(users))].Name)
		} else {
			c.Upsert(confmodel.NewStanza(confmodel.TypeUser, fmt.Sprintf("acct%02d", st.nextUser)).
				Set("role", "15").Set("hash", fmt.Sprintf("$1$h%04x", r.Uint64()&0xffff)))
			st.nextUser++
		}
		return []confmodel.Type{confmodel.TypeUser}

	case ckRouterChange:
		bgps := c.OfType(confmodel.TypeBGP)
		ospfs := c.OfType(confmodel.TypeOSPF)
		switch {
		case len(bgps) > 0 && (len(ospfs) == 0 || r.Bool(0.6)):
			s := bgps[r.Intn(len(bgps))]
			if neighbors := sortedKeys(s.OptionsWithPrefix("neighbor:")); len(neighbors) > 2 && r.Bool(0.3) {
				s.Delete("neighbor:" + neighbors[r.Intn(len(neighbors))])
			} else {
				s.Set(fmt.Sprintf("neighbor:192.0.2.%d", 1+r.Intn(250)),
					fmt.Sprintf("%d", 64512+r.Intn(500)))
			}
			return []confmodel.Type{confmodel.TypeBGP}
		case len(ospfs) > 0:
			s := ospfs[r.Intn(len(ospfs))]
			s.Set(fmt.Sprintf("network:10.%d.%d.0/24", r.Intn(200), r.Intn(250)),
				orArea(s.Get("area")))
			return []confmodel.Type{confmodel.TypeOSPF}
		default:
			return nil
		}

	case ckMgmtChange:
		switch r.Intn(3) {
		case 0:
			if s := c.Get(confmodel.TypeSNMP, "global"); s != nil {
				s.Set("community", fmt.Sprintf("osp-mon-%d", r.Intn(100)))
				return []confmodel.Type{confmodel.TypeSNMP}
			}
		case 1:
			if s := c.Get(confmodel.TypeNTP, "global"); s != nil {
				s.Set(fmt.Sprintf("server:10.250.0.%d", 2+r.Intn(8)), "true")
				return []confmodel.Type{confmodel.TypeNTP}
			}
		default:
			if s := c.Get(confmodel.TypeLogging, "global"); s != nil {
				s.Set("level", []string{"informational", "warnings", "debugging"}[r.Intn(3)])
				return []confmodel.Type{confmodel.TypeLogging}
			}
		}
		return nil

	case ckQoSChange:
		qos := c.OfType(confmodel.TypeQoS)
		if len(qos) == 0 {
			c.Upsert(confmodel.NewStanza(confmodel.TypeQoS, fmt.Sprintf("PM-%02d", r.Intn(4))).
				Set("class:gold", fmt.Sprintf("%d", 10+10*r.Intn(5))))
			return []confmodel.Type{confmodel.TypeQoS}
		}
		s := qos[r.Intn(len(qos))]
		s.Set("class:gold", fmt.Sprintf("%d", 10+10*r.Intn(5)))
		return []confmodel.Type{confmodel.TypeQoS}

	case ckSflowChange:
		s := c.Get(confmodel.TypeSflow, "global")
		if s == nil {
			s = confmodel.NewStanza(confmodel.TypeSflow, "global").
				Set("collector", "10.250.0.4")
			c.Upsert(s)
		}
		s.Set("rate", fmt.Sprintf("%d", 1024*(1+r.Intn(8))))
		return []confmodel.Type{confmodel.TypeSflow}

	case ckDHCPRelayChange:
		relays := c.OfType(confmodel.TypeDHCPRelay)
		if len(relays) == 0 {
			return nil
		}
		s := relays[r.Intn(len(relays))]
		s.Set(fmt.Sprintf("server:10.250.0.%d", 9+r.Intn(6)), "true")
		return []confmodel.Type{confmodel.TypeDHCPRelay}

	case ckPolicyChange:
		pls := c.OfType(confmodel.TypePrefixList)
		rms := c.OfType(confmodel.TypeRouteMap)
		switch {
		case len(pls) > 0 && (len(rms) == 0 || r.Bool(0.5)):
			s := pls[r.Intn(len(pls))]
			s.Set(fmt.Sprintf("rule:%d", (1+r.Intn(9))*10),
				fmt.Sprintf("permit 10.%d.0.0/16", r.Intn(200)))
			return []confmodel.Type{confmodel.TypePrefixList}
		case len(rms) > 0:
			s := rms[r.Intn(len(rms))]
			s.Set(fmt.Sprintf("entry:%d", (1+r.Intn(9))*10), "permit match:PL-NET")
			return []confmodel.Type{confmodel.TypeRouteMap}
		default:
			return nil
		}
	}
	return nil
}

// sortedKeys returns a map's keys in sorted order, for deterministic
// random selection.
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func orArea(area string) string {
	if area == "" {
		return "0"
	}
	return area
}
