package osp

import (
	"fmt"

	"mpa/internal/confmodel"
	"mpa/internal/netmodel"
	"mpa/internal/rng"
)

// netState is the generator's live view of one network: its inventory
// records plus the current configuration state of every device.
type netState struct {
	profile *profile
	network *netmodel.Network
	devices []*netmodel.Device
	configs map[string]*confmodel.Config // by hostname
	vlanIDs []int                        // VLAN ids configured in the network
	r       *rng.RNG
	// counters for unique naming
	nextVLANID int
	nextACL    int
	nextUser   int
}

// mgmtIP maps (network index, device index) to a unique address in
// 10.0.0.0/8.
func mgmtIP(netIdx, devIdx int) string {
	v := netIdx*512 + devIdx
	return fmt.Sprintf("10.%d.%d.%d", (v>>16)&255, (v>>8)&255, v&255)
}

// ifaceName returns a vendor-appropriate interface name.
func ifaceName(v netmodel.Vendor, i int) string {
	if v == netmodel.VendorCisco {
		return fmt.Sprintf("TenGigabitEthernet0/%d", i)
	}
	return fmt.Sprintf("xe-0/0/%d", i)
}

// buildNetwork constructs a network's inventory and initial device
// configurations from its profile.
func buildNetwork(pr *profile, r *rng.RNG) *netState {
	st := &netState{
		profile:    pr,
		configs:    map[string]*confmodel.Config{},
		r:          r,
		nextVLANID: 100,
		nextACL:    1,
		nextUser:   1,
	}
	roles := rolePlan(pr, r)

	// Draw the network's VLAN id set.
	for i := 0; i < pr.vlanCount; i++ {
		st.vlanIDs = append(st.vlanIDs, st.nextVLANID)
		st.nextVLANID++
	}

	// Fleet procurement: each role gets a dominant vendor, model, and
	// firmware for the whole network (devices are bulk-purchased), with a
	// small per-device deviation probability. This keeps the normalized
	// (model, role) entropy low for most networks — the paper's median
	// heterogeneity is below 0.3 — while deviations and mixed-vendor
	// sourcing produce the heterogeneous ~10% tail.
	type fleet struct {
		vendor   netmodel.Vendor
		model    string
		firmware string
	}
	mixed := pr.vendorBias > 0 && pr.vendorBias < 1 && len(roles) >= 2
	fleetFor := func(forceVendor *netmodel.Vendor) fleet {
		v := netmodel.VendorJuniper
		if r.Bool(pr.vendorBias) {
			v = netmodel.VendorCisco
		}
		if forceVendor != nil {
			v = *forceVendor
		}
		models := modelCatalog[v]
		fw := firmwareCatalog[v]
		return fleet{
			vendor:   v,
			model:    models[r.Zipf(len(models), pr.modelSpread)-1],
			firmware: fw[r.Zipf(len(fw), 1.1)-1],
		}
	}
	// Mixed-vendor networks are deliberately dual-sourced: the first two
	// roles present get different vendors (Appendix A.1: 81% of networks
	// are multi-vendor; tiny mixed networks still see both vendors via a
	// forced deviation below).
	fleets := map[netmodel.Role]fleet{}
	forced := 0
	for _, role := range roles {
		if _, ok := fleets[role]; ok {
			continue
		}
		var force *netmodel.Vendor
		if mixed && forced < 2 {
			v := netmodel.VendorCisco
			if forced == 1 {
				v = netmodel.VendorJuniper
			}
			force = &v
			forced++
		}
		fleets[role] = fleetFor(force)
	}

	// Deviations pick uniformly from the catalog: one-off devices (trial
	// units, salvaged spares) widen the distinct-model count — the paper
	// sees up to 25 models per network — while each adds little entropy.
	deviantFleet := func() fleet {
		v := netmodel.VendorJuniper
		if r.Bool(pr.vendorBias) {
			v = netmodel.VendorCisco
		}
		models := modelCatalog[v]
		fw := firmwareCatalog[v]
		return fleet{
			vendor:   v,
			model:    models[r.Intn(len(models))],
			firmware: fw[r.Intn(len(fw))],
		}
	}

	const deviationProb = 0.12
	roleCounters := map[netmodel.Role]int{}
	secondVendorSeen := !mixed || forced >= 2
	for i, role := range roles {
		fl := fleets[role]
		if r.Bool(deviationProb) {
			fl = deviantFleet()
		}
		if !secondVendorSeen && i == len(roles)-1 {
			// Single-role mixed network: force the second vendor once.
			other := netmodel.VendorJuniper
			if fleets[role].vendor == netmodel.VendorJuniper {
				other = netmodel.VendorCisco
			}
			fl = fleetFor(&other)
		}
		if fl.vendor != fleets[role].vendor {
			secondVendorSeen = true
		}
		vendor, model, firmware := fl.vendor, fl.model, fl.firmware
		roleCounters[role]++
		dev := &netmodel.Device{
			Name:     fmt.Sprintf("%s-%s-%02d", pr.name, roleShort(role), roleCounters[role]),
			Network:  pr.name,
			Vendor:   vendor,
			Model:    model,
			Role:     role,
			Firmware: firmware,
			MgmtIP:   mgmtIP(pr.index, i),
		}
		st.devices = append(st.devices, dev)
		st.configs[dev.Name] = st.buildDeviceConfig(dev)
	}
	st.wireBGP()
	st.network = &netmodel.Network{
		Name:         pr.name,
		Services:     pr.services,
		Interconnect: pr.interconnect,
		Devices:      st.devices,
	}
	return st
}

func roleShort(role netmodel.Role) string {
	switch role {
	case netmodel.RoleSwitch:
		return "sw"
	case netmodel.RoleRouter:
		return "rt"
	case netmodel.RoleFirewall:
		return "fw"
	case netmodel.RoleLoadBalancer:
		return "lb"
	case netmodel.RoleADC:
		return "adc"
	default:
		return "dev"
	}
}

// buildDeviceConfig constructs a device's initial configuration.
func (st *netState) buildDeviceConfig(dev *netmodel.Device) *confmodel.Config {
	r := st.r
	pr := st.profile
	c := confmodel.NewConfig(dev.Name)

	// Management-plane stanzas present on every device.
	c.Upsert(confmodel.NewStanza(confmodel.TypeSNMP, "global").
		Set("community", "osp-mon").Set("host:10.250.0.1", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeNTP, "global").
		Set("server:10.250.0.2", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeLogging, "global").
		Set("level", "informational").Set("host:10.250.0.3", "true"))
	for i := 0; i < 1+r.Intn(3); i++ {
		c.Upsert(confmodel.NewStanza(confmodel.TypeUser, fmt.Sprintf("acct%02d", st.nextUser)).
			Set("role", "15").Set("hash", fmt.Sprintf("$1$h%04x", r.Uint64()&0xffff)))
		st.nextUser++
	}

	// Interfaces: port count by role.
	ports := 4 + r.Intn(8)
	if dev.Role == netmodel.RoleSwitch {
		ports = 8 + r.Intn(17)
	}
	var ifaces []string
	for i := 0; i < ports; i++ {
		name := ifaceName(dev.Vendor, i)
		ifaces = append(ifaces, name)
		s := confmodel.NewStanza(confmodel.TypeInterface, name)
		s.Set("description", fmt.Sprintf("port %d", i))
		if dev.Role == netmodel.RoleRouter && i < 4 {
			s.Set("address", fmt.Sprintf("%s/31", mgmtIP(pr.index, 300+r.Intn(100))))
		}
		c.Upsert(s)
	}

	// VLANs: each device carries a subset of the network's VLANs;
	// membership placement follows the vendor quirk.
	carried := st.deviceVLANSubset()
	for _, id := range carried {
		st.attachVLAN(c, dev.Vendor, id, ifaces[r.Intn(len(ifaces))])
	}

	// Spanning tree / LAG / UDLD / DHCP relay per network usage.
	if pr.useSTP && dev.Role == netmodel.RoleSwitch {
		region := fmt.Sprintf("%s-mst%d", pr.name, 1+r.Intn(pr.mstpRegions))
		c.Upsert(confmodel.NewStanza(confmodel.TypeSTP, "global").
			Set("mode", "mst").Set("priority", fmt.Sprintf("%d", 4096*(1+r.Intn(4)))).
			Set("region", region))
	}
	if pr.useLAG && len(ifaces) >= 4 && r.Bool(pr.lagProb) {
		group := fmt.Sprintf("%d", 1+r.Intn(4))
		for i := 0; i < 2; i++ {
			c.Get(confmodel.TypeInterface, ifaces[i]).Set("lag-group", group)
		}
	}
	if pr.useUDLD && dev.Vendor == netmodel.VendorCisco && dev.Role == netmodel.RoleSwitch {
		c.Upsert(confmodel.NewStanza(confmodel.TypeUDLD, "global").Set("enable", "true"))
	}
	if pr.useDHCPR && dev.Role == netmodel.RoleSwitch && len(carried) > 0 && r.Bool(0.5) {
		id := carried[0]
		c.Upsert(confmodel.NewStanza(confmodel.TypeDHCPRelay, fmt.Sprintf("VLAN%d", id)).
			Set("vlan", fmt.Sprintf("%d", id)).
			Set("server:10.250.0.9", "true"))
	}

	// Role-specific constructs.
	switch dev.Role {
	case netmodel.RoleRouter:
		st.addRouterConstructs(c, dev)
	case netmodel.RoleFirewall:
		for i := 0; i < 2+r.Intn(4); i++ {
			st.addACL(c, ifaces[r.Intn(len(ifaces))])
		}
	case netmodel.RoleLoadBalancer, netmodel.RoleADC:
		for i := 0; i < 1+r.Intn(3); i++ {
			st.addPool(c)
		}
		st.addACL(c, ifaces[r.Intn(len(ifaces))])
	case netmodel.RoleSwitch:
		if r.Bool(0.3) {
			st.addACL(c, ifaces[r.Intn(len(ifaces))])
		}
	}
	if r.Bool(0.25) {
		c.Upsert(confmodel.NewStanza(confmodel.TypeSflow, "global").
			Set("collector", "10.250.0.4").Set("rate", "4096"))
	}
	if r.Bool(0.2) {
		name := fmt.Sprintf("PM-%02d", r.Intn(4))
		c.Upsert(confmodel.NewStanza(confmodel.TypeQoS, name).
			Set("class:gold", fmt.Sprintf("%d", 10+10*r.Intn(5))))
	}
	return c
}

// deviceVLANSubset picks which of the network's VLANs a device carries.
func (st *netState) deviceVLANSubset() []int {
	r := st.r
	if len(st.vlanIDs) == 0 {
		return nil
	}
	// Carry a slice of the network's VLANs around the per-network base
	// fraction, at least one.
	frac := st.profile.vlanCarry + 0.25*(r.Float64()-0.5)
	if frac < 0.1 {
		frac = 0.1
	}
	if frac > 0.95 {
		frac = 0.95
	}
	n := int(frac * float64(len(st.vlanIDs)))
	if n < 1 {
		n = 1
	}
	perm := r.Perm(len(st.vlanIDs))
	out := make([]int, 0, n)
	for _, idx := range perm[:n] {
		out = append(out, st.vlanIDs[idx])
	}
	return out
}

// attachVLAN adds a VLAN stanza to a device and wires one interface into
// it according to the vendor quirk: Cisco sets the membership on the
// interface stanza; Juniper sets it on the vlan stanza.
func (st *netState) attachVLAN(c *confmodel.Config, vendor netmodel.Vendor, id int, iface string) {
	ids := fmt.Sprintf("%d", id)
	if vendor == netmodel.VendorCisco {
		c.Upsert(confmodel.NewStanza(confmodel.TypeVLAN, ids).
			Set("vlan-id", ids).Set("description", "seg-"+ids))
		if s := c.Get(confmodel.TypeInterface, iface); s != nil {
			s.Set("access-vlan", ids)
		}
		return
	}
	v := confmodel.NewStanza(confmodel.TypeVLAN, "v"+ids).
		Set("vlan-id", ids).Set("description", "seg-"+ids)
	v.Set("member:"+iface, "true")
	c.Upsert(v)
}

// addACL attaches a fresh ACL to the given interface.
func (st *netState) addACL(c *confmodel.Config, iface string) {
	name := fmt.Sprintf("ACL-%s-%03d", st.profile.name, st.nextACL)
	st.nextACL++
	s := confmodel.NewStanza(confmodel.TypeACL, name)
	rules := 2 + st.r.Intn(6)
	for i := 0; i < rules; i++ {
		s.Set(fmt.Sprintf("rule:%d", (i+1)*10), st.randomACLRule())
	}
	c.Upsert(s)
	if is := c.Get(confmodel.TypeInterface, iface); is != nil {
		is.Set("acl-in", name)
	}
}

func (st *netState) randomACLRule() string {
	actions := []string{"permit", "deny"}
	protos := []string{"tcp", "udp", "ip"}
	ports := []string{"22", "53", "80", "443", "8080"}
	r := st.r
	return fmt.Sprintf("%s %s any any eq %s",
		actions[r.Intn(2)], protos[r.Intn(3)], ports[r.Intn(len(ports))])
}

// addPool adds a load-balancer server pool.
func (st *netState) addPool(c *confmodel.Config) {
	r := st.r
	name := fmt.Sprintf("POOL-%02d", r.Intn(90))
	s := confmodel.NewStanza(confmodel.TypePool, name)
	s.Set("monitor", "tcp-443")
	members := 2 + r.Intn(6)
	for i := 0; i < members; i++ {
		s.Set(fmt.Sprintf("member:10.200.%d.%d:443", r.Intn(8), 1+r.Intn(250)),
			fmt.Sprintf("%d", 1+r.Intn(9)))
	}
	c.Upsert(s)
}

// addRouterConstructs configures BGP/OSPF and routing policy on a router.
func (st *netState) addRouterConstructs(c *confmodel.Config, dev *netmodel.Device) {
	r := st.r
	pr := st.profile
	if pr.useBGP {
		asn := fmt.Sprintf("%d", 64512+pr.index%1000)
		s := confmodel.NewStanza(confmodel.TypeBGP, asn).Set("local-as", asn)
		s.Set(fmt.Sprintf("network:10.%d.0.0/16", pr.index%200), "true")
		c.Upsert(s)
		if r.Bool(0.5) {
			pl := "PL-NET"
			plS := confmodel.NewStanza(confmodel.TypePrefixList, pl).
				Set("rule:10", "permit 10.0.0.0/8")
			c.Upsert(plS)
			s.Set("prefix-list:"+pl, "in")
			rm := "RM-EXPORT"
			c.Upsert(confmodel.NewStanza(confmodel.TypeRouteMap, rm).
				Set("entry:10", "permit match:"+pl))
			s.Set("route-map:"+rm, "static")
		}
	}
	if pr.useOSPF {
		area := fmt.Sprintf("%d", r.Intn(2))
		c.Upsert(confmodel.NewStanza(confmodel.TypeOSPF, "1").
			Set("area", area).
			Set(fmt.Sprintf("network:10.%d.0.0/16", pr.index%200), area))
	}
}

// wireBGP connects the network's BGP speakers into peering sessions
// (neighbor statements pointing at other routers' management IPs), forming
// the adjacencies routing-instance extraction discovers. Most networks
// wire one chain; larger ones form several disjoint instances (the paper
// observes 1 to >20 BGP instances per network).
func (st *netState) wireBGP() {
	if !st.profile.useBGP {
		return
	}
	var speakers []*netmodel.Device
	for _, d := range st.devices {
		if d.Role == netmodel.RoleRouter {
			if len(st.configs[d.Name].OfType(confmodel.TypeBGP)) > 0 {
				speakers = append(speakers, d)
			}
		}
	}
	if len(speakers) < 2 {
		return
	}
	// Partition speakers into 1..k chains.
	k := 1 + st.r.Intn(len(speakers))
	if k > 4 {
		k = 4
	}
	for i := 1; i < len(speakers); i++ {
		if i%((len(speakers)+k-1)/k) == 0 {
			continue // chain break: starts a new instance
		}
		a, b := speakers[i-1], speakers[i]
		for _, s := range st.configs[a.Name].OfType(confmodel.TypeBGP) {
			s.Set("neighbor:"+b.MgmtIP, s.Get("local-as"))
		}
		for _, s := range st.configs[b.Name].OfType(confmodel.TypeBGP) {
			s.Set("neighbor:"+a.MgmtIP, s.Get("local-as"))
		}
	}
}
