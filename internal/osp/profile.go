package osp

import (
	"fmt"
	"math"

	"mpa/internal/netmodel"
	"mpa/internal/rng"
)

// modelCatalog lists the hardware models per vendor, ordered by
// popularity (Zipf-ranked). Per the paper's characterization, networks
// contain up to 25 distinct models across up to 6 vendors; two vendors
// with a deep catalog reproduce the heterogeneity range.
var modelCatalog = map[netmodel.Vendor][]string{
	netmodel.VendorCisco: {
		"c-n9372", "c-3850", "c-n3064", "c-6509", "c-4948", "c-asr1k",
		"c-n7700", "c-2960", "c-asa5585", "c-csm", "c-n5548", "c-9336",
		"c-isr4451", "c-fpr2110", "c-ace30",
	},
	netmodel.VendorJuniper: {
		"j-qfx5100", "j-ex4300", "j-mx240", "j-srx1500", "j-ex9208",
		"j-qfx10002", "j-mx80", "j-srx345", "j-ex3400", "j-ptx1000",
	},
}

// firmwareCatalog lists firmware versions per vendor, newest last.
var firmwareCatalog = map[netmodel.Vendor][]string{
	netmodel.VendorCisco:   {"12.2(33)", "15.0(2)", "15.2(4)", "16.6.4", "16.9.3"},
	netmodel.VendorJuniper: {"12.3R12", "14.1X53", "15.1R7", "17.3R3", "18.4R2"},
}

// serviceCatalog names the workloads networks host (paper: O(100)
// services).
func serviceName(i int) string { return fmt.Sprintf("svc-%03d", i) }

const serviceCount = 120

// changeKind enumerates the generator's event templates; each maps to one
// or more stanza mutations of a characteristic vendor-agnostic type.
type changeKind int

const (
	ckInterfaceEdit changeKind = iota
	ckVLANAdd
	ckVLANEdit
	ckACLEdit
	ckPoolUpdate
	ckUserChange
	ckRouterChange
	ckMgmtChange // snmp / ntp / logging
	ckQoSChange
	ckSflowChange
	ckDHCPRelayChange
	ckPolicyChange // prefix-list / route-map
	numChangeKinds
)

// profile holds a network's latent traits: the generator-side ground truth
// the inference pipeline must rediscover from raw data.
type profile struct {
	index        int
	name         string
	interconnect bool
	services     []string

	deviceCount int
	// vendorBias is the probability a device is Cisco.
	vendorBias float64
	// modelSpread controls how many catalog models the network draws from
	// (Zipf exponent; lower = more heterogeneous).
	modelSpread float64
	// middlebox fractions.
	hasMiddlebox bool

	// Data-plane / control-plane usage.
	vlanCount   int
	useBGP      bool
	useOSPF     bool
	useSTP      bool
	useLAG      bool
	useUDLD     bool
	useDHCPR    bool
	mstpRegions int
	// lagProb is the per-device probability of LAG configuration, and
	// vlanCarry the base fraction of the network's VLANs a device
	// carries; both are per-network latents so that LAG-group counts and
	// VLAN sharing are not mechanical functions of network size.
	lagProb   float64
	vlanCarry float64
	// editRate is the mean number of extra config commits per device per
	// event: organizations differ in commit granularity (many small
	// commits vs one batched commit), so the per-device change count is
	// not a fixed multiple of the event count across networks.
	editRate float64

	// Operational traits.
	eventRate       float64 // mean change events per month
	autoProp        float64 // probability an event is automated
	devicesPerEvent float64 // mean extra devices per event
	kindWeights     []float64
	scriptUnderUser float64 // fraction of automated events run under a
	// personal login (the paper's modality under-count)
}

// newProfile draws a network profile. r must be the network's private
// stream.
func newProfile(idx int, p Params, r *rng.RNG) *profile {
	pr := &profile{
		index: idx,
		name:  fmt.Sprintf("net%03d", idx),
	}
	// ~5% of networks are pure interconnects hosting no workloads; 81% of
	// the rest host exactly one workload (Appendix A.1).
	pr.interconnect = r.Bool(0.05)
	if !pr.interconnect {
		n := 1
		if !r.Bool(0.81) {
			n = r.IntBetween(2, 4)
		}
		for i := 0; i < n; i++ {
			pr.services = append(pr.services, serviceName(r.Intn(serviceCount)))
		}
	}

	// Size: long-tailed, median ~10 devices, O(10K) total across 850
	// networks, tail beyond 300 (Fig 12(a)).
	pr.deviceCount = int(math.Round(r.LogNormal(2.2, 1.45)))
	if pr.deviceCount < 2 {
		pr.deviceCount = 2
	}
	if pr.deviceCount > 450 {
		pr.deviceCount = 450
	}

	// Vendor mix: ~81% of networks are multi-vendor.
	if r.Bool(0.19) {
		pr.vendorBias = 1 // single vendor (Cisco)
		if r.Bool(0.4) {
			pr.vendorBias = 0 // single vendor (Juniper)
		}
	} else {
		pr.vendorBias = 0.45 + 0.4*r.Float64() // mixed, Cisco-leaning
	}
	pr.modelSpread = 1.5 + 1.8*r.Float64()
	pr.hasMiddlebox = r.Bool(0.71)

	// Data/control-plane usage (Fig 11(b), 11(c), 11(e)): everyone uses
	// VLAN + at least one more L2 protocol; 86% BGP, 31% OSPF.
	pr.vlanCount = int(math.Round(r.LogNormal(2.6, 1.1)))
	if pr.vlanCount < 1 {
		pr.vlanCount = 1
	}
	if pr.vlanCount > 400 {
		pr.vlanCount = 400
	}
	pr.useBGP = r.Bool(0.86)
	pr.useOSPF = r.Bool(0.31)
	pr.useSTP = r.Bool(0.9)
	pr.useLAG = r.Bool(0.6)
	pr.useUDLD = r.Bool(0.35)
	pr.useDHCPR = r.Bool(0.4)
	pr.mstpRegions = 1 + r.Intn(2)
	pr.lagProb = 0.15 + 0.75*r.Float64()
	pr.vlanCarry = 0.25 + 0.6*r.Float64()
	pr.editRate = r.LogNormal(0.0, 0.8) // median 1 extra commit, long tail

	// Operational traits (Fig 12): the change-event rate is log-normal
	// with 10th/90th percentiles near 3/34 and is correlated with network
	// size (the paper's Fig 12(a): Pearson 0.64 between monthly changes
	// and device count), though several large networks change rarely and
	// some small ones churn, via the independent noise term.
	sizeFactor := 0.45 * math.Log(float64(pr.deviceCount)/12.0)
	pr.eventRate = r.LogNormal(math.Log(p.MeanEventsPerMonth)+sizeFactor, 1.0)
	if pr.eventRate > 150 {
		pr.eventRate = 150
	}
	pr.autoProp = clamp01(r.Normal(0.45, 0.22))
	pr.devicesPerEvent = 0.25 + r.Exponential(0.45) // mean extra devices
	pr.scriptUnderUser = 0.05
	pr.kindWeights = drawKindWeights(pr, r)
	return pr
}

// drawKindWeights draws the network's change-type mix. Base weights follow
// Fig 12(c): interface changes most common, then pool (where load
// balancers exist), ACL, user, router; each network perturbs the base so
// the mix is diverse (e.g. ~5% of networks make mostly router changes).
func drawKindWeights(pr *profile, r *rng.RNG) []float64 {
	base := make([]float64, numChangeKinds)
	base[ckInterfaceEdit] = 3.0
	base[ckVLANAdd] = 0.7
	base[ckVLANEdit] = 0.8
	base[ckACLEdit] = 1.4
	base[ckPoolUpdate] = 0
	if pr.hasMiddlebox {
		base[ckPoolUpdate] = 2.0
	}
	base[ckUserChange] = 1.0
	base[ckRouterChange] = 0.5
	if r.Bool(0.05) {
		base[ckRouterChange] = 6 // router-heavy minority (Fig 12(c))
	}
	base[ckMgmtChange] = 0.6
	base[ckQoSChange] = 0.3
	base[ckSflowChange] = 0.3
	base[ckDHCPRelayChange] = 0.25
	base[ckPolicyChange] = 0.35
	// Multiplicative jitter per kind.
	for i := range base {
		base[i] *= math.Exp(r.Normal(0, 0.5))
	}
	return base
}

// kindAutomationBias returns the relative likelihood a change of the given
// kind is automated. Pool changes are the most automated (77% of networks
// automate more than half of them), and sflow/QoS are the most frequently
// automated types overall (Appendix A.2).
func kindAutomationBias(k changeKind) float64 {
	switch k {
	case ckPoolUpdate:
		return 2.2
	case ckSflowChange, ckQoSChange:
		return 2.6
	case ckACLEdit:
		return 1.4
	case ckInterfaceEdit:
		return 1.1
	case ckRouterChange:
		return 0.4
	default:
		return 0.8
	}
}

func clamp01(v float64) float64 {
	if v < 0.02 {
		return 0.02
	}
	if v > 0.95 {
		return 0.95
	}
	return v
}

// rolePlan returns the role of each device given the network size. Every
// network gets switches; larger networks add routers; 71% of networks
// include at least one middlebox; 86% have devices in multiple roles.
func rolePlan(pr *profile, r *rng.RNG) []netmodel.Role {
	n := pr.deviceCount
	roles := make([]netmodel.Role, 0, n)
	routers := 0
	if n >= 3 {
		// Stochastic role plan: the router/middlebox share varies across
		// networks rather than being a fixed function of size.
		routers = 1 + r.Poisson(float64(n)/12)
		if routers > 8 {
			routers = 8
		}
	}
	if pr.useBGP && routers == 0 {
		routers = 1 // a BGP-speaking network needs a router
	}
	mboxes := 0
	if pr.hasMiddlebox {
		mboxes = 1 + r.Poisson(float64(n)/15)
		if mboxes > 6 {
			mboxes = 6
		}
	}
	for i := 0; i < routers && len(roles) < n; i++ {
		roles = append(roles, netmodel.RoleRouter)
	}
	mboxKinds := []netmodel.Role{netmodel.RoleFirewall, netmodel.RoleLoadBalancer, netmodel.RoleADC}
	for i := 0; i < mboxes && len(roles) < n; i++ {
		roles = append(roles, mboxKinds[r.Intn(len(mboxKinds))])
	}
	for len(roles) < n {
		roles = append(roles, netmodel.RoleSwitch)
	}
	r.Shuffle(len(roles), func(i, j int) { roles[i], roles[j] = roles[j], roles[i] })
	return roles
}
