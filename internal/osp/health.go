package osp

import (
	"math"

	"mpa/internal/rng"
)

// MonthTruth is the generator-side record of one network-month's
// operational activity — the ground truth the health model consumes and
// the inference pipeline must rediscover from raw archive data.
type MonthTruth struct {
	Events          int
	DeviceChanges   int // per-device configuration changes (snapshots)
	DevicesChanged  int // distinct devices changed
	ChangeTypes     int // distinct vendor-agnostic stanza types changed
	DevicesPerEvent float64
	FracACLEvents   float64 // fraction of events touching an ACL stanza
	FracIfaceEvents float64
	FracRouterEvts  float64
	FracMboxEvents  float64 // fraction of events touching a middlebox
	FracAutomated   float64
}

// HealthWeights parameterizes the ground-truth ticket model. Monthly
// tickets are Poisson with rate
//
//	lambda = exp(Base + sum_k w_k * g(x_k) + Normal(0, Noise))
//
// where g is a saturating square root for count-valued practices —
// sqrt(x) capped at a per-practice level — and identity for fractions.
// The saturation embodies the paper's own causal finding (§5.2.5):
// increasing change events beyond a certain level does not cause further
// ticket growth, so only the low-bin comparisons carry a causal signal.
//
// The causal structure mirrors the paper's Table 7 findings: devices,
// change events, change types, VLANs, models, roles, devices-per-event and
// ACL-change fraction have direct monotone effects; interface-change
// fraction has a hump-shaped effect peaking at moderate values (Figure
// 4(c) — causality for it is NOT established in Table 7, and its weight
// here is zero by default, its observed relationship arising through
// confounding with the event mix); intra-device complexity has NO direct
// effect at all — its strong statistical dependence must arise purely
// through its correlation with VLANs, devices, and interfaces; middlebox
// changes have a small effect despite high operator concern (most are
// load-balancer pool tweaks).
type HealthWeights struct {
	Base            float64
	Devices         float64
	Events          float64
	ChangeTypes     float64
	VLANs           float64
	Models          float64
	Roles           float64
	DevicesPerEvent float64
	ACLFrac         float64
	IfaceHump       float64
	MboxFrac        float64
	Noise           float64
	// MaintenanceRate is the monthly rate of planned-maintenance tickets
	// (excluded from the health metric by the analytics pipeline).
	MaintenanceRate float64
}

// DefaultHealthWeights returns the calibrated weights. The calibration
// targets the paper's class skew (Figure 9): ~65% of network-months
// healthy at the 2-class boundary (<=1 ticket) and ~73% excellent at the
// 5-class boundary (<=2), with a poor class of roughly 2-3%.
func DefaultHealthWeights() HealthWeights {
	return HealthWeights{
		Base:            -8.5,
		Devices:         0.32,
		Events:          0.90,
		ChangeTypes:     0.35,
		VLANs:           0.42,
		Models:          0.45,
		Roles:           0.60,
		DevicesPerEvent: 0.20,
		ACLFrac:         2.80,
		IfaceHump:       0.0,
		MboxFrac:        0.06,
		Noise:           0.30,
		MaintenanceRate: 0.4,
	}
}

// satSqrt is the saturating square root: sqrt(x) capped at cap.
func satSqrt(x, cap float64) float64 {
	v := math.Sqrt(x)
	if v > cap {
		return cap
	}
	return v
}

// hump is the non-monotone response to interface-change fraction: zero at
// the extremes, maximal at 0.5 (Figure 4(c)'s inverted-U shape).
func hump(f float64) float64 {
	v := 1 - 2*math.Abs(f-0.5)
	if v < 0 {
		return 0
	}
	return v
}

// Lambda returns the ground-truth monthly ticket rate for a network with
// the given design traits and operational month.
func (w HealthWeights) Lambda(devices, vlans, models, roles int, mt MonthTruth, r *rng.RNG) float64 {
	score := w.Base +
		w.Devices*satSqrt(float64(devices), 6) +
		w.Events*satSqrt(float64(mt.Events), 4) +
		w.ChangeTypes*satSqrt(float64(mt.ChangeTypes), 4) +
		w.VLANs*satSqrt(float64(vlans), 7) +
		w.Models*satSqrt(float64(models), 5) +
		w.Roles*math.Sqrt(float64(roles)) +
		w.DevicesPerEvent*satSqrt(mt.DevicesPerEvent, 2.5) +
		w.ACLFrac*mt.FracACLEvents +
		w.IfaceHump*hump(mt.FracIfaceEvents) +
		w.MboxFrac*mt.FracMboxEvents
	if w.Noise > 0 {
		score += r.Normal(0, w.Noise)
	}
	lambda := math.Exp(score)
	const maxLambda = 60 // keep the Poisson tail physical
	if lambda > maxLambda {
		return maxLambda
	}
	return lambda
}
