package osp

import "testing"

// TestGenerationPrefixStable pins the property the streaming-replay
// tooling relies on (mpa watch -replay, mpa nextmonth): regenerating the
// same organization with a longer window reproduces the shorter window's
// records exactly and only appends later ones. A producer can therefore
// emit "the next month" for a running framework from nothing but the
// seed and the current window.
func TestGenerationPrefixStable(t *testing.T) {
	p1 := Small(1)
	p1.Networks = 12
	p1.End = p1.Start.Add(3)
	p2 := p1
	p2.End = p1.Start.Add(5)
	a, b := Generate(p1), Generate(p2)
	cut := p1.End.End()

	for _, dev := range a.Archive.Devices() {
		ha, hb := a.Archive.Snapshots(dev), b.Archive.Snapshots(dev)
		if len(hb) < len(ha) {
			t.Fatalf("device %s: extended run has fewer snapshots (%d < %d)", dev, len(hb), len(ha))
		}
		for i, s := range ha {
			if !s.Time.Equal(hb[i].Time) || s.Text != hb[i].Text || s.Login != hb[i].Login {
				t.Fatalf("device %s diverges at snapshot %d (%v vs %v)", dev, i, s.Time, hb[i].Time)
			}
		}
		for _, s := range hb[len(ha):] {
			if s.Time.Before(cut) {
				t.Fatalf("device %s: extended run has an extra snapshot inside the prefix at %v", dev, s.Time)
			}
		}
	}

	prefixTickets := 0
	for _, tk := range b.Tickets.All() {
		if tk.Opened.Before(cut) {
			prefixTickets++
		}
	}
	if prefixTickets != len(a.Tickets.All()) {
		t.Fatalf("ticket prefix differs: %d tickets before %s in extended run, %d in base run",
			prefixTickets, p1.End, len(a.Tickets.All()))
	}
}
