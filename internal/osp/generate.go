package osp

import (
	"fmt"
	"log/slog"
	"sort"
	"time"

	"mpa/internal/ciscoios"
	"mpa/internal/confmodel"
	"mpa/internal/junos"
	"mpa/internal/months"
	"mpa/internal/netmodel"
	"mpa/internal/nms"
	"mpa/internal/obs"
	"mpa/internal/par"
	"mpa/internal/rng"
	"mpa/internal/ticketing"
)

// OSP is a fully generated online service provider: the three raw data
// sources MPA consumes (paper §2.1) plus the generator's ground truth for
// validation.
type OSP struct {
	Params    Params
	Inventory *netmodel.Inventory
	Archive   *nms.Archive
	Tickets   *ticketing.Log
	// Truth records, per network and month, the operational activity the
	// generator actually performed. The analytics pipeline never reads
	// it; tests use it to validate inference and causal recovery.
	Truth map[string]map[months.Month]MonthTruth
	// Traits records per-network latent traits for validation.
	Traits map[string]Traits
}

// Traits is the exported view of a network's latent generator profile.
type Traits struct {
	EventRate       float64
	AutomationProp  float64
	DevicesPerEvent float64
	VLANCount       int
	UsesBGP         bool
	UsesOSPF        bool
	Interconnect    bool
}

var (
	ciscoDialect confmodel.Dialect = ciscoios.Dialect{}
	junosDialect confmodel.Dialect = junos.Dialect{}
)

func dialectFor(v netmodel.Vendor) confmodel.Dialect {
	if v == netmodel.VendorCisco {
		return ciscoDialect
	}
	return junosDialect
}

// Generate synthesizes an OSP from the given parameters. The same
// parameters produce an identical OSP.
func Generate(p Params) *OSP { return GenerateObs(p, nil) }

// netStreams carries one network's private RNG streams. The streams are
// forked from the root generator sequentially — Fork advances the parent
// state, so the fork order is part of the deterministic contract — after
// which every draw a network makes is private, and networks can be
// generated in any order or concurrently.
type netStreams struct {
	r *rng.RNG
	// tickets is a private stream so that health-model changes never
	// perturb the generated topology or change history.
	tickets *rng.RNG
}

// netResult is one network's generated output, built against private
// archive and ticket logs so network generation can run concurrently and
// be merged in index order afterwards.
type netResult struct {
	name    string
	network *netmodel.Network
	traits  Traits
	truth   map[months.Month]MonthTruth
	archive *nms.Archive
	tickets *ticketing.Log
	devices int
	events  int
}

// GenerateObs is Generate with observability: generation runs under a
// "generate" span (a child per network) and maintains the osp.* counter
// family. A nil parent skips the span tree but keeps the counters.
//
// Networks are generated on up to p.Workers goroutines (0 = process
// default) and merged in network-index order; the resulting OSP is
// byte-identical at every worker count.
func GenerateObs(p Params, parent *obs.Span) *OSP {
	sp := parent.Start("generate")
	defer sp.End()
	log := obs.Logger()
	root := rng.New(p.Seed)
	out := &OSP{
		Params:    p,
		Inventory: &netmodel.Inventory{},
		Archive:   nms.NewArchive(),
		Tickets:   ticketing.NewLog(),
		Truth:     map[string]map[months.Month]MonthTruth{},
		Traits:    map[string]Traits{},
	}
	for _, acct := range specialAccounts {
		out.Archive.MarkSpecialAccount(acct)
	}

	window := p.Months()
	streams := make([]netStreams, p.Networks)
	for idx := range streams {
		r := root.Fork(uint64(idx) + 1)
		streams[idx] = netStreams{r: r, tickets: r.Fork(0x71c7)}
	}

	pt := obs.StartProgress("generate", int64(p.Networks))
	results, _ := par.Map(p.Workers, streams, func(idx int, ns netStreams) (*netResult, error) {
		res := generateNetwork(p, idx, ns, window, sp, log)
		pt.Add(1)
		return res, nil
	})
	pt.Done()

	// Merge in network-index order — the exact order the sequential loop
	// appended inventory entries and filed tickets in.
	totalSnaps, totalTickets := 0, 0
	for _, res := range results {
		out.Inventory.Networks = append(out.Inventory.Networks, res.network)
		out.Traits[res.name] = res.traits
		out.Truth[res.name] = res.truth
		out.Archive.Merge(res.archive)
		for _, t := range res.tickets.All() {
			out.Tickets.File(*t) // File reassigns the global sequential ID
		}
		snaps, tickets := res.archive.SnapshotCount(), res.tickets.Len()
		totalSnaps += snaps
		totalTickets += tickets
		sp.Count("networks", 1)
		sp.Count("devices", float64(res.devices))
		sp.Count("snapshots", float64(snaps))
		sp.Count("tickets", float64(tickets))
		sp.Count("events", float64(res.events))
	}
	obs.GetCounter("osp.networks").Add(int64(p.Networks))
	obs.GetCounter("osp.snapshots").Add(int64(totalSnaps))
	obs.GetCounter("osp.tickets").Add(int64(totalTickets))
	log.Info("osp generated",
		"networks", p.Networks, "months", len(window),
		"snapshots", totalSnaps, "tickets", totalTickets, "seed", p.Seed)
	return out
}

// generateNetwork synthesizes one network — profile, inventory, initial
// import, monthly change events, and tickets — entirely from its private
// RNG streams into private archive and ticket logs.
func generateNetwork(p Params, idx int, ns netStreams, window []months.Month, parent *obs.Span, log *slog.Logger) *netResult {
	r := ns.r
	pr := newProfile(idx, p, r)
	nsp := parent.Start(pr.name)
	defer nsp.End()
	st := buildNetwork(pr, r)
	res := &netResult{
		name:    pr.name,
		network: st.network,
		archive: nms.NewArchive(),
		tickets: ticketing.NewLog(),
		truth:   map[months.Month]MonthTruth{},
		devices: len(st.devices),
		traits: Traits{
			EventRate:       pr.eventRate,
			AutomationProp:  pr.autoProp,
			DevicesPerEvent: pr.devicesPerEvent,
			VLANCount:       pr.vlanCount,
			UsesBGP:         pr.useBGP,
			UsesOSPF:        pr.useOSPF,
			Interconnect:    pr.interconnect,
		},
	}
	for _, acct := range specialAccounts {
		res.archive.MarkSpecialAccount(acct)
	}

	// Initial import: one snapshot per device at the window start.
	importTime := p.Start.Start()
	lastSnap := map[string]time.Time{}
	for _, dev := range st.devices {
		recordSnapshot(res.archive, st, dev, importTime, "initial-import", lastSnap)
	}

	for _, m := range window {
		mt := simulateMonth(res.archive, st, m, lastSnap)
		res.truth[m] = mt
		res.events += mt.Events
		emitTickets(res.tickets, p.Health, st, m, mt, ns.tickets)
	}

	nsp.Count("devices", float64(res.devices))
	nsp.Count("snapshots", float64(res.archive.SnapshotCount()))
	nsp.Count("tickets", float64(res.tickets.Len()))
	nsp.Count("events", float64(res.events))
	log.Debug("network generated",
		"network", pr.name, "devices", res.devices,
		"snapshots", res.archive.SnapshotCount(), "tickets", res.tickets.Len(),
		"events", res.events)
	return res
}

// plannedEvent is one change event scheduled within a month.
type plannedEvent struct {
	start time.Time
	kind  changeKind
	count int // devices to change
}

// simulateMonth applies a month of operational activity to the network,
// archiving snapshots into a, and returns the ground-truth record.
func simulateMonth(a *nms.Archive, st *netState, m months.Month, lastSnap map[string]time.Time) MonthTruth {
	r := st.r
	pr := st.profile
	nEvents := r.Poisson(pr.eventRate)
	monthStart := m.Start()
	monthSpan := m.End().Sub(monthStart)

	// Schedule events at sorted random times so configuration state
	// evolves chronologically.
	// Leave headroom at the end of the month so a long edit session's
	// snapshots cannot spill into the next month (the ground truth
	// attributes every change to its event's month, and the inference
	// pipeline must agree exactly).
	const sessionHeadroom = 6 * time.Hour
	usableSpan := monthSpan - sessionHeadroom
	plans := make([]plannedEvent, 0, nEvents)
	for i := 0; i < nEvents; i++ {
		kind := changeKind(r.Choice(pr.kindWeights))
		count := 1 + r.Poisson(pr.devicesPerEvent)
		plans = append(plans, plannedEvent{
			start: monthStart.Add(time.Duration(r.Float64() * float64(usableSpan))),
			kind:  kind,
			count: count,
		})
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].start.Before(plans[j].start) })

	var mt MonthTruth
	devicesChanged := map[string]bool{}
	monthTypes := map[confmodel.Type]bool{}
	totalEventDevices := 0
	autoEvents := 0
	for _, plan := range plans {
		muts := st.applyEvent(plan.kind, plan.count)
		if len(muts) == 0 {
			continue
		}

		// Event modality: automated with probability scaled by the kind's
		// automation bias; a small share of automated events run under a
		// personal login and are therefore misclassified by the NMS.
		pAuto := pr.autoProp * kindAutomationBias(plan.kind)
		if pAuto > 0.97 {
			pAuto = 0.97
		}
		automated := r.Bool(pAuto)
		loggedAuto := false
		login := operatorPool[r.Intn(len(operatorPool))]
		if automated && !r.Bool(pr.scriptUnderUser) {
			// The remainder are scripts under a personal account, counted
			// manual by the NMS's conservative rule.
			login = specialAccounts[r.Intn(len(specialAccounts))]
			loggedAuto = true
		}

		// Record snapshots, spacing device changes a few tens of seconds
		// apart so the 5-minute grouping heuristic recovers the event.
		// A device's edit session often triggers several snapshots (the
		// NMS snapshots on every syslog config-change alert), so each
		// device contributes a variable number of configuration changes
		// per event — which is why the paper's per-device change count
		// (O1) is a distinct practice from its event count (O4). Only
		// mutations that actually changed the configuration count.
		typesTouched := map[confmodel.Type]bool{}
		touchesMbox := false
		eventDevices := 0
		t := plan.start
		for _, mut := range muts {
			deviceChanged := false
			edits := 1 + r.Poisson(pr.editRate)
			for e := 0; e < edits; e++ {
				extraTypes := mut.types
				if e > 0 {
					// Follow-up edits within the session touch the same
					// construct family (a VLAN addition is followed by
					// VLAN tweaks, not further additions).
					kind := plan.kind
					if kind == ckVLANAdd {
						kind = ckVLANEdit
					}
					extraTypes = st.mutateDevice(mut.device, kind, 0)
				}
				changed := recordSnapshot(a, st, mut.device, t, login, lastSnap)
				t = t.Add(time.Duration(10+r.Intn(90)) * time.Second)
				if !changed {
					continue
				}
				deviceChanged = true
				mt.DeviceChanges++
				for _, ty := range extraTypes {
					typesTouched[ty] = true
				}
			}
			if !deviceChanged {
				continue
			}
			eventDevices++
			devicesChanged[mut.device.Name] = true
			if mut.device.Role.IsMiddlebox() {
				touchesMbox = true
			}
		}
		if eventDevices == 0 {
			continue // every mutation was a no-op: no event occurred
		}
		mt.Events++
		totalEventDevices += eventDevices
		if loggedAuto {
			autoEvents++
		}
		if typesTouched[confmodel.TypeACL] {
			mt.FracACLEvents++
		}
		if typesTouched[confmodel.TypeInterface] {
			mt.FracIfaceEvents++
		}
		if typesTouched[confmodel.TypeBGP] || typesTouched[confmodel.TypeOSPF] {
			mt.FracRouterEvts++
		}
		if touchesMbox {
			mt.FracMboxEvents++
		}
		for ty := range typesTouched {
			monthTypes[ty] = true
		}
	}
	mt.DevicesChanged = len(devicesChanged)
	if mt.Events > 0 {
		mt.DevicesPerEvent = float64(totalEventDevices) / float64(mt.Events)
		mt.FracACLEvents /= float64(mt.Events)
		mt.FracIfaceEvents /= float64(mt.Events)
		mt.FracRouterEvts /= float64(mt.Events)
		mt.FracMboxEvents /= float64(mt.Events)
		mt.FracAutomated = float64(autoEvents) / float64(mt.Events)
	}
	mt.ChangeTypes = len(monthTypes)
	return mt
}

// recordSnapshot renders the device's current configuration and archives
// it, enforcing per-device time monotonicity. It reports whether the
// configuration actually differs from the device's previous snapshot —
// a mutation may be a no-op (e.g. an edit that re-set an option to its
// existing value), which the NMS would not count as a change either.
func recordSnapshot(a *nms.Archive, st *netState, dev *netmodel.Device, t time.Time, login string, lastSnap map[string]time.Time) bool {
	if last, ok := lastSnap[dev.Name]; ok && !t.After(last) {
		t = last.Add(time.Second)
	}
	lastSnap[dev.Name] = t
	cfg := st.configs[dev.Name]
	fp := cfg.Fingerprint()
	changed := true
	if hist := a.Snapshots(dev.Name); len(hist) > 0 && hist[len(hist)-1].Fingerprint == fp {
		changed = false
	}
	text := dialectFor(dev.Vendor).Render(cfg)
	snap := &nms.Snapshot{
		Device:      dev.Name,
		Time:        t,
		Login:       login,
		Text:        text,
		Fingerprint: fp,
	}
	if err := a.Record(snap); err != nil {
		// Monotonicity is enforced above; a failure here is a generator bug.
		panic(fmt.Sprintf("osp: snapshot record failed: %v", err))
	}
	return changed
}

var symptoms = []string{
	"packet-loss", "high-latency", "link-down", "device-unreachable",
	"bgp-flap", "vip-unhealthy", "config-push-failed", "cpu-high",
}

// emitTickets draws the month's tickets from the ground-truth health model
// w and files them into log.
func emitTickets(log *ticketing.Log, w HealthWeights, st *netState, m months.Month, mt MonthTruth, r *rng.RNG) {
	pr := st.profile
	models := len(st.network.Models())
	roles := len(st.network.Roles())
	lambda := w.Lambda(len(st.devices), len(st.vlanIDs), models, roles, mt, r)
	n := r.Poisson(lambda)
	monthStart := m.Start()
	span := m.End().Sub(monthStart)
	for i := 0; i < n; i++ {
		opened := monthStart.Add(time.Duration(r.Float64() * float64(span)))
		resolve := opened.Add(time.Duration(1+r.Intn(72)) * time.Hour)
		if r.Bool(0.1) {
			// Tickets sometimes are not marked resolved until well after
			// the fix (paper §2.2) — inflate the recorded latency.
			resolve = resolve.Add(time.Duration(r.Intn(14*24)) * time.Hour)
		}
		origin := ticketing.OriginAlarm
		if r.Bool(0.25) {
			origin = ticketing.OriginUserReport
		}
		devs := []string{st.devices[r.Intn(len(st.devices))].Name}
		if r.Bool(0.3) && len(st.devices) > 1 {
			devs = append(devs, st.devices[r.Intn(len(st.devices))].Name)
		}
		log.File(ticketing.Ticket{
			Network:  pr.name,
			Devices:  devs,
			Origin:   origin,
			Opened:   opened,
			Resolved: resolve,
			Symptom:  symptoms[r.Intn(len(symptoms))],
			Notes:    "auto-generated diagnosis trail",
		})
	}
	// Planned maintenance (excluded from health by the pipeline).
	for i := 0; i < r.Poisson(w.MaintenanceRate); i++ {
		opened := monthStart.Add(time.Duration(r.Float64() * float64(span)))
		log.File(ticketing.Ticket{
			Network:  pr.name,
			Origin:   ticketing.OriginMaintenance,
			Opened:   opened,
			Resolved: opened.Add(4 * time.Hour),
			Symptom:  "planned-maintenance",
		})
	}
}
