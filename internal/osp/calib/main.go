// Command calib is a development tool: it generates a mid-scale OSP and
// prints the calibration targets — health-class skew (Figure 9), the MI
// ranking (Table 3), and 1:2 causal outcomes (Table 7).
package main

import (
	"flag"
	"fmt"
	"time"

	"mpa/internal/dataset"
	"mpa/internal/months"
	"mpa/internal/osp"
	"mpa/internal/practices"
	"mpa/internal/qed"
	"mpa/internal/stats"
	"mpa/internal/ticketing"
)

func main() {
	networks := flag.Int("networks", 400, "")
	nMonths := flag.Int("months", 12, "")
	seed := flag.Uint64("seed", 1, "")
	causal := flag.Bool("causal", true, "run causal analysis")
	flag.Parse()

	p := osp.Default(*seed)
	p.Networks = *networks
	p.End = p.Start.Add(*nMonths - 1)
	t0 := time.Now()
	o := osp.Generate(p)
	fmt.Printf("generate %v: %d devices, %d snapshots (%dMB), %d tickets\n",
		time.Since(t0).Round(time.Second), o.Inventory.DeviceCount(),
		o.Archive.SnapshotCount(), o.Archive.TotalBytes()>>20, o.Tickets.Len())

	engine := practices.NewEngine(o.Inventory, o.Archive)
	analysis, err := engine.Analyze(p.Months())
	if err != nil {
		panic(err)
	}
	d := dataset.Build(analysis, o.Tickets)
	fmt.Println(d)

	skew(d, o.Tickets, p.Months())
	var hw []float64
	for _, mas := range analysis {
		hw = append(hw, mas[0].Metrics[practices.MetricHardwareEntropy])
	}
	fmt.Printf("hw entropy: median=%.2f fracAbove0.67=%.2f\n",
		stats.Median(hw), 1-stats.CDFAt(hw, 0.67))
	ranked := miRank(d, p.Months())
	if !*causal {
		return
	}
	fmt.Println("causal 1:2 for top 10:")
	for i, m := range ranked {
		if i >= 10 {
			break
		}
		res, err := qed.Run(d, m, qed.DefaultConfig(practices.MetricNames))
		if err != nil {
			panic(err)
		}
		pt := res.Points[0]
		fmt.Printf("  %-26s pairs=%-5d imbal=%-2d balanced=%-5v p=%.2e causal=%v\n",
			m, pt.Pairs, len(pt.Imbalanced), pt.Balanced, pt.PValue, pt.Causal)
	}
}

func skew(d *dataset.Dataset, log *ticketing.Log, _ []months.Month) {
	counts := make([]int, 5)
	healthy := 0
	for _, c := range d.Cases {
		counts[dataset.Class5(c.Tickets)]++
		if dataset.Class2(c.Tickets) == 0 {
			healthy++
		}
	}
	n := float64(d.Len())
	fmt.Printf("skew: healthy=%.1f%% excellent=%.1f%% good=%.1f%% mod=%.1f%% poor=%.1f%% vp=%.1f%%\n",
		100*float64(healthy)/n, 100*float64(counts[0])/n, 100*float64(counts[1])/n,
		100*float64(counts[2])/n, 100*float64(counts[3])/n, 100*float64(counts[4])/n)
}

func miRank(d *dataset.Dataset, window []months.Month) []string {
	binned := d.Bin(10)
	byMonth := map[months.Month][]int{}
	for i, c := range d.Cases {
		byMonth[c.Month] = append(byMonth[c.Month], i)
	}
	type entry struct {
		m  string
		mi float64
	}
	var entries []entry
	for _, metric := range practices.MetricNames {
		var sum float64
		n := 0
		for _, m := range window {
			idx := byMonth[m]
			if len(idx) < 2 {
				continue
			}
			xs := make([]int, len(idx))
			ys := make([]int, len(idx))
			for k, i := range idx {
				xs[k] = binned.Metrics[metric][i]
				ys[k] = binned.Health[i]
			}
			sum += stats.MutualInformation(xs, ys)
			n++
		}
		entries = append(entries, entry{metric, sum / float64(n)})
	}
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			if entries[j].mi > entries[i].mi {
				entries[i], entries[j] = entries[j], entries[i]
			}
		}
	}
	fmt.Println("MI ranking:")
	out := make([]string, 0, len(entries))
	for i, e := range entries {
		if i < 14 {
			fmt.Printf("  %2d. %-26s %.3f\n", i+1, e.m, e.mi)
		}
		out = append(out, e.m)
	}
	return out
}
