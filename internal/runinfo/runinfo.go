// Package runinfo captures one pipeline run as a single diffable JSON
// artifact: the run manifest. A manifest ties a performance number to
// the exact code and configuration that produced it — build info (VCS
// revision, Go version), the run's config (seed, window, workers, cache
// settings), the per-stage span rollup (wall time, allocation,
// counters, cache hits/misses), a snapshot of the whole metric
// registry, runtime/GC statistics, and a SHA-256 digest of every
// experiment report the run produced. Two runs of the same revision and
// config must produce byte-identical report digests; anything else is a
// determinism bug.
//
// # Schema (mpa.run-manifest/v1)
//
//	{
//	  "schema":     "mpa.run-manifest/v1",
//	  "created_at": RFC 3339 timestamp,
//	  "build":      {go_version, module, vcs_revision?, vcs_time?, vcs_dirty?},
//	  "config":     {seed, networks, window_start, window_end, workers,
//	                 cache_enabled, cache_dir?, cache_max_entries?, extra?},
//	  "total_wall_ns": root-span age in nanoseconds,
//	  "stages":     [{name, calls, wall_ns, alloc_bytes, counters?}, ...],
//	  "metrics":    {counters, gauges, histograms, log_histograms?} —
//	                the obs registry,
//	  "runtime":    {gomaxprocs, num_cpu, heap_objects_bytes,
//	                 heap_sys_bytes, total_alloc_bytes, gc_cycles,
//	                 gc_pause_total_ns},
//	  "report_digests": {experiment-id: sha256-hex, ...},
//	  "recorder":   {requests, retained_traces, logs}? — the process
//	                flight recorder (obs.RecorderSnapshot): recent
//	                request/stage summaries, the IDs whose span trees
//	                are retained, and recent Warn/Error log records
//	}
//
// Optional fields marked ? are omitted when empty. Validate enforces the
// invariants the schema promises; cmd/mpa-benchdiff consumes manifests
// (stage wall times) interchangeably with bench.sh baselines.
package runinfo

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"

	"mpa/internal/obs"
)

// Schema identifies the manifest format; bump on incompatible change.
const Schema = "mpa.run-manifest/v1"

// Manifest is one run's record. Build a skeleton with New, fill Config,
// Stages, TotalWallNS, and Reports from the pipeline that ran, then
// Write it.
type Manifest struct {
	Schema      string              `json:"schema"`
	CreatedAt   time.Time           `json:"created_at"`
	Build       BuildInfo           `json:"build"`
	Config      RunConfig           `json:"config"`
	TotalWallNS int64               `json:"total_wall_ns"`
	Stages      []Stage             `json:"stages"`
	Metrics     obs.MetricsSnapshot `json:"metrics"`
	Runtime     RuntimeSnapshot     `json:"runtime"`
	// Reports maps experiment IDs to the SHA-256 hex digest of the
	// rendered report (experiments.Report.Digest). Digests are
	// byte-stable across identical runs.
	Reports map[string]string `json:"report_digests,omitempty"`
	// Recorder snapshots the process flight recorder — recent
	// request/stage summaries, retained-trace IDs, and recent Warn/Error
	// log records — when anything was recorded; absent otherwise.
	Recorder *obs.RecorderSnapshot `json:"recorder,omitempty"`
}

// BuildInfo identifies the binary that ran: Go version and, when the
// binary was built inside a VCS checkout, the revision it was built
// from. Test binaries and `go run` builds usually carry no VCS stamps;
// those fields are simply absent.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	Dirty     bool   `json:"vcs_dirty,omitempty"`
}

// RunConfig records the settings that determine the run's output and
// performance. Extra carries command-level settings (subcommand, scale)
// that have no framework-level equivalent.
type RunConfig struct {
	Seed            uint64            `json:"seed"`
	Networks        int               `json:"networks"`
	WindowStart     string            `json:"window_start"`
	WindowEnd       string            `json:"window_end"`
	Workers         int               `json:"workers"`
	CacheEnabled    bool              `json:"cache_enabled"`
	CacheDir        string            `json:"cache_dir,omitempty"`
	CacheMaxEntries int               `json:"cache_max_entries,omitempty"`
	Extra           map[string]string `json:"extra,omitempty"`
}

// Stage is one pipeline stage's rollup: the per-name merge of the spans
// directly under the root (mpa.PipelineStats).
type Stage struct {
	Name       string             `json:"name"`
	Calls      int                `json:"calls"`
	WallNS     int64              `json:"wall_ns"`
	AllocBytes uint64             `json:"alloc_bytes"`
	Counters   map[string]float64 `json:"counters,omitempty"`
}

// RuntimeSnapshot records process-wide memory and GC state at manifest
// time. HeapSysBytes is the heap memory obtained from the OS — a
// high-water proxy for peak heap, since the runtime rarely returns heap
// spans.
type RuntimeSnapshot struct {
	GoMaxProcs       int    `json:"gomaxprocs"`
	NumCPU           int    `json:"num_cpu"`
	HeapObjectsBytes uint64 `json:"heap_objects_bytes"`
	HeapSysBytes     uint64 `json:"heap_sys_bytes"`
	TotalAllocBytes  uint64 `json:"total_alloc_bytes"`
	GCCycles         uint32 `json:"gc_cycles"`
	GCPauseTotalNS   uint64 `json:"gc_pause_total_ns"`
}

// New returns a manifest stamped with the current time, build info,
// runtime state, and a snapshot of the whole obs metric registry (which
// carries the cache hit/miss counters among everything else). The
// caller fills Config, TotalWallNS, Stages, and Reports.
func New() *Manifest {
	m := &Manifest{
		Schema:    Schema,
		CreatedAt: time.Now().UTC(),
		Build:     CollectBuild(),
		Metrics:   obs.SnapshotMetrics(),
		Runtime:   CollectRuntime(),
	}
	if snap := obs.DefaultRecorder().Snapshot(); len(snap.Requests) > 0 || len(snap.Logs) > 0 {
		m.Recorder = &snap
	}
	return m
}

// CollectBuild reads the binary's build information. Absent VCS stamps
// (test binaries, go run) leave the revision fields empty.
func CollectBuild() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.VCSTime = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}

// CollectRuntime snapshots memory and GC statistics.
func CollectRuntime() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeSnapshot{
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		HeapObjectsBytes: ms.HeapAlloc,
		HeapSysBytes:     ms.HeapSys,
		TotalAllocBytes:  ms.TotalAlloc,
		GCCycles:         ms.NumGC,
		GCPauseTotalNS:   ms.PauseTotalNs,
	}
}

// Validate checks the invariants the schema documents. Read manifests
// (benchdiff inputs, CI artifacts) should be validated before use.
func (m *Manifest) Validate() error {
	if m == nil {
		return fmt.Errorf("runinfo: nil manifest")
	}
	if m.Schema != Schema {
		return fmt.Errorf("runinfo: schema %q, want %q", m.Schema, Schema)
	}
	if m.CreatedAt.IsZero() {
		return fmt.Errorf("runinfo: created_at is zero")
	}
	if m.Build.GoVersion == "" {
		return fmt.Errorf("runinfo: build.go_version is empty")
	}
	if m.TotalWallNS < 0 {
		return fmt.Errorf("runinfo: negative total_wall_ns %d", m.TotalWallNS)
	}
	seen := map[string]bool{}
	for i, st := range m.Stages {
		if st.Name == "" {
			return fmt.Errorf("runinfo: stage %d has no name", i)
		}
		if seen[st.Name] {
			return fmt.Errorf("runinfo: duplicate stage %q", st.Name)
		}
		seen[st.Name] = true
		if st.Calls <= 0 {
			return fmt.Errorf("runinfo: stage %q calls = %d, want > 0", st.Name, st.Calls)
		}
		if st.WallNS < 0 {
			return fmt.Errorf("runinfo: stage %q negative wall_ns", st.Name)
		}
	}
	for id, digest := range m.Reports {
		if len(digest) != 64 {
			return fmt.Errorf("runinfo: report %q digest %q is not sha256 hex", id, digest)
		}
	}
	if m.Recorder != nil {
		for i, req := range m.Recorder.Requests {
			if req.ID == "" {
				return fmt.Errorf("runinfo: recorder request %d has no id", i)
			}
			if req.DurationNS < 0 {
				return fmt.Errorf("runinfo: recorder request %q negative duration_ns", req.ID)
			}
		}
	}
	return nil
}

// Write marshals the manifest as indented JSON and renames it into
// place, so a crashed run never leaves a truncated manifest behind.
func (m *Manifest) Write(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("runinfo: marshal: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*.json")
	if err != nil {
		return fmt.Errorf("runinfo: write: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("runinfo: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runinfo: write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("runinfo: write: %w", err)
	}
	return nil
}

// Read loads and validates a manifest file.
func Read(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runinfo: read: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("runinfo: parse %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}
