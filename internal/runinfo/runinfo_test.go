package runinfo

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mpa/internal/obs"
)

// sample returns a minimal valid manifest.
func sample() *Manifest {
	m := New()
	m.Config = RunConfig{Seed: 1, Networks: 60, WindowStart: "2013-08", WindowEnd: "2014-12"}
	m.TotalWallNS = 12345
	m.Stages = []Stage{
		{Name: "generate", Calls: 1, WallNS: 1000, AllocBytes: 4096,
			Counters: map[string]float64{"networks": 60}},
		{Name: "inference", Calls: 1, WallNS: 2000},
	}
	m.Reports = map[string]string{
		"table2": strings.Repeat("ab", 32),
	}
	return m
}

func TestNewFillsProvenance(t *testing.T) {
	m := New()
	if m.Schema != Schema {
		t.Errorf("Schema = %q, want %q", m.Schema, Schema)
	}
	if m.CreatedAt.IsZero() || time.Since(m.CreatedAt) > time.Minute {
		t.Errorf("CreatedAt = %v, want ~now", m.CreatedAt)
	}
	if m.Build.GoVersion == "" {
		t.Error("Build.GoVersion is empty")
	}
	if m.Runtime.GoMaxProcs < 1 || m.Runtime.NumCPU < 1 {
		t.Errorf("Runtime = %+v, want populated", m.Runtime)
	}
	if m.Metrics.Counters == nil {
		t.Error("Metrics snapshot not taken")
	}
}

func TestNewSnapshotsRegistry(t *testing.T) {
	obs.GetCounter("runinfo_test.events").Add(5)
	m := New()
	if got := m.Metrics.Counters["runinfo_test.events"]; got != 5 {
		t.Errorf("manifest counter = %d, want 5", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := sample()
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalWallNS != m.TotalWallNS || len(got.Stages) != len(m.Stages) {
		t.Errorf("round trip lost data: %+v", got)
	}
	if got.Stages[0].Counters["networks"] != 60 {
		t.Errorf("stage counters lost: %+v", got.Stages[0])
	}
	if got.Reports["table2"] != m.Reports["table2"] {
		t.Errorf("report digests lost: %+v", got.Reports)
	}

	// The artifact must be indented JSON ending in a newline (diffable,
	// cat-able).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "{\n  \"schema\"") || !strings.HasSuffix(string(data), "\n") {
		t.Errorf("manifest not in canonical indented form:\n%.80s", data)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Manifest)
		want string
	}{
		{"wrong schema", func(m *Manifest) { m.Schema = "mpa.run-manifest/v0" }, "schema"},
		{"zero time", func(m *Manifest) { m.CreatedAt = time.Time{} }, "created_at"},
		{"no go version", func(m *Manifest) { m.Build.GoVersion = "" }, "go_version"},
		{"negative total", func(m *Manifest) { m.TotalWallNS = -1 }, "total_wall_ns"},
		{"unnamed stage", func(m *Manifest) { m.Stages[0].Name = "" }, "no name"},
		{"duplicate stage", func(m *Manifest) { m.Stages[1].Name = m.Stages[0].Name }, "duplicate"},
		{"zero calls", func(m *Manifest) { m.Stages[0].Calls = 0 }, "calls"},
		{"negative wall", func(m *Manifest) { m.Stages[0].WallNS = -5 }, "wall_ns"},
		{"bad digest", func(m *Manifest) { m.Reports["table2"] = "xyz" }, "sha256"},
	}
	for _, tc := range cases {
		m := sample()
		tc.mut(m)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := sample().Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	m := sample()
	m.Schema = "bogus"
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Write(path); err == nil {
		t.Fatal("Write accepted an invalid manifest")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("invalid write left a file behind (err=%v)", err)
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := os.WriteFile(path, []byte(`{"schema": "mpa.run-man`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("Read accepted truncated JSON")
	}
}

// TestRecorderSection: once anything lands in the process flight
// recorder, New embeds a snapshot under "recorder", it round-trips
// through Write/Read, and Validate rejects malformed entries.
func TestRecorderSection(t *testing.T) {
	sp := obs.NewRoot("runinfo_test_stage")
	sp.End()
	obs.DefaultRecorder().Record(sp, obs.RequestMeta{ID: "stage-000-runinfo_test_stage"})

	m := sample()
	m.Recorder = nil // sample() may or may not have seen the record above
	m2 := New()
	if m2.Recorder == nil {
		t.Fatal("manifest missing recorder section after a recorded stage")
	}
	found := false
	for _, r := range m2.Recorder.Requests {
		if r.ID == "stage-000-runinfo_test_stage" {
			found = true
		}
	}
	if !found {
		t.Errorf("recorder section lacks the recorded stage: %+v", m2.Recorder.Requests)
	}

	m.Recorder = m2.Recorder
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Recorder == nil || len(got.Recorder.Requests) != len(m.Recorder.Requests) {
		t.Errorf("recorder section lost in round trip: %+v", got.Recorder)
	}

	bad := sample()
	bad.Recorder = &obs.RecorderSnapshot{Requests: []obs.RequestSummary{{ID: ""}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "no id") {
		t.Errorf("Validate() = %v, want error for empty recorder request id", err)
	}
	bad.Recorder = &obs.RecorderSnapshot{Requests: []obs.RequestSummary{{ID: "x", DurationNS: -1}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "duration_ns") {
		t.Errorf("Validate() = %v, want error for negative recorder duration", err)
	}
}

// TestSchemaFieldNames pins the documented wire names: renames are
// schema breaks and must bump the version.
func TestSchemaFieldNames(t *testing.T) {
	data, err := json.Marshal(sample())
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"schema", "created_at", "build", "config", "total_wall_ns",
		"stages", "metrics", "runtime", "report_digests",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("top-level key %q missing from wire form", key)
		}
	}
}
