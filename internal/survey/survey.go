// Package survey encodes the operator survey of paper §3.1 (Figure 2): 51
// network operators — 45 recruited via the NANOG mailing list, 4 from a
// campus network, 2 from the large OSP — rated how much each of ten (plus
// one written-in) management practices matters to their networks' health.
//
// The per-practice histograms are reconstructed from Figure 2 and the
// paper's narrative: a clear consensus exists only for number of change
// events (high impact); network size, number of models, and inter-device
// complexity split roughly evenly between low and high; middlebox-change
// fraction is widely believed high impact (which §5.1.2 contradicts);
// ACL-change fraction is mostly rated low impact (which §5.2.6
// contradicts); a handful of operators answered unsure throughout.
package survey

import "mpa/internal/practices"

// Opinion is one survey answer category.
type Opinion int

// Survey answer categories, in Figure 2's order.
const (
	NoImpact Opinion = iota
	LowImpact
	MediumImpact
	HighImpact
	NotSure
	numOpinions
)

// NumOpinions is the number of answer categories.
const NumOpinions = int(numOpinions)

// String returns the category label.
func (o Opinion) String() string {
	switch o {
	case NoImpact:
		return "No impact"
	case LowImpact:
		return "Low impact"
	case MediumImpact:
		return "Medium impact"
	case HighImpact:
		return "High impact"
	case NotSure:
		return "Not sure"
	default:
		return "unknown"
	}
}

// Respondents is the number of surveyed operators.
const Respondents = 51

// PracticeOpinion is the response histogram for one surveyed practice.
type PracticeOpinion struct {
	// Practice is the Figure 2 label.
	Practice string
	// Metric is the corresponding practice-metric name, or "" when the
	// surveyed practice has no single metric (e.g. "No. of protocols"
	// spans L2 and L3 counts).
	Metric string
	// Counts holds responses per Opinion, summing to Respondents.
	Counts [NumOpinions]int
}

// Total returns the number of responses recorded.
func (p PracticeOpinion) Total() int {
	total := 0
	for _, c := range p.Counts {
		total += c
	}
	return total
}

// MajorityOpinion returns the most frequent answer.
func (p PracticeOpinion) MajorityOpinion() Opinion {
	best := NoImpact
	for o := Opinion(1); o < numOpinions; o++ {
		if p.Counts[o] > p.Counts[best] {
			best = o
		}
	}
	return best
}

// HighVsLowSplit reports whether low-impact and high-impact answers are
// within 3 responses of each other — the paper's "roughly the same"
// diversity observation.
func (p PracticeOpinion) HighVsLowSplit() bool {
	diff := p.Counts[HighImpact] - p.Counts[LowImpact]
	if diff < 0 {
		diff = -diff
	}
	return diff <= 3
}

// Results returns the Figure 2 dataset.
func Results() []PracticeOpinion {
	return []PracticeOpinion{
		{
			Practice: "No. of devices",
			Metric:   practices.MetricDevices,
			Counts:   [NumOpinions]int{4, 15, 12, 16, 4},
		},
		{
			Practice: "No. of models",
			Metric:   practices.MetricModels,
			Counts:   [NumOpinions]int{5, 16, 10, 15, 5},
		},
		{
			Practice: "No. of firmware versions",
			Metric:   practices.MetricFirmwareVersions,
			Counts:   [NumOpinions]int{3, 12, 16, 17, 3},
		},
		{
			Practice: "No. of protocols",
			Metric:   "", // spans no_l2_protocols and no_l3_protocols
			Counts:   [NumOpinions]int{4, 14, 15, 14, 4},
		},
		{
			Practice: "Inter-device complexity",
			Metric:   practices.MetricInterComplexity,
			Counts:   [NumOpinions]int{2, 16, 12, 17, 4},
		},
		{
			Practice: "No. of change events",
			Metric:   practices.MetricChangeEvents,
			Counts:   [NumOpinions]int{1, 5, 13, 30, 2},
		},
		{
			Practice: "Avg. devices changed/event",
			Metric:   practices.MetricDevicesPerEvent,
			Counts:   [NumOpinions]int{3, 13, 17, 14, 4},
		},
		{
			Practice: "Frac. events w/ mbox change",
			Metric:   practices.MetricFracEventsMbox,
			Counts:   [NumOpinions]int{2, 10, 15, 21, 3},
		},
		{
			Practice: "Frac. events automated",
			Metric:   practices.MetricFracEventsAuto,
			Counts:   [NumOpinions]int{4, 14, 14, 13, 6},
		},
		{
			Practice: "Frac. events w/ router change",
			Metric:   practices.MetricFracEventsRtr,
			Counts:   [NumOpinions]int{2, 12, 16, 18, 3},
		},
		{
			Practice: "Frac. events w/ ACL change",
			Metric:   practices.MetricFracEventsACL,
			Counts:   [NumOpinions]int{4, 22, 13, 9, 3},
		},
	}
}

// ByMetric returns the survey entry for a practice metric, if surveyed.
func ByMetric(metric string) (PracticeOpinion, bool) {
	for _, p := range Results() {
		if p.Metric == metric && metric != "" {
			return p, true
		}
	}
	return PracticeOpinion{}, false
}
