package survey

import (
	"testing"

	"mpa/internal/practices"
)

func TestAllHistogramsSumToRespondents(t *testing.T) {
	for _, p := range Results() {
		if got := p.Total(); got != Respondents {
			t.Errorf("%s: responses sum to %d, want %d", p.Practice, got, Respondents)
		}
	}
}

func TestElevenPractices(t *testing.T) {
	if got := len(Results()); got != 11 {
		t.Fatalf("survey covers %d practices, want 11 (Figure 2)", got)
	}
}

func TestChangeEventsConsensus(t *testing.T) {
	// The paper: clear consensus in just one case — number of change
	// events, rated high impact.
	consensusCount := 0
	for _, p := range Results() {
		if p.Counts[HighImpact] > Respondents/2 {
			consensusCount++
			if p.Metric != practices.MetricChangeEvents {
				t.Errorf("unexpected consensus practice: %s", p.Practice)
			}
		}
	}
	if consensusCount != 1 {
		t.Errorf("found %d consensus practices, want exactly 1", consensusCount)
	}
}

func TestDiversityNarrative(t *testing.T) {
	// Network size, models, and inter-device complexity split roughly
	// evenly between low and high impact.
	for _, metric := range []string{
		practices.MetricDevices, practices.MetricModels, practices.MetricInterComplexity,
	} {
		p, ok := ByMetric(metric)
		if !ok {
			t.Fatalf("metric %s not surveyed", metric)
		}
		if !p.HighVsLowSplit() {
			t.Errorf("%s: low=%d high=%d, expected a rough split",
				p.Practice, p.Counts[LowImpact], p.Counts[HighImpact])
		}
	}
}

func TestACLMajorityLow(t *testing.T) {
	p, ok := ByMetric(practices.MetricFracEventsACL)
	if !ok {
		t.Fatal("ACL practice not surveyed")
	}
	if p.MajorityOpinion() != LowImpact {
		t.Errorf("ACL majority = %v, want low (the opinion §5.2.6 contradicts)", p.MajorityOpinion())
	}
}

func TestMboxMajorityHigh(t *testing.T) {
	p, ok := ByMetric(practices.MetricFracEventsMbox)
	if !ok {
		t.Fatal("mbox practice not surveyed")
	}
	if p.MajorityOpinion() != HighImpact {
		t.Errorf("mbox majority = %v, want high (the opinion §5.1.2 contradicts)", p.MajorityOpinion())
	}
}

func TestUnsureAnswersExist(t *testing.T) {
	// A handful of operators indicated they are unsure.
	total := 0
	for _, p := range Results() {
		total += p.Counts[NotSure]
	}
	if total == 0 {
		t.Error("no unsure answers recorded")
	}
}

func TestByMetricUnknown(t *testing.T) {
	if _, ok := ByMetric("nonexistent"); ok {
		t.Error("ByMetric found a nonexistent metric")
	}
	if _, ok := ByMetric(""); ok {
		t.Error("ByMetric matched the empty metric")
	}
}

func TestOpinionStrings(t *testing.T) {
	want := []string{"No impact", "Low impact", "Medium impact", "High impact", "Not sure"}
	for o := Opinion(0); o < numOpinions; o++ {
		if o.String() != want[o] {
			t.Errorf("Opinion(%d) = %q", o, o.String())
		}
	}
	if Opinion(99).String() != "unknown" {
		t.Error("unknown opinion label")
	}
}
