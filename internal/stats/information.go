package stats

import (
	"math"
	"sort"
)

// The information-theoretic quantities below operate on discretized
// (binned) variables, matching the paper's pipeline: metrics are first
// reduced to monthly means per network, then binned (§5.1.1), and only then
// fed to MI/CMI (§5.1). All entropies are in bits (log base 2).

// Entropy returns H(X) = -sum_i p(x_i) log2 p(x_i) over the empirical
// distribution of the binned variable xs.
func Entropy(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	counts := map[int]int{}
	for _, x := range xs {
		counts[x]++
	}
	// Sum in sorted-symbol order: floating-point addition is not
	// associative, and map iteration order would make the last bits of
	// the entropy nondeterministic.
	symbols := make([]int, 0, len(counts))
	for x := range counts {
		symbols = append(symbols, x)
	}
	sort.Ints(symbols)
	n := float64(len(xs))
	var h float64
	for _, x := range symbols {
		p := float64(counts[x]) / n
		h -= p * math.Log2(p)
	}
	return h
}

// NormalizedEntropy returns Entropy(xs) / log2(n) where n = len(xs), the
// paper's hardware/firmware heterogeneity metric form (§2.2, D3): each
// sample is one device, its symbol the (model, role) pair, and the
// normalizer the network size. Values near 1 indicate high heterogeneity.
// It returns 0 when n < 2.
func NormalizedEntropy(xs []int) float64 {
	if len(xs) < 2 {
		return 0
	}
	return Entropy(xs) / math.Log2(float64(len(xs)))
}

// ConditionalEntropy returns H(Y|X) = sum_{i,j} p(y_i, x_j) log2
// (p(x_j)/p(y_i,x_j)), following the paper's definition verbatim.
func ConditionalEntropy(ys, xs []int) float64 {
	if len(ys) == 0 || len(ys) != len(xs) {
		return 0
	}
	n := float64(len(ys))
	joint := map[[2]int]int{}
	margX := map[int]int{}
	for i := range ys {
		joint[[2]int{ys[i], xs[i]}]++
		margX[xs[i]]++
	}
	// Deterministic summation order (see Entropy).
	keys := make([][2]int, 0, len(joint))
	for k := range joint {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	var h float64
	for _, k := range keys {
		pxy := float64(joint[k]) / n
		px := float64(margX[k[1]]) / n
		h += pxy * math.Log2(px/pxy)
	}
	return h
}

// MutualInformation returns I(X;Y) = H(Y) - H(Y|X) over binned variables.
// MI is symmetric and non-negative up to floating-point error.
func MutualInformation(xs, ys []int) float64 {
	mi := Entropy(ys) - ConditionalEntropy(ys, xs)
	if mi < 0 && mi > -1e-12 {
		return 0
	}
	return mi
}

// ConditionalMutualInformation returns I(X1;X2 | Y) = H(X1|Y) -
// H(X1|X2,Y): the expected mutual information between two practices given
// network health (paper §5.1.1). It is symmetric in X1 and X2.
func ConditionalMutualInformation(x1, x2, ys []int) float64 {
	if len(x1) != len(x2) || len(x1) != len(ys) || len(x1) == 0 {
		return 0
	}
	// H(X1|Y) via the generic conditional entropy.
	hX1Y := ConditionalEntropy(x1, ys)
	// H(X1 | X2, Y): condition on the joint symbol (x2, y).
	combined := make([]int, len(x1))
	// Pack (x2, y) into a single symbol. Bin counts are small (<=10), so a
	// simple pairing works; use an offset beyond any plausible bin count.
	const stride = 1 << 16
	for i := range combined {
		combined[i] = x2[i]*stride + ys[i]
	}
	hX1X2Y := ConditionalEntropy(x1, combined)
	cmi := hX1Y - hX1X2Y
	if cmi < 0 && cmi > -1e-12 {
		return 0
	}
	return cmi
}
