package stats

import (
	"math"
	"testing"

	"mpa/internal/rng"
)

// randomInts draws n values over an alphabet of the given size, with a
// skewed distribution so joint tables have both dense and sparse cells.
func randomInts(r *rng.RNG, n, alphabet int) []int {
	out := make([]int, n)
	for i := range out {
		if r.Bool(0.3) {
			out[i] = 0 // heavy mass on one symbol, like healthy networks
		} else {
			out[i] = r.Intn(alphabet)
		}
	}
	return out
}

// TestMutualInformationProperties checks the information-theoretic
// identities MI must satisfy on arbitrary discrete data: non-negativity,
// symmetry, the entropy upper bound, and MI(x,x) = H(x).
func TestMutualInformationProperties(t *testing.T) {
	r := rng.New(42)
	for i := 0; i < 200; i++ {
		n := r.IntBetween(2, 400)
		xs := randomInts(r, n, r.IntBetween(2, 10))
		ys := randomInts(r, n, r.IntBetween(2, 10))
		mi := MutualInformation(xs, ys)
		if mi < -1e-9 || math.IsNaN(mi) {
			t.Fatalf("iteration %d: MI = %v, want >= 0", i, mi)
		}
		if rev := MutualInformation(ys, xs); math.Abs(mi-rev) > 1e-9 {
			t.Fatalf("iteration %d: MI not symmetric: %v vs %v", i, mi, rev)
		}
		hx, hy := Entropy(xs), Entropy(ys)
		if mi > math.Min(hx, hy)+1e-9 {
			t.Fatalf("iteration %d: MI %v exceeds min entropy %v", i, mi, math.Min(hx, hy))
		}
		if self := MutualInformation(xs, xs); math.Abs(self-hx) > 1e-9 {
			t.Fatalf("iteration %d: MI(x,x) = %v, want H(x) = %v", i, self, hx)
		}
	}
}

// TestConditionalMIProperties checks the identities of I(X1;X2|Y):
// non-negativity, symmetry in X1 and X2, and the chain rule
// I(X1; (X2,Y)) = I(X1; Y) + I(X1; X2 | Y) — which also bounds CMI by the
// joint MI.
func TestConditionalMIProperties(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 200; i++ {
		n := r.IntBetween(2, 300)
		a := r.IntBetween(2, 6)
		x1 := randomInts(r, n, a)
		x2 := randomInts(r, n, a)
		ys := randomInts(r, n, r.IntBetween(2, 6))
		cmi := ConditionalMutualInformation(x1, x2, ys)
		if cmi < -1e-9 || math.IsNaN(cmi) {
			t.Fatalf("iteration %d: CMI = %v, want >= 0", i, cmi)
		}
		if sym := ConditionalMutualInformation(x2, x1, ys); math.Abs(sym-cmi) > 1e-9 {
			t.Fatalf("iteration %d: CMI not symmetric: %v vs %v", i, cmi, sym)
		}
		// Pack (x2, y) into one variable for the joint MI.
		joint := make([]int, n)
		for j := range joint {
			joint[j] = x2[j]*16 + ys[j]
		}
		lhs := MutualInformation(x1, ys) + cmi
		rhs := MutualInformation(x1, joint)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("iteration %d: chain rule broken: MI+CMI = %v, joint MI = %v", i, lhs, rhs)
		}
	}
}

// TestBinnerProperties checks the binning contract on arbitrary data:
// every bin index is in range, values at or below the low anchor land in
// bin 0, values at or above the high anchor land in the last bin, and
// binning is monotone in the value.
func TestBinnerProperties(t *testing.T) {
	r := rng.New(99)
	for i := 0; i < 200; i++ {
		n := r.IntBetween(1, 500)
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = r.Normal(0, 100)
		}
		bins := r.IntBetween(2, 12)
		b := NewBinner(vals, bins)
		lo, hi := b.Bounds()
		if hi < lo {
			t.Fatalf("iteration %d: bounds inverted: [%v, %v]", i, lo, hi)
		}
		prev := -1
		prevV := math.Inf(-1)
		for _, v := range append([]float64{lo - 1, lo, (lo + hi) / 2, hi, hi + 1}, vals...) {
			k := b.Bin(v)
			if k < 0 || k >= bins {
				t.Fatalf("iteration %d: bin(%v) = %d, want in [0, %d)", i, v, k, bins)
			}
			if v <= lo && k != 0 {
				t.Fatalf("iteration %d: bin(%v) = %d below low anchor %v, want 0", i, v, k, lo)
			}
			if v >= hi && k != bins-1 {
				t.Fatalf("iteration %d: bin(%v) = %d above high anchor %v, want %d", i, v, k, hi, bins-1)
			}
			if v >= prevV && k < prev && prevV != math.Inf(-1) {
				t.Fatalf("iteration %d: binning not monotone: bin(%v)=%d after bin(%v)=%d",
					i, v, k, prevV, prev)
			}
			// Only track monotonicity along the sorted probes above; the
			// appended raw values arrive unsorted.
			if v >= prevV {
				prev, prevV = k, v
			}
		}
	}
}
