package stats

// Binner discretizes a continuous metric into equal-width bins whose first
// and last bin edges are anchored at the 5th and 95th percentile of the
// observed values (paper §5.1.1). Values below the 5th percentile fall into
// the first bin and values above the 95th percentile fall into the last
// bin, which keeps long-tailed practice metrics from collapsing into one or
// two bins and suppresses noise from minor metric deviations.
type Binner struct {
	lo, hi float64 // 5th / 95th percentile anchors
	bins   int
}

// NewBinner builds a Binner with the given number of bins over the observed
// values. The paper uses 10 bins for dependence analysis and 5 bins for
// learning and causal treatment assignment. NewBinner panics if bins < 1.
// With no values, or a degenerate distribution (lo == hi), every input maps
// to bin 0.
func NewBinner(values []float64, bins int) *Binner {
	if bins < 1 {
		panic("stats: NewBinner with bins < 1")
	}
	b := &Binner{bins: bins}
	if len(values) > 0 {
		b.lo = Percentile(values, 5)
		b.hi = Percentile(values, 95)
	}
	return b
}

// NewBinnerBounds builds a Binner with explicit bin anchors, for tests and
// for reusing training-time bin edges on later data (online prediction).
func NewBinnerBounds(lo, hi float64, bins int) *Binner {
	if bins < 1 {
		panic("stats: NewBinnerBounds with bins < 1")
	}
	return &Binner{lo: lo, hi: hi, bins: bins}
}

// Bins returns the number of bins.
func (b *Binner) Bins() int { return b.bins }

// Bounds returns the 5th/95th percentile anchors of the binner.
func (b *Binner) Bounds() (lo, hi float64) { return b.lo, b.hi }

// Bin maps a value to its bin index in [0, Bins()).
func (b *Binner) Bin(v float64) int {
	if b.bins == 1 || b.hi <= b.lo {
		return 0
	}
	if v <= b.lo {
		return 0
	}
	if v >= b.hi {
		return b.bins - 1
	}
	width := (b.hi - b.lo) / float64(b.bins)
	idx := int((v - b.lo) / width)
	if idx >= b.bins {
		idx = b.bins - 1
	}
	return idx
}

// BinAll maps every value in vs to its bin index.
func (b *Binner) BinAll(vs []float64) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = b.Bin(v)
	}
	return out
}

// BinValues is a convenience that builds a binner over values and returns
// the binned values along with the binner.
func BinValues(values []float64, bins int) ([]int, *Binner) {
	b := NewBinner(values, bins)
	return b.BinAll(values), b
}
