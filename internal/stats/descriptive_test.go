package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {75, 7.75},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{42}, 37); got != 42 {
		t.Errorf("Percentile singleton = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile empty = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Median even = %v", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect positive = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("perfect negative = %v", got)
	}
	if got := Pearson(xs, []float64{7, 7, 7, 7, 7}); got != 0 {
		t.Errorf("zero-variance = %v", got)
	}
	if got := Pearson(xs, ys[:3]); got != 0 {
		t.Errorf("length mismatch = %v", got)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		// Pseudo-random but deterministic data from the seed.
		xs := make([]float64, 20)
		ys := make([]float64, 20)
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		for i := range xs {
			xs[i], ys[i] = next(), next()
		}
		r := Pearson(xs, ys)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoxSummary(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b := Box(xs)
	if b.N != 10 {
		t.Errorf("N = %d", b.N)
	}
	if !almostEq(b.Median, 5.5, 1e-9) {
		t.Errorf("median = %v", b.Median)
	}
	if b.Q25 >= b.Q75 {
		t.Errorf("quartiles inverted: %v >= %v", b.Q25, b.Q75)
	}
	// 100 is far beyond Q75 + 2*IQR and must be excluded from whiskers.
	if b.WhiskerHi >= 100 {
		t.Errorf("whisker includes extreme outlier: %v", b.WhiskerHi)
	}
	if b.IQROutside != 1 {
		t.Errorf("IQROutside = %d, want 1", b.IQROutside)
	}
}

func TestBoxEmpty(t *testing.T) {
	b := Box(nil)
	if b.N != 0 || b.Mean != 0 {
		t.Errorf("empty box = %+v", b)
	}
}

func TestBoxWhiskerOrdering(t *testing.T) {
	f := func(seed int64) bool {
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>40) / 100
		}
		xs := make([]float64, 31)
		for i := range xs {
			xs[i] = next()
		}
		b := Box(xs)
		return b.WhiskerLo <= b.Q25+1e-9 && b.Q25 <= b.Median+1e-9 &&
			b.Median <= b.Q75+1e-9 && b.Q75 <= b.WhiskerHi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{1, 1, 2, 3})
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {3, 1}}
	if len(pts) != len(want) {
		t.Fatalf("CDF = %v", pts)
	}
	for i := range want {
		if pts[i].Value != want[i].Value || !almostEq(pts[i].Fraction, want[i].Fraction, 1e-12) {
			t.Errorf("CDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("CDFAt = %v", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Errorf("CDFAt below min = %v", got)
	}
	if got := CDFAt(xs, 10); got != 1 {
		t.Errorf("CDFAt above max = %v", got)
	}
	if got := CDFAt(nil, 1); got != 0 {
		t.Errorf("CDFAt empty = %v", got)
	}
}

func TestStdMeanDiff(t *testing.T) {
	treated := []float64{10, 12, 14}
	untreated := []float64{10, 12, 14}
	if got := StdMeanDiff(treated, untreated); got != 0 {
		t.Errorf("identical groups diff = %v", got)
	}
	shifted := []float64{20, 22, 24}
	if got := StdMeanDiff(shifted, untreated); got <= 0 {
		t.Errorf("positive shift diff = %v", got)
	}
	// Degenerate: zero treated variance, differing means.
	if got := StdMeanDiff([]float64{5, 5}, []float64{7, 7}); !math.IsInf(got, -1) {
		t.Errorf("degenerate diff = %v, want -Inf", got)
	}
	if got := StdMeanDiff([]float64{5, 5}, []float64{5, 5}); got != 0 {
		t.Errorf("degenerate equal diff = %v", got)
	}
}

func TestVarianceRatio(t *testing.T) {
	if got := VarianceRatio([]float64{1, 3}, []float64{1, 3}); !almostEq(got, 1, 1e-12) {
		t.Errorf("equal variance ratio = %v", got)
	}
	if got := VarianceRatio([]float64{0, 4}, []float64{1, 3}); !almostEq(got, 4, 1e-12) {
		t.Errorf("ratio = %v, want 4", got)
	}
	if got := VarianceRatio([]float64{5, 5}, []float64{5, 5}); got != 1 {
		t.Errorf("both zero ratio = %v", got)
	}
	if got := VarianceRatio([]float64{0, 4}, []float64{5, 5}); !math.IsInf(got, 1) {
		t.Errorf("zero untreated ratio = %v", got)
	}
}
