package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEntropyUniform(t *testing.T) {
	// Four equally likely symbols: H = 2 bits.
	xs := []int{0, 1, 2, 3, 0, 1, 2, 3}
	if got := Entropy(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("Entropy = %v, want 2", got)
	}
}

func TestEntropyDegenerate(t *testing.T) {
	if got := Entropy([]int{7, 7, 7}); got != 0 {
		t.Errorf("constant entropy = %v", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Errorf("empty entropy = %v", got)
	}
}

func TestEntropyBiasedCoin(t *testing.T) {
	// P(0)=3/4, P(1)=1/4: H = 0.75*log2(4/3) + 0.25*2 ~ 0.8113.
	xs := []int{0, 0, 0, 1}
	want := 0.75*math.Log2(4.0/3.0) + 0.25*2
	if got := Entropy(xs); !almostEq(got, want, 1e-12) {
		t.Errorf("Entropy = %v, want %v", got, want)
	}
}

func TestNormalizedEntropy(t *testing.T) {
	// Four distinct symbols over four samples: H = 2, log2(4) = 2, so 1.
	if got := NormalizedEntropy([]int{0, 1, 2, 3}); !almostEq(got, 1, 1e-12) {
		t.Errorf("max heterogeneity = %v, want 1", got)
	}
	if got := NormalizedEntropy([]int{5, 5, 5, 5}); got != 0 {
		t.Errorf("homogeneous = %v, want 0", got)
	}
	if got := NormalizedEntropy([]int{1}); got != 0 {
		t.Errorf("singleton = %v, want 0", got)
	}
}

func TestConditionalEntropyIndependent(t *testing.T) {
	// X and Y independent uniform bits: H(Y|X) = H(Y) = 1.
	var xs, ys []int
	for i := 0; i < 4; i++ {
		xs = append(xs, i%2)
		ys = append(ys, i/2)
	}
	if got := ConditionalEntropy(ys, xs); !almostEq(got, 1, 1e-12) {
		t.Errorf("H(Y|X) = %v, want 1", got)
	}
}

func TestConditionalEntropyDeterministic(t *testing.T) {
	// Y = X: H(Y|X) = 0.
	xs := []int{0, 1, 2, 0, 1, 2}
	if got := ConditionalEntropy(xs, xs); !almostEq(got, 0, 1e-12) {
		t.Errorf("H(X|X) = %v, want 0", got)
	}
}

func TestMutualInformationPerfect(t *testing.T) {
	// Y = X with 4 uniform symbols: I = H(Y) = 2 bits.
	xs := []int{0, 1, 2, 3, 0, 1, 2, 3}
	if got := MutualInformation(xs, xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("I(X;X) = %v, want 2", got)
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	var xs, ys []int
	for i := 0; i < 16; i++ {
		xs = append(xs, i%4)
		ys = append(ys, i/4)
	}
	if got := MutualInformation(xs, ys); !almostEq(got, 0, 1e-12) {
		t.Errorf("independent MI = %v, want 0", got)
	}
}

func TestMutualInformationSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		xs := make([]int, 60)
		ys := make([]int, 60)
		s := seed
		for i := range xs {
			s = s*6364136223846793005 + 1442695040888963407
			xs[i] = int(s>>60) % 4
			s = s*6364136223846793005 + 1442695040888963407
			ys[i] = int(s>>61) % 3
		}
		return almostEq(MutualInformation(xs, ys), MutualInformation(ys, xs), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMutualInformationNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		xs := make([]int, 40)
		ys := make([]int, 40)
		s := seed
		for i := range xs {
			s = s*6364136223846793005 + 1442695040888963407
			xs[i] = int(s>>59) % 5
			s = s*6364136223846793005 + 1442695040888963407
			ys[i] = int(s>>58) % 5
		}
		return MutualInformation(xs, ys) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMIDetectsDependence(t *testing.T) {
	// Y noisy copy of X should carry more information than an unrelated Z.
	var xs, ys, zs []int
	s := uint64(99)
	next := func(mod int) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int(s>>33) % mod
	}
	for i := 0; i < 500; i++ {
		x := next(4)
		y := x
		if next(10) == 0 { // 10% noise
			y = next(4)
		}
		xs = append(xs, x)
		ys = append(ys, y)
		zs = append(zs, next(4))
	}
	if MutualInformation(xs, ys) <= MutualInformation(zs, ys)+0.2 {
		t.Errorf("MI failed to separate dependent (%.3f) from independent (%.3f)",
			MutualInformation(xs, ys), MutualInformation(zs, ys))
	}
}

func TestCMISymmetricInX1X2(t *testing.T) {
	f := func(seed uint64) bool {
		n := 80
		x1 := make([]int, n)
		x2 := make([]int, n)
		ys := make([]int, n)
		s := seed
		next := func(mod int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int(s>>55) % mod
		}
		for i := 0; i < n; i++ {
			x1[i], x2[i], ys[i] = next(4), next(4), next(2)
		}
		return almostEq(ConditionalMutualInformation(x1, x2, ys),
			ConditionalMutualInformation(x2, x1, ys), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCMIDeterministicPair(t *testing.T) {
	// X2 = X1 regardless of Y: CMI = H(X1|Y) which is positive for varied X1.
	x1 := []int{0, 1, 2, 3, 0, 1, 2, 3}
	ys := []int{0, 0, 0, 0, 1, 1, 1, 1}
	got := ConditionalMutualInformation(x1, x1, ys)
	if !almostEq(got, 2, 1e-12) { // H(X1|Y) = 2 bits (uniform over 4 within each y)
		t.Errorf("CMI of identical practices = %v, want 2", got)
	}
}

func TestCMIIndependentIsZero(t *testing.T) {
	// Fully factorized uniform X1, X2, Y.
	var x1, x2, ys []int
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 2; c++ {
				x1 = append(x1, a)
				x2 = append(x2, b)
				ys = append(ys, c)
			}
		}
	}
	if got := ConditionalMutualInformation(x1, x2, ys); !almostEq(got, 0, 1e-12) {
		t.Errorf("independent CMI = %v, want 0", got)
	}
}

func TestMismatchedLengths(t *testing.T) {
	if got := MutualInformation([]int{1, 2}, []int{1}); got != 0 {
		t.Errorf("mismatched MI = %v", got)
	}
	if got := ConditionalMutualInformation([]int{1}, []int{1, 2}, []int{1}); got != 0 {
		t.Errorf("mismatched CMI = %v", got)
	}
}
