// Package stats implements the statistical machinery of the MPA framework:
// descriptive statistics, percentile-bounded equal-width binning (paper
// §5.1.1), entropy, mutual information and conditional mutual information
// (§5.1), and the balance diagnostics used to verify propensity-score
// matches (§5.2.4).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted computes a percentile over an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when the slices differ in length, are shorter than 2, or
// either has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// BoxSummary holds the five-number summary the paper's box-and-whisker
// figures display: quartiles plus whiskers at the most extreme data points
// within twice the interquartile range (Figures 3, 4, 6).
type BoxSummary struct {
	Mean       float64
	Median     float64
	Q25, Q75   float64
	WhiskerLo  float64
	WhiskerHi  float64
	N          int
	IQROutside int // points beyond the whiskers
}

// Box computes a BoxSummary of xs, with whiskers at the most extreme points
// within 2x the interquartile range of the quartiles (paper Figure 3
// caption). An empty slice yields the zero summary.
func Box(xs []float64) BoxSummary {
	if len(xs) == 0 {
		return BoxSummary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	b := BoxSummary{
		Mean:   Mean(sorted),
		Median: percentileSorted(sorted, 50),
		Q25:    percentileSorted(sorted, 25),
		Q75:    percentileSorted(sorted, 75),
		N:      len(sorted),
	}
	iqr := b.Q75 - b.Q25
	lo, hi := b.Q25-2*iqr, b.Q75+2*iqr
	b.WhiskerLo, b.WhiskerHi = b.Median, b.Median
	first := true
	for _, x := range sorted {
		if x < lo || x > hi {
			b.IQROutside++
			continue
		}
		if first {
			b.WhiskerLo, b.WhiskerHi = x, x
			first = false
			continue
		}
		if x < b.WhiskerLo {
			b.WhiskerLo = x
		}
		if x > b.WhiskerHi {
			b.WhiskerHi = x
		}
	}
	return b
}

// CDFPoint is a single point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // fraction of samples <= Value
}

// CDF returns the empirical cumulative distribution of xs evaluated at each
// distinct sample value, in ascending order.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var pts []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Emit one point per distinct value, at its last occurrence.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		pts = append(pts, CDFPoint{Value: sorted[i], Fraction: float64(i+1) / n})
	}
	return pts
}

// CDFAt returns the empirical CDF of xs evaluated at v: the fraction of
// samples <= v.
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	count := 0
	for _, x := range xs {
		if x <= v {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// StdMeanDiff returns the standardized difference of means between the
// treated and untreated samples: (mean(T) - mean(U)) / stddev(T). The paper
// (§5.2.4, after Stuart) requires |value| < 0.25 for an acceptable match.
// A zero treated standard deviation yields 0 when the means agree and
// +/-Inf otherwise.
func StdMeanDiff(treated, untreated []float64) float64 {
	mt, mu := Mean(treated), Mean(untreated)
	st := StdDev(treated)
	if st == 0 {
		if mt == mu {
			return 0
		}
		return math.Inf(sign(mt - mu))
	}
	return (mt - mu) / st
}

// VarianceRatio returns var(treated)/var(untreated). The paper requires the
// ratio to be within [0.5, 2]. Zero untreated variance yields 1 when both
// variances are zero and +Inf otherwise.
func VarianceRatio(treated, untreated []float64) float64 {
	vt, vu := Variance(treated), Variance(untreated)
	if vu == 0 {
		if vt == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return vt / vu
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
