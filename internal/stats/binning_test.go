package stats

import (
	"testing"
	"testing/quick"
)

func TestBinnerBasic(t *testing.T) {
	// 100 values 1..100: 5th pct = 5.95, 95th pct = 95.05.
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i + 1)
	}
	b := NewBinner(values, 10)
	lo, hi := b.Bounds()
	if lo >= hi {
		t.Fatalf("bounds inverted: %v >= %v", lo, hi)
	}
	if got := b.Bin(lo - 100); got != 0 {
		t.Errorf("below lower anchor -> bin %d, want 0", got)
	}
	if got := b.Bin(hi + 100); got != 9 {
		t.Errorf("above upper anchor -> bin %d, want 9", got)
	}
	if got := b.Bin((lo + hi) / 2); got < 4 || got > 5 {
		t.Errorf("midpoint -> bin %d, want 4 or 5", got)
	}
}

func TestBinnerMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		s := seed
		values := make([]float64, 64)
		for i := range values {
			s = s*6364136223846793005 + 1442695040888963407
			values[i] = float64(s>>40) / 256
		}
		b := NewBinner(values, 5)
		prev := -1
		lo, hi := b.Bounds()
		step := (hi - lo + 2) / 50
		for v := lo - 1; v <= hi+1; v += step {
			bin := b.Bin(v)
			if bin < prev || bin < 0 || bin >= 5 {
				return false
			}
			prev = bin
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinnerDegenerate(t *testing.T) {
	b := NewBinner([]float64{4, 4, 4, 4}, 10)
	for _, v := range []float64{-1, 0, 4, 100} {
		if got := b.Bin(v); got != 0 {
			t.Errorf("degenerate Bin(%v) = %d, want 0", v, got)
		}
	}
	b = NewBinner(nil, 3)
	if got := b.Bin(5); got != 0 {
		t.Errorf("empty-data Bin = %d", got)
	}
}

func TestBinnerSingleBin(t *testing.T) {
	b := NewBinner([]float64{1, 2, 3}, 1)
	if got := b.Bin(2); got != 0 {
		t.Errorf("single-bin = %d", got)
	}
}

func TestBinnerPanicsOnZeroBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBinner(0 bins) did not panic")
		}
	}()
	NewBinner([]float64{1}, 0)
}

func TestBinnerLongTailSpread(t *testing.T) {
	// A long-tailed distribution (most mass small, few huge values) must
	// not collapse into one bin: the 5/95 anchoring is the paper's fix.
	values := make([]float64, 0, 1000)
	for i := 0; i < 970; i++ {
		values = append(values, float64(i%100)) // bulk in [0,100)
	}
	for i := 0; i < 30; i++ {
		values = append(values, 1e6) // extreme 3% tail
	}
	binned, _ := BinValues(values, 10)
	seen := map[int]bool{}
	for _, b := range binned {
		seen[b] = true
	}
	if len(seen) < 5 {
		t.Errorf("long-tail data collapsed into %d bins", len(seen))
	}
}

func TestBinnerBoundsReuse(t *testing.T) {
	b := NewBinnerBounds(0, 10, 5)
	cases := []struct {
		v    float64
		want int
	}{{-5, 0}, {0, 0}, {1, 0}, {3, 1}, {5, 2}, {9.9, 4}, {10, 4}, {50, 4}}
	for _, c := range cases {
		if got := b.Bin(c.v); got != c.want {
			t.Errorf("Bin(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBinAllMatchesBin(t *testing.T) {
	values := []float64{1, 5, 9, 2, 8}
	b := NewBinner(values, 4)
	all := b.BinAll(values)
	for i, v := range values {
		if all[i] != b.Bin(v) {
			t.Errorf("BinAll[%d] = %d, Bin = %d", i, all[i], b.Bin(v))
		}
	}
}
