package ml

import (
	"math"

	"mpa/internal/par"
	"mpa/internal/rng"
)

// ForestVariant selects how a random forest handles class imbalance
// (footnote 2 of the paper: neither balanced nor weighted random forests
// beat boosting + oversampling).
type ForestVariant int

const (
	// ForestPlain is a standard bootstrap forest.
	ForestPlain ForestVariant = iota
	// ForestBalanced downsamples majority classes in each bootstrap to
	// the minority class size (Chen et al.'s balanced random forest).
	ForestBalanced
	// ForestWeighted applies inverse-frequency class weights when
	// training each tree (weighted random forest).
	ForestWeighted
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	Trees    int
	Variant  ForestVariant
	Tree     TreeConfig
	Features int // features sampled per tree; 0 = sqrt(d)
	// Workers bounds the goroutines used for tree training; 0 uses the
	// process default (par.SetDefaultWorkers). Every random draw happens
	// before the fan-out, so the forest is identical at any worker count.
	Workers int
}

// DefaultForestConfig returns a 50-tree plain forest.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{Trees: 50, Tree: TreeConfig{MinLeafFrac: 0.005}}
}

// Forest is a random forest: majority vote over trees trained on
// bootstrap samples with random feature subsets.
type Forest struct {
	trees   []*Tree
	masks   [][]int // feature indexes per tree
	classes int
}

// TrainForest fits a random forest. r drives bootstrap and feature
// sampling; the same seed reproduces the forest.
func TrainForest(X [][]int, y []int, classes int, cfg ForestConfig, r *rng.RNG) *Forest {
	if len(X) == 0 {
		panic("ml: TrainForest with no data")
	}
	d := len(X[0])
	nFeat := cfg.Features
	if nFeat <= 0 {
		nFeat = int(math.Sqrt(float64(d)))
		if nFeat < 1 {
			nFeat = 1
		}
	}
	if cfg.Trees < 1 {
		cfg.Trees = 1
	}
	f := &Forest{classes: classes}
	byClass := make([][]int, classes)
	for i, yi := range y {
		byClass[yi] = append(byClass[yi], i)
	}
	minority := len(y)
	for _, idx := range byClass {
		if len(idx) > 0 && len(idx) < minority {
			minority = len(idx)
		}
	}

	// Draw every tree's bootstrap sample and feature mask sequentially,
	// in the exact order the original single-loop implementation consumed
	// r — the expensive part, TrainTree, holds no randomness and fans out
	// below, so the forest is byte-identical at any worker count.
	type treePlan struct {
		sample []int
		mask   []int
	}
	plans := make([]treePlan, cfg.Trees)
	for t := range plans {
		var sample []int
		switch cfg.Variant {
		case ForestBalanced:
			// Draw minority-size bootstrap from each class.
			for _, idx := range byClass {
				if len(idx) == 0 {
					continue
				}
				for k := 0; k < minority; k++ {
					sample = append(sample, idx[r.Intn(len(idx))])
				}
			}
		default:
			for k := 0; k < len(y); k++ {
				sample = append(sample, r.Intn(len(y)))
			}
		}
		perm := r.Perm(d)
		plans[t] = treePlan{sample: sample, mask: perm[:nFeat]}
	}

	f.trees = make([]*Tree, cfg.Trees)
	f.masks = make([][]int, cfg.Trees)
	par.ForEach(cfg.Workers, plans, func(t int, plan treePlan) error {
		subX := make([][]int, len(plan.sample))
		subY := make([]int, len(plan.sample))
		subW := make([]float64, len(plan.sample))
		for i, src := range plan.sample {
			row := make([]int, nFeat)
			for j, feat := range plan.mask {
				row[j] = X[src][feat]
			}
			subX[i] = row
			subY[i] = y[src]
			subW[i] = 1
			if cfg.Variant == ForestWeighted {
				subW[i] = float64(len(y)) / (float64(classes) * float64(len(byClass[y[src]])))
			}
		}
		f.trees[t] = TrainTree(subX, subY, subW, classes, cfg.Tree)
		f.masks[t] = plan.mask
		return nil
	})
	return f
}

// Predict returns the majority vote across trees.
func (f *Forest) Predict(x []int) int {
	votes := make([]int, f.classes)
	for t, tree := range f.trees {
		row := make([]int, len(f.masks[t]))
		for j, feat := range f.masks[t] {
			row[j] = x[feat]
		}
		votes[tree.Predict(row)]++
	}
	best := 0
	for c := 1; c < f.classes; c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return best
}

// Size returns the number of trees.
func (f *Forest) Size() int { return len(f.trees) }
