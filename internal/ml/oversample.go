package ml

// Oversample replicates samples of the given classes, returning a new
// dataset. factors maps class label -> total multiplicity (2 = each sample
// of the class appears twice, etc.); classes absent from the map keep
// multiplicity 1. This is the paper's skew remedy for minority health
// classes (§6.1): in the 2-class model unhealthy samples are replicated
// twice; in the 5-class model poor is replicated twice and moderate and
// good three times.
func Oversample(X [][]int, y []int, factors map[int]int) ([][]int, []int) {
	outX := make([][]int, 0, len(y))
	outY := make([]int, 0, len(y))
	for i := range y {
		mult := factors[y[i]]
		if mult < 1 {
			mult = 1
		}
		for k := 0; k < mult; k++ {
			outX = append(outX, X[i])
			outY = append(outY, y[i])
		}
	}
	return outX, outY
}

// Oversample2Class is the paper's 2-class oversampling: unhealthy (label
// 1) replicated twice.
func Oversample2Class(X [][]int, y []int) ([][]int, []int) {
	return Oversample(X, y, map[int]int{1: 2})
}

// Oversample5Class is the paper's 5-class oversampling: good (1) and
// moderate (2) replicated thrice, poor (3) twice.
func Oversample5Class(X [][]int, y []int) ([][]int, []int) {
	return Oversample(X, y, map[int]int{1: 3, 2: 3, 3: 2})
}

// Majority is the baseline classifier that always predicts the most
// frequent training class (the paper's majority-class predictor, 64.8%
// accurate on the 2-class task).
type Majority struct {
	class int
}

// TrainMajority fits the majority baseline.
func TrainMajority(y []int, classes int) *Majority {
	counts := make([]int, classes)
	for _, c := range y {
		counts[c]++
	}
	best := 0
	for c := 1; c < classes; c++ {
		if counts[c] > counts[best] {
			best = c
		}
	}
	return &Majority{class: best}
}

// Predict returns the majority class regardless of input.
func (m *Majority) Predict(_ []int) int { return m.class }
