package ml

// Evaluation holds classification quality measures (paper §6.1: accuracy,
// per-class precision and recall, via 5-fold cross-validation).
type Evaluation struct {
	Accuracy  float64
	Precision []float64 // per class
	Recall    []float64 // per class
	Confusion [][]int   // [actual][predicted]
	N         int
}

// Evaluate scores predictions against truth for the given class count.
func Evaluate(pred, truth []int, classes int) Evaluation {
	ev := Evaluation{
		Precision: make([]float64, classes),
		Recall:    make([]float64, classes),
		Confusion: make([][]int, classes),
		N:         len(truth),
	}
	for c := range ev.Confusion {
		ev.Confusion[c] = make([]int, classes)
	}
	correct := 0
	for i := range truth {
		ev.Confusion[truth[i]][pred[i]]++
		if pred[i] == truth[i] {
			correct++
		}
	}
	if len(truth) > 0 {
		ev.Accuracy = float64(correct) / float64(len(truth))
	}
	for c := 0; c < classes; c++ {
		var predicted, actual, tp int
		for o := 0; o < classes; o++ {
			predicted += ev.Confusion[o][c]
			actual += ev.Confusion[c][o]
		}
		tp = ev.Confusion[c][c]
		if predicted > 0 {
			ev.Precision[c] = float64(tp) / float64(predicted)
		}
		if actual > 0 {
			ev.Recall[c] = float64(tp) / float64(actual)
		}
	}
	return ev
}

// Merge combines fold evaluations by pooling their confusion matrices.
func Merge(evals []Evaluation, classes int) Evaluation {
	var pred, truth []int
	for _, ev := range evals {
		for a := 0; a < classes; a++ {
			for p := 0; p < classes; p++ {
				for k := 0; k < ev.Confusion[a][p]; k++ {
					truth = append(truth, a)
					pred = append(pred, p)
				}
			}
		}
	}
	return Evaluate(pred, truth, classes)
}
