package ml

import (
	"strings"
	"testing"

	"mpa/internal/rng"
)

// xorData builds a dataset where y = x0 XOR x1 — unlearnable by a single
// split, learnable by a depth-2 tree. The cell counts are slightly
// asymmetric: with perfectly balanced XOR both features have exactly zero
// information gain at the root and a greedy C4.5 tree (like the original)
// cannot start splitting.
func xorData() ([][]int, []int) {
	reps := map[[2]int]int{{0, 0}: 30, {0, 1}: 25, {1, 0}: 25, {1, 1}: 20}
	var X [][]int
	var y []int
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for rep := 0; rep < reps[[2]int{a, b}]; rep++ {
				X = append(X, []int{a, b, rep % 3})
				y = append(y, a^b)
			}
		}
	}
	return X, y
}

func TestTreeLearnsSingleFeature(t *testing.T) {
	var X [][]int
	var y []int
	for v := 0; v < 5; v++ {
		for rep := 0; rep < 10; rep++ {
			X = append(X, []int{v, rep % 2})
			label := 0
			if v >= 3 {
				label = 1
			}
			y = append(y, label)
		}
	}
	tree := TrainTree(X, y, nil, 2, TreeConfig{MinLeafFrac: 0.01})
	for i := range X {
		if got := tree.Predict(X[i]); got != y[i] {
			t.Fatalf("Predict(%v) = %d, want %d", X[i], got, y[i])
		}
	}
	if tree.RootFeature() != 0 {
		t.Errorf("root feature = %d, want 0", tree.RootFeature())
	}
}

func TestTreeLearnsXOR(t *testing.T) {
	X, y := xorData()
	tree := TrainTree(X, y, nil, 2, TreeConfig{MinLeafFrac: 0.01})
	for i := range X {
		if tree.Predict(X[i]) != y[i] {
			t.Fatal("tree failed to learn XOR (needs two-level splits)")
		}
	}
	if tree.Depth() < 2 {
		t.Errorf("XOR tree depth = %d, want >= 2", tree.Depth())
	}
}

func TestTreePruningCollapsesRareBranches(t *testing.T) {
	// 99 samples with x0=0 label 0; 1 sample x0=1 label 1. With alpha=5%
	// the rare branch is below threshold and the x0=1 branch becomes a
	// majority leaf — but the majority within that branch is label 1.
	// Use a second feature whose rare value would overfit.
	var X [][]int
	var y []int
	for i := 0; i < 99; i++ {
		X = append(X, []int{0, i % 5})
		y = append(y, 0)
	}
	X = append(X, []int{1, 0})
	y = append(y, 1)
	pruned := TrainTree(X, y, nil, 2, TreeConfig{MinLeafFrac: 0.05})
	// The branch for x0=1 holds 1% of data < 5% threshold: replaced by a
	// leaf whose label is that branch's majority (1). So prediction holds,
	// but the tree must be tiny.
	if pruned.NodeCount() > 4 {
		t.Errorf("pruned tree has %d nodes", pruned.NodeCount())
	}
	unpruned := TrainTree(X, y, nil, 2, TreeConfig{MinLeafFrac: 0})
	if unpruned.NodeCount() < pruned.NodeCount() {
		t.Error("pruning increased node count")
	}
}

func TestTreeMaxDepth(t *testing.T) {
	X, y := xorData()
	tree := TrainTree(X, y, nil, 2, TreeConfig{MinLeafFrac: 0, MaxDepth: 1})
	if tree.Depth() > 1 {
		t.Errorf("depth = %d with MaxDepth 1", tree.Depth())
	}
}

func TestTreeWeightsInfluenceSplits(t *testing.T) {
	// Two features both partially predictive; weighting flips which
	// matters. y mostly follows x0, but samples where x1 matters get
	// huge weights.
	X := [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []int{0, 1, 0, 1} // y == x1 exactly
	w := []float64{1, 1, 1, 1}
	tree := TrainTree(X, y, w, 2, TreeConfig{})
	if tree.RootFeature() != 1 {
		t.Fatalf("root = %d, want 1", tree.RootFeature())
	}
	// Give overwhelming weight to two samples that make x0 look perfect
	// (x0=0 -> 0, x0=1 -> 1), drowning the others.
	y2 := []int{0, 0, 1, 1} // y == x0 exactly now
	tree2 := TrainTree(X, y2, w, 2, TreeConfig{})
	if tree2.RootFeature() != 0 {
		t.Fatalf("root = %d, want 0", tree2.RootFeature())
	}
}

func TestTreeFallbackOnUnseenBin(t *testing.T) {
	X := [][]int{{0}, {0}, {1}, {1}, {1}}
	y := []int{0, 0, 1, 1, 1}
	tree := TrainTree(X, y, nil, 2, TreeConfig{})
	// Bin 4 never seen: falls back to node majority (1: three samples).
	if got := tree.Predict([]int{4}); got != 1 {
		t.Errorf("unseen bin predicted %d, want majority 1", got)
	}
}

func TestTreePureLeafShortCircuit(t *testing.T) {
	X := [][]int{{0, 1}, {1, 0}, {2, 1}}
	y := []int{1, 1, 1}
	tree := TrainTree(X, y, nil, 2, TreeConfig{})
	if !tree.root.leaf || tree.Predict([]int{9, 9}) != 1 {
		t.Error("pure dataset should produce a single leaf")
	}
}

func TestTreeRender(t *testing.T) {
	X, y := xorData()
	tree := TrainTree(X, y, nil, 2, TreeConfig{})
	out := tree.Render([]string{"featA", "featB", "noise"}, []string{"neg", "pos"}, 0)
	if !strings.Contains(out, "featA") && !strings.Contains(out, "featB") {
		t.Errorf("render missing feature names:\n%s", out)
	}
	if !strings.Contains(out, "pos") || !strings.Contains(out, "neg") {
		t.Errorf("render missing class names:\n%s", out)
	}
	truncated := tree.Render(nil, nil, 1)
	if len(truncated) >= len(out) {
		t.Error("depth-limited render not shorter")
	}
}

func TestTreeDeterministic(t *testing.T) {
	X, y := xorData()
	a := TrainTree(X, y, nil, 2, TreeConfig{MinLeafFrac: 0.01})
	b := TrainTree(X, y, nil, 2, TreeConfig{MinLeafFrac: 0.01})
	if a.Render(nil, nil, 0) != b.Render(nil, nil, 0) {
		t.Error("tree training not deterministic")
	}
}

func TestTreePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty data")
		}
	}()
	TrainTree(nil, nil, nil, 2, TreeConfig{})
}

func TestAdaBoostImprovesMinorityRecall(t *testing.T) {
	// Skewed data: 90% class 0 trivially predictable, 10% class 1
	// requiring a second feature. Boosting should recover class-1 recall
	// relative to a heavily pruned single tree.
	r := rng.New(5)
	var X [][]int
	var y []int
	for i := 0; i < 500; i++ {
		x0 := r.Intn(2)
		x1 := r.Intn(5)
		label := 0
		if x0 == 1 && x1 >= 3 {
			label = 1
		}
		X = append(X, []int{x0, x1})
		y = append(y, label)
	}
	single := TrainTree(X, y, nil, 2, TreeConfig{MinLeafFrac: 0.25})
	boosted := TrainAdaBoost(X, y, 2, BoostConfig{
		Rounds: 15, Tree: TreeConfig{MinLeafFrac: 0.25}, Mode: BoostLastTree})
	recall := func(c Classifier) float64 {
		tp, actual := 0, 0
		for i := range X {
			if y[i] != 1 {
				continue
			}
			actual++
			if c.Predict(X[i]) == 1 {
				tp++
			}
		}
		return float64(tp) / float64(actual)
	}
	if recall(boosted) < recall(single) {
		t.Errorf("boosted recall %.3f < single-tree recall %.3f", recall(boosted), recall(single))
	}
}

func TestAdaBoostEnsembleMode(t *testing.T) {
	X, y := xorData()
	clf := TrainAdaBoost(X, y, 2, BoostConfig{Rounds: 5, Tree: DefaultTreeConfig(), Mode: BoostEnsemble})
	ens, ok := clf.(*Ensemble)
	if !ok {
		t.Fatalf("ensemble mode returned %T", clf)
	}
	if ens.Rounds() < 1 {
		t.Fatal("no rounds retained")
	}
	correct := 0
	for i := range X {
		if ens.Predict(X[i]) == y[i] {
			correct++
		}
	}
	if correct < len(y)*9/10 {
		t.Errorf("ensemble accuracy %d/%d", correct, len(y))
	}
}

func TestAdaBoostPerfectLearnerStops(t *testing.T) {
	// XOR is perfectly learnable: boosting should stop early after a
	// zero-error round rather than run all rounds.
	X, y := xorData()
	clf := TrainAdaBoost(X, y, 2, BoostConfig{Rounds: 15, Tree: DefaultTreeConfig(), Mode: BoostEnsemble})
	if ens := clf.(*Ensemble); ens.Rounds() > 2 {
		t.Errorf("boosting ran %d rounds on separable data", ens.Rounds())
	}
}

func TestOversample(t *testing.T) {
	X := [][]int{{0}, {1}, {2}}
	y := []int{0, 1, 2}
	ox, oy := Oversample(X, y, map[int]int{1: 3, 2: 2})
	if len(oy) != 1+3+2 {
		t.Fatalf("oversampled to %d", len(oy))
	}
	counts := map[int]int{}
	for _, c := range oy {
		counts[c]++
	}
	if counts[0] != 1 || counts[1] != 3 || counts[2] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if len(ox) != len(oy) {
		t.Error("X/y length mismatch")
	}
}

func TestOversamplePaperRatios(t *testing.T) {
	y := []int{0, 1, 0, 1}
	X := [][]int{{0}, {0}, {0}, {0}}
	_, oy := Oversample2Class(X, y)
	ones := 0
	for _, c := range oy {
		if c == 1 {
			ones++
		}
	}
	if ones != 4 { // 2 unhealthy x2
		t.Errorf("2-class oversample ones = %d, want 4", ones)
	}
	y5 := []int{0, 1, 2, 3, 4}
	X5 := [][]int{{0}, {0}, {0}, {0}, {0}}
	_, oy5 := Oversample5Class(X5, y5)
	counts := map[int]int{}
	for _, c := range oy5 {
		counts[c]++
	}
	if counts[0] != 1 || counts[1] != 3 || counts[2] != 3 || counts[3] != 2 || counts[4] != 1 {
		t.Errorf("5-class counts = %v", counts)
	}
}

func TestMajority(t *testing.T) {
	m := TrainMajority([]int{0, 1, 1, 1, 2}, 3)
	if m.Predict([]int{42}) != 1 {
		t.Errorf("majority = %d", m.Predict(nil))
	}
}
