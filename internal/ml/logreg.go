package ml

import (
	"math"

	"mpa/internal/obs"
)

// LogRegConfig controls logistic-regression training.
type LogRegConfig struct {
	// Iterations bounds the IRLS (Newton) steps; convergence is usually
	// reached well before the bound.
	Iterations int
	// L2 is the ridge penalty, which also keeps the Newton system
	// well-conditioned under collinear confounders.
	L2 float64
	// Tolerance stops iteration when the max coefficient update falls
	// below it.
	Tolerance float64
}

// DefaultLogRegConfig returns settings sufficient for propensity-score
// estimation over ~30 standardized, often collinear features.
func DefaultLogRegConfig() LogRegConfig {
	return LogRegConfig{Iterations: 50, L2: 1e-4, Tolerance: 1e-8}
}

// LogReg is a binary logistic-regression model over float features. MPA
// uses it to estimate propensity scores: the probability a case received
// treatment given its confounding practices (paper §5.2.3, after Stuart &
// Rubin).
type LogReg struct {
	weights []float64 // coefficients, bias last
	mean    []float64 // feature standardization
	std     []float64
	iters   int // Newton steps actually taken
}

// Iterations returns the number of IRLS steps training performed before
// converging or hitting the bound.
func (m *LogReg) Iterations() int { return m.iters }

// TrainLogReg fits the model by iteratively reweighted least squares
// (Newton's method) on standardized features. IRLS converges in a handful
// of iterations even when confounders are strongly collinear — the regime
// propensity-score estimation lives in (paper §5.1.2: many practices are
// statistically dependent on each other). Training is deterministic.
func TrainLogReg(X [][]float64, y []int, cfg LogRegConfig) *LogReg {
	if len(X) == 0 {
		panic("ml: TrainLogReg with no data")
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 50
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1e-8
	}
	d := len(X[0])
	m := &LogReg{
		weights: make([]float64, d+1),
		mean:    make([]float64, d),
		std:     make([]float64, d),
	}
	// Standardize: zero mean, unit variance (constant features get
	// std 1 so they contribute nothing).
	n := float64(len(X))
	for j := 0; j < d; j++ {
		var sum float64
		for i := range X {
			sum += X[i][j]
		}
		m.mean[j] = sum / n
		var ss float64
		for i := range X {
			dv := X[i][j] - m.mean[j]
			ss += dv * dv
		}
		m.std[j] = math.Sqrt(ss / n)
		if m.std[j] == 0 {
			m.std[j] = 1
		}
	}
	Z := make([][]float64, len(X))
	for i := range X {
		row := make([]float64, d+1)
		for j := 0; j < d; j++ {
			row[j] = (X[i][j] - m.mean[j]) / m.std[j]
		}
		row[d] = 1 // intercept column
		Z[i] = row
	}

	dim := d + 1
	hess := make([][]float64, dim)
	for j := range hess {
		hess[j] = make([]float64, dim)
	}
	grad := make([]float64, dim)
	for it := 0; it < cfg.Iterations; it++ {
		m.iters++
		for j := 0; j < dim; j++ {
			grad[j] = 0
			for k := 0; k < dim; k++ {
				hess[j][k] = 0
			}
		}
		for i := range Z {
			p := m.probStd(Z[i][:d])
			err := p - float64(y[i])
			wgt := p * (1 - p)
			if wgt < 1e-10 {
				wgt = 1e-10
			}
			for j := 0; j < dim; j++ {
				grad[j] += err * Z[i][j]
				zj := wgt * Z[i][j]
				for k := j; k < dim; k++ {
					hess[j][k] += zj * Z[i][k]
				}
			}
		}
		// Symmetrize, add ridge (not on the intercept), and solve.
		for j := 0; j < dim; j++ {
			for k := 0; k < j; k++ {
				hess[j][k] = hess[k][j]
			}
			if j < d {
				grad[j] += cfg.L2 * n * m.weights[j]
				hess[j][j] += cfg.L2 * n
			}
			hess[j][j] += 1e-9 // numeric floor
		}
		step := solve(hess, grad)
		maxStep := 0.0
		for j := 0; j < dim; j++ {
			m.weights[j] -= step[j]
			if s := math.Abs(step[j]); s > maxStep {
				maxStep = s
			}
		}
		if maxStep < cfg.Tolerance {
			break
		}
	}
	obs.GetCounter("ml.logreg_iterations").Add(int64(m.iters))
	return m
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// A, returning x with A x = b. Dimensions are tiny (confounder count + 1).
func solve(A [][]float64, b []float64) []float64 {
	n := len(b)
	// Copy.
	M := make([][]float64, n)
	for i := range M {
		M[i] = append(append([]float64{}, A[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(M[r][col]) > math.Abs(M[pivot][col]) {
				pivot = r
			}
		}
		M[col], M[pivot] = M[pivot], M[col]
		p := M[col][col]
		if math.Abs(p) < 1e-300 {
			continue // singular direction; leave step zero
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := M[r][col] / p
			for c := col; c <= n; c++ {
				M[r][c] -= f * M[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		if math.Abs(M[i][i]) < 1e-300 {
			x[i] = 0
			continue
		}
		x[i] = M[i][n] / M[i][i]
	}
	return x
}

// probStd evaluates the model on an already-standardized row.
func (m *LogReg) probStd(z []float64) float64 {
	total := m.weights[len(m.weights)-1]
	for j, v := range z {
		total += m.weights[j] * v
	}
	return sigmoid(total)
}

// Prob returns P(y=1 | x) for a raw (unstandardized) feature row.
func (m *LogReg) Prob(x []float64) float64 {
	total := m.weights[len(m.weights)-1]
	for j, v := range x {
		total += m.weights[j] * (v - m.mean[j]) / m.std[j]
	}
	return sigmoid(total)
}

func sigmoid(v float64) float64 {
	if v >= 0 {
		e := math.Exp(-v)
		return 1 / (1 + e)
	}
	e := math.Exp(v)
	return e / (1 + e)
}
