package ml

import (
	"math"

	"mpa/internal/obs"
)

// BoostMode selects what AdaBoost returns as the final learner.
type BoostMode int

const (
	// BoostEnsemble votes across all iterations' trees weighted by their
	// stage coefficients (standard SAMME).
	BoostEnsemble BoostMode = iota
	// BoostLastTree returns the single tree built from the final
	// iteration's re-weighted examples — the paper's formulation ("the
	// final learner (i.e., decision tree) is built from the last
	// iteration's weighted examples", §6.1).
	BoostLastTree
)

// BoostConfig controls AdaBoost training.
type BoostConfig struct {
	Rounds int // the paper uses 15
	Tree   TreeConfig
	Mode   BoostMode
	// Obs, when set, records per-round boost_rounds and tree_nodes
	// counters on the span.
	Obs *obs.Span
}

// DefaultBoostConfig returns the paper's round count (15) with ensemble
// voting. The paper's prose describes keeping only the last iteration's
// tree (BoostLastTree); a single adversarially-reweighted tree is often
// weaker than the stage-weighted vote, so the default uses the standard
// SAMME ensemble, which reproduces the paper's reported "minor
// improvement" of AdaBoost over a plain tree. The last-tree variant stays
// available for ablation.
func DefaultBoostConfig() BoostConfig {
	return BoostConfig{Rounds: 15, Tree: DefaultTreeConfig(), Mode: BoostEnsemble}
}

// Ensemble is a stage-weighted vote over trees (SAMME).
type Ensemble struct {
	trees   []*Tree
	alphas  []float64
	classes int
}

// Predict returns the class with the largest total stage weight.
func (e *Ensemble) Predict(x []int) int {
	votes := make([]float64, e.classes)
	for i, t := range e.trees {
		votes[t.Predict(x)] += e.alphas[i]
	}
	best := 0
	for c := 1; c < e.classes; c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return best
}

// Rounds returns the number of boosting rounds retained.
func (e *Ensemble) Rounds() int { return len(e.trees) }

// TrainAdaBoost runs multiclass AdaBoost (SAMME: Zhu et al.) over decision
// trees. Each round increases the weight of misclassified examples and
// decreases the weight of correct ones, then refits. With
// BoostMode == BoostLastTree the returned classifier is the single tree of
// the last round, per the paper; with BoostEnsemble it is the weighted
// vote.
func TrainAdaBoost(X [][]int, y []int, classes int, cfg BoostConfig) Classifier {
	n := len(y)
	if n == 0 {
		panic("ml: TrainAdaBoost with no data")
	}
	if cfg.Rounds < 1 {
		cfg.Rounds = 1
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	ens := &Ensemble{classes: classes}
	var lastTree *Tree
	for round := 0; round < cfg.Rounds; round++ {
		tree := TrainTree(X, y, w, classes, cfg.Tree)
		lastTree = tree
		cfg.Obs.Count("boost_rounds", 1)
		cfg.Obs.Count("tree_nodes", float64(tree.NodeCount()))
		obs.GetCounter("ml.boost_rounds").Add(1)
		var err float64
		miss := make([]bool, n)
		for i := range y {
			if tree.Predict(X[i]) != y[i] {
				miss[i] = true
				err += w[i]
			}
		}
		// SAMME stage weight; the K-1 term admits weak learners with
		// error below (K-1)/K rather than 1/2.
		if err <= 1e-12 {
			ens.trees = append(ens.trees, tree)
			ens.alphas = append(ens.alphas, 10) // effectively decisive
			break
		}
		if err >= 1-1/float64(classes) {
			// Worse than chance: stop boosting, keep what we have.
			if len(ens.trees) == 0 {
				ens.trees = append(ens.trees, tree)
				ens.alphas = append(ens.alphas, 1)
			}
			break
		}
		alpha := math.Log((1-err)/err) + math.Log(float64(classes-1))
		ens.trees = append(ens.trees, tree)
		ens.alphas = append(ens.alphas, alpha)
		// Reweight and renormalize.
		var total float64
		for i := range w {
			if miss[i] {
				w[i] *= math.Exp(alpha)
			}
			total += w[i]
		}
		for i := range w {
			w[i] /= total
		}
	}
	if cfg.Mode == BoostLastTree {
		return lastTree
	}
	return ens
}
