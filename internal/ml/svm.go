package ml

import "mpa/internal/rng"

// SVMConfig controls linear-SVM training.
type SVMConfig struct {
	Lambda float64 // L2 regularization strength
	Epochs int     // passes over the data
}

// DefaultSVMConfig returns reasonable Pegasos hyperparameters.
func DefaultSVMConfig() SVMConfig { return SVMConfig{Lambda: 1e-4, Epochs: 20} }

// SVM is a linear multiclass (one-vs-rest) support vector machine trained
// with Pegasos-style stochastic subgradient descent on hinge loss. The
// paper found SVMs perform worse than a majority classifier on this task
// because unhealthy cases concentrate in a small region of practice space
// (§6.1) — the baseline exists to reproduce that comparison.
type SVM struct {
	weights [][]float64 // per class: weight vector + bias at end
	classes int
}

// TrainSVM fits one linear separator per class (one-vs-rest) over the
// binned features (treated as numeric values).
func TrainSVM(X [][]int, y []int, classes int, cfg SVMConfig, r *rng.RNG) *SVM {
	if len(X) == 0 {
		panic("ml: TrainSVM with no data")
	}
	d := len(X[0])
	s := &SVM{classes: classes}
	for c := 0; c < classes; c++ {
		w := make([]float64, d+1)
		t := 0
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			order := r.Perm(len(X))
			for _, i := range order {
				t++
				eta := 1 / (cfg.Lambda * float64(t))
				label := -1.0
				if y[i] == c {
					label = 1
				}
				margin := dotBias(w, X[i]) * label
				for j := 0; j < d; j++ {
					w[j] *= 1 - eta*cfg.Lambda
				}
				if margin < 1 {
					for j := 0; j < d; j++ {
						w[j] += eta * label * float64(X[i][j])
					}
					w[d] += eta * label
				}
			}
		}
		s.weights = append(s.weights, w)
	}
	return s
}

func dotBias(w []float64, x []int) float64 {
	total := w[len(w)-1]
	for j, v := range x {
		total += w[j] * float64(v)
	}
	return total
}

// Predict returns the class whose separator scores highest.
func (s *SVM) Predict(x []int) int {
	best, bestScore := 0, dotBias(s.weights[0], x)
	for c := 1; c < s.classes; c++ {
		if score := dotBias(s.weights[c], x); score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}
