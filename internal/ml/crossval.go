package ml

import (
	"mpa/internal/obs"
	"mpa/internal/par"
	"mpa/internal/rng"
)

// Trainer fits a classifier on a training fold. Skew remedies
// (oversampling, boosting) must be applied inside the trainer so they see
// only training data.
//
// CrossValidate trains folds concurrently, so a Trainer must be safe to
// call from multiple goroutines: any randomness has to come from a
// generator created inside the call (the rng.New(seed) pattern every
// trainer in this repository uses), never from state shared across calls.
type Trainer func(X [][]int, y []int) Classifier

// CrossValidate runs stratified k-fold cross-validation and returns the
// pooled evaluation (paper §6.1: 5-fold). Folds are stratified so each
// fold preserves the skewed class mix, and the assignment is drawn from r
// for reproducibility — before the folds fan out onto worker goroutines,
// so the evaluation is identical at every worker count.
func CrossValidate(X [][]int, y []int, classes, k int, train Trainer, r *rng.RNG) Evaluation {
	folds := StratifiedFolds(y, classes, k, r)
	type foldEval struct {
		ev Evaluation
		ok bool
	}
	pt := obs.StartProgress("cv", int64(k))
	evals, _ := par.Map(0, make([]struct{}, k), func(f int, _ struct{}) (foldEval, error) {
		var trX, teX [][]int
		var trY, teY []int
		for i := range y {
			if folds[i] == f {
				teX = append(teX, X[i])
				teY = append(teY, y[i])
			} else {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		if len(teY) == 0 || len(trY) == 0 {
			pt.Add(1)
			return foldEval{}, nil
		}
		clf := train(trX, trY)
		pred := make([]int, len(teY))
		for i := range teX {
			pred[i] = clf.Predict(teX[i])
		}
		obs.GetCounter("ml.cv_folds").Add(1)
		pt.Add(1)
		return foldEval{ev: Evaluate(pred, teY, classes), ok: true}, nil
	})
	pt.Done()
	pooled := make([]Evaluation, 0, k)
	for _, fe := range evals {
		if fe.ok {
			pooled = append(pooled, fe.ev)
		}
	}
	return Merge(pooled, classes)
}

// StratifiedFolds assigns each sample a fold in [0, k) such that each
// class's samples are spread evenly across folds.
func StratifiedFolds(y []int, classes, k int, r *rng.RNG) []int {
	folds := make([]int, len(y))
	for c := 0; c < classes; c++ {
		var idx []int
		for i, yi := range y {
			if yi == c {
				idx = append(idx, i)
			}
		}
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for pos, i := range idx {
			folds[i] = pos % k
		}
	}
	return folds
}
