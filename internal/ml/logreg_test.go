package ml

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSolveIdentity(t *testing.T) {
	A := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	b := []float64{3, -2, 7}
	x := solve(A, b)
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
	A := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x := solve(A, b)
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	A := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x := solve(A, b)
	if math.Abs(x[0]-3) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSingularDoesNotPanic(t *testing.T) {
	A := [][]float64{{1, 1}, {1, 1}}
	b := []float64{2, 2}
	x := solve(A, b) // rank-deficient: any solution with zeroed null step
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite solution %v", x)
		}
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	A := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	solve(A, b)
	if A[0][0] != 2 || A[1][1] != 3 || b[0] != 5 {
		t.Fatal("solve mutated its inputs")
	}
}

func TestSolveRandomSPDProperty(t *testing.T) {
	// For random symmetric positive-definite systems, A*solve(A,b) == b.
	f := func(seed uint64) bool {
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>40)/(1<<23) - 0.5
		}
		const n = 5
		// A = M^T M + I is SPD.
		M := make([][]float64, n)
		for i := range M {
			M[i] = make([]float64, n)
			for j := range M[i] {
				M[i][j] = next()
			}
		}
		A := make([][]float64, n)
		b := make([]float64, n)
		for i := range A {
			A[i] = make([]float64, n)
			for j := range A[i] {
				for k := 0; k < n; k++ {
					A[i][j] += M[k][i] * M[k][j]
				}
				if i == j {
					A[i][j]++
				}
			}
			b[i] = next()
		}
		x := solve(A, b)
		for i := 0; i < n; i++ {
			var sum float64
			for j := 0; j < n; j++ {
				sum += A[i][j] * x[j]
			}
			if math.Abs(sum-b[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogRegConvergesFast(t *testing.T) {
	// IRLS should reach the optimum within the iteration budget even on
	// collinear features (the propensity-score regime).
	var X [][]float64
	var y []int
	s := uint64(7)
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>40) / (1 << 24)
	}
	for i := 0; i < 400; i++ {
		z := next()
		x1 := z + 0.01*next() // nearly identical features
		x2 := z + 0.01*next()
		label := 0
		if z+0.3*next() > 0.6 {
			label = 1
		}
		X = append(X, []float64{x1, x2})
		y = append(y, label)
	}
	cfg := DefaultLogRegConfig()
	m := TrainLogReg(X, y, cfg)
	// Probability must be monotone in z despite collinearity.
	if m.Prob([]float64{0.9, 0.9}) <= m.Prob([]float64{0.1, 0.1}) {
		t.Error("collinear fit not monotone in the underlying signal")
	}
}

func TestLogRegDeterministic(t *testing.T) {
	X := [][]float64{{1, 2}, {2, 1}, {3, 4}, {4, 3}}
	y := []int{0, 0, 1, 1}
	a := TrainLogReg(X, y, DefaultLogRegConfig())
	b := TrainLogReg(X, y, DefaultLogRegConfig())
	for i := range a.weights {
		if a.weights[i] != b.weights[i] {
			t.Fatal("training not deterministic")
		}
	}
}
