package ml

import (
	"math"
	"testing"

	"mpa/internal/rng"
)

func TestEvaluate(t *testing.T) {
	truth := []int{0, 0, 1, 1, 1}
	pred := []int{0, 1, 1, 1, 0}
	ev := Evaluate(pred, truth, 2)
	if math.Abs(ev.Accuracy-0.6) > 1e-12 {
		t.Errorf("accuracy = %v", ev.Accuracy)
	}
	// class 1: predicted 3 times, 2 correct; actual 3, 2 found.
	if math.Abs(ev.Precision[1]-2.0/3) > 1e-12 {
		t.Errorf("precision[1] = %v", ev.Precision[1])
	}
	if math.Abs(ev.Recall[1]-2.0/3) > 1e-12 {
		t.Errorf("recall[1] = %v", ev.Recall[1])
	}
	if ev.Confusion[0][1] != 1 || ev.Confusion[1][0] != 1 {
		t.Errorf("confusion = %v", ev.Confusion)
	}
}

func TestEvaluateEmptyClass(t *testing.T) {
	ev := Evaluate([]int{0, 0}, []int{0, 0}, 3)
	if ev.Precision[2] != 0 || ev.Recall[2] != 0 {
		t.Error("absent class should have zero precision/recall")
	}
	if ev.Accuracy != 1 {
		t.Errorf("accuracy = %v", ev.Accuracy)
	}
}

func TestMergePoolsConfusions(t *testing.T) {
	a := Evaluate([]int{0, 1}, []int{0, 0}, 2)
	b := Evaluate([]int{1, 1}, []int{1, 1}, 2)
	m := Merge([]Evaluation{a, b}, 2)
	if m.N != 4 {
		t.Fatalf("merged N = %d", m.N)
	}
	if math.Abs(m.Accuracy-0.75) > 1e-12 {
		t.Errorf("merged accuracy = %v", m.Accuracy)
	}
}

func TestStratifiedFolds(t *testing.T) {
	// 100 samples: 90 class 0, 10 class 1 — every fold must hold exactly
	// 2 minority samples with k=5.
	y := make([]int, 100)
	for i := 90; i < 100; i++ {
		y[i] = 1
	}
	folds := StratifiedFolds(y, 2, 5, rng.New(1))
	perFold := map[int]int{}
	for i, f := range folds {
		if f < 0 || f >= 5 {
			t.Fatalf("fold %d out of range", f)
		}
		if y[i] == 1 {
			perFold[f]++
		}
	}
	for f := 0; f < 5; f++ {
		if perFold[f] != 2 {
			t.Errorf("fold %d has %d minority samples, want 2", f, perFold[f])
		}
	}
}

func TestCrossValidateTree(t *testing.T) {
	// Learnable task: y depends on x0 only.
	r := rng.New(2)
	var X [][]int
	var y []int
	for i := 0; i < 300; i++ {
		x0 := r.Intn(4)
		X = append(X, []int{x0, r.Intn(4)})
		label := 0
		if x0 >= 2 {
			label = 1
		}
		y = append(y, label)
	}
	ev := CrossValidate(X, y, 2, 5, func(tx [][]int, ty []int) Classifier {
		return TrainTree(tx, ty, nil, 2, DefaultTreeConfig())
	}, rng.New(3))
	if ev.Accuracy < 0.95 {
		t.Errorf("CV accuracy = %v on separable data", ev.Accuracy)
	}
	if ev.N != 300 {
		t.Errorf("pooled N = %d", ev.N)
	}
}

// TestBoostedTreeDeterministic guards the sorted-key accumulation in
// bestSplit: boosting produces irrational sample weights whose sums are
// sensitive to addition order, so if gain ratios were ever summed in map
// iteration order again, near-tie splits would flip between these two
// identically-seeded runs.
func TestBoostedTreeDeterministic(t *testing.T) {
	build := func() ([][]int, []int) {
		r := rng.New(7)
		var X [][]int
		var y []int
		for i := 0; i < 400; i++ {
			row := []int{r.Intn(8), r.Intn(8), r.Intn(8), r.Intn(8), r.Intn(8)}
			X = append(X, row)
			y = append(y, (row[0]+row[2]+r.Intn(3))%3)
		}
		return X, y
	}
	X, y := build()
	a := TrainAdaBoost(X, y, 3, DefaultBoostConfig())
	b := TrainAdaBoost(X, y, 3, DefaultBoostConfig())
	for i := range X {
		if pa, pb := a.Predict(X[i]), b.Predict(X[i]); pa != pb {
			t.Fatalf("identical training runs disagree at sample %d: %d vs %d", i, pa, pb)
		}
	}
}

func TestCrossValidateBeatsOrMatchesMajority(t *testing.T) {
	r := rng.New(4)
	var X [][]int
	var y []int
	for i := 0; i < 400; i++ {
		x := []int{r.Intn(5), r.Intn(5), r.Intn(5)}
		label := 0
		if x[0]+x[1] >= 6 {
			label = 1
		}
		X = append(X, x)
		y = append(y, label)
	}
	tree := CrossValidate(X, y, 2, 5, func(tx [][]int, ty []int) Classifier {
		return TrainTree(tx, ty, nil, 2, DefaultTreeConfig())
	}, rng.New(5))
	maj := CrossValidate(X, y, 2, 5, func(tx [][]int, ty []int) Classifier {
		return TrainMajority(ty, 2)
	}, rng.New(5))
	if tree.Accuracy <= maj.Accuracy {
		t.Errorf("tree CV %.3f <= majority CV %.3f", tree.Accuracy, maj.Accuracy)
	}
}

func TestSVMSeparable(t *testing.T) {
	// Linearly separable: y = 1 iff x0 >= 3.
	var X [][]int
	var y []int
	for v := 0; v < 6; v++ {
		for rep := 0; rep < 20; rep++ {
			X = append(X, []int{v})
			label := 0
			if v >= 3 {
				label = 1
			}
			y = append(y, label)
		}
	}
	svm := TrainSVM(X, y, 2, DefaultSVMConfig(), rng.New(6))
	correct := 0
	for i := range X {
		if svm.Predict(X[i]) == y[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(y)); frac < 0.9 {
		t.Errorf("SVM accuracy %.3f on separable data", frac)
	}
}

func TestSVMDeterministicGivenSeed(t *testing.T) {
	X := [][]int{{0}, {1}, {2}, {3}}
	y := []int{0, 0, 1, 1}
	a := TrainSVM(X, y, 2, DefaultSVMConfig(), rng.New(7))
	b := TrainSVM(X, y, 2, DefaultSVMConfig(), rng.New(7))
	for i := range a.weights {
		for j := range a.weights[i] {
			if a.weights[i][j] != b.weights[i][j] {
				t.Fatal("SVM training not deterministic under fixed seed")
			}
		}
	}
}

func TestForestVariants(t *testing.T) {
	r := rng.New(8)
	var X [][]int
	var y []int
	for i := 0; i < 400; i++ {
		x := []int{r.Intn(5), r.Intn(5), r.Intn(3)}
		label := 0
		if x[0] >= 3 && x[1] >= 2 {
			label = 1
		}
		X = append(X, x)
		y = append(y, label)
	}
	// The concept needs both informative features, so sample 2 per tree.
	// The balanced variant trades accuracy on the skewed majority for
	// minority recall, so its accuracy bar is lower.
	minAcc := map[ForestVariant]float64{ForestPlain: 0.85, ForestBalanced: 0.6, ForestWeighted: 0.85}
	for _, variant := range []ForestVariant{ForestPlain, ForestBalanced, ForestWeighted} {
		cfg := DefaultForestConfig()
		cfg.Variant = variant
		cfg.Trees = 25
		cfg.Features = 2
		f := TrainForest(X, y, 2, cfg, rng.New(9))
		if f.Size() != 25 {
			t.Fatalf("variant %d: %d trees", variant, f.Size())
		}
		correct := 0
		for i := range X {
			if f.Predict(X[i]) == y[i] {
				correct++
			}
		}
		if frac := float64(correct) / float64(len(y)); frac < minAcc[variant] {
			t.Errorf("variant %d accuracy %.3f", variant, frac)
		}
	}
}

func TestBalancedForestBoostsMinorityRecall(t *testing.T) {
	r := rng.New(10)
	var X [][]int
	var y []int
	for i := 0; i < 600; i++ {
		x := []int{r.Intn(6), r.Intn(6)}
		label := 0
		// Minority region ~8% of space, slightly noisy.
		if x[0] == 5 && x[1] >= 3 {
			label = 1
		}
		X = append(X, x)
		y = append(y, label)
	}
	recall := func(f *Forest) float64 {
		tp, act := 0, 0
		for i := range X {
			if y[i] != 1 {
				continue
			}
			act++
			if f.Predict(X[i]) == 1 {
				tp++
			}
		}
		if act == 0 {
			return 0
		}
		return float64(tp) / float64(act)
	}
	plainCfg := DefaultForestConfig()
	plainCfg.Trees = 30
	plainCfg.Tree.MinLeafFrac = 0.1 // weak trees: imbalance hurts
	balCfg := plainCfg
	balCfg.Variant = ForestBalanced
	plain := TrainForest(X, y, 2, plainCfg, rng.New(11))
	bal := TrainForest(X, y, 2, balCfg, rng.New(11))
	if recall(bal) < recall(plain) {
		t.Errorf("balanced recall %.3f < plain recall %.3f", recall(bal), recall(plain))
	}
}

func TestLogRegSeparable(t *testing.T) {
	var X [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		v := float64(i % 10)
		X = append(X, []float64{v, 3})
		label := 0
		if v >= 5 {
			label = 1
		}
		y = append(y, label)
	}
	m := TrainLogReg(X, y, DefaultLogRegConfig())
	if p := m.Prob([]float64{9, 3}); p < 0.8 {
		t.Errorf("P(high) = %v", p)
	}
	if p := m.Prob([]float64{0, 3}); p > 0.2 {
		t.Errorf("P(low) = %v", p)
	}
	// Probabilities must be monotone in the predictive feature.
	prev := -1.0
	for v := 0.0; v <= 9; v++ {
		p := m.Prob([]float64{v, 3})
		if p < prev {
			t.Fatalf("probability not monotone at %v", v)
		}
		prev = p
	}
}

func TestLogRegConstantFeatureHarmless(t *testing.T) {
	X := [][]float64{{1, 7}, {2, 7}, {3, 7}, {4, 7}}
	y := []int{0, 0, 1, 1}
	m := TrainLogReg(X, y, DefaultLogRegConfig())
	if p := m.Prob([]float64{4, 7}); math.IsNaN(p) || p < 0.5 {
		t.Errorf("prob with constant feature = %v", p)
	}
}

func TestLogRegBalancedPriorGivesHalf(t *testing.T) {
	// Pure noise with balanced labels: probabilities near 0.5.
	X := [][]float64{{1}, {1}, {1}, {1}}
	y := []int{0, 1, 0, 1}
	m := TrainLogReg(X, y, DefaultLogRegConfig())
	if p := m.Prob([]float64{1}); math.Abs(p-0.5) > 0.05 {
		t.Errorf("noise prob = %v, want ~0.5", p)
	}
}

func TestSigmoidStable(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Errorf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Errorf("sigmoid(-1000) = %v", s)
	}
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", s)
	}
}
