// Package ml implements the predictive-modeling stack of MPA (paper §6):
// C4.5-style decision trees over binned practice metrics, AdaBoost,
// minority-class oversampling, and the baselines the paper compares
// against (majority-class, linear SVM, balanced and weighted random
// forests), plus stratified cross-validation and the standard
// classification metrics.
package ml

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mpa/internal/obs"
)

// Classifier predicts a class label from a binned feature vector.
type Classifier interface {
	Predict(x []int) int
}

// TreeConfig controls decision-tree training.
type TreeConfig struct {
	// MinLeafFrac is the paper's pruning threshold alpha: any branch
	// reached by less than this fraction of the training weight is
	// replaced by a majority leaf. The paper sets alpha to 1% of all
	// data.
	MinLeafFrac float64
	// MaxDepth bounds tree depth (0 = unlimited).
	MaxDepth int
}

// DefaultTreeConfig returns the paper's settings (alpha = 1%).
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MinLeafFrac: 0.01}
}

// treeNode is an internal or leaf node.
type treeNode struct {
	// Leaf fields.
	leaf  bool
	class int
	// Internal fields.
	feature  int
	children map[int]*treeNode
	fallback int // majority class at this node, for unseen bins
}

// Tree is a trained C4.5-style decision tree over categorical (binned)
// features. Splits are multiway on feature value; the split criterion is
// gain ratio (information gain normalized by split information), Quinlan's
// refinement over plain information gain.
type Tree struct {
	root    *treeNode
	classes int
}

// TrainTree builds a decision tree from binned features X, labels y, and
// optional per-sample weights w (nil = uniform). classes is the number of
// distinct labels. Training is deterministic.
func TrainTree(X [][]int, y []int, w []float64, classes int, cfg TreeConfig) *Tree {
	if len(X) == 0 || len(X) != len(y) {
		panic("ml: TrainTree with empty or mismatched data")
	}
	if w == nil {
		w = make([]float64, len(y))
		for i := range w {
			w[i] = 1
		}
	}
	var total float64
	for _, wi := range w {
		total += wi
	}
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	used := make([]bool, len(X[0]))
	t := &Tree{classes: classes}
	minWeight := cfg.MinLeafFrac * total
	t.root = build(X, y, w, idx, used, classes, minWeight, cfg.MaxDepth, 0)
	obs.GetCounter("ml.tree_nodes").Add(int64(t.NodeCount()))
	obs.GetCounter("ml.trees_trained").Add(1)
	return t
}

// build recursively constructs the tree over the samples in idx.
func build(X [][]int, y []int, w []float64, idx []int, used []bool, classes int, minWeight float64, maxDepth, depth int) *treeNode {
	majority, pure, weight := classStats(y, w, idx, classes)
	if pure || weight < minWeight || (maxDepth > 0 && depth >= maxDepth) {
		return &treeNode{leaf: true, class: majority}
	}
	feature, groups, ok := bestSplit(X, y, w, idx, used, classes)
	if !ok {
		return &treeNode{leaf: true, class: majority}
	}
	node := &treeNode{feature: feature, children: map[int]*treeNode{}, fallback: majority}
	used[feature] = true
	// Deterministic child order.
	vals := make([]int, 0, len(groups))
	for v := range groups {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	for _, v := range vals {
		child := groups[v]
		// The paper's alpha-pruning: branches reached by too little data
		// become majority leaves.
		if groupWeight(w, child) < minWeight {
			m, _, _ := classStats(y, w, child, classes)
			node.children[v] = &treeNode{leaf: true, class: m}
			continue
		}
		node.children[v] = build(X, y, w, child, used, classes, minWeight, maxDepth, depth+1)
	}
	used[feature] = false
	return node
}

// classStats returns the majority class, purity, and total weight of the
// samples in idx.
func classStats(y []int, w []float64, idx []int, classes int) (majority int, pure bool, weight float64) {
	counts := make([]float64, classes)
	for _, i := range idx {
		counts[y[i]] += w[i]
		weight += w[i]
	}
	best := 0.0
	nonzero := 0
	for c, cw := range counts {
		if cw > 0 {
			nonzero++
		}
		if cw > best {
			best = cw
			majority = c
		}
	}
	return majority, nonzero <= 1, weight
}

func groupWeight(w []float64, idx []int) float64 {
	var total float64
	for _, i := range idx {
		total += w[i]
	}
	return total
}

// weightedEntropy returns the class entropy of the samples in idx.
func weightedEntropy(y []int, w []float64, idx []int, classes int) float64 {
	counts := make([]float64, classes)
	var total float64
	for _, i := range idx {
		counts[y[i]] += w[i]
		total += w[i]
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := c / total
		h -= p * math.Log2(p)
	}
	return h
}

// bestSplit finds the unused feature with the highest gain ratio. It
// returns false when no feature yields positive information gain.
func bestSplit(X [][]int, y []int, w []float64, idx []int, used []bool, classes int) (int, map[int][]int, bool) {
	baseH := weightedEntropy(y, w, idx, classes)
	total := groupWeight(w, idx)
	bestRatio := 0.0
	bestFeature := -1
	var bestGroups map[int][]int
	for f := range used {
		if used[f] {
			continue
		}
		groups := map[int][]int{}
		for _, i := range idx {
			groups[X[i][f]] = append(groups[X[i][f]], i)
		}
		if len(groups) < 2 {
			continue
		}
		// Accumulate in sorted bin order: float addition is not
		// associative, so summing in map-iteration order perturbs the
		// ratio's last bits and flips near-tie split choices between
		// otherwise identical runs.
		vals := make([]int, 0, len(groups))
		for v := range groups {
			vals = append(vals, v)
		}
		sort.Ints(vals)
		var condH, splitInfo float64
		for _, v := range vals {
			g := groups[v]
			gw := groupWeight(w, g)
			p := gw / total
			condH += p * weightedEntropy(y, w, g, classes)
			splitInfo -= p * math.Log2(p)
		}
		gain := baseH - condH
		if gain <= 1e-12 || splitInfo <= 1e-12 {
			continue
		}
		ratio := gain / splitInfo
		if ratio > bestRatio || (ratio == bestRatio && (bestFeature == -1 || f < bestFeature)) {
			bestRatio = ratio
			bestFeature = f
			bestGroups = groups
		}
	}
	if bestFeature < 0 {
		return 0, nil, false
	}
	return bestFeature, bestGroups, true
}

// Predict returns the predicted class for a feature vector. Feature values
// unseen at a node fall back to the node's majority class.
func (t *Tree) Predict(x []int) int {
	n := t.root
	for !n.leaf {
		child, ok := n.children[x[n.feature]]
		if !ok {
			return n.fallback
		}
		n = child
	}
	return n.class
}

// Classes returns the number of classes the tree was trained with.
func (t *Tree) Classes() int { return t.classes }

// Depth returns the tree's depth (a lone leaf has depth 0).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *treeNode) int {
	if n.leaf {
		return 0
	}
	max := 0
	for _, c := range n.children {
		if d := depth(c); d > max {
			max = d
		}
	}
	return max + 1
}

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int { return count(t.root) }

func count(n *treeNode) int {
	if n.leaf {
		return 1
	}
	total := 1
	for _, c := range n.children {
		total += count(c)
	}
	return total
}

// RootFeature returns the index of the root split feature, or -1 if the
// tree is a single leaf. The paper notes the root is the practice with the
// strongest statistical dependence (Figure 10 discussion).
func (t *Tree) RootFeature() int {
	if t.root.leaf {
		return -1
	}
	return t.root.feature
}

// Render pretty-prints the tree's top levels (Figure 10 style).
// featureNames and classNames label splits and leaves; maxDepth bounds the
// rendering (0 = full tree).
func (t *Tree) Render(featureNames, classNames []string, maxDepth int) string {
	var b strings.Builder
	render(&b, t.root, featureNames, classNames, "", maxDepth, 0)
	return b.String()
}

func render(b *strings.Builder, n *treeNode, feats, classes []string, indent string, maxDepth, d int) {
	if n.leaf {
		fmt.Fprintf(b, "%s-> %s\n", indent, className(classes, n.class))
		return
	}
	if maxDepth > 0 && d >= maxDepth {
		fmt.Fprintf(b, "%s[%s] ...\n", indent, featName(feats, n.feature))
		return
	}
	fmt.Fprintf(b, "%s[%s]\n", indent, featName(feats, n.feature))
	vals := make([]int, 0, len(n.children))
	for v := range n.children {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	for _, v := range vals {
		fmt.Fprintf(b, "%s  = bin %d:\n", indent, v)
		render(b, n.children[v], feats, classes, indent+"    ", maxDepth, d+1)
	}
}

func featName(names []string, i int) string {
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("f%d", i)
}

func className(names []string, c int) string {
	if c < len(names) {
		return names[c]
	}
	return fmt.Sprintf("class%d", c)
}
