package report

import (
	"strings"
	"testing"

	"mpa/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Name", "Value")
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-name", "12345")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// All rows equal width.
	for _, l := range lines[1:] {
		if len(l) != len(lines[len(lines)-1]) {
			t.Errorf("misaligned line %q", l)
		}
	}
	if !strings.Contains(out, "Name") || !strings.Contains(out, "12345") {
		t.Errorf("missing content:\n%s", out)
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("A", "B", "C")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "z", "dropped")
	out := tb.String()
	if strings.Contains(out, "dropped") {
		t.Error("extra cell not dropped")
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("K", "V")
	tb.AddRowf("%s\t%.2f", "pi", 3.14159)
	if !strings.Contains(tb.String(), "3.14") {
		t.Error("AddRowf formatting lost")
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		1.5: "1.5", 2: "2", 0.125: "0.125", 0.1001: "0.1", 10.0: "10",
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestP(t *testing.T) {
	if got := P(0.05); got != "0.050" {
		t.Errorf("P(0.05) = %q", got)
	}
	if got := P(6.8e-13); got != "6.80e-13" {
		t.Errorf("P(small) = %q", got)
	}
}

func TestCDFSummary(t *testing.T) {
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = float64(i)
	}
	out := CDFSummary(vals, 10, 50, 90)
	if !strings.Contains(out, "p10=10") || !strings.Contains(out, "p50=50") || !strings.Contains(out, "p90=90") {
		t.Errorf("CDFSummary = %q", out)
	}
	if def := CDFSummary(vals); !strings.Contains(def, "p25=") {
		t.Errorf("default percentiles missing: %q", def)
	}
}

func TestBoxSummary(t *testing.T) {
	b := stats.Box([]float64{1, 2, 3, 4, 5})
	out := BoxSummary("label", b)
	if !strings.Contains(out, "label") || !strings.Contains(out, "med=3") {
		t.Errorf("BoxSummary = %q", out)
	}
}

func TestBar(t *testing.T) {
	if Bar(0, 10) != "" {
		t.Error("zero bar not empty")
	}
	if got := Bar(10, 10); len(got) != 40 {
		t.Errorf("full bar length = %d", len(got))
	}
	if got := Bar(20, 10); len(got) != 40 {
		t.Errorf("over-full bar length = %d", len(got))
	}
	if Bar(5, 0) != "" {
		t.Error("zero-max bar not empty")
	}
	if got := Bar(-3, 10); got != "" {
		t.Errorf("negative bar = %q", got)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram([]string{"a", "b"}, []int{1, 4})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("histogram lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "####") {
		t.Errorf("largest bucket bar missing: %q", lines[1])
	}
	if strings.Count(lines[0], "#") >= strings.Count(lines[1], "#") {
		t.Error("bars not proportional")
	}
}
