// Package report renders experiment output as aligned ASCII tables,
// CDF summaries, box-plot summaries, and bar charts — the textual
// equivalents of the paper's tables and figures.
package report

import (
	"fmt"
	"strings"

	"mpa/internal/stats"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...interface{}) {
	parts := strings.Split(fmt.Sprintf(format, cells...), "\t")
	t.AddRow(parts...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float compactly (trailing zeros trimmed, 3 significant
// decimals).
func F(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// P formats a p-value in scientific notation like the paper's tables.
func P(v float64) string {
	if v >= 0.01 {
		return fmt.Sprintf("%.3f", v)
	}
	return fmt.Sprintf("%.2e", v)
}

// CDFSummary renders an empirical CDF at the given fractions, e.g.
// "p10=3 p50=9 p90=34".
func CDFSummary(values []float64, percentiles ...float64) string {
	if len(percentiles) == 0 {
		percentiles = []float64{10, 25, 50, 75, 90}
	}
	parts := make([]string, 0, len(percentiles))
	for _, p := range percentiles {
		parts = append(parts, fmt.Sprintf("p%.0f=%s", p, F(stats.Percentile(values, p))))
	}
	return strings.Join(parts, " ")
}

// BoxSummary renders a stats.Box for one labelled group.
func BoxSummary(label string, b stats.BoxSummary) string {
	return fmt.Sprintf("%-24s n=%-5d mean=%-8s med=%-8s q25=%-8s q75=%-8s whiskers=[%s, %s]",
		label, b.N, F(b.Mean), F(b.Median), F(b.Q25), F(b.Q75), F(b.WhiskerLo), F(b.WhiskerHi))
}

// Bar renders a horizontal bar of width proportional to value/max (width
// capped at 40 characters).
func Bar(value, max float64) string {
	const width = 40
	if max <= 0 {
		return ""
	}
	n := int(value / max * width)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Histogram renders labelled counts with proportional bars.
func Histogram(labels []string, counts []int) string {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, l := range labels {
		c := 0
		if i < len(counts) {
			c = counts[i]
		}
		fmt.Fprintf(&b, "%-24s %5d %s\n", l, c, Bar(float64(c), float64(max)))
	}
	return b.String()
}
