package loadgen

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testTargets() Targets {
	return Targets{
		Networks:  []string{"net000", "net001", "net002"},
		Months:    []string{"2014-01", "2014-02"},
		Practices: []string{"no_change_events"},
		Reports:   []string{"table2", "table3"},
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("rank=3, network=2,manifest=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[0] != (MixEntry{"rank", 3}) || mix[2] != (MixEntry{"manifest", 1}) {
		t.Errorf("mix = %+v", mix)
	}
	if got := mix.String(); got != "rank=3,network=2,manifest=1" {
		t.Errorf("canonical mix = %q", got)
	}
	for _, bad := range []string{
		"", "rank", "rank=0", "rank=-1", "rank=x", "nosuch=1", "rank=1,rank=2",
	} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	if _, err := ParseMix(DefaultMix); err != nil {
		t.Errorf("DefaultMix does not parse: %v", err)
	}
}

func TestBuildPlanDeterministic(t *testing.T) {
	mix, _ := ParseMix(DefaultMix)
	a, err := BuildPlan(200, 2*time.Second, 42, mix, testTargets())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := BuildPlan(200, 2*time.Second, 42, mix, testTargets())
	if len(a) == 0 {
		t.Fatal("empty plan")
	}
	if len(a) != len(b) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must yield a different schedule.
	c, _ := BuildPlan(200, 2*time.Second, 43, mix, testTargets())
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("distinct seeds produced identical plans")
	}
}

func TestBuildPlanShape(t *testing.T) {
	mix, _ := ParseMix("rank=1,predict=1,causal=1,report=1")
	plan, err := BuildPlan(500, time.Second, 7, mix, testTargets())
	if err != nil {
		t.Fatal(err)
	}
	// Open-loop at 500/s over 1s: expect ~500 arrivals; Poisson noise
	// stays well inside ±40%.
	if len(plan) < 300 || len(plan) > 700 {
		t.Errorf("plan size = %d, want ≈500", len(plan))
	}
	seen := map[string]bool{}
	var last time.Duration
	for _, req := range plan {
		if req.At < last {
			t.Fatalf("arrivals not monotone: %v after %v", req.At, last)
		}
		last = req.At
		if req.At >= time.Second {
			t.Fatalf("arrival %v past the duration", req.At)
		}
		seen[req.Endpoint] = true
		switch req.Endpoint {
		case "rank":
			if req.Path != "/v1/rank" {
				t.Fatalf("rank path = %q", req.Path)
			}
		case "predict":
			if !strings.HasPrefix(req.Path, "/v1/predict?network=net00") ||
				!strings.Contains(req.Path, "&month=2014-0") {
				t.Fatalf("predict path = %q", req.Path)
			}
		case "causal":
			if req.Path != "/v1/causal?practice=no_change_events" {
				t.Fatalf("causal path = %q", req.Path)
			}
		case "report":
			if !strings.HasPrefix(req.Path, "/v1/report/table") {
				t.Fatalf("report path = %q", req.Path)
			}
		}
	}
	for _, ep := range []string{"rank", "predict", "causal", "report"} {
		if !seen[ep] {
			t.Errorf("mix endpoint %q never drawn in %d requests", ep, len(plan))
		}
	}
}

func TestBuildPlanMissingTargets(t *testing.T) {
	mix, _ := ParseMix("causal=1")
	if _, err := BuildPlan(100, time.Second, 1, mix, Targets{}); err == nil {
		t.Fatal("causal mix without practices accepted")
	}
	mix, _ = ParseMix("predict=1")
	if _, err := BuildPlan(100, time.Second, 1, mix, Targets{Months: []string{"2014-01"}}); err == nil {
		t.Fatal("predict mix without networks accepted")
	}
}

// record replays a fixed set of observations into a collector.
func record(c *Collector) {
	lat := []time.Duration{
		2 * time.Millisecond, 3 * time.Millisecond, 40 * time.Millisecond,
		900 * time.Microsecond, 7 * time.Millisecond,
	}
	for i, d := range lat {
		c.Record("rank", d, false)
		c.Record("network", d*2, i == 4) // one failure
	}
}

// TestManifestDeterministic is the satellite acceptance test: the same
// seed and the same recorded latencies must encode to a byte-identical
// load manifest.
func TestManifestDeterministic(t *testing.T) {
	cfg := Config{Rate: 100, DurationSeconds: 5, Seed: 9, Conns: 4, Mix: DefaultMix}
	createdAt := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	build := func() []byte {
		c := NewCollector()
		record(c)
		m := c.Manifest("http://localhost:8080", cfg, 5*time.Second, createdAt)
		data, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs encoded differently:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestManifestStats(t *testing.T) {
	c := NewCollector()
	record(c)
	m := c.Manifest("http://x", Config{Rate: 1, DurationSeconds: 5, Mix: "rank=1"},
		5*time.Second, time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC))
	if m.Totals.Requests != 10 || m.Totals.Errors != 1 {
		t.Errorf("totals = %+v, want 10 requests / 1 error", m.Totals)
	}
	if m.Totals.AchievedRPS != 2 {
		t.Errorf("achieved rps = %v, want 2", m.Totals.AchievedRPS)
	}
	rank := m.Endpoints["rank"]
	if rank.Requests != 5 || rank.Errors != 0 || rank.ErrorRate != 0 {
		t.Errorf("rank = %+v", rank)
	}
	if rank.LatencyMS.Min < 0.89 || rank.LatencyMS.Min > 0.91 {
		t.Errorf("rank min = %v ms, want ≈0.9", rank.LatencyMS.Min)
	}
	if rank.LatencyMS.Max < 39 || rank.LatencyMS.Max > 41 {
		t.Errorf("rank max = %v ms, want ≈40", rank.LatencyMS.Max)
	}
	if rank.LatencyMS.P50 > rank.LatencyMS.P99 {
		t.Errorf("rank percentiles not monotone: %+v", rank.LatencyMS)
	}
	network := m.Endpoints["network"]
	if network.Errors != 1 || network.ErrorRate != 0.2 {
		t.Errorf("network = %+v, want 1 error at rate 0.2", network)
	}
	for _, name := range PercentileNames {
		if _, ok := rank.LatencyMS.Percentile(name); !ok {
			t.Errorf("Percentile(%q) unknown", name)
		}
	}
	if _, ok := rank.LatencyMS.Percentile("p75"); ok {
		t.Error("Percentile accepted unknown name")
	}
}

func TestManifestWriteReadRoundTrip(t *testing.T) {
	c := NewCollector()
	record(c)
	m := c.Manifest("http://x", Config{Rate: 1, DurationSeconds: 5, Mix: "rank=1"},
		5*time.Second, time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC))
	path := filepath.Join(t.TempDir(), "load-manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Totals != m.Totals || len(got.Endpoints) != len(m.Endpoints) {
		t.Errorf("round-trip mismatch: %+v vs %+v", got.Totals, m.Totals)
	}
}

func TestManifestValidateRejects(t *testing.T) {
	base := func() *Manifest {
		c := NewCollector()
		record(c)
		return c.Manifest("http://x", Config{}, time.Second, time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	}
	m := base()
	m.Schema = "nope"
	if err := m.Validate(); err == nil {
		t.Error("wrong schema accepted")
	}
	m = base()
	m.CreatedAt = time.Time{}
	if err := m.Validate(); err == nil {
		t.Error("zero created_at accepted")
	}
	m = base()
	m.Totals.Requests = 3 // no longer the endpoint sum
	if err := m.Validate(); err == nil {
		t.Error("inconsistent totals accepted")
	}
	ep := m.Endpoints["rank"]
	m = base()
	ep.ErrorRate = 1.5
	m.Endpoints["rank"] = ep
	if err := m.Validate(); err == nil {
		t.Error("error_rate > 1 accepted")
	}
}

// TestBuildPlanTenants: a single anonymous tenant must reproduce
// BuildPlan exactly (same draws, empty Org), and a multi-org plan must
// tag every request with a registered org and visit each one.
func TestBuildPlanTenants(t *testing.T) {
	mix, _ := ParseMix(DefaultMix)
	single, err := BuildPlanTenants(200, 2*time.Second, 42, mix, []OrgTargets{{Targets: testTargets()}})
	if err != nil {
		t.Fatal(err)
	}
	legacy, _ := BuildPlan(200, 2*time.Second, 42, mix, testTargets())
	if len(single) != len(legacy) {
		t.Fatalf("plan lengths differ: %d vs %d", len(single), len(legacy))
	}
	for i := range single {
		if single[i] != legacy[i] {
			t.Fatalf("single-tenant plan diverges from BuildPlan at %d: %+v vs %+v", i, single[i], legacy[i])
		}
		if single[i].Org != "" {
			t.Fatalf("anonymous tenant tagged request %d with org %q", i, single[i].Org)
		}
	}

	tenants := []OrgTargets{
		{Org: "acme", Targets: testTargets()},
		{Org: "globex", Targets: testTargets()},
	}
	multi, err := BuildPlanTenants(200, 2*time.Second, 42, mix, tenants)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, req := range multi {
		seen[req.Org]++
	}
	for _, org := range []string{"acme", "globex"} {
		if seen[org] == 0 {
			t.Errorf("org %s never drawn in %d requests", org, len(multi))
		}
	}
	if seen[""] != 0 {
		t.Errorf("%d requests left untagged in a multi-org plan", seen[""])
	}

	if _, err := BuildPlanTenants(200, time.Second, 1, mix, nil); err == nil {
		t.Error("BuildPlanTenants accepted an empty tenant list")
	}
}
