// Package loadgen is the substrate of cmd/mpa-loadgen: deterministic
// open-loop load plans against a running `mpa serve` daemon, client-side
// latency collection, and the mpa.load-manifest/v1 result artifact the
// SLO gate (internal/slo, cmd/mpa-slogate) consumes.
//
// # Open loop and coordinated omission
//
// The plan is open-loop: request arrival times are drawn up front from
// a seeded exponential (Poisson) process at the configured rate, and a
// request's latency is measured from its *scheduled* arrival time, not
// from when a client connection got around to sending it. A closed-loop
// generator silently stops sending when the server stalls, so the stall
// never shows up in its percentiles (coordinated omission); here a
// stalled server keeps accumulating scheduled-but-unserved requests and
// the backlog drains straight into p99. Latencies are recorded into
// obs.LogHistogram, so reported percentiles carry its ~5% relative
// error bound.
//
// # Determinism
//
// BuildPlan is a pure function of (rate, duration, seed, mix, targets):
// the same inputs yield the identical request sequence. The manifest is
// equally mechanical — identical recorded observations plus an injected
// timestamp encode to byte-identical JSON — which is what lets CI diff
// and archive load manifests the way it already diffs run manifests.
//
// # Schema (mpa.load-manifest/v1)
//
//	{
//	  "schema":     "mpa.load-manifest/v1",
//	  "created_at": RFC 3339 timestamp,
//	  "build":      {go_version, module, vcs_revision?, ...} (runinfo.BuildInfo),
//	  "target":     base URL the load was driven against,
//	  "config":     {rate, duration_seconds, seed, conns, mix},
//	  "totals":     {requests, errors, error_rate, elapsed_seconds, achieved_rps},
//	  "endpoints":  {name: {requests, errors, error_rate, throughput_rps,
//	                        latency_ms: {p50, p90, p99, p999, min, max, mean}}}
//	}
package loadgen

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mpa/internal/obs"
	"mpa/internal/rng"
	"mpa/internal/runinfo"
)

// Schema identifies the load-manifest format; bump on incompatible change.
const Schema = "mpa.load-manifest/v1"

// DefaultMix weights the daemon's read path the way a dashboard-heavy
// deployment does: mostly rankings and per-network summaries, some
// predictions, occasional causal/report/manifest queries.
const DefaultMix = "rank=30,network=25,predict=20,causal=10,report=10,manifest=5"

// MixEntry is one weighted endpoint of a load mix.
type MixEntry struct {
	Endpoint string
	Weight   int
}

// Mix is an ordered weighted endpoint set. Order matters for
// determinism: the seeded endpoint draw walks cumulative weights in
// declaration order.
type Mix []MixEntry

// knownEndpoints are the endpoint names a mix may reference, matching
// the daemon's query-wrapped /v1 set plus healthz.
var knownEndpoints = map[string]bool{
	"rank": true, "causal": true, "predict": true, "network": true,
	"report": true, "manifest": true, "healthz": true,
}

// ParseMix parses "rank=30,network=25,..." into a Mix. Weights are
// positive integers; endpoints must be known and not repeat.
func ParseMix(spec string) (Mix, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("loadgen: empty mix")
	}
	var mix Mix
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		name, weightStr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: mix entry %q, want endpoint=weight", part)
		}
		if !knownEndpoints[name] {
			return nil, fmt.Errorf("loadgen: unknown mix endpoint %q", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("loadgen: endpoint %q repeated in mix", name)
		}
		seen[name] = true
		var weight int
		if _, err := fmt.Sscanf(weightStr, "%d", &weight); err != nil || weight <= 0 {
			return nil, fmt.Errorf("loadgen: mix weight %q for %q, want a positive integer", weightStr, name)
		}
		mix = append(mix, MixEntry{Endpoint: name, Weight: weight})
	}
	return mix, nil
}

// String renders the mix back in canonical spec form.
func (m Mix) String() string {
	parts := make([]string, len(m))
	for i, e := range m {
		parts[i] = fmt.Sprintf("%s=%d", e.Endpoint, e.Weight)
	}
	return strings.Join(parts, ",")
}

// Targets are the concrete parameter pools requests draw from. The
// loader bootstraps Networks and Months from the daemon's /healthz
// (generated networks are named net000…netN−1 and the window is
// contiguous), and takes practices/reports from flags.
type Targets struct {
	Networks  []string
	Months    []string
	Practices []string
	Reports   []string
}

// Request is one planned request: fire at At (relative to the run
// start), against Path, accounted under Endpoint. Org names the tenant
// of a multi-org run (sent as the X-MPA-Org header); empty targets the
// daemon's default tenant.
type Request struct {
	At       time.Duration
	Endpoint string
	Path     string
	Org      string
}

// OrgTargets is one tenant's target pools in a multi-org plan.
type OrgTargets struct {
	Org     string
	Targets Targets
}

// needs maps each endpoint to the target pool it draws from.
func (t Targets) pathFor(endpoint string, r *rng.RNG) (string, error) {
	pick := func(pool []string, what string) (string, error) {
		if len(pool) == 0 {
			return "", fmt.Errorf("loadgen: mix includes %q but no %s targets were provided", endpoint, what)
		}
		return pool[r.Intn(len(pool))], nil
	}
	switch endpoint {
	case "rank":
		return "/v1/rank", nil
	case "manifest":
		return "/v1/manifest", nil
	case "healthz":
		return "/healthz", nil
	case "causal":
		p, err := pick(t.Practices, "practice")
		if err != nil {
			return "", err
		}
		return "/v1/causal?practice=" + url.QueryEscape(p), nil
	case "predict", "network":
		n, err := pick(t.Networks, "network")
		if err != nil {
			return "", err
		}
		m, err := pick(t.Months, "month")
		if err != nil {
			return "", err
		}
		return "/v1/" + endpoint + "?network=" + url.QueryEscape(n) + "&month=" + url.QueryEscape(m), nil
	case "report":
		id, err := pick(t.Reports, "report")
		if err != nil {
			return "", err
		}
		return "/v1/report/" + url.PathEscape(id), nil
	}
	return "", fmt.Errorf("loadgen: unknown endpoint %q", endpoint)
}

// BuildPlan draws the full open-loop request schedule: exponential
// inter-arrivals at rate req/s (a Poisson arrival process) until
// duration is exhausted, each request assigned a mix-weighted endpoint
// and concrete target parameters. Pure in (rate, duration, seed, mix,
// targets) — identical inputs produce the identical plan.
func BuildPlan(rate float64, duration time.Duration, seed uint64, mix Mix, targets Targets) ([]Request, error) {
	return BuildPlanTenants(rate, duration, seed, mix, []OrgTargets{{Targets: targets}})
}

// BuildPlanTenants is BuildPlan against a multi-tenant daemon: each
// request additionally draws its org uniformly from tenants, with that
// org's own target pools. With exactly one tenant no org draw happens,
// so a single-tenant plan is identical to BuildPlan's — the SLO
// baseline's request sequence is unchanged by the plumbing.
func BuildPlanTenants(rate float64, duration time.Duration, seed uint64, mix Mix, tenants []OrgTargets) ([]Request, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("loadgen: rate %v, want > 0", rate)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration %v, want > 0", duration)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("loadgen: empty mix")
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("loadgen: no tenants")
	}
	totalWeight := 0
	for _, e := range mix {
		totalWeight += e.Weight
	}
	arrivals := rng.New(seed).Fork(1)
	picks := rng.New(seed).Fork(2)
	meanGap := 1 / rate // seconds
	var plan []Request
	at := time.Duration(0)
	for {
		gap := arrivals.Exponential(meanGap)
		at += time.Duration(gap * float64(time.Second))
		if at >= duration {
			return plan, nil
		}
		w := picks.Intn(totalWeight)
		endpoint := mix[len(mix)-1].Endpoint
		for _, e := range mix {
			if w < e.Weight {
				endpoint = e.Endpoint
				break
			}
			w -= e.Weight
		}
		tenant := tenants[0]
		if len(tenants) > 1 {
			tenant = tenants[picks.Intn(len(tenants))]
		}
		path, err := tenant.Targets.pathFor(endpoint, picks)
		if err != nil {
			if tenant.Org != "" {
				return nil, fmt.Errorf("org %s: %w", tenant.Org, err)
			}
			return nil, err
		}
		plan = append(plan, Request{At: at, Endpoint: endpoint, Path: path, Org: tenant.Org})
	}
}

// Collector accumulates per-endpoint results as workers complete
// requests. Safe for concurrent use.
type Collector struct {
	mu  sync.Mutex
	eps map[string]*epCollector
}

type epCollector struct {
	hist   *obs.LogHistogram // nanoseconds; unregistered, per-run state
	errors int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{eps: map[string]*epCollector{}}
}

// Record tallies one completed request. failed marks transport errors,
// timeouts, and any response status ≥ 400.
func (c *Collector) Record(endpoint string, latency time.Duration, failed bool) {
	c.mu.Lock()
	ep, ok := c.eps[endpoint]
	if !ok {
		ep = &epCollector{hist: obs.NewLogHistogram()}
		c.eps[endpoint] = ep
	}
	if failed {
		ep.errors++
	}
	c.mu.Unlock()
	ep.hist.Observe(float64(latency.Nanoseconds()))
}

// Config records the load parameters inside the manifest.
type Config struct {
	Rate            float64 `json:"rate"`
	DurationSeconds float64 `json:"duration_seconds"`
	Seed            uint64  `json:"seed"`
	Conns           int     `json:"conns"`
	Mix             string  `json:"mix"`
	// Orgs lists the tenants of a multi-org run ("acme,globex"); empty
	// for a single-tenant run, keeping old manifests byte-compatible.
	Orgs string `json:"orgs,omitempty"`
}

// Totals aggregates the whole run.
type Totals struct {
	Requests       int64   `json:"requests"`
	Errors         int64   `json:"errors"`
	ErrorRate      float64 `json:"error_rate"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	AchievedRPS    float64 `json:"achieved_rps"`
}

// Latency summarizes one endpoint's latency distribution in
// milliseconds. Percentiles inherit the log histogram's ~5% relative
// error bound; min/max/mean are exact.
type Latency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// Percentile returns the named percentile ("p50", "p90", "p99",
// "p999"), false for unknown names — the lookup the SLO evaluator uses.
func (l Latency) Percentile(name string) (float64, bool) {
	switch name {
	case "p50":
		return l.P50, true
	case "p90":
		return l.P90, true
	case "p99":
		return l.P99, true
	case "p999":
		return l.P999, true
	}
	return 0, false
}

// PercentileNames lists the percentiles a load manifest carries, in
// report order.
var PercentileNames = []string{"p50", "p90", "p99", "p999"}

// EndpointStats is one endpoint's results.
type EndpointStats struct {
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	ErrorRate     float64 `json:"error_rate"`
	ThroughputRPS float64 `json:"throughput_rps"`
	LatencyMS     Latency `json:"latency_ms"`
}

// Manifest is one load run's record.
type Manifest struct {
	Schema    string                   `json:"schema"`
	CreatedAt time.Time                `json:"created_at"`
	Build     runinfo.BuildInfo        `json:"build"`
	Target    string                   `json:"target"`
	Config    Config                   `json:"config"`
	Totals    Totals                   `json:"totals"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

// Manifest builds the run record from the collected results. createdAt
// and elapsed are injected rather than read from the clock so the
// encoding is a pure function of its inputs (the determinism test pins
// byte-identical output for identical observations).
func (c *Collector) Manifest(target string, cfg Config, elapsed time.Duration, createdAt time.Time) *Manifest {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := &Manifest{
		Schema:    Schema,
		CreatedAt: createdAt,
		Build:     runinfo.CollectBuild(),
		Target:    target,
		Config:    cfg,
		Endpoints: make(map[string]EndpointStats, len(c.eps)),
	}
	seconds := elapsed.Seconds()
	for name, ep := range c.eps {
		snap := ep.hist.Snapshot()
		const ms = 1e6
		st := EndpointStats{
			Requests: snap.Count,
			Errors:   ep.errors,
			LatencyMS: Latency{
				P50:  snap.Quantile(0.50) / ms,
				P90:  snap.Quantile(0.90) / ms,
				P99:  snap.Quantile(0.99) / ms,
				P999: snap.Quantile(0.999) / ms,
				Min:  snap.Min / ms,
				Max:  snap.Max / ms,
				Mean: snap.Mean() / ms,
			},
		}
		if st.Requests > 0 {
			st.ErrorRate = float64(st.Errors) / float64(st.Requests)
		}
		if seconds > 0 {
			st.ThroughputRPS = float64(st.Requests) / seconds
		}
		m.Endpoints[name] = st
		m.Totals.Requests += st.Requests
		m.Totals.Errors += st.Errors
	}
	m.Totals.ElapsedSeconds = seconds
	if m.Totals.Requests > 0 {
		m.Totals.ErrorRate = float64(m.Totals.Errors) / float64(m.Totals.Requests)
	}
	if seconds > 0 {
		m.Totals.AchievedRPS = float64(m.Totals.Requests) / seconds
	}
	return m
}

// Validate checks the invariants the schema promises.
func (m *Manifest) Validate() error {
	if m == nil {
		return fmt.Errorf("loadgen: nil manifest")
	}
	if m.Schema != Schema {
		return fmt.Errorf("loadgen: schema %q, want %q", m.Schema, Schema)
	}
	if m.CreatedAt.IsZero() {
		return fmt.Errorf("loadgen: created_at is zero")
	}
	if m.Totals.Requests < 0 || m.Totals.Errors < 0 || m.Totals.Errors > m.Totals.Requests {
		return fmt.Errorf("loadgen: inconsistent totals %+v", m.Totals)
	}
	var sum int64
	names := make([]string, 0, len(m.Endpoints))
	for name := range m.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ep := m.Endpoints[name]
		if ep.Requests < 0 || ep.Errors < 0 || ep.Errors > ep.Requests {
			return fmt.Errorf("loadgen: endpoint %q inconsistent counts %+v", name, ep)
		}
		if ep.ErrorRate < 0 || ep.ErrorRate > 1 {
			return fmt.Errorf("loadgen: endpoint %q error_rate %v outside [0,1]", name, ep.ErrorRate)
		}
		l := ep.LatencyMS
		if ep.Requests > 0 && (l.Min > l.Max || l.P50 < 0) {
			return fmt.Errorf("loadgen: endpoint %q malformed latency summary %+v", name, l)
		}
		sum += ep.Requests
	}
	if sum != m.Totals.Requests {
		return fmt.Errorf("loadgen: endpoint requests sum %d != totals %d", sum, m.Totals.Requests)
	}
	return nil
}

// Encode marshals the manifest as indented JSON with a trailing
// newline. Go's JSON encoder sorts map keys, so the bytes are a pure
// function of the manifest's fields.
func (m *Manifest) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("loadgen: marshal: %w", err)
	}
	return append(data, '\n'), nil
}

// Write encodes the manifest and renames it into place, so an
// interrupted run never leaves a truncated manifest behind.
func (m *Manifest) Write(path string) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".load-manifest-*.json")
	if err != nil {
		return fmt.Errorf("loadgen: write: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("loadgen: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("loadgen: write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("loadgen: write: %w", err)
	}
	return nil
}

// Read loads and validates a load manifest file.
func Read(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: read: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}
