// Package dataio loads and stores the three MPA data sources in the
// on-disk formats organizations actually keep them in: inventory records
// as JSON, trouble tickets as CSV exports from incident-management
// systems, and configuration snapshots as a RANCID-style directory tree
// (one directory per device, one timestamped file per snapshot).
//
// These formats make the framework usable on real data: export your
// inventory and tickets, point your RANCID/HPNA archive at a directory,
// and run the same pipeline the synthetic experiments use.
package dataio

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"mpa/internal/netmodel"
	"mpa/internal/nms"
	"mpa/internal/ticketing"
)

// ---- Inventory (JSON) ----

// inventoryDoc is the JSON wire form of an inventory.
type inventoryDoc struct {
	Networks []networkDoc `json:"networks"`
}

type networkDoc struct {
	Name         string      `json:"name"`
	Services     []string    `json:"services,omitempty"`
	Interconnect bool        `json:"interconnect,omitempty"`
	Devices      []deviceDoc `json:"devices"`
}

type deviceDoc struct {
	Name     string `json:"name"`
	Vendor   string `json:"vendor"`
	Model    string `json:"model"`
	Role     string `json:"role"`
	Firmware string `json:"firmware"`
	MgmtIP   string `json:"mgmt_ip"`
}

// vendorFromString parses a vendor name.
func vendorFromString(s string) (netmodel.Vendor, error) {
	switch strings.ToLower(s) {
	case "cisco":
		return netmodel.VendorCisco, nil
	case "juniper":
		return netmodel.VendorJuniper, nil
	default:
		return 0, fmt.Errorf("dataio: unknown vendor %q", s)
	}
}

// roleFromString parses a role name.
func roleFromString(s string) (netmodel.Role, error) {
	for r := netmodel.Role(0); int(r) < netmodel.NumRoles; r++ {
		if r.String() == strings.ToLower(s) {
			return r, nil
		}
	}
	return 0, fmt.Errorf("dataio: unknown role %q", s)
}

// WriteInventory serializes an inventory as indented JSON.
func WriteInventory(w io.Writer, inv *netmodel.Inventory) error {
	doc := inventoryDoc{}
	for _, nw := range inv.Networks {
		nd := networkDoc{
			Name:         nw.Name,
			Services:     nw.Services,
			Interconnect: nw.Interconnect,
		}
		for _, d := range nw.Devices {
			nd.Devices = append(nd.Devices, deviceDoc{
				Name:     d.Name,
				Vendor:   d.Vendor.String(),
				Model:    d.Model,
				Role:     d.Role.String(),
				Firmware: d.Firmware,
				MgmtIP:   d.MgmtIP,
			})
		}
		doc.Networks = append(doc.Networks, nd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadInventory parses an inventory from JSON. Device network fields are
// filled from the containing network.
func ReadInventory(r io.Reader) (*netmodel.Inventory, error) {
	var doc inventoryDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("dataio: decoding inventory: %w", err)
	}
	inv := &netmodel.Inventory{}
	seen := map[string]bool{}
	for _, nd := range doc.Networks {
		if nd.Name == "" {
			return nil, fmt.Errorf("dataio: network with empty name")
		}
		if seen[nd.Name] {
			return nil, fmt.Errorf("dataio: duplicate network %q", nd.Name)
		}
		seen[nd.Name] = true
		nw := &netmodel.Network{
			Name:         nd.Name,
			Services:     nd.Services,
			Interconnect: nd.Interconnect,
		}
		for _, dd := range nd.Devices {
			vendor, err := vendorFromString(dd.Vendor)
			if err != nil {
				return nil, err
			}
			role, err := roleFromString(dd.Role)
			if err != nil {
				return nil, err
			}
			nw.Devices = append(nw.Devices, &netmodel.Device{
				Name:     dd.Name,
				Network:  nd.Name,
				Vendor:   vendor,
				Model:    dd.Model,
				Role:     role,
				Firmware: dd.Firmware,
				MgmtIP:   dd.MgmtIP,
			})
		}
		inv.Networks = append(inv.Networks, nw)
	}
	return inv, nil
}

// ---- Tickets (CSV) ----

// ticketHeader is the CSV column set, compatible with common
// incident-management exports.
var ticketHeader = []string{
	"id", "network", "devices", "origin", "opened", "resolved", "symptom", "notes",
}

// WriteTickets serializes a ticket log as CSV (RFC 4180, header row
// included; times in RFC 3339).
func WriteTickets(w io.Writer, log *ticketing.Log) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(ticketHeader); err != nil {
		return err
	}
	for _, t := range log.All() {
		resolved := ""
		if !t.Resolved.IsZero() {
			resolved = t.Resolved.UTC().Format(time.RFC3339)
		}
		rec := []string{
			strconv.Itoa(t.ID),
			t.Network,
			strings.Join(t.Devices, ";"),
			t.Origin.String(),
			t.Opened.UTC().Format(time.RFC3339),
			resolved,
			t.Symptom,
			t.Notes,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// originFromString parses a ticket origin.
func originFromString(s string) (ticketing.Origin, error) {
	switch strings.ToLower(s) {
	case "alarm":
		return ticketing.OriginAlarm, nil
	case "user-report":
		return ticketing.OriginUserReport, nil
	case "maintenance":
		return ticketing.OriginMaintenance, nil
	default:
		return 0, fmt.Errorf("dataio: unknown ticket origin %q", s)
	}
}

// ReadTickets parses a ticket CSV produced by WriteTickets (or a
// compatible export). IDs are reassigned by the log in row order.
func ReadTickets(r io.Reader) (*ticketing.Log, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataio: reading ticket header: %w", err)
	}
	if len(header) != len(ticketHeader) {
		return nil, fmt.Errorf("dataio: ticket header has %d columns, want %d", len(header), len(ticketHeader))
	}
	for i, h := range ticketHeader {
		if !strings.EqualFold(strings.TrimSpace(header[i]), h) {
			return nil, fmt.Errorf("dataio: ticket column %d is %q, want %q", i, header[i], h)
		}
	}
	log := ticketing.NewLog()
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataio: ticket line %d: %w", line, err)
		}
		origin, err := originFromString(rec[3])
		if err != nil {
			return nil, fmt.Errorf("dataio: ticket line %d: %w", line, err)
		}
		opened, err := time.Parse(time.RFC3339, rec[4])
		if err != nil {
			return nil, fmt.Errorf("dataio: ticket line %d: bad opened time: %w", line, err)
		}
		var resolved time.Time
		if rec[5] != "" {
			resolved, err = time.Parse(time.RFC3339, rec[5])
			if err != nil {
				return nil, fmt.Errorf("dataio: ticket line %d: bad resolved time: %w", line, err)
			}
		}
		var devices []string
		if rec[2] != "" {
			devices = strings.Split(rec[2], ";")
		}
		log.File(ticketing.Ticket{
			Network:  rec[1],
			Devices:  devices,
			Origin:   origin,
			Opened:   opened,
			Resolved: resolved,
			Symptom:  rec[6],
			Notes:    rec[7],
		})
	}
	return log, nil
}

// ---- Snapshot archive (RANCID-style directory tree) ----

// Snapshot files live at <root>/<device>/<RFC3339 time>__<login>.cfg,
// with colons in the timestamp replaced by '-' for filesystem
// compatibility. File contents are the raw configuration text.

const snapshotExt = ".cfg"

// snapshotFileName encodes a snapshot's metadata into its file name.
func snapshotFileName(t time.Time, login string) string {
	stamp := strings.ReplaceAll(t.UTC().Format(time.RFC3339), ":", "-")
	return stamp + "__" + login + snapshotExt
}

// parseSnapshotFileName recovers time and login from a snapshot file name.
func parseSnapshotFileName(name string) (time.Time, string, error) {
	base := strings.TrimSuffix(name, snapshotExt)
	if base == name {
		return time.Time{}, "", fmt.Errorf("dataio: snapshot file %q lacks %s extension", name, snapshotExt)
	}
	parts := strings.SplitN(base, "__", 2)
	if len(parts) != 2 {
		return time.Time{}, "", fmt.Errorf("dataio: snapshot file %q lacks __login suffix", name)
	}
	stamp := strings.Replace(parts[0], "-", ":", -1)
	// Undo the replacement inside the date part: RFC3339 is
	// 2006-01-02T15:04:05Z; only the time colons were rewritten, so
	// restore the first two dashes.
	stamp = strings.Replace(stamp, ":", "-", 2)
	t, err := time.Parse(time.RFC3339, stamp)
	if err != nil {
		return time.Time{}, "", fmt.Errorf("dataio: snapshot file %q: bad timestamp: %w", name, err)
	}
	return t, parts[1], nil
}

// WriteArchive stores every snapshot of the archive under root, one
// directory per device.
func WriteArchive(root string, arch *nms.Archive) error {
	for _, dev := range arch.Devices() {
		dir := filepath.Join(root, dev)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("dataio: %w", err)
		}
		for _, s := range arch.Snapshots(dev) {
			path := filepath.Join(dir, snapshotFileName(s.Time, s.Login))
			if err := os.WriteFile(path, []byte(s.Text), 0o644); err != nil {
				return fmt.Errorf("dataio: %w", err)
			}
		}
	}
	return nil
}

// ReadArchive loads a RANCID-style snapshot tree into an archive.
// specialAccounts lists the logins to classify as automation accounts.
// Fingerprints are derived from the raw text, so change detection works
// for any configuration dialect.
func ReadArchive(root string, specialAccounts []string) (*nms.Archive, error) {
	arch := nms.NewArchive()
	for _, acct := range specialAccounts {
		arch.MarkSpecialAccount(acct)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		device := e.Name()
		dir := filepath.Join(root, device)
		files, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("dataio: %w", err)
		}
		type snap struct {
			t     time.Time
			login string
			path  string
		}
		var snaps []snap
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(f.Name(), snapshotExt) {
				continue
			}
			t, login, err := parseSnapshotFileName(f.Name())
			if err != nil {
				return nil, err
			}
			snaps = append(snaps, snap{t, login, filepath.Join(dir, f.Name())})
		}
		sort.Slice(snaps, func(i, j int) bool { return snaps[i].t.Before(snaps[j].t) })
		for _, s := range snaps {
			text, err := os.ReadFile(s.path)
			if err != nil {
				return nil, fmt.Errorf("dataio: %w", err)
			}
			if err := arch.Record(&nms.Snapshot{
				Device:      device,
				Time:        s.t,
				Login:       s.login,
				Text:        string(text),
				Fingerprint: textFingerprint(text),
			}); err != nil {
				return nil, err
			}
		}
	}
	return arch, nil
}

// textFingerprint hashes raw snapshot text (FNV-1a).
func textFingerprint(text []byte) string {
	const offset, prime = 14695981039346656037, 1099511628211
	var h uint64 = offset
	for _, b := range text {
		h ^= uint64(b)
		h *= prime
	}
	return fmt.Sprintf("%016x", h)
}

// ---- Whole-organization convenience ----

// SaveOrganization writes inventory.json, tickets.csv, and a snapshots/
// tree under dir.
func SaveOrganization(dir string, inv *netmodel.Inventory, arch *nms.Archive, tickets *ticketing.Log) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	invF, err := os.Create(filepath.Join(dir, "inventory.json"))
	if err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	defer invF.Close()
	if err := WriteInventory(invF, inv); err != nil {
		return err
	}
	tixF, err := os.Create(filepath.Join(dir, "tickets.csv"))
	if err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	defer tixF.Close()
	if err := WriteTickets(tixF, tickets); err != nil {
		return err
	}
	return WriteArchive(filepath.Join(dir, "snapshots"), arch)
}

// LoadOrganization reads the layout SaveOrganization writes.
func LoadOrganization(dir string, specialAccounts []string) (*netmodel.Inventory, *nms.Archive, *ticketing.Log, error) {
	invF, err := os.Open(filepath.Join(dir, "inventory.json"))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dataio: %w", err)
	}
	defer invF.Close()
	inv, err := ReadInventory(invF)
	if err != nil {
		return nil, nil, nil, err
	}
	tixF, err := os.Open(filepath.Join(dir, "tickets.csv"))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dataio: %w", err)
	}
	defer tixF.Close()
	tickets, err := ReadTickets(tixF)
	if err != nil {
		return nil, nil, nil, err
	}
	arch, err := ReadArchive(filepath.Join(dir, "snapshots"), specialAccounts)
	if err != nil {
		return nil, nil, nil, err
	}
	return inv, arch, tickets, nil
}
