package dataio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mpa/internal/netmodel"
	"mpa/internal/nms"
	"mpa/internal/osp"
	"mpa/internal/practices"
	"mpa/internal/ticketing"
)

func sampleInventory() *netmodel.Inventory {
	return &netmodel.Inventory{Networks: []*netmodel.Network{
		{
			Name:     "net001",
			Services: []string{"svc-a", "svc-b"},
			Devices: []*netmodel.Device{
				{Name: "net001-sw-01", Network: "net001", Vendor: netmodel.VendorCisco,
					Model: "c-3850", Role: netmodel.RoleSwitch, Firmware: "16.9", MgmtIP: "10.0.0.1"},
				{Name: "net001-fw-01", Network: "net001", Vendor: netmodel.VendorJuniper,
					Model: "j-srx", Role: netmodel.RoleFirewall, Firmware: "18.4", MgmtIP: "10.0.0.2"},
			},
		},
		{Name: "net002", Interconnect: true, Devices: []*netmodel.Device{
			{Name: "net002-rt-01", Network: "net002", Vendor: netmodel.VendorCisco,
				Model: "c-asr1k", Role: netmodel.RoleRouter, Firmware: "15.2", MgmtIP: "10.0.1.1"},
		}},
	}}
}

func TestInventoryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteInventory(&buf, sampleInventory()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInventory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleInventory()
	if len(got.Networks) != len(want.Networks) {
		t.Fatalf("networks = %d", len(got.Networks))
	}
	for i, nw := range want.Networks {
		g := got.Networks[i]
		if g.Name != nw.Name || g.Interconnect != nw.Interconnect || len(g.Devices) != len(nw.Devices) {
			t.Fatalf("network %d differs: %+v", i, g)
		}
		for j, d := range nw.Devices {
			if *g.Devices[j] != *d {
				t.Fatalf("device %d/%d differs: %+v vs %+v", i, j, g.Devices[j], d)
			}
		}
	}
}

func TestInventoryReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad vendor":    `{"networks":[{"name":"x","devices":[{"name":"d","vendor":"hp","model":"m","role":"switch","firmware":"1","mgmt_ip":"10.0.0.1"}]}]}`,
		"bad role":      `{"networks":[{"name":"x","devices":[{"name":"d","vendor":"cisco","model":"m","role":"toaster","firmware":"1","mgmt_ip":"10.0.0.1"}]}]}`,
		"empty name":    `{"networks":[{"name":"","devices":[]}]}`,
		"dup network":   `{"networks":[{"name":"x","devices":[]},{"name":"x","devices":[]}]}`,
		"unknown field": `{"networks":[],"extra":1}`,
		"not json":      `hello`,
	}
	for name, doc := range cases {
		if _, err := ReadInventory(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestTicketsRoundTrip(t *testing.T) {
	log := ticketing.NewLog()
	opened := time.Date(2014, 3, 5, 10, 30, 0, 0, time.UTC)
	log.File(ticketing.Ticket{
		Network: "net001", Devices: []string{"d1", "d2"},
		Origin: ticketing.OriginAlarm, Opened: opened,
		Resolved: opened.Add(2 * time.Hour),
		Symptom:  "packet-loss", Notes: "notes, with comma and \"quotes\"",
	})
	log.File(ticketing.Ticket{
		Network: "net002", Origin: ticketing.OriginMaintenance, Opened: opened,
		Symptom: "planned-maintenance",
	})
	var buf bytes.Buffer
	if err := WriteTickets(&buf, log); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTickets(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("tickets = %d", got.Len())
	}
	t0 := got.All()[0]
	if t0.Network != "net001" || len(t0.Devices) != 2 || t0.Origin != ticketing.OriginAlarm {
		t.Errorf("ticket 0 = %+v", t0)
	}
	if !t0.Opened.Equal(opened) || !t0.Resolved.Equal(opened.Add(2*time.Hour)) {
		t.Errorf("times differ: %v %v", t0.Opened, t0.Resolved)
	}
	if t0.Notes != "notes, with comma and \"quotes\"" {
		t.Errorf("notes = %q", t0.Notes)
	}
	t1 := got.All()[1]
	if !t1.Resolved.IsZero() {
		t.Errorf("unresolved ticket has resolved time %v", t1.Resolved)
	}
}

func TestTicketsReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":  "a,b\n",
		"bad origin":  "id,network,devices,origin,opened,resolved,symptom,notes\n1,n,,ufo,2014-03-01T00:00:00Z,,s,\n",
		"bad opened":  "id,network,devices,origin,opened,resolved,symptom,notes\n1,n,,alarm,yesterday,,s,\n",
		"bad resolve": "id,network,devices,origin,opened,resolved,symptom,notes\n1,n,,alarm,2014-03-01T00:00:00Z,later,s,\n",
	}
	for name, doc := range cases {
		if _, err := ReadTickets(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSnapshotFileNameRoundTrip(t *testing.T) {
	when := time.Date(2014, 7, 9, 13, 45, 12, 0, time.UTC)
	name := snapshotFileName(when, "op-chen")
	got, login, err := parseSnapshotFileName(name)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(when) || login != "op-chen" {
		t.Errorf("round trip = %v %q", got, login)
	}
}

func TestSnapshotFileNameErrors(t *testing.T) {
	for _, name := range []string{"x.txt", "noseparator.cfg", "bad-time__op.cfg"} {
		if _, _, err := parseSnapshotFileName(name); err == nil {
			t.Errorf("%q: expected error", name)
		}
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	arch := nms.NewArchive()
	arch.MarkSpecialAccount("svc-netauto")
	base := time.Date(2014, 2, 1, 8, 0, 0, 0, time.UTC)
	texts := []string{"hostname d1\n!\nend\n", "hostname d1\n!\nvlan 5\n!\nend\n"}
	for i, text := range texts {
		if err := arch.Record(&nms.Snapshot{
			Device: "d1", Time: base.Add(time.Duration(i) * time.Hour),
			Login: "svc-netauto", Text: text, Fingerprint: textFingerprint([]byte(text)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := WriteArchive(dir, arch); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArchive(dir, []string{"svc-netauto"})
	if err != nil {
		t.Fatal(err)
	}
	snaps := got.Snapshots("d1")
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	for i, s := range snaps {
		if s.Text != texts[i] {
			t.Errorf("snapshot %d text differs", i)
		}
		if !s.Time.Equal(base.Add(time.Duration(i) * time.Hour)) {
			t.Errorf("snapshot %d time = %v", i, s.Time)
		}
	}
	changes := got.Changes("d1")
	if len(changes) != 1 || !changes[0].Automated {
		t.Errorf("changes = %+v", changes)
	}
}

func TestReadArchiveIgnoresStrayFiles(t *testing.T) {
	dir := t.TempDir()
	devDir := filepath.Join(dir, "d1")
	if err := os.MkdirAll(devDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(devDir, "notes.md"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(devDir, snapshotFileName(time.Now().UTC().Truncate(time.Second), "op")),
		[]byte("hostname d1\n!\nend\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	arch, err := ReadArchive(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(arch.Snapshots("d1")); got != 1 {
		t.Errorf("snapshots = %d", got)
	}
}

func TestReadArchiveMissingRoot(t *testing.T) {
	if _, err := ReadArchive("/no/such/dir", nil); err == nil {
		t.Error("expected error")
	}
}

// TestOrganizationRoundTripInference is the integration test: a generated
// organization saved to disk and loaded back must yield identical
// inference results (modulo sub-second snapshot timestamps, which the
// on-disk format truncates; the generator spaces snapshots by whole tens
// of seconds, so event grouping is unaffected).
func TestOrganizationRoundTripInference(t *testing.T) {
	p := osp.Small(31)
	p.Networks = 8
	o := osp.Generate(p)
	dir := t.TempDir()
	if err := SaveOrganization(dir, o.Inventory, o.Archive, o.Tickets); err != nil {
		t.Fatal(err)
	}
	inv, arch, tickets, err := LoadOrganization(dir, []string{"svc-netauto", "rancid-bot", "svc-lbsync"})
	if err != nil {
		t.Fatal(err)
	}
	if inv.DeviceCount() != o.Inventory.DeviceCount() {
		t.Fatalf("device count %d != %d", inv.DeviceCount(), o.Inventory.DeviceCount())
	}
	if tickets.Len() != o.Tickets.Len() {
		t.Fatalf("tickets %d != %d", tickets.Len(), o.Tickets.Len())
	}
	if arch.SnapshotCount() != o.Archive.SnapshotCount() {
		t.Fatalf("snapshots %d != %d", arch.SnapshotCount(), o.Archive.SnapshotCount())
	}

	orig, err := practices.NewEngine(o.Inventory, o.Archive).Analyze(p.Months())
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := practices.NewEngine(inv, arch).Analyze(p.Months())
	if err != nil {
		t.Fatal(err)
	}
	for name, mas := range orig {
		for i, ma := range mas {
			for _, metric := range practices.MetricNames {
				a := ma.Metrics[metric]
				b := loaded[name][i].Metrics[metric]
				if diff := a - b; diff > 0.02 || diff < -0.02 {
					t.Fatalf("%s %v %s: %v (orig) vs %v (loaded)", name, ma.Month, metric, a, b)
				}
			}
		}
	}
}
