package confdiff

import (
	"testing"

	"mpa/internal/confmodel"
)

func base() *confmodel.Config {
	c := confmodel.NewConfig("d1")
	c.Upsert(confmodel.NewStanza(confmodel.TypeInterface, "eth0").Set("mtu", "1500"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeVLAN, "100").Set("vlan-id", "100"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeACL, "A").Set("rule:10", "permit ip any any"))
	return c
}

func TestDiffIdentical(t *testing.T) {
	if got := Diff(base(), base()); got != nil {
		t.Errorf("identical diff = %v", got)
	}
}

func TestDiffAdd(t *testing.T) {
	n := base()
	n.Upsert(confmodel.NewStanza(confmodel.TypeBGP, "65001"))
	changes := Diff(base(), n)
	if len(changes) != 1 {
		t.Fatalf("changes = %v", changes)
	}
	c := changes[0]
	if c.Type != confmodel.TypeBGP || c.Name != "65001" || c.Kind != KindAdd {
		t.Errorf("change = %+v", c)
	}
}

func TestDiffRemove(t *testing.T) {
	n := base()
	n.Remove(confmodel.TypeACL, "A")
	changes := Diff(base(), n)
	if len(changes) != 1 || changes[0].Kind != KindRemove || changes[0].Type != confmodel.TypeACL {
		t.Errorf("changes = %v", changes)
	}
}

func TestDiffUpdate(t *testing.T) {
	n := base()
	n.Get(confmodel.TypeInterface, "eth0").Set("mtu", "9000")
	changes := Diff(base(), n)
	if len(changes) != 1 || changes[0].Kind != KindUpdate || changes[0].Type != confmodel.TypeInterface {
		t.Errorf("changes = %v", changes)
	}
}

func TestDiffMixed(t *testing.T) {
	o := base()
	n := base()
	n.Get(confmodel.TypeVLAN, "100").Set("description", "web")                // update
	n.Remove(confmodel.TypeACL, "A")                                          // remove
	n.Upsert(confmodel.NewStanza(confmodel.TypeUser, "ops").Set("role", "1")) // add
	changes := Diff(o, n)
	if len(changes) != 3 {
		t.Fatalf("changes = %v", changes)
	}
	kinds := map[Kind]int{}
	for _, c := range changes {
		kinds[c.Kind]++
	}
	if kinds[KindAdd] != 1 || kinds[KindRemove] != 1 || kinds[KindUpdate] != 1 {
		t.Errorf("kind counts = %v", kinds)
	}
}

func TestDiffDeterministicOrder(t *testing.T) {
	o := confmodel.NewConfig("d")
	n := confmodel.NewConfig("d")
	for _, name := range []string{"c", "a", "b"} {
		n.Upsert(confmodel.NewStanza(confmodel.TypeInterface, name))
	}
	first := Diff(o, n)
	second := Diff(o, n)
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("diff order not deterministic")
		}
	}
	if first[0].Name != "a" || first[1].Name != "b" || first[2].Name != "c" {
		t.Errorf("diff not sorted by name: %v", first)
	}
}

func TestTypesAndTouches(t *testing.T) {
	changes := []StanzaChange{
		{confmodel.TypeACL, "A", KindUpdate},
		{confmodel.TypeInterface, "eth0", KindAdd},
		{confmodel.TypeACL, "B", KindAdd},
	}
	types := Types(changes)
	if len(types) != 2 || !types[confmodel.TypeACL] || !types[confmodel.TypeInterface] {
		t.Errorf("Types = %v", types)
	}
	if !Touches(changes, confmodel.TypeACL) {
		t.Error("Touches(acl) = false")
	}
	if Touches(changes, confmodel.TypeBGP) {
		t.Error("Touches(bgp) = true")
	}
}

func TestTouchesRouter(t *testing.T) {
	if TouchesRouter([]StanzaChange{{confmodel.TypeACL, "A", KindAdd}}) {
		t.Error("acl change flagged as router")
	}
	if !TouchesRouter([]StanzaChange{{confmodel.TypeOSPF, "1", KindUpdate}}) {
		t.Error("ospf change not flagged as router")
	}
	if !TouchesRouter([]StanzaChange{{confmodel.TypeBGP, "65001", KindRemove}}) {
		t.Error("bgp change not flagged as router")
	}
}

func TestKindString(t *testing.T) {
	if KindAdd.String() != "add" || KindRemove.String() != "remove" || KindUpdate.String() != "update" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind name wrong")
	}
}
