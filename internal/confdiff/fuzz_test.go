package confdiff_test

import (
	"reflect"
	"testing"

	"mpa/internal/ciscoios"
	"mpa/internal/confdiff"
	"mpa/internal/conftest"
	"mpa/internal/rng"
)

// FuzzDiff checks the diff algebra over arbitrary pairs of config texts
// (parsed through the Cisco dialect; unparseable inputs are skipped):
// diff(x, x) is empty, diff is deterministic, and diff(a, b) mirrors
// diff(b, a) with adds and removes swapped.
func FuzzDiff(f *testing.F) {
	var d ciscoios.Dialect
	r := rng.New(11)
	for i := 0; i < 4; i++ {
		a := d.Render(conftest.RandomConfig(r, conftest.StyleCisco))
		b := d.Render(conftest.RandomConfig(r, conftest.StyleCisco))
		f.Add(a, b)
		f.Add(a, a)
	}
	f.Add("", "")
	f.Add("hostname a\n!\n", "hostname b\n!\n")
	f.Fuzz(func(t *testing.T, textA, textB string) {
		a, err := d.Parse(textA)
		if err != nil {
			return
		}
		b, err := d.Parse(textB)
		if err != nil {
			return
		}
		if diff := confdiff.Diff(a, a); len(diff) != 0 {
			t.Fatalf("diff(a, a) = %v, want empty", diff)
		}
		if diff := confdiff.Diff(b, b); len(diff) != 0 {
			t.Fatalf("diff(b, b) = %v, want empty", diff)
		}
		ab := confdiff.Diff(a, b)
		if again := confdiff.Diff(a, b); !reflect.DeepEqual(ab, again) {
			t.Fatalf("diff not deterministic: %v vs %v", ab, again)
		}
		ba := confdiff.Diff(b, a)
		if len(ab) != len(ba) {
			t.Fatalf("diff(a,b) has %d changes, diff(b,a) has %d", len(ab), len(ba))
		}
		// Both are sorted by (type, name, kind) and no stanza key appears
		// twice, so reversing direction swaps adds and removes in place.
		for i, c := range ab {
			m := ba[i]
			if c.Type != m.Type || c.Name != m.Name {
				t.Fatalf("change %d: %v vs mirrored %v", i, c, m)
			}
			want := c.Kind
			switch c.Kind {
			case confdiff.KindAdd:
				want = confdiff.KindRemove
			case confdiff.KindRemove:
				want = confdiff.KindAdd
			}
			if m.Kind != want {
				t.Fatalf("change %d: kind %v mirrored to %v, want %v", i, c.Kind, m.Kind, want)
			}
		}
	})
}
