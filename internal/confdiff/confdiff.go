// Package confdiff compares successive configuration snapshots of a device
// and produces typed changes (paper §2.2, operational practices O1–O3):
// if at least one stanza differs between two snapshots, a configuration
// change occurred; each added, removed, or updated stanza contributes a
// change of its vendor-agnostic stanza type.
package confdiff

import (
	"sort"

	"mpa/internal/confmodel"
)

// Kind classifies how a stanza changed between two snapshots.
type Kind int

// Change kinds.
const (
	KindAdd Kind = iota
	KindRemove
	KindUpdate
)

// String returns the change-kind name.
func (k Kind) String() string {
	switch k {
	case KindAdd:
		return "add"
	case KindRemove:
		return "remove"
	case KindUpdate:
		return "update"
	default:
		return "unknown"
	}
}

// StanzaChange is one changed stanza between two successive snapshots.
type StanzaChange struct {
	Type confmodel.Type // vendor-agnostic stanza type
	Name string
	Kind Kind
}

// Diff returns the stanza-level changes from old to new, sorted by stanza
// key then kind for determinism. A nil result means the configurations are
// identical (no configuration change occurred).
func Diff(oldCfg, newCfg *confmodel.Config) []StanzaChange {
	var changes []StanzaChange
	oldByKey := map[string]*confmodel.Stanza{}
	for _, s := range oldCfg.Stanzas() {
		oldByKey[s.Key()] = s
	}
	seen := map[string]bool{}
	for _, s := range newCfg.Stanzas() {
		seen[s.Key()] = true
		old, ok := oldByKey[s.Key()]
		switch {
		case !ok:
			changes = append(changes, StanzaChange{s.Type, s.Name, KindAdd})
		case !old.Equal(s):
			changes = append(changes, StanzaChange{s.Type, s.Name, KindUpdate})
		}
	}
	for _, s := range oldCfg.Stanzas() {
		if !seen[s.Key()] {
			changes = append(changes, StanzaChange{s.Type, s.Name, KindRemove})
		}
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].Type != changes[j].Type {
			return changes[i].Type < changes[j].Type
		}
		if changes[i].Name != changes[j].Name {
			return changes[i].Name < changes[j].Name
		}
		return changes[i].Kind < changes[j].Kind
	})
	return changes
}

// Types returns the set of distinct vendor-agnostic stanza types touched
// by the given changes.
func Types(changes []StanzaChange) map[confmodel.Type]bool {
	out := map[confmodel.Type]bool{}
	for _, c := range changes {
		out[c.Type] = true
	}
	return out
}

// Touches reports whether any change touches the given stanza type.
func Touches(changes []StanzaChange, t confmodel.Type) bool {
	for _, c := range changes {
		if c.Type == t {
			return true
		}
	}
	return false
}

// TouchesRouter reports whether any change touches a routing-protocol
// stanza (the paper's "router change" category).
func TouchesRouter(changes []StanzaChange) bool {
	for _, c := range changes {
		if c.Type.IsRouter() {
			return true
		}
	}
	return false
}
