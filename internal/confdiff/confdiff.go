// Package confdiff compares successive configuration snapshots of a device
// and produces typed changes (paper §2.2, operational practices O1–O3):
// if at least one stanza differs between two snapshots, a configuration
// change occurred; each added, removed, or updated stanza contributes a
// change of its vendor-agnostic stanza type.
package confdiff

import (
	"slices"
	"strings"

	"mpa/internal/confmodel"
)

// Kind classifies how a stanza changed between two snapshots.
type Kind int

// Change kinds.
const (
	KindAdd Kind = iota
	KindRemove
	KindUpdate
)

// String returns the change-kind name.
func (k Kind) String() string {
	switch k {
	case KindAdd:
		return "add"
	case KindRemove:
		return "remove"
	case KindUpdate:
		return "update"
	default:
		return "unknown"
	}
}

// StanzaChange is one changed stanza between two successive snapshots.
type StanzaChange struct {
	Type confmodel.Type // vendor-agnostic stanza type
	Name string
	Kind Kind
}

// Diff returns the stanza-level changes from old to new, sorted by type,
// name, then kind for determinism. A nil result means the configurations
// are identical (no configuration change occurred).
func Diff(oldCfg, newCfg *confmodel.Config) []StanzaChange {
	return AppendDiff(nil, oldCfg, newCfg)
}

// AppendDiff appends the stanza-level changes from old to new onto dst
// and returns the extended slice. It merge-walks the two configs' cached
// key-sorted stanza views, so a diff allocates nothing beyond growing dst
// (no per-call maps). The appended region is sorted like Diff's result;
// entries already in dst are left untouched. Callers on the hot path pass
// dst[:0] of a reused buffer.
func AppendDiff(dst []StanzaChange, oldCfg, newCfg *confmodel.Config) []StanzaChange {
	base := len(dst)
	olds, news := oldCfg.Stanzas(), newCfg.Stanzas()
	i, j := 0, 0
	for i < len(olds) || j < len(news) {
		switch {
		case i >= len(olds):
			dst = append(dst, StanzaChange{news[j].Type, news[j].Name, KindAdd})
			j++
		case j >= len(news):
			dst = append(dst, StanzaChange{olds[i].Type, olds[i].Name, KindRemove})
			i++
		default:
			switch c := strings.Compare(olds[i].Key(), news[j].Key()); {
			case c < 0:
				dst = append(dst, StanzaChange{olds[i].Type, olds[i].Name, KindRemove})
				i++
			case c > 0:
				dst = append(dst, StanzaChange{news[j].Type, news[j].Name, KindAdd})
				j++
			default:
				if !olds[i].Equal(news[j]) {
					dst = append(dst, StanzaChange{news[j].Type, news[j].Name, KindUpdate})
				}
				i++
				j++
			}
		}
	}
	// The merge emits in key (type-string) order; the public order is by
	// Type's integer value, which differs (e.g. "acl" sorts before
	// "interface" but TypeInterface < TypeACL).
	out := dst[base:]
	slices.SortFunc(out, func(a, b StanzaChange) int {
		if a.Type != b.Type {
			return int(a.Type) - int(b.Type)
		}
		if c := strings.Compare(a.Name, b.Name); c != 0 {
			return c
		}
		return int(a.Kind) - int(b.Kind)
	})
	return dst
}

// Types returns the set of distinct vendor-agnostic stanza types touched
// by the given changes.
func Types(changes []StanzaChange) map[confmodel.Type]bool {
	out := map[confmodel.Type]bool{}
	for _, c := range changes {
		out[c.Type] = true
	}
	return out
}

// Touches reports whether any change touches the given stanza type.
func Touches(changes []StanzaChange, t confmodel.Type) bool {
	for _, c := range changes {
		if c.Type == t {
			return true
		}
	}
	return false
}

// TouchesRouter reports whether any change touches a routing-protocol
// stanza (the paper's "router change" category).
func TouchesRouter(changes []StanzaChange) bool {
	for _, c := range changes {
		if c.Type.IsRouter() {
			return true
		}
	}
	return false
}
