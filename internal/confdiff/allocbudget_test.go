package confdiff

import (
	"fmt"
	"testing"

	"mpa/internal/confmodel"
)

// TestAllocBudgetDiffPair pins the hot-path diff at zero allocations:
// AppendDiff into a pre-grown buffer over configs with warm sorted views
// must not allocate at all — the merge walk has no maps and the caller
// owns the output memory. CI fails the build when exceeded.
func TestAllocBudgetDiffPair(t *testing.T) {
	mk := func(n int, drift bool) *confmodel.Config {
		c := confmodel.NewConfig("dev")
		for i := 0; i < n; i++ {
			s := confmodel.NewStanza(confmodel.TypeInterface, fmt.Sprintf("Gi0/%d", i))
			s.Set("mtu", "1500")
			if drift && i%7 == 0 {
				s.Set("description", "drifted")
			}
			c.Upsert(s)
		}
		if drift {
			c.Upsert(confmodel.NewStanza(confmodel.TypeVLAN, "v9").Set("vlan-id", "9"))
		}
		return c
	}
	oldCfg, newCfg := mk(120, false), mk(120, true)
	var buf []StanzaChange
	buf = AppendDiff(buf[:0], oldCfg, newCfg) // grow buffer, warm sorted views
	if len(buf) == 0 {
		t.Fatal("fixture produced an empty diff")
	}
	avg := testing.AllocsPerRun(64, func() {
		buf = AppendDiff(buf[:0], oldCfg, newCfg)
	})
	t.Logf("diff: %.2f allocs/pair", avg)
	if avg > 0 {
		t.Errorf("diff allocations %.2f/pair exceed budget 0", avg)
	}
}
