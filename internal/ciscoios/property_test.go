package ciscoios

import (
	"testing"

	"mpa/internal/confdiff"
	"mpa/internal/conftest"
	"mpa/internal/rng"
)

// TestRoundTripProperty renders and re-parses hundreds of random
// well-formed configurations: the round trip must be lossless and the
// re-rendered text identical (rendering is a canonical form).
func TestRoundTripProperty(t *testing.T) {
	var d Dialect
	r := rng.New(2024)
	for i := 0; i < 300; i++ {
		orig := conftest.RandomConfig(r, conftest.StyleCisco)
		text := d.Render(orig)
		parsed, err := d.Parse(text)
		if err != nil {
			t.Fatalf("iteration %d: parse failed: %v\n%s", i, err, text)
		}
		if !orig.Equal(parsed) {
			diff := confdiff.Diff(orig, parsed)
			t.Fatalf("iteration %d: round trip lost data: %v\n%s", i, diff, text)
		}
		if again := d.Render(parsed); again != text {
			t.Fatalf("iteration %d: render not canonical", i)
		}
	}
}

// TestDiffProperty checks that an arbitrary single-stanza mutation is
// detected by the render/parse/diff pipeline with the correct type.
func TestDiffProperty(t *testing.T) {
	var d Dialect
	r := rng.New(555)
	for i := 0; i < 200; i++ {
		before := conftest.RandomConfig(r, conftest.StyleCisco)
		after := before.Clone()
		stanzas := after.Stanzas()
		s := stanzas[r.Intn(len(stanzas))]
		s.Set("description", "mutated")
		pb, err := d.Parse(d.Render(before))
		if err != nil {
			t.Fatal(err)
		}
		pa, err := d.Parse(d.Render(after))
		if err != nil {
			t.Fatal(err)
		}
		diff := confdiff.Diff(pb, pa)
		// Descriptions only render for some stanza types; when they do,
		// exactly one change of the mutated stanza's type must appear.
		if len(diff) > 1 {
			t.Fatalf("iteration %d: %d changes from one mutation: %v", i, len(diff), diff)
		}
		if len(diff) == 1 && diff[0].Type != s.Type {
			t.Fatalf("iteration %d: change typed %v, want %v", i, diff[0].Type, s.Type)
		}
	}
}
