package ciscoios

import (
	"testing"

	"mpa/internal/confmodel"
	"mpa/internal/conftest"
	"mpa/internal/rng"
)

// TestAllocBudgetParseSnapshot pins the allocation cost of parsing one
// snapshot with a warm scratch (the inference engine's steady state:
// interner and sizing hints populated by earlier snapshots of the same
// devices). The budget is per stanza, so it tracks parser efficiency
// rather than fixture size. CI runs `go test -run AllocBudget ./...`;
// exceeding a checked-in budget fails the build.
func TestAllocBudgetParseSnapshot(t *testing.T) {
	var d Dialect
	r := rng.New(3)
	texts := make([]string, 8)
	stanzas := 0
	for i := range texts {
		cfg := conftest.RandomConfig(r, conftest.StyleCisco)
		stanzas += cfg.Len()
		texts[i] = d.Render(cfg)
	}
	sc := confmodel.NewScratch()
	for _, tx := range texts {
		if _, err := d.ParseScratch(tx, sc); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(64, func() {
		if _, err := d.ParseScratch(texts[i%len(texts)], sc); err != nil {
			t.Fatal(err)
		}
		i++
	})
	perStanza := avg / (float64(stanzas) / float64(len(texts)))
	t.Logf("parse: %.1f allocs/snapshot, %.2f allocs/stanza", avg, perStanza)
	// Budget: ~1 stanza struct + ~2 map allocs per stanza, plus slack for
	// option values and config bookkeeping. The pre-zero-copy parser sat
	// around 12 allocs/stanza.
	const budget = 5.0
	if perStanza > budget {
		t.Errorf("parse allocations %.2f/stanza exceed budget %.1f", perStanza, budget)
	}
}
