package ciscoios

import (
	"strings"
	"testing"

	"mpa/internal/confmodel"
)

// fullConfig builds a configuration exercising every stanza type with
// Cisco-appropriate option placement (VLAN membership on the interface).
func fullConfig() *confmodel.Config {
	c := confmodel.NewConfig("net01-sw-01")
	c.Upsert(confmodel.NewStanza(confmodel.TypeInterface, "TenGigabitEthernet0/1").
		Set("description", "uplink to core").
		Set("address", "10.1.0.1/31").
		Set("mtu", "9216").
		Set("access-vlan", "100").
		Set("acl-in", "ACL-EDGE").
		Set("acl-out", "ACL-OUT").
		Set("lag-group", "5").
		Set("service-policy", "PM-CORE").
		Set("shutdown", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeVLAN, "100").
		Set("vlan-id", "100").Set("description", "web-tier"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeACL, "ACL-EDGE").
		Set("rule:10", "permit tcp any any eq 443").
		Set("rule:20", "deny ip any any"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeACL, "ACL-OUT").
		Set("rule:10", "permit ip any any"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeBGP, "65001").
		Set("local-as", "65001").
		Set("neighbor:10.0.0.2", "65002").
		Set("neighbor-rm:10.0.0.2", "RM-EXPORT").
		Set("network:10.1.0.0/16", "true").
		Set("prefix-list:PL-CUST", "in").
		Set("route-map:RM-EXPORT", "static"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeOSPF, "10").
		Set("area", "0").
		Set("network:10.1.0.0/16", "0"))
	c.Upsert(confmodel.NewStanza(confmodel.TypePool, "WEB-FARM").
		Set("monitor", "http-8080").
		Set("member:10.2.0.1:80", "5").
		Set("member:10.2.0.2:80", "1"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeUser, "netops").
		Set("role", "15").Set("hash", "$1$abcd"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeSNMP, "global").
		Set("community", "s3cret").Set("host:10.9.0.1", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeNTP, "global").
		Set("server:10.9.0.2", "true").Set("server:10.9.0.3", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeLogging, "global").
		Set("level", "informational").Set("host:10.9.0.4", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeQoS, "PM-CORE").
		Set("class:voice", "30").Set("class:best-effort", "10"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeSflow, "global").
		Set("collector", "10.9.0.5").Set("rate", "4096"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeSTP, "global").
		Set("mode", "mst").Set("priority", "4096").Set("region", "R1"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeUDLD, "global").
		Set("enable", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeDHCPRelay, "VLAN100").
		Set("vlan", "100").Set("server:10.9.0.6", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypePrefixList, "PL-CUST").
		Set("rule:5", "permit 10.0.0.0/8").
		Set("rule:10", "deny 0.0.0.0/0"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeRouteMap, "RM-EXPORT").
		Set("entry:10", "permit match:PL-CUST"))
	return c
}

func TestRoundTripFullConfig(t *testing.T) {
	var d Dialect
	orig := fullConfig()
	text := d.Render(orig)
	parsed, err := d.Parse(text)
	if err != nil {
		t.Fatalf("Parse failed: %v\n%s", err, text)
	}
	if !orig.Equal(parsed) {
		for _, s := range orig.Stanzas() {
			p := parsed.Get(s.Type, s.Name)
			if p == nil {
				t.Errorf("stanza %s missing after round trip", s.Key())
				continue
			}
			if !s.Equal(p) {
				t.Errorf("stanza %s differs:\n  orig   %v\n  parsed %v", s.Key(), s.Options, p.Options)
			}
		}
		for _, s := range parsed.Stanzas() {
			if orig.Get(s.Type, s.Name) == nil {
				t.Errorf("spurious stanza %s after round trip", s.Key())
			}
		}
		t.Fatalf("round trip not equal; rendered:\n%s", text)
	}
}

func TestRenderDeterministic(t *testing.T) {
	var d Dialect
	if d.Render(fullConfig()) != d.Render(fullConfig()) {
		t.Fatal("Render is not deterministic")
	}
}

func TestRenderIOSSyntaxLandmarks(t *testing.T) {
	var d Dialect
	text := d.Render(fullConfig())
	for _, want := range []string{
		"hostname net01-sw-01",
		"interface TenGigabitEthernet0/1",
		" switchport access vlan 100",
		"ip access-list extended ACL-EDGE",
		" permit tcp any any eq 443",
		"router bgp 65001",
		" neighbor 10.0.0.2 remote-as 65002",
		"router ospf 10",
		" network 10.1.0.0/16 area 0",
		"snmp-server community s3cret ro",
		"spanning-tree mode mst",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered IOS config missing %q", want)
		}
	}
}

func TestVLANAssignmentTypedAsInterface(t *testing.T) {
	// The paper's quirk: on Cisco, assigning an interface to a VLAN edits
	// the interface stanza. Verify the rendered text places the option
	// inside the interface block.
	var d Dialect
	c := confmodel.NewConfig("sw1")
	c.Upsert(confmodel.NewStanza(confmodel.TypeInterface, "Gi0/1").Set("access-vlan", "42"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeVLAN, "42").Set("vlan-id", "42"))
	text := d.Render(c)
	ifaceIdx := strings.Index(text, "interface Gi0/1")
	assignIdx := strings.Index(text, "switchport access vlan 42")
	bangAfterIface := strings.Index(text[ifaceIdx:], "!") + ifaceIdx
	if assignIdx < ifaceIdx || assignIdx > bangAfterIface {
		t.Error("VLAN assignment not inside interface stanza")
	}
}

func TestParseEmptyConfig(t *testing.T) {
	var d Dialect
	c, err := d.Parse("hostname lonely\n!\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Hostname != "lonely" || c.Len() != 0 {
		t.Errorf("parsed %q with %d stanzas", c.Hostname, c.Len())
	}
}

func TestParseErrors(t *testing.T) {
	var d Dialect
	cases := []struct{ name, text string }{
		{"unknown top-level", "frobnicate the network\n"},
		{"option outside stanza", " ip address 10.0.0.1/24\n"},
		{"unknown interface option", "interface Gi0/1\n boggle 7\n"},
		{"unknown bgp option", "router bgp 1\n neighbor\n"},
	}
	for _, c := range cases {
		if _, err := d.Parse(c.text); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("%s: error is %T, want *ParseError", c.name, err)
		}
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	var d Dialect
	_, err := d.Parse("hostname x\ninterface Gi0/1\n bad option here\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error = %v", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
}

func TestRoundTripMinimalStanzas(t *testing.T) {
	// Stanzas with no options must survive the round trip too.
	var d Dialect
	c := confmodel.NewConfig("d")
	c.Upsert(confmodel.NewStanza(confmodel.TypeInterface, "Gi0/2"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeQoS, "PM-EMPTY"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeRouteMap, "RM-EMPTY"))
	parsed, err := d.Parse(d.Render(c))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(parsed) {
		t.Errorf("minimal stanzas did not round trip:\n%s", d.Render(c))
	}
}

func TestDiffAfterEditIsTyped(t *testing.T) {
	// Editing one ACL rule then re-rendering and re-parsing must produce a
	// config that differs only in that ACL stanza.
	var d Dialect
	before := fullConfig()
	after := before.Clone()
	after.Get(confmodel.TypeACL, "ACL-EDGE").Set("rule:20", "permit udp any any eq 53")
	pBefore, err := d.Parse(d.Render(before))
	if err != nil {
		t.Fatal(err)
	}
	pAfter, err := d.Parse(d.Render(after))
	if err != nil {
		t.Fatal(err)
	}
	if pBefore.Equal(pAfter) {
		t.Fatal("edit lost in render/parse")
	}
	if !pBefore.Get(confmodel.TypeACL, "ACL-EDGE").Equal(before.Get(confmodel.TypeACL, "ACL-EDGE")) {
		t.Error("unedited parse mismatch")
	}
}
