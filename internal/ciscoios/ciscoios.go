// Package ciscoios implements a Cisco-IOS-flavored configuration dialect:
// deterministic rendering of a confmodel.Config to IOS-style text, and a
// parser that recovers the configuration, mapping IOS stanza keywords to
// vendor-agnostic types (e.g. `ip access-list` -> acl), as the paper's
// extended-Batfish pipeline does (§2.2).
//
// The dialect is a faithful structural model rather than a byte-exact IOS
// grammar: stanza headers and most option lines use real IOS syntax, and
// the vendor-specific placement quirks the paper calls out are preserved —
// in particular, interface-to-VLAN assignment lives in the interface
// stanza (`switchport access vlan N`), so such changes are typed as
// interface changes on Cisco devices.
package ciscoios

import (
	"fmt"
	"sort"
	"strings"

	"mpa/internal/confmodel"
)

// Dialect is the Cisco IOS dialect. The zero value is ready to use.
type Dialect struct{}

var _ confmodel.Dialect = Dialect{}

// Name returns "cisco-ios".
func (Dialect) Name() string { return "cisco-ios" }

// Render serializes the configuration to IOS-style text. Stanzas appear in
// deterministic key order; the global single-line families (snmp, ntp,
// logging, sflow, stp, udld) render as top-level command lines.
func (Dialect) Render(c *confmodel.Config) string {
	var b strings.Builder
	if c.Hostname != "" {
		fmt.Fprintf(&b, "hostname %s\n!\n", c.Hostname)
	}
	for _, s := range c.Stanzas() {
		renderStanza(&b, s)
	}
	b.WriteString("end\n")
	return b.String()
}

func renderStanza(b *strings.Builder, s *confmodel.Stanza) {
	switch s.Type {
	case confmodel.TypeInterface:
		fmt.Fprintf(b, "interface %s\n", s.Name)
		emit(b, s, "description", " description %s\n")
		emit(b, s, "address", " ip address %s\n")
		emit(b, s, "mtu", " mtu %s\n")
		emit(b, s, "access-vlan", " switchport access vlan %s\n")
		emit(b, s, "acl-in", " ip access-group %s in\n")
		emit(b, s, "acl-out", " ip access-group %s out\n")
		emit(b, s, "lag-group", " channel-group %s mode active\n")
		emit(b, s, "service-policy", " service-policy output %s\n")
		if s.Get("shutdown") == "true" {
			b.WriteString(" shutdown\n")
		}
		b.WriteString("!\n")
	case confmodel.TypeVLAN:
		fmt.Fprintf(b, "vlan %s\n", s.Name)
		emit(b, s, "description", " name %s\n")
		b.WriteString("!\n")
	case confmodel.TypeACL:
		fmt.Fprintf(b, "ip access-list extended %s\n", s.Name)
		for _, seq := range sortedSuffixes(s, "rule:") {
			fmt.Fprintf(b, " %s %s\n", seq, s.Get("rule:"+seq))
		}
		b.WriteString("!\n")
	case confmodel.TypeBGP:
		fmt.Fprintf(b, "router bgp %s\n", s.Name)
		for _, ip := range sortedSuffixes(s, "neighbor:") {
			fmt.Fprintf(b, " neighbor %s remote-as %s\n", ip, s.Get("neighbor:"+ip))
		}
		for _, ip := range sortedSuffixes(s, "neighbor-rm:") {
			fmt.Fprintf(b, " neighbor %s route-map %s out\n", ip, s.Get("neighbor-rm:"+ip))
		}
		for _, pfx := range sortedSuffixes(s, "network:") {
			fmt.Fprintf(b, " network %s\n", pfx)
		}
		for _, name := range sortedSuffixes(s, "prefix-list:") {
			fmt.Fprintf(b, " distribute-list prefix %s %s\n", name, s.Get("prefix-list:"+name))
		}
		for _, name := range sortedSuffixes(s, "route-map:") {
			fmt.Fprintf(b, " redistribute %s route-map %s\n", s.Get("route-map:"+name), name)
		}
		b.WriteString("!\n")
	case confmodel.TypeOSPF:
		fmt.Fprintf(b, "router ospf %s\n", s.Name)
		emit(b, s, "area", " area %s authentication message-digest\n")
		for _, pfx := range sortedSuffixes(s, "network:") {
			fmt.Fprintf(b, " network %s area %s\n", pfx, s.Get("network:"+pfx))
		}
		b.WriteString("!\n")
	case confmodel.TypePool:
		fmt.Fprintf(b, "ip slb serverfarm %s\n", s.Name)
		emit(b, s, "monitor", " probe %s\n")
		for _, member := range sortedSuffixes(s, "member:") {
			fmt.Fprintf(b, " real %s weight %s\n", member, s.Get("member:"+member))
		}
		b.WriteString("!\n")
	case confmodel.TypeUser:
		fmt.Fprintf(b, "username %s privilege %s secret 5 %s\n",
			s.Name, orDefault(s.Get("role"), "1"), orDefault(s.Get("hash"), "*"))
	case confmodel.TypeSNMP:
		emit(b, s, "community", "snmp-server community %s ro\n")
		for _, ip := range sortedSuffixes(s, "host:") {
			fmt.Fprintf(b, "snmp-server host %s\n", ip)
		}
	case confmodel.TypeNTP:
		for _, ip := range sortedSuffixes(s, "server:") {
			fmt.Fprintf(b, "ntp server %s\n", ip)
		}
	case confmodel.TypeLogging:
		emit(b, s, "level", "logging trap %s\n")
		for _, ip := range sortedSuffixes(s, "host:") {
			fmt.Fprintf(b, "logging host %s\n", ip)
		}
	case confmodel.TypeQoS:
		fmt.Fprintf(b, "policy-map %s\n", s.Name)
		for _, cls := range sortedSuffixes(s, "class:") {
			fmt.Fprintf(b, " class %s bandwidth %s\n", cls, s.Get("class:"+cls))
		}
		b.WriteString("!\n")
	case confmodel.TypeSflow:
		emit(b, s, "collector", "sflow collector %s\n")
		emit(b, s, "rate", "sflow sampling-rate %s\n")
	case confmodel.TypeSTP:
		emit(b, s, "mode", "spanning-tree mode %s\n")
		emit(b, s, "priority", "spanning-tree priority %s\n")
		emit(b, s, "region", "spanning-tree mst region %s\n")
	case confmodel.TypeUDLD:
		if s.Get("enable") == "true" {
			b.WriteString("udld enable\n")
		}
	case confmodel.TypeDHCPRelay:
		fmt.Fprintf(b, "ip dhcp-relay %s\n", s.Name)
		emit(b, s, "vlan", " vlan %s\n")
		for _, ip := range sortedSuffixes(s, "server:") {
			fmt.Fprintf(b, " server %s\n", ip)
		}
		b.WriteString("!\n")
	case confmodel.TypePrefixList:
		for _, seq := range sortedSuffixes(s, "rule:") {
			fmt.Fprintf(b, "ip prefix-list %s seq %s %s\n", s.Name, seq, s.Get("rule:"+seq))
		}
	case confmodel.TypeRouteMap:
		fmt.Fprintf(b, "route-map %s\n", s.Name)
		for _, seq := range sortedSuffixes(s, "entry:") {
			fmt.Fprintf(b, " entry %s %s\n", seq, s.Get("entry:"+seq))
		}
		b.WriteString("!\n")
	default:
		fmt.Fprintf(b, "other %s\n!\n", s.Name)
	}
}

// emit writes a formatted line for the option when it is set.
func emit(b *strings.Builder, s *confmodel.Stanza, key, format string) {
	if v := s.Get(key); v != "" {
		fmt.Fprintf(b, format, v)
	}
}

// sortedSuffixes returns the sorted option-key suffixes for a prefix.
func sortedSuffixes(s *confmodel.Stanza, prefix string) []string {
	m := s.OptionsWithPrefix(prefix)
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// ParseError reports a line the parser could not interpret.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ciscoios: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// Parse recovers a configuration from IOS-style text produced by Render.
func (d Dialect) Parse(text string) (*confmodel.Config, error) {
	return d.ParseScratch(text, nil)
}

// ParseScratch is Parse with caller-provided scratch buffers (see
// confmodel.Scratch): line scanning and tokenization index into the raw
// text instead of allocating per-line slices, and repeated stanza keys
// and option keys come from the scratch interner. A nil scratch
// allocates a fresh one. Every string stored in the returned Config is
// immutable (it aliases text or the interner) and safe to retain after
// the scratch is reset or reused.
func (Dialect) ParseScratch(text string, sc *confmodel.Scratch) (*confmodel.Config, error) {
	if sc == nil {
		sc = confmodel.NewScratch()
	}
	sc.Reset()
	c := sc.NewConfig("")
	var cur *confmodel.Stanza
	flush := func() {
		if cur != nil {
			c.Upsert(cur)
			cur = nil
		}
	}
	// globals holds the singleton stanza of each global command family
	// for this parse; they are only ever created here, so the array is
	// equivalent to (and cheaper than) looking the stanza up by key.
	var globals [confmodel.NumTypes]*confmodel.Stanza
	global := func(t confmodel.Type) *confmodel.Stanza {
		if s := globals[t]; s != nil {
			return s
		}
		s := sc.NewStanza(t, "global")
		c.Upsert(s)
		globals[t] = s
		return s
	}
	lineNo := 0
	for start := 0; start <= len(text); {
		var raw string
		if end := strings.IndexByte(text[start:], '\n'); end < 0 {
			raw = text[start:]
			start = len(text) + 1
		} else {
			raw = text[start : start+end]
			start += end + 1
		}
		lineNo++
		line := strings.TrimRight(raw, " \t")
		if strings.TrimSpace(line) == "" || line == "!" || line == "end" {
			continue
		}
		if strings.HasPrefix(line, " ") {
			if cur == nil {
				return nil, &ParseError{lineNo, line, "option line outside stanza"}
			}
			if err := parseOption(sc, cur, strings.TrimSpace(line)); err != nil {
				return nil, &ParseError{lineNo, line, err.Error()}
			}
			continue
		}
		flush()
		fields := sc.Fields(line)
		switch {
		case fields[0] == "hostname" && len(fields) == 2:
			c.Hostname = fields[1]
		case fields[0] == "interface" && len(fields) == 2:
			cur = sc.NewStanza(confmodel.TypeInterface, fields[1])
		case fields[0] == "vlan" && len(fields) == 2:
			cur = sc.NewStanza(confmodel.TypeVLAN, fields[1])
			cur.Set("vlan-id", fields[1])
		case strings.HasPrefix(line, "ip access-list extended ") && len(fields) == 4:
			cur = sc.NewStanza(confmodel.TypeACL, fields[3])
		case strings.HasPrefix(line, "router bgp ") && len(fields) == 3:
			cur = sc.NewStanza(confmodel.TypeBGP, fields[2])
			cur.Set("local-as", fields[2])
		case strings.HasPrefix(line, "router ospf ") && len(fields) == 3:
			cur = sc.NewStanza(confmodel.TypeOSPF, fields[2])
		case strings.HasPrefix(line, "ip slb serverfarm ") && len(fields) == 4:
			cur = sc.NewStanza(confmodel.TypePool, fields[3])
		case fields[0] == "username" && len(fields) == 7:
			s := sc.NewStanza(confmodel.TypeUser, fields[1])
			s.Set("role", fields[3]).Set("hash", fields[6])
			c.Upsert(s)
		case strings.HasPrefix(line, "snmp-server community ") && len(fields) == 4:
			global(confmodel.TypeSNMP).Set("community", fields[2])
		case strings.HasPrefix(line, "snmp-server host ") && len(fields) == 3:
			global(confmodel.TypeSNMP).Set(sc.Intern2("host:", fields[2]), "true")
		case strings.HasPrefix(line, "ntp server ") && len(fields) == 3:
			global(confmodel.TypeNTP).Set(sc.Intern2("server:", fields[2]), "true")
		case strings.HasPrefix(line, "logging trap ") && len(fields) == 3:
			global(confmodel.TypeLogging).Set("level", fields[2])
		case strings.HasPrefix(line, "logging host ") && len(fields) == 3:
			global(confmodel.TypeLogging).Set(sc.Intern2("host:", fields[2]), "true")
		case fields[0] == "policy-map" && len(fields) == 2:
			cur = sc.NewStanza(confmodel.TypeQoS, fields[1])
		case strings.HasPrefix(line, "sflow collector ") && len(fields) == 3:
			global(confmodel.TypeSflow).Set("collector", fields[2])
		case strings.HasPrefix(line, "sflow sampling-rate ") && len(fields) == 3:
			global(confmodel.TypeSflow).Set("rate", fields[2])
		case strings.HasPrefix(line, "spanning-tree mode ") && len(fields) == 3:
			global(confmodel.TypeSTP).Set("mode", fields[2])
		case strings.HasPrefix(line, "spanning-tree priority ") && len(fields) == 3:
			global(confmodel.TypeSTP).Set("priority", fields[2])
		case strings.HasPrefix(line, "spanning-tree mst region ") && len(fields) == 4:
			global(confmodel.TypeSTP).Set("region", fields[3])
		case line == "udld enable":
			global(confmodel.TypeUDLD).Set("enable", "true")
		case strings.HasPrefix(line, "ip dhcp-relay ") && len(fields) == 3:
			cur = sc.NewStanza(confmodel.TypeDHCPRelay, fields[2])
		case strings.HasPrefix(line, "ip prefix-list ") && len(fields) >= 5 && fields[3] == "seq":
			name := fields[2]
			s := sc.Lookup(c, confmodel.TypePrefixList, name)
			if s == nil {
				s = sc.NewStanza(confmodel.TypePrefixList, name)
				c.Upsert(s)
			}
			s.Set(sc.Intern2("rule:", fields[4]), sc.InternJoin(fields[5:]))
		case fields[0] == "route-map" && len(fields) == 2:
			cur = sc.NewStanza(confmodel.TypeRouteMap, fields[1])
		case fields[0] == "other" && len(fields) == 2:
			cur = sc.NewStanza(confmodel.TypeOther, fields[1])
		default:
			return nil, &ParseError{lineNo, line, "unrecognized top-level line"}
		}
	}
	flush()
	sc.FinishConfig(c)
	return c, nil
}

// parseOption interprets one indented option line in the context of the
// current stanza, using the scratch for tokenization and key interning.
func parseOption(sc *confmodel.Scratch, s *confmodel.Stanza, line string) error {
	fields := sc.Fields(line)
	if len(fields) == 0 {
		return fmt.Errorf("empty option line")
	}
	switch s.Type {
	case confmodel.TypeInterface:
		switch {
		case fields[0] == "description" && len(fields) >= 2:
			s.Set("description", sc.InternJoin(fields[1:]))
		case strings.HasPrefix(line, "ip address ") && len(fields) == 3:
			s.Set("address", fields[2])
		case fields[0] == "mtu" && len(fields) == 2:
			s.Set("mtu", fields[1])
		case strings.HasPrefix(line, "switchport access vlan ") && len(fields) == 4:
			s.Set("access-vlan", fields[3])
		case strings.HasPrefix(line, "ip access-group ") && len(fields) == 4 &&
			(fields[3] == "in" || fields[3] == "out"):
			s.Set(sc.Intern2("acl-", fields[3]), fields[2])
		case strings.HasPrefix(line, "channel-group ") && len(fields) == 4:
			s.Set("lag-group", fields[1])
		case strings.HasPrefix(line, "service-policy output ") && len(fields) == 3:
			s.Set("service-policy", fields[2])
		case line == "shutdown":
			s.Set("shutdown", "true")
		default:
			return fmt.Errorf("unknown interface option")
		}
	case confmodel.TypeVLAN:
		if fields[0] == "name" && len(fields) >= 2 {
			s.Set("description", sc.InternJoin(fields[1:]))
		} else {
			return fmt.Errorf("unknown vlan option")
		}
	case confmodel.TypeACL:
		if len(fields) < 2 {
			return fmt.Errorf("short acl rule")
		}
		s.Set(sc.Intern2("rule:", fields[0]), sc.InternJoin(fields[1:]))
	case confmodel.TypeBGP:
		switch {
		case fields[0] == "neighbor" && len(fields) == 4 && fields[2] == "remote-as":
			s.Set(sc.Intern2("neighbor:", fields[1]), fields[3])
		case fields[0] == "neighbor" && len(fields) == 5 && fields[2] == "route-map":
			s.Set(sc.Intern2("neighbor-rm:", fields[1]), fields[3])
		case fields[0] == "network" && len(fields) == 2:
			s.Set(sc.Intern2("network:", fields[1]), "true")
		case strings.HasPrefix(line, "distribute-list prefix ") && len(fields) == 4:
			s.Set(sc.Intern2("prefix-list:", fields[2]), fields[3])
		case fields[0] == "redistribute" && len(fields) == 4 && fields[2] == "route-map":
			s.Set(sc.Intern2("route-map:", fields[3]), fields[1])
		default:
			return fmt.Errorf("unknown bgp option")
		}
	case confmodel.TypeOSPF:
		switch {
		case fields[0] == "area" && len(fields) == 4:
			s.Set("area", fields[1])
		case fields[0] == "network" && len(fields) == 4 && fields[2] == "area":
			s.Set(sc.Intern2("network:", fields[1]), fields[3])
		default:
			return fmt.Errorf("unknown ospf option")
		}
	case confmodel.TypePool:
		switch {
		case fields[0] == "probe" && len(fields) == 2:
			s.Set("monitor", fields[1])
		case fields[0] == "real" && len(fields) == 4 && fields[2] == "weight":
			s.Set(sc.Intern2("member:", fields[1]), fields[3])
		default:
			return fmt.Errorf("unknown pool option")
		}
	case confmodel.TypeQoS:
		if fields[0] == "class" && len(fields) == 4 && fields[2] == "bandwidth" {
			s.Set(sc.Intern2("class:", fields[1]), fields[3])
		} else {
			return fmt.Errorf("unknown policy-map option")
		}
	case confmodel.TypeDHCPRelay:
		switch {
		case fields[0] == "vlan" && len(fields) == 2:
			s.Set("vlan", fields[1])
		case fields[0] == "server" && len(fields) == 2:
			s.Set(sc.Intern2("server:", fields[1]), "true")
		default:
			return fmt.Errorf("unknown dhcp-relay option")
		}
	case confmodel.TypeRouteMap:
		if fields[0] == "entry" && len(fields) >= 3 {
			s.Set(sc.Intern2("entry:", fields[1]), sc.InternJoin(fields[2:]))
		} else {
			return fmt.Errorf("unknown route-map option")
		}
	default:
		return fmt.Errorf("option for stanza type without options")
	}
	return nil
}
