package ciscoios

import (
	"fmt"
	"strings"
	"testing"

	"mpa/internal/confdiff"
	"mpa/internal/confmodel"
	"mpa/internal/conftest"
	"mpa/internal/rng"
)

// adversarialSeeds builds allocation-heavy inputs for the given dialect:
// thousands of small stanzas (config-map growth), one stanza with
// thousands of options (options-map growth), and a pathologically long
// line (field-buffer growth) — the shapes the zero-copy scanner's scratch
// buffers are sized by.
func adversarialSeeds(d confmodel.Dialect) []string {
	many := confmodel.NewConfig("many")
	for i := 0; i < 2500; i++ {
		many.Upsert(confmodel.NewStanza(confmodel.TypeVLAN, fmt.Sprintf("v%d", i)).
			Set("vlan-id", fmt.Sprint(i)))
	}
	wide := confmodel.NewConfig("wide")
	acl := confmodel.NewStanza(confmodel.TypeACL, "megafilter")
	for i := 0; i < 2000; i++ {
		acl.Set(fmt.Sprintf("rule:%d", i), "permit ip any any")
	}
	wide.Upsert(acl)
	long := confmodel.NewConfig("long")
	long.Upsert(confmodel.NewStanza(confmodel.TypeInterface, "Gi0/1").
		Set("description", strings.TrimSpace(strings.Repeat("pathologically-long-token ", 4000))))
	return []string{d.Render(many), d.Render(wide), d.Render(long)}
}

// FuzzRoundTrip feeds arbitrary text through the parser. Whatever parses
// must round-trip losslessly: rendering is a canonical form, so the
// re-parsed config must equal the original parse, re-render to identical
// bytes, and diff empty against it. The seed corpus (testdata/fuzz plus
// the inline seeds below) covers every stanza type the renderer emits.
func FuzzRoundTrip(f *testing.F) {
	var d Dialect
	r := rng.New(7)
	for i := 0; i < 8; i++ {
		f.Add(d.Render(conftest.RandomConfig(r, conftest.StyleCisco)))
	}
	f.Add("")
	f.Add("hostname edge\n!\ninterface Gi0/1\n no shutdown\n!\n")
	f.Add("interface\n!")
	for _, s := range adversarialSeeds(d) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		cfg, err := d.Parse(text)
		if err != nil {
			return // rejected input: only well-formed text must round-trip
		}
		canon := d.Render(cfg)
		again, err := d.Parse(canon)
		if err != nil {
			t.Fatalf("canonical render does not re-parse: %v\n%s", err, canon)
		}
		if !cfg.Equal(again) {
			t.Fatalf("round trip lost data: %v\n%s", confdiff.Diff(cfg, again), canon)
		}
		if d.Render(again) != canon {
			t.Fatalf("render not canonical:\n%s", canon)
		}
		if diff := confdiff.Diff(cfg, again); len(diff) != 0 {
			t.Fatalf("diff(cfg, reparse) not empty: %v", diff)
		}
		// Scratch equivalence and aliasing safety: a shared-scratch parse
		// must equal the plain parse, and a later parse with the same
		// scratch (which rewrites every transient buffer) must not corrupt
		// the earlier result — parsed configs may only hold immutable
		// strings, never scratch memory.
		sc := confmodel.NewScratch()
		first, err := d.ParseScratch(text, sc)
		if err != nil {
			t.Fatalf("ParseScratch rejects what Parse accepts: %v", err)
		}
		if !cfg.Equal(first) {
			t.Fatalf("ParseScratch disagrees with Parse:\n%v", confdiff.Diff(cfg, first))
		}
		if _, err := d.ParseScratch(canon, sc); err != nil {
			t.Fatalf("second scratch parse failed: %v", err)
		}
		if !cfg.Equal(first) || d.Render(first) != canon {
			t.Fatalf("reusing the scratch corrupted a previously parsed config")
		}
	})
}
