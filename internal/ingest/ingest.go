// Package ingest implements the streaming update path: the wire format
// for one month of new snapshots and tickets, its validation and
// compilation against the loaded organization, helpers to slice and
// truncate existing substrates for replay and equivalence testing, the
// SSE fan-out hub, and a watched-directory poller.
//
// An Update is append-only by construction: it carries exactly one
// calendar month of data, and the framework accepts it only for the
// current final month (intra-month growth) or the month after it
// (window extension). Compilation validates every record against the
// inventory and the archive's per-device time monotonicity before
// anything is applied, so a rejected update leaves no partial state.
package ingest

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"mpa/internal/months"
	"mpa/internal/netmodel"
	"mpa/internal/nms"
	"mpa/internal/ticketing"
)

// Update is the wire format of one month of new management-plane data.
type Update struct {
	// Month is the calendar month every record must fall in, "YYYY-MM".
	Month string `json:"month"`
	// Snapshots are new configuration snapshots, per-device time-ordered.
	Snapshots []SnapshotEntry `json:"snapshots"`
	// Tickets are new trouble tickets opened in the month.
	Tickets []TicketEntry `json:"tickets"`
}

// SnapshotEntry is one configuration snapshot on the wire.
type SnapshotEntry struct {
	Device string    `json:"device"`
	Time   time.Time `json:"time"`
	Login  string    `json:"login"`
	Text   string    `json:"text"`
}

// TicketEntry is one trouble ticket on the wire.
type TicketEntry struct {
	Network  string    `json:"network"`
	Devices  []string  `json:"devices,omitempty"`
	Origin   string    `json:"origin"` // alarm | user-report | maintenance
	Opened   time.Time `json:"opened"`
	Resolved time.Time `json:"resolved,omitempty"`
	Symptom  string    `json:"symptom,omitempty"`
	Notes    string    `json:"notes,omitempty"`
}

// Decode parses an Update from JSON, rejecting unknown fields (a typo'd
// field name on a monitoring feed should fail loudly, not silently drop
// data).
func Decode(r io.Reader) (*Update, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	u := &Update{}
	if err := dec.Decode(u); err != nil {
		return nil, fmt.Errorf("ingest: decoding update: %w", err)
	}
	return u, nil
}

// ParseMonth parses the update's month field.
func (u *Update) ParseMonth() (months.Month, error) {
	t, err := time.Parse("2006-01", u.Month)
	if err != nil {
		return months.Month{}, fmt.Errorf("ingest: bad month %q, want YYYY-MM", u.Month)
	}
	return months.Of(t), nil
}

// Compiled is a validated update, converted to substrate records and
// ready to splice.
type Compiled struct {
	Month months.Month
	// Snapshots holds the new records in input order, fingerprinted and
	// validated against the archive's per-device monotonicity.
	Snapshots []*nms.Snapshot
	// Tickets holds the new tickets in input order (IDs are assigned by
	// the log at filing time).
	Tickets []ticketing.Ticket
	// Networks is the sorted set of networks the update touches — the
	// exact set whose inference and query-cache entries must refresh.
	Networks []string
}

// Compile validates the update against the inventory and archive and
// converts it to substrate records. It checks that every record falls in
// the update's month, every device and network is known, and per-device
// snapshot times are non-decreasing both within the update and relative
// to the archived history. Nothing is mutated; a failed Compile is free.
func (u *Update) Compile(inv *netmodel.Inventory, arch *nms.Archive) (*Compiled, error) {
	m, err := u.ParseMonth()
	if err != nil {
		return nil, err
	}
	if len(u.Snapshots) == 0 && len(u.Tickets) == 0 {
		return nil, fmt.Errorf("ingest: update for %s carries no snapshots or tickets", m)
	}

	deviceNet := make(map[string]string)
	known := make(map[string]bool, len(inv.Networks))
	for _, nw := range inv.Networks {
		known[nw.Name] = true
		for _, dev := range nw.Devices {
			deviceNet[dev.Name] = nw.Name
		}
	}

	c := &Compiled{Month: m}
	touched := map[string]bool{}
	lastTime := map[string]time.Time{} // per device, within the update
	for i, s := range u.Snapshots {
		netName, ok := deviceNet[s.Device]
		if !ok {
			return nil, fmt.Errorf("ingest: snapshot %d: unknown device %q", i, s.Device)
		}
		if months.Of(s.Time) != m {
			return nil, fmt.Errorf("ingest: snapshot %d (%s at %v): outside update month %s",
				i, s.Device, s.Time, m)
		}
		if s.Text == "" {
			return nil, fmt.Errorf("ingest: snapshot %d (%s): empty configuration text", i, s.Device)
		}
		prev, seen := lastTime[s.Device]
		if !seen {
			if hist := arch.Snapshots(s.Device); len(hist) > 0 {
				prev, seen = hist[len(hist)-1].Time, true
			}
		}
		if seen && s.Time.Before(prev) {
			return nil, fmt.Errorf("ingest: snapshot %d (%s at %v): before device's last snapshot %v",
				i, s.Device, s.Time, prev)
		}
		lastTime[s.Device] = s.Time
		c.Snapshots = append(c.Snapshots, &nms.Snapshot{
			Device:      s.Device,
			Time:        s.Time,
			Login:       s.Login,
			Text:        s.Text,
			Fingerprint: textFingerprint(s.Text),
		})
		touched[netName] = true
	}
	// An unchanged re-snapshot must keep its predecessor's fingerprint
	// even across the fingerprint-scheme boundary (the generator digests
	// structure, the wire path digests text): equal text, equal print.
	prevSnap := map[string]*nms.Snapshot{}
	for _, s := range c.Snapshots {
		prev := prevSnap[s.Device]
		if prev == nil {
			if hist := arch.Snapshots(s.Device); len(hist) > 0 {
				prev = hist[len(hist)-1]
			}
		}
		if prev != nil && prev.Text == s.Text {
			s.Fingerprint = prev.Fingerprint
		}
		prevSnap[s.Device] = s
	}

	for i, t := range u.Tickets {
		if !known[t.Network] {
			return nil, fmt.Errorf("ingest: ticket %d: unknown network %q", i, t.Network)
		}
		if months.Of(t.Opened) != m {
			return nil, fmt.Errorf("ingest: ticket %d (%s at %v): outside update month %s",
				i, t.Network, t.Opened, m)
		}
		origin, err := parseOrigin(t.Origin)
		if err != nil {
			return nil, fmt.Errorf("ingest: ticket %d: %w", i, err)
		}
		c.Tickets = append(c.Tickets, ticketing.Ticket{
			Network:  t.Network,
			Devices:  t.Devices,
			Origin:   origin,
			Opened:   t.Opened,
			Resolved: t.Resolved,
			Symptom:  t.Symptom,
			Notes:    t.Notes,
		})
		touched[t.Network] = true
	}

	c.Networks = sortedKeys(touched)
	return c, nil
}

// SliceMonth extracts one month of an existing archive and ticket log as
// a wire-format Update — the replay path: `mpa watch -replay` and the
// splice-equivalence tests generate a full synthetic organization, then
// feed its tail months back through the exact bytes a monitoring feed
// would POST.
func SliceMonth(arch *nms.Archive, log *ticketing.Log, m months.Month) *Update {
	u := &Update{Month: m.String()}
	for _, dev := range arch.Devices() {
		for _, s := range arch.Snapshots(dev) {
			if months.Of(s.Time) == m {
				u.Snapshots = append(u.Snapshots, SnapshotEntry{
					Device: s.Device, Time: s.Time, Login: s.Login, Text: s.Text,
				})
			}
		}
	}
	for _, t := range log.All() {
		if months.Of(t.Opened) == m {
			u.Tickets = append(u.Tickets, TicketEntry{
				Network:  t.Network,
				Devices:  t.Devices,
				Origin:   t.Origin.String(),
				Opened:   t.Opened,
				Resolved: t.Resolved,
				Symptom:  t.Symptom,
				Notes:    t.Notes,
			})
		}
	}
	return u
}

// Truncate copies the archive and log restricted to records at or before
// the end month: the "organization as of month k" view the equivalence
// suite rebuilds from before replaying later months. Snapshot records
// are shared with the original (they are immutable); ticket IDs are
// reassigned sequentially, exactly as if filing had stopped at the
// boundary.
func Truncate(arch *nms.Archive, log *ticketing.Log, end months.Month) (*nms.Archive, *ticketing.Log) {
	cutoff := end.End()
	ta := nms.NewArchive()
	for _, login := range arch.SpecialAccounts() {
		ta.MarkSpecialAccount(login)
	}
	for _, dev := range arch.Devices() {
		for _, s := range arch.Snapshots(dev) {
			if !s.Time.Before(cutoff) {
				break // histories are time-ordered
			}
			if err := ta.Record(s); err != nil {
				panic(fmt.Sprintf("ingest: truncate re-record failed: %v", err))
			}
		}
	}
	tl := ticketing.NewLog()
	for _, t := range log.All() {
		if t.Opened.Before(cutoff) {
			tl.File(*t)
		}
	}
	return ta, tl
}

// parseOrigin maps a wire origin string to its ticketing constant.
func parseOrigin(s string) (ticketing.Origin, error) {
	for _, o := range []ticketing.Origin{
		ticketing.OriginAlarm, ticketing.OriginUserReport, ticketing.OriginMaintenance,
	} {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("unknown ticket origin %q", s)
}

// textFingerprint digests raw snapshot text (FNV-1a), the same
// change-detection convention the dataio importer uses: consumers only
// ever compare fingerprints of successive same-device snapshots for
// equality, so any deterministic text digest serves.
func textFingerprint(text string) string {
	const offset, prime = 14695981039346656037, 1099511628211
	var h uint64 = offset
	for i := 0; i < len(text); i++ {
		h ^= uint64(text[i])
		h *= prime
	}
	var b [8]byte
	for i := range b {
		b[i] = byte(h >> (56 - 8*i))
	}
	return hex.EncodeToString(b[:])
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
