package ingest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mpa/internal/obs"
)

// Watcher polls a directory for update files and applies each exactly
// once, in lexicographic filename order — so producers naming files by
// month ("2014-07.json") get in-order ingestion for free. Polling (no
// inotify dependency) keeps the watcher portable; producers must write
// files atomically (write to a temp name, then rename into the
// directory), the standard contract for drop-directory feeds.
type Watcher struct {
	dir      string
	interval time.Duration
	apply    func(path string, u *Update) error
	seen     map[string]bool
}

// NewWatcher returns a watcher over dir applying each new "*.json" file
// via apply. A non-positive interval defaults to 2s.
func NewWatcher(dir string, interval time.Duration, apply func(path string, u *Update) error) *Watcher {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return &Watcher{dir: dir, interval: interval, apply: apply, seen: map[string]bool{}}
}

// Scan runs one poll pass: every unseen update file is decoded and
// applied in filename order. A file is marked seen whether or not it
// applied cleanly — a malformed or rejected file is skipped forever
// (and counted under ingest.watch_errors), never retried in a hot loop.
// It returns how many files applied cleanly and the first error.
func (w *Watcher) Scan() (applied int, err error) {
	entries, rerr := os.ReadDir(w.dir)
	if rerr != nil {
		return 0, fmt.Errorf("ingest: watch dir: %w", rerr)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || w.seen[e.Name()] {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		w.seen[name] = true
		path := filepath.Join(w.dir, name)
		ferr := w.applyFile(path)
		if ferr != nil {
			obs.GetCounter("ingest.watch_errors").Add(1)
			obs.Logger().Error("ingest: watch apply failed", "file", name, "err", ferr)
			if err == nil {
				err = ferr
			}
			continue
		}
		applied++
		obs.Logger().Info("ingest: applied update file", "file", name)
	}
	return applied, err
}

// applyFile decodes and applies one update file.
func (w *Watcher) applyFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	u, err := Decode(f)
	if err != nil {
		return err
	}
	return w.apply(path, u)
}

// Run polls until ctx is canceled. Scan errors are logged and counted
// but do not stop the loop; only context cancellation returns.
func (w *Watcher) Run(ctx context.Context) error {
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			_, _ = w.Scan()
		}
	}
}
