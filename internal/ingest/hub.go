package ingest

import (
	"sync"

	"mpa/internal/obs"
)

// Event is one server-sent event: a type tag plus a pre-encoded JSON
// payload. Payloads are encoded once by the publisher and shared across
// subscribers, never re-marshaled per connection.
type Event struct {
	Type string // SSE event name: "delta", "rank", ...
	Data []byte // JSON payload (single line)
}

// Hub fans ingest events out to SSE subscribers. Publish never blocks:
// each subscriber owns a buffered channel, and a subscriber too slow to
// drain its buffer loses events (counted under ingest.stream_dropped)
// rather than stalling the ingest path or other subscribers. Events
// published from one goroutine arrive at every live subscriber in
// publish order — the ordering guarantee the SSE tests pin.
type Hub struct {
	mu   sync.Mutex
	subs map[int]chan Event
	next int
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{subs: map[int]chan Event{}} }

// Subscribe registers a subscriber with the given channel buffer
// (non-positive means 64) and returns its event channel plus a cancel
// function. Cancel is idempotent and closes the channel, so range loops
// over it terminate.
func (h *Hub) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan Event, buf)
	h.mu.Lock()
	id := h.next
	h.next++
	h.subs[id] = ch
	h.mu.Unlock()
	obs.GetGauge("ingest.stream_subscribers").Set(float64(h.Subscribers()))
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.subs, id)
			h.mu.Unlock()
			close(ch)
			obs.GetGauge("ingest.stream_subscribers").Set(float64(h.Subscribers()))
		})
	}
	return ch, cancel
}

// Subscribers returns the live subscriber count. The ingest path uses it
// to skip building events nobody is listening for.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Publish delivers the events, in order, to every current subscriber.
// Slow subscribers drop events instead of blocking the caller.
func (h *Hub) Publish(evs ...Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ev := range evs {
		for _, ch := range h.subs {
			select {
			case ch <- ev:
			default:
				obs.GetCounter("ingest.stream_dropped").Add(1)
			}
		}
	}
}
