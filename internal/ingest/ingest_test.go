package ingest

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mpa/internal/months"
	"mpa/internal/osp"
)

// testOrg generates a small organization shared by the validation tests.
func testOrg(t *testing.T) *osp.OSP {
	t.Helper()
	p := osp.Small(3)
	p.Networks = 4
	p.End = p.Start.Add(1)
	return osp.Generate(p)
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	good := `{"month":"2014-07","snapshots":[],"tickets":[]}`
	if _, err := Decode(strings.NewReader(good)); err != nil {
		t.Fatalf("valid update rejected: %v", err)
	}
	bad := `{"month":"2014-07","snapshotz":[]}`
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Fatal("typo'd field accepted")
	}
	if _, err := Decode(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

func TestCompileValidation(t *testing.T) {
	o := testOrg(t)
	m := o.Params.End.Next()
	dev := o.Inventory.Networks[0].Devices[0].Name
	nw := o.Inventory.Networks[0].Name
	in := func(d int) time.Time { return m.Start().Add(time.Duration(d) * 24 * time.Hour) }
	snap := func(device string, at time.Time) SnapshotEntry {
		return SnapshotEntry{Device: device, Time: at, Login: "alice", Text: "hostname x\n"}
	}

	cases := []struct {
		name string
		u    Update
		want string // substring of the expected error; "" means accept
	}{
		{"accepts valid", Update{Month: m.String(), Snapshots: []SnapshotEntry{snap(dev, in(1))},
			Tickets: []TicketEntry{{Network: nw, Origin: "alarm", Opened: in(2)}}}, ""},
		{"bad month string", Update{Month: "July 2014", Snapshots: []SnapshotEntry{snap(dev, in(1))}}, "bad month"},
		{"empty update", Update{Month: m.String()}, "no snapshots or tickets"},
		{"unknown device", Update{Month: m.String(), Snapshots: []SnapshotEntry{snap("no-such-device", in(1))}}, "unknown device"},
		{"snapshot outside month", Update{Month: m.String(),
			Snapshots: []SnapshotEntry{snap(dev, m.End().Add(time.Hour))}}, "outside update month"},
		{"empty text", Update{Month: m.String(),
			Snapshots: []SnapshotEntry{{Device: dev, Time: in(1), Login: "alice"}}}, "empty configuration text"},
		{"time regression within update", Update{Month: m.String(),
			Snapshots: []SnapshotEntry{snap(dev, in(2)), snap(dev, in(1))}}, "before device's last snapshot"},
		{"unknown network", Update{Month: m.String(),
			Tickets: []TicketEntry{{Network: "no-such-network", Origin: "alarm", Opened: in(1)}}}, "unknown network"},
		{"ticket outside month", Update{Month: m.String(),
			Tickets: []TicketEntry{{Network: nw, Origin: "alarm", Opened: m.End().Add(time.Hour)}}}, "outside update month"},
		{"bad origin", Update{Month: m.String(),
			Tickets: []TicketEntry{{Network: nw, Origin: "gremlins", Opened: in(1)}}}, "origin"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.u.Compile(o.Inventory, o.Archive)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if got := c.Networks; len(got) != 1 || got[0] != nw {
					t.Fatalf("touched networks %v, want [%s]", got, nw)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestCompileRejectsRegressionAgainstArchive pins that per-device
// monotonicity is checked against the archived history, not just within
// the update.
func TestCompileRejectsRegressionAgainstArchive(t *testing.T) {
	o := testOrg(t)
	dev := o.Inventory.Networks[0].Devices[0].Name
	hist := o.Archive.Snapshots(dev)
	last := hist[len(hist)-1].Time
	m := months.Of(last)
	u := Update{Month: m.String(), Snapshots: []SnapshotEntry{
		{Device: dev, Time: last.Add(-time.Minute), Login: "alice", Text: "hostname x\n"},
	}}
	if _, err := u.Compile(o.Inventory, o.Archive); err == nil {
		t.Fatal("snapshot older than archived history accepted")
	}
}

// TestCompileFingerprintCarry pins the cross-scheme fingerprint rule: a
// re-snapshot with text identical to its predecessor (archived or within
// the update) keeps the predecessor's fingerprint, so no spurious change
// event appears at the generator/wire boundary.
func TestCompileFingerprintCarry(t *testing.T) {
	o := testOrg(t)
	m := o.Params.End.Next()
	dev := o.Inventory.Networks[0].Devices[0].Name
	hist := o.Archive.Snapshots(dev)
	last := hist[len(hist)-1]

	u := Update{Month: m.String(), Snapshots: []SnapshotEntry{
		{Device: dev, Time: m.Start().Add(time.Hour), Login: "alice", Text: last.Text},
		{Device: dev, Time: m.Start().Add(2 * time.Hour), Login: "alice", Text: last.Text + "! drift\n"},
		{Device: dev, Time: m.Start().Add(3 * time.Hour), Login: "alice", Text: last.Text + "! drift\n"},
	}}
	c, err := u.Compile(o.Inventory, o.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if c.Snapshots[0].Fingerprint != last.Fingerprint {
		t.Errorf("unchanged re-snapshot got fingerprint %q, want archived %q",
			c.Snapshots[0].Fingerprint, last.Fingerprint)
	}
	if c.Snapshots[1].Fingerprint == last.Fingerprint {
		t.Error("changed snapshot kept the archived fingerprint")
	}
	if c.Snapshots[2].Fingerprint != c.Snapshots[1].Fingerprint {
		t.Errorf("unchanged in-update re-snapshot got %q, want predecessor's %q",
			c.Snapshots[2].Fingerprint, c.Snapshots[1].Fingerprint)
	}
}

// TestTruncateSliceRoundTrip pins the replay identity the equivalence
// suite depends on: truncating at month j and re-applying SliceMonth for
// j+1..k reassembles exactly the original archive and ticket log.
func TestTruncateSliceRoundTrip(t *testing.T) {
	p := osp.Small(4)
	p.Networks = 5
	p.End = p.Start.Add(3)
	o := osp.Generate(p)
	cut := p.Start.Add(1)

	arch, log := Truncate(o.Archive, o.Tickets, cut)
	// The truncated view must contain no records after the cut.
	for _, dev := range arch.Devices() {
		for _, s := range arch.Snapshots(dev) {
			if !s.Time.Before(cut.End()) {
				t.Fatalf("truncated archive holds %s at %v, after %s", dev, s.Time, cut)
			}
		}
	}
	for _, tk := range log.All() {
		if !tk.Opened.Before(cut.End()) {
			t.Fatalf("truncated log holds ticket opened %v, after %s", tk.Opened, cut)
		}
	}
	if len(arch.SpecialAccounts()) != len(o.Archive.SpecialAccounts()) {
		t.Fatal("truncate dropped special accounts")
	}

	// Replay the tail months through the wire format.
	for m := cut.Next(); !p.End.Before(m); m = m.Next() {
		u := SliceMonth(o.Archive, o.Tickets, m)
		b, err := json.Marshal(u)
		if err != nil {
			t.Fatal(err)
		}
		u2, err := Decode(bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		c, err := u2.Compile(o.Inventory, arch)
		if err != nil {
			t.Fatalf("compile month %s: %v", m, err)
		}
		for _, s := range c.Snapshots {
			if err := arch.Record(s); err != nil {
				t.Fatalf("record month %s: %v", m, err)
			}
		}
		for i := range c.Tickets {
			log.File(c.Tickets[i])
		}
	}

	// Identical per-device histories. Fingerprint strings legitimately
	// differ across the boundary (the generator digests structure, the
	// wire path digests text), so compare the payload fields exactly and
	// the fingerprints by their equality pattern — consecutive snapshots
	// share a fingerprint iff their texts match, which is all the change
	// inference reads from them.
	origDevs := o.Archive.Devices()
	if got := arch.Devices(); !reflect.DeepEqual(got, origDevs) {
		t.Fatalf("device sets differ: %v vs %v", got, origDevs)
	}
	for _, dev := range origDevs {
		orig, got := o.Archive.Snapshots(dev), arch.Snapshots(dev)
		if len(orig) != len(got) {
			t.Fatalf("%s: %d snapshots, want %d", dev, len(got), len(orig))
		}
		for i := range orig {
			o, g := *orig[i], *got[i]
			o.Fingerprint, g.Fingerprint = "", ""
			if !reflect.DeepEqual(o, g) {
				t.Fatalf("%s snapshot %d differs:\n got %+v\nwant %+v", dev, i, g, o)
			}
			if i > 0 {
				same := got[i].Fingerprint == got[i-1].Fingerprint
				if want := got[i].Text == got[i-1].Text; same != want {
					t.Fatalf("%s snapshot %d: fingerprint equality %v, text equality %v",
						dev, i, same, want)
				}
			}
		}
	}
	// Ticket multisets match per month (replay appends later months at
	// the end, so IDs and global order legitimately differ).
	if lo, lr := len(o.Tickets.All()), len(log.All()); lo != lr {
		t.Fatalf("%d tickets after replay, want %d", lr, lo)
	}
	for m := p.Start; !p.End.Before(m); m = m.Next() {
		for _, nw := range o.Inventory.Networks {
			if got, want := log.HealthCount(nw.Name, m), o.Tickets.HealthCount(nw.Name, m); got != want {
				t.Fatalf("%s %s: health count %d, want %d", nw.Name, m, got, want)
			}
		}
	}
}

func TestHubOrderingAndCancel(t *testing.T) {
	h := NewHub()
	ch1, cancel1 := h.Subscribe(8)
	ch2, cancel2 := h.Subscribe(8)
	defer cancel2()
	if h.Subscribers() != 2 {
		t.Fatalf("subscribers=%d, want 2", h.Subscribers())
	}

	evs := []Event{{Type: "delta", Data: []byte(`1`)}, {Type: "delta", Data: []byte(`2`)}, {Type: "rank", Data: []byte(`3`)}}
	h.Publish(evs...)
	for _, ch := range []<-chan Event{ch1, ch2} {
		for i, want := range evs {
			got := <-ch
			if got.Type != want.Type || string(got.Data) != string(want.Data) {
				t.Fatalf("event %d: got %s %s, want %s %s", i, got.Type, got.Data, want.Type, want.Data)
			}
		}
	}

	cancel1()
	cancel1() // idempotent
	if h.Subscribers() != 1 {
		t.Fatalf("subscribers=%d after cancel, want 1", h.Subscribers())
	}
	if _, ok := <-ch1; ok {
		t.Fatal("canceled channel not closed")
	}
	h.Publish(Event{Type: "delta", Data: []byte(`4`)}) // must not panic or reach ch1
	if got := <-ch2; string(got.Data) != "4" {
		t.Fatalf("live subscriber got %s, want 4", got.Data)
	}
}

func TestHubDropsSlowSubscriber(t *testing.T) {
	h := NewHub()
	ch, cancel := h.Subscribe(1)
	defer cancel()
	h.Publish(Event{Data: []byte(`1`)}, Event{Data: []byte(`2`)}, Event{Data: []byte(`3`)})
	if got := <-ch; string(got.Data) != "1" {
		t.Fatalf("got %s, want the first event", got.Data)
	}
	select {
	case ev := <-ch:
		t.Fatalf("overflow event %s delivered, want dropped", ev.Data)
	default:
	}
}

func TestWatcherScan(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Deliberately created out of lexicographic order; Scan must sort.
	write("2014-08.json", `{"month":"2014-08","snapshots":[],"tickets":[]}`)
	write("2014-07.json", `{"month":"2014-07","snapshots":[],"tickets":[]}`)
	write("notes.txt", `ignored`)
	write("broken.json", `{nope`)

	var got []string
	w := NewWatcher(dir, 0, func(path string, u *Update) error {
		got = append(got, u.Month)
		return nil
	})
	applied, err := w.Scan()
	if err == nil {
		t.Fatal("Scan swallowed the malformed file's error")
	}
	if applied != 2 {
		t.Fatalf("applied=%d, want 2", applied)
	}
	if want := []string{"2014-07", "2014-08"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("apply order %v, want %v", got, want)
	}

	// A second pass applies nothing: clean and broken files alike are
	// seen exactly once.
	applied, err = w.Scan()
	if err != nil || applied != 0 {
		t.Fatalf("second scan: applied=%d err=%v, want 0 nil", applied, err)
	}

	// New files are picked up.
	write("2014-09.json", `{"month":"2014-09","snapshots":[],"tickets":[]}`)
	if applied, err = w.Scan(); err != nil || applied != 1 {
		t.Fatalf("third scan: applied=%d err=%v, want 1 nil", applied, err)
	}
}
