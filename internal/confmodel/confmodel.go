// Package confmodel defines the vendor-neutral device-configuration model
// the reproduction's Batfish-style pipeline is built on (paper §2.2).
//
// Configuration information is arranged as stanzas, each containing a set
// of options and values pertaining to a particular construct — a specific
// interface, VLAN, routing instance, or ACL. A stanza is identified by a
// type and a name. Vendor dialects (internal/ciscoios, internal/junos)
// render a Config to concrete configuration text and parse text back;
// stanza types that serve the same purpose on different vendors (e.g.
// Cisco `ip access-list` vs Juniper `firewall filter`) map to one
// vendor-agnostic Type here.
package confmodel

import (
	"slices"
	"sort"
	"strings"
	"sync/atomic"
)

// Type is a vendor-agnostic stanza type (paper §2.2: "we manually identify
// stanza types on different vendors that serve the same purpose, and we
// convert these to a vendor-agnostic type identifier").
type Type int

// Vendor-agnostic stanza types.
const (
	TypeInterface Type = iota
	TypeVLAN
	TypeACL
	TypeBGP
	TypeOSPF
	TypePool // load-balancer server pool
	TypeUser
	TypeSNMP
	TypeNTP
	TypeLogging
	TypeQoS
	TypeSflow
	TypeSTP
	TypeUDLD
	TypeDHCPRelay
	TypePrefixList
	TypeRouteMap
	TypeOther
	numTypes
)

// NumTypes is the number of distinct vendor-agnostic stanza types.
const NumTypes = int(numTypes)

// String returns the canonical lower-case type identifier.
func (t Type) String() string {
	switch t {
	case TypeInterface:
		return "interface"
	case TypeVLAN:
		return "vlan"
	case TypeACL:
		return "acl"
	case TypeBGP:
		return "bgp"
	case TypeOSPF:
		return "ospf"
	case TypePool:
		return "pool"
	case TypeUser:
		return "user"
	case TypeSNMP:
		return "snmp"
	case TypeNTP:
		return "ntp"
	case TypeLogging:
		return "logging"
	case TypeQoS:
		return "qos"
	case TypeSflow:
		return "sflow"
	case TypeSTP:
		return "stp"
	case TypeUDLD:
		return "udld"
	case TypeDHCPRelay:
		return "dhcp-relay"
	case TypePrefixList:
		return "prefix-list"
	case TypeRouteMap:
		return "route-map"
	default:
		return "other"
	}
}

// TypeFromString is the inverse of Type.String. Unknown identifiers map to
// TypeOther.
func TypeFromString(s string) Type {
	for t := Type(0); t < numTypes; t++ {
		if t.String() == s {
			return t
		}
	}
	return TypeOther
}

// IsRouter reports whether the stanza type configures a routing protocol
// (the paper's "router stanza" change category).
func (t Type) IsRouter() bool { return t == TypeBGP || t == TypeOSPF }

// Stanza is one configuration construct: a type, a name, and a set of
// option key/value pairs. Option keys are semantic (dialect-independent);
// dialects translate them to and from concrete syntax. Examples:
//
//	interface: "description", "address", "access-vlan", "acl-in",
//	           "lag-group", "mtu"
//	vlan:      "vlan-id", "description", "member:<ifname>" (Juniper places
//	           interface membership under the vlan stanza; Cisco places it
//	           under the interface — the paper's cross-vendor typing quirk)
//	acl:       "rule:<seq>" -> "<action> <proto> <src> <dst>"
//	bgp:       "local-as", "neighbor:<ip>" -> remote AS,
//	           "network:<prefix>", "route-map:<name>" -> direction
//	ospf:      "area", "network:<prefix>"
//	pool:      "member:<ip:port>" -> weight, "monitor"
type Stanza struct {
	Type    Type
	Name    string
	Options map[string]string

	// key caches Key(). It is computed once at construction (NewStanza,
	// Scratch.NewStanza) and never written afterwards, so concurrent
	// readers of a shared parsed config are race-free. Type and Name are
	// set at construction and must not be reassigned.
	key string
}

// NewStanza returns an empty stanza of the given type and name.
func NewStanza(t Type, name string) *Stanza {
	return &Stanza{Type: t, Name: name, Options: map[string]string{},
		key: t.String() + " " + name}
}

// Key returns the stanza identity used for diffing: type plus name. The
// key is cached at construction; zero-value literals fall back to
// computing it on every call without caching (writing the cache lazily
// would race on configs shared across workers).
func (s *Stanza) Key() string {
	if s.key != "" {
		return s.key
	}
	return s.Type.String() + " " + s.Name
}

// Set sets an option and returns the stanza for chaining.
func (s *Stanza) Set(key, value string) *Stanza {
	if s.Options == nil {
		s.Options = map[string]string{}
	}
	s.Options[key] = value
	return s
}

// Get returns the option value, or "".
func (s *Stanza) Get(key string) string { return s.Options[key] }

// Delete removes an option.
func (s *Stanza) Delete(key string) { delete(s.Options, key) }

// Clone returns a deep copy of the stanza.
func (s *Stanza) Clone() *Stanza {
	c := &Stanza{Type: s.Type, Name: s.Name, key: s.Key(),
		Options: make(map[string]string, len(s.Options))}
	for k, v := range s.Options {
		c.Options[k] = v
	}
	return c
}

// Equal reports whether two stanzas have identical identity and options.
func (s *Stanza) Equal(o *Stanza) bool {
	if s.Type != o.Type || s.Name != o.Name || len(s.Options) != len(o.Options) {
		return false
	}
	for k, v := range s.Options {
		if ov, ok := o.Options[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// SortedOptionKeys returns the stanza's option keys in sorted order, for
// deterministic rendering.
func (s *Stanza) SortedOptionKeys() []string {
	keys := make([]string, 0, len(s.Options))
	for k := range s.Options {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// OptionsWithPrefix returns the option keys sharing the given prefix (e.g.
// "neighbor:"), sorted, with the prefix stripped, mapped to their values.
func (s *Stanza) OptionsWithPrefix(prefix string) map[string]string {
	out := map[string]string{}
	for k, v := range s.Options {
		if strings.HasPrefix(k, prefix) {
			out[strings.TrimPrefix(k, prefix)] = v
		}
	}
	return out
}

// Config is a device's configuration state: an unordered set of stanzas
// keyed by identity, plus the device hostname.
type Config struct {
	Hostname string
	stanzas  map[string]*Stanza

	// sorted caches the key-sorted stanza view handed out by Stanzas and
	// OfType; it is invalidated (set to nil) by Upsert and Remove. The
	// pointer is atomic because parsed configs are shared read-only
	// across inference workers via the content-addressed cache: two
	// workers may rebuild the view concurrently, and both builds are
	// identical, so racing Stores are benign.
	sorted atomic.Pointer[[]*Stanza]
}

// NewConfig returns an empty configuration for the given hostname.
func NewConfig(hostname string) *Config {
	return &Config{Hostname: hostname, stanzas: map[string]*Stanza{}}
}

// Upsert inserts or replaces a stanza.
func (c *Config) Upsert(s *Stanza) {
	c.stanzas[s.Key()] = s
	c.sorted.Store(nil)
}

// Get returns the stanza with the given type and name, or nil.
func (c *Config) Get(t Type, name string) *Stanza {
	return c.stanzas[t.String()+" "+name]
}

// Remove deletes the stanza with the given type and name; it reports
// whether a stanza was removed.
func (c *Config) Remove(t Type, name string) bool {
	key := t.String() + " " + name
	if _, ok := c.stanzas[key]; !ok {
		return false
	}
	delete(c.stanzas, key)
	c.sorted.Store(nil)
	return true
}

// Len returns the number of stanzas.
func (c *Config) Len() int { return len(c.stanzas) }

// Stanzas returns all stanzas in deterministic (key-sorted) order. The
// returned slice is a shared cached view: callers must not modify it.
func (c *Config) Stanzas() []*Stanza {
	if p := c.sorted.Load(); p != nil {
		return *p
	}
	out := make([]*Stanza, 0, len(c.stanzas))
	for _, s := range c.stanzas {
		out = append(out, s)
	}
	slices.SortFunc(out, func(a, b *Stanza) int { return strings.Compare(a.Key(), b.Key()) })
	c.sorted.Store(&out)
	return out
}

// OfType returns all stanzas of the given type in deterministic order.
// The result is a sub-slice of the cached sorted view (stanzas of one
// type are contiguous there, because every key starts with the type
// identifier and a space, which sorts before any identifier character):
// callers must not modify it.
func (c *Config) OfType(t Type) []*Stanza {
	all := c.Stanzas()
	lo := 0
	for lo < len(all) && all[lo].Type != t {
		lo++
	}
	hi := lo
	for hi < len(all) && all[hi].Type == t {
		hi++
	}
	return all[lo:hi:hi]
}

// Clone returns a deep copy of the configuration.
func (c *Config) Clone() *Config {
	out := &Config{Hostname: c.Hostname, stanzas: make(map[string]*Stanza, len(c.stanzas))}
	for _, s := range c.stanzas {
		out.Upsert(s.Clone())
	}
	return out
}

// Equal reports whether two configurations contain identical stanzas.
func (c *Config) Equal(o *Config) bool {
	if c.Hostname != o.Hostname || len(c.stanzas) != len(o.stanzas) {
		return false
	}
	for k, s := range c.stanzas {
		os, ok := o.stanzas[k]
		if !ok || !s.Equal(os) {
			return false
		}
	}
	return true
}

// Fingerprint returns a cheap deterministic digest of the configuration,
// used by the NMS to detect whether a snapshot differs from its
// predecessor without storing full diffs. The digest is the FNV-1a hash
// of the byte stream `key{k=v;...}` per sorted stanza (option keys
// sorted), hashed incrementally so no intermediate string is built.
func (c *Config) Fingerprint() string {
	const offset = 14695981039346656037
	var h uint64 = offset
	var keys []string // one buffer reused across stanzas
	for _, s := range c.Stanzas() {
		h = fnvString(h, s.Key())
		h = fnvByte(h, '{')
		keys = keys[:0]
		for k := range s.Options {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		for _, k := range keys {
			h = fnvString(h, k)
			h = fnvByte(h, '=')
			h = fnvString(h, s.Options[k])
			h = fnvByte(h, ';')
		}
		h = fnvByte(h, '}')
	}
	return hex16(h)
}

// fnvString folds s into a running FNV-1a 64-bit hash.
func fnvString(h uint64, s string) uint64 {
	const prime = 1099511628211
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// fnvByte folds one byte into a running FNV-1a 64-bit hash.
func fnvByte(h uint64, b byte) uint64 {
	const prime = 1099511628211
	h ^= uint64(b)
	h *= prime
	return h
}

// fnv64 returns the FNV-1a 64-bit hash of s as a hex string.
func fnv64(s string) string {
	const offset = 14695981039346656037
	return hex16(fnvString(offset, s))
}

// hex16 formats h as 16 lower-case hex digits (fmt.Sprintf("%016x", h)
// without the fmt machinery).
func hex16(h uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[h&0xf]
		h >>= 4
	}
	return string(b[:])
}
