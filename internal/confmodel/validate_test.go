package confmodel

import (
	"strings"
	"testing"
)

func TestValidateCleanConfig(t *testing.T) {
	if issues := Validate(sampleConfig()); len(issues) != 0 {
		t.Errorf("clean config has issues: %v", issues)
	}
}

func TestValidateDanglingACL(t *testing.T) {
	c := sampleConfig()
	c.Remove(TypeACL, "ACL-WEB")
	issues := Validate(c)
	if len(issues) != 1 {
		t.Fatalf("issues = %v", issues)
	}
	if issues[0].Option != "acl-in" || !strings.Contains(issues[0].Target, "ACL-WEB") {
		t.Errorf("issue = %+v", issues[0])
	}
	if !strings.Contains(issues[0].String(), "missing acl") {
		t.Errorf("String = %q", issues[0].String())
	}
}

func TestValidateDanglingVLAN(t *testing.T) {
	c := sampleConfig()
	c.Remove(TypeVLAN, "100")
	issues := Validate(c)
	if len(issues) != 1 || issues[0].Option != "access-vlan" {
		t.Errorf("issues = %v", issues)
	}
}

func TestValidateJuniperMembership(t *testing.T) {
	c := NewConfig("j")
	c.Upsert(NewStanza(TypeVLAN, "web").Set("vlan-id", "100").Set("member:xe-0/0/9", "true"))
	issues := Validate(c)
	if len(issues) != 1 || !strings.Contains(issues[0].Target, "xe-0/0/9") {
		t.Errorf("issues = %v", issues)
	}
	c.Upsert(NewStanza(TypeInterface, "xe-0/0/9"))
	if issues := Validate(c); len(issues) != 0 {
		t.Errorf("resolved membership still flagged: %v", issues)
	}
}

func TestValidateBGPPolicyRefs(t *testing.T) {
	c := NewConfig("r")
	c.Upsert(NewStanza(TypeBGP, "65001").
		Set("route-map:RM-X", "static").
		Set("prefix-list:PL-X", "in").
		Set("neighbor-rm:10.0.0.1", "RM-Y"))
	issues := Validate(c)
	if len(issues) != 3 {
		t.Fatalf("issues = %v", issues)
	}
	c.Upsert(NewStanza(TypeRouteMap, "RM-X"))
	c.Upsert(NewStanza(TypeRouteMap, "RM-Y"))
	c.Upsert(NewStanza(TypePrefixList, "PL-X"))
	if issues := Validate(c); len(issues) != 0 {
		t.Errorf("resolved refs still flagged: %v", issues)
	}
}

func TestValidateRouteMapMatch(t *testing.T) {
	c := NewConfig("r")
	c.Upsert(NewStanza(TypeRouteMap, "RM").Set("entry:10", "permit match:PL-GONE"))
	issues := Validate(c)
	if len(issues) != 1 || !strings.Contains(issues[0].Target, "PL-GONE") {
		t.Errorf("issues = %v", issues)
	}
}

func TestValidateDHCPRelayVLAN(t *testing.T) {
	c := NewConfig("s")
	c.Upsert(NewStanza(TypeDHCPRelay, "VLAN42").Set("vlan", "42"))
	if issues := Validate(c); len(issues) != 1 {
		t.Errorf("issues = %v", issues)
	}
	c.Upsert(NewStanza(TypeVLAN, "42").Set("vlan-id", "42"))
	if issues := Validate(c); len(issues) != 0 {
		t.Errorf("resolved relay still flagged: %v", issues)
	}
}

func TestValidateDeterministicOrder(t *testing.T) {
	c := NewConfig("d")
	s := NewStanza(TypeInterface, "e0")
	s.Set("acl-in", "A").Set("acl-out", "B").Set("access-vlan", "9")
	c.Upsert(s)
	a := Validate(c)
	b := Validate(c)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("validation order not deterministic")
		}
	}
	if len(a) != 3 {
		t.Fatalf("issues = %v", a)
	}
}

func TestMatchTarget(t *testing.T) {
	if name, ok := matchTarget("permit match:PL-1"); !ok || name != "PL-1" {
		t.Errorf("matchTarget = %q %v", name, ok)
	}
	if name, ok := matchTarget("permit match:PL-2 extra"); !ok || name != "PL-2" {
		t.Errorf("matchTarget with suffix = %q %v", name, ok)
	}
	if _, ok := matchTarget("permit any"); ok {
		t.Error("matchTarget matched without marker")
	}
	if _, ok := matchTarget("permit match:"); ok {
		t.Error("matchTarget matched empty name")
	}
}

func TestGeneratedConfigsValidate(t *testing.T) {
	// The synthetic generator must produce internally consistent configs
	// (no dangling references) — checked indirectly through the sample
	// configs of this package; full-archive validation lives in the osp
	// tests.
	c := sampleConfig()
	if issues := Validate(c); len(issues) != 0 {
		t.Errorf("sample config invalid: %v", issues)
	}
}
