package confmodel

import (
	"testing"
)

func sampleConfig() *Config {
	c := NewConfig("dev1")
	c.Upsert(NewStanza(TypeVLAN, "100").Set("vlan-id", "100").Set("description", "web"))
	c.Upsert(NewStanza(TypeACL, "ACL-WEB").Set("rule:10", "permit tcp any any eq 443"))
	c.Upsert(NewStanza(TypeInterface, "eth0").
		Set("access-vlan", "100").Set("acl-in", "ACL-WEB").Set("address", "10.0.0.1/24"))
	return c
}

func TestTypeStringRoundTrip(t *testing.T) {
	for ty := Type(0); ty < Type(NumTypes); ty++ {
		if ty == TypeOther {
			continue
		}
		if got := TypeFromString(ty.String()); got != ty {
			t.Errorf("TypeFromString(%q) = %v, want %v", ty.String(), got, ty)
		}
	}
	if got := TypeFromString("no-such-type"); got != TypeOther {
		t.Errorf("unknown type maps to %v, want other", got)
	}
}

func TestTypeIsRouter(t *testing.T) {
	if !TypeBGP.IsRouter() || !TypeOSPF.IsRouter() {
		t.Error("bgp/ospf should be router types")
	}
	if TypeInterface.IsRouter() || TypeACL.IsRouter() {
		t.Error("interface/acl should not be router types")
	}
}

func TestStanzaSetGetDelete(t *testing.T) {
	s := NewStanza(TypeInterface, "eth0")
	s.Set("mtu", "9000")
	if got := s.Get("mtu"); got != "9000" {
		t.Errorf("Get = %q", got)
	}
	s.Delete("mtu")
	if got := s.Get("mtu"); got != "" {
		t.Errorf("after Delete, Get = %q", got)
	}
}

func TestStanzaSetOnNilOptions(t *testing.T) {
	s := &Stanza{Type: TypeVLAN, Name: "5"}
	s.Set("vlan-id", "5")
	if s.Get("vlan-id") != "5" {
		t.Error("Set on zero-value stanza failed")
	}
}

func TestStanzaCloneIsDeep(t *testing.T) {
	s := NewStanza(TypeACL, "A").Set("rule:10", "permit ip any any")
	c := s.Clone()
	c.Set("rule:10", "deny ip any any")
	if s.Get("rule:10") != "permit ip any any" {
		t.Error("Clone shares option map")
	}
	if !s.Equal(s.Clone()) {
		t.Error("clone not equal to original")
	}
}

func TestStanzaEqual(t *testing.T) {
	a := NewStanza(TypeVLAN, "1").Set("vlan-id", "1")
	b := NewStanza(TypeVLAN, "1").Set("vlan-id", "1")
	if !a.Equal(b) {
		t.Error("identical stanzas not equal")
	}
	b.Set("vlan-id", "2")
	if a.Equal(b) {
		t.Error("different option values equal")
	}
	c := NewStanza(TypeVLAN, "2").Set("vlan-id", "1")
	if a.Equal(c) {
		t.Error("different names equal")
	}
	d := NewStanza(TypeInterface, "1").Set("vlan-id", "1")
	if a.Equal(d) {
		t.Error("different types equal")
	}
	e := NewStanza(TypeVLAN, "1").Set("vlan-id", "1").Set("x", "y")
	if a.Equal(e) {
		t.Error("extra option equal")
	}
}

func TestOptionsWithPrefix(t *testing.T) {
	s := NewStanza(TypeBGP, "65001").
		Set("neighbor:10.0.0.1", "65002").
		Set("neighbor:10.0.0.2", "65003").
		Set("local-as", "65001")
	m := s.OptionsWithPrefix("neighbor:")
	if len(m) != 2 || m["10.0.0.1"] != "65002" || m["10.0.0.2"] != "65003" {
		t.Errorf("OptionsWithPrefix = %v", m)
	}
}

func TestConfigUpsertGetRemove(t *testing.T) {
	c := sampleConfig()
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.Get(TypeVLAN, "100"); got == nil || got.Get("description") != "web" {
		t.Errorf("Get vlan = %+v", got)
	}
	if c.Get(TypeVLAN, "999") != nil {
		t.Error("Get of missing stanza should be nil")
	}
	if !c.Remove(TypeVLAN, "100") {
		t.Error("Remove existing returned false")
	}
	if c.Remove(TypeVLAN, "100") {
		t.Error("Remove missing returned true")
	}
	if c.Len() != 2 {
		t.Errorf("Len after remove = %d", c.Len())
	}
}

func TestConfigStanzasDeterministicOrder(t *testing.T) {
	c := sampleConfig()
	first := c.Stanzas()
	second := c.Stanzas()
	for i := range first {
		if first[i].Key() != second[i].Key() {
			t.Fatal("Stanzas order not deterministic")
		}
	}
}

func TestConfigOfType(t *testing.T) {
	c := sampleConfig()
	ifaces := c.OfType(TypeInterface)
	if len(ifaces) != 1 || ifaces[0].Name != "eth0" {
		t.Errorf("OfType(interface) = %v", ifaces)
	}
	if got := c.OfType(TypeBGP); len(got) != 0 {
		t.Errorf("OfType(bgp) = %v", got)
	}
}

func TestConfigCloneEqual(t *testing.T) {
	c := sampleConfig()
	clone := c.Clone()
	if !c.Equal(clone) {
		t.Fatal("clone not equal")
	}
	clone.Get(TypeInterface, "eth0").Set("mtu", "1500")
	if c.Equal(clone) {
		t.Error("mutating clone affected equality — shallow copy?")
	}
	if c.Get(TypeInterface, "eth0").Get("mtu") != "" {
		t.Error("clone shares stanza storage")
	}
}

func TestConfigFingerprint(t *testing.T) {
	a, b := sampleConfig(), sampleConfig()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal configs have different fingerprints")
	}
	b.Get(TypeVLAN, "100").Set("description", "db")
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("differing configs share a fingerprint")
	}
}

func TestIntraDeviceRefs(t *testing.T) {
	c := sampleConfig()
	// interface references ACL-WEB and vlan 100: 2 intra refs.
	if got := IntraDeviceRefs(c); got != 2 {
		t.Errorf("IntraDeviceRefs = %d, want 2", got)
	}
	// Dangling reference does not count.
	c.Get(TypeInterface, "eth0").Set("acl-in", "NO-SUCH-ACL")
	if got := IntraDeviceRefs(c); got != 1 {
		t.Errorf("IntraDeviceRefs with dangling acl = %d, want 1", got)
	}
}

func TestIntraDeviceRefsRouteMapAndPrefixList(t *testing.T) {
	c := NewConfig("r1")
	c.Upsert(NewStanza(TypePrefixList, "PL1").Set("rule:10", "permit 10.0.0.0/8"))
	c.Upsert(NewStanza(TypeRouteMap, "RM1").Set("entry:10", "permit match:PL1"))
	c.Upsert(NewStanza(TypeBGP, "65001").
		Set("route-map:RM1", "static").Set("prefix-list:PL1", "in"))
	// bgp->RM1, bgp->PL1, RM1->PL1: 3 refs.
	if got := IntraDeviceRefs(c); got != 3 {
		t.Errorf("IntraDeviceRefs = %d, want 3", got)
	}
}

func TestIntraDeviceRefsJuniperMembership(t *testing.T) {
	c := NewConfig("j1")
	c.Upsert(NewStanza(TypeInterface, "xe-0/0/1"))
	c.Upsert(NewStanza(TypeVLAN, "web").Set("vlan-id", "100").Set("member:xe-0/0/1", "true"))
	if got := IntraDeviceRefs(c); got != 1 {
		t.Errorf("IntraDeviceRefs = %d, want 1", got)
	}
}

func TestInterDeviceRefsBGP(t *testing.T) {
	a := NewConfig("a")
	a.Upsert(NewStanza(TypeBGP, "65001").Set("neighbor:10.0.0.2", "65002"))
	b := NewConfig("b")
	b.Upsert(NewStanza(TypeBGP, "65002").Set("neighbor:10.0.0.1", "65001"))
	owner := map[string]string{"10.0.0.1": "a", "10.0.0.2": "b"}
	peers := []*Config{a, b}
	if got := InterDeviceRefs(a, peers, owner); got != 1 {
		t.Errorf("InterDeviceRefs(a) = %d, want 1", got)
	}
	if got := InterDeviceRefs(b, peers, owner); got != 1 {
		t.Errorf("InterDeviceRefs(b) = %d, want 1", got)
	}
}

func TestInterDeviceRefsSelfNeighborIgnored(t *testing.T) {
	a := NewConfig("a")
	a.Upsert(NewStanza(TypeBGP, "65001").Set("neighbor:10.0.0.1", "65001"))
	owner := map[string]string{"10.0.0.1": "a"}
	if got := InterDeviceRefs(a, []*Config{a}, owner); got != 0 {
		t.Errorf("self-reference counted: %d", got)
	}
}

func TestInterDeviceRefsSharedVLAN(t *testing.T) {
	a := NewConfig("a")
	a.Upsert(NewStanza(TypeVLAN, "100").Set("vlan-id", "100"))
	b := NewConfig("b")
	b.Upsert(NewStanza(TypeVLAN, "web").Set("vlan-id", "100"))
	c := NewConfig("c")
	c.Upsert(NewStanza(TypeVLAN, "200").Set("vlan-id", "200"))
	peers := []*Config{a, b, c}
	if got := InterDeviceRefs(a, peers, nil); got != 1 {
		t.Errorf("a shares vlan with b only: got %d", got)
	}
	if got := InterDeviceRefs(c, peers, nil); got != 0 {
		t.Errorf("c shares nothing: got %d", got)
	}
}

func TestInterDeviceRefsSharedOSPFArea(t *testing.T) {
	a := NewConfig("a")
	a.Upsert(NewStanza(TypeOSPF, "1").Set("area", "0"))
	b := NewConfig("b")
	b.Upsert(NewStanza(TypeOSPF, "1").Set("area", "0"))
	c := NewConfig("c")
	c.Upsert(NewStanza(TypeOSPF, "1").Set("area", "7"))
	peers := []*Config{a, b, c}
	if got := InterDeviceRefs(a, peers, nil); got != 1 {
		t.Errorf("a shares area 0 with b only: got %d", got)
	}
}

func TestNetworkInterRefsMatchesPerDevice(t *testing.T) {
	// The linear-time network-level computation must agree with the
	// per-device reference counter on a well-formed network.
	a := NewConfig("a")
	a.Upsert(NewStanza(TypeBGP, "65001").Set("neighbor:10.0.0.2", "65001"))
	a.Upsert(NewStanza(TypeVLAN, "100").Set("vlan-id", "100"))
	a.Upsert(NewStanza(TypeOSPF, "1").Set("area", "0"))
	b := NewConfig("b")
	b.Upsert(NewStanza(TypeBGP, "65001").Set("neighbor:10.0.0.1", "65001"))
	b.Upsert(NewStanza(TypeVLAN, "v100").Set("vlan-id", "100"))
	b.Upsert(NewStanza(TypeOSPF, "1").Set("area", "0"))
	c := NewConfig("c")
	c.Upsert(NewStanza(TypeVLAN, "200").Set("vlan-id", "200"))
	peers := []*Config{a, b, c}
	owner := map[string]string{"10.0.0.1": "a", "10.0.0.2": "b", "10.0.0.3": "c"}

	bulk := NetworkInterRefs(peers, owner)
	for _, cfg := range peers {
		want := InterDeviceRefs(cfg, peers, owner)
		if got := bulk[cfg.Hostname]; got != want {
			t.Errorf("%s: network-level %d != per-device %d", cfg.Hostname, got, want)
		}
	}
}

func TestNetworkInterRefsEmpty(t *testing.T) {
	if got := NetworkInterRefs(nil, nil); len(got) != 0 {
		t.Errorf("empty network refs = %v", got)
	}
	lone := NewConfig("solo")
	lone.Upsert(NewStanza(TypeVLAN, "1").Set("vlan-id", "1"))
	refs := NetworkInterRefs([]*Config{lone}, nil)
	if refs["solo"] != 0 {
		t.Errorf("lone device refs = %d", refs["solo"])
	}
}

func TestNetworkInterRefsExternalNeighborIgnored(t *testing.T) {
	a := NewConfig("a")
	a.Upsert(NewStanza(TypeBGP, "65001").Set("neighbor:192.0.2.1", "64999"))
	refs := NetworkInterRefs([]*Config{a}, map[string]string{"10.0.0.1": "a"})
	if refs["a"] != 0 {
		t.Errorf("external neighbor counted: %d", refs["a"])
	}
}
