package confmodel

import "strings"

// Reference counting follows Benson et al.'s configuration-complexity
// metrics (paper §2.2, D6): intra-device references are options in one
// stanza that name another stanza on the same device; inter-device
// references are options on one device that resolve to constructs on
// another device in the same network (BGP neighbor statements pointing at
// peers, VLANs spanning devices, OSPF areas shared across devices).

// IntraDeviceRefs counts configuration references within a single device:
// an option in stanza A naming stanza B counts as one reference when B
// exists in the same configuration.
func IntraDeviceRefs(c *Config) int {
	refs := 0
	for _, s := range c.Stanzas() {
		switch s.Type {
		case TypeInterface:
			if acl := s.Get("acl-in"); acl != "" && c.Get(TypeACL, acl) != nil {
				refs++
			}
			if acl := s.Get("acl-out"); acl != "" && c.Get(TypeACL, acl) != nil {
				refs++
			}
			if vlan := s.Get("access-vlan"); vlan != "" && c.Get(TypeVLAN, vlan) != nil {
				refs++
			}
			if qos := s.Get("service-policy"); qos != "" && c.Get(TypeQoS, qos) != nil {
				refs++
			}
		case TypeVLAN:
			// Juniper-style membership: vlan stanza references interfaces.
			for ifname := range s.OptionsWithPrefix("member:") {
				if c.Get(TypeInterface, ifname) != nil {
					refs++
				}
			}
		case TypeBGP:
			for name := range s.OptionsWithPrefix("route-map:") {
				if c.Get(TypeRouteMap, name) != nil {
					refs++
				}
			}
			for name := range s.OptionsWithPrefix("prefix-list:") {
				if c.Get(TypePrefixList, name) != nil {
					refs++
				}
			}
		case TypeRouteMap:
			for _, v := range s.OptionsWithPrefix("entry:") {
				// Entries may match prefix lists: "permit match:<pl>".
				if idx := strings.Index(v, "match:"); idx >= 0 {
					pl := strings.Fields(v[idx+len("match:"):])
					if len(pl) > 0 && c.Get(TypePrefixList, pl[0]) != nil {
						refs++
					}
				}
			}
		case TypeDHCPRelay:
			// Relay agents are bound to VLANs: "vlan" option.
			if vlan := s.Get("vlan"); vlan != "" && c.Get(TypeVLAN, vlan) != nil {
				refs++
			}
		}
	}
	return refs
}

// InterDeviceRefs counts references from one device's configuration to
// constructs on other devices of the same network. mgmtIPOwner maps a
// management IP to the owning hostname. Counted references:
//
//   - a BGP neighbor statement whose IP is another device's management IP;
//   - a VLAN configured on this device that is also configured on another
//     device (one reference per remote device sharing the VLAN);
//   - an OSPF process sharing an area with a process on another device
//     (one reference per remote device in the same area).
func InterDeviceRefs(c *Config, peers []*Config, mgmtIPOwner map[string]string) int {
	refs := 0
	// BGP neighbors pointing at peer devices.
	for _, s := range c.OfType(TypeBGP) {
		for ip := range s.OptionsWithPrefix("neighbor:") {
			if owner, ok := mgmtIPOwner[ip]; ok && owner != c.Hostname {
				refs++
			}
		}
	}
	// VLANs shared with peers.
	for _, s := range c.OfType(TypeVLAN) {
		id := s.Get("vlan-id")
		if id == "" {
			id = s.Name
		}
		for _, p := range peers {
			if p.Hostname == c.Hostname {
				continue
			}
			if hasVLANID(p, id) {
				refs++
			}
		}
	}
	// OSPF areas shared with peers.
	for _, s := range c.OfType(TypeOSPF) {
		area := s.Get("area")
		if area == "" {
			continue
		}
		for _, p := range peers {
			if p.Hostname == c.Hostname {
				continue
			}
			if hasOSPFArea(p, area) {
				refs++
			}
		}
	}
	return refs
}

// hasVLANID reports whether the configuration has a VLAN stanza with the
// given VLAN id (matching either the stanza name or the vlan-id option).
func hasVLANID(c *Config, id string) bool {
	for _, s := range c.OfType(TypeVLAN) {
		if s.Name == id || s.Get("vlan-id") == id {
			return true
		}
	}
	return false
}

// hasOSPFArea reports whether the configuration has an OSPF process in the
// given area.
func hasOSPFArea(c *Config, area string) bool {
	for _, s := range c.OfType(TypeOSPF) {
		if s.Get("area") == area {
			return true
		}
	}
	return false
}

// Dialect renders configurations to vendor text and parses them back. The
// two implementations live in internal/ciscoios and internal/junos.
type Dialect interface {
	// Name returns the dialect name ("cisco-ios", "junos").
	Name() string
	// Render serializes a configuration to vendor configuration text.
	// Rendering is deterministic: equal configs render identically.
	Render(c *Config) string
	// Parse recovers a configuration from vendor text produced by Render.
	// Vendor-specific stanza types are mapped to vendor-agnostic Types.
	Parse(text string) (*Config, error)
}
