package confmodel

import (
	"fmt"
	"sort"
)

// Issue is one static-analysis finding in a device configuration: a
// reference from one stanza to a construct that does not exist. Dangling
// references are the classic misconfiguration class Batfish-style tools
// detect; MPA's reference-complexity metrics (D6) count the same edges
// this validator checks.
type Issue struct {
	// Stanza identifies the referring stanza.
	Stanza string
	// Option is the option holding the dangling reference.
	Option string
	// Target describes the missing construct.
	Target string
}

// String formats the issue.
func (i Issue) String() string {
	return fmt.Sprintf("%s: option %q references missing %s", i.Stanza, i.Option, i.Target)
}

// Validate statically checks a configuration for dangling intra-device
// references: interfaces referring to absent ACLs, VLANs, or QoS policies;
// VLAN stanzas enrolling absent interfaces; BGP referring to absent
// route-maps or prefix-lists; route-map entries matching absent prefix
// lists; DHCP relays bound to absent VLANs. Findings are returned in
// deterministic order.
func Validate(c *Config) []Issue {
	var issues []Issue
	add := func(s *Stanza, option, kind, name string) {
		issues = append(issues, Issue{
			Stanza: s.Key(),
			Option: option,
			Target: kind + " " + name,
		})
	}
	for _, s := range c.Stanzas() {
		switch s.Type {
		case TypeInterface:
			for _, opt := range []string{"acl-in", "acl-out"} {
				if name := s.Get(opt); name != "" && c.Get(TypeACL, name) == nil {
					add(s, opt, "acl", name)
				}
			}
			if id := s.Get("access-vlan"); id != "" && !hasVLANID(c, id) {
				add(s, "access-vlan", "vlan", id)
			}
			if name := s.Get("service-policy"); name != "" && c.Get(TypeQoS, name) == nil {
				add(s, "service-policy", "qos", name)
			}
		case TypeVLAN:
			for ifname := range s.OptionsWithPrefix("member:") {
				if c.Get(TypeInterface, ifname) == nil {
					add(s, "member:"+ifname, "interface", ifname)
				}
			}
		case TypeBGP:
			for name := range s.OptionsWithPrefix("route-map:") {
				if c.Get(TypeRouteMap, name) == nil {
					add(s, "route-map:"+name, "route-map", name)
				}
			}
			for name := range s.OptionsWithPrefix("prefix-list:") {
				if c.Get(TypePrefixList, name) == nil {
					add(s, "prefix-list:"+name, "prefix-list", name)
				}
			}
			for ip, rm := range s.OptionsWithPrefix("neighbor-rm:") {
				if c.Get(TypeRouteMap, rm) == nil {
					add(s, "neighbor-rm:"+ip, "route-map", rm)
				}
			}
		case TypeRouteMap:
			for seq, v := range s.OptionsWithPrefix("entry:") {
				if pl, ok := matchTarget(v); ok && c.Get(TypePrefixList, pl) == nil {
					add(s, "entry:"+seq, "prefix-list", pl)
				}
			}
		case TypeDHCPRelay:
			if id := s.Get("vlan"); id != "" && !hasVLANID(c, id) {
				add(s, "vlan", "vlan", id)
			}
		}
	}
	sort.Slice(issues, func(a, b int) bool {
		if issues[a].Stanza != issues[b].Stanza {
			return issues[a].Stanza < issues[b].Stanza
		}
		return issues[a].Option < issues[b].Option
	})
	return issues
}

// matchTarget extracts the prefix-list name from a route-map entry value
// of the form "... match:<name> ...".
func matchTarget(v string) (string, bool) {
	const marker = "match:"
	for i := 0; i+len(marker) <= len(v); i++ {
		if v[i:i+len(marker)] == marker {
			rest := v[i+len(marker):]
			end := 0
			for end < len(rest) && rest[end] != ' ' {
				end++
			}
			if end > 0 {
				return rest[:end], true
			}
		}
	}
	return "", false
}
