package confmodel

// NetworkInterRefs computes inter-device reference counts for every device
// of a network at once. It is semantically identical to calling
// InterDeviceRefs per device but runs in time linear in the total number
// of stanzas (via inverted indexes) instead of quadratic in devices —
// required for the OSP's largest networks (hundreds of devices, hundreds
// of VLANs).
func NetworkInterRefs(configs []*Config, mgmtIPOwner map[string]string) map[string]int {
	refs := make(map[string]int, len(configs))

	// Inverted indexes: how many devices carry each VLAN id / OSPF area.
	vlanCount := map[string]int{}
	areaCount := map[string]int{}
	// Per-device distinct keys (a device may declare an area twice).
	type devKeys struct {
		vlans map[string]bool
		areas map[string]bool
	}
	keys := make([]devKeys, len(configs))
	for i, c := range configs {
		dk := devKeys{vlans: map[string]bool{}, areas: map[string]bool{}}
		for _, s := range c.OfType(TypeVLAN) {
			id := s.Get("vlan-id")
			if id == "" {
				id = s.Name
			}
			dk.vlans[id] = true
		}
		for _, s := range c.OfType(TypeOSPF) {
			if area := s.Get("area"); area != "" {
				dk.areas[area] = true
			}
		}
		keys[i] = dk
		for v := range dk.vlans {
			vlanCount[v]++
		}
		for a := range dk.areas {
			areaCount[a]++
		}
	}

	for i, c := range configs {
		n := 0
		// BGP neighbors resolving to peer devices.
		for _, s := range c.OfType(TypeBGP) {
			for ip := range s.OptionsWithPrefix("neighbor:") {
				if owner, ok := mgmtIPOwner[ip]; ok && owner != c.Hostname {
					n++
				}
			}
		}
		// Each VLAN stanza of this device counts one reference per VLAN
		// stanza on a remote device with the same id. InterDeviceRefs
		// counts per-remote-device, which equals (carriers - 1) when ids
		// are unique per device.
		for v := range keys[i].vlans {
			n += vlanCount[v] - 1
		}
		for a := range keys[i].areas {
			n += areaCount[a] - 1
		}
		refs[c.Hostname] = n
	}
	return refs
}
