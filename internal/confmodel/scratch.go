package confmodel

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// ScratchParser is implemented by dialects whose parser can reuse a
// caller-provided Scratch across snapshots (both built-in dialects do).
// ParseScratch must be equivalent to Parse for every input.
type ScratchParser interface {
	ParseScratch(text string, sc *Scratch) (*Config, error)
}

// Scratch holds the reusable per-worker buffers behind the zero-copy
// parse→model→diff hot path: a field-splitting buffer that replaces the
// per-line []string strings.Fields allocates, a byte buffer for building
// lookup keys and joined values without intermediate strings, and an
// interned-string table that dedupes the keywords, stanza keys, and
// option keys that repeat across every snapshot of a device history.
//
// Ownership and retention rules (see DESIGN.md "hot path memory model"):
//
//   - A Scratch is owned by exactly one goroutine at a time. The
//     inference engine gives each worker its own via par.MapLocal.
//   - Strings obtained from Intern*, and every string stored into a
//     parsed Config, are immutable and safe to retain indefinitely —
//     they alias either the (immutable) input text or the interner
//     table, never a mutable buffer.
//   - The []string returned by Fields and the []byte from the join
//     helpers are valid only until the next Scratch call; Reset (or any
//     further use) invalidates them. Never store them in a Config.
type Scratch struct {
	fields   []string
	buf      []byte
	interned map[string]string

	// Sizing hints recorded by FinishConfig: successive snapshots of one
	// device are nearly identical, so the previous parse's stanza count
	// and per-stanza option counts pre-size the next parse's maps exactly,
	// avoiding incremental map growth (which allocates ~2x the final
	// bucket space). Hints only size maps — they never change contents.
	cfgHint int
	optHint map[string]int
}

// NewScratch returns an empty scratch ready for use.
func NewScratch() *Scratch {
	return &Scratch{interned: map[string]string{}, optHint: map[string]int{}}
}

// Reset invalidates the transient buffers (fields, join bytes) while
// keeping their capacity and the interner table. Call it between
// independent uses; retained parsed strings stay valid (they never alias
// the transient buffers).
func (sc *Scratch) Reset() {
	sc.fields = sc.fields[:0]
	sc.buf = sc.buf[:0]
}

// asciiSpace mirrors the ASCII fast path of strings.Fields.
var asciiSpace = [256]uint8{'\t': 1, '\n': 1, '\v': 1, '\f': 1, '\r': 1, ' ': 1}

// Fields splits s around runs of white space exactly like strings.Fields,
// but into a reused buffer: the returned slice and its backing array are
// valid only until the next call. The elements are substrings of s and
// safe to retain.
func (sc *Scratch) Fields(s string) []string {
	sc.fields = sc.fields[:0]
	i := 0
	for i < len(s) {
		c := s[i]
		if c >= utf8.RuneSelf {
			return sc.fieldsUnicode(s)
		}
		if asciiSpace[c] == 1 {
			i++
			continue
		}
		start := i
		for i < len(s) {
			c = s[i]
			if c >= utf8.RuneSelf {
				return sc.fieldsUnicode(s)
			}
			if asciiSpace[c] == 1 {
				break
			}
			i++
		}
		sc.fields = append(sc.fields, s[start:i])
	}
	return sc.fields
}

// fieldsUnicode is the full-Unicode fallback, matching strings.Fields on
// inputs containing non-ASCII space (or any non-ASCII) characters.
func (sc *Scratch) fieldsUnicode(s string) []string {
	sc.fields = sc.fields[:0]
	start := -1
	for i, r := range s {
		if unicode.IsSpace(r) {
			if start >= 0 {
				sc.fields = append(sc.fields, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		sc.fields = append(sc.fields, s[start:])
	}
	return sc.fields
}

// Intern returns a canonical instance of s, allocating only the first
// time a given string is seen.
func (sc *Scratch) Intern(s string) string {
	if v, ok := sc.interned[s]; ok {
		return v
	}
	sc.interned[s] = s
	return s
}

// Intern2 returns a canonical instance of a+b without allocating the
// concatenation when it was interned before (the common case for option
// keys like "rule:"+seq, which repeat across every snapshot).
func (sc *Scratch) Intern2(a, b string) string {
	sc.buf = append(append(sc.buf[:0], a...), b...)
	return sc.internBuf()
}

// InternJoin returns a canonical instance of strings.Join(fields, " "),
// allocating only on first sight.
func (sc *Scratch) InternJoin(fields []string) string {
	sc.buf = sc.buf[:0]
	for i, f := range fields {
		if i > 0 {
			sc.buf = append(sc.buf, ' ')
		}
		sc.buf = append(sc.buf, f...)
	}
	return sc.internBuf()
}

// InternJoinTrim is InternJoin followed by strings.Trim(x, cutset) —
// used by the junos parser for quoted values — performed inside the
// buffer so only a first-sight value allocates.
func (sc *Scratch) InternJoinTrim(fields []string, cutset string) string {
	sc.buf = sc.buf[:0]
	for i, f := range fields {
		if i > 0 {
			sc.buf = append(sc.buf, ' ')
		}
		sc.buf = append(sc.buf, f...)
	}
	b := sc.buf
	for len(b) > 0 && strings.IndexByte(cutset, b[0]) >= 0 {
		b = b[1:]
	}
	for len(b) > 0 && strings.IndexByte(cutset, b[len(b)-1]) >= 0 {
		b = b[:len(b)-1]
	}
	if v, ok := sc.interned[string(b)]; ok {
		return v
	}
	v := string(b)
	sc.interned[v] = v
	return v
}

// internBuf interns the current contents of sc.buf. The map lookup with
// a string([]byte) key does not allocate; only a miss copies the bytes.
func (sc *Scratch) internBuf() string {
	if v, ok := sc.interned[string(sc.buf)]; ok {
		return v
	}
	v := string(sc.buf)
	sc.interned[v] = v
	return v
}

// internKey interns the stanza key for (t, name).
func (sc *Scratch) internKey(t Type, name string) string {
	ts := t.String()
	sc.buf = append(append(append(sc.buf[:0], ts...), ' '), name...)
	return sc.internBuf()
}

// NewStanza is NewStanza with the stanza key taken from the interner and
// the options map pre-sized from the previous FinishConfig (or allocated
// lazily on first Set when the stanza wasn't seen before), saving the
// map-growth allocations per stanza on the parse hot path.
func (sc *Scratch) NewStanza(t Type, name string) *Stanza {
	key := sc.internKey(t, name)
	s := &Stanza{Type: t, Name: name, key: key}
	if hint := sc.optHint[key]; hint > 0 {
		s.Options = make(map[string]string, hint)
	}
	return s
}

// NewConfig is confmodel.NewConfig with the stanza map pre-sized to the
// last FinishConfig'd parse, so re-parsing a near-identical snapshot
// never grows the map.
func (sc *Scratch) NewConfig(hostname string) *Config {
	return &Config{Hostname: hostname, stanzas: make(map[string]*Stanza, sc.cfgHint)}
}

// FinishConfig records sizing hints from a completed parse (stanza count
// and per-stanza option counts) for the next NewConfig/NewStanza. Parsers
// call it just before returning a successfully parsed config.
func (sc *Scratch) FinishConfig(c *Config) {
	sc.cfgHint = len(c.stanzas)
	for key, s := range c.stanzas {
		if n := len(s.Options); n > 0 {
			sc.optHint[key] = n
		}
	}
}

// Lookup is c.Get(t, name) with the lookup key built in the scratch
// buffer, so no key string is allocated.
func (sc *Scratch) Lookup(c *Config, t Type, name string) *Stanza {
	ts := t.String()
	sc.buf = append(append(append(sc.buf[:0], ts...), ' '), name...)
	return c.stanzas[string(sc.buf)]
}
