// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md §4). Each
// experiment consumes a shared Env — a generated OSP plus the inference
// output and case matrix — and returns a Report holding rendered text and
// the key numbers, so tests and benchmarks can assert on result shape.
package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"mpa/internal/cache"
	"mpa/internal/dataset"
	"mpa/internal/months"
	"mpa/internal/obs"
	"mpa/internal/osp"
	"mpa/internal/par"
	"mpa/internal/practices"
)

// Env is the shared input of all experiments.
type Env struct {
	Params   osp.Params
	OSP      *osp.OSP
	Analysis map[string][]practices.MonthAnalysis
	Data     *dataset.Dataset
	// Obs is the root span of the pipeline's observability tree; the
	// generation/inference/dataset stages hang off it, and every
	// experiment run adds its own child. Nil on hand-assembled Envs —
	// all instrumentation degrades to no-ops.
	Obs *obs.Span

	// digests records the SHA-256 of every report produced through Run,
	// keyed by experiment ID, for the run manifest. Run executes
	// concurrently under RunAll, hence the lock.
	digestMu sync.Mutex
	digests  map[string]string
}

// recordDigest stores r's digest under id.
func (e *Env) recordDigest(id string, r Report) {
	e.digestMu.Lock()
	defer e.digestMu.Unlock()
	if e.digests == nil {
		e.digests = make(map[string]string, 24)
	}
	e.digests[id] = r.Digest()
}

// ReportDigests returns a copy of the digests of every experiment run
// so far (manifest report_digests).
func (e *Env) ReportDigests() map[string]string {
	e.digestMu.Lock()
	defer e.digestMu.Unlock()
	out := make(map[string]string, len(e.digests))
	for id, d := range e.digests {
		out[id] = d
	}
	return out
}

// NewEnv generates an OSP, runs practice inference over the full study
// window, and assembles the case matrix. The returned Env carries the
// root observability span covering all three stages.
//
// Generation and inference run their per-network loops on up to
// p.Workers goroutines (0 = process default); the Env is byte-identical
// at every worker count.
func NewEnv(p osp.Params) (*Env, error) {
	return NewEnvCached(p, cache.Config{})
}

// NewEnvCached is NewEnv with the content-addressed pipeline caches
// configured by cc: snapshot parsing, diffing, and per-network inference
// are memoized in the practice engine, and the dataset build is keyed on
// the analysis digest. Caching never changes the Env's contents — cold,
// warm, and disabled runs are byte-identical (TestCacheEquivalence).
func NewEnvCached(p osp.Params, cc cache.Config) (*Env, error) {
	root := obs.NewRoot("pipeline")
	o := osp.GenerateObs(p, root)
	engine := practices.NewEngine(o.Inventory, o.Archive)
	engine.SetObs(root)
	engine.SetWorkers(p.Workers)
	engine.SetCache(cc)
	analysis, err := engine.Analyze(p.Months())
	if err != nil {
		return nil, fmt.Errorf("experiments: inference failed: %w", err)
	}
	upstream, haveKey := engine.AnalysisKey()
	data := dataset.BuildCached(analysis, o.Tickets, root, cache.New("dataset", cc), upstream, haveKey)
	return &Env{
		Params:   p,
		OSP:      o,
		Analysis: analysis,
		Data:     data,
		Obs:      root,
	}, nil
}

// Evolve returns a new Env holding the given (spliced) data while
// carrying over e's observability root and the report digests recorded
// so far. The incremental ingest path builds each post-update state as a
// fresh Env and swaps it in atomically, so in-flight experiment runs
// keep reading a consistent snapshot; the shared root span means
// pipeline stats keep accruing in one tree across updates. The digest
// map is copied, never shared — re-run experiments on the evolved Env
// overwrite their entries without racing readers of the old one.
func (e *Env) Evolve(p osp.Params, o *osp.OSP, analysis map[string][]practices.MonthAnalysis, data *dataset.Dataset) *Env {
	ne := &Env{Params: p, OSP: o, Analysis: analysis, Data: data, Obs: e.Obs}
	e.digestMu.Lock()
	defer e.digestMu.Unlock()
	if len(e.digests) > 0 {
		ne.digests = make(map[string]string, len(e.digests))
		for id, d := range e.digests {
			ne.digests[id] = d
		}
	}
	return ne
}

// Window returns the study months.
func (e *Env) Window() []months.Month { return e.Params.Months() }

// Report is one experiment's output.
type Report struct {
	// ID is the experiment identifier, e.g. "table3" or "figure8".
	ID string
	// Title restates what the paper's table/figure shows.
	Title string
	// Text is the rendered result.
	Text string
	// Numbers carries the key quantities for programmatic assertions.
	Numbers map[string]float64
}

// Digest returns the SHA-256 hex digest of the report's full content —
// ID, title, rendered text, and the key numbers in sorted order. Fields
// are length-framed so no two distinct reports collide by field
// shifting. A deterministic pipeline must produce byte-identical
// digests for identical configs; run manifests record them so two runs
// can be diffed.
func (r Report) Digest() string {
	h := sha256.New()
	frame := func(s string) {
		fmt.Fprintf(h, "%d:", len(s))
		h.Write([]byte(s))
	}
	frame(r.ID)
	frame(r.Title)
	frame(r.Text)
	keys := make([]string, 0, len(r.Numbers))
	for k := range r.Numbers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		frame(k)
		frame(strconv.FormatFloat(r.Numbers[k], 'g', -1, 64))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Runner executes one experiment against an Env.
type Runner func(*Env) Report

// Registry lists every experiment in paper order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"figure2", Figure2},
		{"figure3", Figure3},
		{"figure4", Figure4},
		{"figure5", Figure5},
		{"table2", Table2},
		{"figure6", Figure6},
		{"table3", Table3},
		{"table4", Table4},
		{"table5", Table5},
		{"table6", Table6},
		{"table7", Table7},
		{"table8", Table8},
		{"section61", Section61},
		{"figure8", Figure8},
		{"figure9", Figure9},
		{"figure10", Figure10},
		{"table9", Table9},
		{"figure11", Figure11},
		{"figure12", Figure12},
		{"figure13", Figure13},
		{"ablation-binning", AblationBinning},
		{"ablation-matching", AblationMatching},
		{"ablation-learners", AblationLearners},
		{"ablation-grouping", AblationGrouping},
	}
}

// Run executes the experiment with the given ID, or returns false. Each
// run is recorded as an "experiment:<id>" span under the Env's root.
func Run(env *Env, id string) (Report, bool) {
	for _, entry := range Registry() {
		if entry.ID == id {
			sp := env.Obs.Start("experiment:" + id)
			r := entry.Run(env)
			sp.End()
			env.recordDigest(id, r)
			obs.GetCounter("experiments.runs").Add(1)
			obs.Logger().Debug("experiment complete", "id", id, "elapsed", sp.Duration())
			return r, true
		}
	}
	return Report{}, false
}

// RunResult pairs an experiment ID with its outcome; OK is false for
// unknown IDs.
type RunResult struct {
	ID     string
	Report Report
	OK     bool
}

// RunAll executes the given experiments (nil = every registered one, in
// paper order) on up to workers goroutines (0 = process default) and
// returns the results in input order. Experiments only read the Env, and
// each one is internally deterministic — every stochastic step reseeds
// from Params.Seed — so the reports are identical at any worker count.
func RunAll(env *Env, ids []string, workers int) []RunResult {
	if ids == nil {
		ids = IDs()
	}
	pt := obs.StartProgress("experiments", int64(len(ids)))
	out, _ := par.Map(workers, ids, func(_ int, id string) (RunResult, error) {
		r, ok := Run(env, id)
		pt.Add(1)
		return RunResult{ID: id, Report: r, OK: ok}, nil
	})
	pt.Done()
	return out
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, e := range reg {
		out[i] = e.ID
	}
	return out
}

// sortedNetworkNames returns the analysis networks in deterministic order.
func (e *Env) sortedNetworkNames() []string {
	names := make([]string, 0, len(e.Analysis))
	for n := range e.Analysis {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
