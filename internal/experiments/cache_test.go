package experiments

import (
	"testing"

	"mpa/internal/cache"
	"mpa/internal/obs"
	"mpa/internal/osp"
)

// TestCacheEquivalence is the cache's correctness contract: a run with
// caching disabled, a cold cached run, and a warm cached run over the same
// on-disk tier must produce byte-identical experiment reports — at one
// worker and at eight. It also asserts the warm run actually served
// per-network inference from the disk tier rather than recomputing.
func TestCacheEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds six full envs")
	}
	p := osp.Small(33)
	p.Networks = 12
	for _, workers := range []int{1, 8} {
		p.Workers = workers
		dir := t.TempDir()
		cc := cache.Config{Enabled: true, Dir: dir}

		plain, err := NewEnv(p)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := NewEnvCached(p, cc)
		if err != nil {
			t.Fatal(err)
		}
		before := obs.GetCounter("cache.practices.disk_hits").Value()
		warm, err := NewEnvCached(p, cc)
		if err != nil {
			t.Fatal(err)
		}
		hits := obs.GetCounter("cache.practices.disk_hits").Value() - before
		if hits < int64(p.Networks) {
			t.Errorf("workers=%d: warm run took %d per-network disk hits, want >= %d",
				workers, hits, p.Networks)
		}

		base := RunAll(plain, nil, workers)
		for name, env := range map[string]*Env{"cold": cold, "warm": warm} {
			got := RunAll(env, nil, workers)
			if len(got) != len(base) {
				t.Fatalf("workers=%d %s: %d results, want %d", workers, name, len(got), len(base))
			}
			for i, w := range base {
				g := got[i]
				if g.ID != w.ID || g.OK != w.OK {
					t.Fatalf("workers=%d %s: result[%d] = (%s, %v), want (%s, %v)",
						workers, name, i, g.ID, g.OK, w.ID, w.OK)
				}
				if g.Report.Text != w.Report.Text {
					t.Errorf("workers=%d %s: %s Text differs from uncached run", workers, name, w.ID)
				}
				if len(g.Report.Numbers) != len(w.Report.Numbers) {
					t.Errorf("workers=%d %s: %s has %d numbers, want %d",
						workers, name, w.ID, len(g.Report.Numbers), len(w.Report.Numbers))
					continue
				}
				for k, wv := range w.Report.Numbers {
					if gv, ok := g.Report.Numbers[k]; !ok || gv != wv {
						t.Errorf("workers=%d %s: %s Numbers[%q] = %v, want %v",
							workers, name, w.ID, k, gv, wv)
					}
				}
			}
		}
	}
}
