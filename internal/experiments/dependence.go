package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mpa/internal/dataset"
	"mpa/internal/months"
	"mpa/internal/obs"
	"mpa/internal/practices"
	"mpa/internal/report"
	"mpa/internal/stats"
)

// ticketBoxesByBin renders box summaries of ticket counts grouped by the
// binned value of a practice metric (the visual form of Figures 4 and 6).
func ticketBoxesByBin(env *Env, metric string, bins int) (string, map[int]stats.BoxSummary) {
	binned, binner := stats.BinValues(env.Data.Values(metric), bins)
	tickets := env.Data.TicketValues()
	groups := map[int][]float64{}
	for i, b := range binned {
		groups[b] = append(groups[b], tickets[i])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (bins anchored at [%s, %s]):\n",
		practices.DisplayName(metric), report.F(first(binner.Bounds())), report.F(second(binner.Bounds())))
	boxes := map[int]stats.BoxSummary{}
	for bin := 0; bin < bins; bin++ {
		vals, ok := groups[bin]
		if !ok {
			continue
		}
		box := stats.Box(vals)
		boxes[bin] = box
		b.WriteString("  " + report.BoxSummary(fmt.Sprintf("bin %d", bin), box) + "\n")
	}
	return b.String(), boxes
}

func first(a, _ float64) float64  { return a }
func second(_, b float64) float64 { return b }

// monotoneScore returns the fraction of adjacent bin pairs whose mean
// ticket count increases — 1.0 for a strictly increasing relationship.
func monotoneScore(boxes map[int]stats.BoxSummary, bins int) float64 {
	var prev *stats.BoxSummary
	up, total := 0, 0
	for b := 0; b < bins; b++ {
		box, ok := boxes[b]
		if !ok {
			continue
		}
		if prev != nil {
			total++
			if box.Mean >= prev.Mean {
				up++
			}
		}
		boxCopy := box
		prev = &boxCopy
	}
	if total == 0 {
		return 0
	}
	return float64(up) / float64(total)
}

// Figure4 shows tickets against four practices with linear, monotone, and
// non-monotone relationships (paper Figure 4).
func Figure4(env *Env) Report {
	metrics := []string{
		practices.MetricL2Protocols,
		practices.MetricModels,
		practices.MetricFracEventsIface,
		practices.MetricRoles,
	}
	var b strings.Builder
	numbers := map[string]float64{}
	for _, m := range metrics {
		text, boxes := ticketBoxesByBin(env, m, 6)
		b.WriteString(text)
		numbers["monotone:"+m] = monotoneScore(boxes, 6)
	}
	b.WriteString("\nInterface-change fraction is expected to be non-monotone (inverted U).\n")
	return Report{
		ID:      "figure4",
		Title:   "Figure 4: tickets vs management practices (shape diversity)",
		Text:    b.String(),
		Numbers: numbers,
	}
}

// Figure5 shows the relationship between the number of models and the
// number of roles (paper Figure 5): practices are related to each other.
func Figure5(env *Env) Report {
	roles := env.Data.Values(practices.MetricRoles)
	models := env.Data.Values(practices.MetricModels)
	groups := map[int][]float64{}
	for i, r := range roles {
		groups[int(r)] = append(groups[int(r)], models[i])
	}
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString("  " + report.BoxSummary(fmt.Sprintf("%d roles", k), stats.Box(groups[k])) + "\n")
	}
	corr := stats.Pearson(roles, models)
	fmt.Fprintf(&b, "Pearson(roles, models) = %.2f — the confounding the QED must control.\n", corr)
	return Report{
		ID:      "figure5",
		Title:   "Figure 5: number of models vs number of roles",
		Text:    b.String(),
		Numbers: map[string]float64{"roles_models_correlation": corr},
	}
}

// Figure6 shows tickets against the two strongest practices: number of
// devices and number of change events (paper Figure 6).
func Figure6(env *Env) Report {
	var b strings.Builder
	numbers := map[string]float64{}
	for _, m := range []string{practices.MetricDevices, practices.MetricChangeEvents} {
		text, boxes := ticketBoxesByBin(env, m, 8)
		b.WriteString(text)
		numbers["monotone:"+m] = monotoneScore(boxes, 8)
	}
	return Report{
		ID:      "figure6",
		Title:   "Figure 6: tickets vs no. of devices and no. of change events",
		Text:    b.String(),
		Numbers: numbers,
	}
}

// MIRanking computes each practice's average monthly mutual information
// with network health: metrics and health are binned into 10
// percentile-anchored bins over all cases, MI is computed per month across
// networks, and the monthly values are averaged (paper §5.1).
func MIRanking(env *Env) []MIEntry {
	sp := env.Obs.Start("mi_ranking")
	defer sp.End()
	binned := env.Data.Bin(10)
	byMonth := map[months.Month][]int{}
	for i, c := range env.Data.Cases {
		byMonth[c.Month] = append(byMonth[c.Month], i)
	}
	window := env.Window()
	miValues := 0
	entries := make([]MIEntry, 0, len(practices.MetricNames))
	for _, metric := range practices.MetricNames {
		var sum float64
		n := 0
		for _, m := range window {
			idx := byMonth[m]
			if len(idx) < 2 {
				continue
			}
			xs := make([]int, len(idx))
			ys := make([]int, len(idx))
			for k, i := range idx {
				xs[k] = binned.Metrics[metric][i]
				ys[k] = binned.Health[i]
			}
			sum += stats.MutualInformation(xs, ys)
			n++
		}
		miValues += n
		avg := 0.0
		if n > 0 {
			avg = sum / float64(n)
		}
		entries = append(entries, MIEntry{Metric: metric, MI: avg})
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].MI > entries[j].MI })
	sp.Count("metrics", float64(len(entries)))
	sp.Count("mi_values", float64(miValues))
	obs.GetCounter("experiments.mi_values").Add(int64(miValues))
	return entries
}

// MIEntry is one practice's dependence score.
type MIEntry struct {
	Metric string
	MI     float64
}

// Table3 ranks the practices by average monthly MI with health and lists
// the top 10 (paper Table 3).
func Table3(env *Env) Report {
	entries := MIRanking(env)
	tb := report.NewTable("Rank", "Management practice", "Cat", "Avg monthly MI")
	numbers := map[string]float64{}
	for i, e := range entries {
		cat := "D"
		if practices.Category(e.Metric) == "operational" {
			cat = "O"
		}
		if i < 10 {
			tb.AddRow(fmt.Sprint(i+1), practices.DisplayName(e.Metric), cat, report.F(e.MI))
		}
		numbers["mi:"+e.Metric] = e.MI
		numbers["rank:"+e.Metric] = float64(i + 1)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	return Report{
		ID:      "table3",
		Title:   "Table 3: top 10 practices by average monthly MI with health",
		Text:    b.String(),
		Numbers: numbers,
	}
}

// Table4 ranks practice pairs by conditional mutual information given
// health and lists the top 10 (paper Table 4).
func Table4(env *Env) Report {
	sp := env.Obs.Start("cmi_ranking")
	defer sp.End()
	binned := env.Data.Bin(10)
	byMonth := map[months.Month][]int{}
	for i, c := range env.Data.Cases {
		byMonth[c.Month] = append(byMonth[c.Month], i)
	}
	window := env.Window()
	type pairEntry struct {
		a, b string
		cmi  float64
	}
	var pairs []pairEntry
	names := practices.MetricNames
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			var sum float64
			n := 0
			for _, m := range window {
				idx := byMonth[m]
				if len(idx) < 2 {
					continue
				}
				x1 := make([]int, len(idx))
				x2 := make([]int, len(idx))
				ys := make([]int, len(idx))
				for k, c := range idx {
					x1[k] = binned.Metrics[names[i]][c]
					x2[k] = binned.Metrics[names[j]][c]
					ys[k] = binned.Health[c]
				}
				sum += stats.ConditionalMutualInformation(x1, x2, ys)
				n++
			}
			if n > 0 {
				pairs = append(pairs, pairEntry{names[i], names[j], sum / float64(n)})
			}
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].cmi > pairs[j].cmi })
	sp.Count("pairs", float64(len(pairs)))
	obs.GetCounter("experiments.cmi_pairs").Add(int64(len(pairs)))

	top10 := MIRanking(env)
	topSet := map[string]bool{}
	for i, e := range top10 {
		if i < 10 {
			topSet[e.Metric] = true
		}
	}
	tb := report.NewTable("Rank", "Practice pair", "CMI")
	numbers := map[string]float64{}
	dependentTop := map[string]bool{}
	for i, p := range pairs {
		if i < 10 {
			mark := func(m string) string {
				d := practices.DisplayName(m)
				if topSet[m] {
					d = "*" + d // in the MI top-10, as the paper highlights
					dependentTop[m] = true
				}
				return d
			}
			tb.AddRow(fmt.Sprint(i+1), mark(p.a)+" / "+mark(p.b), report.F(p.cmi))
			numbers[fmt.Sprintf("cmi:%s|%s", p.a, p.b)] = p.cmi
		}
	}
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\n* practice is in the MI top-10; %d of the top-10 health-related practices\n", len(dependentTop))
	b.WriteString("  are statistically dependent with other practices (paper: six).\n")
	numbers["top10_in_pairs"] = float64(len(dependentTop))
	return Report{
		ID:      "table4",
		Title:   "Table 4: top 10 statistically dependent practice pairs by CMI",
		Text:    b.String(),
		Numbers: numbers,
	}
}

var _ = dataset.Class2 // referenced by later experiments in this package
