package experiments

import (
	"fmt"
	"strings"

	"mpa/internal/practices"
	"mpa/internal/qed"
	"mpa/internal/report"
	"mpa/internal/survey"
)

// causalConfig returns the paper's QED configuration: all 28 practice
// metrics as confounders (the treatment is excluded inside qed.Run), 5
// treatment bins, alpha 0.001.
func causalConfig() qed.Config {
	return qed.DefaultConfig(practices.MetricNames)
}

// runCausal runs the matched-design analysis for one treatment.
func runCausal(env *Env, treatment string) *qed.Result {
	cfg := causalConfig()
	cfg.Obs = env.Obs
	res, err := qed.Run(env.Data, treatment, cfg)
	if err != nil {
		// The dataset is non-empty by construction; an error here is a
		// programming bug, not a data condition.
		panic(fmt.Sprintf("experiments: causal analysis of %s failed: %v", treatment, err))
	}
	return res
}

// Table5 reports propensity-score matching quality for number of change
// events across the four comparison points (paper Table 5).
func Table5(env *Env) Report {
	res := runCausal(env, practices.MetricChangeEvents)
	tb := report.NewTable("Comp. point", "Untreated", "Treated", "Pairs",
		"Untreated matched", "|Std diff means|", "Ratio of var")
	numbers := map[string]float64{}
	for _, p := range res.Points {
		absDiff := p.PropensityBalance.StdMeanDiff
		if absDiff < 0 {
			absDiff = -absDiff
		}
		tb.AddRow(p.Comparison,
			fmt.Sprint(p.UntreatedCases), fmt.Sprint(p.TreatedCases),
			fmt.Sprint(p.Pairs), fmt.Sprint(p.UntreatedUsed),
			fmt.Sprintf("%.4f", absDiff), fmt.Sprintf("%.4f", p.PropensityBalance.VarRatio))
		numbers["pairs:"+p.Comparison] = float64(p.Pairs)
		numbers["treated:"+p.Comparison] = float64(p.TreatedCases)
		numbers["untreated_matched:"+p.Comparison] = float64(p.UntreatedUsed)
		numbers["ps_diff:"+p.Comparison] = absDiff
		numbers["ps_var:"+p.Comparison] = p.PropensityBalance.VarRatio
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nMatching with replacement: distinct untreated cases matched is below pairs.\n")
	return Report{
		ID:      "table5",
		Title:   "Table 5: matching based on propensity scores (no. of change events)",
		Text:    b.String(),
		Numbers: numbers,
	}
}

// Table6 reports the sign-test outcome distribution for number of change
// events (paper Table 6).
func Table6(env *Env) Report {
	res := runCausal(env, practices.MetricChangeEvents)
	tb := report.NewTable("Comp. point", "Fewer tickets", "No effect", "More tickets",
		"p-value", "Causal", "Rosenbaum gamma")
	numbers := map[string]float64{}
	for _, p := range res.Points {
		causal := ""
		if p.Causal {
			causal = "yes"
		}
		tb.AddRow(p.Comparison, fmt.Sprint(p.FewerTickets), fmt.Sprint(p.NoEffect),
			fmt.Sprint(p.MoreTickets), report.P(p.PValue), causal,
			report.F(p.SensitivityGamma))
		numbers["p:"+p.Comparison] = p.PValue
		numbers["more:"+p.Comparison] = float64(p.MoreTickets)
		numbers["fewer:"+p.Comparison] = float64(p.FewerTickets)
		numbers["gamma:"+p.Comparison] = p.SensitivityGamma
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nRosenbaum gamma: the hidden-bias magnitude a conclusion survives (1 = fragile).\n")
	return Report{
		ID:      "table6",
		Title:   "Table 6: statistical significance of outcomes (no. of change events)",
		Text:    b.String(),
		Numbers: numbers,
	}
}

// top10Metrics returns the 10 practices with the strongest MI dependence.
func top10Metrics(env *Env) []string {
	entries := MIRanking(env)
	out := make([]string, 0, 10)
	for i, e := range entries {
		if i >= 10 {
			break
		}
		out = append(out, e.Metric)
	}
	return out
}

// Table7 runs the causal analysis at the 1:2 comparison point for the ten
// practices with the highest MI (paper Table 7), annotated with the
// survey's majority opinion where available.
func Table7(env *Env) Report {
	tb := report.NewTable("Treatment practice", "p-value (1:2)", "Causal", "Survey majority")
	numbers := map[string]float64{}
	causalCount := 0
	for _, metric := range top10Metrics(env) {
		res := runCausal(env, metric)
		p := res.Points[0] // 1:2
		causal := ""
		if p.Causal {
			causal = "yes"
			causalCount++
		}
		opinion := "-"
		if s, ok := survey.ByMetric(metric); ok {
			opinion = s.MajorityOpinion().String()
		}
		tb.AddRow(practices.DisplayName(metric), report.P(p.PValue), causal, opinion)
		numbers["p:"+metric] = p.PValue
		if p.Causal {
			numbers["causal:"+metric] = 1
		} else {
			numbers["causal:"+metric] = 0
		}
	}
	numbers["causal_count"] = float64(causalCount)
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\n%d of 10 practices show a causal relationship at the 1:2 point (paper: 8).\n", causalCount)
	return Report{
		ID:      "table7",
		Title:   "Table 7: causal analysis at the 1:2 comparison point, top 10 MI practices",
		Text:    b.String(),
		Numbers: numbers,
	}
}

// Table8 runs the upper-bin comparison points (2:3, 3:4, 4:5) for the top
// 10 practices, marking imbalanced matchings (paper Table 8).
func Table8(env *Env) Report {
	tb := report.NewTable("Treatment practice", "2:3", "3:4", "4:5")
	numbers := map[string]float64{}
	imbalanced, total := 0, 0
	for _, metric := range top10Metrics(env) {
		res := runCausal(env, metric)
		cells := []string{practices.DisplayName(metric)}
		for _, p := range res.Points[1:] {
			total++
			switch {
			case p.Skipped:
				cells = append(cells, "Insuf.")
				imbalanced++
			case !p.Balanced:
				cells = append(cells, "Imbal.")
				imbalanced++
			default:
				cell := report.P(p.PValue)
				if p.Causal {
					cell += " *"
				}
				cells = append(cells, cell)
			}
			numbers[fmt.Sprintf("p:%s:%s", metric, p.Comparison)] = p.PValue
		}
		tb.AddRow(cells...)
	}
	numbers["imbalanced_frac"] = float64(imbalanced) / float64(total)
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\n* significant at alpha=0.001. %.0f%% of upper-bin matchings are imbalanced\n",
		100*float64(imbalanced)/float64(total))
	b.WriteString("or insufficient — practice metrics are heavy-tailed, so upper bins are sparse\n")
	b.WriteString("(paper: over one-third imbalanced).\n")
	return Report{
		ID:      "table8",
		Title:   "Table 8: causal analysis at upper comparison points, top 10 MI practices",
		Text:    b.String(),
		Numbers: numbers,
	}
}

// AblationMatching compares the paper's propensity matching against exact
// and Mahalanobis matching on the change-events treatment — the §5.2.3
// motivation for propensity scores (exact matching starves).
func AblationMatching(env *Env) Report {
	tb := report.NewTable("Method", "Pairs (1:2)", "Pairs (total)")
	numbers := map[string]float64{}
	for _, method := range []qed.MatchMethod{qed.MatchPropensity, qed.MatchExact, qed.MatchMahalanobis} {
		cfg := causalConfig()
		cfg.Matching = method
		cfg.Obs = env.Obs
		res, err := qed.Run(env.Data, practices.MetricChangeEvents, cfg)
		if err != nil {
			panic(err)
		}
		total := 0
		for _, p := range res.Points {
			total += p.Pairs
		}
		tb.AddRow(method.String(), fmt.Sprint(res.Points[0].Pairs), fmt.Sprint(total))
		numbers["pairs:"+method.String()] = float64(total)
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nExact matching on all confounders yields almost no pairs (paper: <=17 of ~11K);\n")
	b.WriteString("propensity scores reduce the confounder space to one dimension.\n")
	return Report{
		ID:      "ablation-matching",
		Title:   "Ablation: pairing method (propensity vs exact vs Mahalanobis)",
		Text:    b.String(),
		Numbers: numbers,
	}
}
