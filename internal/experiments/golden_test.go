package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden experiment reports")

// goldenRender serializes a report for golden comparison: title, rendered
// text, then every key number with full float64 precision, so any change
// to an experiment's output — formatting or numeric — shows up as a diff.
func goldenRender(r Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "title: %s\n\n%s\n", r.Title, r.Text)
	if len(r.Numbers) > 0 {
		keys := make([]string, 0, len(r.Numbers))
		for k := range r.Numbers {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("\nnumbers:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "%s = %s\n", k, strconv.FormatFloat(r.Numbers[k], 'g', -1, 64))
		}
	}
	return b.String()
}

// TestGoldenReports pins every experiment's full report — text and key
// numbers — against testdata/golden/<id>.txt. The pipeline is seeded and
// deterministic at every worker count, so any diff is a real behavior
// change. Regenerate intentionally with:
//
//	go test ./internal/experiments/ -run TestGoldenReports -update
func TestGoldenReports(t *testing.T) {
	for _, entry := range Registry() {
		t.Run(entry.ID, func(t *testing.T) {
			got := goldenRender(entry.Run(testEnv))
			path := filepath.Join("testdata", "golden", entry.ID+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("report differs from %s (re-run with -update if intended)\n%s",
					path, firstDiff(string(want), got))
			}
		})
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("first diff at line %d:\n  want: %q\n  got:  %q", i+1, w, g)
		}
	}
	return "contents equal"
}
