package experiments

import (
	"fmt"
	"strings"
	"time"

	"mpa/internal/ciscoios"
	"mpa/internal/confmodel"
	"mpa/internal/junos"
	"mpa/internal/netmodel"
	"mpa/internal/practices"
	"mpa/internal/report"
	"mpa/internal/routing"
	"mpa/internal/stats"
)

// Table2 reports the dataset sizes (paper Table 2).
func Table2(env *Env) Report {
	snapBytes := env.OSP.Archive.TotalBytes()
	var ticketBytes int64
	for _, t := range env.OSP.Tickets.All() {
		ticketBytes += int64(len(t.Symptom) + len(t.Notes) + len(t.Network))
	}
	tb := report.NewTable("Property", "Value")
	tb.AddRow("Months", fmt.Sprintf("%d, %s - %s", len(env.Window()), env.Params.Start, env.Params.End))
	tb.AddRow("Networks", fmt.Sprint(len(env.OSP.Inventory.Networks)))
	tb.AddRow("Services", fmt.Sprint(env.OSP.Inventory.ServiceCount()))
	tb.AddRow("Devices", fmt.Sprint(env.OSP.Inventory.DeviceCount()))
	tb.AddRow("Config snapshots", fmt.Sprintf("%d, ~%dMB", env.OSP.Archive.SnapshotCount(), snapBytes>>20))
	tb.AddRow("Tickets", fmt.Sprintf("%d, ~%dKB", env.OSP.Tickets.Len(), ticketBytes>>10))
	return Report{
		ID:    "table2",
		Title: "Table 2: size of datasets",
		Text:  tb.String(),
		Numbers: map[string]float64{
			"months":    float64(len(env.Window())),
			"networks":  float64(len(env.OSP.Inventory.Networks)),
			"services":  float64(env.OSP.Inventory.ServiceCount()),
			"devices":   float64(env.OSP.Inventory.DeviceCount()),
			"snapshots": float64(env.OSP.Archive.SnapshotCount()),
			"tickets":   float64(env.OSP.Tickets.Len()),
		},
	}
}

// Figure3 sweeps the change-event grouping threshold delta and reports the
// distribution of change events per network-month for each value (paper
// Figure 3: NA, 1, 2, 5, 10, 15, 30 minutes).
func Figure3(env *Env) Report {
	deltas := []int{0, 1, 2, 5, 10, 15, 30}
	var b strings.Builder
	numbers := map[string]float64{}
	for _, mins := range deltas {
		var counts []float64
		for _, name := range env.sortedNetworkNames() {
			for _, ma := range env.Analysis[name] {
				groups := practices.GroupChanges(ma.Changes, time.Duration(mins)*time.Minute)
				counts = append(counts, float64(len(groups)))
			}
		}
		box := stats.Box(counts)
		label := fmt.Sprintf("delta=%dmin", mins)
		if mins == 0 {
			label = "delta=NA"
		}
		b.WriteString(report.BoxSummary(label, box) + "\n")
		numbers[fmt.Sprintf("median:%d", mins)] = box.Median
		numbers[fmt.Sprintf("q75:%d", mins)] = box.Q75
	}
	b.WriteString("\nLarger thresholds merge events; the paper settles on delta = 5 minutes.\n")
	return Report{
		ID:      "figure3",
		Title:   "Figure 3: change events per network-month vs grouping threshold",
		Text:    b.String(),
		Numbers: numbers,
	}
}

// finalConfigs parses each device's final archived snapshot, grouped per
// network — for characterization passes that need full configurations
// (e.g. MSTP instance extraction, which is not one of the 28 metrics).
func (e *Env) finalConfigs() map[string][]*confmodel.Config {
	cisco := ciscoios.Dialect{}
	jnp := junos.Dialect{}
	out := map[string][]*confmodel.Config{}
	for _, nw := range e.OSP.Inventory.Networks {
		for _, dev := range nw.Devices {
			hist := e.OSP.Archive.Snapshots(dev.Name)
			if len(hist) == 0 {
				continue
			}
			var d confmodel.Dialect = jnp
			if dev.Vendor == netmodel.VendorCisco {
				d = cisco
			}
			cfg, err := d.Parse(hist[len(hist)-1].Text)
			if err != nil {
				continue // generator-produced text always parses
			}
			out[nw.Name] = append(out[nw.Name], cfg)
		}
	}
	return out
}

// lastMetrics returns each network's final-month metrics.
func (e *Env) lastMetrics() map[string]practices.Metrics {
	out := map[string]practices.Metrics{}
	for name, mas := range e.Analysis {
		if len(mas) > 0 {
			out[name] = mas[len(mas)-1].Metrics
		}
	}
	return out
}

// Figure11 characterizes design practices across networks: device
// heterogeneity, protocol usage, VLAN counts, referential complexity, and
// routing-instance counts (paper Figure 11 / Appendix A.1).
func Figure11(env *Env) Report {
	last := env.lastMetrics()
	collect := func(metric string) []float64 {
		var out []float64
		for _, name := range env.sortedNetworkNames() {
			if m, ok := last[name]; ok {
				out = append(out, m[metric])
			}
		}
		return out
	}
	var b strings.Builder
	numbers := map[string]float64{}

	hw := collect(practices.MetricHardwareEntropy)
	fw := collect(practices.MetricFirmwareEntropy)
	b.WriteString("(a) Device heterogeneity (normalized entropy):\n")
	fmt.Fprintf(&b, "    hardware: %s\n", report.CDFSummary(hw))
	fmt.Fprintf(&b, "    firmware: %s\n", report.CDFSummary(fw))
	highHW := 1 - stats.CDFAt(hw, 0.67)
	fmt.Fprintf(&b, "    median hardware entropy %.2f; %.0f%% of networks above 0.67\n",
		stats.Median(hw), 100*highHW)
	numbers["hw_entropy_median"] = stats.Median(hw)
	numbers["hw_entropy_frac_high"] = highHW

	l2 := collect(practices.MetricL2Protocols)
	l3 := collect(practices.MetricL3Protocols)
	both := make([]float64, len(l2))
	for i := range l2 {
		both[i] = l2[i] + l3[i]
	}
	b.WriteString("(b) Protocol usage (count of protocols in use):\n")
	fmt.Fprintf(&b, "    L2:   %s\n", report.CDFSummary(l2))
	fmt.Fprintf(&b, "    L3:   %s\n", report.CDFSummary(l3))
	fmt.Fprintf(&b, "    both: %s\n", report.CDFSummary(both))
	numbers["protocols_median"] = stats.Median(both)
	numbers["protocols_max"] = stats.Max(both)

	vlans := collect(practices.MetricVLANs)
	b.WriteString("(c) No. of VLANs:\n")
	fmt.Fprintf(&b, "    %s\n", report.CDFSummary(vlans))
	fmt.Fprintf(&b, "    %.0f%% of networks configure <5 VLANs; %.0f%% configure >100\n",
		100*stats.CDFAt(vlans, 4.999), 100*(1-stats.CDFAt(vlans, 100)))
	numbers["vlans_frac_over100"] = 1 - stats.CDFAt(vlans, 100)

	intra := collect(practices.MetricIntraComplexity)
	inter := collect(practices.MetricInterComplexity)
	b.WriteString("(d) Referential complexity (mean refs per device):\n")
	fmt.Fprintf(&b, "    intra: %s\n", report.CDFSummary(intra))
	fmt.Fprintf(&b, "    inter: %s\n", report.CDFSummary(inter))
	numbers["intra_p90_over_p10"] = ratio(stats.Percentile(intra, 90), stats.Percentile(intra, 10))
	numbers["inter_p90_over_p10"] = ratio(stats.Percentile(inter, 90), stats.Percentile(inter, 10))

	bgp := collect(practices.MetricBGPInstances)
	ospf := collect(practices.MetricOSPFInstances)
	configs := env.finalConfigs()
	var mstp []float64
	for _, name := range env.sortedNetworkNames() {
		s := routing.Summarize(configs[name], nil, routing.MSTP)
		mstp = append(mstp, float64(s.Count))
	}
	b.WriteString("(e) Routing instances:\n")
	fmt.Fprintf(&b, "    BGP:  %s (%.0f%% of networks use BGP)\n",
		report.CDFSummary(bgp), 100*fracPositive(bgp))
	fmt.Fprintf(&b, "    OSPF: %s (%.0f%% of networks use OSPF)\n",
		report.CDFSummary(ospf), 100*fracPositive(ospf))
	fmt.Fprintf(&b, "    MSTP: %s\n", report.CDFSummary(mstp))
	numbers["bgp_usage"] = fracPositive(bgp)
	numbers["ospf_usage"] = fracPositive(ospf)

	return Report{
		ID:      "figure11",
		Title:   "Figure 11: characterization of design practices",
		Text:    b.String(),
		Numbers: numbers,
	}
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func fracPositive(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > 0 {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Figure12 characterizes configuration changes: change volume vs size,
// device churn, change-type mix, automation, and change-event counts
// (paper Figure 12 / Appendix A.2).
func Figure12(env *Env) Report {
	var b strings.Builder
	numbers := map[string]float64{}

	// (a) avg changes/month vs network size.
	var sizes, changeRates []float64
	for _, name := range env.sortedNetworkNames() {
		mas := env.Analysis[name]
		var total float64
		for _, ma := range mas {
			total += ma.Metrics[practices.MetricConfigChanges]
		}
		sizes = append(sizes, mas[0].Metrics[practices.MetricDevices])
		changeRates = append(changeRates, total/float64(len(mas)))
	}
	corr := stats.Pearson(sizes, changeRates)
	b.WriteString("(a) Avg. config changes per month vs network size:\n")
	fmt.Fprintf(&b, "    Pearson correlation = %.2f (paper: 0.64)\n", corr)
	numbers["size_change_correlation"] = corr

	// (b) fraction of devices changed per month and per year.
	var perMonth, perYear []float64
	for _, name := range env.sortedNetworkNames() {
		mas := env.Analysis[name]
		devTotal := mas[0].Metrics[practices.MetricDevices]
		changedEver := map[string]bool{}
		for _, ma := range mas {
			perMonth = append(perMonth, ma.Metrics[practices.MetricFracDevChanged])
			for _, c := range ma.Changes {
				changedEver[c.Device] = true
			}
		}
		if devTotal > 0 {
			perYear = append(perYear, float64(len(changedEver))/devTotal)
		}
	}
	b.WriteString("(b) Fraction of devices changed:\n")
	fmt.Fprintf(&b, "    per month:  %s\n", report.CDFSummary(perMonth))
	fmt.Fprintf(&b, "    per window: %s\n", report.CDFSummary(perYear))
	numbers["frac_dev_month_median"] = stats.Median(perMonth)
	numbers["frac_dev_window_median"] = stats.Median(perYear)

	// (c) most frequent change types: per network, the fraction of
	// changes touching each type.
	typeTargets := []struct {
		label string
		typ   confmodel.Type
	}{
		{"iface", confmodel.TypeInterface},
		{"pool", confmodel.TypePool},
		{"acl", confmodel.TypeACL},
		{"user", confmodel.TypeUser},
	}
	b.WriteString("(c) Fraction of changes touching a stanza type (per network):\n")
	for _, tt := range typeTargets {
		var fracs []float64
		for _, name := range env.sortedNetworkNames() {
			total, touch := 0, 0
			for _, ma := range env.Analysis[name] {
				for _, c := range ma.Changes {
					total++
					if c.HasType(tt.typ) {
						touch++
					}
				}
			}
			if total > 0 {
				fracs = append(fracs, float64(touch)/float64(total))
			}
		}
		fmt.Fprintf(&b, "    %-6s %s\n", tt.label+":", report.CDFSummary(fracs))
		numbers["type_median:"+tt.label] = stats.Median(fracs)
	}
	// Router changes separately (bgp or ospf).
	var routerFracs []float64
	for _, name := range env.sortedNetworkNames() {
		total, touch := 0, 0
		for _, ma := range env.Analysis[name] {
			for _, c := range ma.Changes {
				total++
				if c.HasRouterType() {
					touch++
				}
			}
		}
		if total > 0 {
			routerFracs = append(routerFracs, float64(touch)/float64(total))
		}
	}
	fmt.Fprintf(&b, "    %-6s %s\n", "router:", report.CDFSummary(routerFracs))
	numbers["type_median:router"] = stats.Median(routerFracs)
	numbers["router_frac_heavy"] = 1 - stats.CDFAt(routerFracs, 0.5)

	// (d) fraction of changes automated per month.
	var autoFracs []float64
	for _, name := range env.sortedNetworkNames() {
		total, auto := 0, 0
		for _, ma := range env.Analysis[name] {
			for _, c := range ma.Changes {
				total++
				if c.Automated {
					auto++
				}
			}
		}
		if total > 0 {
			autoFracs = append(autoFracs, float64(auto)/float64(total))
		}
	}
	b.WriteString("(d) Fraction of changes automated (per network):\n")
	fmt.Fprintf(&b, "    %s\n", report.CDFSummary(autoFracs))
	halfAuto := 1 - stats.CDFAt(autoFracs, 0.5)
	fmt.Fprintf(&b, "    %.0f%% of networks automate more than half their changes\n", 100*halfAuto)
	numbers["frac_networks_half_automated"] = halfAuto

	// (e) avg change events per month.
	var eventRates []float64
	for _, name := range env.sortedNetworkNames() {
		var total float64
		mas := env.Analysis[name]
		for _, ma := range mas {
			total += ma.Metrics[practices.MetricChangeEvents]
		}
		eventRates = append(eventRates, total/float64(len(mas)))
	}
	b.WriteString("(e) Avg. change events per month (per network):\n")
	fmt.Fprintf(&b, "    %s\n", report.CDFSummary(eventRates))
	numbers["events_p10"] = stats.Percentile(eventRates, 10)
	numbers["events_p90"] = stats.Percentile(eventRates, 90)

	return Report{
		ID:      "figure12",
		Title:   "Figure 12: characterization of configuration changes",
		Text:    b.String(),
		Numbers: numbers,
	}
}

// Figure13 characterizes change events: devices changed per event and the
// fraction of events touching middleboxes (paper Figure 13).
func Figure13(env *Env) Report {
	var devsPerEvent, mboxFracs []float64
	for _, name := range env.sortedNetworkNames() {
		var dpe, mbox, n float64
		for _, ma := range env.Analysis[name] {
			if ma.Metrics[practices.MetricChangeEvents] == 0 {
				continue
			}
			dpe += ma.Metrics[practices.MetricDevicesPerEvent]
			mbox += ma.Metrics[practices.MetricFracEventsMbox]
			n++
		}
		if n > 0 {
			devsPerEvent = append(devsPerEvent, dpe/n)
			mboxFracs = append(mboxFracs, mbox/n)
		}
	}
	var b strings.Builder
	b.WriteString("(a) Mean devices changed per event (per network):\n")
	fmt.Fprintf(&b, "    %s\n", report.CDFSummary(devsPerEvent))
	smallEvents := stats.CDFAt(devsPerEvent, 2)
	fmt.Fprintf(&b, "    %.0f%% of networks average <=2 devices per event\n", 100*smallEvents)
	b.WriteString("(b) Fraction of events involving a middlebox (per network):\n")
	fmt.Fprintf(&b, "    %s\n", report.CDFSummary(mboxFracs))
	return Report{
		ID:    "figure13",
		Title: "Figure 13: characterization of change events",
		Text:  b.String(),
		Numbers: map[string]float64{
			"devs_per_event_median": stats.Median(devsPerEvent),
			"frac_small_events":     smallEvents,
			"mbox_frac_median":      stats.Median(mboxFracs),
		},
	}
}
