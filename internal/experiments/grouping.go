package experiments

import (
	"fmt"
	"strings"
	"time"

	"mpa/internal/practices"
	"mpa/internal/report"
	"mpa/internal/stats"
)

// AblationGrouping compares the paper's time-only change-event grouping
// against the type/entity-aware refinement it proposes as future work
// (§2.2): per network-month, the refined grouping can only split events,
// separating unrelated operations that interleave in time.
func AblationGrouping(env *Env) Report {
	const delta = 5 * time.Minute
	var plainCounts, typedCounts, splitRatios []float64
	var plainDevs, typedDevs []float64
	for _, name := range env.sortedNetworkNames() {
		for _, ma := range env.Analysis[name] {
			if len(ma.Changes) == 0 {
				continue
			}
			plain := practices.GroupChanges(ma.Changes, delta)
			typed := practices.GroupChangesTyped(ma.Changes, delta)
			plainCounts = append(plainCounts, float64(len(plain)))
			typedCounts = append(typedCounts, float64(len(typed)))
			if len(plain) > 0 {
				splitRatios = append(splitRatios, float64(len(typed))/float64(len(plain)))
			}
			plainDevs = append(plainDevs, meanGroupDevices(plain))
			typedDevs = append(typedDevs, meanGroupDevices(typed))
		}
	}
	tb := report.NewTable("Grouping", "Median events/month", "Mean devices/event")
	tb.AddRow("time-only (paper)", report.F(stats.Median(plainCounts)), report.F(stats.Mean(plainDevs)))
	tb.AddRow("time+type (future work)", report.F(stats.Median(typedCounts)), report.F(stats.Mean(typedDevs)))
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nRefined grouping splits %.1f%% more events on average (ratio %s);\n",
		100*(stats.Mean(splitRatios)-1), report.F(stats.Mean(splitRatios)))
	b.WriteString("unrelated interleaved operations no longer fuse into one event.\n")
	return Report{
		ID:    "ablation-grouping",
		Title: "Ablation: time-only vs type-aware change-event grouping (paper future work)",
		Text:  b.String(),
		Numbers: map[string]float64{
			"plain_median":     stats.Median(plainCounts),
			"typed_median":     stats.Median(typedCounts),
			"mean_split_ratio": stats.Mean(splitRatios),
		},
	}
}

func meanGroupDevices(groups [][]practices.ChangeDetail) float64 {
	if len(groups) == 0 {
		return 0
	}
	total := 0
	for _, g := range groups {
		devs := map[string]bool{}
		for _, c := range g {
			devs[c.Device] = true
		}
		total += len(devs)
	}
	return float64(total) / float64(len(groups))
}
