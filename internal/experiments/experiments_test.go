package experiments

import (
	"strings"
	"testing"
	"time"

	"mpa/internal/months"
	"mpa/internal/osp"
	"mpa/internal/practices"
)

// testEnv is a medium-scale environment shared by all experiment tests:
// large enough for the statistical machinery to produce stable shapes,
// small enough to keep the suite fast.
var testEnv = mustEnv()

func mustEnv() *Env {
	p := osp.Small(21)
	p.Networks = 240
	p.Start = months.Month{Year: 2014, Mon: time.January}
	p.End = months.Month{Year: 2014, Mon: time.October}
	env, err := NewEnv(p)
	if err != nil {
		panic(err)
	}
	return env
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"figure2", "figure3", "figure4", "figure5", "table2", "figure6",
		"table3", "table4", "table5", "table6", "table7", "table8",
		"section61", "figure8", "figure9", "figure10", "table9",
		"figure11", "figure12", "figure13",
		"ablation-binning", "ablation-matching", "ablation-learners",
		"ablation-grouping",
	}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestRunByID(t *testing.T) {
	r, ok := Run(testEnv, "figure2")
	if !ok || r.ID != "figure2" {
		t.Fatalf("Run(figure2) = %v, %v", r.ID, ok)
	}
	if _, ok := Run(testEnv, "no-such"); ok {
		t.Error("unknown experiment id resolved")
	}
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	for _, entry := range Registry() {
		r := entry.Run(testEnv)
		if r.ID != entry.ID {
			t.Errorf("%s: report id %q", entry.ID, r.ID)
		}
		if r.Title == "" || r.Text == "" {
			t.Errorf("%s: empty title or text", entry.ID)
		}
		if len(r.Numbers) == 0 {
			t.Errorf("%s: no structured numbers", entry.ID)
		}
	}
}

func TestFigure2SurveyShape(t *testing.T) {
	r := Figure2(testEnv)
	if r.Numbers["high:No. of change events"] <= 25 {
		t.Error("change-events consensus missing")
	}
	if !strings.Contains(r.Text, "No. of change events") {
		t.Error("survey text incomplete")
	}
}

func TestTable2Scale(t *testing.T) {
	r := Table2(testEnv)
	if r.Numbers["networks"] != 240 {
		t.Errorf("networks = %v", r.Numbers["networks"])
	}
	if r.Numbers["snapshots"] <= r.Numbers["devices"] {
		t.Error("fewer snapshots than devices")
	}
	if r.Numbers["tickets"] <= 0 {
		t.Error("no tickets")
	}
}

func TestFigure3DeltaMonotone(t *testing.T) {
	r := Figure3(testEnv)
	// Larger delta => no more events (median can only fall).
	prev := r.Numbers["median:0"]
	for _, d := range []int{1, 2, 5, 10, 15, 30} {
		cur := r.Numbers[medianKey(d)]
		if cur > prev+1e-9 {
			t.Errorf("median events increased at delta=%d: %v > %v", d, cur, prev)
		}
		prev = cur
	}
}

func medianKey(d int) string {
	return "median:" + itoa(d)
}

func itoa(d int) string {
	if d == 0 {
		return "0"
	}
	var digits []byte
	for d > 0 {
		digits = append([]byte{byte('0' + d%10)}, digits...)
		d /= 10
	}
	return string(digits)
}

func TestFigure4Shapes(t *testing.T) {
	r := Figure4(testEnv)
	// Models and roles have monotone-leaning relationships with tickets.
	if r.Numbers["monotone:"+practices.MetricModels] < 0.5 {
		t.Errorf("models relationship not increasing: %v", r.Numbers["monotone:"+practices.MetricModels])
	}
	if r.Numbers["monotone:"+practices.MetricRoles] < 0.5 {
		t.Errorf("roles relationship not increasing: %v", r.Numbers["monotone:"+practices.MetricRoles])
	}
}

func TestFigure5Confounding(t *testing.T) {
	r := Figure5(testEnv)
	if r.Numbers["roles_models_correlation"] < 0.2 {
		t.Errorf("roles/models correlation = %v, expected positive confounding",
			r.Numbers["roles_models_correlation"])
	}
}

func TestFigure6StrongMonotone(t *testing.T) {
	r := Figure6(testEnv)
	for _, m := range []string{practices.MetricDevices, practices.MetricChangeEvents} {
		if r.Numbers["monotone:"+m] < 0.7 {
			t.Errorf("%s: monotone score %v, want >= 0.7", m, r.Numbers["monotone:"+m])
		}
	}
}

func TestTable3TopPractices(t *testing.T) {
	r := Table3(testEnv)
	// The paper's #1 and #2 (devices, change events) must rank highly.
	if r.Numbers["rank:"+practices.MetricDevices] > 6 {
		t.Errorf("no_devices rank = %v, want top 6", r.Numbers["rank:"+practices.MetricDevices])
	}
	if r.Numbers["rank:"+practices.MetricChangeEvents] > 6 {
		t.Errorf("no_change_events rank = %v, want top 6", r.Numbers["rank:"+practices.MetricChangeEvents])
	}
	// The complexity metrics must show nonzero statistical dependence
	// despite having no direct causal weight — pure confounding. In our
	// synthetic OSP the inter-device variant carries the stronger proxy
	// signal (the paper's data had intra-device complexity at rank 3);
	// both must stay non-causal (checked in TestTable7CausalRecovery).
	if r.Numbers["rank:"+practices.MetricInterComplexity] > 14 {
		t.Errorf("inter-device complexity rank = %v, want top 14",
			r.Numbers["rank:"+practices.MetricInterComplexity])
	}
	if r.Numbers["mi:"+practices.MetricIntraComplexity] <= 0 {
		t.Error("intra-device complexity has zero MI")
	}
	// Middlebox-change fraction must NOT rank in the top 10 (paper: rank
	// 23 of 28, contradicting operator opinion).
	if r.Numbers["rank:"+practices.MetricFracEventsMbox] <= 10 {
		t.Errorf("mbox fraction rank = %v, expected outside top 10",
			r.Numbers["rank:"+practices.MetricFracEventsMbox])
	}
}

func TestTable4PairsPlausible(t *testing.T) {
	r := Table4(testEnv)
	if r.Numbers["top10_in_pairs"] < 2 {
		t.Errorf("only %v of MI top-10 appear in top CMI pairs", r.Numbers["top10_in_pairs"])
	}
}

func TestTable5MatchingQuality(t *testing.T) {
	r := Table5(testEnv)
	// The 1:2 point must produce a healthy number of pairs, with
	// replacement visible (distinct untreated < pairs) and balanced
	// propensity scores.
	if r.Numbers["pairs:1:2"] < 50 {
		t.Fatalf("1:2 pairs = %v", r.Numbers["pairs:1:2"])
	}
	if r.Numbers["untreated_matched:1:2"] > r.Numbers["pairs:1:2"] {
		t.Error("distinct untreated exceeds pairs")
	}
	if r.Numbers["ps_diff:1:2"] > 0.25 {
		t.Errorf("propensity std diff = %v", r.Numbers["ps_diff:1:2"])
	}
	if v := r.Numbers["ps_var:1:2"]; v < 0.5 || v > 2 {
		t.Errorf("propensity var ratio = %v", v)
	}
}

func TestTable6ChangeEventsCausal(t *testing.T) {
	r := Table6(testEnv)
	// The paper's flagship causal result: more change events cause more
	// tickets at the 1:2 point. At this medium test scale the sign test
	// has a fraction of the paper's power, so require strong evidence
	// rather than the full alpha=0.001 bar (the paper-scale run clears
	// it: see EXPERIMENTS.md).
	if r.Numbers["p:1:2"] >= 0.01 {
		t.Errorf("1:2 p-value = %v, want < 0.01", r.Numbers["p:1:2"])
	}
	if r.Numbers["more:1:2"] <= r.Numbers["fewer:1:2"] {
		t.Error("treated cases do not show more tickets")
	}
}

func TestTable7CausalRecovery(t *testing.T) {
	r := Table7(testEnv)
	// Ground truth: devices, events, change types, VLANs, models, roles,
	// devices/event, ACL fraction are causal; intra-complexity and
	// interface fraction are not. At this medium scale the sign test has
	// limited power and some matchings are imbalanced, so require at
	// least two causal flags (the paper-scale run recovers more; see
	// EXPERIMENTS.md) and, critically, no false flags on the confounded
	// practices.
	if r.Numbers["causal_count"] < 2 {
		t.Errorf("causal count = %v, want >= 2 of 10", r.Numbers["causal_count"])
	}
	for _, confounded := range []string{
		practices.MetricIntraComplexity,
		practices.MetricInterComplexity,
		practices.MetricFracEventsIface,
	} {
		if v, ok := r.Numbers["causal:"+confounded]; ok && v == 1 {
			t.Errorf("%s flagged causal — it has no direct effect", confounded)
		}
	}
	if v, ok := r.Numbers["p:"+practices.MetricChangeEvents]; ok && v > 0.2 {
		t.Errorf("change events p-value = %v, want strong evidence at this scale", v)
	}
}

func TestTable8UpperBinsSparse(t *testing.T) {
	r := Table8(testEnv)
	if r.Numbers["imbalanced_frac"] < 0.1 {
		t.Errorf("imbalanced fraction = %v, expected sparse upper bins (paper: >1/3)",
			r.Numbers["imbalanced_frac"])
	}
}

func TestSection61ModelOrdering(t *testing.T) {
	r := Section61(testEnv)
	if r.Numbers["dt_accuracy"] <= r.Numbers["majority_accuracy"] {
		t.Errorf("tree %.3f <= majority %.3f", r.Numbers["dt_accuracy"], r.Numbers["majority_accuracy"])
	}
	if r.Numbers["dt_accuracy"] < 0.7 {
		t.Errorf("tree accuracy = %v", r.Numbers["dt_accuracy"])
	}
	// Healthy class dominates: high precision/recall there.
	if r.Numbers["dt_rec_healthy"] < 0.8 {
		t.Errorf("healthy recall = %v", r.Numbers["dt_rec_healthy"])
	}
}

func TestFigure8OversamplingHelps(t *testing.T) {
	r := Figure8(testEnv)
	// Oversampling must lift recall of at least one intermediate class
	// relative to the plain tree (the paper's core Figure 8 claim).
	improved := false
	for _, cls := range []string{"Good", "Moderate", "Poor"} {
		plain := r.Numbers["recall:DT:"+cls]
		os := r.Numbers["recall:DT+OS:"+cls]
		if os > plain {
			improved = true
		}
	}
	if !improved {
		t.Error("oversampling did not lift any intermediate-class recall")
	}
}

func TestFigure9Skew(t *testing.T) {
	r := Figure9(testEnv)
	if f := r.Numbers["healthy_frac"]; f < 0.5 || f > 0.85 {
		t.Errorf("healthy fraction = %v, want ~0.65", f)
	}
	if f := r.Numbers["excellent_frac"]; f < 0.6 || f > 0.9 {
		t.Errorf("excellent fraction = %v, want ~0.73", f)
	}
	if r.Numbers["poor_frac"] > 0.15 {
		t.Errorf("poor fraction = %v, too heavy", r.Numbers["poor_frac"])
	}
}

func TestFigure10TreeStructure(t *testing.T) {
	r := Figure10(testEnv)
	if r.Numbers["depth_2class"] < 1 {
		t.Error("2-class tree is a lone leaf")
	}
	if !strings.Contains(r.Text, "No. of") {
		t.Error("tree render missing feature names")
	}
}

func TestTable9OnlineAccuracy(t *testing.T) {
	r := Table9(testEnv)
	// 2-class online accuracy should be solidly above the majority rate
	// and roughly flat in M; 5-class lower but reasonable.
	for _, m := range []string{"M1", "M3", "M6", "M9"} {
		if v, ok := r.Numbers["acc2:"+m]; ok && v < 0.7 {
			t.Errorf("2-class %s accuracy = %v", m, v)
		}
		if v, ok := r.Numbers["acc5:"+m]; ok && v < 0.5 {
			t.Errorf("5-class %s accuracy = %v", m, v)
		}
	}
	if _, ok := r.Numbers["acc2:M3"]; !ok {
		t.Fatal("M=3 missing")
	}
}

func TestFigure11DesignShapes(t *testing.T) {
	r := Figure11(testEnv)
	if v := r.Numbers["bgp_usage"]; v < 0.7 || v > 1 {
		t.Errorf("BGP usage = %v, want ~0.86", v)
	}
	if v := r.Numbers["ospf_usage"]; v < 0.1 || v > 0.6 {
		t.Errorf("OSPF usage = %v, want ~0.31", v)
	}
	if r.Numbers["vlans_frac_over100"] <= 0 {
		t.Error("no networks with >100 VLANs — tail missing")
	}
	if r.Numbers["hw_entropy_median"] <= 0 || r.Numbers["hw_entropy_median"] >= 1 {
		t.Errorf("hardware entropy median = %v", r.Numbers["hw_entropy_median"])
	}
}

func TestFigure12OperationalShapes(t *testing.T) {
	r := Figure12(testEnv)
	if v := r.Numbers["size_change_correlation"]; v < 0.3 {
		t.Errorf("size/change correlation = %v, want positive (paper 0.64)", v)
	}
	// Interface changes are the most common type.
	iface := r.Numbers["type_median:iface"]
	for _, other := range []string{"pool", "acl", "user", "router"} {
		if r.Numbers["type_median:"+other] > iface {
			t.Errorf("%s median %v exceeds iface %v", other, r.Numbers["type_median:"+other], iface)
		}
	}
	if r.Numbers["events_p90"] <= r.Numbers["events_p10"] {
		t.Error("event-rate spread missing")
	}
}

func TestFigure13EventShapes(t *testing.T) {
	r := Figure13(testEnv)
	if v := r.Numbers["devs_per_event_median"]; v < 1 || v > 4 {
		t.Errorf("devices/event median = %v", v)
	}
	if r.Numbers["frac_small_events"] < 0.4 {
		t.Errorf("small-event fraction = %v, want most events small", r.Numbers["frac_small_events"])
	}
}

func TestAblationBinningShowsCollapse(t *testing.T) {
	r := AblationBinning(testEnv)
	if r.Numbers["naive_max_frac"] <= r.Numbers["paper_max_frac"] {
		t.Errorf("naive binning (%v) not worse than anchored (%v)",
			r.Numbers["naive_max_frac"], r.Numbers["paper_max_frac"])
	}
}

func TestAblationMatchingExactStarves(t *testing.T) {
	r := AblationMatching(testEnv)
	if r.Numbers["pairs:exact"]*5 > r.Numbers["pairs:propensity"] {
		t.Errorf("exact pairs %v vs propensity %v — exact should starve",
			r.Numbers["pairs:exact"], r.Numbers["pairs:propensity"])
	}
}

func TestAblationLearnersOrdering(t *testing.T) {
	r := AblationLearners(testEnv)
	if r.Numbers["accuracy:DT"] <= r.Numbers["accuracy:Majority"]-0.05 {
		t.Errorf("DT %.3f well below majority %.3f",
			r.Numbers["accuracy:DT"], r.Numbers["accuracy:Majority"])
	}
	if r.Numbers["mean_recall:DT+AB+OS"] < r.Numbers["mean_recall:DT"]-0.02 {
		t.Errorf("AB+OS mean recall %.3f below plain DT %.3f",
			r.Numbers["mean_recall:DT+AB+OS"], r.Numbers["mean_recall:DT"])
	}
}

func TestEnvDeterministic(t *testing.T) {
	p := osp.Small(33)
	p.Networks = 12
	a, err := NewEnv(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEnv(p)
	if err != nil {
		t.Fatal(err)
	}
	ra := Table3(a)
	rb := Table3(b)
	if ra.Text != rb.Text {
		t.Error("Table3 not deterministic across identical envs")
	}
}

// TestWorkerCountInvariance is the parallelism regression gate: an Env
// built with one worker and an Env built with eight must agree on every
// registered experiment, byte for byte. Any scheduling-order dependence
// in generation, inference, or an experiment shows up here.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two full envs")
	}
	p := osp.Small(33)
	p.Networks = 12
	p.Workers = 1
	seq, err := NewEnv(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 8
	parEnv, err := NewEnv(p)
	if err != nil {
		t.Fatal(err)
	}
	got := RunAll(parEnv, nil, 8)
	want := RunAll(seq, nil, 1)
	if len(got) != len(want) {
		t.Fatalf("RunAll lengths differ: %d vs %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.ID != w.ID || g.OK != w.OK {
			t.Fatalf("result[%d] = (%s, %v), want (%s, %v)", i, g.ID, g.OK, w.ID, w.OK)
		}
		if g.Report.Text != w.Report.Text {
			t.Errorf("%s: Text differs between workers=1 and workers=8", w.ID)
		}
		if len(g.Report.Numbers) != len(w.Report.Numbers) {
			t.Errorf("%s: Numbers has %d keys at workers=8, %d at workers=1",
				w.ID, len(g.Report.Numbers), len(w.Report.Numbers))
			continue
		}
		for k, wv := range w.Report.Numbers {
			if gv, ok := g.Report.Numbers[k]; !ok || gv != wv {
				t.Errorf("%s: Numbers[%q] = %v at workers=8, want %v", w.ID, k, gv, wv)
			}
		}
	}
}

func TestAblationGroupingRefines(t *testing.T) {
	r := AblationGrouping(testEnv)
	if r.Numbers["mean_split_ratio"] < 1 {
		t.Errorf("split ratio = %v, refinement can only split", r.Numbers["mean_split_ratio"])
	}
	if r.Numbers["typed_median"] < r.Numbers["plain_median"] {
		t.Errorf("typed median %v < plain median %v",
			r.Numbers["typed_median"], r.Numbers["plain_median"])
	}
}
