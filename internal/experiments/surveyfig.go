package experiments

import (
	"fmt"
	"strings"

	"mpa/internal/report"
	"mpa/internal/survey"
)

// Figure2 renders the operator-survey results: for each practice, the
// distribution of impact opinions across the 51 respondents.
func Figure2(_ *Env) Report {
	var b strings.Builder
	numbers := map[string]float64{}
	tb := report.NewTable("Practice", "None", "Low", "Medium", "High", "Unsure", "Majority")
	for _, p := range survey.Results() {
		tb.AddRow(p.Practice,
			fmt.Sprint(p.Counts[survey.NoImpact]),
			fmt.Sprint(p.Counts[survey.LowImpact]),
			fmt.Sprint(p.Counts[survey.MediumImpact]),
			fmt.Sprint(p.Counts[survey.HighImpact]),
			fmt.Sprint(p.Counts[survey.NotSure]),
			p.MajorityOpinion().String())
		numbers["high:"+p.Practice] = float64(p.Counts[survey.HighImpact])
		numbers["low:"+p.Practice] = float64(p.Counts[survey.LowImpact])
	}
	b.WriteString(tb.String())
	b.WriteString("\nConsensus exists only for 'No. of change events' (high impact);\n")
	b.WriteString("the remaining practices draw a diversity of opinions (paper §3.1).\n")
	return Report{
		ID:      "figure2",
		Title:   "Figure 2: results of the 51-operator survey on practice impact",
		Text:    b.String(),
		Numbers: numbers,
	}
}
