package experiments

import (
	"fmt"
	"strings"

	"mpa/internal/dataset"
	"mpa/internal/ml"
	"mpa/internal/practices"
	"mpa/internal/report"
	"mpa/internal/rng"
	"mpa/internal/stats"
)

// learnBins is the paper's bin count for model features (§6.1: 5 bins, not
// 10, because the data is insufficient for fine-grained models).
const learnBins = 5

// cvFolds is the paper's cross-validation fold count.
const cvFolds = 5

// features5 returns the binned feature matrix with 5 bins per metric.
func features5(env *Env) [][]int {
	return env.Data.Bin(learnBins).FeatureMatrix()
}

// trainerDT fits a plain pruned decision tree.
func trainerDT(classes int) ml.Trainer {
	return func(X [][]int, y []int) ml.Classifier {
		return ml.TrainTree(X, y, nil, classes, ml.DefaultTreeConfig())
	}
}

// trainerDTAB fits the paper's boosted tree (15 rounds, last-tree mode).
func trainerDTAB(classes int) ml.Trainer {
	return func(X [][]int, y []int) ml.Classifier {
		return ml.TrainAdaBoost(X, y, classes, ml.DefaultBoostConfig())
	}
}

// oversampler returns the paper's class-specific oversampling for the
// given class count.
func oversampler(classes int) func([][]int, []int) ([][]int, []int) {
	if classes == 2 {
		return ml.Oversample2Class
	}
	return ml.Oversample5Class
}

// trainerDTOS fits a tree on oversampled data.
func trainerDTOS(classes int) ml.Trainer {
	os := oversampler(classes)
	return func(X [][]int, y []int) ml.Classifier {
		ox, oy := os(X, y)
		return ml.TrainTree(ox, oy, nil, classes, ml.DefaultTreeConfig())
	}
}

// trainerDTABOS fits the paper's best 5-class model: oversampling plus
// AdaBoost.
func trainerDTABOS(classes int) ml.Trainer {
	os := oversampler(classes)
	return func(X [][]int, y []int) ml.Classifier {
		ox, oy := os(X, y)
		return ml.TrainAdaBoost(ox, oy, classes, ml.DefaultBoostConfig())
	}
}

// Section61 reproduces the 2-class results of §6.1: the pruned decision
// tree's cross-validation accuracy and per-class precision/recall against
// the majority-class and SVM baselines.
func Section61(env *Env) Report {
	X := features5(env)
	y := env.Data.Labels2()
	dt := ml.CrossValidate(X, y, 2, cvFolds, trainerDT(2), rng.New(env.Params.Seed+101))
	maj := ml.CrossValidate(X, y, 2, cvFolds, func(_ [][]int, ty []int) ml.Classifier {
		return ml.TrainMajority(ty, 2)
	}, rng.New(env.Params.Seed+101))
	svm := ml.CrossValidate(X, y, 2, cvFolds, func(tx [][]int, ty []int) ml.Classifier {
		return ml.TrainSVM(tx, ty, 2, ml.DefaultSVMConfig(), rng.New(env.Params.Seed+202))
	}, rng.New(env.Params.Seed+101))

	tb := report.NewTable("Model", "Accuracy",
		"Prec(healthy)", "Rec(healthy)", "Prec(unhealthy)", "Rec(unhealthy)")
	row := func(name string, ev ml.Evaluation) {
		tb.AddRow(name, fmt.Sprintf("%.3f", ev.Accuracy),
			fmt.Sprintf("%.2f", ev.Precision[0]), fmt.Sprintf("%.2f", ev.Recall[0]),
			fmt.Sprintf("%.2f", ev.Precision[1]), fmt.Sprintf("%.2f", ev.Recall[1]))
	}
	row("Decision tree (pruned)", dt)
	row("Majority class", maj)
	row("Linear SVM", svm)
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nPaper: tree 91.6% vs majority 64.8%; SVM performed worse than majority\n")
	b.WriteString("because unhealthy cases concentrate in a small part of practice space.\n")
	return Report{
		ID:    "section61",
		Title: "Section 6.1: 2-class model quality (5-fold cross-validation)",
		Text:  b.String(),
		Numbers: map[string]float64{
			"dt_accuracy":       dt.Accuracy,
			"majority_accuracy": maj.Accuracy,
			"svm_accuracy":      svm.Accuracy,
			"dt_prec_healthy":   dt.Precision[0],
			"dt_rec_healthy":    dt.Recall[0],
			"dt_prec_unhealthy": dt.Precision[1],
			"dt_rec_unhealthy":  dt.Recall[1],
		},
	}
}

// Figure8 compares the four 5-class model variants: plain tree, AdaBoost,
// oversampling, and both (paper Figure 8: per-class precision and recall).
func Figure8(env *Env) Report {
	X := features5(env)
	y := env.Data.Labels5()
	variants := []struct {
		name    string
		trainer ml.Trainer
	}{
		{"DT", trainerDT(5)},
		{"DT+AB", trainerDTAB(5)},
		{"DT+OS", trainerDTOS(5)},
		{"DT+AB+OS", trainerDTABOS(5)},
	}
	numbers := map[string]float64{}
	var b strings.Builder
	for _, section := range []string{"Precision", "Recall"} {
		tb := report.NewTable(append([]string{section}, dataset.Class5Names...)...)
		for _, v := range variants {
			ev := ml.CrossValidate(X, y, 5, cvFolds, v.trainer, rng.New(env.Params.Seed+303))
			cells := []string{v.name}
			for c := 0; c < 5; c++ {
				val := ev.Precision[c]
				if section == "Recall" {
					val = ev.Recall[c]
				}
				cells = append(cells, fmt.Sprintf("%.2f", val))
				key := fmt.Sprintf("%s:%s:%s", strings.ToLower(section), v.name, dataset.Class5Names[c])
				numbers[key] = val
			}
			tb.AddRow(cells...)
			numbers["accuracy:"+v.name] = ev.Accuracy
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	b.WriteString("Oversampling lifts the intermediate classes; AB+OS is the best overall (paper §6.1).\n")
	return Report{
		ID:      "figure8",
		Title:   "Figure 8: accuracy of 5-class models (DT / +AB / +OS / +AB+OS)",
		Text:    b.String(),
		Numbers: numbers,
	}
}

// Figure9 shows the health-class distributions that cause the skew
// problem (paper Figure 9).
func Figure9(env *Env) Report {
	y2 := env.Data.Labels2()
	y5 := env.Data.Labels5()
	count := func(y []int, classes int) []int {
		out := make([]int, classes)
		for _, c := range y {
			out[c]++
		}
		return out
	}
	c2 := count(y2, 2)
	c5 := count(y5, 5)
	var b strings.Builder
	b.WriteString("(a) 2 classes:\n")
	b.WriteString(report.Histogram(dataset.Class2Names, c2))
	b.WriteString("(b) 5 classes:\n")
	b.WriteString(report.Histogram(dataset.Class5Names, c5))
	total := float64(len(y2))
	fmt.Fprintf(&b, "\nHealthy fraction %.1f%% (paper ~64.8%%); excellent fraction %.1f%% (paper ~73%%).\n",
		100*float64(c2[0])/total, 100*float64(c5[0])/total)
	numbers := map[string]float64{
		"healthy_frac":   float64(c2[0]) / total,
		"excellent_frac": float64(c5[0]) / total,
		"poor_frac":      float64(c5[3]) / total,
		"verypoor_frac":  float64(c5[4]) / total,
		"cases":          total,
	}
	return Report{
		ID:      "figure9",
		Title:   "Figure 9: health class distribution",
		Text:    b.String(),
		Numbers: numbers,
	}
}

// Figure10 renders the top of the best 2-class and 5-class decision trees
// (paper Figure 10), and checks the paper's structural observation: the
// root is the practice with the strongest statistical dependence.
func Figure10(env *Env) Report {
	X := features5(env)
	featureNames := make([]string, len(practices.MetricNames))
	for i, m := range practices.MetricNames {
		featureNames[i] = practices.DisplayName(m)
	}
	// 5-class: oversample, then a single tree for interpretability (the
	// ensemble's vote has no single rendering; the oversampled tree shares
	// its structure with the best model's base learners).
	ox5, oy5 := ml.Oversample5Class(X, env.Data.Labels5())
	t5 := ml.TrainTree(ox5, oy5, nil, 5, ml.DefaultTreeConfig())
	t2 := ml.TrainTree(X, env.Data.Labels2(), nil, 2, ml.DefaultTreeConfig())

	var b strings.Builder
	b.WriteString("(a) 5-class tree (top 3 levels):\n")
	b.WriteString(t5.Render(featureNames, dataset.Class5Names, 3))
	b.WriteString("\n(b) 2-class tree (top 3 levels):\n")
	b.WriteString(t2.Render(featureNames, dataset.Class2Names, 3))

	topMI := MIRanking(env)[0].Metric
	rootMetric := ""
	if rf := t2.RootFeature(); rf >= 0 {
		rootMetric = practices.MetricNames[rf]
	}
	fmt.Fprintf(&b, "\n2-class root split: %s; top-MI practice: %s\n",
		practices.DisplayName(rootMetric), practices.DisplayName(topMI))
	rootIsTop := 0.0
	if rootMetric == topMI {
		rootIsTop = 1
	}
	return Report{
		ID:    "figure10",
		Title: "Figure 10: decision tree structure",
		Text:  b.String(),
		Numbers: map[string]float64{
			"root_is_top_mi": rootIsTop,
			"depth_2class":   float64(t2.Depth()),
			"nodes_2class":   float64(t2.NodeCount()),
			"depth_5class":   float64(t5.Depth()),
		},
	}
}

// binnedWith bins a dataset's features using previously fitted binners
// (training-time bin edges applied to later data, as online prediction
// requires).
func binnedWith(d *dataset.Dataset, binners map[string]*stats.Binner) [][]int {
	rows := make([][]int, d.Len())
	for i := range rows {
		row := make([]int, len(practices.MetricNames))
		for j, metric := range practices.MetricNames {
			row[j] = binners[metric].Bin(d.Cases[i].Metrics[metric])
		}
		rows[i] = row
	}
	return rows
}

// Table9 reproduces online prediction: train on months t-M..t-1, predict
// month t, average accuracy over t (paper Table 9, M in {1, 3, 6, 9}).
func Table9(env *Env) Report {
	window := env.Window()
	histories := []int{1, 3, 6, 9}
	// Skip histories longer than the window allows.
	tb := report.NewTable("M (months)", "5-class accuracy", "2-class accuracy")
	numbers := map[string]float64{}
	for _, M := range histories {
		if M >= len(window) {
			continue
		}
		var acc2, acc5 []float64
		for ti := M; ti < len(window); ti++ {
			t := window[ti]
			train := env.Data.FilterMonths(window[ti-M], window[ti-1])
			test := env.Data.FilterMonths(t, t)
			if train.Len() == 0 || test.Len() == 0 {
				continue
			}
			binned := train.Bin(learnBins)
			trX := binned.FeatureMatrix()
			teX := binnedWith(test, binned.Binners)

			// 2-class: plain pruned tree.
			t2 := ml.TrainTree(trX, train.Labels2(), nil, 2, ml.DefaultTreeConfig())
			correct := 0
			y2 := test.Labels2()
			for i := range teX {
				if t2.Predict(teX[i]) == y2[i] {
					correct++
				}
			}
			acc2 = append(acc2, float64(correct)/float64(len(teX)))

			// 5-class: the best model (oversampling + boosting).
			ox, oy := ml.Oversample5Class(trX, train.Labels5())
			t5 := ml.TrainAdaBoost(ox, oy, 5, ml.DefaultBoostConfig())
			correct = 0
			y5 := test.Labels5()
			for i := range teX {
				if t5.Predict(teX[i]) == y5[i] {
					correct++
				}
			}
			acc5 = append(acc5, float64(correct)/float64(len(teX)))
		}
		if len(acc2) == 0 {
			continue
		}
		m5, m2 := stats.Mean(acc5), stats.Mean(acc2)
		tb.AddRow(fmt.Sprint(M), fmt.Sprintf("%.3f", m5), fmt.Sprintf("%.3f", m2))
		numbers[fmt.Sprintf("acc5:M%d", M)] = m5
		numbers[fmt.Sprintf("acc2:M%d", M)] = m2
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nPaper: 2-class ~0.88-0.90 regardless of M; 5-class improves with history\n")
	b.WriteString("(0.73 at M=1 to 0.78 at M=9), with diminishing returns.\n")
	return Report{
		ID:      "table9",
		Title:   "Table 9: accuracy of future health predictions",
		Text:    b.String(),
		Numbers: numbers,
	}
}

// AblationLearners compares the full learner zoo on the 5-class task:
// plain/boosted/oversampled trees, random-forest variants, SVM, and the
// majority baseline (paper Figure 8 + footnote 2).
func AblationLearners(env *Env) Report {
	X := features5(env)
	y := env.Data.Labels5()
	entries := []struct {
		name    string
		trainer ml.Trainer
	}{
		{"Majority", func(_ [][]int, ty []int) ml.Classifier { return ml.TrainMajority(ty, 5) }},
		{"DT", trainerDT(5)},
		{"DT+AB+OS", trainerDTABOS(5)},
		{"RF-plain", func(tx [][]int, ty []int) ml.Classifier {
			return ml.TrainForest(tx, ty, 5, ml.DefaultForestConfig(), rng.New(env.Params.Seed+404))
		}},
		{"RF-balanced", func(tx [][]int, ty []int) ml.Classifier {
			cfg := ml.DefaultForestConfig()
			cfg.Variant = ml.ForestBalanced
			return ml.TrainForest(tx, ty, 5, cfg, rng.New(env.Params.Seed+404))
		}},
		{"RF-weighted", func(tx [][]int, ty []int) ml.Classifier {
			cfg := ml.DefaultForestConfig()
			cfg.Variant = ml.ForestWeighted
			return ml.TrainForest(tx, ty, 5, cfg, rng.New(env.Params.Seed+404))
		}},
		{"SVM", func(tx [][]int, ty []int) ml.Classifier {
			return ml.TrainSVM(tx, ty, 5, ml.DefaultSVMConfig(), rng.New(env.Params.Seed+505))
		}},
	}
	tb := report.NewTable("Learner", "Accuracy", "Min class recall", "Mean class recall")
	numbers := map[string]float64{}
	for _, e := range entries {
		ev := ml.CrossValidate(X, y, 5, cvFolds, e.trainer, rng.New(env.Params.Seed+606))
		minRec, sumRec := 1.0, 0.0
		present := 0
		for c := 0; c < 5; c++ {
			actual := 0
			for o := 0; o < 5; o++ {
				actual += ev.Confusion[c][o]
			}
			if actual == 0 {
				continue
			}
			present++
			sumRec += ev.Recall[c]
			if ev.Recall[c] < minRec {
				minRec = ev.Recall[c]
			}
		}
		meanRec := 0.0
		if present > 0 {
			meanRec = sumRec / float64(present)
		}
		tb.AddRow(e.name, fmt.Sprintf("%.3f", ev.Accuracy),
			fmt.Sprintf("%.2f", minRec), fmt.Sprintf("%.2f", meanRec))
		numbers["accuracy:"+e.name] = ev.Accuracy
		numbers["mean_recall:"+e.name] = meanRec
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nPaper footnote 2: neither balanced nor weighted random forests improve\n")
	b.WriteString("minority-class accuracy beyond boosting + oversampling.\n")
	return Report{
		ID:      "ablation-learners",
		Title:   "Ablation: learner comparison on the 5-class task",
		Text:    b.String(),
		Numbers: numbers,
	}
}

// AblationBinning compares the paper's 5/95-percentile-anchored binning
// against naive min-max equal-width binning on a long-tailed practice
// (§5.1.1's motivation).
func AblationBinning(env *Env) Report {
	metric := practices.MetricChangeEvents
	values := env.Data.Values(metric)
	occupancy := func(binned []int, bins int) (distinct int, maxFrac float64) {
		counts := make([]int, bins)
		for _, b := range binned {
			counts[b]++
		}
		max := 0
		for _, c := range counts {
			if c > 0 {
				distinct++
			}
			if c > max {
				max = c
			}
		}
		return distinct, float64(max) / float64(len(binned))
	}
	paperBinned, _ := stats.BinValues(values, 10)
	naive := stats.NewBinnerBounds(stats.Min(values), stats.Max(values), 10)
	naiveBinned := naive.BinAll(values)

	pd, pf := occupancy(paperBinned, 10)
	nd, nf := occupancy(naiveBinned, 10)
	tb := report.NewTable("Binning", "Bins occupied", "Largest bin fraction")
	tb.AddRow("5/95-percentile anchored", fmt.Sprint(pd), fmt.Sprintf("%.2f", pf))
	tb.AddRow("naive min-max", fmt.Sprint(nd), fmt.Sprintf("%.2f", nf))
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nLong-tailed metric (%s): naive binning collapses the bulk into few bins.\n",
		practices.DisplayName(metric))
	return Report{
		ID:    "ablation-binning",
		Title: "Ablation: percentile-anchored vs naive equal-width binning",
		Text:  b.String(),
		Numbers: map[string]float64{
			"paper_max_frac": pf,
			"naive_max_frac": nf,
			"paper_occupied": float64(pd),
			"naive_occupied": float64(nd),
		},
	}
}
