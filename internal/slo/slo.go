// Package slo defines latency/error-rate service-level objectives and
// evaluates load-manifest results against them.
//
// A spec file (mpa.slo-spec/v1) names per-endpoint objectives:
//
//	{
//	  "schema": "mpa.slo-spec/v1",
//	  "endpoints": {
//	    "rank": {
//	      "max_error_rate": 0.01,
//	      "latency_ms": {"p50": 50, "p99": 500},
//	      "min_requests": 10
//	    }
//	  }
//	}
//
// Evaluate compares a spec against an mpa.load-manifest/v1 artifact
// (internal/loadgen) and returns one Check per objective, in
// deterministic order. An endpoint named in the spec but absent from
// the manifest is itself a violation — a gate that silently passes
// because the load run never exercised an endpoint is worse than a
// failing one. An endpoint with fewer than min_requests observations
// has its latency checks skipped (percentiles from a handful of
// samples gate nothing but noise); the error-rate check still runs.
//
// cmd/mpa-slogate wraps this into the CI gate: exit 0 when every check
// passes, exit 2 on any violation.
package slo

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"mpa/internal/loadgen"
)

// SpecSchema identifies the SLO spec format; bump on incompatible change.
const SpecSchema = "mpa.slo-spec/v1"

// Objective is the contract for one endpoint.
type Objective struct {
	// MaxErrorRate bounds errors/requests in [0,1]. Nil means no
	// error-rate objective for this endpoint.
	MaxErrorRate *float64 `json:"max_error_rate,omitempty"`
	// LatencyMS maps percentile name (p50/p90/p99/p999) to its upper
	// bound in milliseconds.
	LatencyMS map[string]float64 `json:"latency_ms,omitempty"`
	// MinRequests is the sample floor below which latency objectives
	// are skipped rather than enforced. Zero means enforce always.
	MinRequests int64 `json:"min_requests,omitempty"`
}

// Spec is a full SLO spec file.
type Spec struct {
	Schema    string               `json:"schema"`
	Endpoints map[string]Objective `json:"endpoints"`
}

// Validate checks internal consistency of the spec.
func (s *Spec) Validate() error {
	if s.Schema != SpecSchema {
		return fmt.Errorf("slo spec schema = %q, want %q", s.Schema, SpecSchema)
	}
	if len(s.Endpoints) == 0 {
		return fmt.Errorf("slo spec names no endpoints")
	}
	for ep, obj := range s.Endpoints {
		if obj.MaxErrorRate == nil && len(obj.LatencyMS) == 0 {
			return fmt.Errorf("endpoint %q: no objectives", ep)
		}
		if r := obj.MaxErrorRate; r != nil && (*r < 0 || *r > 1) {
			return fmt.Errorf("endpoint %q: max_error_rate = %v, want [0,1]", ep, *r)
		}
		for name, limit := range obj.LatencyMS {
			if _, ok := (loadgen.Latency{}).Percentile(name); !ok {
				return fmt.Errorf("endpoint %q: unknown percentile %q (want one of %v)",
					ep, name, loadgen.PercentileNames)
			}
			if limit <= 0 {
				return fmt.Errorf("endpoint %q: latency_ms.%s = %v, want > 0", ep, name, limit)
			}
		}
		if obj.MinRequests < 0 {
			return fmt.Errorf("endpoint %q: min_requests = %d, want >= 0", ep, obj.MinRequests)
		}
	}
	return nil
}

// ReadSpec loads and validates a spec file.
func ReadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read slo spec: %w", err)
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("parse slo spec %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("invalid slo spec %s: %w", path, err)
	}
	return &s, nil
}

// Check is one objective's verdict.
type Check struct {
	Endpoint string  // endpoint the objective applies to
	Name     string  // "error_rate", "p50" … "p999", or "presence"
	Limit    float64 // the objective's bound
	Got      float64 // the measured value (0 when skipped/missing)
	OK       bool    // objective met
	Note     string  // set when skipped or missing, explains why
}

// String renders the check for logs: "rank p99 412.3ms <= 500ms: ok".
func (c Check) String() string {
	status := "ok"
	if !c.OK {
		status = "VIOLATION"
	}
	if c.Note != "" {
		return fmt.Sprintf("%s %s: %s (%s)", c.Endpoint, c.Name, status, c.Note)
	}
	unit := "ms"
	if c.Name == "error_rate" {
		unit = ""
	}
	return fmt.Sprintf("%s %s %.4g%s <= %.4g%s: %s", c.Endpoint, c.Name, c.Got, unit, c.Limit, unit, status)
}

// Result is a full evaluation.
type Result struct {
	Checks     []Check
	Violations int // count of failed checks
}

// Evaluate runs every objective in spec against the manifest. Checks
// come back sorted by endpoint, then error_rate before latency
// percentiles in report order, so output is stable across runs.
func Evaluate(spec *Spec, m *loadgen.Manifest) Result {
	eps := make([]string, 0, len(spec.Endpoints))
	for ep := range spec.Endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)

	var res Result
	add := func(c Check) {
		if !c.OK {
			res.Violations++
		}
		res.Checks = append(res.Checks, c)
	}
	for _, ep := range eps {
		obj := spec.Endpoints[ep]
		st, ok := m.Endpoints[ep]
		if !ok || st.Requests == 0 {
			add(Check{Endpoint: ep, Name: "presence", OK: false,
				Note: "endpoint absent from load manifest — SLO not exercised"})
			continue
		}
		if obj.MaxErrorRate != nil {
			add(Check{Endpoint: ep, Name: "error_rate", Limit: *obj.MaxErrorRate,
				Got: st.ErrorRate, OK: st.ErrorRate <= *obj.MaxErrorRate})
		}
		skipLatency := st.Requests < obj.MinRequests
		for _, name := range loadgen.PercentileNames {
			limit, has := obj.LatencyMS[name]
			if !has {
				continue
			}
			if skipLatency {
				add(Check{Endpoint: ep, Name: name, Limit: limit, OK: true,
					Note: fmt.Sprintf("skipped: %d requests < min_requests %d",
						st.Requests, obj.MinRequests)})
				continue
			}
			got, _ := st.LatencyMS.Percentile(name)
			add(Check{Endpoint: ep, Name: name, Limit: limit, Got: got, OK: got <= limit})
		}
	}
	return res
}
