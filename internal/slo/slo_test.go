package slo

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mpa/internal/loadgen"
)

func f(v float64) *float64 { return &v }

// testManifest builds a manifest with known latency shape: rank p99 ≈
// 40ms, one network failure in five requests (error rate 0.2).
func testManifest(t *testing.T) *loadgen.Manifest {
	t.Helper()
	c := loadgen.NewCollector()
	lat := []time.Duration{
		2 * time.Millisecond, 3 * time.Millisecond, 40 * time.Millisecond,
		900 * time.Microsecond, 7 * time.Millisecond,
	}
	for i, d := range lat {
		c.Record("rank", d, false)
		c.Record("network", d*2, i == 4)
	}
	return c.Manifest("http://x", loadgen.Config{Rate: 1, DurationSeconds: 5, Mix: "rank=1"},
		5*time.Second, time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC))
}

func TestEvaluatePasses(t *testing.T) {
	spec := &Spec{Schema: SpecSchema, Endpoints: map[string]Objective{
		"rank":    {MaxErrorRate: f(0), LatencyMS: map[string]float64{"p50": 50, "p99": 100}},
		"network": {MaxErrorRate: f(0.25), LatencyMS: map[string]float64{"p99": 200}},
	}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	res := Evaluate(spec, testManifest(t))
	if res.Violations != 0 {
		for _, c := range res.Checks {
			t.Log(c)
		}
		t.Fatalf("violations = %d, want 0", res.Violations)
	}
	if len(res.Checks) != 5 {
		t.Errorf("checks = %d, want 5", len(res.Checks))
	}
	// Deterministic ordering: sorted endpoints, error_rate first.
	want := []string{"network/error_rate", "network/p99", "rank/error_rate", "rank/p50", "rank/p99"}
	for i, c := range res.Checks {
		if got := c.Endpoint + "/" + c.Name; got != want[i] {
			t.Errorf("check[%d] = %s, want %s", i, got, want[i])
		}
	}
}

// TestEvaluateTightenedThresholdViolates is the acceptance test for the
// gate: take a passing spec, tighten one latency threshold below the
// measured percentile, and the evaluation must flip to a violation —
// the condition mpa-slogate turns into exit status 2.
func TestEvaluateTightenedThresholdViolates(t *testing.T) {
	m := testManifest(t)
	spec := &Spec{Schema: SpecSchema, Endpoints: map[string]Objective{
		"rank": {LatencyMS: map[string]float64{"p99": 100}},
	}}
	if res := Evaluate(spec, m); res.Violations != 0 {
		t.Fatalf("baseline spec already violating: %+v", res.Checks)
	}
	// rank's max observation is 40ms, so p99 ≥ ~38ms; 1ms must trip.
	spec.Endpoints["rank"] = Objective{LatencyMS: map[string]float64{"p99": 1}}
	res := Evaluate(spec, m)
	if res.Violations != 1 {
		t.Fatalf("tightened spec violations = %d, want 1: %+v", res.Violations, res.Checks)
	}
	c := res.Checks[0]
	if c.OK || c.Name != "p99" || c.Got <= c.Limit {
		t.Errorf("violation check = %+v", c)
	}
}

func TestEvaluateErrorRate(t *testing.T) {
	spec := &Spec{Schema: SpecSchema, Endpoints: map[string]Objective{
		"network": {MaxErrorRate: f(0.1)},
	}}
	res := Evaluate(spec, testManifest(t)) // network error rate is 0.2
	if res.Violations != 1 || res.Checks[0].Name != "error_rate" {
		t.Errorf("result = %+v, want one error_rate violation", res.Checks)
	}
}

func TestEvaluateMissingEndpointIsViolation(t *testing.T) {
	spec := &Spec{Schema: SpecSchema, Endpoints: map[string]Objective{
		"causal": {LatencyMS: map[string]float64{"p50": 100}},
	}}
	res := Evaluate(spec, testManifest(t))
	if res.Violations != 1 || res.Checks[0].Name != "presence" || res.Checks[0].Note == "" {
		t.Errorf("missing endpoint result = %+v, want presence violation", res.Checks)
	}
}

func TestEvaluateMinRequestsSkipsLatencyNotErrors(t *testing.T) {
	spec := &Spec{Schema: SpecSchema, Endpoints: map[string]Objective{
		// 5 requests < 100: latency skipped even though 1ms would trip,
		// but the error-rate objective still fires.
		"network": {MaxErrorRate: f(0.1), LatencyMS: map[string]float64{"p99": 1}, MinRequests: 100},
	}}
	res := Evaluate(spec, testManifest(t))
	if res.Violations != 1 {
		t.Fatalf("violations = %d, want 1 (error_rate only): %+v", res.Violations, res.Checks)
	}
	for _, c := range res.Checks {
		switch c.Name {
		case "error_rate":
			if c.OK {
				t.Errorf("error_rate passed despite 0.2 > 0.1")
			}
		case "p99":
			if !c.OK || c.Note == "" {
				t.Errorf("p99 below min_requests = %+v, want skipped-ok with note", c)
			}
		}
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := map[string]*Spec{
		"wrong schema": {Schema: "nope", Endpoints: map[string]Objective{
			"rank": {LatencyMS: map[string]float64{"p50": 1}}}},
		"no endpoints": {Schema: SpecSchema},
		"no objectives": {Schema: SpecSchema, Endpoints: map[string]Objective{
			"rank": {}}},
		"bad error rate": {Schema: SpecSchema, Endpoints: map[string]Objective{
			"rank": {MaxErrorRate: f(1.5)}}},
		"unknown percentile": {Schema: SpecSchema, Endpoints: map[string]Objective{
			"rank": {LatencyMS: map[string]float64{"p75": 10}}}},
		"nonpositive latency": {Schema: SpecSchema, Endpoints: map[string]Objective{
			"rank": {LatencyMS: map[string]float64{"p50": 0}}}},
		"negative min_requests": {Schema: SpecSchema, Endpoints: map[string]Objective{
			"rank": {LatencyMS: map[string]float64{"p50": 1}, MinRequests: -1}}},
	}
	for name, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadSpec(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "slo.json")
	spec := Spec{Schema: SpecSchema, Endpoints: map[string]Objective{
		"rank": {MaxErrorRate: f(0.01), LatencyMS: map[string]float64{"p99": 500}, MinRequests: 10},
	}}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(good)
	if err != nil {
		t.Fatal(err)
	}
	if got.Endpoints["rank"].MinRequests != 10 || *got.Endpoints["rank"].MaxErrorRate != 0.01 {
		t.Errorf("round-trip spec = %+v", got.Endpoints["rank"])
	}

	if _, err := ReadSpec(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := ReadSpec(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
}
