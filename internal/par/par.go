// Package par provides the bounded worker pool behind every parallel
// stage of the MPA pipeline: per-network OSP generation, per-network
// practice inference, per-fold cross-validation, per-tree forest
// training, and the experiment harness fan-out.
//
// The pool is built for deterministic pipelines. Items are dispatched in
// index order, results are collected into an index-addressed slice, and
// the error returned is always the erroring item with the lowest index —
// so a caller that derives per-item randomness *before* fanning out (the
// rng.Fork-then-Map pattern used across this repository) observes output
// that is byte-identical at any worker count, including workers=1, which
// runs the loop inline on the calling goroutine with no pool at all.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker count used when a call site
// passes workers <= 0. It starts at runtime.NumCPU(): the pipeline's
// stages are CPU-bound, so one worker per core saturates the hardware
// without oversubscription.
var defaultWorkers atomic.Int64

func init() { defaultWorkers.Store(int64(runtime.NumCPU())) }

// SetDefaultWorkers sets the process-wide default worker count applied
// when a call site passes workers <= 0 (the CLIs wire their -workers flag
// here). n <= 0 resets the default to runtime.NumCPU().
func SetDefaultWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the current process-wide default worker count.
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// Resolve maps a call-site worker count to an effective one: positive
// values pass through, zero and below resolve to the process default.
func Resolve(workers int) int {
	if workers > 0 {
		return workers
	}
	return DefaultWorkers()
}

// Map runs fn(i, items[i]) for every item on at most workers goroutines
// (workers <= 0 uses the process default) and returns the results in item
// order. If any fn returns an error, Map returns a nil slice and the
// error from the lowest-index failing item; items not yet dispatched when
// an error occurs are skipped, but every item dispatched before the
// failure runs to completion, so the reported error does not depend on
// goroutine scheduling.
func Map[T, R any](workers int, items []T, fn func(int, T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	err := ForEachN(workers, len(items), func(i int) error {
		r, err := fn(i, items[i])
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// MapLocal is Map with per-worker local state: newLocal() is called once
// per worker goroutine (once total on the inline workers<=1 path) and the
// returned value is passed to every fn invocation that worker runs. It
// exists so hot loops can thread reusable scratch buffers (e.g.
// confmodel.Scratch) through the pool without sharing them across
// goroutines: each local is owned by exactly one worker, so fn may mutate
// it freely, and because locals hold only caches/buffers the output stays
// byte-identical at any worker count.
func MapLocal[T, R, L any](workers int, items []T, newLocal func() L, fn func(local L, i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	results := make([]R, n)
	if n == 0 {
		return results, nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		local := newLocal()
		for i, item := range items {
			r, err := fn(local, i, item)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		errs   = make([]error, n)
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			local := newLocal()
			for {
				// Same dispatch discipline as ForEachN: check failure before
				// claiming, so the lowest-index error is deterministic.
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := fn(local, i, items[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// ForEach runs fn(i, items[i]) for every item with Map's scheduling and
// error semantics, discarding results.
func ForEach[T any](workers int, items []T, fn func(int, T) error) error {
	return ForEachN(workers, len(items), func(i int) error { return fn(i, items[i]) })
}

// ForEachN runs fn(i) for i in [0, n) on at most workers goroutines
// (workers <= 0 uses the process default). Indexes are dispatched in
// ascending order; on error the lowest-index failure is returned and
// not-yet-dispatched indexes are skipped.
func ForEachN(workers, n int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Inline sequential path: -workers 1 must behave exactly like the
		// pre-pool loop, including stopping at the first error without
		// touching later items and paying zero goroutine overhead.
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64 // next index to dispatch
		failed atomic.Bool  // stops dispatch of new indexes after an error
		errs   = make([]error, n)
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				// The failure check happens before claiming an index, never
				// after: once an index is claimed it always runs, so every
				// index below a recorded failure has also run and recorded
				// its own outcome — the lowest-index error is then exactly
				// the error a sequential loop would have returned.
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
