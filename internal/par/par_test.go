package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, 64} {
		out, err := Map(workers, items, func(i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != len(items) {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, []string(nil), func(i int, s string) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(nil) = %v, %v", out, err)
	}
}

func TestFirstErrorByIndex(t *testing.T) {
	// Several items fail; the reported error must always be the one with
	// the lowest index, regardless of worker count or scheduling.
	for _, workers := range []int{1, 2, 8} {
		for trial := 0; trial < 20; trial++ {
			err := ForEachN(workers, 50, func(i int) error {
				if i == 7 || i == 8 || i == 33 {
					return fmt.Errorf("item %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "item 7 failed" {
				t.Fatalf("workers=%d: err = %v, want item 7 failed", workers, err)
			}
		}
	}
}

func TestSequentialStopsAtFirstError(t *testing.T) {
	// workers=1 must behave exactly like a plain loop: nothing after the
	// first error runs.
	var ran atomic.Int64
	boom := errors.New("boom")
	err := ForEachN(1, 10, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 4 {
		t.Errorf("ran %d items, want 4", ran.Load())
	}
}

func TestErrorSkipsLaterItems(t *testing.T) {
	// After a failure, not-yet-dispatched indexes are skipped: with an
	// early error the pool should not run all 10000 items.
	var ran atomic.Int64
	err := ForEachN(4, 10000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran.Load() == 10000 {
		t.Error("pool ran every item despite an early failure")
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	err := ForEachN(workers, 200, func(i int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent items, worker cap is %d", p, workers)
	}
}

func TestForEachPassesItems(t *testing.T) {
	items := []string{"a", "b", "c"}
	got := make([]string, len(items))
	if err := ForEach(2, items, func(i int, s string) error {
		got[i] = s
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, s := range items {
		if got[i] != s {
			t.Errorf("got[%d] = %q, want %q", i, got[i], s)
		}
	}
}

func TestDefaultWorkers(t *testing.T) {
	orig := DefaultWorkers()
	defer SetDefaultWorkers(orig)
	if orig != runtime.NumCPU() {
		t.Errorf("initial default = %d, want NumCPU %d", orig, runtime.NumCPU())
	}
	SetDefaultWorkers(5)
	if DefaultWorkers() != 5 || Resolve(0) != 5 || Resolve(-1) != 5 {
		t.Errorf("default not applied: %d", DefaultWorkers())
	}
	if Resolve(3) != 3 {
		t.Errorf("Resolve(3) = %d", Resolve(3))
	}
	SetDefaultWorkers(0)
	if DefaultWorkers() != runtime.NumCPU() {
		t.Errorf("reset default = %d, want NumCPU", DefaultWorkers())
	}
}
