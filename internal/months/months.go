// Package months provides the calendar-month indexing MPA aggregates over:
// practice metrics and health are computed as monthly values per network
// (paper §5.1.1), and the study window is the 17 months from August 2013
// through December 2014 (Table 2).
package months

import (
	"fmt"
	"time"
)

// Month is a calendar month in UTC.
type Month struct {
	Year int
	Mon  time.Month
}

// StudyStart and StudyEnd delimit the paper's dataset window (inclusive):
// August 2013 through December 2014, 17 months.
var (
	StudyStart = Month{2013, time.August}
	StudyEnd   = Month{2014, time.December}
)

// Of returns the month containing t (in UTC).
func Of(t time.Time) Month {
	u := t.UTC()
	return Month{u.Year(), u.Month()}
}

// Start returns the first instant of the month.
func (m Month) Start() time.Time {
	return time.Date(m.Year, m.Mon, 1, 0, 0, 0, 0, time.UTC)
}

// End returns the first instant of the following month.
func (m Month) End() time.Time { return m.Next().Start() }

// Next returns the following month.
func (m Month) Next() Month {
	if m.Mon == time.December {
		return Month{m.Year + 1, time.January}
	}
	return Month{m.Year, m.Mon + 1}
}

// Prev returns the preceding month.
func (m Month) Prev() Month {
	if m.Mon == time.January {
		return Month{m.Year - 1, time.December}
	}
	return Month{m.Year, m.Mon - 1}
}

// Before reports whether m precedes o.
func (m Month) Before(o Month) bool {
	if m.Year != o.Year {
		return m.Year < o.Year
	}
	return m.Mon < o.Mon
}

// Index returns the zero-based offset of m from base (negative if m
// precedes base).
func (m Month) Index(base Month) int {
	return (m.Year-base.Year)*12 + int(m.Mon) - int(base.Mon)
}

// Add returns the month n months after m (or before, for negative n).
func (m Month) Add(n int) Month {
	total := m.Year*12 + int(m.Mon) - 1 + n
	return Month{total / 12, time.Month(total%12 + 1)}
}

// String formats the month as "2013-08".
func (m Month) String() string { return fmt.Sprintf("%04d-%02d", m.Year, int(m.Mon)) }

// Range returns every month from from to to inclusive. It returns nil when
// to precedes from.
func Range(from, to Month) []Month {
	if to.Before(from) {
		return nil
	}
	var out []Month
	for m := from; !to.Before(m); m = m.Next() {
		out = append(out, m)
	}
	return out
}

// Study returns the paper's 17-month window.
func Study() []Month { return Range(StudyStart, StudyEnd) }
