package months

import (
	"testing"
	"testing/quick"
	"time"
)

func TestOf(t *testing.T) {
	ts := time.Date(2014, time.March, 17, 23, 59, 0, 0, time.UTC)
	if got := Of(ts); got != (Month{2014, time.March}) {
		t.Errorf("Of = %v", got)
	}
}

func TestNextPrevWrap(t *testing.T) {
	dec := Month{2013, time.December}
	if got := dec.Next(); got != (Month{2014, time.January}) {
		t.Errorf("Next(dec) = %v", got)
	}
	jan := Month{2014, time.January}
	if got := jan.Prev(); got != dec {
		t.Errorf("Prev(jan) = %v", got)
	}
}

func TestBefore(t *testing.T) {
	a := Month{2013, time.August}
	b := Month{2013, time.September}
	c := Month{2014, time.January}
	if !a.Before(b) || !b.Before(c) || b.Before(a) || a.Before(a) {
		t.Error("Before ordering wrong")
	}
}

func TestIndexAdd(t *testing.T) {
	base := Month{2013, time.August}
	if got := (Month{2014, time.December}).Index(base); got != 16 {
		t.Errorf("Index = %d, want 16", got)
	}
	if got := base.Index(base); got != 0 {
		t.Errorf("self Index = %d", got)
	}
	if got := base.Add(16); got != (Month{2014, time.December}) {
		t.Errorf("Add(16) = %v", got)
	}
	if got := base.Add(-1); got != (Month{2013, time.July}) {
		t.Errorf("Add(-1) = %v", got)
	}
}

func TestAddIndexInverse(t *testing.T) {
	f := func(nRaw int8) bool {
		base := Month{2013, time.August}
		n := int(nRaw)
		return base.Add(n).Index(base) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStartEnd(t *testing.T) {
	m := Month{2014, time.February}
	if got := m.Start(); got != time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC) {
		t.Errorf("Start = %v", got)
	}
	if got := m.End(); got != time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC) {
		t.Errorf("End = %v", got)
	}
}

func TestString(t *testing.T) {
	if got := (Month{2013, time.August}).String(); got != "2013-08" {
		t.Errorf("String = %q", got)
	}
}

func TestRange(t *testing.T) {
	ms := Range(Month{2013, time.November}, Month{2014, time.February})
	if len(ms) != 4 {
		t.Fatalf("Range = %v", ms)
	}
	if ms[0] != (Month{2013, time.November}) || ms[3] != (Month{2014, time.February}) {
		t.Errorf("Range endpoints wrong: %v", ms)
	}
	if got := Range(Month{2014, time.March}, Month{2014, time.January}); got != nil {
		t.Errorf("inverted Range = %v", got)
	}
}

func TestStudyWindow(t *testing.T) {
	ms := Study()
	if len(ms) != 17 {
		t.Fatalf("study window has %d months, want 17", len(ms))
	}
	if ms[0] != StudyStart || ms[16] != StudyEnd {
		t.Errorf("study endpoints: %v .. %v", ms[0], ms[16])
	}
}
