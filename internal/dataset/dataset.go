// Package dataset assembles MPA's analysis matrix: one case per network
// per month (paper §5.1.1), carrying the 28 practice-metric values and the
// health outcome (non-maintenance ticket count). It provides the paper's
// health-class labelings, percentile-bounded binning glue, and the
// month-based splits online prediction uses (§6.2).
package dataset

import (
	"encoding/json"
	"fmt"
	"sort"

	"mpa/internal/cache"
	"mpa/internal/months"
	"mpa/internal/obs"
	"mpa/internal/practices"
	"mpa/internal/stats"
	"mpa/internal/ticketing"
)

// Case is one network-month observation.
type Case struct {
	Network string
	Month   months.Month
	Metrics practices.Metrics
	Tickets int // non-maintenance tickets opened in the month
}

// Health-class boundaries (paper §6.1).
const (
	// HealthyMaxTickets is the 2-class boundary: networks with at most
	// this many tickets in a month are healthy.
	HealthyMaxTickets = 1
)

// Class2 returns the 2-class label: 0 = healthy (<=1 ticket),
// 1 = unhealthy.
func Class2(tickets int) int {
	if tickets <= HealthyMaxTickets {
		return 0
	}
	return 1
}

// Class5 returns the 5-class label: 0 = excellent (<=2), 1 = good (3-5),
// 2 = moderate (6-8), 3 = poor (9-11), 4 = very poor (>=12).
func Class5(tickets int) int {
	switch {
	case tickets <= 2:
		return 0
	case tickets <= 5:
		return 1
	case tickets <= 8:
		return 2
	case tickets <= 11:
		return 3
	default:
		return 4
	}
}

// Class5Names are the paper's 5-class health names in label order.
var Class5Names = []string{"Excellent", "Good", "Moderate", "Poor", "Very Poor"}

// Class2Names are the 2-class health names in label order.
var Class2Names = []string{"Healthy", "Unhealthy"}

// Dataset is the case matrix.
type Dataset struct {
	Cases []Case
}

// Build assembles the dataset from inference output and the ticket log.
func Build(analysis map[string][]practices.MonthAnalysis, log *ticketing.Log) *Dataset {
	return BuildObs(analysis, log, nil)
}

// BuildObs is Build under a "dataset.build" span recording case and
// network counts. A nil parent skips the span but keeps the counters.
func BuildObs(analysis map[string][]practices.MonthAnalysis, log *ticketing.Log, parent *obs.Span) *Dataset {
	sp := parent.Start("dataset.build")
	defer sp.End()
	// Deterministic case order: by network name, then month.
	names := make([]string, 0, len(analysis))
	for name := range analysis {
		names = append(names, name)
	}
	sort.Strings(names)
	d := &Dataset{}
	for _, name := range names {
		for _, ma := range analysis[name] {
			d.Cases = append(d.Cases, Case{
				Network: name,
				Month:   ma.Month,
				Metrics: ma.Metrics,
				Tickets: log.HealthCount(name, ma.Month),
			})
		}
	}
	sp.Count("cases", float64(len(d.Cases)))
	sp.Count("networks", float64(len(names)))
	obs.GetCounter("dataset.cases").Add(int64(len(d.Cases)))
	obs.Logger().Debug("dataset built", "cases", len(d.Cases), "networks", len(names))
	return d
}

// caseCodec serializes the case matrix for the cache's disk tier.
var caseCodec = cache.Codec[*Dataset]{
	Encode: func(d *Dataset) ([]byte, error) { return json.Marshal(d.Cases) },
	Decode: func(b []byte) (*Dataset, error) {
		var cases []Case
		if err := json.Unmarshal(b, &cases); err != nil {
			return nil, err
		}
		return &Dataset{Cases: cases}, nil
	},
}

// ticketDigest folds the health-relevant ticket fields (network, opening
// time, origin) into the hasher; any filed, reclassified, or retimed
// ticket changes the digest.
func ticketDigest(h *cache.Hasher, log *ticketing.Log) {
	all := log.All()
	h.Int(int64(len(all)))
	for _, t := range all {
		h.String(t.Network).Time(t.Opened).Int(int64(t.Origin))
	}
}

// BuildCached is BuildObs memoized under a content-addressed key chained
// from the upstream analysis digest (see practices.Engine.AnalysisKey)
// and the ticket log's health-relevant fields. With a nil cache or no
// upstream key (caching disabled upstream) it degrades to BuildObs.
func BuildCached(analysis map[string][]practices.MonthAnalysis, log *ticketing.Log, parent *obs.Span, c *cache.Cache, upstream cache.Key, haveKey bool) *Dataset {
	if c == nil || !haveKey {
		return BuildObs(analysis, log, parent)
	}
	h := cache.NewHasher("dataset/v1")
	h.Key(upstream)
	ticketDigest(h, log)
	d, _ := cache.GetOrCompute(c, h.Sum(), caseCodec,
		func() (*Dataset, error) { return BuildObs(analysis, log, parent), nil })
	return d
}

// Len returns the number of cases.
func (d *Dataset) Len() int { return len(d.Cases) }

// Values returns the metric's value for every case, in case order.
func (d *Dataset) Values(metric string) []float64 {
	out := make([]float64, len(d.Cases))
	for i, c := range d.Cases {
		out[i] = c.Metrics[metric]
	}
	return out
}

// TicketValues returns each case's ticket count as float64.
func (d *Dataset) TicketValues() []float64 {
	out := make([]float64, len(d.Cases))
	for i, c := range d.Cases {
		out[i] = float64(c.Tickets)
	}
	return out
}

// Labels2 returns the 2-class health label per case.
func (d *Dataset) Labels2() []int {
	out := make([]int, len(d.Cases))
	for i, c := range d.Cases {
		out[i] = Class2(c.Tickets)
	}
	return out
}

// Labels5 returns the 5-class health label per case.
func (d *Dataset) Labels5() []int {
	out := make([]int, len(d.Cases))
	for i, c := range d.Cases {
		out[i] = Class5(c.Tickets)
	}
	return out
}

// Binned holds a discretized view of the dataset: per-metric bin indexes
// plus the binners (for reusing training-time edges on later data).
type Binned struct {
	Metrics map[string][]int
	Binners map[string]*stats.Binner
	// Health is the binned ticket count (same binning strategy), used by
	// the MI analysis where health is a binned variable too.
	Health       []int
	HealthBinner *stats.Binner
}

// Bin discretizes every metric and the health outcome into the given
// number of equal-width bins anchored at the 5th/95th percentiles (paper
// §5.1.1: 10 bins for dependence analysis, 5 for learning).
func (d *Dataset) Bin(bins int) *Binned {
	b := &Binned{
		Metrics: map[string][]int{},
		Binners: map[string]*stats.Binner{},
	}
	for _, metric := range practices.MetricNames {
		vals := d.Values(metric)
		binned, binner := stats.BinValues(vals, bins)
		b.Metrics[metric] = binned
		b.Binners[metric] = binner
	}
	b.Health, b.HealthBinner = stats.BinValues(d.TicketValues(), bins)
	return b
}

// FeatureMatrix returns the binned feature rows in case order, with
// features ordered as practices.MetricNames. Bin the dataset first.
func (b *Binned) FeatureMatrix() [][]int {
	n := len(b.Health)
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = make([]int, len(practices.MetricNames))
		for j, metric := range practices.MetricNames {
			rows[i][j] = b.Metrics[metric][i]
		}
	}
	return rows
}

// FilterMonths returns the sub-dataset whose cases fall within [from, to]
// inclusive.
func (d *Dataset) FilterMonths(from, to months.Month) *Dataset {
	out := &Dataset{}
	for _, c := range d.Cases {
		if c.Month.Before(from) || to.Before(c.Month) {
			continue
		}
		out.Cases = append(out.Cases, c)
	}
	return out
}

// Months returns the sorted distinct months present in the dataset.
func (d *Dataset) Months() []months.Month {
	seen := map[months.Month]bool{}
	for _, c := range d.Cases {
		seen[c.Month] = true
	}
	out := make([]months.Month, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// Networks returns the sorted distinct networks present in the dataset.
func (d *Dataset) Networks() []string {
	seen := map[string]bool{}
	for _, c := range d.Cases {
		seen[c.Network] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String summarizes the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("dataset{cases: %d, networks: %d, months: %d}",
		d.Len(), len(d.Networks()), len(d.Months()))
}
