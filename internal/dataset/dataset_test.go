package dataset

import (
	"testing"
	"time"

	"mpa/internal/months"
	"mpa/internal/practices"
	"mpa/internal/ticketing"
)

func mkMonth(m time.Month) months.Month { return months.Month{Year: 2014, Mon: m} }

func buildTestDataset() *Dataset {
	log := ticketing.NewLog()
	file := func(net string, m time.Month, n int) {
		for i := 0; i < n; i++ {
			log.File(ticketing.Ticket{
				Network: net,
				Origin:  ticketing.OriginAlarm,
				Opened:  time.Date(2014, m, 3+i%20, 10, 0, 0, 0, time.UTC),
			})
		}
	}
	file("netA", time.January, 0)
	file("netA", time.February, 4)
	file("netB", time.January, 13)
	file("netB", time.February, 7)
	// Maintenance must not count.
	log.File(ticketing.Ticket{Network: "netA", Origin: ticketing.OriginMaintenance,
		Opened: time.Date(2014, time.January, 5, 0, 0, 0, 0, time.UTC)})

	metricsFor := func(dev float64) practices.Metrics {
		m := practices.Metrics{}
		for _, name := range practices.MetricNames {
			m[name] = 1
		}
		m[practices.MetricDevices] = dev
		return m
	}
	analysis := map[string][]practices.MonthAnalysis{
		"netB": {
			{Network: "netB", Month: mkMonth(time.January), Metrics: metricsFor(50)},
			{Network: "netB", Month: mkMonth(time.February), Metrics: metricsFor(50)},
		},
		"netA": {
			{Network: "netA", Month: mkMonth(time.January), Metrics: metricsFor(5)},
			{Network: "netA", Month: mkMonth(time.February), Metrics: metricsFor(5)},
		},
	}
	return Build(analysis, log)
}

func TestBuildOrderAndTickets(t *testing.T) {
	d := buildTestDataset()
	if d.Len() != 4 {
		t.Fatalf("Len = %d", d.Len())
	}
	// Deterministic order: netA before netB, months ascending.
	if d.Cases[0].Network != "netA" || d.Cases[2].Network != "netB" {
		t.Errorf("case order wrong: %v", d.Cases)
	}
	if d.Cases[0].Tickets != 0 || d.Cases[1].Tickets != 4 ||
		d.Cases[2].Tickets != 13 || d.Cases[3].Tickets != 7 {
		t.Errorf("ticket counts: %v %v %v %v",
			d.Cases[0].Tickets, d.Cases[1].Tickets, d.Cases[2].Tickets, d.Cases[3].Tickets)
	}
}

func TestClassBoundaries(t *testing.T) {
	cases := []struct {
		tickets      int
		want2, want5 int
	}{
		{0, 0, 0}, {1, 0, 0}, {2, 1, 0}, {3, 1, 1}, {5, 1, 1},
		{6, 1, 2}, {8, 1, 2}, {9, 1, 3}, {11, 1, 3}, {12, 1, 4}, {100, 1, 4},
	}
	for _, c := range cases {
		if got := Class2(c.tickets); got != c.want2 {
			t.Errorf("Class2(%d) = %d, want %d", c.tickets, got, c.want2)
		}
		if got := Class5(c.tickets); got != c.want5 {
			t.Errorf("Class5(%d) = %d, want %d", c.tickets, got, c.want5)
		}
	}
}

func TestLabels(t *testing.T) {
	d := buildTestDataset()
	l2, l5 := d.Labels2(), d.Labels5()
	want2 := []int{0, 1, 1, 1}
	want5 := []int{0, 1, 4, 2}
	for i := range want2 {
		if l2[i] != want2[i] {
			t.Errorf("Labels2[%d] = %d, want %d", i, l2[i], want2[i])
		}
		if l5[i] != want5[i] {
			t.Errorf("Labels5[%d] = %d, want %d", i, l5[i], want5[i])
		}
	}
}

func TestValues(t *testing.T) {
	d := buildTestDataset()
	vals := d.Values(practices.MetricDevices)
	want := []float64{5, 5, 50, 50}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("Values[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestBinAndFeatureMatrix(t *testing.T) {
	d := buildTestDataset()
	b := d.Bin(5)
	if len(b.Metrics) != len(practices.MetricNames) {
		t.Fatalf("binned %d metrics", len(b.Metrics))
	}
	rows := b.FeatureMatrix()
	if len(rows) != d.Len() {
		t.Fatalf("feature rows = %d", len(rows))
	}
	for _, row := range rows {
		if len(row) != len(practices.MetricNames) {
			t.Fatalf("feature row width = %d", len(row))
		}
		for _, v := range row {
			if v < 0 || v >= 5 {
				t.Fatalf("bin index %d out of range", v)
			}
		}
	}
	// no_devices: 5 vs 50 must land in different bins.
	idx := indexOf(practices.MetricNames, practices.MetricDevices)
	if rows[0][idx] == rows[2][idx] {
		t.Error("small and large networks share a device bin")
	}
	if len(b.Health) != d.Len() {
		t.Errorf("health binned length = %d", len(b.Health))
	}
}

func indexOf(xs []string, want string) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return -1
}

func TestFilterMonths(t *testing.T) {
	d := buildTestDataset()
	jan := d.FilterMonths(mkMonth(time.January), mkMonth(time.January))
	if jan.Len() != 2 {
		t.Fatalf("january cases = %d", jan.Len())
	}
	for _, c := range jan.Cases {
		if c.Month != mkMonth(time.January) {
			t.Errorf("filtered case in %v", c.Month)
		}
	}
	empty := d.FilterMonths(mkMonth(time.May), mkMonth(time.June))
	if empty.Len() != 0 {
		t.Errorf("out-of-range filter returned %d cases", empty.Len())
	}
}

func TestMonthsAndNetworks(t *testing.T) {
	d := buildTestDataset()
	ms := d.Months()
	if len(ms) != 2 || ms[0] != mkMonth(time.January) || ms[1] != mkMonth(time.February) {
		t.Errorf("Months = %v", ms)
	}
	ns := d.Networks()
	if len(ns) != 2 || ns[0] != "netA" || ns[1] != "netB" {
		t.Errorf("Networks = %v", ns)
	}
}

func TestStringSummary(t *testing.T) {
	d := buildTestDataset()
	if got := d.String(); got != "dataset{cases: 4, networks: 2, months: 2}" {
		t.Errorf("String = %q", got)
	}
}
