package hypothesis

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSignTestBalanced(t *testing.T) {
	// 5 positive, 5 negative: p-value must be 1 (capped).
	diffs := []float64{1, 1, 1, 1, 1, -1, -1, -1, -1, -1}
	r := SignTest(diffs)
	if r.Positive != 5 || r.Negative != 5 || r.Ties != 0 {
		t.Fatalf("counts = %+v", r)
	}
	if r.PValue != 1 {
		t.Errorf("balanced p-value = %v, want 1", r.PValue)
	}
}

func TestSignTestExtreme(t *testing.T) {
	// 20 positive, 0 negative: p = 2 * 0.5^20.
	diffs := make([]float64, 20)
	for i := range diffs {
		diffs[i] = 2
	}
	r := SignTest(diffs)
	want := 2 * math.Pow(0.5, 20)
	if !almostEq(r.PValue, want, 1e-12) {
		t.Errorf("p-value = %v, want %v", r.PValue, want)
	}
	if !r.SignificantAt(0.001) {
		t.Error("extreme result should be significant at 0.001")
	}
}

func TestSignTestTiesExcluded(t *testing.T) {
	diffs := []float64{0, 0, 0, 1, -1}
	r := SignTest(diffs)
	if r.Ties != 3 || r.N() != 2 {
		t.Fatalf("ties handling wrong: %+v", r)
	}
	if r.PValue != 1 {
		t.Errorf("1-vs-1 p-value = %v, want 1", r.PValue)
	}
}

func TestSignTestEmpty(t *testing.T) {
	r := SignTest(nil)
	if r.PValue != 1 {
		t.Errorf("empty p-value = %v, want 1", r.PValue)
	}
	if r.SignificantAt(0.05) {
		t.Error("empty test must not be significant")
	}
}

func TestSignTestKnownValue(t *testing.T) {
	// 8 positive, 2 negative, n = 10: p = 2 * P(X <= 2)
	//   = 2 * (C(10,0)+C(10,1)+C(10,2)) / 2^10 = 2 * 56/1024 = 0.109375.
	p := SignTestCounts(8, 2)
	if !almostEq(p, 0.109375, 1e-9) {
		t.Errorf("p-value = %v, want 0.109375", p)
	}
}

func TestSignTestSymmetric(t *testing.T) {
	f := func(a, b uint8) bool {
		return almostEq(SignTestCounts(int(a), int(b)), SignTestCounts(int(b), int(a)), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignTestMonotoneInImbalance(t *testing.T) {
	// With fixed n, a more imbalanced split must have smaller p.
	n := 100
	prev := 1.1
	for pos := 50; pos <= 100; pos += 5 {
		p := SignTestCounts(pos, n-pos)
		if p > prev+1e-12 {
			t.Errorf("p-value not monotone: pos=%d p=%v prev=%v", pos, p, prev)
		}
		prev = p
	}
}

func TestSignTestPValueRange(t *testing.T) {
	f := func(a, b uint8) bool {
		p := SignTestCounts(int(a), int(b))
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignTestLargeN(t *testing.T) {
	// Paper Table 6, comparison 1:2 scale: 830 more vs 562 fewer.
	p := SignTestCounts(830, 562)
	if p >= 0.001 {
		t.Errorf("large imbalance p = %v, want < 0.001", p)
	}
	if p <= 0 {
		t.Errorf("p-value underflowed to %v", p)
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 20, 100} {
		var sum float64
		for k := 0; k <= n; k++ {
			sum += BinomPMF(k, n, 0.37)
		}
		if !almostEq(sum, 1, 1e-9) {
			t.Errorf("pmf sum for n=%d is %v", n, sum)
		}
	}
}

func TestBinomPMFEdges(t *testing.T) {
	if got := BinomPMF(0, 10, 0); got != 1 {
		t.Errorf("PMF(0;10,0) = %v", got)
	}
	if got := BinomPMF(3, 10, 0); got != 0 {
		t.Errorf("PMF(3;10,0) = %v", got)
	}
	if got := BinomPMF(10, 10, 1); got != 1 {
		t.Errorf("PMF(10;10,1) = %v", got)
	}
	if got := BinomPMF(9, 10, 1); got != 0 {
		t.Errorf("PMF(9;10,1) = %v", got)
	}
}
