package hypothesis

import (
	"math"
	"testing"

	"mpa/internal/rng"
)

// TestSignTestProperties checks the sign test on arbitrary difference
// vectors: the p-value is a probability, the test is symmetric under
// negating every difference, counts add up, and ties are excluded.
func TestSignTestProperties(t *testing.T) {
	r := rng.New(3)
	for i := 0; i < 300; i++ {
		n := r.Intn(80)
		diffs := make([]float64, n)
		neg := make([]float64, n)
		for j := range diffs {
			switch r.Intn(3) {
			case 0:
				diffs[j] = 0
			default:
				diffs[j] = r.Normal(0, 5)
			}
			neg[j] = -diffs[j]
		}
		res := SignTest(diffs)
		if res.PValue < 0 || res.PValue > 1 || math.IsNaN(res.PValue) {
			t.Fatalf("iteration %d: p = %v, want in [0, 1]", i, res.PValue)
		}
		if res.Positive+res.Negative+res.Ties != n {
			t.Fatalf("iteration %d: counts %d+%d+%d != %d",
				i, res.Positive, res.Negative, res.Ties, n)
		}
		if res.N() != res.Positive+res.Negative {
			t.Fatalf("iteration %d: N() = %d, want %d (ties excluded)",
				i, res.N(), res.Positive+res.Negative)
		}
		mirror := SignTest(neg)
		if mirror.Positive != res.Negative || mirror.Negative != res.Positive {
			t.Fatalf("iteration %d: negation did not swap counts: %+v vs %+v", i, res, mirror)
		}
		if math.Abs(mirror.PValue-res.PValue) > 1e-12 {
			t.Fatalf("iteration %d: p not symmetric under negation: %v vs %v",
				i, res.PValue, mirror.PValue)
		}
	}
}

// TestSignTestCountsProperties checks the count-based form directly over
// the full small-sample grid: probability range, symmetry in (pos, neg),
// p = 1 for balanced counts, and monotone decrease as the split grows
// more lopsided at fixed n.
func TestSignTestCountsProperties(t *testing.T) {
	for n := 0; n <= 60; n++ {
		prev := math.Inf(1)
		for pos := (n + 1) / 2; pos <= n; pos++ {
			neg := n - pos
			p := SignTestCounts(pos, neg)
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("SignTestCounts(%d, %d) = %v, want in [0, 1]", pos, neg, p)
			}
			if sym := SignTestCounts(neg, pos); math.Abs(sym-p) > 1e-12 {
				t.Fatalf("SignTestCounts not symmetric: (%d,%d)=%v, (%d,%d)=%v",
					pos, neg, p, neg, pos, sym)
			}
			if pos == neg && math.Abs(p-1) > 1e-12 {
				t.Fatalf("SignTestCounts(%d, %d) = %v, want 1 for a balanced split", pos, neg, p)
			}
			if p > prev+1e-12 {
				t.Fatalf("SignTestCounts(%d, %d) = %v rose above %v; want monotone in lopsidedness",
					pos, neg, p, prev)
			}
			prev = p
		}
	}
}
