// Package hypothesis implements the nonparametric significance test MPA
// uses to decide whether a management practice causally impacts network
// health (paper §5.2.5): the sign test over matched-pair outcome
// differences. The sign test makes few assumptions about the distribution
// of differences and is well-suited to matched-design experiments
// (Hollander & Wolfe 1973).
package hypothesis

import "math"

// SignTestResult summarizes a two-sided sign test over matched pairs.
type SignTestResult struct {
	Positive int     // pairs with outcome difference > 0 ("more tickets")
	Negative int     // pairs with outcome difference < 0 ("fewer tickets")
	Ties     int     // pairs with zero difference ("no effect"), excluded
	PValue   float64 // two-sided p-value for H0: median difference is 0
}

// N returns the number of non-tied pairs the test was computed over.
func (r SignTestResult) N() int { return r.Positive + r.Negative }

// SignificantAt reports whether the p-value falls below alpha. The paper
// uses the moderately conservative threshold alpha = 0.001.
func (r SignTestResult) SignificantAt(alpha float64) bool {
	return r.N() > 0 && r.PValue < alpha
}

// SignTest runs a two-sided sign test on the given outcome differences
// (treated minus untreated, one per matched pair). Zero differences are
// counted as ties and excluded, per standard practice. With no non-tied
// pairs the p-value is 1.
func SignTest(diffs []float64) SignTestResult {
	var r SignTestResult
	for _, d := range diffs {
		switch {
		case d > 0:
			r.Positive++
		case d < 0:
			r.Negative++
		default:
			r.Ties++
		}
	}
	r.PValue = SignTestCounts(r.Positive, r.Negative)
	return r
}

// SignTestCounts returns the two-sided sign-test p-value for the given
// positive/negative counts: 2 * P(X <= min(pos, neg)) for X ~
// Binomial(pos+neg, 1/2), capped at 1.
func SignTestCounts(pos, neg int) float64 {
	n := pos + neg
	if n == 0 {
		return 1
	}
	k := pos
	if neg < k {
		k = neg
	}
	p := 2 * BinomCDF(k, n, 0.5)
	if p > 1 {
		return 1
	}
	return p
}

// BinomCDF returns P(X <= k) for X ~ Binomial(n, p), computed exactly in
// log space. Exact summation is fine for the case counts MPA sees
// (thousands of matched pairs). It is exported for the Rosenbaum
// sensitivity analysis in the qed package.
func BinomCDF(k, n int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	var total float64
	for i := 0; i <= k; i++ {
		total += math.Exp(logBinomPMF(i, n, p))
	}
	if total > 1 {
		return 1
	}
	return total
}

// logBinomPMF returns log P(X = k) for X ~ Binomial(n, p).
func logBinomPMF(k, n int, p float64) float64 {
	if p <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
}

// logChoose returns log C(n, k) via log-gamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// BinomPMF returns P(X = k) for X ~ Binomial(n, p), exposed for tests and
// for the report package's expected-distribution annotations.
func BinomPMF(k, n int, p float64) float64 {
	return math.Exp(logBinomPMF(k, n, p))
}
