// Package events groups per-device configuration changes into change
// events (paper §2.2, O4). Change events account for the fact that
// realizing one desired outcome — e.g. establishing a new VLAN segment —
// often requires configuration changes on multiple devices. The grouping
// heuristic is the paper's: if a configuration change on a device occurs
// within delta time units of a change on another device in the same
// network, the changes are part of the same change event; the paper uses
// delta = 5 minutes because operators indicated they complete most related
// changes within such a window.
package events

import (
	"sort"
	"time"

	"mpa/internal/nms"
)

// DefaultDelta is the paper's change-event grouping threshold.
const DefaultDelta = 5 * time.Minute

// Event is one change event: a set of configuration changes, possibly on
// multiple devices, that realize one logical outcome.
type Event struct {
	Changes []nms.ChangeRecord
}

// Start returns the time of the event's first change.
func (e *Event) Start() time.Time {
	if len(e.Changes) == 0 {
		return time.Time{}
	}
	return e.Changes[0].Time
}

// Devices returns the distinct devices changed in the event, sorted.
func (e *Event) Devices() []string {
	seen := map[string]bool{}
	for _, c := range e.Changes {
		seen[c.Device] = true
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// DeviceCount returns the number of distinct devices changed.
func (e *Event) DeviceCount() int { return len(e.Devices()) }

// Automated reports whether every change in the event was automated. The
// practice metric "fraction of events automated" counts events whose
// changes were all made by special accounts.
func (e *Event) Automated() bool {
	if len(e.Changes) == 0 {
		return false
	}
	for _, c := range e.Changes {
		if !c.Automated {
			return false
		}
	}
	return true
}

// Group partitions a network's configuration changes into change events
// using the chaining heuristic: changes sorted by time belong to the same
// event while each gap to the previous change is at most delta. A
// non-positive delta disables grouping — every change becomes its own
// event (the paper's "NA" configuration in Figure 3).
func Group(changes []nms.ChangeRecord, delta time.Duration) []Event {
	groups := GroupBy(changes, delta,
		func(c nms.ChangeRecord) time.Time { return c.Time },
		func(c nms.ChangeRecord) string { return c.Device })
	if groups == nil {
		return nil
	}
	out := make([]Event, len(groups))
	for i, g := range groups {
		out[i] = Event{Changes: g}
	}
	return out
}

// GroupBy is the generic form of Group: it partitions arbitrary
// time-stamped items into change events with the same chaining heuristic.
// timeOf and deviceOf extract each item's timestamp and device (the device
// only breaks ties for deterministic ordering).
func GroupBy[T any](items []T, delta time.Duration, timeOf func(T) time.Time, deviceOf func(T) string) [][]T {
	if len(items) == 0 {
		return nil
	}
	sorted := append([]T(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		ti, tj := timeOf(sorted[i]), timeOf(sorted[j])
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return deviceOf(sorted[i]) < deviceOf(sorted[j])
	})
	if delta <= 0 {
		out := make([][]T, len(sorted))
		for i, c := range sorted {
			out[i] = []T{c}
		}
		return out
	}
	var out [][]T
	cur := []T{sorted[0]}
	for _, c := range sorted[1:] {
		if timeOf(c).Sub(timeOf(cur[len(cur)-1])) <= delta {
			cur = append(cur, c)
			continue
		}
		out = append(out, cur)
		cur = []T{c}
	}
	return append(out, cur)
}
