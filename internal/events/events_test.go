package events

import (
	"testing"
	"time"

	"mpa/internal/nms"
)

func ch(dev string, minuteOffset int, automated bool) nms.ChangeRecord {
	base := time.Date(2014, time.March, 1, 10, 0, 0, 0, time.UTC)
	return nms.ChangeRecord{
		Device:    dev,
		Time:      base.Add(time.Duration(minuteOffset) * time.Minute),
		Automated: automated,
	}
}

func TestGroupEmpty(t *testing.T) {
	if got := Group(nil, DefaultDelta); got != nil {
		t.Errorf("Group(nil) = %v", got)
	}
}

func TestGroupChaining(t *testing.T) {
	// Gaps: 3, 4, 30 minutes. With delta=5 the first three chain together.
	changes := []nms.ChangeRecord{ch("a", 0, false), ch("b", 3, false), ch("c", 7, false), ch("d", 37, false)}
	evts := Group(changes, 5*time.Minute)
	if len(evts) != 2 {
		t.Fatalf("events = %d, want 2", len(evts))
	}
	if len(evts[0].Changes) != 3 || len(evts[1].Changes) != 1 {
		t.Errorf("event sizes = %d, %d", len(evts[0].Changes), len(evts[1].Changes))
	}
}

func TestGroupTransitivity(t *testing.T) {
	// Consecutive 4-minute gaps spanning 20 minutes total still form one
	// event: the heuristic is transitive.
	var changes []nms.ChangeRecord
	for i := 0; i < 6; i++ {
		changes = append(changes, ch("d", i*4, false))
	}
	evts := Group(changes, 5*time.Minute)
	if len(evts) != 1 {
		t.Errorf("events = %d, want 1 (transitive chaining)", len(evts))
	}
}

func TestGroupNADisablesGrouping(t *testing.T) {
	changes := []nms.ChangeRecord{ch("a", 0, false), ch("b", 1, false), ch("c", 2, false)}
	evts := Group(changes, 0)
	if len(evts) != 3 {
		t.Errorf("NA grouping events = %d, want 3", len(evts))
	}
}

func TestGroupUnsortedInput(t *testing.T) {
	changes := []nms.ChangeRecord{ch("c", 40, false), ch("a", 0, false), ch("b", 2, false)}
	evts := Group(changes, 5*time.Minute)
	if len(evts) != 2 {
		t.Fatalf("events = %d, want 2", len(evts))
	}
	if evts[0].Changes[0].Device != "a" {
		t.Errorf("first event starts with %s, want a", evts[0].Changes[0].Device)
	}
}

func TestGroupDoesNotMutateInput(t *testing.T) {
	changes := []nms.ChangeRecord{ch("b", 10, false), ch("a", 0, false)}
	Group(changes, time.Minute)
	if changes[0].Device != "b" {
		t.Error("Group sorted the caller's slice")
	}
}

func TestLargerDeltaNeverMoreEvents(t *testing.T) {
	// Figure 3's monotone behaviour: growing delta can only merge events.
	changes := []nms.ChangeRecord{
		ch("a", 0, false), ch("b", 2, false), ch("c", 9, false),
		ch("d", 11, false), ch("e", 30, false), ch("f", 55, false),
	}
	prev := len(changes) + 1
	for _, delta := range []time.Duration{0, 1, 2, 5, 10, 15, 30} {
		d := delta * time.Minute
		n := len(Group(changes, d))
		if n > prev {
			t.Errorf("delta %v produced more events (%d) than smaller delta (%d)", d, n, prev)
		}
		prev = n
	}
}

func TestEventDevices(t *testing.T) {
	e := Event{Changes: []nms.ChangeRecord{ch("b", 0, false), ch("a", 1, false), ch("b", 2, false)}}
	devs := e.Devices()
	if len(devs) != 2 || devs[0] != "a" || devs[1] != "b" {
		t.Errorf("Devices = %v", devs)
	}
	if e.DeviceCount() != 2 {
		t.Errorf("DeviceCount = %d", e.DeviceCount())
	}
}

func TestEventAutomated(t *testing.T) {
	all := Event{Changes: []nms.ChangeRecord{ch("a", 0, true), ch("b", 1, true)}}
	if !all.Automated() {
		t.Error("fully automated event not detected")
	}
	mixed := Event{Changes: []nms.ChangeRecord{ch("a", 0, true), ch("b", 1, false)}}
	if mixed.Automated() {
		t.Error("mixed event classified automated")
	}
	empty := Event{}
	if empty.Automated() {
		t.Error("empty event classified automated")
	}
}

func TestEventStart(t *testing.T) {
	e := Event{Changes: []nms.ChangeRecord{ch("a", 5, false), ch("b", 9, false)}}
	if got := e.Start(); !got.Equal(ch("a", 5, false).Time) {
		t.Errorf("Start = %v", got)
	}
	var zero Event
	if !zero.Start().IsZero() {
		t.Error("empty event Start should be zero")
	}
}

func TestSameTimestampDifferentDevicesOneEvent(t *testing.T) {
	changes := []nms.ChangeRecord{ch("a", 0, false), ch("b", 0, false)}
	evts := Group(changes, time.Minute)
	if len(evts) != 1 || evts[0].DeviceCount() != 2 {
		t.Errorf("simultaneous changes: %d events", len(evts))
	}
}
