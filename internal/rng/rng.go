// Package rng provides a small, fast, deterministic pseudo-random number
// generator and the distribution samplers the MPA data synthesizer needs.
//
// Every stochastic component of the repository takes an explicit *RNG so
// that a single seed reproduces an entire synthetic OSP, every learned
// model, and every experiment table byte-for-byte. The generator is
// splitmix64 (Steele, Lea, Flood 2014): tiny state, full 2^64 period over
// seeds, and excellent statistical quality for simulation workloads.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. The zero value is
// a valid generator seeded with 0; prefer New to make the seed explicit.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent child generator from the current generator
// state and a stream label. Forking lets one logical component (e.g. one
// network) own a private stream so that adding draws in a sibling component
// does not perturb it.
func (r *RNG) Fork(label uint64) *RNG {
	// Mix the label into a fresh state drawn from the parent. The golden
	// ratio increment used by splitmix64 keeps distinct labels far apart.
	return &RNG{state: r.Uint64() ^ (label * 0x9e3779b97f4a7c15)}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style rejection-free reduction is unnecessary here; modulo
	// bias for n << 2^64 is far below the noise floor of the simulation.
	return int(r.Uint64() % uint64(n))
}

// IntBetween returns a uniform int in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("rng: IntBetween with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	// Draw u1 in (0,1] to keep the log finite.
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)). Log-normal draws model the
// long-tailed practice metrics the paper characterizes (network sizes,
// VLAN counts, reference counts).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed value with the given
// mean. It panics if mean <= 0.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exponential with non-positive mean")
	}
	return -mean * math.Log(1-r.Float64())
}

// Poisson returns a Poisson-distributed count with the given rate lambda.
// Knuth's multiplication method is used for small lambda and a normal
// approximation (rounded, clamped at zero) above 30, where the error is
// negligible for our ticket and change-count synthesis.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(r.Normal(lambda, math.Sqrt(lambda))))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf returns a value in [1, n] following an approximate Zipf distribution
// with exponent s, via inverse-CDF on the truncated harmonic series.
// Used for vendor/model popularity, where a few models dominate.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 1
	}
	var total float64
	for i := 1; i <= n; i++ {
		total += math.Pow(float64(i), -s)
	}
	u := r.Float64() * total
	var cum float64
	for i := 1; i <= n; i++ {
		cum += math.Pow(float64(i), -s)
		if u <= cum {
			return i
		}
	}
	return n
}

// Choice returns a uniformly chosen index weighted by weights. Zero or
// negative weights are treated as zero. If all weights are zero it returns
// a uniform index.
func (r *RNG) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return r.Intn(len(weights))
	}
	u := r.Float64() * total
	var cum float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		cum += w
		if u <= cum {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the n elements addressed by swap using Fisher-Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
