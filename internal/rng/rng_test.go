package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from distinct seeds", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forked children with distinct labels produced identical first draw")
	}
}

func TestForkReproducible(t *testing.T) {
	mk := func() uint64 { return New(9).Fork(5).Uint64() }
	if mk() != mk() {
		t.Fatal("fork is not reproducible")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntBetween(t *testing.T) {
	r := New(4)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntBetween(3, 6)
		if v < 3 || v > 6 {
			t.Fatalf("IntBetween(3,6) = %d", v)
		}
		seen[v] = true
	}
	for want := 3; want <= 6; want++ {
		if !seen[want] {
			t.Errorf("value %d never drawn", want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(6)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("normal variance = %v, want ~4", variance)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(8)
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	r := New(9)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", got)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(10)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.1 {
		t.Errorf("exponential mean = %v, want ~5", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(11)
	counts := make([]int, 11)
	for i := 0; i < 50000; i++ {
		v := r.Zipf(10, 1.2)
		if v < 1 || v > 10 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[5] || counts[5] <= counts[10] {
		t.Errorf("Zipf counts not decreasing: %v", counts[1:])
	}
}

func TestZipfDegenerate(t *testing.T) {
	if got := New(1).Zipf(1, 1); got != 1 {
		t.Fatalf("Zipf(1) = %d", got)
	}
	if got := New(1).Zipf(0, 1); got != 1 {
		t.Fatalf("Zipf(0) = %d", got)
	}
}

func TestChoiceWeights(t *testing.T) {
	r := New(12)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[r.Choice([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Errorf("choice counts do not follow weights: %v", counts)
	}
}

func TestChoiceAllZeroUniform(t *testing.T) {
	r := New(13)
	counts := make([]int, 4)
	for i := 0; i < 20000; i++ {
		counts[r.Choice([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 4000 || c > 6000 {
			t.Errorf("uniform fallback index %d count %d not near 5000", i, c)
		}
	}
}

func TestChoiceNegativeTreatedZero(t *testing.T) {
	r := New(14)
	for i := 0; i < 1000; i++ {
		if idx := r.Choice([]float64{-5, 1, -2}); idx != 1 {
			t.Fatalf("choice picked zero-weight index %d", idx)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(15)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Property(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 64; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(16)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit fraction = %v", frac)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(1, 0.8); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}
