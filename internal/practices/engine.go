package practices

import (
	"fmt"
	"time"

	"mpa/internal/ciscoios"
	"mpa/internal/confdiff"
	"mpa/internal/confmodel"
	"mpa/internal/events"
	"mpa/internal/junos"
	"mpa/internal/months"
	"mpa/internal/netmodel"
	"mpa/internal/nms"
	"mpa/internal/obs"
	"mpa/internal/par"
)

// monthHist records per-network-month inference latency in milliseconds;
// the buckets span sub-millisecond small networks to multi-second
// paper-scale ones.
var monthHist = obs.GetHistogram("inference.month_ms",
	0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000)

// ChangeDetail is one inferred configuration change with the attributes
// the characterization figures and event metrics need.
type ChangeDetail struct {
	Device    string
	Time      time.Time
	Automated bool
	// Types lists the vendor-agnostic stanza types the change touched.
	Types []confmodel.Type
	// Middlebox reports whether the changed device is a middlebox.
	Middlebox bool
}

// HasType reports whether the change touched the given stanza type.
//
// The linear scan is deliberate: Types holds the distinct stanza types of
// one change event — almost always one to three entries, bounded by
// confmodel.NumTypes — so a set would cost an allocation per ChangeDetail
// (inference builds one per change across every network-month) to speed up
// a scan that already fits in a cache line.
func (c ChangeDetail) HasType(t confmodel.Type) bool {
	for _, ty := range c.Types {
		if ty == t {
			return true
		}
	}
	return false
}

// HasRouterType reports whether the change touched a routing-protocol
// stanza. Like HasType, it scans: Types is tiny (see HasType).
func (c ChangeDetail) HasRouterType() bool {
	for _, ty := range c.Types {
		if ty.IsRouter() {
			return true
		}
	}
	return false
}

// MonthAnalysis is the inference output for one network-month: the 28
// practice metrics plus the underlying change details (for
// characterization and delta-sensitivity analyses).
type MonthAnalysis struct {
	Network string
	Month   months.Month
	Metrics Metrics
	Changes []ChangeDetail
}

// Engine infers practice metrics from inventory records and the snapshot
// archive. It is the analytics-side counterpart of the generator: it sees
// only raw data, never ground truth.
type Engine struct {
	inv     *netmodel.Inventory
	arch    *nms.Archive
	delta   time.Duration // change-event grouping threshold
	workers int           // goroutines for Analyze; 0 = process default

	cisco confmodel.Dialect
	junos confmodel.Dialect

	obs *obs.Span // parent span for analysis runs; nil = untraced
}

// NewEngine returns an inference engine over the given data sources using
// the paper's default event-grouping threshold (5 minutes).
func NewEngine(inv *netmodel.Inventory, arch *nms.Archive) *Engine {
	return &Engine{
		inv:   inv,
		arch:  arch,
		delta: events.DefaultDelta,
		cisco: ciscoios.Dialect{},
		junos: junos.Dialect{},
	}
}

// SetDelta overrides the change-event grouping threshold (Figure 3's
// sensitivity sweep). Non-positive disables grouping.
func (e *Engine) SetDelta(d time.Duration) { e.delta = d }

// SetObs attaches a parent span; subsequent Analyze runs record an
// "inference" span with per-network (and per-month) children under it.
func (e *Engine) SetObs(sp *obs.Span) { e.obs = sp }

// SetWorkers bounds the goroutines Analyze uses to process networks
// concurrently. Zero or negative uses the process default
// (par.SetDefaultWorkers, initially all CPUs). The analysis output is
// identical at every worker count: each network's inference is
// independent and the per-network results are collected in inventory
// order.
func (e *Engine) SetWorkers(n int) { e.workers = n }

// parse parses a snapshot's text with the device's vendor dialect.
func (e *Engine) parse(dev *netmodel.Device, s *nms.Snapshot) (*confmodel.Config, error) {
	d := e.junos
	if dev.Vendor == netmodel.VendorCisco {
		d = e.cisco
	}
	cfg, err := d.Parse(s.Text)
	if err != nil {
		return nil, fmt.Errorf("practices: parsing snapshot of %s at %v: %w", dev.Name, s.Time, err)
	}
	return cfg, nil
}

// AnalyzeNetwork computes the metrics for every month of the window for
// one network. It walks each device's snapshot stream exactly once,
// parsing every snapshot a single time, and evaluates design metrics from
// the live end-of-month configuration state.
func (e *Engine) AnalyzeNetwork(name string, window []months.Month) ([]MonthAnalysis, error) {
	return e.analyzeNetwork(name, window, e.obs)
}

// analyzeNetwork is AnalyzeNetwork under an explicit parent span.
func (e *Engine) analyzeNetwork(name string, window []months.Month, parent *obs.Span) ([]MonthAnalysis, error) {
	nw := e.inv.Network(name)
	if nw == nil {
		return nil, fmt.Errorf("practices: unknown network %q", name)
	}
	nsp := parent.Start(name)
	defer nsp.End()

	// Per-device cursor over the snapshot history.
	type cursor struct {
		dev   *netmodel.Device
		hist  []*nms.Snapshot
		pos   int               // next snapshot to consume
		state *confmodel.Config // config as of consumed snapshots
	}
	cursors := make([]*cursor, 0, len(nw.Devices))
	for _, dev := range nw.Devices {
		cursors = append(cursors, &cursor{dev: dev, hist: e.arch.Snapshots(dev.Name)})
	}

	mgmtOwner := map[string]string{}
	for _, dev := range nw.Devices {
		mgmtOwner[dev.MgmtIP] = dev.Name
	}

	var snapsParsed, diffsComputed, changesFound, eventsGrouped int
	out := make([]MonthAnalysis, 0, len(window))
	for _, m := range window {
		msp := nsp.Start(m.String())
		monthStart := time.Now()
		end := m.End()
		var changes []ChangeDetail
		for _, cu := range cursors {
			for cu.pos < len(cu.hist) && cu.hist[cu.pos].Time.Before(end) {
				snap := cu.hist[cu.pos]
				cu.pos++
				cfg, err := e.parse(cu.dev, snap)
				snapsParsed++
				if err != nil {
					obs.GetCounter("inference.parse_failures").Add(1)
					nsp.Count("parse_failures", 1)
					msp.End()
					return nil, err
				}
				if cu.state == nil {
					cu.state = cfg // baseline import, not a change
					continue
				}
				diff := confdiff.Diff(cu.state, cfg)
				diffsComputed++
				cu.state = cfg
				if len(diff) == 0 {
					continue // identical snapshot: no configuration change
				}
				// Only changes inside the analysis window count.
				if months.Of(snap.Time) != m {
					continue
				}
				types := make([]confmodel.Type, 0, 2)
				for t := range confdiff.Types(diff) {
					types = append(types, t)
				}
				changes = append(changes, ChangeDetail{
					Device:    cu.dev.Name,
					Time:      snap.Time,
					Automated: e.arch.IsAutomated(snap.Login),
					Types:     types,
					Middlebox: cu.dev.Role.IsMiddlebox(),
				})
			}
		}

		// Assemble end-of-month configuration states.
		var configs []*confmodel.Config
		for _, cu := range cursors {
			if cu.state != nil {
				configs = append(configs, cu.state)
			}
		}

		metrics := Metrics{}
		e.designMetrics(metrics, nw, configs, mgmtOwner)
		nEvents := e.operationalMetrics(metrics, nw, changes)
		out = append(out, MonthAnalysis{Network: name, Month: m, Metrics: metrics, Changes: changes})

		changesFound += len(changes)
		eventsGrouped += nEvents
		msp.Count("changes", float64(len(changes)))
		msp.Count("events", float64(nEvents))
		msp.End()
		monthHist.Observe(float64(time.Since(monthStart).Microseconds()) / 1000)
	}
	nsp.Count("snapshots_parsed", float64(snapsParsed))
	nsp.Count("diffs", float64(diffsComputed))
	nsp.Count("changes", float64(changesFound))
	nsp.Count("events", float64(eventsGrouped))
	// Roll the totals up to the stage span ("inference" under Analyze).
	parent.Count("snapshots_parsed", float64(snapsParsed))
	parent.Count("diffs", float64(diffsComputed))
	parent.Count("changes", float64(changesFound))
	parent.Count("events", float64(eventsGrouped))
	obs.GetCounter("inference.snapshots_parsed").Add(int64(snapsParsed))
	obs.GetCounter("inference.diffs").Add(int64(diffsComputed))
	obs.GetCounter("inference.changes").Add(int64(changesFound))
	obs.GetCounter("inference.events_grouped").Add(int64(eventsGrouped))
	return out, nil
}

// Analyze runs AnalyzeNetwork for every network in the inventory, under
// one "inference" span when a parent was attached with SetObs. Networks
// are analyzed on up to SetWorkers goroutines (snapshot parsing is the
// pipeline's dominant cost); the inventory and archive are only read, and
// results are collected in inventory order, so the output is identical at
// every worker count. On failure the lowest-inventory-index error is
// returned — the same error a sequential pass would surface first.
func (e *Engine) Analyze(window []months.Month) (map[string][]MonthAnalysis, error) {
	sp := e.obs.Start("inference")
	defer sp.End()
	start := time.Now()
	results, err := par.Map(e.workers, e.inv.Networks, func(_ int, nw *netmodel.Network) ([]MonthAnalysis, error) {
		return e.analyzeNetwork(nw.Name, window, sp)
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]MonthAnalysis, len(results))
	for i, ma := range results {
		out[e.inv.Networks[i].Name] = ma
	}
	sp.Count("networks", float64(len(out)))
	obs.Logger().Info("inference complete",
		"networks", len(out), "months", len(window),
		"elapsed", time.Since(start).Round(time.Millisecond))
	return out, nil
}
