package practices

import (
	"encoding/json"
	"fmt"
	"time"

	"mpa/internal/cache"
	"mpa/internal/ciscoios"
	"mpa/internal/confdiff"
	"mpa/internal/confmodel"
	"mpa/internal/events"
	"mpa/internal/junos"
	"mpa/internal/months"
	"mpa/internal/netmodel"
	"mpa/internal/nms"
	"mpa/internal/obs"
	"mpa/internal/par"
)

// monthHist records per-network-month inference latency in milliseconds;
// the buckets span sub-millisecond small networks to multi-second
// paper-scale ones.
var monthHist = obs.GetHistogram("inference.month_ms",
	0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000)

// ChangeDetail is one inferred configuration change with the attributes
// the characterization figures and event metrics need.
type ChangeDetail struct {
	Device    string
	Time      time.Time
	Automated bool
	// Types lists the vendor-agnostic stanza types the change touched.
	Types []confmodel.Type
	// Middlebox reports whether the changed device is a middlebox.
	Middlebox bool
}

// HasType reports whether the change touched the given stanza type.
//
// The linear scan is deliberate: Types holds the distinct stanza types of
// one change event — almost always one to three entries, bounded by
// confmodel.NumTypes — so a set would cost an allocation per ChangeDetail
// (inference builds one per change across every network-month) to speed up
// a scan that already fits in a cache line.
func (c ChangeDetail) HasType(t confmodel.Type) bool {
	for _, ty := range c.Types {
		if ty == t {
			return true
		}
	}
	return false
}

// HasRouterType reports whether the change touched a routing-protocol
// stanza. Like HasType, it scans: Types is tiny (see HasType).
func (c ChangeDetail) HasRouterType() bool {
	for _, ty := range c.Types {
		if ty.IsRouter() {
			return true
		}
	}
	return false
}

// MonthAnalysis is the inference output for one network-month: the 28
// practice metrics plus the underlying change details (for
// characterization and delta-sensitivity analyses).
type MonthAnalysis struct {
	Network string
	Month   months.Month
	Metrics Metrics
	Changes []ChangeDetail
}

// Engine infers practice metrics from inventory records and the snapshot
// archive. It is the analytics-side counterpart of the generator: it sees
// only raw data, never ground truth.
type Engine struct {
	inv     *netmodel.Inventory
	arch    *nms.Archive
	delta   time.Duration // change-event grouping threshold
	workers int           // goroutines for Analyze; 0 = process default

	cisco confmodel.Dialect
	junos confmodel.Dialect

	obs *obs.Span // parent span for analysis runs; nil = untraced

	// Content-addressed memoization of the engine's pure stages (see
	// internal/cache); all nil when caching is disabled. Cached values
	// (parsed configs, diffs, month analyses) are shared and immutable.
	parseCache *cache.Cache // snapshot text -> *confmodel.Config
	diffCache  *cache.Cache // snapshot text pair -> []confdiff.StanzaChange
	netCache   *cache.Cache // network inputs -> []MonthAnalysis

	// analysisKey digests the inputs of the last Analyze call (the
	// per-network keys in inventory order); valid only when caching was
	// enabled for that run.
	analysisKey   cache.Key
	analysisKeyOK bool
}

// NewEngine returns an inference engine over the given data sources using
// the paper's default event-grouping threshold (5 minutes).
func NewEngine(inv *netmodel.Inventory, arch *nms.Archive) *Engine {
	return &Engine{
		inv:   inv,
		arch:  arch,
		delta: events.DefaultDelta,
		cisco: ciscoios.Dialect{},
		junos: junos.Dialect{},
	}
}

// SetDelta overrides the change-event grouping threshold (Figure 3's
// sensitivity sweep). Non-positive disables grouping.
func (e *Engine) SetDelta(d time.Duration) { e.delta = d }

// SetObs attaches a parent span; subsequent Analyze runs record an
// "inference" span with per-network (and per-month) children under it.
func (e *Engine) SetObs(sp *obs.Span) { e.obs = sp }

// SetCache enables content-addressed memoization of the engine's pure
// stages: snapshot parsing, per-pair diffing, and whole per-network month
// analyses. Parse results and network analyses also use the on-disk tier
// when cfg.Dir is set, so a fresh process re-analyzing unchanged inputs
// skips all per-network work. Caching never changes results — a cold,
// warm, or disabled run produces byte-identical analyses.
func (e *Engine) SetCache(cfg cache.Config) {
	e.parseCache = cache.New("parse", cfg)
	e.diffCache = cache.New("confdiff", cfg)
	e.netCache = cache.New("practices", cfg)
}

// AnalysisKey returns the content digest of the last Analyze run's inputs
// (delta, window, inventory, snapshot streams, automation accounts), for
// keying downstream caches. ok is false when caching was disabled.
func (e *Engine) AnalysisKey() (key cache.Key, ok bool) {
	return e.analysisKey, e.analysisKeyOK
}

// SetWorkers bounds the goroutines Analyze uses to process networks
// concurrently. Zero or negative uses the process default
// (par.SetDefaultWorkers, initially all CPUs). The analysis output is
// identical at every worker count: each network's inference is
// independent and the per-network results are collected in inventory
// order.
func (e *Engine) SetWorkers(n int) { e.workers = n }

// dialect returns the device's vendor dialect.
func (e *Engine) dialect(dev *netmodel.Device) confmodel.Dialect {
	if dev.Vendor == netmodel.VendorCisco {
		return e.cisco
	}
	return e.junos
}

// netScratch is the per-worker reusable state behind Analyze: the dialect
// parsing scratch (field buffer + interner) and a diff buffer. A
// netScratch is owned by exactly one goroutine at a time — par.MapLocal
// hands each worker its own — which keeps parallel inference race-free
// while the buffers amortize across every snapshot the worker touches.
// It holds only caches and transient buffers, never results, so the
// analysis output is byte-identical at any worker count.
type netScratch struct {
	sc   *confmodel.Scratch
	diff []confdiff.StanzaChange
}

func newNetScratch() *netScratch { return &netScratch{sc: confmodel.NewScratch()} }

// parse parses a snapshot's text with the device's vendor dialect,
// memoized by text content when caching is enabled. The disk tier stores
// the canonical rendering of the parsed config — Render is the encode,
// Parse the decode, so the codec is exactly the dialect's (fuzz- and
// property-tested) round trip. The worker's scratch backs the parse;
// parsed configs retain only immutable strings (see confmodel.Scratch),
// so caching and sharing them across workers stays safe.
func (e *Engine) parse(ns *netScratch, dev *netmodel.Device, s *nms.Snapshot) (*confmodel.Config, error) {
	d := e.dialect(dev)
	parse := func(text string) (*confmodel.Config, error) {
		if sp, ok := d.(confmodel.ScratchParser); ok && ns != nil {
			return sp.ParseScratch(text, ns.sc)
		}
		return d.Parse(text)
	}
	var cfg *confmodel.Config
	var err error
	if e.parseCache == nil {
		cfg, err = parse(s.Text)
	} else {
		key := cache.KeyOf("parse/v1", d.Name(), s.Text)
		codec := cache.Codec[*confmodel.Config]{
			Encode: func(c *confmodel.Config) ([]byte, error) { return []byte(d.Render(c)), nil },
			Decode: func(b []byte) (*confmodel.Config, error) { return d.Parse(string(b)) },
		}
		cfg, err = cache.GetOrCompute(e.parseCache, key, codec, func() (*confmodel.Config, error) {
			return parse(s.Text)
		})
	}
	if err != nil {
		return nil, fmt.Errorf("practices: parsing snapshot of %s at %v: %w", dev.Name, s.Time, err)
	}
	return cfg, nil
}

// diffSnapshots computes the typed stanza changes between two successive
// snapshots, memoized per text pair (memory tier only: diffs are cheap to
// recompute from the cached parses, so they do not earn disk files).
// Without the cache the diff lands in the worker's reusable buffer — the
// result is only valid until the next diffSnapshots call on the same
// scratch, which computeNetwork respects by consuming it immediately.
// Cached diffs are shared across callers and so must own their memory.
func (e *Engine) diffSnapshots(ns *netScratch, dialect, oldText, newText string, oldCfg, newCfg *confmodel.Config) []confdiff.StanzaChange {
	if e.diffCache == nil {
		if ns != nil {
			ns.diff = confdiff.AppendDiff(ns.diff[:0], oldCfg, newCfg)
			return ns.diff
		}
		return confdiff.Diff(oldCfg, newCfg)
	}
	key := cache.KeyOf("confdiff/v1", dialect, oldText, newText)
	diff, _ := cache.GetOrCompute(e.diffCache, key, cache.Codec[[]confdiff.StanzaChange]{},
		func() ([]confdiff.StanzaChange, error) { return confdiff.Diff(oldCfg, newCfg), nil })
	return diff
}

// networkKey digests everything the network's month analyses depend on:
// the grouping threshold, the window, the device records, every snapshot's
// time, login, and full text, and the automation-account set.
func (e *Engine) networkKey(nw *netmodel.Network, window []months.Month) cache.Key {
	h := cache.NewHasher("practices/v1")
	h.Int(int64(e.delta))
	h.String(nw.Name)
	h.Int(int64(len(window)))
	for _, m := range window {
		h.String(m.String())
	}
	for _, login := range e.arch.SpecialAccounts() {
		h.String(login)
	}
	h.Int(int64(len(nw.Devices)))
	for _, dev := range nw.Devices {
		h.String(dev.Name).String(dev.Vendor.String()).String(dev.Model)
		h.String(dev.Role.String()).String(dev.Firmware).String(dev.MgmtIP)
		hist := e.arch.Snapshots(dev.Name)
		h.Int(int64(len(hist)))
		for _, snap := range hist {
			h.Time(snap.Time).String(snap.Login).String(snap.Text)
		}
	}
	return h.Sum()
}

// monthAnalysisCodec serializes a network's analyses for the disk tier.
// JSON round-trips every field exactly: float64 via shortest-form
// encoding, times via RFC3339 with nanoseconds.
var monthAnalysisCodec = cache.Codec[[]MonthAnalysis]{
	Encode: func(ma []MonthAnalysis) ([]byte, error) { return json.Marshal(ma) },
	Decode: func(b []byte) ([]MonthAnalysis, error) {
		var ma []MonthAnalysis
		if err := json.Unmarshal(b, &ma); err != nil {
			return nil, err
		}
		return ma, nil
	},
}

// AnalyzeNetwork computes the metrics for every month of the window for
// one network. It walks each device's snapshot stream exactly once,
// parsing every snapshot a single time, and evaluates design metrics from
// the live end-of-month configuration state. With caching enabled, a
// network whose inputs are unchanged is answered from the cache without
// any parsing or diffing.
func (e *Engine) AnalyzeNetwork(name string, window []months.Month) ([]MonthAnalysis, error) {
	ma, _, err := e.analyzeNetwork(name, window, e.obs, newNetScratch())
	return ma, err
}

// analyzeNetwork is AnalyzeNetwork under an explicit parent span and
// worker-owned scratch, additionally returning the network's content key
// (zero when caching is disabled).
func (e *Engine) analyzeNetwork(name string, window []months.Month, parent *obs.Span, ns *netScratch) ([]MonthAnalysis, cache.Key, error) {
	nw := e.inv.Network(name)
	if nw == nil {
		return nil, cache.Key{}, fmt.Errorf("practices: unknown network %q", name)
	}
	if e.netCache == nil {
		ma, err := e.computeNetwork(nw, window, parent, ns)
		return ma, cache.Key{}, err
	}
	key := e.networkKey(nw, window)
	ma, err := cache.GetOrCompute(e.netCache, key, monthAnalysisCodec,
		func() ([]MonthAnalysis, error) { return e.computeNetwork(nw, window, parent, ns) })
	return ma, key, err
}

// computeNetwork runs the actual per-network inference.
func (e *Engine) computeNetwork(nw *netmodel.Network, window []months.Month, parent *obs.Span, ns *netScratch) ([]MonthAnalysis, error) {
	name := nw.Name
	nsp := parent.Start(name)
	defer nsp.End()

	// Per-device cursor over the snapshot history.
	type cursor struct {
		dev      *netmodel.Device
		hist     []*nms.Snapshot
		pos      int               // next snapshot to consume
		state    *confmodel.Config // config as of consumed snapshots
		prevText string            // text of the snapshot state was parsed from
	}
	cursors := make([]*cursor, 0, len(nw.Devices))
	for _, dev := range nw.Devices {
		cursors = append(cursors, &cursor{dev: dev, hist: e.arch.Snapshots(dev.Name)})
	}

	mgmtOwner := map[string]string{}
	for _, dev := range nw.Devices {
		mgmtOwner[dev.MgmtIP] = dev.Name
	}

	var snapsParsed, diffsComputed, changesFound, eventsGrouped int
	out := make([]MonthAnalysis, 0, len(window))
	for _, m := range window {
		msp := nsp.Start(m.String())
		monthStart := time.Now()
		end := m.End()
		var changes []ChangeDetail
		for _, cu := range cursors {
			for cu.pos < len(cu.hist) && cu.hist[cu.pos].Time.Before(end) {
				snap := cu.hist[cu.pos]
				cu.pos++
				cfg, err := e.parse(ns, cu.dev, snap)
				snapsParsed++
				if err != nil {
					obs.GetCounter("inference.parse_failures").Add(1)
					nsp.Count("parse_failures", 1)
					msp.End()
					return nil, err
				}
				if cu.state == nil {
					cu.state, cu.prevText = cfg, snap.Text // baseline import, not a change
					continue
				}
				diff := e.diffSnapshots(ns, e.dialect(cu.dev).Name(), cu.prevText, snap.Text, cu.state, cfg)
				diffsComputed++
				cu.state, cu.prevText = cfg, snap.Text
				if len(diff) == 0 {
					continue // identical snapshot: no configuration change
				}
				// Only changes inside the analysis window count.
				if months.Of(snap.Time) != m {
					continue
				}
				// Distinct types in deterministic order: the diff is sorted
				// by type, so consecutive dedup suffices.
				types := make([]confmodel.Type, 0, 2)
				for _, ch := range diff {
					if len(types) == 0 || types[len(types)-1] != ch.Type {
						types = append(types, ch.Type)
					}
				}
				changes = append(changes, ChangeDetail{
					Device:    cu.dev.Name,
					Time:      snap.Time,
					Automated: e.arch.IsAutomated(snap.Login),
					Types:     types,
					Middlebox: cu.dev.Role.IsMiddlebox(),
				})
			}
		}

		// Assemble end-of-month configuration states.
		var configs []*confmodel.Config
		for _, cu := range cursors {
			if cu.state != nil {
				configs = append(configs, cu.state)
			}
		}

		metrics := Metrics{}
		e.designMetrics(metrics, nw, configs, mgmtOwner)
		nEvents := e.operationalMetrics(metrics, nw, changes)
		out = append(out, MonthAnalysis{Network: name, Month: m, Metrics: metrics, Changes: changes})

		changesFound += len(changes)
		eventsGrouped += nEvents
		msp.Count("changes", float64(len(changes)))
		msp.Count("events", float64(nEvents))
		msp.End()
		monthHist.Observe(float64(time.Since(monthStart).Microseconds()) / 1000)
	}
	nsp.Count("snapshots_parsed", float64(snapsParsed))
	nsp.Count("diffs", float64(diffsComputed))
	nsp.Count("changes", float64(changesFound))
	nsp.Count("events", float64(eventsGrouped))
	// Roll the totals up to the stage span ("inference" under Analyze).
	parent.Count("snapshots_parsed", float64(snapsParsed))
	parent.Count("diffs", float64(diffsComputed))
	parent.Count("changes", float64(changesFound))
	parent.Count("events", float64(eventsGrouped))
	obs.GetCounter("inference.snapshots_parsed").Add(int64(snapsParsed))
	obs.GetCounter("inference.diffs").Add(int64(diffsComputed))
	obs.GetCounter("inference.changes").Add(int64(changesFound))
	obs.GetCounter("inference.events_grouped").Add(int64(eventsGrouped))
	return out, nil
}

// Analyze runs AnalyzeNetwork for every network in the inventory, under
// one "inference" span when a parent was attached with SetObs. Networks
// are analyzed on up to SetWorkers goroutines (snapshot parsing is the
// pipeline's dominant cost); the inventory and archive are only read, and
// results are collected in inventory order, so the output is identical at
// every worker count. On failure the lowest-inventory-index error is
// returned — the same error a sequential pass would surface first.
func (e *Engine) Analyze(window []months.Month) (map[string][]MonthAnalysis, error) {
	sp := e.obs.Start("inference")
	defer sp.End()
	start := time.Now()
	type netResult struct {
		ma  []MonthAnalysis
		key cache.Key
	}
	e.analysisKeyOK = false
	pt := obs.StartProgress("inference", int64(len(e.inv.Networks)))
	results, err := par.MapLocal(e.workers, e.inv.Networks, newNetScratch,
		func(ns *netScratch, _ int, nw *netmodel.Network) (netResult, error) {
			ma, key, err := e.analyzeNetwork(nw.Name, window, sp, ns)
			pt.Add(1)
			return netResult{ma: ma, key: key}, err
		})
	pt.Done()
	if err != nil {
		return nil, err
	}
	out := make(map[string][]MonthAnalysis, len(results))
	keys := cache.NewHasher("practices-all/v1")
	for i, r := range results {
		out[e.inv.Networks[i].Name] = r.ma
		keys.Key(r.key)
	}
	if e.netCache != nil {
		e.analysisKey = keys.Sum()
		e.analysisKeyOK = true
	}
	sp.Count("networks", float64(len(out)))
	obs.Logger().Info("inference complete",
		"networks", len(out), "months", len(window),
		"elapsed", time.Since(start).Round(time.Millisecond))
	return out, nil
}
