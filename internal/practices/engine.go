package practices

import (
	"fmt"
	"time"

	"mpa/internal/ciscoios"
	"mpa/internal/confdiff"
	"mpa/internal/confmodel"
	"mpa/internal/events"
	"mpa/internal/junos"
	"mpa/internal/months"
	"mpa/internal/netmodel"
	"mpa/internal/nms"
)

// ChangeDetail is one inferred configuration change with the attributes
// the characterization figures and event metrics need.
type ChangeDetail struct {
	Device    string
	Time      time.Time
	Automated bool
	// Types lists the vendor-agnostic stanza types the change touched.
	Types []confmodel.Type
	// Middlebox reports whether the changed device is a middlebox.
	Middlebox bool
}

// HasType reports whether the change touched the given stanza type.
func (c ChangeDetail) HasType(t confmodel.Type) bool {
	for _, ty := range c.Types {
		if ty == t {
			return true
		}
	}
	return false
}

// HasRouterType reports whether the change touched a routing-protocol
// stanza.
func (c ChangeDetail) HasRouterType() bool {
	for _, ty := range c.Types {
		if ty.IsRouter() {
			return true
		}
	}
	return false
}

// MonthAnalysis is the inference output for one network-month: the 28
// practice metrics plus the underlying change details (for
// characterization and delta-sensitivity analyses).
type MonthAnalysis struct {
	Network string
	Month   months.Month
	Metrics Metrics
	Changes []ChangeDetail
}

// Engine infers practice metrics from inventory records and the snapshot
// archive. It is the analytics-side counterpart of the generator: it sees
// only raw data, never ground truth.
type Engine struct {
	inv   *netmodel.Inventory
	arch  *nms.Archive
	delta time.Duration // change-event grouping threshold

	cisco confmodel.Dialect
	junos confmodel.Dialect
}

// NewEngine returns an inference engine over the given data sources using
// the paper's default event-grouping threshold (5 minutes).
func NewEngine(inv *netmodel.Inventory, arch *nms.Archive) *Engine {
	return &Engine{
		inv:   inv,
		arch:  arch,
		delta: events.DefaultDelta,
		cisco: ciscoios.Dialect{},
		junos: junos.Dialect{},
	}
}

// SetDelta overrides the change-event grouping threshold (Figure 3's
// sensitivity sweep). Non-positive disables grouping.
func (e *Engine) SetDelta(d time.Duration) { e.delta = d }

// parse parses a snapshot's text with the device's vendor dialect.
func (e *Engine) parse(dev *netmodel.Device, s *nms.Snapshot) (*confmodel.Config, error) {
	d := e.junos
	if dev.Vendor == netmodel.VendorCisco {
		d = e.cisco
	}
	cfg, err := d.Parse(s.Text)
	if err != nil {
		return nil, fmt.Errorf("practices: parsing snapshot of %s at %v: %w", dev.Name, s.Time, err)
	}
	return cfg, nil
}

// AnalyzeNetwork computes the metrics for every month of the window for
// one network. It walks each device's snapshot stream exactly once,
// parsing every snapshot a single time, and evaluates design metrics from
// the live end-of-month configuration state.
func (e *Engine) AnalyzeNetwork(name string, window []months.Month) ([]MonthAnalysis, error) {
	nw := e.inv.Network(name)
	if nw == nil {
		return nil, fmt.Errorf("practices: unknown network %q", name)
	}

	// Per-device cursor over the snapshot history.
	type cursor struct {
		dev   *netmodel.Device
		hist  []*nms.Snapshot
		pos   int               // next snapshot to consume
		state *confmodel.Config // config as of consumed snapshots
	}
	cursors := make([]*cursor, 0, len(nw.Devices))
	for _, dev := range nw.Devices {
		cursors = append(cursors, &cursor{dev: dev, hist: e.arch.Snapshots(dev.Name)})
	}

	mgmtOwner := map[string]string{}
	for _, dev := range nw.Devices {
		mgmtOwner[dev.MgmtIP] = dev.Name
	}

	out := make([]MonthAnalysis, 0, len(window))
	for _, m := range window {
		end := m.End()
		var changes []ChangeDetail
		for _, cu := range cursors {
			for cu.pos < len(cu.hist) && cu.hist[cu.pos].Time.Before(end) {
				snap := cu.hist[cu.pos]
				cu.pos++
				cfg, err := e.parse(cu.dev, snap)
				if err != nil {
					return nil, err
				}
				if cu.state == nil {
					cu.state = cfg // baseline import, not a change
					continue
				}
				diff := confdiff.Diff(cu.state, cfg)
				cu.state = cfg
				if len(diff) == 0 {
					continue // identical snapshot: no configuration change
				}
				// Only changes inside the analysis window count.
				if months.Of(snap.Time) != m {
					continue
				}
				types := make([]confmodel.Type, 0, 2)
				for t := range confdiff.Types(diff) {
					types = append(types, t)
				}
				changes = append(changes, ChangeDetail{
					Device:    cu.dev.Name,
					Time:      snap.Time,
					Automated: e.arch.IsAutomated(snap.Login),
					Types:     types,
					Middlebox: cu.dev.Role.IsMiddlebox(),
				})
			}
		}

		// Assemble end-of-month configuration states.
		var configs []*confmodel.Config
		for _, cu := range cursors {
			if cu.state != nil {
				configs = append(configs, cu.state)
			}
		}

		metrics := Metrics{}
		e.designMetrics(metrics, nw, configs, mgmtOwner)
		e.operationalMetrics(metrics, nw, changes)
		out = append(out, MonthAnalysis{Network: name, Month: m, Metrics: metrics, Changes: changes})
	}
	return out, nil
}

// Analyze runs AnalyzeNetwork for every network in the inventory.
func (e *Engine) Analyze(window []months.Month) (map[string][]MonthAnalysis, error) {
	out := make(map[string][]MonthAnalysis, len(e.inv.Networks))
	for _, nw := range e.inv.Networks {
		ma, err := e.AnalyzeNetwork(nw.Name, window)
		if err != nil {
			return nil, err
		}
		out[nw.Name] = ma
	}
	return out, nil
}
