package practices

import (
	"math"
	"testing"
	"time"

	"mpa/internal/confmodel"
	"mpa/internal/months"
	"mpa/internal/osp"
)

// analysis over a shared small OSP, computed once.
var (
	testOSP      = osp.Generate(osp.Small(11))
	testAnalysis = mustAnalyze()
)

func mustAnalyze() map[string][]MonthAnalysis {
	e := NewEngine(testOSP.Inventory, testOSP.Archive)
	out, err := e.Analyze(testOSP.Params.Months())
	if err != nil {
		panic(err)
	}
	return out
}

func TestAllMetricsPresent(t *testing.T) {
	for name, mas := range testAnalysis {
		for _, ma := range mas {
			for _, metric := range MetricNames {
				if _, ok := ma.Metrics[metric]; !ok {
					t.Fatalf("network %s month %v missing metric %s", name, ma.Month, metric)
				}
			}
		}
	}
}

func TestMetricNamesCount(t *testing.T) {
	// The paper's confounder set: all 28 practice metrics (§5.2.3).
	if len(MetricNames) != 28 {
		t.Fatalf("MetricNames has %d entries, want 28", len(MetricNames))
	}
	seen := map[string]bool{}
	for _, n := range MetricNames {
		if seen[n] {
			t.Fatalf("duplicate metric %s", n)
		}
		seen[n] = true
	}
}

func TestCategorySplit(t *testing.T) {
	design, op := 0, 0
	for _, n := range MetricNames {
		switch Category(n) {
		case "design":
			design++
		case "operational":
			op++
		default:
			t.Fatalf("metric %s has unknown category", n)
		}
	}
	if design != 17 || op != 11 {
		t.Errorf("design=%d operational=%d, want 17/11", design, op)
	}
	if Category("bogus") != "unknown" {
		t.Error("unknown category mapping")
	}
}

func TestDisplayNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range MetricNames {
		d := DisplayName(n)
		if d == "" || seen[d] {
			t.Errorf("display name for %s is %q (dup or empty)", n, d)
		}
		seen[d] = true
	}
}

func TestDeviceCountsMatchInventory(t *testing.T) {
	for _, nw := range testOSP.Inventory.Networks {
		for _, ma := range testAnalysis[nw.Name] {
			if got := ma.Metrics[MetricDevices]; got != float64(len(nw.Devices)) {
				t.Fatalf("%s: no_devices = %v, inventory %d", nw.Name, got, len(nw.Devices))
			}
			if got := ma.Metrics[MetricModels]; got != float64(len(nw.Models())) {
				t.Fatalf("%s: no_models = %v, inventory %d", nw.Name, got, len(nw.Models()))
			}
		}
	}
}

func TestConfigChangesMatchGroundTruth(t *testing.T) {
	// The inferred per-month change count must equal the generator's
	// ground truth exactly: both count successive differing snapshots.
	for _, nw := range testOSP.Inventory.Networks {
		truth := testOSP.Truth[nw.Name]
		for _, ma := range testAnalysis[nw.Name] {
			want := truth[ma.Month].DeviceChanges
			if got := int(ma.Metrics[MetricConfigChanges]); got != want {
				t.Fatalf("%s %v: inferred %d changes, truth %d", nw.Name, ma.Month, got, want)
			}
			if got := int(ma.Metrics[MetricDevicesChanged]); got != truth[ma.Month].DevicesChanged {
				t.Fatalf("%s %v: inferred %d devices changed, truth %d",
					nw.Name, ma.Month, got, truth[ma.Month].DevicesChanged)
			}
		}
	}
}

func TestChangeEventsCloseToGroundTruth(t *testing.T) {
	// Event grouping can merge two generated events that landed within
	// five minutes of each other, and can split a long edit session whose
	// middle snapshots were no-ops, so exact per-month agreement is not
	// expected — but the aggregate must track closely.
	var totalGot, totalWant float64
	for _, nw := range testOSP.Inventory.Networks {
		truth := testOSP.Truth[nw.Name]
		for _, ma := range testAnalysis[nw.Name] {
			totalGot += ma.Metrics[MetricChangeEvents]
			totalWant += float64(truth[ma.Month].Events)
		}
	}
	if totalWant == 0 {
		t.Fatal("no events in ground truth")
	}
	if ratio := totalGot / totalWant; ratio < 0.93 || ratio > 1.07 {
		t.Errorf("inferred/truth event ratio = %.3f, want within [0.93, 1.07]", ratio)
	}
}

func TestChangeTypesMatchGroundTruth(t *testing.T) {
	mismatches, total := 0, 0
	for _, nw := range testOSP.Inventory.Networks {
		truth := testOSP.Truth[nw.Name]
		for _, ma := range testAnalysis[nw.Name] {
			total++
			if int(ma.Metrics[MetricChangeTypes]) != truth[ma.Month].ChangeTypes {
				mismatches++
			}
		}
	}
	if mismatches > 0 {
		t.Errorf("change-type count mismatches in %d/%d network-months", mismatches, total)
	}
}

func TestAutomationFractionTracksTruth(t *testing.T) {
	// Aggregate automated-event fraction should track the ground truth
	// (slack for event merging at boundaries).
	var gotSum, wantSum, n float64
	for _, nw := range testOSP.Inventory.Networks {
		truth := testOSP.Truth[nw.Name]
		for _, ma := range testAnalysis[nw.Name] {
			if truth[ma.Month].Events == 0 {
				continue
			}
			gotSum += ma.Metrics[MetricFracEventsAuto]
			wantSum += truth[ma.Month].FracAutomated
			n++
		}
	}
	if n == 0 {
		t.Fatal("no months with events")
	}
	if math.Abs(gotSum/n-wantSum/n) > 0.03 {
		t.Errorf("mean automated fraction: inferred %.3f vs truth %.3f", gotSum/n, wantSum/n)
	}
}

func TestEventTypeFractionsTrackTruth(t *testing.T) {
	type pair struct{ got, want float64 }
	agg := map[string]*pair{"acl": {}, "iface": {}, "mbox": {}, "router": {}}
	var n float64
	for _, nw := range testOSP.Inventory.Networks {
		truth := testOSP.Truth[nw.Name]
		for _, ma := range testAnalysis[nw.Name] {
			mt := truth[ma.Month]
			if mt.Events == 0 {
				continue
			}
			n++
			agg["acl"].got += ma.Metrics[MetricFracEventsACL]
			agg["acl"].want += mt.FracACLEvents
			agg["iface"].got += ma.Metrics[MetricFracEventsIface]
			agg["iface"].want += mt.FracIfaceEvents
			agg["mbox"].got += ma.Metrics[MetricFracEventsMbox]
			agg["mbox"].want += mt.FracMboxEvents
			agg["router"].got += ma.Metrics[MetricFracEventsRtr]
			agg["router"].want += mt.FracRouterEvts
		}
	}
	for name, p := range agg {
		if math.Abs(p.got/n-p.want/n) > 0.05 {
			t.Errorf("%s fraction: inferred %.3f vs truth %.3f", name, p.got/n, p.want/n)
		}
	}
}

func TestVLANCountsPlausible(t *testing.T) {
	// First-month VLAN count should be close to the network's trait (the
	// union of per-device subsets may be slightly below the trait if some
	// VLAN was never assigned, and grows as VLAN-add events land).
	low := 0
	for _, nw := range testOSP.Inventory.Networks {
		trait := testOSP.Traits[nw.Name]
		first := testAnalysis[nw.Name][0]
		got := first.Metrics[MetricVLANs]
		if got > float64(trait.VLANCount)+20 {
			t.Fatalf("%s: inferred %v VLANs, trait %d", nw.Name, got, trait.VLANCount)
		}
		if got < float64(trait.VLANCount)*0.5 {
			low++
		}
	}
	if low > len(testOSP.Inventory.Networks)/4 {
		t.Errorf("%d networks infer < half their VLAN trait", low)
	}
}

func TestRoutingProtocolDetection(t *testing.T) {
	for _, nw := range testOSP.Inventory.Networks {
		trait := testOSP.Traits[nw.Name]
		ma := testAnalysis[nw.Name][0]
		hasBGP := ma.Metrics[MetricBGPInstances] > 0
		hasOSPF := ma.Metrics[MetricOSPFInstances] > 0
		// BGP presence requires >= 1 router in the network.
		routers := 0
		for _, d := range nw.Devices {
			if d.Role.String() == "router" {
				routers++
			}
		}
		if trait.UsesBGP && routers > 0 && !hasBGP {
			t.Errorf("%s: trait uses BGP but none inferred", nw.Name)
		}
		if !trait.UsesBGP && hasBGP {
			t.Errorf("%s: BGP inferred but trait says unused", nw.Name)
		}
		if !trait.UsesOSPF && hasOSPF {
			t.Errorf("%s: OSPF inferred but trait says unused", nw.Name)
		}
	}
}

func TestEntropiesInRange(t *testing.T) {
	for name, mas := range testAnalysis {
		for _, ma := range mas {
			for _, metric := range []string{MetricHardwareEntropy, MetricFirmwareEntropy} {
				v := ma.Metrics[metric]
				if v < 0 || v > 1 {
					t.Fatalf("%s: %s = %v out of [0,1]", name, metric, v)
				}
			}
		}
	}
}

func TestFractionMetricsInRange(t *testing.T) {
	fracs := []string{
		MetricFracDevChanged, MetricFracEventsAuto, MetricFracEventsIface,
		MetricFracEventsACL, MetricFracEventsRtr, MetricFracEventsMbox,
	}
	for name, mas := range testAnalysis {
		for _, ma := range mas {
			for _, metric := range fracs {
				v := ma.Metrics[metric]
				if v < 0 || v > 1+1e-9 {
					t.Fatalf("%s %v: %s = %v", name, ma.Month, metric, v)
				}
			}
		}
	}
}

func TestComplexityNonNegative(t *testing.T) {
	for name, mas := range testAnalysis {
		for _, ma := range mas {
			if ma.Metrics[MetricIntraComplexity] < 0 || ma.Metrics[MetricInterComplexity] < 0 {
				t.Fatalf("%s: negative complexity", name)
			}
		}
	}
}

func TestIntraComplexityCorrelatesWithVLANs(t *testing.T) {
	// The confounding structure the causal analysis must face: intra-
	// device complexity rises with VLAN count (Cisco interface->VLAN
	// references). Check a positive correlation across networks.
	var vlans, intra []float64
	for _, mas := range testAnalysis {
		vlans = append(vlans, mas[0].Metrics[MetricVLANs])
		intra = append(intra, mas[0].Metrics[MetricIntraComplexity])
	}
	r := pearson(vlans, intra)
	if r < 0.3 {
		t.Errorf("VLAN/intra-complexity correlation = %.3f, want > 0.3", r)
	}
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range xs {
		sxy += (xs[i] - mx) * (ys[i] - my)
		sxx += (xs[i] - mx) * (xs[i] - mx)
		syy += (ys[i] - my) * (ys[i] - my)
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

func TestUnknownNetworkErrors(t *testing.T) {
	e := NewEngine(testOSP.Inventory, testOSP.Archive)
	if _, err := e.AnalyzeNetwork("no-such-network", testOSP.Params.Months()); err == nil {
		t.Fatal("expected error for unknown network")
	}
}

func TestDeltaSweepMonotone(t *testing.T) {
	// Figure 3: larger grouping thresholds can only merge events.
	name := testOSP.Inventory.Networks[0].Name
	var mas []MonthAnalysis
	for _, ma := range testAnalysis[name] {
		mas = append(mas, ma)
	}
	var changes []ChangeDetail
	for _, ma := range mas {
		changes = append(changes, ma.Changes...)
	}
	if len(changes) == 0 {
		t.Skip("no changes in first network")
	}
	prev := len(changes) + 1
	for _, mins := range []int{0, 1, 2, 5, 10, 15, 30} {
		n := len(GroupChanges(changes, time.Duration(mins)*time.Minute))
		if n > prev {
			t.Fatalf("delta %d min produced more events (%d) than smaller delta (%d)", mins, n, prev)
		}
		prev = n
	}
}

func TestChangeDetailHelpers(t *testing.T) {
	c := ChangeDetail{Types: []confmodel.Type{confmodel.TypeACL, confmodel.TypeBGP}}
	if !c.HasType(confmodel.TypeACL) || c.HasType(confmodel.TypeVLAN) {
		t.Error("HasType wrong")
	}
	if !c.HasRouterType() {
		t.Error("HasRouterType should be true for BGP")
	}
	c2 := ChangeDetail{Types: []confmodel.Type{confmodel.TypeUser}}
	if c2.HasRouterType() {
		t.Error("HasRouterType wrong for user change")
	}
}

func TestHasTypeExhaustive(t *testing.T) {
	var empty ChangeDetail
	for ty := confmodel.Type(0); int(ty) < confmodel.NumTypes; ty++ {
		if empty.HasType(ty) {
			t.Fatalf("empty change HasType(%v) = true", ty)
		}
	}
	if empty.HasRouterType() {
		t.Error("empty change HasRouterType = true")
	}

	// A change carrying every type answers true for each, and duplicate
	// entries (which diffing can produce for multi-stanza changes) don't
	// confuse the scan.
	all := ChangeDetail{}
	for ty := confmodel.Type(0); int(ty) < confmodel.NumTypes; ty++ {
		all.Types = append(all.Types, ty, ty)
	}
	for ty := confmodel.Type(0); int(ty) < confmodel.NumTypes; ty++ {
		if !all.HasType(ty) {
			t.Errorf("HasType(%v) = false on all-types change", ty)
		}
	}
	if !all.HasRouterType() {
		t.Error("HasRouterType = false on all-types change")
	}
}

func TestHasRouterTypeMatchesIsRouter(t *testing.T) {
	// HasRouterType must agree with confmodel.Type.IsRouter for every
	// single-type change, so the two definitions of "router stanza" can
	// never drift apart.
	for ty := confmodel.Type(0); int(ty) < confmodel.NumTypes; ty++ {
		c := ChangeDetail{Types: []confmodel.Type{ty}}
		if got, want := c.HasRouterType(), ty.IsRouter(); got != want {
			t.Errorf("HasRouterType([%v]) = %v, IsRouter = %v", ty, got, want)
		}
	}
}

func TestMonthsAlignment(t *testing.T) {
	window := testOSP.Params.Months()
	for name, mas := range testAnalysis {
		if len(mas) != len(window) {
			t.Fatalf("%s: %d month analyses for %d months", name, len(mas), len(window))
		}
		for i, ma := range mas {
			if ma.Month != window[i] {
				t.Fatalf("%s: month %d is %v, want %v", name, i, ma.Month, window[i])
			}
			if ma.Network != name {
				t.Fatalf("analysis network %q under key %q", ma.Network, name)
			}
		}
	}
}

var _ = months.Study // keep import used if assertions change
