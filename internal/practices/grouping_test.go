package practices

import (
	"testing"
	"time"

	"mpa/internal/confmodel"
)

func cd(dev string, minuteOffset int, types ...confmodel.Type) ChangeDetail {
	base := time.Date(2014, 3, 1, 10, 0, 0, 0, time.UTC)
	return ChangeDetail{
		Device: dev,
		Time:   base.Add(time.Duration(minuteOffset) * time.Minute),
		Types:  types,
	}
}

func TestTypedGroupingSplitsUnrelatedWork(t *testing.T) {
	// An ACL rollout on two firewalls interleaved with an unrelated NTP
	// tweak on a switch: plain grouping fuses all three, typed grouping
	// separates the NTP change.
	changes := []ChangeDetail{
		cd("fw1", 0, confmodel.TypeACL),
		cd("sw9", 1, confmodel.TypeNTP),
		cd("fw2", 2, confmodel.TypeACL),
	}
	plain := GroupChanges(changes, 5*time.Minute)
	if len(plain) != 1 {
		t.Fatalf("plain groups = %d, want 1", len(plain))
	}
	typed := GroupChangesTyped(changes, 5*time.Minute)
	if len(typed) != 2 {
		t.Fatalf("typed groups = %d, want 2", len(typed))
	}
	sizes := map[int]int{}
	for _, g := range typed {
		sizes[len(g)]++
	}
	if sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("typed group sizes = %v", sizes)
	}
}

func TestTypedGroupingKeepsSameDeviceSession(t *testing.T) {
	// Mixed-type edits on one device stay one event (a session).
	changes := []ChangeDetail{
		cd("sw1", 0, confmodel.TypeACL),
		cd("sw1", 1, confmodel.TypeNTP),
		cd("sw1", 2, confmodel.TypeQoS),
	}
	typed := GroupChangesTyped(changes, 5*time.Minute)
	if len(typed) != 1 {
		t.Fatalf("typed groups = %d, want 1 (same-device session)", len(typed))
	}
}

func TestTypedGroupingBridgesVendorQuirk(t *testing.T) {
	// A VLAN rollout typed as interface on the Cisco device and vlan on
	// the Juniper device must remain one event.
	changes := []ChangeDetail{
		cd("cisco-sw", 0, confmodel.TypeInterface, confmodel.TypeVLAN),
		cd("junos-sw", 1, confmodel.TypeVLAN),
		cd("cisco-sw2", 2, confmodel.TypeInterface),
	}
	typed := GroupChangesTyped(changes, 5*time.Minute)
	if len(typed) != 1 {
		t.Fatalf("typed groups = %d, want 1 (vendor quirk bridged)", len(typed))
	}
}

func TestTypedGroupingRespectsTimeChains(t *testing.T) {
	// Same type but far apart in time: still separate events.
	changes := []ChangeDetail{
		cd("fw1", 0, confmodel.TypeACL),
		cd("fw2", 60, confmodel.TypeACL),
	}
	typed := GroupChangesTyped(changes, 5*time.Minute)
	if len(typed) != 2 {
		t.Fatalf("typed groups = %d, want 2", len(typed))
	}
}

func TestTypedGroupingNeverFewerThanPlain(t *testing.T) {
	// Typed grouping refines plain grouping: it can only split.
	name := testOSP.Inventory.Networks[0].Name
	var changes []ChangeDetail
	for _, ma := range testAnalysis[name] {
		changes = append(changes, ma.Changes...)
	}
	if len(changes) == 0 {
		t.Skip("no changes in first network")
	}
	plain := GroupChanges(changes, 5*time.Minute)
	typed := GroupChangesTyped(changes, 5*time.Minute)
	if len(typed) < len(plain) {
		t.Errorf("typed %d < plain %d", len(typed), len(plain))
	}
	// Total change count preserved.
	count := func(groups [][]ChangeDetail) int {
		total := 0
		for _, g := range groups {
			total += len(g)
		}
		return total
	}
	if count(typed) != len(changes) || count(plain) != len(changes) {
		t.Error("grouping lost or duplicated changes")
	}
}

func TestTypedGroupingEmpty(t *testing.T) {
	if got := GroupChangesTyped(nil, time.Minute); got != nil {
		t.Errorf("empty input produced %v", got)
	}
}
