package practices

import (
	"time"

	"mpa/internal/confmodel"
	"mpa/internal/events"
)

// GroupChangesTyped implements the refinement the paper leaves as future
// work (§2.2: "we plan to also consider the change type and affected
// entities to more finely group related changes"): changes are first
// chained by time as usual, then each time-chain is split into connected
// components under the relation "shares at least one vendor-agnostic
// stanza type or is on the same device". Two unrelated operations that
// happen to interleave in time (e.g. an ACL rollout and an unrelated NTP
// tweak) therefore become separate events, while a multi-device VLAN
// rollout stays one event even on vendors that type the change
// differently (interface on Cisco, vlan on Juniper) because the device
// link keeps per-device sessions attached.
func GroupChangesTyped(changes []ChangeDetail, delta time.Duration) [][]ChangeDetail {
	timeGroups := events.GroupBy(changes, delta,
		func(c ChangeDetail) time.Time { return c.Time },
		func(c ChangeDetail) string { return c.Device })
	var out [][]ChangeDetail
	for _, g := range timeGroups {
		out = append(out, splitByAffinity(g)...)
	}
	return out
}

// splitByAffinity partitions one time-chained group into connected
// components under type/device affinity.
func splitByAffinity(group []ChangeDetail) [][]ChangeDetail {
	n := len(group)
	if n <= 1 {
		return [][]ChangeDetail{group}
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// Link changes sharing a type or a device. Index by type and device
	// to stay linear.
	byType := map[confmodel.Type]int{}
	byDevice := map[string]int{}
	for i, c := range group {
		for _, ty := range c.Types {
			if j, ok := byType[ty]; ok {
				union(i, j)
			} else {
				byType[ty] = i
			}
		}
		if j, ok := byDevice[c.Device]; ok {
			union(i, j)
		} else {
			byDevice[c.Device] = i
		}
	}
	// VLAN-related types are linked to interface changes: the same logical
	// membership edit is typed differently across vendors (paper §2.2).
	if vi, ok := byType[confmodel.TypeVLAN]; ok {
		if ii, ok2 := byType[confmodel.TypeInterface]; ok2 {
			union(vi, ii)
		}
	}

	byRoot := map[int][]ChangeDetail{}
	var roots []int
	for i, c := range group {
		r := find(i)
		if _, ok := byRoot[r]; !ok {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], c)
	}
	out := make([][]ChangeDetail, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}
