// Package practices implements MPA's inference engine (paper §2): it
// reads the three raw data sources — inventory records, the configuration
// snapshot archive, and vendor configuration text — and computes the 28
// management-practice metrics of Table 1 per network and month, along with
// the characterization detail the Appendix-A figures need.
package practices

// Metric names, in canonical order. The first 17 are design practices
// (long-term structure and provisioning decisions, D1-D6); the remaining
// 11 are operational practices (day-to-day change activity, O1-O4).
const (
	// Design practices.
	MetricDevices          = "no_devices"
	MetricVendors          = "no_vendors"
	MetricModels           = "no_models"
	MetricRoles            = "no_roles"
	MetricFirmwareVersions = "no_firmware_versions"
	MetricHardwareEntropy  = "hardware_entropy"
	MetricFirmwareEntropy  = "firmware_entropy"
	MetricL2Protocols      = "no_l2_protocols"
	MetricL3Protocols      = "no_l3_protocols"
	MetricVLANs            = "no_vlans"
	MetricLAGGroups        = "no_lag_groups"
	MetricBGPInstances     = "no_bgp_instances"
	MetricOSPFInstances    = "no_ospf_instances"
	MetricAvgBGPSize       = "avg_bgp_instance_size"
	MetricAvgOSPFSize      = "avg_ospf_instance_size"
	MetricIntraComplexity  = "intra_device_complexity"
	MetricInterComplexity  = "inter_device_complexity"

	// Operational practices.
	MetricConfigChanges   = "no_config_changes"
	MetricDevicesChanged  = "no_devices_changed"
	MetricFracDevChanged  = "frac_devices_changed"
	MetricChangeTypes     = "no_change_types"
	MetricChangeEvents    = "no_change_events"
	MetricDevicesPerEvent = "avg_devices_per_event"
	MetricFracEventsAuto  = "frac_events_automated"
	MetricFracEventsIface = "frac_events_iface"
	MetricFracEventsACL   = "frac_events_acl"
	MetricFracEventsRtr   = "frac_events_router"
	MetricFracEventsMbox  = "frac_events_mbox"
)

// MetricNames lists all 28 practice metrics in canonical order.
var MetricNames = []string{
	MetricDevices, MetricVendors, MetricModels, MetricRoles,
	MetricFirmwareVersions, MetricHardwareEntropy, MetricFirmwareEntropy,
	MetricL2Protocols, MetricL3Protocols, MetricVLANs, MetricLAGGroups,
	MetricBGPInstances, MetricOSPFInstances, MetricAvgBGPSize,
	MetricAvgOSPFSize, MetricIntraComplexity, MetricInterComplexity,
	MetricConfigChanges, MetricDevicesChanged, MetricFracDevChanged,
	MetricChangeTypes, MetricChangeEvents, MetricDevicesPerEvent,
	MetricFracEventsAuto, MetricFracEventsIface, MetricFracEventsACL,
	MetricFracEventsRtr, MetricFracEventsMbox,
}

// designSet marks the design-practice metrics.
var designSet = map[string]bool{
	MetricDevices: true, MetricVendors: true, MetricModels: true,
	MetricRoles: true, MetricFirmwareVersions: true,
	MetricHardwareEntropy: true, MetricFirmwareEntropy: true,
	MetricL2Protocols: true, MetricL3Protocols: true, MetricVLANs: true,
	MetricLAGGroups: true, MetricBGPInstances: true,
	MetricOSPFInstances: true, MetricAvgBGPSize: true,
	MetricAvgOSPFSize: true, MetricIntraComplexity: true,
	MetricInterComplexity: true,
}

// Category returns "design" or "operational" (paper Table 1's D/O
// annotation) for a metric name, or "unknown".
func Category(name string) string {
	if designSet[name] {
		return "design"
	}
	for _, n := range MetricNames {
		if n == name {
			return "operational"
		}
	}
	return "unknown"
}

// DisplayName returns the paper-style human-readable name of a metric.
func DisplayName(name string) string {
	switch name {
	case MetricDevices:
		return "No. of devices"
	case MetricVendors:
		return "No. of vendors"
	case MetricModels:
		return "No. of models"
	case MetricRoles:
		return "No. of roles"
	case MetricFirmwareVersions:
		return "No. of firmware versions"
	case MetricHardwareEntropy:
		return "Hardware entropy"
	case MetricFirmwareEntropy:
		return "Firmware entropy"
	case MetricL2Protocols:
		return "No. of L2 protocols"
	case MetricL3Protocols:
		return "No. of L3 protocols"
	case MetricVLANs:
		return "No. of VLANs"
	case MetricLAGGroups:
		return "No. of LAG groups"
	case MetricBGPInstances:
		return "No. of BGP instances"
	case MetricOSPFInstances:
		return "No. of OSPF instances"
	case MetricAvgBGPSize:
		return "Avg. size of a BGP instance"
	case MetricAvgOSPFSize:
		return "Avg. size of an OSPF instance"
	case MetricIntraComplexity:
		return "Intra-device complexity"
	case MetricInterComplexity:
		return "Inter-device complexity"
	case MetricConfigChanges:
		return "No. of config changes"
	case MetricDevicesChanged:
		return "No. of devices changed"
	case MetricFracDevChanged:
		return "Frac. devices changed"
	case MetricChangeTypes:
		return "No. of change types"
	case MetricChangeEvents:
		return "No. of change events"
	case MetricDevicesPerEvent:
		return "Avg. devices changed per event"
	case MetricFracEventsAuto:
		return "Frac. events automated"
	case MetricFracEventsIface:
		return "Frac. events w/ interface change"
	case MetricFracEventsACL:
		return "Frac. events w/ ACL change"
	case MetricFracEventsRtr:
		return "Frac. events w/ router change"
	case MetricFracEventsMbox:
		return "Frac. events w/ mbox change"
	default:
		return name
	}
}

// Metrics maps metric name to value for one network-month.
type Metrics map[string]float64
