package practices

import (
	"time"

	"mpa/internal/confmodel"
	"mpa/internal/events"
	"mpa/internal/netmodel"
	"mpa/internal/routing"
	"mpa/internal/stats"
)

// designMetrics fills the design-practice metrics (D1-D6) from inventory
// records and the end-of-month configuration states.
func (e *Engine) designMetrics(m Metrics, nw *netmodel.Network, configs []*confmodel.Config, mgmtOwner map[string]string) {
	// D2: physical composition from inventory.
	m[MetricDevices] = float64(len(nw.Devices))
	m[MetricVendors] = float64(len(nw.Vendors()))
	m[MetricModels] = float64(len(nw.Models()))
	m[MetricRoles] = float64(len(nw.Roles()))
	m[MetricFirmwareVersions] = float64(len(nw.Firmwares()))

	// D3: hardware and firmware heterogeneity — normalized entropy of the
	// (model, role) and (firmware, role) joint distributions over devices.
	m[MetricHardwareEntropy] = jointEntropy(nw, func(d *netmodel.Device) string {
		return d.Model + "|" + d.Role.String()
	})
	m[MetricFirmwareEntropy] = jointEntropy(nw, func(d *netmodel.Device) string {
		return d.Firmware + "|" + d.Role.String()
	})

	// D4: data-plane construct usage from parsed configurations.
	vlanIDs := map[string]bool{}
	lagGroups := 0
	var usesSTP, usesLAG, usesUDLD, usesDHCPR, usesVLAN bool
	for _, c := range configs {
		devLAGs := map[string]bool{}
		for _, s := range c.OfType(confmodel.TypeVLAN) {
			id := s.Get("vlan-id")
			if id == "" {
				id = s.Name
			}
			vlanIDs[id] = true
			usesVLAN = true
		}
		for _, s := range c.OfType(confmodel.TypeInterface) {
			if g := s.Get("lag-group"); g != "" {
				devLAGs[g] = true
				usesLAG = true
			}
		}
		lagGroups += len(devLAGs)
		if len(c.OfType(confmodel.TypeSTP)) > 0 {
			usesSTP = true
		}
		if s := c.Get(confmodel.TypeUDLD, "global"); s != nil && s.Get("enable") == "true" {
			usesUDLD = true
		}
		if len(c.OfType(confmodel.TypeDHCPRelay)) > 0 {
			usesDHCPR = true
		}
	}
	m[MetricVLANs] = float64(len(vlanIDs))
	m[MetricLAGGroups] = float64(lagGroups)
	l2 := 0
	for _, used := range []bool{usesVLAN, usesSTP, usesLAG, usesUDLD, usesDHCPR} {
		if used {
			l2++
		}
	}
	m[MetricL2Protocols] = float64(l2)

	// D5: control-plane structure — routing instances.
	bgp := routing.Summarize(configs, mgmtOwner, routing.BGP)
	ospf := routing.Summarize(configs, mgmtOwner, routing.OSPF)
	m[MetricBGPInstances] = float64(bgp.Count)
	m[MetricOSPFInstances] = float64(ospf.Count)
	m[MetricAvgBGPSize] = bgp.AvgSize
	m[MetricAvgOSPFSize] = ospf.AvgSize
	l3 := 0
	if bgp.Count > 0 {
		l3++
	}
	if ospf.Count > 0 {
		l3++
	}
	m[MetricL3Protocols] = float64(l3)

	// D6: configuration complexity — mean intra- and inter-device
	// reference counts (Benson et al.'s metrics).
	if len(configs) > 0 {
		intra := 0
		for _, c := range configs {
			intra += confmodel.IntraDeviceRefs(c)
		}
		m[MetricIntraComplexity] = float64(intra) / float64(len(configs))
		inter := confmodel.NetworkInterRefs(configs, mgmtOwner)
		total := 0
		for _, n := range inter {
			total += n
		}
		m[MetricInterComplexity] = float64(total) / float64(len(configs))
	}
}

// jointEntropy computes the normalized entropy of a per-device symbol
// (paper D3): -sum p_ij log2 p_ij / log2 N where p_ij is the fraction of
// devices with symbol (i, j) and N the network size.
func jointEntropy(nw *netmodel.Network, symbol func(*netmodel.Device) string) float64 {
	ids := map[string]int{}
	xs := make([]int, 0, len(nw.Devices))
	for _, d := range nw.Devices {
		key := symbol(d)
		id, ok := ids[key]
		if !ok {
			id = len(ids)
			ids[key] = id
		}
		xs = append(xs, id)
	}
	return stats.NormalizedEntropy(xs)
}

// operationalMetrics fills the operational-practice metrics (O1-O4) from
// the month's inferred changes and returns how many change events the
// grouping produced.
func (e *Engine) operationalMetrics(m Metrics, nw *netmodel.Network, changes []ChangeDetail) int {
	m[MetricConfigChanges] = float64(len(changes))
	devs := map[string]bool{}
	for _, c := range changes {
		devs[c.Device] = true
	}
	m[MetricDevicesChanged] = float64(len(devs))
	if len(nw.Devices) > 0 {
		m[MetricFracDevChanged] = float64(len(devs)) / float64(len(nw.Devices))
	}
	types := map[confmodel.Type]bool{}
	for _, c := range changes {
		for _, t := range c.Types {
			types[t] = true
		}
	}
	m[MetricChangeTypes] = float64(len(types))

	evts := GroupChanges(changes, e.delta)
	m[MetricChangeEvents] = float64(len(evts))
	// Per-event metrics are undefined when no events occurred (paper
	// §5.2.2); the pipeline represents them as zero.
	m[MetricDevicesPerEvent] = 0
	m[MetricFracEventsAuto] = 0
	m[MetricFracEventsIface] = 0
	m[MetricFracEventsACL] = 0
	m[MetricFracEventsRtr] = 0
	m[MetricFracEventsMbox] = 0
	if len(evts) == 0 {
		return 0
	}
	var totalDevs, auto, iface, acl, rtr, mbox int
	for _, ev := range evts {
		evDevs := map[string]bool{}
		allAuto := true
		var hasIface, hasACL, hasRtr, hasMbox bool
		for _, c := range ev {
			evDevs[c.Device] = true
			allAuto = allAuto && c.Automated
			hasIface = hasIface || c.HasType(confmodel.TypeInterface)
			hasACL = hasACL || c.HasType(confmodel.TypeACL)
			hasRtr = hasRtr || c.HasRouterType()
			hasMbox = hasMbox || c.Middlebox
		}
		totalDevs += len(evDevs)
		if allAuto {
			auto++
		}
		if hasIface {
			iface++
		}
		if hasACL {
			acl++
		}
		if hasRtr {
			rtr++
		}
		if hasMbox {
			mbox++
		}
	}
	n := float64(len(evts))
	m[MetricDevicesPerEvent] = float64(totalDevs) / n
	m[MetricFracEventsAuto] = float64(auto) / n
	m[MetricFracEventsIface] = float64(iface) / n
	m[MetricFracEventsACL] = float64(acl) / n
	m[MetricFracEventsRtr] = float64(rtr) / n
	m[MetricFracEventsMbox] = float64(mbox) / n
	return len(evts)
}

// GroupChanges groups inferred changes into change events with the given
// threshold, exposed for the Figure 3 sensitivity sweep.
func GroupChanges(changes []ChangeDetail, delta time.Duration) [][]ChangeDetail {
	return events.GroupBy(changes, delta,
		func(c ChangeDetail) time.Time { return c.Time },
		func(c ChangeDetail) string { return c.Device })
}
