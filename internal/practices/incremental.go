package practices

// Incremental (single-month) inference: the engine's append-only update
// path. A full Analyze walks every device's entire snapshot history; when
// one new month of snapshots arrives, only that month's changes and the
// month-end configuration states are new — the device's state entering
// the month is fully determined by its last pre-month snapshot. The
// functions here exploit that: AnalyzeNetworkMonth reconstructs the
// entering state from one snapshot per device and walks only the new
// month, so a month's incremental cost is O(devices + month's snapshots)
// regardless of history length.
//
// Equivalence with the full walk is exact, not approximate: the
// month-m rows computeNetwork produces come from (i) the device state
// after consuming every snapshot before m's start, (ii) the in-month
// snapshots diffed in device-inventory-then-time order, and (iii) the
// month-end states. (i) equals the parse of the last pre-month snapshot,
// and (ii)/(iii) only touch in-month snapshots — so the single-month
// walk reproduces the full walk's row byte-for-byte
// (TestIncrementalMonthEquivalence, TestSpliceEquivalence).

import (
	"fmt"
	"sort"
	"time"

	"mpa/internal/confmodel"
	"mpa/internal/months"
	"mpa/internal/netmodel"
	"mpa/internal/nms"
	"mpa/internal/obs"
	"mpa/internal/par"
)

// SetArchive rebinds the engine to a (typically cloned and extended)
// snapshot archive. The engine's content-addressed caches are keyed by
// snapshot text, never archive identity, so a rebound engine reuses
// every still-valid parse and diff entry and pays only for genuinely
// new snapshots.
func (e *Engine) SetArchive(a *nms.Archive) { e.arch = a }

// AnalyzeNetworkMonth computes one network's analysis for a single
// month, byte-identical to the corresponding row of a full
// AnalyzeNetwork walk over any window containing the month. It parses
// one pre-month baseline snapshot per device plus the month's own
// snapshots; with the parse cache warm only new snapshot texts cost
// anything.
func (e *Engine) AnalyzeNetworkMonth(name string, m months.Month) (MonthAnalysis, error) {
	nw := e.inv.Network(name)
	if nw == nil {
		return MonthAnalysis{}, fmt.Errorf("practices: unknown network %q", name)
	}
	return e.computeNetworkMonth(nw, m, e.obs, newNetScratch())
}

// AnalyzeMonth computes the given networks' analyses for one month, in
// input order, on up to SetWorkers goroutines. Like Analyze, the output
// is identical at every worker count and the lowest-index error wins.
// The run is recorded as one "inference_month" span under the engine's
// parent — a distinct name from the full walk's "inference", so
// StageCalls("inference") keeps counting full rebuilds only.
func (e *Engine) AnalyzeMonth(m months.Month, names []string) ([]MonthAnalysis, error) {
	sp := e.obs.Start("inference_month")
	defer sp.End()
	start := time.Now()
	out, err := par.MapLocal(e.workers, names, newNetScratch,
		func(ns *netScratch, _ int, name string) (MonthAnalysis, error) {
			nw := e.inv.Network(name)
			if nw == nil {
				return MonthAnalysis{}, fmt.Errorf("practices: unknown network %q", name)
			}
			return e.computeNetworkMonth(nw, m, sp, ns)
		})
	if err != nil {
		return nil, err
	}
	sp.Count("networks", float64(len(out)))
	obs.Logger().Debug("incremental inference complete",
		"month", m, "networks", len(out),
		"elapsed", time.Since(start).Round(time.Millisecond))
	return out, nil
}

// computeNetworkMonth is the single-month analogue of computeNetwork.
func (e *Engine) computeNetworkMonth(nw *netmodel.Network, m months.Month, parent *obs.Span, ns *netScratch) (MonthAnalysis, error) {
	nsp := parent.Start(nw.Name)
	defer nsp.End()
	monthStart := time.Now()
	begin, end := m.Start(), m.End()

	mgmtOwner := map[string]string{}
	for _, dev := range nw.Devices {
		mgmtOwner[dev.MgmtIP] = dev.Name
	}

	var snapsParsed, diffsComputed int
	var changes []ChangeDetail
	var configs []*confmodel.Config
	for _, dev := range nw.Devices {
		hist := e.arch.Snapshots(dev.Name)
		// Histories are time-ordered, so the pre-month snapshots form a
		// prefix; hist[base-1] is the device's state entering the month.
		base := sort.Search(len(hist), func(i int) bool { return !hist[i].Time.Before(begin) })
		var state *confmodel.Config
		var prevText string
		if base > 0 {
			cfg, err := e.parse(ns, dev, hist[base-1])
			snapsParsed++
			if err != nil {
				obs.GetCounter("inference.parse_failures").Add(1)
				return MonthAnalysis{}, err
			}
			state, prevText = cfg, hist[base-1].Text
		}
		for i := base; i < len(hist) && hist[i].Time.Before(end); i++ {
			snap := hist[i]
			cfg, err := e.parse(ns, dev, snap)
			snapsParsed++
			if err != nil {
				obs.GetCounter("inference.parse_failures").Add(1)
				return MonthAnalysis{}, err
			}
			if state == nil {
				state, prevText = cfg, snap.Text // baseline import, not a change
				continue
			}
			diff := e.diffSnapshots(ns, e.dialect(dev).Name(), prevText, snap.Text, state, cfg)
			diffsComputed++
			state, prevText = cfg, snap.Text
			if len(diff) == 0 {
				continue // identical snapshot: no configuration change
			}
			if months.Of(snap.Time) != m {
				continue
			}
			types := make([]confmodel.Type, 0, 2)
			for _, ch := range diff {
				if len(types) == 0 || types[len(types)-1] != ch.Type {
					types = append(types, ch.Type)
				}
			}
			changes = append(changes, ChangeDetail{
				Device:    dev.Name,
				Time:      snap.Time,
				Automated: e.arch.IsAutomated(snap.Login),
				Types:     types,
				Middlebox: dev.Role.IsMiddlebox(),
			})
		}
		if state != nil {
			configs = append(configs, state)
		}
	}

	metrics := Metrics{}
	e.designMetrics(metrics, nw, configs, mgmtOwner)
	nEvents := e.operationalMetrics(metrics, nw, changes)

	nsp.Count("snapshots_parsed", float64(snapsParsed))
	nsp.Count("diffs", float64(diffsComputed))
	nsp.Count("changes", float64(len(changes)))
	nsp.Count("events", float64(nEvents))
	obs.GetCounter("inference.snapshots_parsed").Add(int64(snapsParsed))
	obs.GetCounter("inference.diffs").Add(int64(diffsComputed))
	obs.GetCounter("inference.changes").Add(int64(len(changes)))
	obs.GetCounter("inference.events_grouped").Add(int64(nEvents))
	monthHist.Observe(float64(time.Since(monthStart).Microseconds()) / 1000)
	return MonthAnalysis{Network: nw.Name, Month: m, Metrics: metrics, Changes: changes}, nil
}
