package practices

import (
	"reflect"
	"testing"

	"mpa/internal/cache"
	"mpa/internal/osp"
)

// TestIncrementalMonthEquivalence pins the contract the whole ingest
// path stands on: AnalyzeNetworkMonth(name, m) equals the month-m row of
// a full Analyze walk, byte for byte, for every network and month —
// with caching off (fresh engine) and on (engine warm from the full
// walk).
func TestIncrementalMonthEquivalence(t *testing.T) {
	p := osp.Small(9)
	p.Networks = 10
	p.End = p.Start.Add(3)
	o := osp.Generate(p)
	window := p.Months()

	full := NewEngine(o.Inventory, o.Archive)
	analysis, err := full.Analyze(window)
	if err != nil {
		t.Fatalf("full analyze: %v", err)
	}

	engines := map[string]*Engine{
		"cold-uncached": NewEngine(o.Inventory, o.Archive),
	}
	warm := NewEngine(o.Inventory, o.Archive)
	warm.SetCache(cache.Config{Enabled: true})
	if _, err := warm.Analyze(window); err != nil {
		t.Fatalf("warm analyze: %v", err)
	}
	engines["warm-cached"] = warm

	for label, e := range engines {
		for _, nw := range o.Inventory.Networks {
			rows := analysis[nw.Name]
			if len(rows) != len(window) {
				t.Fatalf("%s: %d rows, want %d", nw.Name, len(rows), len(window))
			}
			for i, m := range window {
				got, err := e.AnalyzeNetworkMonth(nw.Name, m)
				if err != nil {
					t.Fatalf("%s: AnalyzeNetworkMonth(%s, %s): %v", label, nw.Name, m, err)
				}
				if !reflect.DeepEqual(got, rows[i]) {
					t.Errorf("%s: %s %s: incremental row differs from full walk\n got: %+v\nwant: %+v",
						label, nw.Name, m, got, rows[i])
				}
			}
		}
	}

	if _, err := full.AnalyzeNetworkMonth("no-such-network", window[0]); err == nil {
		t.Fatal("AnalyzeNetworkMonth of unknown network: want error")
	}
}

// TestAnalyzeMonthOrderAndWorkers pins that AnalyzeMonth returns rows in
// input order and is worker-count invariant.
func TestAnalyzeMonthOrderAndWorkers(t *testing.T) {
	p := osp.Small(10)
	p.Networks = 8
	p.End = p.Start.Add(2)
	o := osp.Generate(p)
	m := p.End

	names := make([]string, 0, len(o.Inventory.Networks))
	for i := len(o.Inventory.Networks) - 1; i >= 0; i-- { // deliberately reversed
		names = append(names, o.Inventory.Networks[i].Name)
	}

	var ref []MonthAnalysis
	for _, w := range []int{1, 8} {
		e := NewEngine(o.Inventory, o.Archive)
		e.SetWorkers(w)
		rows, err := e.AnalyzeMonth(m, names)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, name := range names {
			if rows[i].Network != name {
				t.Fatalf("workers=%d: row %d is %s, want input order %s", w, i, rows[i].Network, name)
			}
		}
		if ref == nil {
			ref = rows
		} else if !reflect.DeepEqual(rows, ref) {
			t.Fatalf("workers=%d: rows differ from workers=1", w)
		}
	}
}

// TestSetArchiveRebind pins that a rebound engine analyzes the new
// archive: an appended snapshot shows up in the month's analysis while
// the content-addressed caches keep serving unchanged texts.
func TestSetArchiveRebind(t *testing.T) {
	p := osp.Small(11)
	p.Networks = 4
	p.End = p.Start.Add(1)
	o := osp.Generate(p)
	m := p.End

	e := NewEngine(o.Inventory, o.Archive)
	e.SetCache(cache.Config{Enabled: true})
	before, err := e.AnalyzeNetworkMonth(o.Inventory.Networks[0].Name, m)
	if err != nil {
		t.Fatal(err)
	}

	// Clone and append a copy of a device's last snapshot one hour later
	// with a fresh manual login: one more change-window snapshot but no
	// config diff, so metrics must stay identical except via recompute.
	clone := o.Archive.Clone()
	dev := o.Inventory.Networks[0].Devices[0]
	hist := o.Archive.Snapshots(dev.Name)
	last := hist[len(hist)-1]
	dup := *last
	dup.Time = m.End().Add(-1) // still inside month m
	if dup.Time.Before(last.Time) {
		t.Skip("device history already ends at month boundary")
	}
	if err := clone.Record(&dup); err != nil {
		t.Fatal(err)
	}
	e.SetArchive(clone)
	after, err := e.AnalyzeNetworkMonth(o.Inventory.Networks[0].Name, m)
	if err != nil {
		t.Fatal(err)
	}
	// The duplicate snapshot has an identical fingerprint and text: no
	// new change events, identical metrics.
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("identical-text snapshot changed the analysis:\nbefore: %+v\nafter:  %+v", before, after)
	}
	// The original archive is untouched.
	if got := len(o.Archive.Snapshots(dev.Name)); got != len(hist) {
		t.Fatalf("original archive grew: %d snapshots, want %d", got, len(hist))
	}
}
