package practices

import (
	"testing"

	"mpa/internal/osp"
)

// TestAllocBudgetInferNetwork pins the end-to-end allocation cost of
// inferring one network-month-window, normalized per archived snapshot —
// parse, diff, grouping, and metrics together. This is the stage budget
// behind BenchmarkInference: per-stage parse/diff budgets live next to
// their packages, and this cap catches regressions in the engine plumbing
// between them (cursor handling, change assembly, metric evaluation).
// CI runs `go test -run AllocBudget ./...`; exceeding the budget fails.
func TestAllocBudgetInferNetwork(t *testing.T) {
	p := osp.Small(5)
	p.Networks = 3
	o := osp.Generate(p)
	engine := NewEngine(o.Inventory, o.Archive)
	window := o.Params.Months()
	nw := o.Inventory.Networks[0]
	snaps := 0
	for _, dev := range nw.Devices {
		snaps += len(o.Archive.Snapshots(dev.Name))
	}
	if snaps == 0 {
		t.Fatal("fixture network has no snapshots")
	}
	if _, err := engine.AnalyzeNetwork(nw.Name, window); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(8, func() {
		if _, err := engine.AnalyzeNetwork(nw.Name, window); err != nil {
			t.Fatal(err)
		}
	})
	perSnap := avg / float64(snaps)
	t.Logf("inference: %.0f allocs/network (%d snapshots, %.1f allocs/snapshot)", avg, snaps, perSnap)
	// Budget: parsing dominates (~5 allocs/stanza at tens of stanzas per
	// snapshot) plus engine bookkeeping. Pre-optimization this path sat
	// near 900 allocs/snapshot.
	const budget = 300.0
	if perSnap > budget {
		t.Errorf("inference allocations %.1f/snapshot exceed budget %.0f", perSnap, budget)
	}
}
