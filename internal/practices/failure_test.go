package practices

import (
	"strings"
	"testing"
	"time"

	"mpa/internal/months"
	"mpa/internal/netmodel"
	"mpa/internal/nms"
)

// failure-injection tests: the inference engine must surface corrupt
// archive data as errors rather than silently mis-inferring practices.

func tinyInventory() *netmodel.Inventory {
	return &netmodel.Inventory{Networks: []*netmodel.Network{{
		Name:     "netX",
		Services: []string{"svc"},
		Devices: []*netmodel.Device{{
			Name: "netX-sw-01", Network: "netX",
			Vendor: netmodel.VendorCisco, Model: "c-3850",
			Role: netmodel.RoleSwitch, Firmware: "16.9", MgmtIP: "10.0.0.1",
		}},
	}}}
}

func window() []months.Month {
	m := months.Month{Year: 2014, Mon: time.March}
	return months.Range(m, m)
}

func TestCorruptSnapshotSurfacesError(t *testing.T) {
	inv := tinyInventory()
	arch := nms.NewArchive()
	err := arch.Record(&nms.Snapshot{
		Device: "netX-sw-01",
		Time:   time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC),
		Login:  "op-chen",
		Text:   "hostname netX-sw-01\ngarbage that is not IOS\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(inv, arch)
	_, err = e.AnalyzeNetwork("netX", window())
	if err == nil {
		t.Fatal("corrupt snapshot did not surface an error")
	}
	if !strings.Contains(err.Error(), "netX-sw-01") {
		t.Errorf("error does not identify the device: %v", err)
	}
}

func TestEmptyArchiveYieldsZeroOperationalMetrics(t *testing.T) {
	inv := tinyInventory()
	arch := nms.NewArchive()
	e := NewEngine(inv, arch)
	mas, err := e.AnalyzeNetwork("netX", window())
	if err != nil {
		t.Fatal(err)
	}
	m := mas[0].Metrics
	if m[MetricConfigChanges] != 0 || m[MetricChangeEvents] != 0 {
		t.Errorf("no-archive metrics nonzero: %v", m)
	}
	// Design metrics from inventory still present.
	if m[MetricDevices] != 1 {
		t.Errorf("no_devices = %v", m[MetricDevices])
	}
}

func TestDeviceWithoutChangesContributesDesignOnly(t *testing.T) {
	inv := tinyInventory()
	arch := nms.NewArchive()
	text := "hostname netX-sw-01\n!\nvlan 100\n name seg-100\n!\nend\n"
	if err := arch.Record(&nms.Snapshot{
		Device: "netX-sw-01",
		Time:   time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC),
		Login:  "initial-import",
		Text:   text,
	}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(inv, arch)
	mas, err := e.AnalyzeNetwork("netX", window())
	if err != nil {
		t.Fatal(err)
	}
	m := mas[0].Metrics
	if m[MetricVLANs] != 1 {
		t.Errorf("no_vlans = %v, want 1", m[MetricVLANs])
	}
	if m[MetricConfigChanges] != 0 {
		t.Errorf("baseline import counted as a change")
	}
}

func TestMixedCorruptionReportsFirstBadDevice(t *testing.T) {
	inv := tinyInventory()
	inv.Networks[0].Devices = append(inv.Networks[0].Devices, &netmodel.Device{
		Name: "netX-sw-02", Network: "netX",
		Vendor: netmodel.VendorJuniper, Model: "j-ex4300",
		Role: netmodel.RoleSwitch, Firmware: "18.4", MgmtIP: "10.0.0.2",
	})
	arch := nms.NewArchive()
	good := "hostname netX-sw-01\n!\nend\n"
	if err := arch.Record(&nms.Snapshot{
		Device: "netX-sw-01", Time: time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC),
		Login: "x", Text: good,
	}); err != nil {
		t.Fatal(err)
	}
	if err := arch.Record(&nms.Snapshot{
		Device: "netX-sw-02", Time: time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC),
		Login: "x", Text: "host-name netX-sw-02;\nnot junos at all\n",
	}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(inv, arch)
	if _, err := e.AnalyzeNetwork("netX", window()); err == nil {
		t.Fatal("expected parse error")
	}
}
