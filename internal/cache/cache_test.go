package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"mpa/internal/obs"
)

func TestKeyFraming(t *testing.T) {
	// Length-prefix framing: distinct part splits must not collide.
	a := KeyOf("ns", "ab", "c")
	b := KeyOf("ns", "a", "bc")
	if a == b {
		t.Fatal("framing collision: (ab,c) == (a,bc)")
	}
	// Namespaces separate key spaces.
	if KeyOf("ns1", "x") == KeyOf("ns2", "x") {
		t.Fatal("namespace collision")
	}
	// Keys are deterministic.
	if a != KeyOf("ns", "ab", "c") {
		t.Fatal("key not deterministic")
	}
	// Hasher and KeyOf agree.
	if got := NewHasher("ns").String("ab").String("c").Sum(); got != a {
		t.Fatalf("Hasher sum %s != KeyOf %s", got.Hex(), a.Hex())
	}
	if len(a.Hex()) != 64 {
		t.Fatalf("hex length %d", len(a.Hex()))
	}
}

func TestHasherParts(t *testing.T) {
	// Int and String parts of identical bytes must not collide: the frame
	// contents differ (8-byte little-endian vs text).
	h1 := NewHasher("ns").Int(42).Sum()
	h2 := NewHasher("ns").String("42").Sum()
	if h1 == h2 {
		t.Fatal("Int/String collision")
	}
	k := KeyOf("inner", "x")
	if NewHasher("ns").Key(k).Sum() == NewHasher("ns").Sum() {
		t.Fatal("Key part ignored")
	}
}

func TestDisabledAndNil(t *testing.T) {
	if c := New("stage", Config{}); c != nil {
		t.Fatal("disabled config should yield nil cache")
	}
	var c *Cache
	if _, ok := c.Get(Key{}); ok {
		t.Fatal("nil Get hit")
	}
	c.Put(Key{}, 1) // must not panic
	c.PutBytes(Key{}, nil)
	if _, ok := c.GetBytes(Key{}); ok {
		t.Fatal("nil GetBytes hit")
	}
	if c.Stats() != (Stats{}) {
		t.Fatal("nil Stats non-zero")
	}
	calls := 0
	v, err := GetOrCompute(c, Key{}, Codec[int]{}, func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 || calls != 1 {
		t.Fatalf("nil GetOrCompute = %d, %v (calls %d)", v, err, calls)
	}
}

func TestMemoryTierLRU(t *testing.T) {
	c := New("test-lru", Config{Enabled: true, MaxEntries: 2})
	k := func(i int) Key { return KeyOf("k", strconv.Itoa(i)) }
	c.Put(k(1), "one")
	c.Put(k(2), "two")
	if v, ok := c.Get(k(1)); !ok || v != "one" {
		t.Fatal("miss on k1")
	}
	// k2 is now least recently used; inserting k3 must evict it.
	c.Put(k(3), "three")
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("k2 survived eviction")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Fatal("k1 evicted out of LRU order")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v", s)
	}
	// Overwriting an existing key must not grow the cache.
	c.Put(k(1), "uno")
	if v, _ := c.Get(k(1)); v != "uno" {
		t.Fatal("overwrite lost")
	}
	if s := c.Stats(); s.Entries != 2 {
		t.Fatalf("entries after overwrite = %d", s.Entries)
	}
}

func TestDiskTier(t *testing.T) {
	dir := t.TempDir()
	c := New("test-disk", Config{Enabled: true, Dir: dir})
	k := KeyOf("k", "x")
	if _, ok := c.GetBytes(k); ok {
		t.Fatal("hit on empty disk tier")
	}
	c.PutBytes(k, []byte("payload"))
	b, ok := c.GetBytes(k)
	if !ok || string(b) != "payload" {
		t.Fatalf("disk round trip = %q, %v", b, ok)
	}
	// A second instance over the same dir (fresh process simulation) hits.
	c2 := New("test-disk", Config{Enabled: true, Dir: dir})
	if _, ok := c2.GetBytes(k); !ok {
		t.Fatal("fresh instance missed persisted entry")
	}
	// Entries are sharded under the stage subdirectory.
	path := filepath.Join(dir, "test-disk", k.Hex()[:2], k.Hex())
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("expected entry at %s: %v", path, err)
	}
	// A corrupt entry degrades to a decode-side miss in GetOrCompute.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	calls := 0
	v, err := GetOrCompute(New("test-disk", Config{Enabled: true, Dir: dir}), k,
		Codec[int]{
			Encode: func(v int) ([]byte, error) { return []byte(strconv.Itoa(v)), nil },
			Decode: func(b []byte) (int, error) { return strconv.Atoi(string(b)) },
		},
		func() (int, error) { calls++; return 5, nil })
	if err != nil || v != 5 || calls != 1 {
		t.Fatalf("corrupt entry not recomputed: %d, %v, calls %d", v, err, calls)
	}
}

func TestDiskCorruptEntryRecovered(t *testing.T) {
	// Regression: a truncated entry (crash mid-write, disk-full tail) used
	// to fail decode on every warm run with the bad file left in place,
	// poisoning the disk tier until manual cleanup. It must degrade to a
	// miss, be deleted, counted under cache.<stage>.disk_corrupt, and be
	// replaced by the recomputed value.
	dir := t.TempDir()
	cfg := Config{Enabled: true, Dir: dir}
	codec := Codec[string]{
		Encode: func(s string) ([]byte, error) { return []byte("v1:" + s), nil },
		Decode: func(b []byte) (string, error) {
			if len(b) < 3 || string(b[:3]) != "v1:" {
				return "", fmt.Errorf("bad header")
			}
			return string(b[3:]), nil
		},
	}
	k := KeyOf("k", "truncated")
	calls := 0
	compute := func() (string, error) { calls++; return "payload", nil }

	c := New("test-corrupt", cfg)
	if _, err := GetOrCompute(c, k, codec, compute); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "test-corrupt", k.Hex()[:2], k.Hex())
	// Truncate the entry mid-payload, as a crash between write and rename
	// completion (or a full disk) would.
	if err := os.WriteFile(path, []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}

	corruptBefore := obs.GetCounter("cache.test-corrupt.disk_corrupt").Value()
	c2 := New("test-corrupt", cfg) // fresh memory tier, warm (bad) disk tier
	v, err := GetOrCompute(c2, k, codec, compute)
	if err != nil || v != "payload" {
		t.Fatalf("recovery = %q, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("computed %d times, want 2 (recompute after corrupt entry)", calls)
	}
	if got := obs.GetCounter("cache.test-corrupt.disk_corrupt").Value() - corruptBefore; got != 1 {
		t.Fatalf("disk_corrupt counter rose by %d, want 1", got)
	}
	// The recomputed value was re-persisted: the file decodes again and a
	// third fresh instance serves it from disk without recomputation.
	b, readErr := os.ReadFile(path)
	if readErr != nil {
		t.Fatalf("entry not re-written after recovery: %v", readErr)
	}
	if got, decErr := codec.Decode(b); decErr != nil || got != "payload" {
		t.Fatalf("re-written entry decodes to %q, %v", got, decErr)
	}
	if _, err := GetOrCompute(New("test-corrupt", cfg), k, codec, compute); err != nil || calls != 2 {
		t.Fatalf("healed tier recomputed (calls %d), err %v", calls, err)
	}
}

func TestGetOrComputeTiers(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Enabled: true, Dir: dir}
	codec := Codec[string]{
		Encode: func(s string) ([]byte, error) { return []byte(s), nil },
		Decode: func(b []byte) (string, error) { return string(b), nil },
	}
	k := KeyOf("k", "v")
	calls := 0
	compute := func() (string, error) { calls++; return "value", nil }

	c := New("test-tiers", cfg)
	for i := 0; i < 3; i++ {
		v, err := GetOrCompute(c, k, codec, compute)
		if err != nil || v != "value" {
			t.Fatalf("round %d: %q, %v", i, v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("computed %d times, want 1", calls)
	}
	s := c.Stats()
	if s.MemHits != 2 || s.DiskMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}

	// A fresh instance (cold memory, warm disk) must hit the disk tier.
	c2 := New("test-tiers", cfg)
	v, err := GetOrCompute(c2, k, codec, compute)
	if err != nil || v != "value" || calls != 1 {
		t.Fatalf("disk-tier reuse failed: %q, %v, calls %d", v, err, calls)
	}
	if s := c2.Stats(); s.DiskHits != 1 {
		t.Fatalf("fresh-instance stats = %+v", s)
	}
	// And the decoded value is promoted into memory.
	if _, ok := c2.Get(k); !ok {
		t.Fatal("disk hit not promoted to memory tier")
	}
}

func TestGetOrComputeError(t *testing.T) {
	c := New("test-err", Config{Enabled: true})
	k := KeyOf("k", "err")
	wantErr := fmt.Errorf("boom")
	if _, err := GetOrCompute(c, k, Codec[int]{}, func() (int, error) { return 0, wantErr }); err != wantErr {
		t.Fatalf("err = %v", err)
	}
	// Errors are not cached.
	if _, ok := c.Get(k); ok {
		t.Fatal("error result cached")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New("test-conc", Config{Enabled: true, MaxEntries: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := KeyOf("k", strconv.Itoa(i%100))
				if v, ok := c.Get(k); ok {
					if v.(int) != i%100 {
						t.Errorf("got %v for key %d", v, i%100)
						return
					}
				} else {
					c.Put(k, i%100)
				}
			}
		}(g)
	}
	wg.Wait()
}
