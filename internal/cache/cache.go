// Package cache provides the content-addressed memoization layer the
// pipeline's pure stages (snapshot parsing, config diffing, per-network
// practice inference, dataset assembly) use to skip recomputation of
// unchanged inputs. Keys are SHA-256 digests over canonical input bytes;
// values live in a bounded in-memory LRU tier and, optionally, in an
// on-disk tier so warm re-runs of a fresh process still hit.
//
// The cache is strictly an optimization: every cached stage is a pure
// function of its key's preimage, so a cold run, a warm run, and a
// cache-disabled run produce byte-identical results (enforced by
// TestCacheEquivalence in internal/experiments). Values stored in the
// memory tier are shared pointers and MUST be treated as immutable by
// both producers and consumers.
//
// Hit/miss/evict counters and per-tier latency histograms are registered
// with internal/obs under "cache.<stage>.*" and show up in `mpa stats`
// and /debug/vars alongside the rest of the pipeline's metrics.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mpa/internal/obs"
)

// Key is a SHA-256 digest identifying one cached computation by the
// canonical bytes of its inputs.
type Key [sha256.Size]byte

// Hex returns the key as a lowercase hex string.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// Hasher accumulates canonical input bytes into a Key. Every part is
// length-prefixed, so distinct part sequences can never collide by
// concatenation ("ab","c" vs "a","bc").
type Hasher struct {
	h hash.Hash
}

// NewHasher returns a Hasher seeded with a namespace label (conventionally
// "<stage>/v<N>"; bump the version to invalidate old entries after a
// semantic change to the stage).
func NewHasher(namespace string) *Hasher {
	hh := &Hasher{h: sha256.New()}
	return hh.String(namespace)
}

// writeFrame writes a length-prefixed byte sequence.
func (h *Hasher) writeFrame(p []byte) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
	h.h.Write(n[:])
	h.h.Write(p)
}

// String adds a string part and returns the hasher for chaining.
func (h *Hasher) String(s string) *Hasher {
	h.writeFrame([]byte(s))
	return h
}

// Int adds an integer part.
func (h *Hasher) Int(v int64) *Hasher {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(v))
	h.writeFrame(n[:])
	return h
}

// Time adds an instant (nanosecond precision, location-independent).
func (h *Hasher) Time(t time.Time) *Hasher { return h.Int(t.UnixNano()) }

// Key adds another key, chaining digests (e.g. a dataset key built from
// the upstream analysis digest).
func (h *Hasher) Key(k Key) *Hasher {
	h.writeFrame(k[:])
	return h
}

// Sum finalizes and returns the key. The hasher must not be reused.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// KeyOf is a convenience for small keys: a namespace plus string parts.
func KeyOf(namespace string, parts ...string) Key {
	h := NewHasher(namespace)
	for _, p := range parts {
		h.String(p)
	}
	return h.Sum()
}

// DefaultMaxEntries bounds each stage's in-memory tier when Config leaves
// MaxEntries zero. Entries are whole stage outputs (a parsed config, a
// network's month analyses), so a few thousand covers paper scale.
const DefaultMaxEntries = 4096

// Config enables and parameterizes the pipeline caches. The zero value
// disables caching entirely, preserving uncached behavior.
type Config struct {
	// Enabled turns the cache on. Disabled caches cost nothing: New
	// returns nil and every method on a nil *Cache is a no-op.
	Enabled bool
	// Dir is the on-disk tier's root directory; empty keeps the cache
	// memory-only. The directory is shared across stages (each stage
	// writes under its own subdirectory) and across processes: a warm
	// re-run with the same Dir skips all unchanged per-network work.
	Dir string
	// MaxEntries bounds the in-memory LRU tier per stage; zero means
	// DefaultMaxEntries.
	MaxEntries int
}

// Stats is a point-in-time snapshot of one cache's activity.
type Stats struct {
	MemHits    int64
	MemMisses  int64
	DiskHits   int64
	DiskMisses int64
	Evictions  int64
	Entries    int
}

// Cache is one stage's two-tier store. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Cache struct {
	stage string
	dir   string // "" = memory-only
	max   int

	mu      sync.Mutex
	entries map[Key]*list.Element
	ll      *list.List // front = most recently used

	memHits, memMisses   *obs.Counter
	diskHits, diskMisses *obs.Counter
	evictions, diskErrs  *obs.Counter
	diskCorrupt          *obs.Counter
	memGetUS, diskGetMS  *obs.Histogram

	stats struct {
		memHits, memMisses, diskHits, diskMisses, evictions int64
	}
}

type entry struct {
	key Key
	val any
}

// New returns the cache for one pipeline stage ("parse", "confdiff",
// "practices", "dataset"), or nil when cfg.Enabled is false.
func New(stage string, cfg Config) *Cache {
	if !cfg.Enabled {
		return nil
	}
	max := cfg.MaxEntries
	if max <= 0 {
		max = DefaultMaxEntries
	}
	dir := cfg.Dir
	if dir != "" {
		dir = filepath.Join(dir, stage)
	}
	return &Cache{
		stage:       stage,
		dir:         dir,
		max:         max,
		entries:     map[Key]*list.Element{},
		ll:          list.New(),
		memHits:     obs.GetCounter("cache." + stage + ".mem_hits"),
		memMisses:   obs.GetCounter("cache." + stage + ".mem_misses"),
		diskHits:    obs.GetCounter("cache." + stage + ".disk_hits"),
		diskMisses:  obs.GetCounter("cache." + stage + ".disk_misses"),
		evictions:   obs.GetCounter("cache." + stage + ".evictions"),
		diskErrs:    obs.GetCounter("cache." + stage + ".disk_errors"),
		diskCorrupt: obs.GetCounter("cache." + stage + ".disk_corrupt"),
		memGetUS: obs.GetHistogram("cache."+stage+".mem_get_us",
			0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100),
		diskGetMS: obs.GetHistogram("cache."+stage+".disk_get_ms",
			0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 500),
	}
}

// Stage returns the stage name the cache was created for.
func (c *Cache) Stage() string {
	if c == nil {
		return ""
	}
	return c.stage
}

// Stats returns this instance's activity counts (the obs counters
// aggregate across instances of the same stage; Stats is per-instance).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		MemHits:    c.stats.memHits,
		MemMisses:  c.stats.memMisses,
		DiskHits:   c.stats.diskHits,
		DiskMisses: c.stats.diskMisses,
		Evictions:  c.stats.evictions,
		Entries:    len(c.entries),
	}
}

// Get looks the key up in the memory tier.
func (c *Cache) Get(k Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	start := time.Now()
	c.mu.Lock()
	el, ok := c.entries[k]
	if ok {
		c.ll.MoveToFront(el)
		c.stats.memHits++
	} else {
		c.stats.memMisses++
	}
	c.mu.Unlock()
	c.memGetUS.Observe(float64(time.Since(start).Nanoseconds()) / 1e3)
	if !ok {
		c.memMisses.Add(1)
		return nil, false
	}
	c.memHits.Add(1)
	return el.Value.(*entry).val, true
}

// Put stores the value in the memory tier, evicting the least recently
// used entry when the tier is full.
func (c *Cache) Put(k Key, v any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*entry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.entries[k] = c.ll.PushFront(&entry{key: k, val: v})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.stats.evictions++
		c.evictions.Add(1)
	}
}

// diskPath shards entries by the first key byte to keep directories small.
func (c *Cache) diskPath(k Key) string {
	hx := k.Hex()
	return filepath.Join(c.dir, hx[:2], hx)
}

// GetBytes looks the key up in the disk tier. It returns false when the
// tier is disabled, the entry is absent, or the file is unreadable
// (corrupt or concurrently removed entries degrade to misses).
func (c *Cache) GetBytes(k Key) ([]byte, bool) {
	if c == nil || c.dir == "" {
		return nil, false
	}
	start := time.Now()
	b, err := os.ReadFile(c.diskPath(k))
	c.diskGetMS.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	if err != nil {
		c.diskMisses.Add(1)
		c.mu.Lock()
		c.stats.diskMisses++
		c.mu.Unlock()
		return nil, false
	}
	c.diskHits.Add(1)
	c.mu.Lock()
	c.stats.diskHits++
	c.mu.Unlock()
	return b, true
}

// PutBytes stores encoded bytes in the disk tier, atomically (write to a
// temp file, then rename), so concurrent writers of the same key and
// crashed runs never leave a torn entry. Errors are reported through the
// "cache.<stage>.disk_errors" counter and the debug log rather than
// failing the pipeline: the cache is an optimization.
func (c *Cache) PutBytes(k Key, b []byte) {
	if c == nil || c.dir == "" {
		return
	}
	path := c.diskPath(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		c.diskError(k, err)
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		c.diskError(k, err)
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.diskError(k, fmt.Errorf("write: %v, close: %v", werr, cerr))
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		c.diskError(k, err)
	}
}

func (c *Cache) diskError(k Key, err error) {
	c.diskErrs.Add(1)
	obs.Logger().Debug("cache disk write failed",
		"stage", c.stage, "key", k.Hex()[:12], "err", err)
}

// corruptEntry handles an undecodable disk entry (truncated by a crash or
// a full disk, or written by an older format): the bad file is deleted so
// every later warm run misses cleanly instead of re-reading and
// re-failing, and the event is counted under "cache.<stage>.disk_corrupt".
func (c *Cache) corruptEntry(k Key, err error) {
	c.diskCorrupt.Add(1)
	if rmErr := os.Remove(c.diskPath(k)); rmErr != nil && !os.IsNotExist(rmErr) {
		c.diskError(k, rmErr)
	}
	obs.Logger().Warn("cache: deleted corrupt disk entry",
		"stage", c.stage, "key", k.Hex()[:12], "err", err)
}

// Codec serializes values for the disk tier. A zero Codec (nil funcs)
// keeps the value memory-only, which suits intermediate results that are
// cheap to recompute from other cached stages (e.g. per-pair diffs).
type Codec[V any] struct {
	Encode func(V) ([]byte, error)
	Decode func([]byte) (V, error)
}

// GetOrCompute returns the cached value for k, consulting the memory tier
// then the disk tier, computing and storing it on a full miss. A nil
// cache calls compute directly. Decode failures (stale format, torn
// entry) degrade to recomputation, never to an error; the corrupt file is
// deleted (and re-written from the fresh computation) so one bad entry
// cannot poison every subsequent warm run.
func GetOrCompute[V any](c *Cache, k Key, codec Codec[V], compute func() (V, error)) (V, error) {
	if c == nil {
		return compute()
	}
	if v, ok := c.Get(k); ok {
		return v.(V), nil
	}
	if codec.Decode != nil {
		if b, ok := c.GetBytes(k); ok {
			v, derr := codec.Decode(b)
			if derr == nil {
				c.Put(k, v)
				return v, nil
			}
			c.corruptEntry(k, derr)
		}
	}
	v, err := compute()
	if err != nil {
		var zero V
		return zero, err
	}
	c.Put(k, v)
	if codec.Encode != nil {
		if b, err := codec.Encode(v); err == nil {
			c.PutBytes(k, b)
		} else {
			c.diskErrs.Add(1)
		}
	}
	return v, nil
}
