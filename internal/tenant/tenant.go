// Package tenant generalizes the daemon from one warm Framework to N:
// an organization registry that loads and infers one framework per org
// (each with its own cache namespace, query generations, and ingest
// path), plus the map-reduce merge layer behind the fleet-wide
// aggregate endpoints (/v1/fleet/*).
//
// The paper's analytics are framed per-organization; the registry is
// what lets one resident process serve many organizations behind a
// shard router (internal/serve) without the orgs sharing any mutable
// state: every framework owns its substrates, its memoized query layer,
// and its ingest serialization, so an update applied to one org can
// never invalidate — or even observe — another org's warm state.
//
// Fleet aggregates follow the split/merge pattern: each shard computes
// its partial result from its own warm caches (the "map" side, fanned
// out over internal/par by the serve layer), and MergeRank/MergeHealth
// reduce the partials deterministically — sorted, tie-broken, and
// weighted so that merging the same partials always yields the same
// bytes. The correctness bar mirrors the rest of the repository:
// merging per-org results offline must reproduce the fleet endpoint's
// response byte-for-byte.
package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"mpa"
	"mpa/internal/par"
)

// MaxNameLen bounds organization names.
const MaxNameLen = 32

// reservedNames are org names that would collide with (or read like)
// router path segments and fleet endpoints.
var reservedNames = map[string]bool{
	"fleet": true, "orgs": true, "debug": true, "metrics": true, "healthz": true,
}

// ValidName reports whether s is a legal organization name: 1 to
// MaxNameLen of [a-z0-9-], starting with an alphanumeric, and not a
// reserved routing word. The alphabet is deliberately tiny — names are
// used as URL path segments, header values, and metric-name components.
func ValidName(s string) bool {
	if len(s) == 0 || len(s) > MaxNameLen || reservedNames[s] {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '-' && i > 0:
		default:
			return false
		}
	}
	return true
}

// OrgSpec describes one organization to load. Zero Networks or Months
// inherit the base config's values at Load time.
type OrgSpec struct {
	Name     string `json:"name"`
	Seed     uint64 `json:"seed"`
	Networks int    `json:"networks,omitempty"`
	Months   int    `json:"months,omitempty"`
}

// ParseOrgs parses the compact `-orgs` flag form:
//
//	name=seed[:networks[:months]],name=seed...
//
// e.g. "acme=1,globex=2" or "acme=1:24:6,globex=2:8". Names must be
// valid (ValidName) and unique.
func ParseOrgs(spec string) ([]OrgSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("tenant: empty orgs spec")
	}
	var specs []OrgSpec
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("tenant: orgs entry %q, want name=seed[:networks[:months]]", part)
		}
		if !ValidName(name) {
			return nil, fmt.Errorf("tenant: invalid org name %q (want 1-%d of [a-z0-9-], not reserved)", name, MaxNameLen)
		}
		if seen[name] {
			return nil, fmt.Errorf("tenant: org %q repeated", name)
		}
		seen[name] = true
		fields := strings.Split(rest, ":")
		if len(fields) > 3 {
			return nil, fmt.Errorf("tenant: orgs entry %q has %d fields, want at most seed:networks:months", part, len(fields))
		}
		s := OrgSpec{Name: name}
		seed, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tenant: org %q seed %q: want an unsigned integer", name, fields[0])
		}
		s.Seed = seed
		if len(fields) > 1 {
			if s.Networks, err = strconv.Atoi(fields[1]); err != nil || s.Networks < 1 {
				return nil, fmt.Errorf("tenant: org %q networks %q: want a positive integer", name, fields[1])
			}
		}
		if len(fields) > 2 {
			if s.Months, err = strconv.Atoi(fields[2]); err != nil || s.Months < 1 {
				return nil, fmt.Errorf("tenant: org %q months %q: want a positive integer", name, fields[2])
			}
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// configFile is the `-orgs-config` JSON registry form.
type configFile struct {
	Orgs []OrgSpec `json:"orgs"`
}

// ReadConfig loads org specs from a JSON registry file:
//
//	{"orgs": [{"name": "acme", "seed": 1, "networks": 24, "months": 6}, ...]}
//
// Unknown fields are rejected so a typo'd key fails loudly.
func ReadConfig(path string) ([]OrgSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: read registry config: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var cf configFile
	if err := dec.Decode(&cf); err != nil {
		return nil, fmt.Errorf("tenant: parse registry config %s: %w", path, err)
	}
	if len(cf.Orgs) == 0 {
		return nil, fmt.Errorf("tenant: registry config %s lists no orgs", path)
	}
	seen := map[string]bool{}
	for _, s := range cf.Orgs {
		if !ValidName(s.Name) {
			return nil, fmt.Errorf("tenant: registry config %s: invalid org name %q", path, s.Name)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("tenant: registry config %s: org %q repeated", path, s.Name)
		}
		seen[s.Name] = true
	}
	return cf.Orgs, nil
}

// Org is one registered organization: its warm framework plus the
// config it was built from.
type Org struct {
	Name string
	Cfg  mpa.Config
	F    *mpa.Framework
}

// Registry holds the fleet's organizations, keyed by name.
type Registry struct {
	orgs  map[string]*Org
	names []string // sorted
}

// New builds a registry over already-constructed orgs (the test path;
// production loads go through Load). Names must be valid and unique.
func New(orgs []*Org) (*Registry, error) {
	if len(orgs) == 0 {
		return nil, fmt.Errorf("tenant: registry needs at least one org")
	}
	r := &Registry{orgs: make(map[string]*Org, len(orgs))}
	for _, o := range orgs {
		if o == nil || o.F == nil {
			return nil, fmt.Errorf("tenant: nil org or framework")
		}
		if !ValidName(o.Name) {
			return nil, fmt.Errorf("tenant: invalid org name %q", o.Name)
		}
		if _, dup := r.orgs[o.Name]; dup {
			return nil, fmt.Errorf("tenant: org %q repeated", o.Name)
		}
		r.orgs[o.Name] = o
		r.names = append(r.names, o.Name)
	}
	sort.Strings(r.names)
	return r, nil
}

// Load builds and infers one synthetic framework per spec, fanning the
// org loads out over the worker pool (cross-org loads share no state).
// base supplies the settings a spec does not override: networks and the
// study window (via base.Start/base.End), the change-event rate,
// workers, and caching. Each org's disk cache tier — when one is
// configured — lives in its own subdirectory (<dir>/orgs/<name>), so
// tenants never share cache files even though the content-addressed
// keys would already keep their entries distinct.
func Load(specs []OrgSpec, base mpa.Config) (*Registry, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("tenant: no orgs to load")
	}
	orgs, err := par.Map(base.Workers, specs, func(_ int, s OrgSpec) (*Org, error) {
		if !ValidName(s.Name) {
			return nil, fmt.Errorf("tenant: invalid org name %q", s.Name)
		}
		cfg := base
		cfg.Seed = s.Seed
		if s.Networks > 0 {
			cfg.Networks = s.Networks
		}
		if s.Months > 0 {
			cfg.End = cfg.Start.Add(s.Months - 1)
		}
		if cfg.Cache.Dir != "" {
			cfg.Cache.Dir = filepath.Join(cfg.Cache.Dir, "orgs", s.Name)
		}
		f, err := mpa.NewSynthetic(cfg)
		if err != nil {
			return nil, fmt.Errorf("tenant: load org %q: %w", s.Name, err)
		}
		return &Org{Name: s.Name, Cfg: cfg, F: f}, nil
	})
	if err != nil {
		return nil, err
	}
	return New(orgs)
}

// Get returns the named org.
func (r *Registry) Get(name string) (*Org, bool) {
	o, ok := r.orgs[name]
	return o, ok
}

// Names returns the org names, sorted.
func (r *Registry) Names() []string { return r.names }

// Orgs returns the orgs in name order.
func (r *Registry) Orgs() []*Org {
	out := make([]*Org, len(r.names))
	for i, n := range r.names {
		out[i] = r.orgs[n]
	}
	return out
}

// Len returns the number of registered orgs.
func (r *Registry) Len() int { return len(r.names) }

// RankPartial is one shard's contribution to the fleet practice
// ranking: its per-org MI ranking plus the number of network-month
// cases backing it (the merge weight).
type RankPartial struct {
	Org   string                   `json:"org"`
	Cases int                      `json:"cases"`
	Rank  []mpa.PracticeDependence `json:"rank"`
}

// RankPartialOf computes one org's partial from its warm query layer
// (no pipeline stage re-runs when the ranking is already memoized).
func RankPartialOf(o *Org) RankPartial {
	return RankPartial{
		Org:   o.Name,
		Cases: o.F.Dataset().Len(),
		Rank:  o.F.RankPracticesCached(),
	}
}

// FleetRankEntry is one practice's row in the merged fleet ranking.
type FleetRankEntry struct {
	Rank        int    `json:"rank"`
	Metric      string `json:"metric"`
	DisplayName string `json:"display_name"`
	Category    string `json:"category"`
	// MI is the case-weighted mean of the orgs' per-practice MI — each
	// org's dependence estimate counts in proportion to the number of
	// network-month observations behind it.
	MI   float64 `json:"mi_bits"`
	Orgs int     `json:"orgs"`
}

// FleetRank is the merged fleet-wide practice ranking (/v1/fleet/rank).
type FleetRank struct {
	Orgs    int              `json:"orgs"`
	Cases   int              `json:"cases"`
	Entries []FleetRankEntry `json:"entries"`
}

// MergeRank reduces per-org ranking partials into the fleet ranking:
// for every practice, the case-weighted mean MI across the orgs that
// report it, ordered by decreasing MI with ties broken by metric name.
// The reduction is a pure function of the partials — merging the same
// per-org results offline reproduces the fleet endpoint byte-for-byte —
// and is insensitive to partial order.
func MergeRank(parts []RankPartial) (*FleetRank, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("tenant: no rank partials to merge")
	}
	type acc struct {
		weighted float64 // Σ cases·MI
		sum      float64 // Σ MI, the unweighted fallback
		weight   float64 // Σ cases
		orgs     int
	}
	byMetric := map[string]*acc{}
	out := &FleetRank{Orgs: len(parts)}
	for _, p := range parts {
		if p.Cases < 0 {
			return nil, fmt.Errorf("tenant: org %q reports %d cases", p.Org, p.Cases)
		}
		out.Cases += p.Cases
		for _, e := range p.Rank {
			a := byMetric[e.Metric]
			if a == nil {
				a = &acc{}
				byMetric[e.Metric] = a
			}
			a.weighted += float64(p.Cases) * e.MI
			a.sum += e.MI
			a.weight += float64(p.Cases)
			a.orgs++
		}
	}
	for metric, a := range byMetric {
		mi := a.sum / float64(a.orgs)
		if a.weight > 0 {
			mi = a.weighted / a.weight
		}
		out.Entries = append(out.Entries, FleetRankEntry{
			Metric:      metric,
			DisplayName: mpa.DisplayName(metric),
			Category:    mpa.MetricCategory(metric),
			MI:          mi,
			Orgs:        a.orgs,
		})
	}
	sort.Slice(out.Entries, func(i, j int) bool {
		if out.Entries[i].MI != out.Entries[j].MI {
			return out.Entries[i].MI > out.Entries[j].MI
		}
		return out.Entries[i].Metric < out.Entries[j].Metric
	})
	for i := range out.Entries {
		out.Entries[i].Rank = i + 1
	}
	return out, nil
}

// HealthPartial is one shard's loaded-state summary: the per-org rows
// of /v1/fleet/health.
type HealthPartial struct {
	Org         string `json:"org"`
	Networks    int    `json:"networks"`
	Months      int    `json:"months"`
	Cases       int    `json:"cases"`
	Tickets     int    `json:"tickets"`
	WindowStart string `json:"window_start"`
	WindowEnd   string `json:"window_end"`
}

// HealthPartialOf summarizes one org's loaded state.
func HealthPartialOf(o *Org) HealthPartial {
	window := o.F.Window()
	return HealthPartial{
		Org:         o.Name,
		Networks:    len(o.F.Dataset().Networks()),
		Months:      len(window),
		Cases:       o.F.Dataset().Len(),
		Tickets:     len(o.F.Tickets().All()),
		WindowStart: window[0].String(),
		WindowEnd:   window[len(window)-1].String(),
	}
}

// FleetTotals aggregates the fleet in /v1/fleet/health.
type FleetTotals struct {
	Orgs     int `json:"orgs"`
	Networks int `json:"networks"`
	Cases    int `json:"cases"`
	Tickets  int `json:"tickets"`
	// WindowStart/WindowEnd span the union of the orgs' study windows.
	WindowStart string `json:"window_start"`
	WindowEnd   string `json:"window_end"`
}

// FleetHealth is the merged fleet health summary (/v1/fleet/health).
type FleetHealth struct {
	Status string          `json:"status"`
	Totals FleetTotals     `json:"totals"`
	Orgs   []HealthPartial `json:"orgs"`
}

// MergeHealth reduces per-org health partials: rows sorted by org name,
// totals summed, the fleet window spanning the orgs' windows ("YYYY-MM"
// compares correctly as a string). Like MergeRank it is a pure,
// order-insensitive function of the partials.
func MergeHealth(parts []HealthPartial) (*FleetHealth, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("tenant: no health partials to merge")
	}
	out := &FleetHealth{
		Status: "ok",
		Orgs:   append([]HealthPartial(nil), parts...),
	}
	sort.Slice(out.Orgs, func(i, j int) bool { return out.Orgs[i].Org < out.Orgs[j].Org })
	out.Totals.Orgs = len(out.Orgs)
	for _, p := range out.Orgs {
		out.Totals.Networks += p.Networks
		out.Totals.Cases += p.Cases
		out.Totals.Tickets += p.Tickets
		if out.Totals.WindowStart == "" || p.WindowStart < out.Totals.WindowStart {
			out.Totals.WindowStart = p.WindowStart
		}
		if p.WindowEnd > out.Totals.WindowEnd {
			out.Totals.WindowEnd = p.WindowEnd
		}
	}
	return out, nil
}
