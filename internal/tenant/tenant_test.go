package tenant_test

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mpa"
	"mpa/internal/tenant"
)

func TestValidName(t *testing.T) {
	for _, ok := range []string{"acme", "a", "org-2", "x9", "globex-east-1"} {
		if !tenant.ValidName(ok) {
			t.Errorf("ValidName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{
		"", "Acme", "a_b", "-lead", "has space", "fleet", "orgs", "debug",
		"metrics", "healthz", "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", // 33 chars
	} {
		if tenant.ValidName(bad) {
			t.Errorf("ValidName(%q) = true, want false", bad)
		}
	}
}

func TestParseOrgs(t *testing.T) {
	specs, err := tenant.ParseOrgs("acme=1,globex=2:8,initech=3:12:4")
	if err != nil {
		t.Fatal(err)
	}
	want := []tenant.OrgSpec{
		{Name: "acme", Seed: 1},
		{Name: "globex", Seed: 2, Networks: 8},
		{Name: "initech", Seed: 3, Networks: 12, Months: 4},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Fatalf("ParseOrgs = %+v, want %+v", specs, want)
	}

	for _, bad := range []string{
		"", "acme", "acme=x", "acme=1,acme=2", "Acme=1", "fleet=1",
		"acme=1:0", "acme=1:8:0", "acme=1:8:2:9",
	} {
		if _, err := tenant.ParseOrgs(bad); err == nil {
			t.Errorf("ParseOrgs(%q) succeeded, want error", bad)
		}
	}
}

func TestReadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "orgs.json")
	if err := os.WriteFile(path, []byte(`{"orgs":[
		{"name":"acme","seed":1,"networks":8,"months":2},
		{"name":"globex","seed":2}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	specs, err := tenant.ReadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []tenant.OrgSpec{
		{Name: "acme", Seed: 1, Networks: 8, Months: 2},
		{Name: "globex", Seed: 2},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Fatalf("ReadConfig = %+v, want %+v", specs, want)
	}

	for name, body := range map[string]string{
		"unknown-field": `{"orgs":[{"name":"a","seed":1,"sharding":9}]}`,
		"no-orgs":       `{"orgs":[]}`,
		"bad-name":      `{"orgs":[{"name":"Fleet","seed":1}]}`,
		"dup":           `{"orgs":[{"name":"a","seed":1},{"name":"a","seed":2}]}`,
	} {
		p := filepath.Join(dir, name+".json")
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := tenant.ReadConfig(p); err == nil {
			t.Errorf("%s: ReadConfig succeeded, want error", name)
		}
	}
	if _, err := tenant.ReadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("ReadConfig(missing) succeeded, want error")
	}
}

// loadRegistry builds a tiny 2-org fleet once for the merge tests.
func loadRegistry(t *testing.T) *tenant.Registry {
	t.Helper()
	base := mpa.SmallConfig(1)
	base.Networks = 6
	specs, err := tenant.ParseOrgs("globex=2:6:2,acme=1:8:2")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := tenant.Load(specs, base)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestLoadRegistry(t *testing.T) {
	reg := loadRegistry(t)
	if got, want := reg.Names(), []string{"acme", "globex"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want sorted %v", got, want)
	}
	acme, ok := reg.Get("acme")
	if !ok {
		t.Fatal("Get(acme) missing")
	}
	if n := len(acme.F.Dataset().Networks()); n != 8 {
		t.Errorf("acme networks = %d, want the spec override 8", n)
	}
	globex, _ := reg.Get("globex")
	if n := len(globex.F.Dataset().Networks()); n != 6 {
		t.Errorf("globex networks = %d, want 6", n)
	}
	if w := acme.F.Window(); len(w) != 2 {
		t.Errorf("acme window = %d months, want the spec override 2", len(w))
	}
	if _, ok := reg.Get("nope"); ok {
		t.Error("Get(nope) = ok")
	}
	if reg.Len() != 2 {
		t.Errorf("Len = %d", reg.Len())
	}
}

func TestMergeRank(t *testing.T) {
	reg := loadRegistry(t)
	var parts []tenant.RankPartial
	for _, o := range reg.Orgs() {
		parts = append(parts, tenant.RankPartialOf(o))
	}
	merged, err := tenant.MergeRank(parts)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Orgs != 2 {
		t.Errorf("Orgs = %d, want 2", merged.Orgs)
	}
	if want := parts[0].Cases + parts[1].Cases; merged.Cases != want {
		t.Errorf("Cases = %d, want %d", merged.Cases, want)
	}
	if len(merged.Entries) != len(mpa.MetricNames) {
		t.Fatalf("merged %d metrics, want %d", len(merged.Entries), len(mpa.MetricNames))
	}
	for i, e := range merged.Entries {
		if e.Rank != i+1 {
			t.Errorf("entry %d has rank %d", i, e.Rank)
		}
		if e.Orgs != 2 {
			t.Errorf("metric %s reported by %d orgs, want 2", e.Metric, e.Orgs)
		}
		if i > 0 && e.MI > merged.Entries[i-1].MI {
			t.Errorf("not descending at %d: %v > %v", i, e.MI, merged.Entries[i-1].MI)
		}
		if e.DisplayName == "" || e.Category == "" {
			t.Errorf("entry %d incomplete: %+v", i, e)
		}
	}

	// The merge is the case-weighted mean: check one metric by hand.
	metric := merged.Entries[0].Metric
	var want float64
	var weight float64
	for _, p := range parts {
		for _, e := range p.Rank {
			if e.Metric == metric {
				want += float64(p.Cases) * e.MI
				weight += float64(p.Cases)
			}
		}
	}
	want /= weight
	if got := merged.Entries[0].MI; math.Abs(got-want) > 1e-12 {
		t.Errorf("weighted MI for %s = %v, want %v", metric, got, want)
	}

	// Partial order must not matter (map-reduce reassociativity).
	swapped, err := tenant.MergeRank([]tenant.RankPartial{parts[1], parts[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, swapped) {
		t.Error("MergeRank depends on partial order")
	}

	if _, err := tenant.MergeRank(nil); err == nil {
		t.Error("MergeRank(nil) succeeded, want error")
	}
}

func TestMergeHealth(t *testing.T) {
	reg := loadRegistry(t)
	var parts []tenant.HealthPartial
	for _, o := range reg.Orgs() {
		parts = append(parts, tenant.HealthPartialOf(o))
	}
	merged, err := tenant.MergeHealth([]tenant.HealthPartial{parts[1], parts[0]})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Status != "ok" {
		t.Errorf("status = %q", merged.Status)
	}
	if merged.Totals.Orgs != 2 || merged.Totals.Networks != 14 {
		t.Errorf("totals = %+v, want 2 orgs over 14 networks", merged.Totals)
	}
	if got, want := merged.Totals.Cases, parts[0].Cases+parts[1].Cases; got != want {
		t.Errorf("total cases = %d, want %d", got, want)
	}
	if len(merged.Orgs) != 2 || merged.Orgs[0].Org != "acme" || merged.Orgs[1].Org != "globex" {
		t.Errorf("org rows not name-sorted: %+v", merged.Orgs)
	}
	if merged.Totals.WindowStart != parts[0].WindowStart || merged.Totals.WindowEnd != parts[0].WindowEnd {
		t.Errorf("fleet window = %s..%s, want the orgs' shared window %s..%s",
			merged.Totals.WindowStart, merged.Totals.WindowEnd, parts[0].WindowStart, parts[0].WindowEnd)
	}

	if _, err := tenant.MergeHealth(nil); err == nil {
		t.Error("MergeHealth(nil) succeeded, want error")
	}
}
