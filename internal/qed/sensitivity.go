package qed

import "mpa/internal/hypothesis"

// Rosenbaum sensitivity analysis quantifies how robust a matched-pair
// sign-test conclusion is to hidden bias — the paper's own caveat that
// "we can never definitely prove causality with QEDs; any causal
// relationships identified by MPA should be viewed as highly-likely
// rather than guaranteed" (§5.2.4), made quantitative (Rosenbaum,
// Observational Studies, 2002).
//
// Under hidden bias of magnitude Gamma, two matched cases may differ in
// their odds of treatment by up to a factor Gamma despite identical
// observed confounders. For the sign test, the worst case replaces the
// fair coin with success probability Gamma/(1+Gamma); the reported
// p-value is then an upper bound over all hidden biases of that size.

// SensitivityPValue returns the worst-case (upper-bound) one-sided
// sign-test p-value for the observed more/fewer split under hidden bias
// Gamma >= 1. Gamma = 1 recovers the usual (one-sided) sign test.
func SensitivityPValue(more, fewer int, gamma float64) float64 {
	if gamma < 1 {
		gamma = 1
	}
	n := more + fewer
	if n == 0 {
		return 1
	}
	// Worst-case success probability for a "more tickets" outcome.
	p := gamma / (1 + gamma)
	// P(X >= more) under Binomial(n, p): 1 - P(X <= more-1).
	return 1 - hypothesis.BinomCDF(more-1, n, p)
}

// SensitivityGamma returns the largest hidden-bias magnitude Gamma at
// which the matched-pair result stays significant at alpha (searched to
// two decimals, capped at maxGamma). A return of 1 means the conclusion
// is fragile: even the bias-free test barely holds or fails; larger
// values mean an unobserved confounder would need to shift treatment
// odds by that factor to explain the result away.
func SensitivityGamma(more, fewer int, alpha, maxGamma float64) float64 {
	if maxGamma < 1 {
		maxGamma = 1
	}
	if SensitivityPValue(more, fewer, 1) >= alpha {
		return 1
	}
	lo, hi := 1.0, maxGamma
	if SensitivityPValue(more, fewer, hi) < alpha {
		return maxGamma
	}
	for hi-lo > 0.01 {
		mid := (lo + hi) / 2
		if SensitivityPValue(more, fewer, mid) < alpha {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
