package qed

import (
	"fmt"
	"testing"
	"time"

	"mpa/internal/dataset"
	"mpa/internal/months"
	"mpa/internal/practices"
	"mpa/internal/rng"
)

// synthDataset builds a dataset with a known causal structure:
//
//	Z (confounder)  ~ uniform bins
//	X (treatment)   = Z + noise        (correlated with Z)
//	S (spurious)    = Z + noise        (correlated with Z, no own effect)
//	tickets         = Poisson(0.3 + 0.8*X + 0.5*Z)
//
// X and Z causally drive tickets; S only appears related through Z.
func synthDataset(n int, seed uint64) *dataset.Dataset {
	r := rng.New(seed)
	d := &dataset.Dataset{}
	for i := 0; i < n; i++ {
		z := float64(r.Intn(6))
		x := z + float64(r.Intn(3)) - 1
		if x < 0 {
			x = 0
		}
		s := z + float64(r.Intn(3)) - 1
		if s < 0 {
			s = 0
		}
		lambda := 0.3 + 0.8*x + 0.5*z
		tickets := r.Poisson(lambda)
		m := practices.Metrics{
			"metric_x": x,
			"metric_z": z,
			"metric_s": s,
		}
		d.Cases = append(d.Cases, dataset.Case{
			Network: fmt.Sprintf("n%04d", i),
			Month:   months.Month{Year: 2014, Mon: time.January},
			Metrics: m,
			Tickets: tickets,
		})
	}
	return d
}

func confounders() []string { return []string{"metric_x", "metric_z", "metric_s"} }

func TestCausalTreatmentDetected(t *testing.T) {
	d := synthDataset(4000, 1)
	cfg := DefaultConfig(confounders())
	res, err := Run(d, "metric_x", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("comparison points = %d", len(res.Points))
	}
	// The effect is strong and monotone; at least the first usable
	// comparison point must flag causality.
	found := false
	for _, p := range res.Points {
		if p.Causal {
			found = true
		}
	}
	if !found {
		for _, p := range res.Points {
			t.Logf("%s: pairs=%d p=%.3g balanced=%v imbal=%v skipped=%v",
				p.Comparison, p.Pairs, p.PValue, p.Balanced, p.Imbalanced, p.Skipped)
		}
		t.Fatal("causal treatment not detected at any comparison point")
	}
	// Effect direction: more tickets under treatment.
	for _, p := range res.Points {
		if p.Causal && p.MoreTickets <= p.FewerTickets {
			t.Errorf("%s flagged causal but direction is wrong (+%d/-%d)",
				p.Comparison, p.MoreTickets, p.FewerTickets)
		}
	}
}

func TestSpuriousTreatmentNotDetected(t *testing.T) {
	d := synthDataset(4000, 2)
	cfg := DefaultConfig(confounders())
	res, err := Run(d, "metric_s", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Causal {
			t.Errorf("spurious treatment flagged causal at %s (p=%.3g)", p.Comparison, p.PValue)
		}
	}
}

func TestExactMatchingStarves(t *testing.T) {
	// With a continuous-ish confounder space, exact matching on all
	// confounders yields dramatically fewer pairs than propensity
	// matching — the paper's §5.2.3 motivation.
	d := synthDataset(2000, 3)
	// Make confounders effectively continuous so exact matches are rare.
	r := rng.New(99)
	for i := range d.Cases {
		d.Cases[i].Metrics["metric_z"] += r.Float64() * 0.01
	}
	prop := DefaultConfig(confounders())
	exact := DefaultConfig(confounders())
	exact.Matching = MatchExact
	rp, err := Run(d, "metric_x", prop)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Run(d, "metric_x", exact)
	if err != nil {
		t.Fatal(err)
	}
	var propPairs, exactPairs int
	for i := range rp.Points {
		propPairs += rp.Points[i].Pairs
		exactPairs += re.Points[i].Pairs
	}
	if exactPairs*10 > propPairs {
		t.Errorf("exact matching found %d pairs vs propensity %d — should starve", exactPairs, propPairs)
	}
}

func TestMahalanobisMatchingWorks(t *testing.T) {
	d := synthDataset(800, 4)
	cfg := DefaultConfig(confounders())
	cfg.Matching = MatchMahalanobis
	res, err := Run(d, "metric_x", cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := 0
	for _, p := range res.Points {
		pairs += p.Pairs
	}
	if pairs == 0 {
		t.Fatal("Mahalanobis matching produced no pairs")
	}
}

func TestMatchingWithReplacement(t *testing.T) {
	d := synthDataset(3000, 5)
	res, err := Run(d, "metric_x", DefaultConfig(confounders()))
	if err != nil {
		t.Fatal(err)
	}
	// With replacement, distinct untreated cases used <= pairs (paper
	// Table 5 shows strictly fewer).
	for _, p := range res.Points {
		if p.Skipped {
			continue
		}
		if p.UntreatedUsed > p.Pairs {
			t.Errorf("%s: distinct untreated %d > pairs %d", p.Comparison, p.UntreatedUsed, p.Pairs)
		}
	}
}

func TestSkippedOnTinyGroups(t *testing.T) {
	d := synthDataset(30, 6)
	cfg := DefaultConfig(confounders())
	cfg.MinCases = 25
	res, err := Run(d, "metric_x", cfg)
	if err != nil {
		t.Fatal(err)
	}
	anySkipped := false
	for _, p := range res.Points {
		if p.Skipped {
			anySkipped = true
			if p.Causal {
				t.Error("skipped point flagged causal")
			}
		}
	}
	if !anySkipped {
		t.Error("tiny dataset produced no skipped points")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Run(&dataset.Dataset{}, "metric_x", DefaultConfig(confounders())); err == nil {
		t.Error("empty dataset should error")
	}
	d := synthDataset(100, 7)
	cfg := DefaultConfig(confounders())
	cfg.Bins = 1
	if _, err := Run(d, "metric_x", cfg); err == nil {
		t.Error("single bin should error")
	}
}

func TestBalanceStatOK(t *testing.T) {
	cases := []struct {
		b    BalanceStat
		want bool
	}{
		{BalanceStat{StdMeanDiff: 0, VarRatio: 1}, true},
		{BalanceStat{StdMeanDiff: 0.24, VarRatio: 1.9}, true},
		{BalanceStat{StdMeanDiff: 0.26, VarRatio: 1}, false},
		{BalanceStat{StdMeanDiff: -0.3, VarRatio: 1}, false},
		{BalanceStat{StdMeanDiff: 0, VarRatio: 0.4}, false},
		{BalanceStat{StdMeanDiff: 0, VarRatio: 2.1}, false},
	}
	for i, c := range cases {
		if got := c.b.OK(); got != c.want {
			t.Errorf("case %d: OK = %v", i, got)
		}
	}
}

func TestPropensityBalanceReported(t *testing.T) {
	d := synthDataset(2000, 8)
	res, err := Run(d, "metric_x", DefaultConfig(confounders()))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Skipped || p.Pairs == 0 {
			continue
		}
		// Matched propensity scores should be very close: |diff| small.
		if !p.PropensityBalance.OK() {
			t.Errorf("%s: propensity imbalance: %+v", p.Comparison, p.PropensityBalance)
		}
	}
}

func TestMatchMethodString(t *testing.T) {
	if MatchPropensity.String() != "propensity" || MatchExact.String() != "exact" ||
		MatchMahalanobis.String() != "mahalanobis" || MatchMethod(9).String() != "unknown" {
		t.Error("method names wrong")
	}
}

func TestTreatmentExcludedFromConfounders(t *testing.T) {
	// Including the treatment in the confounder list must not break the
	// analysis (it is silently excluded).
	d := synthDataset(1500, 9)
	cfg := DefaultConfig([]string{"metric_x", "metric_z", "metric_s"})
	res, err := Run(d, "metric_x", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
}

func TestSensitivityPValue(t *testing.T) {
	// Gamma = 1 matches the one-sided sign test.
	if p := SensitivityPValue(8, 2, 1); p <= 0 || p >= 1 {
		t.Errorf("p = %v", p)
	}
	// Larger hidden bias can only weaken the conclusion.
	prev := 0.0
	for _, g := range []float64{1, 1.5, 2, 3, 5} {
		p := SensitivityPValue(80, 20, g)
		if p < prev {
			t.Fatalf("p-value decreased with gamma %v", g)
		}
		prev = p
	}
	if p := SensitivityPValue(0, 0, 1); p != 1 {
		t.Errorf("empty p = %v", p)
	}
	// Gamma below 1 clamps.
	if SensitivityPValue(8, 2, 0.5) != SensitivityPValue(8, 2, 1) {
		t.Error("gamma < 1 not clamped")
	}
}

func TestSensitivityGamma(t *testing.T) {
	// An overwhelming split survives substantial hidden bias.
	strong := SensitivityGamma(900, 100, 0.001, 10)
	if strong < 2 {
		t.Errorf("strong result gamma = %v", strong)
	}
	// A balanced split is fragile.
	if g := SensitivityGamma(50, 50, 0.001, 10); g != 1 {
		t.Errorf("fragile result gamma = %v, want 1", g)
	}
	// Monotone: stronger evidence, larger gamma.
	weak := SensitivityGamma(600, 400, 0.001, 10)
	if weak > strong {
		t.Errorf("weaker split has larger gamma: %v > %v", weak, strong)
	}
	// Saturates at the cap for near-unanimous outcomes.
	if g := SensitivityGamma(1000, 0, 0.001, 10); g != 10 {
		t.Errorf("unanimous gamma = %v, want cap", g)
	}
}

func TestSensitivityGammaInResults(t *testing.T) {
	d := synthDataset(3000, 17)
	res, err := Run(d, "metric_x", DefaultConfig(confounders()))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Skipped {
			continue
		}
		if p.SensitivityGamma < 1 || p.SensitivityGamma > 10 {
			t.Errorf("%s: gamma = %v out of range", p.Comparison, p.SensitivityGamma)
		}
	}
}
