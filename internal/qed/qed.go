// Package qed implements MPA's quasi-experimental causal analysis (paper
// §5.2): matched-design experiments that test whether a management
// practice (treatment) causally impacts network health (outcome), while
// eliminating the effects of the remaining practices (confounders).
//
// The pipeline follows the paper's four steps: (1) bin the treatment
// metric and compare neighboring bins (treated vs untreated); (2) match
// treated to untreated cases by k=1 nearest-neighbor on propensity scores,
// with replacement, after common-support trimming; (3) verify match
// quality with standardized mean differences and variance ratios over the
// propensity scores and every confounder; (4) sign-test the matched-pair
// outcome differences against the null of zero median effect.
package qed

import (
	"fmt"
	"math"
	"sort"

	"mpa/internal/dataset"
	"mpa/internal/hypothesis"
	"mpa/internal/ml"
	"mpa/internal/obs"
	"mpa/internal/stats"
)

// Config parameterizes a causal analysis.
type Config struct {
	// Confounders are the practice metrics to control for. The paper
	// includes all practice metrics except the treatment (§5.2.3).
	Confounders []string
	// Bins is the number of treatment bins (paper: 5), yielding Bins-1
	// comparison points.
	Bins int
	// Alpha is the significance threshold for rejecting the null (paper:
	// a moderately conservative 0.001).
	Alpha float64
	// MinCases is the minimum group size for a comparison point to be
	// attempted.
	MinCases int
	// MaxImbalancedFrac is the fraction of confounders allowed to miss
	// the balance thresholds before the whole matching is declared
	// imbalanced. With ~30 covariates and modest samples some marginal
	// misses are expected; the propensity score itself must always
	// balance, and no confounder may be severely imbalanced
	// (|standardized difference| >= 2).
	MaxImbalancedFrac float64
	// Caliper is the maximum allowed propensity-score distance within a
	// matched pair, in pooled-score standard deviations (Rosenbaum &
	// Rubin's caliper; 0 = use the 0.2 default).
	Caliper float64
	// MaxReuse bounds how many treated cases may share one untreated
	// case when matching with replacement (0 = unlimited). Unbounded
	// reuse lets a handful of untreated cases stand in for the whole
	// treated group, collapsing the matched-set variance and voiding the
	// balance diagnostics; a small cap keeps replacement's benefit
	// (better pairings than one-shot matching) without the degeneracy.
	MaxReuse int
	// LogReg configures propensity-score estimation.
	LogReg ml.LogRegConfig
	// Matching selects the pairing method; the default is propensity
	// scores (the paper's choice); exact and Mahalanobis matching are
	// provided as the baselines the paper rejects.
	Matching MatchMethod
	// Obs, when set, is the parent span under which Run records a
	// "causal" span with per-comparison-point children and matching
	// counters (pairs, fit iterations, balance rejections).
	Obs *obs.Span
}

// MatchMethod selects the pairing method.
type MatchMethod int

// Matching methods.
const (
	MatchPropensity MatchMethod = iota
	MatchExact
	MatchMahalanobis
)

// String returns the method name.
func (m MatchMethod) String() string {
	switch m {
	case MatchPropensity:
		return "propensity"
	case MatchExact:
		return "exact"
	case MatchMahalanobis:
		return "mahalanobis"
	default:
		return "unknown"
	}
}

// DefaultConfig returns the paper's settings for the given confounder
// set.
func DefaultConfig(confounders []string) Config {
	lr := ml.DefaultLogRegConfig()
	// Operational confounders can nearly determine operational treatments
	// (e.g. config changes vs change events); without meaningful
	// shrinkage the propensity model separates the groups perfectly,
	// scores saturate at 0/1, and common support vanishes. A moderate
	// ridge keeps the score distributions overlapping.
	lr.L2 = 0.05
	return Config{
		Confounders:       confounders,
		Bins:              5,
		Alpha:             0.001,
		MinCases:          20,
		MaxImbalancedFrac: 0.34,
		Caliper:           0.2,
		MaxReuse:          4,
		LogReg:            lr,
		Matching:          MatchPropensity,
	}
}

// BalanceStat summarizes match quality for one variable (a confounder or
// the propensity score itself): Stuart's thresholds require
// |StdMeanDiff| < 0.25 and VarianceRatio within [0.5, 2].
type BalanceStat struct {
	Name        string
	StdMeanDiff float64
	VarRatio    float64
}

// OK reports whether the variable meets both balance thresholds.
func (b BalanceStat) OK() bool {
	return math.Abs(b.StdMeanDiff) < 0.25 && b.VarRatio >= 0.5 && b.VarRatio <= 2
}

// PointResult is the outcome of one comparison point (bin b vs bin b+1).
type PointResult struct {
	Comparison     string // e.g. "1:2" (1-based, as in the paper's tables)
	UntreatedCases int    // cases in the lower bin
	TreatedCases   int    // cases in the upper bin
	Pairs          int    // matched pairs (with replacement)
	UntreatedUsed  int    // distinct untreated cases matched
	// Balance diagnostics.
	PropensityBalance BalanceStat
	// ConfounderBalance holds the balance statistic of every confounder
	// over the matched pairs, in confounder order.
	ConfounderBalance []BalanceStat
	Imbalanced        []string // confounders failing the thresholds
	Balanced          bool
	// Sign-test outcome distribution and significance (paper Table 6).
	FewerTickets int
	NoEffect     int
	MoreTickets  int
	PValue       float64
	Causal       bool
	// SensitivityGamma is the largest Rosenbaum hidden-bias magnitude at
	// which a causal conclusion survives (1 when the point is not
	// significant to begin with; capped at 10).
	SensitivityGamma float64
	// Skipped marks comparison points with too few cases to attempt.
	Skipped bool
}

// Result is a full causal analysis for one treatment practice.
type Result struct {
	Treatment string
	Points    []PointResult
}

// Run performs the matched-design analysis of one treatment practice over
// the dataset.
func Run(d *dataset.Dataset, treatment string, cfg Config) (*Result, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("qed: empty dataset")
	}
	if cfg.Bins < 2 {
		return nil, fmt.Errorf("qed: need at least 2 treatment bins")
	}
	// Confounder matrix and outcome vector, in case order.
	conf := make([][]float64, d.Len())
	for i := range conf {
		row := make([]float64, 0, len(cfg.Confounders))
		for _, name := range cfg.Confounders {
			if name == treatment {
				continue // never control for the treatment itself
			}
			row = append(row, d.Cases[i].Metrics[name])
		}
		conf[i] = row
	}
	outcome := d.TicketValues()

	// Bin the treatment metric (5/95-percentile-anchored equal width).
	binned, _ := stats.BinValues(d.Values(treatment), cfg.Bins)
	byBin := make([][]int, cfg.Bins)
	for i, b := range binned {
		byBin[b] = append(byBin[b], i)
	}

	// Confounder names aligned with the matrix columns.
	var confNames []string
	for _, name := range cfg.Confounders {
		if name != treatment {
			confNames = append(confNames, name)
		}
	}

	sp := cfg.Obs.Start("causal")
	defer sp.End()
	res := &Result{Treatment: treatment}
	for b := 0; b+1 < cfg.Bins; b++ {
		comparison := fmt.Sprintf("%d:%d", b+1, b+2)
		psp := sp.Start(comparison)
		point := comparePoint(byBin[b], byBin[b+1], conf, confNames, outcome, cfg, psp)
		point.Comparison = comparison
		psp.End()
		res.Points = append(res.Points, point)

		sp.Count("points", 1)
		sp.Count("pairs", float64(point.Pairs))
		if point.Skipped {
			sp.Count("points_skipped", 1)
		} else if !point.Balanced {
			sp.Count("balance_rejections", 1)
			obs.GetCounter("qed.balance_rejections").Add(1)
		}
		sp.Count("fit_iterations", psp.Counter("fit_iterations"))
		obs.GetCounter("qed.pairs_matched").Add(int64(point.Pairs))
	}
	obs.Logger().Debug("causal analysis complete", "treatment", treatment,
		"points", len(res.Points), "pairs", int(sp.Counter("pairs")))
	return res, nil
}

// comparePoint runs one untreated-vs-treated comparison.
func comparePoint(untreated, treated []int, conf [][]float64, confNames []string, outcome []float64, cfg Config, sp *obs.Span) PointResult {
	pr := PointResult{
		UntreatedCases: len(untreated),
		TreatedCases:   len(treated),
	}
	if len(untreated) < cfg.MinCases || len(treated) < cfg.MinCases {
		pr.Skipped = true
		pr.PValue = 1
		return pr
	}

	var pairs []pair
	switch cfg.Matching {
	case MatchExact:
		pairs = matchExact(untreated, treated, conf)
	case MatchMahalanobis:
		pairs = matchMahalanobis(untreated, treated, conf)
	default:
		pairs = matchPropensity(untreated, treated, conf, cfg.LogReg, cfg.MaxReuse, cfg.Caliper, sp)
	}
	sp.Count("pairs", float64(len(pairs)))
	pr.Pairs = len(pairs)
	if len(pairs) == 0 {
		pr.Skipped = true
		pr.PValue = 1
		return pr
	}
	used := map[int]bool{}
	for _, p := range pairs {
		used[p.untreated] = true
	}
	pr.UntreatedUsed = len(used)

	// Balance verification over propensity scores and every confounder.
	pr.PropensityBalance = propensityBalance(pairs)
	if len(conf) > 0 {
		tVals := make([]float64, len(pairs))
		uVals := make([]float64, len(pairs))
		for j := 0; j < len(conf[0]); j++ {
			for k, p := range pairs {
				tVals[k] = conf[p.treated][j]
				uVals[k] = conf[p.untreated][j]
			}
			name := fmt.Sprintf("confounder%d", j)
			if j < len(confNames) {
				name = confNames[j]
			}
			b := BalanceStat{
				Name:        name,
				StdMeanDiff: stats.StdMeanDiff(tVals, uVals),
				VarRatio:    stats.VarianceRatio(tVals, uVals),
			}
			pr.ConfounderBalance = append(pr.ConfounderBalance, b)
			if !b.OK() {
				pr.Imbalanced = append(pr.Imbalanced, b.Name)
			}
		}
	}
	severe := false
	for _, b := range pr.ConfounderBalance {
		if math.Abs(b.StdMeanDiff) >= 2 {
			severe = true
		}
	}
	maxImbal := int(cfg.MaxImbalancedFrac * float64(len(pr.ConfounderBalance)))
	pr.Balanced = pr.PropensityBalance.OK() && !severe && len(pr.Imbalanced) <= maxImbal

	// Outcome analysis: sign test over matched-pair ticket differences.
	diffs := make([]float64, len(pairs))
	for k, p := range pairs {
		diffs[k] = outcome[p.treated] - outcome[p.untreated]
	}
	st := hypothesis.SignTest(diffs)
	pr.MoreTickets = st.Positive
	pr.FewerTickets = st.Negative
	pr.NoEffect = st.Ties
	pr.PValue = st.PValue
	pr.Causal = pr.Balanced && st.SignificantAt(cfg.Alpha)
	pr.SensitivityGamma = SensitivityGamma(st.Positive, st.Negative, cfg.Alpha, 10)
	return pr
}

// pair is one matched treated/untreated case pair; the scores hold the
// propensity scores when propensity matching was used.
type pair struct {
	treated, untreated int
	scoreT, scoreU     float64
}

// propensityBalance computes the balance statistic over the matched
// propensity scores.
func propensityBalance(pairs []pair) BalanceStat {
	tVals := make([]float64, len(pairs))
	uVals := make([]float64, len(pairs))
	for k, p := range pairs {
		tVals[k] = p.scoreT
		uVals[k] = p.scoreU
	}
	return BalanceStat{
		Name:        "propensity",
		StdMeanDiff: stats.StdMeanDiff(tVals, uVals),
		VarRatio:    stats.VarianceRatio(tVals, uVals),
	}
}

// matchPropensity implements the paper's method: a logistic regression of
// treatment assignment on the confounders yields each case's propensity
// score; treated cases outside the untreated score range (and vice versa)
// are discarded (common support); each remaining treated case pairs with
// the untreated case of nearest score, with replacement.
func matchPropensity(untreated, treated []int, conf [][]float64, lrCfg ml.LogRegConfig, maxReuse int, caliperSD float64, sp *obs.Span) []pair {
	// Train on the union: label 1 = treated.
	var X [][]float64
	var y []int
	for _, i := range untreated {
		X = append(X, conf[i])
		y = append(y, 0)
	}
	for _, i := range treated {
		X = append(X, conf[i])
		y = append(y, 1)
	}
	model := ml.TrainLogReg(X, y, lrCfg)
	sp.Count("fit_iterations", float64(model.Iterations()))
	obs.GetCounter("qed.fit_iterations").Add(int64(model.Iterations()))
	scoreOf := func(i int) float64 { return model.Prob(conf[i]) }

	type scored struct {
		idx   int
		score float64
	}
	us := make([]scored, len(untreated))
	for k, i := range untreated {
		us[k] = scored{i, scoreOf(i)}
	}
	sort.Slice(us, func(a, b int) bool { return us[a].score < us[b].score })
	uMin, uMax := us[0].score, us[len(us)-1].score

	ts := make([]scored, 0, len(treated))
	var tMin, tMax float64
	for k, i := range treated {
		s := scoreOf(i)
		if k == 0 || s < tMin {
			tMin = s
		}
		if k == 0 || s > tMax {
			tMax = s
		}
		ts = append(ts, scored{i, s})
	}

	// Caliper: reject pairs whose scores differ by more than 0.2 standard
	// deviations of the pooled score distribution (Rosenbaum & Rubin's
	// standard caliper), so poor nearest neighbors do not contaminate the
	// outcome analysis.
	var all []float64
	for _, s := range us {
		all = append(all, s.score)
	}
	for _, s := range ts {
		all = append(all, s.score)
	}
	if caliperSD <= 0 {
		caliperSD = 0.2
	}
	caliper := caliperSD * stats.StdDev(all)
	if caliper <= 0 {
		caliper = math.Inf(1) // degenerate scores: no caliper
	}

	var pairs []pair
	uses := make([]int, len(us))
	usable := func(k int) bool {
		if k < 0 || k >= len(us) {
			return false
		}
		if us[k].score < tMin || us[k].score > tMax {
			return false
		}
		return maxReuse <= 0 || uses[k] < maxReuse
	}
	for seq, t := range ts {
		// Common support: discard treated cases whose score falls outside
		// the untreated range, and untreated candidates outside the
		// treated range.
		if t.score < uMin || t.score > uMax {
			continue
		}
		// Binary search the nearest untreated score, then scan outward
		// past exhausted (reuse-capped) or out-of-support candidates.
		k := sort.Search(len(us), func(a int) bool { return us[a].score >= t.score })
		lo, hi := k-1, k
		best := -1
		bestDiff := math.Inf(1)
		for best < 0 && (lo >= 0 || hi < len(us)) {
			if usable(lo) {
				best, bestDiff = lo, math.Abs(us[lo].score-t.score)
			}
			if usable(hi) {
				if d := math.Abs(us[hi].score - t.score); d < bestDiff {
					best, bestDiff = hi, d
				}
			}
			if best >= 0 {
				break
			}
			lo--
			hi++
		}
		if best < 0 || bestDiff > caliper {
			continue
		}
		// Ties are common when confounders are discrete: many untreated
		// cases share the nearest score. Spread matches uniformly across
		// the tied candidates instead of reusing one case (whose private
		// outcome noise would otherwise correlate every pair).
		const eps = 1e-12
		tlo, thi := best, best
		for usable(tlo-1) && math.Abs(us[tlo-1].score-t.score) <= bestDiff+eps {
			tlo--
		}
		for usable(thi+1) && math.Abs(us[thi+1].score-t.score) <= bestDiff+eps {
			thi++
		}
		pickIdx := tlo + seq%(thi-tlo+1)
		// The modular pick may hit an exhausted candidate; walk forward
		// within the tie range to the first usable one.
		for !usable(pickIdx) {
			pickIdx++
			if pickIdx > thi {
				pickIdx = tlo
			}
		}
		pick := us[pickIdx]
		uses[pickIdx]++
		pairs = append(pairs, pair{
			treated: t.idx, untreated: pick.idx,
			scoreT: t.score, scoreU: pick.score,
		})
	}
	return pairs
}

// matchExact pairs a treated case with an untreated case only when every
// confounder value is identical — the paper's illustration of why exact
// matching fails here (at most 17 pairs out of ~11K cases).
func matchExact(untreated, treated []int, conf [][]float64) []pair {
	key := func(i int) string {
		return fmt.Sprint(conf[i])
	}
	byKey := map[string][]int{}
	for _, i := range untreated {
		byKey[key(i)] = append(byKey[key(i)], i)
	}
	var pairs []pair
	for _, t := range treated {
		if matches := byKey[key(t)]; len(matches) > 0 {
			pairs = append(pairs, pair{treated: t, untreated: matches[0]})
		}
	}
	return pairs
}

// matchMahalanobis pairs each treated case with the untreated case of
// minimal Mahalanobis distance over the confounders (diagonal covariance
// approximation: standardized Euclidean distance, the common practical
// simplification when the confounder count is large relative to cases).
func matchMahalanobis(untreated, treated []int, conf [][]float64) []pair {
	if len(conf) == 0 || len(conf[0]) == 0 {
		return nil
	}
	d := len(conf[0])
	// Per-dimension variance over all cases in either group.
	all := append(append([]int{}, untreated...), treated...)
	variance := make([]float64, d)
	for j := 0; j < d; j++ {
		vals := make([]float64, len(all))
		for k, i := range all {
			vals[k] = conf[i][j]
		}
		variance[j] = stats.Variance(vals)
		if variance[j] == 0 {
			variance[j] = 1
		}
	}
	dist := func(a, b int) float64 {
		var total float64
		for j := 0; j < d; j++ {
			diff := conf[a][j] - conf[b][j]
			total += diff * diff / variance[j]
		}
		return total
	}
	var pairs []pair
	for _, t := range treated {
		best, bestD := -1, math.Inf(1)
		for _, u := range untreated {
			if dd := dist(t, u); dd < bestD {
				best, bestD = u, dd
			}
		}
		if best >= 0 {
			pairs = append(pairs, pair{treated: t, untreated: best})
		}
	}
	return pairs
}
