package ticketing

import (
	"testing"
	"time"

	"mpa/internal/months"
)

func at(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 12, 0, 0, 0, time.UTC)
}

func TestFileAssignsIDs(t *testing.T) {
	l := NewLog()
	a := l.File(Ticket{Network: "n1", Opened: at(2014, 3, 1)})
	b := l.File(Ticket{Network: "n1", Opened: at(2014, 3, 2)})
	if a.ID != 1 || b.ID != 2 {
		t.Errorf("IDs = %d, %d", a.ID, b.ID)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestHealthCountExcludesMaintenance(t *testing.T) {
	l := NewLog()
	m := months.Month{Year: 2014, Mon: time.March}
	l.File(Ticket{Network: "n1", Origin: OriginAlarm, Opened: at(2014, 3, 1)})
	l.File(Ticket{Network: "n1", Origin: OriginUserReport, Opened: at(2014, 3, 5)})
	l.File(Ticket{Network: "n1", Origin: OriginMaintenance, Opened: at(2014, 3, 9)})
	l.File(Ticket{Network: "n1", Origin: OriginAlarm, Opened: at(2014, 4, 1)}) // other month
	l.File(Ticket{Network: "n2", Origin: OriginAlarm, Opened: at(2014, 3, 2)}) // other net
	if got := l.HealthCount("n1", m); got != 2 {
		t.Errorf("HealthCount = %d, want 2", got)
	}
}

func TestMonthlyHealth(t *testing.T) {
	l := NewLog()
	l.File(Ticket{Network: "n1", Origin: OriginAlarm, Opened: at(2014, 3, 1)})
	l.File(Ticket{Network: "n1", Origin: OriginAlarm, Opened: at(2014, 3, 2)})
	l.File(Ticket{Network: "n1", Origin: OriginAlarm, Opened: at(2014, 5, 1)})
	ms := months.Range(months.Month{Year: 2014, Mon: time.March}, months.Month{Year: 2014, Mon: time.May})
	got := l.MonthlyHealth("n1", ms)
	if len(got) != 3 || got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Errorf("MonthlyHealth = %v", got)
	}
}

func TestForNetworkAndNetworks(t *testing.T) {
	l := NewLog()
	l.File(Ticket{Network: "b", Opened: at(2014, 1, 1)})
	l.File(Ticket{Network: "a", Opened: at(2014, 1, 2)})
	l.File(Ticket{Network: "b", Opened: at(2014, 1, 3)})
	if got := len(l.ForNetwork("b")); got != 2 {
		t.Errorf("ForNetwork(b) = %d", got)
	}
	nets := l.Networks()
	if len(nets) != 2 || nets[0] != "a" || nets[1] != "b" {
		t.Errorf("Networks = %v", nets)
	}
}

func TestMeanTimeToResolve(t *testing.T) {
	l := NewLog()
	open := at(2014, 3, 1)
	l.File(Ticket{Network: "n1", Origin: OriginAlarm, Opened: open, Resolved: open.Add(2 * time.Hour)})
	l.File(Ticket{Network: "n1", Origin: OriginAlarm, Opened: open, Resolved: open.Add(4 * time.Hour)})
	l.File(Ticket{Network: "n1", Origin: OriginAlarm, Opened: open}) // unresolved: skipped
	l.File(Ticket{Network: "n1", Origin: OriginMaintenance, Opened: open, Resolved: open.Add(100 * time.Hour)})
	if got := l.MeanTimeToResolve("n1"); got != 3*time.Hour {
		t.Errorf("MTTR = %v, want 3h", got)
	}
	if got := l.MeanTimeToResolve("empty"); got != 0 {
		t.Errorf("MTTR of empty = %v", got)
	}
}

func TestOriginString(t *testing.T) {
	if OriginAlarm.String() != "alarm" || OriginUserReport.String() != "user-report" ||
		OriginMaintenance.String() != "maintenance" || Origin(9).String() != "unknown" {
		t.Error("origin names wrong")
	}
}

func TestFileCopiesTicket(t *testing.T) {
	l := NewLog()
	orig := Ticket{Network: "n1", Opened: at(2014, 1, 1)}
	stored := l.File(orig)
	orig.Network = "mutated"
	if stored.Network != "n1" {
		t.Error("File did not copy the ticket")
	}
}
