// Package ticketing models the incident-management substrate MPA reads
// network health from (paper §2.1, data source 3). Tickets are created
// when monitoring alarms fire, when users report problems, or when
// operators conduct planned maintenance; MPA excludes maintenance tickets
// because they are unlikely to be triggered by performance or availability
// problems (§2.2). The paper's health metric is the monthly count of
// non-maintenance tickets per network.
package ticketing

import (
	"sort"
	"time"

	"mpa/internal/months"
)

// Origin classifies how a ticket was created.
type Origin int

// Ticket origins.
const (
	OriginAlarm Origin = iota // monitoring system raised an alarm
	OriginUserReport
	OriginMaintenance // planned maintenance; excluded from health
)

// String returns the origin name.
func (o Origin) String() string {
	switch o {
	case OriginAlarm:
		return "alarm"
	case OriginUserReport:
		return "user-report"
	case OriginMaintenance:
		return "maintenance"
	default:
		return "unknown"
	}
}

// Ticket is one trouble ticket. The structured fields mirror the paper's
// description: discovery and resolution times, the devices causing or
// affected by the problem, and a symptom selected from a predefined list.
// Free-text diagnosis notes model the unstructured portion.
type Ticket struct {
	ID       int
	Network  string
	Devices  []string
	Origin   Origin
	Opened   time.Time
	Resolved time.Time // zero while open; may lag the actual fix
	Symptom  string
	Notes    string
}

// Log is an organization's ticket history.
type Log struct {
	tickets []*Ticket
	nextID  int
}

// NewLog returns an empty ticket log.
func NewLog() *Log { return &Log{nextID: 1} }

// File records a new ticket, assigning it the next ID, and returns it.
func (l *Log) File(t Ticket) *Ticket {
	t.ID = l.nextID
	l.nextID++
	stored := t
	l.tickets = append(l.tickets, &stored)
	return &stored
}

// Clone returns an independent log sharing l's ticket records. The
// ticket slice's capacity is clamped to its length, so filing into the
// clone reallocates instead of writing into the original's backing
// array; tickets themselves are never mutated after filing.
func (l *Log) Clone() *Log {
	return &Log{tickets: l.tickets[:len(l.tickets):len(l.tickets)], nextID: l.nextID}
}

// All returns every ticket in filing order.
func (l *Log) All() []*Ticket { return l.tickets }

// Len returns the number of tickets.
func (l *Log) Len() int { return len(l.tickets) }

// ForNetwork returns the network's tickets in filing order.
func (l *Log) ForNetwork(network string) []*Ticket {
	var out []*Ticket
	for _, t := range l.tickets {
		if t.Network == network {
			out = append(out, t)
		}
	}
	return out
}

// HealthCount returns the network's health metric for the month: the
// number of tickets opened in that month, excluding planned maintenance.
func (l *Log) HealthCount(network string, m months.Month) int {
	count := 0
	for _, t := range l.tickets {
		if t.Network != network || t.Origin == OriginMaintenance {
			continue
		}
		if months.Of(t.Opened) == m {
			count++
		}
	}
	return count
}

// MonthlyHealth returns the per-month non-maintenance ticket counts for a
// network over the given months.
func (l *Log) MonthlyHealth(network string, ms []months.Month) []int {
	idx := map[months.Month]int{}
	for i, m := range ms {
		idx[m] = i
	}
	out := make([]int, len(ms))
	for _, t := range l.tickets {
		if t.Network != network || t.Origin == OriginMaintenance {
			continue
		}
		if i, ok := idx[months.Of(t.Opened)]; ok {
			out[i]++
		}
	}
	return out
}

// Networks returns the sorted set of networks with at least one ticket.
func (l *Log) Networks() []string {
	seen := map[string]bool{}
	for _, t := range l.tickets {
		seen[t.Network] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MeanTimeToResolve returns the mean resolution latency of the network's
// resolved non-maintenance tickets. The paper notes this metric is less
// reliable than ticket counts because tickets are sometimes not marked
// resolved until well after the fix; it is provided for completeness.
func (l *Log) MeanTimeToResolve(network string) time.Duration {
	var total time.Duration
	n := 0
	for _, t := range l.ForNetwork(network) {
		if t.Origin == OriginMaintenance || t.Resolved.IsZero() {
			continue
		}
		total += t.Resolved.Sub(t.Opened)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}
