package nms

import (
	"testing"
	"time"

	"mpa/internal/months"
)

func ts(day, hour int) time.Time {
	return time.Date(2014, time.March, day, hour, 0, 0, 0, time.UTC)
}

func snap(dev string, t time.Time, login, fp string) *Snapshot {
	return &Snapshot{Device: dev, Time: t, Login: login, Text: "cfg-" + fp, Fingerprint: fp}
}

func TestRecordAndRetrieve(t *testing.T) {
	a := NewArchive()
	if err := a.Record(snap("d1", ts(1, 0), "alice", "f1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Record(snap("d1", ts(2, 0), "bob", "f2")); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Snapshots("d1")); got != 2 {
		t.Errorf("snapshots = %d", got)
	}
	if got := a.SnapshotCount(); got != 2 {
		t.Errorf("SnapshotCount = %d", got)
	}
	if a.TotalBytes() <= 0 {
		t.Error("TotalBytes should be positive")
	}
}

func TestRecordRejectsOutOfOrder(t *testing.T) {
	a := NewArchive()
	if err := a.Record(snap("d1", ts(5, 0), "a", "f1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Record(snap("d1", ts(4, 0), "a", "f2")); err == nil {
		t.Fatal("out-of-order snapshot accepted")
	}
	// Equal timestamps are allowed (same-second syslog bursts).
	if err := a.Record(snap("d1", ts(5, 0), "a", "f3")); err != nil {
		t.Fatalf("equal-time snapshot rejected: %v", err)
	}
}

func TestDevicesSorted(t *testing.T) {
	a := NewArchive()
	for _, d := range []string{"z9", "a1", "m5"} {
		if err := a.Record(snap(d, ts(1, 0), "x", "f")); err != nil {
			t.Fatal(err)
		}
	}
	devs := a.Devices()
	if len(devs) != 3 || devs[0] != "a1" || devs[2] != "z9" {
		t.Errorf("Devices = %v", devs)
	}
}

func TestChangesDetection(t *testing.T) {
	a := NewArchive()
	a.MarkSpecialAccount("svc-netauto")
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(a.Record(snap("d1", ts(1, 0), "alice", "f1")))
	must(a.Record(snap("d1", ts(2, 0), "alice", "f1"))) // identical: no change
	must(a.Record(snap("d1", ts(3, 0), "svc-netauto", "f2")))
	must(a.Record(snap("d1", ts(4, 0), "bob", "f3")))
	changes := a.Changes("d1")
	if len(changes) != 2 {
		t.Fatalf("changes = %d, want 2", len(changes))
	}
	if !changes[0].Automated {
		t.Error("special-account change not classified automated")
	}
	if changes[1].Automated {
		t.Error("regular-account change classified automated")
	}
	if changes[0].Before.Fingerprint != "f1" || changes[0].After.Fingerprint != "f2" {
		t.Errorf("change pair wrong: %v -> %v", changes[0].Before.Fingerprint, changes[0].After.Fingerprint)
	}
}

func TestConservativeModality(t *testing.T) {
	// A script under a regular account is misclassified as manual — the
	// paper's acknowledged under-estimation.
	a := NewArchive()
	if a.IsAutomated("cron-under-bobs-account") {
		t.Error("unregistered login classified automated")
	}
}

func TestChangesInMonth(t *testing.T) {
	a := NewArchive()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(a.Record(snap("d1", time.Date(2014, 2, 27, 0, 0, 0, 0, time.UTC), "a", "f1")))
	must(a.Record(snap("d1", time.Date(2014, 3, 2, 0, 0, 0, 0, time.UTC), "a", "f2")))
	must(a.Record(snap("d1", time.Date(2014, 3, 9, 0, 0, 0, 0, time.UTC), "a", "f3")))
	must(a.Record(snap("d1", time.Date(2014, 4, 1, 0, 0, 0, 0, time.UTC), "a", "f4")))
	march := a.ChangesInMonth("d1", months.Month{Year: 2014, Mon: time.March})
	if len(march) != 2 {
		t.Errorf("march changes = %d, want 2", len(march))
	}
}

func TestConfigAt(t *testing.T) {
	a := NewArchive()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(a.Record(snap("d1", ts(1, 0), "a", "f1")))
	must(a.Record(snap("d1", ts(10, 0), "a", "f2")))
	if got := a.ConfigAt("d1", ts(5, 0)); got == nil || got.Fingerprint != "f1" {
		t.Errorf("ConfigAt(day5) = %v", got)
	}
	if got := a.ConfigAt("d1", ts(10, 0)); got == nil || got.Fingerprint != "f2" {
		t.Errorf("ConfigAt(day10) = %v", got)
	}
	if got := a.ConfigAt("d1", ts(1, 0).Add(-time.Hour)); got != nil {
		t.Errorf("ConfigAt before history = %v", got)
	}
	if got := a.ConfigAt("ghost", ts(1, 0)); got != nil {
		t.Errorf("ConfigAt unknown device = %v", got)
	}
}

func TestChangesEmptyHistory(t *testing.T) {
	a := NewArchive()
	if got := a.Changes("nothing"); got != nil {
		t.Errorf("Changes of unknown device = %v", got)
	}
}
