// Package nms models the network-management-system substrate MPA reads
// configuration history from (paper §2.1, data source 2). Systems like
// RANCID and HPNA subscribe to device syslog feeds and snapshot a device's
// configuration whenever the device reports that its configuration
// changed; each snapshot carries the configuration text plus metadata —
// when the change occurred and the login of the entity (user or script)
// that made it.
//
// The archive also implements the paper's change-modality inference: a
// change is classified as automated if its login is a special account in
// the organization's user-management system; otherwise it is assumed
// manual. This conservative rule misclassifies scripts running under
// regular user accounts, under-estimating automation — the synthetic OSP
// generator reproduces that bias deliberately.
package nms

import (
	"fmt"
	"sort"
	"time"

	"mpa/internal/months"
)

// Snapshot is one archived device configuration.
type Snapshot struct {
	Device      string
	Time        time.Time
	Login       string // entity that made the triggering change
	Text        string // full rendered configuration text
	Fingerprint string // cheap digest for change detection
}

// ChangeRecord is a configuration change: a pair of successive snapshots
// of one device whose configurations differ.
type ChangeRecord struct {
	Device    string
	Time      time.Time // time of the new snapshot
	Login     string
	Automated bool
	Before    *Snapshot
	After     *Snapshot
}

// Archive stores time-ordered configuration snapshots per device.
type Archive struct {
	byDevice map[string][]*Snapshot
	special  map[string]bool // logins classified as automation accounts
}

// NewArchive returns an empty archive.
func NewArchive() *Archive {
	return &Archive{byDevice: map[string][]*Snapshot{}, special: map[string]bool{}}
}

// MarkSpecialAccount registers a login as an automation (special) account.
func (a *Archive) MarkSpecialAccount(login string) { a.special[login] = true }

// IsAutomated reports whether changes by the given login are classified as
// automated.
func (a *Archive) IsAutomated(login string) bool { return a.special[login] }

// SpecialAccounts returns the registered automation logins, sorted. The
// inference cache folds them into its content-addressed keys: reclassifying
// a login changes every affected network's digest.
func (a *Archive) SpecialAccounts() []string {
	out := make([]string, 0, len(a.special))
	for login := range a.special {
		out = append(out, login)
	}
	sort.Strings(out)
	return out
}

// Record appends a snapshot to the device's history. Snapshots must be
// recorded in non-decreasing time order per device.
func (a *Archive) Record(s *Snapshot) error {
	hist := a.byDevice[s.Device]
	if n := len(hist); n > 0 && s.Time.Before(hist[n-1].Time) {
		return fmt.Errorf("nms: out-of-order snapshot for %s: %v before %v",
			s.Device, s.Time, hist[n-1].Time)
	}
	a.byDevice[s.Device] = append(hist, s)
	return nil
}

// Clone returns an independent archive sharing b's snapshot records.
// Device histories are re-sliced with capacity clamped to length, so a
// Record into the clone always reallocates instead of writing into the
// original's backing array: the incremental ingest path appends a new
// month into a clone while readers of the original keep iterating it.
// Snapshots themselves are immutable and stay shared.
func (a *Archive) Clone() *Archive {
	b := &Archive{
		byDevice: make(map[string][]*Snapshot, len(a.byDevice)),
		special:  make(map[string]bool, len(a.special)),
	}
	for login := range a.special {
		b.special[login] = true
	}
	for dev, hist := range a.byDevice {
		b.byDevice[dev] = hist[:len(hist):len(hist)]
	}
	return b
}

// Merge absorbs another archive: every device history and special
// account of b is appended into a. Histories of devices present in both
// archives are concatenated (a's first), so callers merging archives
// whose device sets are disjoint — the parallel OSP generator, which
// builds one archive per network — get exactly the archive a sequential
// build would have produced.
func (a *Archive) Merge(b *Archive) {
	if b == nil {
		return
	}
	for login := range b.special {
		a.special[login] = true
	}
	for dev, hist := range b.byDevice {
		a.byDevice[dev] = append(a.byDevice[dev], hist...)
	}
}

// Snapshots returns the device's snapshot history in time order.
func (a *Archive) Snapshots(device string) []*Snapshot { return a.byDevice[device] }

// Devices returns all devices with at least one snapshot, sorted.
func (a *Archive) Devices() []string {
	out := make([]string, 0, len(a.byDevice))
	for d := range a.byDevice {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// SnapshotCount returns the total number of archived snapshots.
func (a *Archive) SnapshotCount() int {
	total := 0
	for _, hist := range a.byDevice {
		total += len(hist)
	}
	return total
}

// TotalBytes returns the total size of archived configuration text.
func (a *Archive) TotalBytes() int64 {
	var total int64
	for _, hist := range a.byDevice {
		for _, s := range hist {
			total += int64(len(s.Text))
		}
	}
	return total
}

// Changes returns the device's configuration changes: successive snapshot
// pairs with differing fingerprints, in time order.
func (a *Archive) Changes(device string) []ChangeRecord {
	return a.AppendChanges(nil, device)
}

// AppendChanges appends the device's configuration changes onto dst and
// returns the extended slice, so callers scanning many devices can reuse
// one buffer (pass dst[:0]) instead of allocating a fresh slice per call.
func (a *Archive) AppendChanges(dst []ChangeRecord, device string) []ChangeRecord {
	hist := a.byDevice[device]
	for i := 1; i < len(hist); i++ {
		if hist[i].Fingerprint == hist[i-1].Fingerprint {
			continue
		}
		dst = append(dst, ChangeRecord{
			Device:    device,
			Time:      hist[i].Time,
			Login:     hist[i].Login,
			Automated: a.IsAutomated(hist[i].Login),
			Before:    hist[i-1],
			After:     hist[i],
		})
	}
	return dst
}

// ChangesInMonth returns the device's changes whose time falls in month m.
func (a *Archive) ChangesInMonth(device string, m months.Month) []ChangeRecord {
	var out []ChangeRecord
	for _, c := range a.Changes(device) {
		if months.Of(c.Time) == m {
			out = append(out, c)
		}
	}
	return out
}

// ConfigAt returns the latest snapshot of the device at or before t, or
// nil if no snapshot exists by then. MPA uses this to evaluate design
// metrics from month-end configuration states.
func (a *Archive) ConfigAt(device string, t time.Time) *Snapshot {
	hist := a.byDevice[device]
	// Binary search for the last snapshot with Time <= t.
	idx := sort.Search(len(hist), func(i int) bool { return hist[i].Time.After(t) })
	if idx == 0 {
		return nil
	}
	return hist[idx-1]
}
