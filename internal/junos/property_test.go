package junos

import (
	"testing"

	"mpa/internal/confdiff"
	"mpa/internal/conftest"
	"mpa/internal/rng"
)

// TestRoundTripProperty renders and re-parses hundreds of random
// well-formed configurations: the round trip must be lossless and the
// re-rendered text identical.
func TestRoundTripProperty(t *testing.T) {
	var d Dialect
	r := rng.New(4096)
	for i := 0; i < 300; i++ {
		orig := conftest.RandomConfig(r, conftest.StyleJuniper)
		text := d.Render(orig)
		parsed, err := d.Parse(text)
		if err != nil {
			t.Fatalf("iteration %d: parse failed: %v\n%s", i, err, text)
		}
		if !orig.Equal(parsed) {
			diff := confdiff.Diff(orig, parsed)
			t.Fatalf("iteration %d: round trip lost data: %v\n%s", i, diff, text)
		}
		if again := d.Render(parsed); again != text {
			t.Fatalf("iteration %d: render not canonical", i)
		}
	}
}

// TestCrossVendorTypeAgreement renders the same logical construct set in
// both dialects and checks the vendor-agnostic type census matches —
// except for VLAN membership, which the paper notes is typed differently.
func TestCrossVendorTypeAgreement(t *testing.T) {
	var jd Dialect
	r := rng.New(99)
	for i := 0; i < 100; i++ {
		c := conftest.RandomConfig(r, conftest.StyleJuniper)
		parsed, err := jd.Parse(jd.Render(c))
		if err != nil {
			t.Fatal(err)
		}
		// Type census must be identical after the round trip.
		want := map[string]int{}
		for _, s := range c.Stanzas() {
			want[s.Type.String()]++
		}
		got := map[string]int{}
		for _, s := range parsed.Stanzas() {
			got[s.Type.String()]++
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("iteration %d: type %s count %d != %d", i, k, got[k], v)
			}
		}
	}
}
