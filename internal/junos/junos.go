// Package junos implements a Juniper-JunOS-flavored configuration dialect:
// hierarchical brace-delimited blocks with semicolon-terminated option
// lines, and the vendor stanza keywords the paper names — `firewall
// filter` for ACLs, and interface-to-VLAN membership configured inside the
// vlans stanza (the `interface` option), so the same logical change is
// typed as a vlan change on Juniper where it is an interface change on
// Cisco (paper §2.2).
package junos

import (
	"fmt"
	"sort"
	"strings"

	"mpa/internal/confmodel"
)

// Dialect is the JunOS dialect. The zero value is ready to use.
type Dialect struct{}

var _ confmodel.Dialect = Dialect{}

// Name returns "junos".
func (Dialect) Name() string { return "junos" }

// Render serializes the configuration to JunOS-style text.
func (Dialect) Render(c *confmodel.Config) string {
	var b strings.Builder
	if c.Hostname != "" {
		fmt.Fprintf(&b, "host-name %s;\n", c.Hostname)
	}
	for _, s := range c.Stanzas() {
		renderStanza(&b, s)
	}
	return b.String()
}

func renderStanza(b *strings.Builder, s *confmodel.Stanza) {
	open := func(header string) { fmt.Fprintf(b, "%s {\n", header) }
	closeBlock := func() { b.WriteString("}\n") }
	opt := func(key, format string) {
		if v := s.Get(key); v != "" {
			fmt.Fprintf(b, "    "+format+";\n", v)
		}
	}
	prefixed := func(prefix, format string) {
		for _, k := range sortedSuffixes(s, prefix) {
			fmt.Fprintf(b, "    "+format+";\n", k, s.Get(prefix+k))
		}
	}
	prefixedKeyOnly := func(prefix, format string) {
		for _, k := range sortedSuffixes(s, prefix) {
			fmt.Fprintf(b, "    "+format+";\n", k)
		}
	}

	switch s.Type {
	case confmodel.TypeInterface:
		open("interfaces " + s.Name)
		opt("description", "description \"%s\"")
		opt("address", "address %s")
		opt("mtu", "mtu %s")
		opt("acl-in", "filter input %s")
		opt("acl-out", "filter output %s")
		opt("lag-group", "gigether-options 802.3ad ae%s")
		opt("service-policy", "scheduler-map %s")
		if s.Get("shutdown") == "true" {
			b.WriteString("    disable;\n")
		}
		closeBlock()
	case confmodel.TypeVLAN:
		open("vlans " + s.Name)
		opt("vlan-id", "vlan-id %s")
		opt("description", "description \"%s\"")
		// The Juniper quirk: interface membership lives here.
		prefixedKeyOnly("member:", "interface %s")
		closeBlock()
	case confmodel.TypeACL:
		open("firewall filter " + s.Name)
		prefixed("rule:", "term %s \"%s\"")
		closeBlock()
	case confmodel.TypeBGP:
		open("protocols bgp " + s.Name)
		prefixed("neighbor:", "neighbor %s peer-as %s")
		prefixed("neighbor-rm:", "neighbor-export %s policy %s")
		prefixedKeyOnly("network:", "network %s")
		prefixed("prefix-list:", "import prefix-list %s %s")
		prefixed("route-map:", "export policy %s from %s")
		closeBlock()
	case confmodel.TypeOSPF:
		open("protocols ospf " + s.Name)
		opt("area", "area %s")
		prefixed("network:", "network %s area %s")
		closeBlock()
	case confmodel.TypePool:
		open("load-balancing pool " + s.Name)
		opt("monitor", "monitor %s")
		prefixed("member:", "member %s weight %s")
		closeBlock()
	case confmodel.TypeUser:
		open("login user " + s.Name)
		opt("role", "class %s")
		opt("hash", "authentication encrypted-password %s")
		closeBlock()
	case confmodel.TypeSNMP:
		open("snmp")
		opt("community", "community %s")
		prefixedKeyOnly("host:", "trap-target %s")
		closeBlock()
	case confmodel.TypeNTP:
		open("ntp")
		prefixedKeyOnly("server:", "server %s")
		closeBlock()
	case confmodel.TypeLogging:
		open("syslog")
		opt("level", "level %s")
		prefixedKeyOnly("host:", "host %s")
		closeBlock()
	case confmodel.TypeQoS:
		open("class-of-service " + s.Name)
		prefixed("class:", "forwarding-class %s bandwidth %s")
		closeBlock()
	case confmodel.TypeSflow:
		open("sflow")
		opt("collector", "collector %s")
		opt("rate", "sample-rate %s")
		closeBlock()
	case confmodel.TypeSTP:
		open("stp")
		opt("mode", "mode %s")
		opt("priority", "bridge-priority %s")
		opt("region", "configuration-name %s")
		closeBlock()
	case confmodel.TypeUDLD:
		open("link-fault-management")
		if s.Get("enable") == "true" {
			b.WriteString("    enable;\n")
		}
		closeBlock()
	case confmodel.TypeDHCPRelay:
		open("forwarding-options dhcp-relay " + s.Name)
		opt("vlan", "vlan %s")
		prefixedKeyOnly("server:", "server-group %s")
		closeBlock()
	case confmodel.TypePrefixList:
		open("policy-options prefix-list " + s.Name)
		prefixed("rule:", "rule %s \"%s\"")
		closeBlock()
	case confmodel.TypeRouteMap:
		open("policy-options policy-statement " + s.Name)
		prefixed("entry:", "term %s \"%s\"")
		closeBlock()
	default:
		open("apply-groups " + s.Name)
		closeBlock()
	}
}

func sortedSuffixes(s *confmodel.Stanza, prefix string) []string {
	m := s.OptionsWithPrefix(prefix)
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParseError reports a line the parser could not interpret.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("junos: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// Parse recovers a configuration from JunOS-style text produced by Render.
func (d Dialect) Parse(text string) (*confmodel.Config, error) {
	return d.ParseScratch(text, nil)
}

// ParseScratch is Parse with caller-provided scratch buffers (see
// confmodel.Scratch): line scanning and tokenization index into the raw
// text instead of allocating per-line slices, and repeated stanza keys
// and option keys come from the scratch interner. A nil scratch
// allocates a fresh one. Every string stored in the returned Config is
// immutable (it aliases text or the interner) and safe to retain after
// the scratch is reset or reused.
func (Dialect) ParseScratch(text string, sc *confmodel.Scratch) (*confmodel.Config, error) {
	if sc == nil {
		sc = confmodel.NewScratch()
	}
	sc.Reset()
	c := sc.NewConfig("")
	var cur *confmodel.Stanza
	lineNo := 0
	for start := 0; start <= len(text); {
		var raw string
		if end := strings.IndexByte(text[start:], '\n'); end < 0 {
			raw = text[start:]
			start = len(text) + 1
		} else {
			raw = text[start : start+end]
			start += end + 1
		}
		lineNo++
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "host-name ") && strings.HasSuffix(line, ";"):
			c.Hostname = strings.TrimSuffix(sc.Fields(line)[1], ";")
		case line == "}":
			if cur == nil {
				return nil, &ParseError{lineNo, line, "unbalanced close brace"}
			}
			c.Upsert(cur)
			cur = nil
		case strings.HasSuffix(line, "{"):
			if cur != nil {
				return nil, &ParseError{lineNo, line, "nested block"}
			}
			header := strings.TrimSpace(strings.TrimSuffix(line, "{"))
			s, err := stanzaFromHeader(sc, header)
			if err != nil {
				return nil, &ParseError{lineNo, line, err.Error()}
			}
			cur = s
		case strings.HasSuffix(line, ";"):
			if cur == nil {
				return nil, &ParseError{lineNo, line, "option outside block"}
			}
			if err := parseOption(sc, cur, strings.TrimSuffix(line, ";")); err != nil {
				return nil, &ParseError{lineNo, line, err.Error()}
			}
		default:
			return nil, &ParseError{lineNo, line, "unrecognized line"}
		}
	}
	if cur != nil {
		return nil, &ParseError{0, "", "unterminated block"}
	}
	sc.FinishConfig(c)
	return c, nil
}

// stanzaFromHeader maps a JunOS block header to a new stanza with its
// vendor-agnostic type.
func stanzaFromHeader(sc *confmodel.Scratch, header string) (*confmodel.Stanza, error) {
	fields := sc.Fields(header)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty block header")
	}
	switch {
	case fields[0] == "interfaces" && len(fields) == 2:
		return sc.NewStanza(confmodel.TypeInterface, fields[1]), nil
	case fields[0] == "vlans" && len(fields) == 2:
		return sc.NewStanza(confmodel.TypeVLAN, fields[1]), nil
	case fields[0] == "firewall" && len(fields) == 3 && fields[1] == "filter":
		return sc.NewStanza(confmodel.TypeACL, fields[2]), nil
	case fields[0] == "protocols" && len(fields) == 3 && fields[1] == "bgp":
		s := sc.NewStanza(confmodel.TypeBGP, fields[2])
		s.Set("local-as", fields[2])
		return s, nil
	case fields[0] == "protocols" && len(fields) == 3 && fields[1] == "ospf":
		return sc.NewStanza(confmodel.TypeOSPF, fields[2]), nil
	case fields[0] == "load-balancing" && len(fields) == 3 && fields[1] == "pool":
		return sc.NewStanza(confmodel.TypePool, fields[2]), nil
	case fields[0] == "login" && len(fields) == 3 && fields[1] == "user":
		return sc.NewStanza(confmodel.TypeUser, fields[2]), nil
	case header == "snmp":
		return sc.NewStanza(confmodel.TypeSNMP, "global"), nil
	case header == "ntp":
		return sc.NewStanza(confmodel.TypeNTP, "global"), nil
	case header == "syslog":
		return sc.NewStanza(confmodel.TypeLogging, "global"), nil
	case fields[0] == "class-of-service" && len(fields) == 2:
		return sc.NewStanza(confmodel.TypeQoS, fields[1]), nil
	case header == "sflow":
		return sc.NewStanza(confmodel.TypeSflow, "global"), nil
	case header == "stp":
		return sc.NewStanza(confmodel.TypeSTP, "global"), nil
	case header == "link-fault-management":
		return sc.NewStanza(confmodel.TypeUDLD, "global"), nil
	case fields[0] == "forwarding-options" && len(fields) == 3 && fields[1] == "dhcp-relay":
		return sc.NewStanza(confmodel.TypeDHCPRelay, fields[2]), nil
	case fields[0] == "policy-options" && len(fields) == 3 && fields[1] == "prefix-list":
		return sc.NewStanza(confmodel.TypePrefixList, fields[2]), nil
	case fields[0] == "policy-options" && len(fields) == 3 && fields[1] == "policy-statement":
		return sc.NewStanza(confmodel.TypeRouteMap, fields[2]), nil
	case fields[0] == "apply-groups" && len(fields) == 2:
		return sc.NewStanza(confmodel.TypeOther, fields[1]), nil
	default:
		return nil, fmt.Errorf("unknown block header")
	}
}

// parseOption interprets one semicolon-terminated option line.
func parseOption(sc *confmodel.Scratch, s *confmodel.Stanza, line string) error {
	fields := sc.Fields(line)
	if len(fields) == 0 {
		return fmt.Errorf("empty option line")
	}
	quoted := func(rest string) string {
		return strings.Trim(strings.TrimSpace(rest), "\"")
	}
	switch s.Type {
	case confmodel.TypeInterface:
		switch {
		case fields[0] == "description" && quoted(line[len("description"):]) != "":
			s.Set("description", quoted(line[len("description"):]))
		case fields[0] == "address" && len(fields) == 2:
			s.Set("address", fields[1])
		case fields[0] == "mtu" && len(fields) == 2:
			s.Set("mtu", fields[1])
		case fields[0] == "filter" && len(fields) == 3 && fields[1] == "input":
			s.Set("acl-in", fields[2])
		case fields[0] == "filter" && len(fields) == 3 && fields[1] == "output":
			s.Set("acl-out", fields[2])
		case fields[0] == "gigether-options" && len(fields) == 3 && fields[1] == "802.3ad" &&
			strings.TrimPrefix(fields[2], "ae") != "":
			s.Set("lag-group", strings.TrimPrefix(fields[2], "ae"))
		case fields[0] == "scheduler-map" && len(fields) == 2:
			s.Set("service-policy", fields[1])
		case line == "disable":
			s.Set("shutdown", "true")
		default:
			return fmt.Errorf("unknown interface option")
		}
	case confmodel.TypeVLAN:
		switch {
		case fields[0] == "vlan-id" && len(fields) == 2:
			s.Set("vlan-id", fields[1])
		case fields[0] == "description" && quoted(line[len("description"):]) != "":
			s.Set("description", quoted(line[len("description"):]))
		case fields[0] == "interface" && len(fields) == 2:
			s.Set(sc.Intern2("member:", fields[1]), "true")
		default:
			return fmt.Errorf("unknown vlan option")
		}
	case confmodel.TypeACL:
		if fields[0] == "term" && len(fields) >= 3 {
			s.Set(sc.Intern2("rule:", fields[1]), sc.InternJoinTrim(fields[2:], "\""))
		} else {
			return fmt.Errorf("unknown filter option")
		}
	case confmodel.TypeBGP:
		switch {
		case fields[0] == "neighbor" && len(fields) == 4 && fields[2] == "peer-as":
			s.Set(sc.Intern2("neighbor:", fields[1]), fields[3])
		case fields[0] == "neighbor-export" && len(fields) == 4 && fields[2] == "policy":
			s.Set(sc.Intern2("neighbor-rm:", fields[1]), fields[3])
		case fields[0] == "network" && len(fields) == 2:
			s.Set(sc.Intern2("network:", fields[1]), "true")
		case fields[0] == "import" && len(fields) == 4 && fields[1] == "prefix-list":
			s.Set(sc.Intern2("prefix-list:", fields[2]), fields[3])
		case fields[0] == "export" && len(fields) == 5 && fields[1] == "policy" && fields[3] == "from":
			s.Set(sc.Intern2("route-map:", fields[2]), fields[4])
		default:
			return fmt.Errorf("unknown bgp option")
		}
	case confmodel.TypeOSPF:
		switch {
		case fields[0] == "area" && len(fields) == 2:
			s.Set("area", fields[1])
		case fields[0] == "network" && len(fields) == 4 && fields[2] == "area":
			s.Set(sc.Intern2("network:", fields[1]), fields[3])
		default:
			return fmt.Errorf("unknown ospf option")
		}
	case confmodel.TypePool:
		switch {
		case fields[0] == "monitor" && len(fields) == 2:
			s.Set("monitor", fields[1])
		case fields[0] == "member" && len(fields) == 4 && fields[2] == "weight":
			s.Set(sc.Intern2("member:", fields[1]), fields[3])
		default:
			return fmt.Errorf("unknown pool option")
		}
	case confmodel.TypeUser:
		switch {
		case fields[0] == "class" && len(fields) == 2:
			s.Set("role", fields[1])
		case fields[0] == "authentication" && len(fields) == 3 && fields[1] == "encrypted-password":
			s.Set("hash", fields[2])
		default:
			return fmt.Errorf("unknown user option")
		}
	case confmodel.TypeSNMP:
		switch {
		case fields[0] == "community" && len(fields) == 2:
			s.Set("community", fields[1])
		case fields[0] == "trap-target" && len(fields) == 2:
			s.Set(sc.Intern2("host:", fields[1]), "true")
		default:
			return fmt.Errorf("unknown snmp option")
		}
	case confmodel.TypeNTP:
		if fields[0] == "server" && len(fields) == 2 {
			s.Set(sc.Intern2("server:", fields[1]), "true")
		} else {
			return fmt.Errorf("unknown ntp option")
		}
	case confmodel.TypeLogging:
		switch {
		case fields[0] == "level" && len(fields) == 2:
			s.Set("level", fields[1])
		case fields[0] == "host" && len(fields) == 2:
			s.Set(sc.Intern2("host:", fields[1]), "true")
		default:
			return fmt.Errorf("unknown syslog option")
		}
	case confmodel.TypeQoS:
		if fields[0] == "forwarding-class" && len(fields) == 4 && fields[2] == "bandwidth" {
			s.Set(sc.Intern2("class:", fields[1]), fields[3])
		} else {
			return fmt.Errorf("unknown class-of-service option")
		}
	case confmodel.TypeSflow:
		switch {
		case fields[0] == "collector" && len(fields) == 2:
			s.Set("collector", fields[1])
		case fields[0] == "sample-rate" && len(fields) == 2:
			s.Set("rate", fields[1])
		default:
			return fmt.Errorf("unknown sflow option")
		}
	case confmodel.TypeSTP:
		switch {
		case fields[0] == "mode" && len(fields) == 2:
			s.Set("mode", fields[1])
		case fields[0] == "bridge-priority" && len(fields) == 2:
			s.Set("priority", fields[1])
		case fields[0] == "configuration-name" && len(fields) == 2:
			s.Set("region", fields[1])
		default:
			return fmt.Errorf("unknown stp option")
		}
	case confmodel.TypeUDLD:
		if line == "enable" {
			s.Set("enable", "true")
		} else {
			return fmt.Errorf("unknown link-fault-management option")
		}
	case confmodel.TypeDHCPRelay:
		switch {
		case fields[0] == "vlan" && len(fields) == 2:
			s.Set("vlan", fields[1])
		case fields[0] == "server-group" && len(fields) == 2:
			s.Set(sc.Intern2("server:", fields[1]), "true")
		default:
			return fmt.Errorf("unknown dhcp-relay option")
		}
	case confmodel.TypePrefixList:
		if fields[0] == "rule" && len(fields) >= 3 {
			s.Set(sc.Intern2("rule:", fields[1]), sc.InternJoinTrim(fields[2:], "\""))
		} else {
			return fmt.Errorf("unknown prefix-list option")
		}
	case confmodel.TypeRouteMap:
		if fields[0] == "term" && len(fields) >= 3 {
			s.Set(sc.Intern2("entry:", fields[1]), sc.InternJoinTrim(fields[2:], "\""))
		} else {
			return fmt.Errorf("unknown policy-statement option")
		}
	default:
		return fmt.Errorf("option for stanza type without options")
	}
	return nil
}
