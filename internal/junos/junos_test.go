package junos

import (
	"strings"
	"testing"

	"mpa/internal/confmodel"
)

// fullConfig builds a configuration exercising every stanza type with
// Juniper-appropriate option placement (VLAN membership under the vlan).
func fullConfig() *confmodel.Config {
	c := confmodel.NewConfig("net02-fw-01")
	c.Upsert(confmodel.NewStanza(confmodel.TypeInterface, "xe-0/0/1").
		Set("description", "uplink to agg").
		Set("address", "10.2.0.1/31").
		Set("mtu", "9192").
		Set("acl-in", "EDGE-IN").
		Set("acl-out", "EDGE-OUT").
		Set("lag-group", "3").
		Set("service-policy", "SM-CORE").
		Set("shutdown", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeVLAN, "web").
		Set("vlan-id", "100").
		Set("description", "web-tier").
		Set("member:xe-0/0/1", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeACL, "EDGE-IN").
		Set("rule:10", "permit tcp any any eq 443").
		Set("rule:20", "deny ip any any"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeACL, "EDGE-OUT").
		Set("rule:10", "permit ip any any"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeBGP, "65002").
		Set("local-as", "65002").
		Set("neighbor:10.0.0.1", "65001").
		Set("neighbor-rm:10.0.0.1", "PS-EXPORT").
		Set("network:10.2.0.0/16", "true").
		Set("prefix-list:PL-NET", "in").
		Set("route-map:PS-EXPORT", "static"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeOSPF, "1").
		Set("area", "0").
		Set("network:10.2.0.0/16", "0"))
	c.Upsert(confmodel.NewStanza(confmodel.TypePool, "APP-POOL").
		Set("monitor", "tcp-443").
		Set("member:10.3.0.1:443", "2"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeUser, "netops").
		Set("role", "super-user").Set("hash", "$6$zzz"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeSNMP, "global").
		Set("community", "s3cret").Set("host:10.9.0.1", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeNTP, "global").
		Set("server:10.9.0.2", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeLogging, "global").
		Set("level", "info").Set("host:10.9.0.4", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeQoS, "SM-CORE").
		Set("class:voice", "30"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeSflow, "global").
		Set("collector", "10.9.0.5").Set("rate", "2048"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeSTP, "global").
		Set("mode", "mstp").Set("priority", "8192").Set("region", "R2"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeUDLD, "global").
		Set("enable", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeDHCPRelay, "VLAN100").
		Set("vlan", "100").Set("server:10.9.0.6", "true"))
	c.Upsert(confmodel.NewStanza(confmodel.TypePrefixList, "PL-NET").
		Set("rule:5", "permit 10.0.0.0/8"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeRouteMap, "PS-EXPORT").
		Set("entry:10", "permit match:PL-NET"))
	return c
}

func TestRoundTripFullConfig(t *testing.T) {
	var d Dialect
	orig := fullConfig()
	text := d.Render(orig)
	parsed, err := d.Parse(text)
	if err != nil {
		t.Fatalf("Parse failed: %v\n%s", err, text)
	}
	if !orig.Equal(parsed) {
		for _, s := range orig.Stanzas() {
			p := parsed.Get(s.Type, s.Name)
			if p == nil {
				t.Errorf("stanza %s missing after round trip", s.Key())
				continue
			}
			if !s.Equal(p) {
				t.Errorf("stanza %s differs:\n  orig   %v\n  parsed %v", s.Key(), s.Options, p.Options)
			}
		}
		t.Fatalf("round trip not equal; rendered:\n%s", text)
	}
}

func TestRenderDeterministic(t *testing.T) {
	var d Dialect
	if d.Render(fullConfig()) != d.Render(fullConfig()) {
		t.Fatal("Render is not deterministic")
	}
}

func TestRenderJunosSyntaxLandmarks(t *testing.T) {
	var d Dialect
	text := d.Render(fullConfig())
	for _, want := range []string{
		"host-name net02-fw-01;",
		"interfaces xe-0/0/1 {",
		"firewall filter EDGE-IN {",
		"protocols bgp 65002 {",
		"neighbor 10.0.0.1 peer-as 65001;",
		"vlans web {",
		"vlan-id 100;",
		"interface xe-0/0/1;",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered JunOS config missing %q", want)
		}
	}
}

func TestVLANMembershipTypedAsVLAN(t *testing.T) {
	// The paper's quirk: on Juniper, assigning an interface to a VLAN
	// edits the vlans stanza, not the interface stanza.
	var d Dialect
	c := confmodel.NewConfig("j1")
	c.Upsert(confmodel.NewStanza(confmodel.TypeInterface, "xe-0/0/5"))
	c.Upsert(confmodel.NewStanza(confmodel.TypeVLAN, "app").
		Set("vlan-id", "42").Set("member:xe-0/0/5", "true"))
	text := d.Render(c)
	vlanIdx := strings.Index(text, "vlans app {")
	memberIdx := strings.Index(text, "interface xe-0/0/5;")
	closeIdx := strings.Index(text[vlanIdx:], "}") + vlanIdx
	if memberIdx < vlanIdx || memberIdx > closeIdx {
		t.Error("VLAN membership not inside vlans stanza")
	}
	// Round trip must preserve the member option on the vlan stanza.
	parsed, err := d.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Get(confmodel.TypeVLAN, "app").Get("member:xe-0/0/5") != "true" {
		t.Error("membership lost in round trip")
	}
}

func TestParseErrors(t *testing.T) {
	var d Dialect
	cases := []struct{ name, text string }{
		{"unknown block", "mystery block {\n}\n"},
		{"unbalanced close", "}\n"},
		{"option outside block", "community foo;\n"},
		{"nested block", "snmp {\nsnmp {\n}\n}\n"},
		{"unterminated block", "snmp {\ncommunity foo;\n"},
		{"unknown option", "snmp {\nfrobnicate;\n}\n"},
		{"line without terminator", "snmp {\ncommunity foo\n}\n"},
	}
	for _, c := range cases {
		if _, err := d.Parse(c.text); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	var d Dialect
	c, err := d.Parse("host-name solo;\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Hostname != "solo" || c.Len() != 0 {
		t.Errorf("parsed %q with %d stanzas", c.Hostname, c.Len())
	}
}

func TestQuotedDescriptionsSurvive(t *testing.T) {
	var d Dialect
	c := confmodel.NewConfig("q")
	c.Upsert(confmodel.NewStanza(confmodel.TypeInterface, "xe-0/0/9").
		Set("description", "link to row 7 rack 3"))
	parsed, err := d.Parse(d.Render(c))
	if err != nil {
		t.Fatal(err)
	}
	got := parsed.Get(confmodel.TypeInterface, "xe-0/0/9").Get("description")
	if got != "link to row 7 rack 3" {
		t.Errorf("description = %q", got)
	}
}

func TestCrossVendorAgnosticTypesAgree(t *testing.T) {
	// An ACL parsed from JunOS text and one parsed from IOS text must map
	// to the same vendor-agnostic type — the core of the paper's
	// type-generalization step.
	var d Dialect
	c, err := d.Parse("firewall filter X {\n    term 10 \"permit ip any any\";\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.OfType(confmodel.TypeACL)) != 1 {
		t.Error("firewall filter did not map to acl type")
	}
}
