package junos

import (
	"testing"

	"mpa/internal/confdiff"
	"mpa/internal/conftest"
	"mpa/internal/rng"
)

// FuzzRoundTrip feeds arbitrary text through the parser. Whatever parses
// must round-trip losslessly: rendering is a canonical form, so the
// re-parsed config must equal the original parse, re-render to identical
// bytes, and diff empty against it. The seed corpus (testdata/fuzz plus
// the inline seeds below) covers every stanza type the renderer emits.
func FuzzRoundTrip(f *testing.F) {
	var d Dialect
	r := rng.New(7)
	for i := 0; i < 8; i++ {
		f.Add(d.Render(conftest.RandomConfig(r, conftest.StyleJuniper)))
	}
	f.Add("")
	f.Add("system {\n    host-name core;\n}\n")
	f.Add("interfaces {\n    ge-0/0/0 {\n        unit 0;\n    }\n}\n")
	f.Add("vlans {\n    v10 {\n        vlan-id 10;\n    }\n")
	f.Fuzz(func(t *testing.T, text string) {
		cfg, err := d.Parse(text)
		if err != nil {
			return // rejected input: only well-formed text must round-trip
		}
		canon := d.Render(cfg)
		again, err := d.Parse(canon)
		if err != nil {
			t.Fatalf("canonical render does not re-parse: %v\n%s", err, canon)
		}
		if !cfg.Equal(again) {
			t.Fatalf("round trip lost data: %v\n%s", confdiff.Diff(cfg, again), canon)
		}
		if d.Render(again) != canon {
			t.Fatalf("render not canonical:\n%s", canon)
		}
		if diff := confdiff.Diff(cfg, again); len(diff) != 0 {
			t.Fatalf("diff(cfg, reparse) not empty: %v", diff)
		}
	})
}
